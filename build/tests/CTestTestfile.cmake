# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/array_test[1]_include.cmake")
include("/root/repo/build/tests/kdf_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/audit_test[1]_include.cmake")
include("/root/repo/build/tests/carve_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/multi_file_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/campaign_state_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/replay_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/misc_coverage_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
