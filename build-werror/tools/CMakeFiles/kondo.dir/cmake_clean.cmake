file(REMOVE_RECURSE
  "CMakeFiles/kondo.dir/kondo_cli.cc.o"
  "CMakeFiles/kondo.dir/kondo_cli.cc.o.d"
  "kondo"
  "kondo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kondo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
