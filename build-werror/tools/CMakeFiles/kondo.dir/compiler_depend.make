# Empty compiler generated dependencies file for kondo.
# This may be replaced when dependencies are built.
