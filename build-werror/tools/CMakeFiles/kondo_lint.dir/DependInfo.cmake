
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/kondo_lint.cc" "tools/CMakeFiles/kondo_lint.dir/kondo_lint.cc.o" "gcc" "tools/CMakeFiles/kondo_lint.dir/kondo_lint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-werror/src/lint/CMakeFiles/kondo_lint_lib.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/common/CMakeFiles/kondo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
