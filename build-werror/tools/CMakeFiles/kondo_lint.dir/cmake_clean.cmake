file(REMOVE_RECURSE
  "CMakeFiles/kondo_lint.dir/kondo_lint.cc.o"
  "CMakeFiles/kondo_lint.dir/kondo_lint.cc.o.d"
  "kondo_lint"
  "kondo_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kondo_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
