# Empty dependencies file for kondo_lint.
# This may be replaced when dependencies are built.
