# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-werror/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(kondo_lint_src "/root/repo/build-werror/tools/kondo_lint" "--root" "/root/repo" "src")
set_tests_properties(kondo_lint_src PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
