file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_merge.dir/bench_fig6_merge.cc.o"
  "CMakeFiles/bench_fig6_merge.dir/bench_fig6_merge.cc.o.d"
  "bench_fig6_merge"
  "bench_fig6_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
