file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_stencils.dir/bench_tab1_stencils.cc.o"
  "CMakeFiles/bench_tab1_stencils.dir/bench_tab1_stencils.cc.o.d"
  "bench_tab1_stencils"
  "bench_tab1_stencils.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_stencils.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
