# Empty dependencies file for bench_tab1_stencils.
# This may be replaced when dependencies are built.
