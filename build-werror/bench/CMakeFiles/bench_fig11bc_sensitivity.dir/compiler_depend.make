# Empty compiler generated dependencies file for bench_fig11bc_sensitivity.
# This may be replaced when dependencies are built.
