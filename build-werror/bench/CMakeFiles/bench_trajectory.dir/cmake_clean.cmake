file(REMOVE_RECURSE
  "CMakeFiles/bench_trajectory.dir/bench_trajectory.cc.o"
  "CMakeFiles/bench_trajectory.dir/bench_trajectory.cc.o.d"
  "bench_trajectory"
  "bench_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
