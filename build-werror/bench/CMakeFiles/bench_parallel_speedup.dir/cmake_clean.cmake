file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_speedup.dir/bench_parallel_speedup.cc.o"
  "CMakeFiles/bench_parallel_speedup.dir/bench_parallel_speedup.cc.o.d"
  "bench_parallel_speedup"
  "bench_parallel_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
