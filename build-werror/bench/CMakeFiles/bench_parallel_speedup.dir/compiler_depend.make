# Empty compiler generated dependencies file for bench_parallel_speedup.
# This may be replaced when dependencies are built.
