# Empty compiler generated dependencies file for bench_fig10_time_to_recall.
# This may be replaced when dependencies are built.
