file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_bloat.dir/bench_fig9_bloat.cc.o"
  "CMakeFiles/bench_fig9_bloat.dir/bench_fig9_bloat.cc.o.d"
  "bench_fig9_bloat"
  "bench_fig9_bloat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_bloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
