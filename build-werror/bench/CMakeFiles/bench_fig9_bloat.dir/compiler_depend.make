# Empty compiler generated dependencies file for bench_fig9_bloat.
# This may be replaced when dependencies are built.
