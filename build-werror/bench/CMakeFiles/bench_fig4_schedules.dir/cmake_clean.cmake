file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_schedules.dir/bench_fig4_schedules.cc.o"
  "CMakeFiles/bench_fig4_schedules.dir/bench_fig4_schedules.cc.o.d"
  "bench_fig4_schedules"
  "bench_fig4_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
