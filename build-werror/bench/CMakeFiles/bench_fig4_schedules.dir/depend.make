# Empty dependencies file for bench_fig4_schedules.
# This may be replaced when dependencies are built.
