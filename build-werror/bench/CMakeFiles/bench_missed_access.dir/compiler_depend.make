# Empty compiler generated dependencies file for bench_missed_access.
# This may be replaced when dependencies are built.
