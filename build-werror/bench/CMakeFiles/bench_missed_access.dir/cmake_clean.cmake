file(REMOVE_RECURSE
  "CMakeFiles/bench_missed_access.dir/bench_missed_access.cc.o"
  "CMakeFiles/bench_missed_access.dir/bench_missed_access.cc.o.d"
  "bench_missed_access"
  "bench_missed_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_missed_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
