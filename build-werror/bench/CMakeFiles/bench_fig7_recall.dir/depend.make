# Empty dependencies file for bench_fig7_recall.
# This may be replaced when dependencies are built.
