file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_programs.dir/bench_tab2_programs.cc.o"
  "CMakeFiles/bench_tab2_programs.dir/bench_tab2_programs.cc.o.d"
  "bench_tab2_programs"
  "bench_tab2_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
