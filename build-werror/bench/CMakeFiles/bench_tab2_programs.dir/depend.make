# Empty dependencies file for bench_tab2_programs.
# This may be replaced when dependencies are built.
