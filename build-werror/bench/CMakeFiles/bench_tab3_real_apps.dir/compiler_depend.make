# Empty compiler generated dependencies file for bench_tab3_real_apps.
# This may be replaced when dependencies are built.
