file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_real_apps.dir/bench_tab3_real_apps.cc.o"
  "CMakeFiles/bench_tab3_real_apps.dir/bench_tab3_real_apps.cc.o.d"
  "bench_tab3_real_apps"
  "bench_tab3_real_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_real_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
