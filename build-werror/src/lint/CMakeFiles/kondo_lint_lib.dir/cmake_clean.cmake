file(REMOVE_RECURSE
  "CMakeFiles/kondo_lint_lib.dir/include_graph.cc.o"
  "CMakeFiles/kondo_lint_lib.dir/include_graph.cc.o.d"
  "CMakeFiles/kondo_lint_lib.dir/lexer.cc.o"
  "CMakeFiles/kondo_lint_lib.dir/lexer.cc.o.d"
  "CMakeFiles/kondo_lint_lib.dir/linter.cc.o"
  "CMakeFiles/kondo_lint_lib.dir/linter.cc.o.d"
  "CMakeFiles/kondo_lint_lib.dir/rules.cc.o"
  "CMakeFiles/kondo_lint_lib.dir/rules.cc.o.d"
  "libkondo_lint_lib.a"
  "libkondo_lint_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kondo_lint_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
