file(REMOVE_RECURSE
  "libkondo_lint_lib.a"
)
