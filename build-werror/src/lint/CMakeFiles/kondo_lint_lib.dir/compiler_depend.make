# Empty compiler generated dependencies file for kondo_lint_lib.
# This may be replaced when dependencies are built.
