
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lint/include_graph.cc" "src/lint/CMakeFiles/kondo_lint_lib.dir/include_graph.cc.o" "gcc" "src/lint/CMakeFiles/kondo_lint_lib.dir/include_graph.cc.o.d"
  "/root/repo/src/lint/lexer.cc" "src/lint/CMakeFiles/kondo_lint_lib.dir/lexer.cc.o" "gcc" "src/lint/CMakeFiles/kondo_lint_lib.dir/lexer.cc.o.d"
  "/root/repo/src/lint/linter.cc" "src/lint/CMakeFiles/kondo_lint_lib.dir/linter.cc.o" "gcc" "src/lint/CMakeFiles/kondo_lint_lib.dir/linter.cc.o.d"
  "/root/repo/src/lint/rules.cc" "src/lint/CMakeFiles/kondo_lint_lib.dir/rules.cc.o" "gcc" "src/lint/CMakeFiles/kondo_lint_lib.dir/rules.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-werror/src/common/CMakeFiles/kondo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
