# Empty dependencies file for kondo_geom.
# This may be replaced when dependencies are built.
