file(REMOVE_RECURSE
  "libkondo_geom.a"
)
