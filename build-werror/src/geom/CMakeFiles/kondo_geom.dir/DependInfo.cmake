
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/convex2d.cc" "src/geom/CMakeFiles/kondo_geom.dir/convex2d.cc.o" "gcc" "src/geom/CMakeFiles/kondo_geom.dir/convex2d.cc.o.d"
  "/root/repo/src/geom/convex3d.cc" "src/geom/CMakeFiles/kondo_geom.dir/convex3d.cc.o" "gcc" "src/geom/CMakeFiles/kondo_geom.dir/convex3d.cc.o.d"
  "/root/repo/src/geom/hull.cc" "src/geom/CMakeFiles/kondo_geom.dir/hull.cc.o" "gcc" "src/geom/CMakeFiles/kondo_geom.dir/hull.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-werror/src/common/CMakeFiles/kondo_common.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/array/CMakeFiles/kondo_array.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
