file(REMOVE_RECURSE
  "CMakeFiles/kondo_geom.dir/convex2d.cc.o"
  "CMakeFiles/kondo_geom.dir/convex2d.cc.o.d"
  "CMakeFiles/kondo_geom.dir/convex3d.cc.o"
  "CMakeFiles/kondo_geom.dir/convex3d.cc.o.d"
  "CMakeFiles/kondo_geom.dir/hull.cc.o"
  "CMakeFiles/kondo_geom.dir/hull.cc.o.d"
  "libkondo_geom.a"
  "libkondo_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kondo_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
