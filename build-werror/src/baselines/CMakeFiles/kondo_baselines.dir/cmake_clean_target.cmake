file(REMOVE_RECURSE
  "libkondo_baselines.a"
)
