# Empty compiler generated dependencies file for kondo_baselines.
# This may be replaced when dependencies are built.
