file(REMOVE_RECURSE
  "CMakeFiles/kondo_baselines.dir/afl_fuzzer.cc.o"
  "CMakeFiles/kondo_baselines.dir/afl_fuzzer.cc.o.d"
  "CMakeFiles/kondo_baselines.dir/brute_force.cc.o"
  "CMakeFiles/kondo_baselines.dir/brute_force.cc.o.d"
  "CMakeFiles/kondo_baselines.dir/invariant_baseline.cc.o"
  "CMakeFiles/kondo_baselines.dir/invariant_baseline.cc.o.d"
  "libkondo_baselines.a"
  "libkondo_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kondo_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
