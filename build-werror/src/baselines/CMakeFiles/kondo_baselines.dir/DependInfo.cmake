
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/afl_fuzzer.cc" "src/baselines/CMakeFiles/kondo_baselines.dir/afl_fuzzer.cc.o" "gcc" "src/baselines/CMakeFiles/kondo_baselines.dir/afl_fuzzer.cc.o.d"
  "/root/repo/src/baselines/brute_force.cc" "src/baselines/CMakeFiles/kondo_baselines.dir/brute_force.cc.o" "gcc" "src/baselines/CMakeFiles/kondo_baselines.dir/brute_force.cc.o.d"
  "/root/repo/src/baselines/invariant_baseline.cc" "src/baselines/CMakeFiles/kondo_baselines.dir/invariant_baseline.cc.o" "gcc" "src/baselines/CMakeFiles/kondo_baselines.dir/invariant_baseline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-werror/src/common/CMakeFiles/kondo_common.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/array/CMakeFiles/kondo_array.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/workloads/CMakeFiles/kondo_workloads.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/fuzz/CMakeFiles/kondo_fuzz.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/exec/CMakeFiles/kondo_exec.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/audit/CMakeFiles/kondo_audit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
