
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/array/data_array.cc" "src/array/CMakeFiles/kondo_array.dir/data_array.cc.o" "gcc" "src/array/CMakeFiles/kondo_array.dir/data_array.cc.o.d"
  "/root/repo/src/array/debloated_array.cc" "src/array/CMakeFiles/kondo_array.dir/debloated_array.cc.o" "gcc" "src/array/CMakeFiles/kondo_array.dir/debloated_array.cc.o.d"
  "/root/repo/src/array/dtype.cc" "src/array/CMakeFiles/kondo_array.dir/dtype.cc.o" "gcc" "src/array/CMakeFiles/kondo_array.dir/dtype.cc.o.d"
  "/root/repo/src/array/index.cc" "src/array/CMakeFiles/kondo_array.dir/index.cc.o" "gcc" "src/array/CMakeFiles/kondo_array.dir/index.cc.o.d"
  "/root/repo/src/array/index_set.cc" "src/array/CMakeFiles/kondo_array.dir/index_set.cc.o" "gcc" "src/array/CMakeFiles/kondo_array.dir/index_set.cc.o.d"
  "/root/repo/src/array/kdf_file.cc" "src/array/CMakeFiles/kondo_array.dir/kdf_file.cc.o" "gcc" "src/array/CMakeFiles/kondo_array.dir/kdf_file.cc.o.d"
  "/root/repo/src/array/layout.cc" "src/array/CMakeFiles/kondo_array.dir/layout.cc.o" "gcc" "src/array/CMakeFiles/kondo_array.dir/layout.cc.o.d"
  "/root/repo/src/array/shape.cc" "src/array/CMakeFiles/kondo_array.dir/shape.cc.o" "gcc" "src/array/CMakeFiles/kondo_array.dir/shape.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-werror/src/common/CMakeFiles/kondo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
