file(REMOVE_RECURSE
  "CMakeFiles/kondo_array.dir/data_array.cc.o"
  "CMakeFiles/kondo_array.dir/data_array.cc.o.d"
  "CMakeFiles/kondo_array.dir/debloated_array.cc.o"
  "CMakeFiles/kondo_array.dir/debloated_array.cc.o.d"
  "CMakeFiles/kondo_array.dir/dtype.cc.o"
  "CMakeFiles/kondo_array.dir/dtype.cc.o.d"
  "CMakeFiles/kondo_array.dir/index.cc.o"
  "CMakeFiles/kondo_array.dir/index.cc.o.d"
  "CMakeFiles/kondo_array.dir/index_set.cc.o"
  "CMakeFiles/kondo_array.dir/index_set.cc.o.d"
  "CMakeFiles/kondo_array.dir/kdf_file.cc.o"
  "CMakeFiles/kondo_array.dir/kdf_file.cc.o.d"
  "CMakeFiles/kondo_array.dir/layout.cc.o"
  "CMakeFiles/kondo_array.dir/layout.cc.o.d"
  "CMakeFiles/kondo_array.dir/shape.cc.o"
  "CMakeFiles/kondo_array.dir/shape.cc.o.d"
  "libkondo_array.a"
  "libkondo_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kondo_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
