# Empty compiler generated dependencies file for kondo_array.
# This may be replaced when dependencies are built.
