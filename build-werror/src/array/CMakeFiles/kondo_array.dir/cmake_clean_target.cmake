file(REMOVE_RECURSE
  "libkondo_array.a"
)
