file(REMOVE_RECURSE
  "libkondo_carve.a"
)
