# Empty compiler generated dependencies file for kondo_carve.
# This may be replaced when dependencies are built.
