file(REMOVE_RECURSE
  "CMakeFiles/kondo_carve.dir/carved_subset.cc.o"
  "CMakeFiles/kondo_carve.dir/carved_subset.cc.o.d"
  "CMakeFiles/kondo_carve.dir/carver.cc.o"
  "CMakeFiles/kondo_carve.dir/carver.cc.o.d"
  "CMakeFiles/kondo_carve.dir/chunk_subset.cc.o"
  "CMakeFiles/kondo_carve.dir/chunk_subset.cc.o.d"
  "libkondo_carve.a"
  "libkondo_carve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kondo_carve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
