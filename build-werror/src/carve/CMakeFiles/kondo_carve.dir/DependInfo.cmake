
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/carve/carved_subset.cc" "src/carve/CMakeFiles/kondo_carve.dir/carved_subset.cc.o" "gcc" "src/carve/CMakeFiles/kondo_carve.dir/carved_subset.cc.o.d"
  "/root/repo/src/carve/carver.cc" "src/carve/CMakeFiles/kondo_carve.dir/carver.cc.o" "gcc" "src/carve/CMakeFiles/kondo_carve.dir/carver.cc.o.d"
  "/root/repo/src/carve/chunk_subset.cc" "src/carve/CMakeFiles/kondo_carve.dir/chunk_subset.cc.o" "gcc" "src/carve/CMakeFiles/kondo_carve.dir/chunk_subset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-werror/src/common/CMakeFiles/kondo_common.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/array/CMakeFiles/kondo_array.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/geom/CMakeFiles/kondo_geom.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/exec/CMakeFiles/kondo_exec.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/audit/CMakeFiles/kondo_audit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
