# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-werror/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("lint")
subdirs("array")
subdirs("geom")
subdirs("audit")
subdirs("exec")
subdirs("provenance")
subdirs("carve")
subdirs("fuzz")
subdirs("workloads")
subdirs("shard")
subdirs("baselines")
subdirs("core")
