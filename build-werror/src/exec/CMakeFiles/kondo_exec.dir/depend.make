# Empty dependencies file for kondo_exec.
# This may be replaced when dependencies are built.
