
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/campaign_executor.cc" "src/exec/CMakeFiles/kondo_exec.dir/campaign_executor.cc.o" "gcc" "src/exec/CMakeFiles/kondo_exec.dir/campaign_executor.cc.o.d"
  "/root/repo/src/exec/result_collector.cc" "src/exec/CMakeFiles/kondo_exec.dir/result_collector.cc.o" "gcc" "src/exec/CMakeFiles/kondo_exec.dir/result_collector.cc.o.d"
  "/root/repo/src/exec/test_candidate.cc" "src/exec/CMakeFiles/kondo_exec.dir/test_candidate.cc.o" "gcc" "src/exec/CMakeFiles/kondo_exec.dir/test_candidate.cc.o.d"
  "/root/repo/src/exec/thread_pool.cc" "src/exec/CMakeFiles/kondo_exec.dir/thread_pool.cc.o" "gcc" "src/exec/CMakeFiles/kondo_exec.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-werror/src/common/CMakeFiles/kondo_common.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/array/CMakeFiles/kondo_array.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/audit/CMakeFiles/kondo_audit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
