file(REMOVE_RECURSE
  "libkondo_exec.a"
)
