file(REMOVE_RECURSE
  "CMakeFiles/kondo_exec.dir/campaign_executor.cc.o"
  "CMakeFiles/kondo_exec.dir/campaign_executor.cc.o.d"
  "CMakeFiles/kondo_exec.dir/result_collector.cc.o"
  "CMakeFiles/kondo_exec.dir/result_collector.cc.o.d"
  "CMakeFiles/kondo_exec.dir/test_candidate.cc.o"
  "CMakeFiles/kondo_exec.dir/test_candidate.cc.o.d"
  "CMakeFiles/kondo_exec.dir/thread_pool.cc.o"
  "CMakeFiles/kondo_exec.dir/thread_pool.cc.o.d"
  "libkondo_exec.a"
  "libkondo_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kondo_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
