
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fuzz/campaign_state.cc" "src/fuzz/CMakeFiles/kondo_fuzz.dir/campaign_state.cc.o" "gcc" "src/fuzz/CMakeFiles/kondo_fuzz.dir/campaign_state.cc.o.d"
  "/root/repo/src/fuzz/cluster.cc" "src/fuzz/CMakeFiles/kondo_fuzz.dir/cluster.cc.o" "gcc" "src/fuzz/CMakeFiles/kondo_fuzz.dir/cluster.cc.o.d"
  "/root/repo/src/fuzz/fuzz_schedule.cc" "src/fuzz/CMakeFiles/kondo_fuzz.dir/fuzz_schedule.cc.o" "gcc" "src/fuzz/CMakeFiles/kondo_fuzz.dir/fuzz_schedule.cc.o.d"
  "/root/repo/src/fuzz/param_space.cc" "src/fuzz/CMakeFiles/kondo_fuzz.dir/param_space.cc.o" "gcc" "src/fuzz/CMakeFiles/kondo_fuzz.dir/param_space.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-werror/src/common/CMakeFiles/kondo_common.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/array/CMakeFiles/kondo_array.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/exec/CMakeFiles/kondo_exec.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/audit/CMakeFiles/kondo_audit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
