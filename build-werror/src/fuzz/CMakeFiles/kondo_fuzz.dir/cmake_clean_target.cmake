file(REMOVE_RECURSE
  "libkondo_fuzz.a"
)
