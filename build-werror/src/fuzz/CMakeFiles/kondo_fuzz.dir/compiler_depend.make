# Empty compiler generated dependencies file for kondo_fuzz.
# This may be replaced when dependencies are built.
