file(REMOVE_RECURSE
  "CMakeFiles/kondo_fuzz.dir/campaign_state.cc.o"
  "CMakeFiles/kondo_fuzz.dir/campaign_state.cc.o.d"
  "CMakeFiles/kondo_fuzz.dir/cluster.cc.o"
  "CMakeFiles/kondo_fuzz.dir/cluster.cc.o.d"
  "CMakeFiles/kondo_fuzz.dir/fuzz_schedule.cc.o"
  "CMakeFiles/kondo_fuzz.dir/fuzz_schedule.cc.o.d"
  "CMakeFiles/kondo_fuzz.dir/param_space.cc.o"
  "CMakeFiles/kondo_fuzz.dir/param_space.cc.o.d"
  "libkondo_fuzz.a"
  "libkondo_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kondo_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
