# Empty dependencies file for kondo_core.
# This may be replaced when dependencies are built.
