file(REMOVE_RECURSE
  "CMakeFiles/kondo_core.dir/container_spec.cc.o"
  "CMakeFiles/kondo_core.dir/container_spec.cc.o.d"
  "CMakeFiles/kondo_core.dir/debloat_test.cc.o"
  "CMakeFiles/kondo_core.dir/debloat_test.cc.o.d"
  "CMakeFiles/kondo_core.dir/debloated_file.cc.o"
  "CMakeFiles/kondo_core.dir/debloated_file.cc.o.d"
  "CMakeFiles/kondo_core.dir/ensemble.cc.o"
  "CMakeFiles/kondo_core.dir/ensemble.cc.o.d"
  "CMakeFiles/kondo_core.dir/hybrid.cc.o"
  "CMakeFiles/kondo_core.dir/hybrid.cc.o.d"
  "CMakeFiles/kondo_core.dir/kondo.cc.o"
  "CMakeFiles/kondo_core.dir/kondo.cc.o.d"
  "CMakeFiles/kondo_core.dir/metrics.cc.o"
  "CMakeFiles/kondo_core.dir/metrics.cc.o.d"
  "CMakeFiles/kondo_core.dir/multi_kondo.cc.o"
  "CMakeFiles/kondo_core.dir/multi_kondo.cc.o.d"
  "CMakeFiles/kondo_core.dir/remote_fetch.cc.o"
  "CMakeFiles/kondo_core.dir/remote_fetch.cc.o.d"
  "CMakeFiles/kondo_core.dir/report.cc.o"
  "CMakeFiles/kondo_core.dir/report.cc.o.d"
  "CMakeFiles/kondo_core.dir/runtime.cc.o"
  "CMakeFiles/kondo_core.dir/runtime.cc.o.d"
  "libkondo_core.a"
  "libkondo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kondo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
