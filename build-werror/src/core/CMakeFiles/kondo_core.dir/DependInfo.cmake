
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/container_spec.cc" "src/core/CMakeFiles/kondo_core.dir/container_spec.cc.o" "gcc" "src/core/CMakeFiles/kondo_core.dir/container_spec.cc.o.d"
  "/root/repo/src/core/debloat_test.cc" "src/core/CMakeFiles/kondo_core.dir/debloat_test.cc.o" "gcc" "src/core/CMakeFiles/kondo_core.dir/debloat_test.cc.o.d"
  "/root/repo/src/core/debloated_file.cc" "src/core/CMakeFiles/kondo_core.dir/debloated_file.cc.o" "gcc" "src/core/CMakeFiles/kondo_core.dir/debloated_file.cc.o.d"
  "/root/repo/src/core/ensemble.cc" "src/core/CMakeFiles/kondo_core.dir/ensemble.cc.o" "gcc" "src/core/CMakeFiles/kondo_core.dir/ensemble.cc.o.d"
  "/root/repo/src/core/hybrid.cc" "src/core/CMakeFiles/kondo_core.dir/hybrid.cc.o" "gcc" "src/core/CMakeFiles/kondo_core.dir/hybrid.cc.o.d"
  "/root/repo/src/core/kondo.cc" "src/core/CMakeFiles/kondo_core.dir/kondo.cc.o" "gcc" "src/core/CMakeFiles/kondo_core.dir/kondo.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/kondo_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/kondo_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/multi_kondo.cc" "src/core/CMakeFiles/kondo_core.dir/multi_kondo.cc.o" "gcc" "src/core/CMakeFiles/kondo_core.dir/multi_kondo.cc.o.d"
  "/root/repo/src/core/remote_fetch.cc" "src/core/CMakeFiles/kondo_core.dir/remote_fetch.cc.o" "gcc" "src/core/CMakeFiles/kondo_core.dir/remote_fetch.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/kondo_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/kondo_core.dir/report.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/core/CMakeFiles/kondo_core.dir/runtime.cc.o" "gcc" "src/core/CMakeFiles/kondo_core.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-werror/src/common/CMakeFiles/kondo_common.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/array/CMakeFiles/kondo_array.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/geom/CMakeFiles/kondo_geom.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/audit/CMakeFiles/kondo_audit.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/carve/CMakeFiles/kondo_carve.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/fuzz/CMakeFiles/kondo_fuzz.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/workloads/CMakeFiles/kondo_workloads.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/baselines/CMakeFiles/kondo_baselines.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/shard/CMakeFiles/kondo_shard.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/exec/CMakeFiles/kondo_exec.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/provenance/CMakeFiles/kondo_provenance.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
