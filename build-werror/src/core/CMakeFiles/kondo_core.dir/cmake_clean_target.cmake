file(REMOVE_RECURSE
  "libkondo_core.a"
)
