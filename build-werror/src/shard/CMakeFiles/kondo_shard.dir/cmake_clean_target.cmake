file(REMOVE_RECURSE
  "libkondo_shard.a"
)
