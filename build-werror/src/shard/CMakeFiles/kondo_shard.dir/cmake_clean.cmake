file(REMOVE_RECURSE
  "CMakeFiles/kondo_shard.dir/merge_stage.cc.o"
  "CMakeFiles/kondo_shard.dir/merge_stage.cc.o.d"
  "CMakeFiles/kondo_shard.dir/shard_campaign.cc.o"
  "CMakeFiles/kondo_shard.dir/shard_campaign.cc.o.d"
  "CMakeFiles/kondo_shard.dir/shard_manifest.cc.o"
  "CMakeFiles/kondo_shard.dir/shard_manifest.cc.o.d"
  "CMakeFiles/kondo_shard.dir/shard_plan.cc.o"
  "CMakeFiles/kondo_shard.dir/shard_plan.cc.o.d"
  "CMakeFiles/kondo_shard.dir/shard_scheduler.cc.o"
  "CMakeFiles/kondo_shard.dir/shard_scheduler.cc.o.d"
  "libkondo_shard.a"
  "libkondo_shard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kondo_shard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
