# Empty dependencies file for kondo_shard.
# This may be replaced when dependencies are built.
