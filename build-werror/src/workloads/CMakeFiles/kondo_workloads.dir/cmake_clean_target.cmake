file(REMOVE_RECURSE
  "libkondo_workloads.a"
)
