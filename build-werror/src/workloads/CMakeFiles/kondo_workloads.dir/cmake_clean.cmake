file(REMOVE_RECURSE
  "CMakeFiles/kondo_workloads.dir/block_programs.cc.o"
  "CMakeFiles/kondo_workloads.dir/block_programs.cc.o.d"
  "CMakeFiles/kondo_workloads.dir/cs_programs.cc.o"
  "CMakeFiles/kondo_workloads.dir/cs_programs.cc.o.d"
  "CMakeFiles/kondo_workloads.dir/demo_program.cc.o"
  "CMakeFiles/kondo_workloads.dir/demo_program.cc.o.d"
  "CMakeFiles/kondo_workloads.dir/multi_file_program.cc.o"
  "CMakeFiles/kondo_workloads.dir/multi_file_program.cc.o.d"
  "CMakeFiles/kondo_workloads.dir/prl_programs.cc.o"
  "CMakeFiles/kondo_workloads.dir/prl_programs.cc.o.d"
  "CMakeFiles/kondo_workloads.dir/program.cc.o"
  "CMakeFiles/kondo_workloads.dir/program.cc.o.d"
  "CMakeFiles/kondo_workloads.dir/real_app_programs.cc.o"
  "CMakeFiles/kondo_workloads.dir/real_app_programs.cc.o.d"
  "CMakeFiles/kondo_workloads.dir/registry.cc.o"
  "CMakeFiles/kondo_workloads.dir/registry.cc.o.d"
  "CMakeFiles/kondo_workloads.dir/stencil.cc.o"
  "CMakeFiles/kondo_workloads.dir/stencil.cc.o.d"
  "CMakeFiles/kondo_workloads.dir/vpic_program.cc.o"
  "CMakeFiles/kondo_workloads.dir/vpic_program.cc.o.d"
  "libkondo_workloads.a"
  "libkondo_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kondo_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
