# Empty dependencies file for kondo_workloads.
# This may be replaced when dependencies are built.
