
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/block_programs.cc" "src/workloads/CMakeFiles/kondo_workloads.dir/block_programs.cc.o" "gcc" "src/workloads/CMakeFiles/kondo_workloads.dir/block_programs.cc.o.d"
  "/root/repo/src/workloads/cs_programs.cc" "src/workloads/CMakeFiles/kondo_workloads.dir/cs_programs.cc.o" "gcc" "src/workloads/CMakeFiles/kondo_workloads.dir/cs_programs.cc.o.d"
  "/root/repo/src/workloads/demo_program.cc" "src/workloads/CMakeFiles/kondo_workloads.dir/demo_program.cc.o" "gcc" "src/workloads/CMakeFiles/kondo_workloads.dir/demo_program.cc.o.d"
  "/root/repo/src/workloads/multi_file_program.cc" "src/workloads/CMakeFiles/kondo_workloads.dir/multi_file_program.cc.o" "gcc" "src/workloads/CMakeFiles/kondo_workloads.dir/multi_file_program.cc.o.d"
  "/root/repo/src/workloads/prl_programs.cc" "src/workloads/CMakeFiles/kondo_workloads.dir/prl_programs.cc.o" "gcc" "src/workloads/CMakeFiles/kondo_workloads.dir/prl_programs.cc.o.d"
  "/root/repo/src/workloads/program.cc" "src/workloads/CMakeFiles/kondo_workloads.dir/program.cc.o" "gcc" "src/workloads/CMakeFiles/kondo_workloads.dir/program.cc.o.d"
  "/root/repo/src/workloads/real_app_programs.cc" "src/workloads/CMakeFiles/kondo_workloads.dir/real_app_programs.cc.o" "gcc" "src/workloads/CMakeFiles/kondo_workloads.dir/real_app_programs.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/kondo_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/kondo_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/stencil.cc" "src/workloads/CMakeFiles/kondo_workloads.dir/stencil.cc.o" "gcc" "src/workloads/CMakeFiles/kondo_workloads.dir/stencil.cc.o.d"
  "/root/repo/src/workloads/vpic_program.cc" "src/workloads/CMakeFiles/kondo_workloads.dir/vpic_program.cc.o" "gcc" "src/workloads/CMakeFiles/kondo_workloads.dir/vpic_program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-werror/src/common/CMakeFiles/kondo_common.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/array/CMakeFiles/kondo_array.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/audit/CMakeFiles/kondo_audit.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/fuzz/CMakeFiles/kondo_fuzz.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/exec/CMakeFiles/kondo_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
