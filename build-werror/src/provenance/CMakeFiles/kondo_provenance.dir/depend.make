# Empty dependencies file for kondo_provenance.
# This may be replaced when dependencies are built.
