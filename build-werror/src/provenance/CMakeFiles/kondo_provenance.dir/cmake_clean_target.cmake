file(REMOVE_RECURSE
  "libkondo_provenance.a"
)
