file(REMOVE_RECURSE
  "CMakeFiles/kondo_provenance.dir/crc32.cc.o"
  "CMakeFiles/kondo_provenance.dir/crc32.cc.o.d"
  "CMakeFiles/kondo_provenance.dir/kel2_reader.cc.o"
  "CMakeFiles/kondo_provenance.dir/kel2_reader.cc.o.d"
  "CMakeFiles/kondo_provenance.dir/kel2_writer.cc.o"
  "CMakeFiles/kondo_provenance.dir/kel2_writer.cc.o.d"
  "CMakeFiles/kondo_provenance.dir/persist.cc.o"
  "CMakeFiles/kondo_provenance.dir/persist.cc.o.d"
  "CMakeFiles/kondo_provenance.dir/provenance_query.cc.o"
  "CMakeFiles/kondo_provenance.dir/provenance_query.cc.o.d"
  "CMakeFiles/kondo_provenance.dir/varint.cc.o"
  "CMakeFiles/kondo_provenance.dir/varint.cc.o.d"
  "libkondo_provenance.a"
  "libkondo_provenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kondo_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
