
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/provenance/crc32.cc" "src/provenance/CMakeFiles/kondo_provenance.dir/crc32.cc.o" "gcc" "src/provenance/CMakeFiles/kondo_provenance.dir/crc32.cc.o.d"
  "/root/repo/src/provenance/kel2_reader.cc" "src/provenance/CMakeFiles/kondo_provenance.dir/kel2_reader.cc.o" "gcc" "src/provenance/CMakeFiles/kondo_provenance.dir/kel2_reader.cc.o.d"
  "/root/repo/src/provenance/kel2_writer.cc" "src/provenance/CMakeFiles/kondo_provenance.dir/kel2_writer.cc.o" "gcc" "src/provenance/CMakeFiles/kondo_provenance.dir/kel2_writer.cc.o.d"
  "/root/repo/src/provenance/persist.cc" "src/provenance/CMakeFiles/kondo_provenance.dir/persist.cc.o" "gcc" "src/provenance/CMakeFiles/kondo_provenance.dir/persist.cc.o.d"
  "/root/repo/src/provenance/provenance_query.cc" "src/provenance/CMakeFiles/kondo_provenance.dir/provenance_query.cc.o" "gcc" "src/provenance/CMakeFiles/kondo_provenance.dir/provenance_query.cc.o.d"
  "/root/repo/src/provenance/varint.cc" "src/provenance/CMakeFiles/kondo_provenance.dir/varint.cc.o" "gcc" "src/provenance/CMakeFiles/kondo_provenance.dir/varint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-werror/src/common/CMakeFiles/kondo_common.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/array/CMakeFiles/kondo_array.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/audit/CMakeFiles/kondo_audit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
