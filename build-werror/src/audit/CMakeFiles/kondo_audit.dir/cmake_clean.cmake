file(REMOVE_RECURSE
  "CMakeFiles/kondo_audit.dir/auditor.cc.o"
  "CMakeFiles/kondo_audit.dir/auditor.cc.o.d"
  "CMakeFiles/kondo_audit.dir/event.cc.o"
  "CMakeFiles/kondo_audit.dir/event.cc.o.d"
  "CMakeFiles/kondo_audit.dir/event_log.cc.o"
  "CMakeFiles/kondo_audit.dir/event_log.cc.o.d"
  "CMakeFiles/kondo_audit.dir/event_store.cc.o"
  "CMakeFiles/kondo_audit.dir/event_store.cc.o.d"
  "CMakeFiles/kondo_audit.dir/interval_btree.cc.o"
  "CMakeFiles/kondo_audit.dir/interval_btree.cc.o.d"
  "CMakeFiles/kondo_audit.dir/offset_mapper.cc.o"
  "CMakeFiles/kondo_audit.dir/offset_mapper.cc.o.d"
  "CMakeFiles/kondo_audit.dir/traced_file.cc.o"
  "CMakeFiles/kondo_audit.dir/traced_file.cc.o.d"
  "libkondo_audit.a"
  "libkondo_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kondo_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
