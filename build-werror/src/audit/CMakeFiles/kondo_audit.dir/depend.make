# Empty dependencies file for kondo_audit.
# This may be replaced when dependencies are built.
