
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audit/auditor.cc" "src/audit/CMakeFiles/kondo_audit.dir/auditor.cc.o" "gcc" "src/audit/CMakeFiles/kondo_audit.dir/auditor.cc.o.d"
  "/root/repo/src/audit/event.cc" "src/audit/CMakeFiles/kondo_audit.dir/event.cc.o" "gcc" "src/audit/CMakeFiles/kondo_audit.dir/event.cc.o.d"
  "/root/repo/src/audit/event_log.cc" "src/audit/CMakeFiles/kondo_audit.dir/event_log.cc.o" "gcc" "src/audit/CMakeFiles/kondo_audit.dir/event_log.cc.o.d"
  "/root/repo/src/audit/event_store.cc" "src/audit/CMakeFiles/kondo_audit.dir/event_store.cc.o" "gcc" "src/audit/CMakeFiles/kondo_audit.dir/event_store.cc.o.d"
  "/root/repo/src/audit/interval_btree.cc" "src/audit/CMakeFiles/kondo_audit.dir/interval_btree.cc.o" "gcc" "src/audit/CMakeFiles/kondo_audit.dir/interval_btree.cc.o.d"
  "/root/repo/src/audit/offset_mapper.cc" "src/audit/CMakeFiles/kondo_audit.dir/offset_mapper.cc.o" "gcc" "src/audit/CMakeFiles/kondo_audit.dir/offset_mapper.cc.o.d"
  "/root/repo/src/audit/traced_file.cc" "src/audit/CMakeFiles/kondo_audit.dir/traced_file.cc.o" "gcc" "src/audit/CMakeFiles/kondo_audit.dir/traced_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-werror/src/common/CMakeFiles/kondo_common.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/array/CMakeFiles/kondo_array.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
