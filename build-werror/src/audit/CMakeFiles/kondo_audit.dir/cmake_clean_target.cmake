file(REMOVE_RECURSE
  "libkondo_audit.a"
)
