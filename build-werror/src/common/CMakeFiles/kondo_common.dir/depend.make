# Empty dependencies file for kondo_common.
# This may be replaced when dependencies are built.
