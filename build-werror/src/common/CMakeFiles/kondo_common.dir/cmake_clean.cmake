file(REMOVE_RECURSE
  "CMakeFiles/kondo_common.dir/interval_set.cc.o"
  "CMakeFiles/kondo_common.dir/interval_set.cc.o.d"
  "CMakeFiles/kondo_common.dir/logging.cc.o"
  "CMakeFiles/kondo_common.dir/logging.cc.o.d"
  "CMakeFiles/kondo_common.dir/rng.cc.o"
  "CMakeFiles/kondo_common.dir/rng.cc.o.d"
  "CMakeFiles/kondo_common.dir/status.cc.o"
  "CMakeFiles/kondo_common.dir/status.cc.o.d"
  "CMakeFiles/kondo_common.dir/strings.cc.o"
  "CMakeFiles/kondo_common.dir/strings.cc.o.d"
  "libkondo_common.a"
  "libkondo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kondo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
