file(REMOVE_RECURSE
  "libkondo_common.a"
)
