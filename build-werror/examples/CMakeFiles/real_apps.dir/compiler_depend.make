# Empty compiler generated dependencies file for real_apps.
# This may be replaced when dependencies are built.
