file(REMOVE_RECURSE
  "CMakeFiles/real_apps.dir/real_apps.cpp.o"
  "CMakeFiles/real_apps.dir/real_apps.cpp.o.d"
  "real_apps"
  "real_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
