
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/audit_explorer.cpp" "examples/CMakeFiles/audit_explorer.dir/audit_explorer.cpp.o" "gcc" "examples/CMakeFiles/audit_explorer.dir/audit_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-werror/src/audit/CMakeFiles/kondo_audit.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/array/CMakeFiles/kondo_array.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/common/CMakeFiles/kondo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
