# Empty dependencies file for audit_explorer.
# This may be replaced when dependencies are built.
