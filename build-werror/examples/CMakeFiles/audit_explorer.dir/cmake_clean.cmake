file(REMOVE_RECURSE
  "CMakeFiles/audit_explorer.dir/audit_explorer.cpp.o"
  "CMakeFiles/audit_explorer.dir/audit_explorer.cpp.o.d"
  "audit_explorer"
  "audit_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
