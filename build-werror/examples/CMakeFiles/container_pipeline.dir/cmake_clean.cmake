file(REMOVE_RECURSE
  "CMakeFiles/container_pipeline.dir/container_pipeline.cpp.o"
  "CMakeFiles/container_pipeline.dir/container_pipeline.cpp.o.d"
  "container_pipeline"
  "container_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/container_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
