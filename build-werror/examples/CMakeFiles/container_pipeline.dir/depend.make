# Empty dependencies file for container_pipeline.
# This may be replaced when dependencies are built.
