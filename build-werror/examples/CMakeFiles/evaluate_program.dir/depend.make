# Empty dependencies file for evaluate_program.
# This may be replaced when dependencies are built.
