file(REMOVE_RECURSE
  "CMakeFiles/evaluate_program.dir/evaluate_program.cpp.o"
  "CMakeFiles/evaluate_program.dir/evaluate_program.cpp.o.d"
  "evaluate_program"
  "evaluate_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluate_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
