# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-werror/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-werror/tests/common_test[1]_include.cmake")
include("/root/repo/build-werror/tests/array_test[1]_include.cmake")
include("/root/repo/build-werror/tests/kdf_test[1]_include.cmake")
include("/root/repo/build-werror/tests/geom_test[1]_include.cmake")
include("/root/repo/build-werror/tests/audit_test[1]_include.cmake")
include("/root/repo/build-werror/tests/exec_test[1]_include.cmake")
include("/root/repo/build-werror/tests/provenance_test[1]_include.cmake")
include("/root/repo/build-werror/tests/carve_test[1]_include.cmake")
include("/root/repo/build-werror/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build-werror/tests/workloads_test[1]_include.cmake")
include("/root/repo/build-werror/tests/baselines_test[1]_include.cmake")
include("/root/repo/build-werror/tests/core_test[1]_include.cmake")
include("/root/repo/build-werror/tests/integration_test[1]_include.cmake")
include("/root/repo/build-werror/tests/extensions_test[1]_include.cmake")
include("/root/repo/build-werror/tests/multi_file_test[1]_include.cmake")
include("/root/repo/build-werror/tests/property_test[1]_include.cmake")
include("/root/repo/build-werror/tests/report_test[1]_include.cmake")
include("/root/repo/build-werror/tests/campaign_state_test[1]_include.cmake")
include("/root/repo/build-werror/tests/shard_test[1]_include.cmake")
include("/root/repo/build-werror/tests/stress_test[1]_include.cmake")
include("/root/repo/build-werror/tests/replay_extensions_test[1]_include.cmake")
include("/root/repo/build-werror/tests/misc_coverage_test[1]_include.cmake")
include("/root/repo/build-werror/tests/lint_test[1]_include.cmake")
include("/root/repo/build-werror/tests/cli_test[1]_include.cmake")
