# Empty compiler generated dependencies file for multi_file_test.
# This may be replaced when dependencies are built.
