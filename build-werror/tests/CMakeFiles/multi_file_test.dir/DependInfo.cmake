
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/multi_file_test.cc" "tests/CMakeFiles/multi_file_test.dir/multi_file_test.cc.o" "gcc" "tests/CMakeFiles/multi_file_test.dir/multi_file_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-werror/src/core/CMakeFiles/kondo_core.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/baselines/CMakeFiles/kondo_baselines.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/provenance/CMakeFiles/kondo_provenance.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/shard/CMakeFiles/kondo_shard.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/carve/CMakeFiles/kondo_carve.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/geom/CMakeFiles/kondo_geom.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/workloads/CMakeFiles/kondo_workloads.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/fuzz/CMakeFiles/kondo_fuzz.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/exec/CMakeFiles/kondo_exec.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/audit/CMakeFiles/kondo_audit.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/array/CMakeFiles/kondo_array.dir/DependInfo.cmake"
  "/root/repo/build-werror/src/common/CMakeFiles/kondo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
