file(REMOVE_RECURSE
  "CMakeFiles/multi_file_test.dir/multi_file_test.cc.o"
  "CMakeFiles/multi_file_test.dir/multi_file_test.cc.o.d"
  "multi_file_test"
  "multi_file_test.pdb"
  "multi_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
