file(REMOVE_RECURSE
  "CMakeFiles/replay_extensions_test.dir/replay_extensions_test.cc.o"
  "CMakeFiles/replay_extensions_test.dir/replay_extensions_test.cc.o.d"
  "replay_extensions_test"
  "replay_extensions_test.pdb"
  "replay_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
