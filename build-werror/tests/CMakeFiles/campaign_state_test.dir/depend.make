# Empty dependencies file for campaign_state_test.
# This may be replaced when dependencies are built.
