file(REMOVE_RECURSE
  "CMakeFiles/campaign_state_test.dir/campaign_state_test.cc.o"
  "CMakeFiles/campaign_state_test.dir/campaign_state_test.cc.o.d"
  "campaign_state_test"
  "campaign_state_test.pdb"
  "campaign_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
