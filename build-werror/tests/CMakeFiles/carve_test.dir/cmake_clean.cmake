file(REMOVE_RECURSE
  "CMakeFiles/carve_test.dir/carve_test.cc.o"
  "CMakeFiles/carve_test.dir/carve_test.cc.o.d"
  "carve_test"
  "carve_test.pdb"
  "carve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
