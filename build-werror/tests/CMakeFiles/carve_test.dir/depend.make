# Empty dependencies file for carve_test.
# This may be replaced when dependencies are built.
