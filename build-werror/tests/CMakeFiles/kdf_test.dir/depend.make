# Empty dependencies file for kdf_test.
# This may be replaced when dependencies are built.
