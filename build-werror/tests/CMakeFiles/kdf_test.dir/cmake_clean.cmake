file(REMOVE_RECURSE
  "CMakeFiles/kdf_test.dir/kdf_test.cc.o"
  "CMakeFiles/kdf_test.dir/kdf_test.cc.o.d"
  "kdf_test"
  "kdf_test.pdb"
  "kdf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
