// Compression ratio and in-situ query latency of the KEL2 block-compressed
// lineage store vs. the fixed-width KEL1 store, over the three access
// patterns of the acceptance suite (sequential stencil, uniform random,
// clustered). Emits BENCH_provenance.json in the working directory.
//
// Knobs: KONDO_BENCH_PROV_EVENTS (default 200000),
//        KONDO_BENCH_PROV_REPS (default 5).

#include <cstdio>
#include <string>
#include <vector>

#include "audit/event.h"
#include "audit/event_store.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "provenance/kel2_reader.h"
#include "provenance/kel2_writer.h"
#include "provenance/persist.h"
#include "provenance/provenance_query.h"

namespace kondo {
namespace {

Event MakeEvent(int64_t pid, EventType type, int64_t offset, int64_t size) {
  Event event;
  event.id = EventId{pid, 1};
  event.type = type;
  event.offset = offset;
  event.size = size;
  return event;
}

/// Near-sequential stencil sweeps: the pattern the paper's audited
/// re-executions produce and the one KEL2's delta coding targets.
std::vector<Event> StencilStream(int64_t n, Rng* rng) {
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(n));
  int64_t pid = 0;
  int64_t offset = 0;
  const int64_t width = 16;
  for (int64_t i = 0; i < n; ++i) {
    if (i % 8192 == 0) {
      ++pid;
      offset = rng->UniformInt(0, 4096);
    }
    events.push_back(MakeEvent(pid, EventType::kPread, offset, width));
    offset += width;
  }
  return events;
}

std::vector<Event> UniformStream(int64_t n, Rng* rng) {
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    events.push_back(MakeEvent(rng->UniformInt(1, 16), EventType::kPread,
                               rng->UniformInt(0, 1 << 28),
                               rng->UniformInt(1, 4096)));
  }
  return events;
}

std::vector<Event> ClusteredStream(int64_t n, Rng* rng) {
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(n));
  while (static_cast<int64_t>(events.size()) < n) {
    int64_t offset = rng->UniformInt(0, 1 << 28);
    const int64_t pid = rng->UniformInt(1, 8);
    const int64_t burst = rng->UniformInt(16, 256);
    for (int64_t i = 0;
         i < burst && static_cast<int64_t>(events.size()) < n; ++i) {
      const int64_t size = rng->UniformInt(8, 256);
      events.push_back(MakeEvent(pid, EventType::kPread, offset, size));
      offset += size;
    }
  }
  return events;
}

struct PatternResult {
  std::string pattern;
  int64_t events = 0;
  int64_t kel1_bytes = 0;
  int64_t kel2_bytes = 0;
  int64_t kel2_blocks = 0;
  double ratio = 0.0;
  double write_kel1_seconds = 0.0;
  double write_kel2_seconds = 0.0;
  double full_scan_seconds = 0.0;  // KEL1 decode-everything + filter.
  double in_situ_seconds = 0.0;    // KEL2 descriptor-pruned query.
  double speedup = 0.0;
  int64_t blocks_total = 0;
  int64_t blocks_decoded = 0;
  int64_t blocks_skipped = 0;
  int64_t query_matches = 0;
};

StatusOr<PatternResult> RunPattern(const std::string& name,
                                   const std::vector<Event>& events,
                                   int reps) {
  PatternResult result;
  result.pattern = name;
  result.events = static_cast<int64_t>(events.size());
  const std::string kel1_path = "/tmp/kondo_bench_prov_" + name + ".kel";
  const std::string kel2_path = "/tmp/kondo_bench_prov_" + name + ".kel2";

  {
    Stopwatch stopwatch;
    KONDO_ASSIGN_OR_RETURN(EventStoreWriter writer,
                           EventStoreWriter::Create(kel1_path));
    for (const Event& event : events) {
      KONDO_RETURN_IF_ERROR(writer.Append(event));
    }
    KONDO_RETURN_IF_ERROR(writer.Close());
    result.write_kel1_seconds = stopwatch.ElapsedSeconds();
  }
  {
    Stopwatch stopwatch;
    KONDO_ASSIGN_OR_RETURN(Kel2Writer writer, Kel2Writer::Create(kel2_path));
    for (const Event& event : events) {
      KONDO_RETURN_IF_ERROR(writer.Append(event));
    }
    KONDO_RETURN_IF_ERROR(writer.Close());
    result.write_kel2_seconds = stopwatch.ElapsedSeconds();
  }

  KONDO_ASSIGN_OR_RETURN(result.kel1_bytes, FileSizeBytes(kel1_path));
  KONDO_ASSIGN_OR_RETURN(result.kel2_bytes, FileSizeBytes(kel2_path));
  result.ratio = static_cast<double>(result.kel1_bytes) /
                 static_cast<double>(result.kel2_bytes);

  // Interval query: a 64 KiB window in the low quarter of the offset
  // space, the "which runs touched [a,b) of file F" question.
  const int64_t begin = 1 << 16;
  const int64_t end = begin + (1 << 16);

  {
    Stopwatch stopwatch;
    for (int rep = 0; rep < reps; ++rep) {
      KONDO_ASSIGN_OR_RETURN(std::vector<Event> all,
                             ReadEventStore(kel1_path));
      int64_t matches = 0;
      for (const Event& event : all) {
        if (event.IsDataAccess() && event.id.file_id == 1 &&
            event.offset < end && begin < event.offset + event.size) {
          ++matches;
        }
      }
      result.query_matches = matches;
    }
    result.full_scan_seconds =
        stopwatch.ElapsedSeconds() / static_cast<double>(reps);
  }
  {
    Stopwatch stopwatch;
    for (int rep = 0; rep < reps; ++rep) {
      KONDO_ASSIGN_OR_RETURN(Kel2Reader reader, Kel2Reader::Open(kel2_path));
      ProvenanceQuery query(&reader);
      KONDO_ASSIGN_OR_RETURN(std::vector<Event> matches,
                             query.EventsOverlapping(1, begin, end));
      if (static_cast<int64_t>(matches.size()) != result.query_matches) {
        return InternalError("KEL2 query disagrees with KEL1 full scan");
      }
      result.blocks_total = reader.NumBlocks();
      result.blocks_decoded = query.stats().blocks_decoded;
      result.blocks_skipped = query.stats().blocks_skipped;
    }
    result.in_situ_seconds =
        stopwatch.ElapsedSeconds() / static_cast<double>(reps);
  }
  result.kel2_blocks = result.blocks_total;
  result.speedup = result.in_situ_seconds > 0.0
                       ? result.full_scan_seconds / result.in_situ_seconds
                       : 0.0;

  std::remove(kel1_path.c_str());
  std::remove(kel2_path.c_str());
  return result;
}

void PrintRow(const PatternResult& r) {
  std::printf("%-10s %8lld ev  KEL1 %9lld B  KEL2 %9lld B  %5.2fx smaller  "
              "query %8.3f ms -> %8.3f ms (decoded %lld/%lld blocks, "
              "%lld skipped)\n",
              r.pattern.c_str(), static_cast<long long>(r.events),
              static_cast<long long>(r.kel1_bytes),
              static_cast<long long>(r.kel2_bytes), r.ratio,
              1e3 * r.full_scan_seconds, 1e3 * r.in_situ_seconds,
              static_cast<long long>(r.blocks_decoded),
              static_cast<long long>(r.blocks_total),
              static_cast<long long>(r.blocks_skipped));
}

void WriteJson(const std::vector<PatternResult>& results,
               const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"provenance\",\n  \"patterns\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const PatternResult& r = results[i];
    std::fprintf(
        f,
        "    {\"pattern\": \"%s\", \"events\": %lld,\n"
        "     \"kel1_bytes\": %lld, \"kel2_bytes\": %lld, "
        "\"size_ratio\": %.4f,\n"
        "     \"write_kel1_seconds\": %.6f, \"write_kel2_seconds\": %.6f,\n"
        "     \"full_scan_query_seconds\": %.6f, "
        "\"in_situ_query_seconds\": %.6f, \"query_speedup\": %.4f,\n"
        "     \"blocks_total\": %lld, \"blocks_decoded\": %lld, "
        "\"blocks_skipped\": %lld, \"query_matches\": %lld}%s\n",
        r.pattern.c_str(), static_cast<long long>(r.events),
        static_cast<long long>(r.kel1_bytes),
        static_cast<long long>(r.kel2_bytes), r.ratio,
        r.write_kel1_seconds, r.write_kel2_seconds, r.full_scan_seconds,
        r.in_situ_seconds, r.speedup,
        static_cast<long long>(r.blocks_total),
        static_cast<long long>(r.blocks_decoded),
        static_cast<long long>(r.blocks_skipped),
        static_cast<long long>(r.query_matches),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int Run() {
  const int64_t n = bench::EnvInt("KONDO_BENCH_PROV_EVENTS", 200000);
  const int reps = bench::EnvInt("KONDO_BENCH_PROV_REPS", 5);
  Rng rng(42);

  std::vector<PatternResult> results;
  const struct {
    const char* name;
    std::vector<Event> (*make)(int64_t, Rng*);
  } kPatterns[] = {{"stencil", StencilStream},
                   {"uniform", UniformStream},
                   {"clustered", ClusteredStream}};
  for (const auto& pattern : kPatterns) {
    Rng fork = rng.Fork();
    StatusOr<PatternResult> result =
        RunPattern(pattern.name, pattern.make(n, &fork), reps);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", pattern.name,
                   result.status().ToString().c_str());
      return 1;
    }
    PrintRow(*result);
    results.push_back(*std::move(result));
  }
  WriteJson(results, "BENCH_provenance.json");

  // The acceptance gates: stencil streams must shrink >=3x, and the
  // interval query must decode strictly fewer blocks than a full scan.
  bool ok = true;
  if (results[0].ratio < 3.0) {
    std::fprintf(stderr, "FAIL: stencil ratio %.2f < 3.0\n",
                 results[0].ratio);
    ok = false;
  }
  for (const PatternResult& r : results) {
    if (r.blocks_total > 1 && r.blocks_decoded >= r.blocks_total) {
      std::fprintf(stderr, "FAIL: %s decoded every block (%lld)\n",
                   r.pattern.c_str(),
                   static_cast<long long>(r.blocks_decoded));
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace kondo

int main() { return kondo::Run(); }
