// Figure 10 — time taken to reach a fixed recall: Kondo runs to its
// stopping criteria, then BF and AFL run until they match Kondo's recall or
// hit a cap (their achieved recall is reported in parentheses, as in the
// paper's figure).
//
// Caps are scaled to this machine via KONDO_BENCH_CAP_SECONDS (default
// 10 s); the paper's shape — BF eventually matches at ~30x Kondo's time,
// AFL stalls below Kondo's recall on hole/block programs — is the target.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>

#include "baselines/afl_fuzzer.h"
#include "baselines/brute_force.h"
#include "bench/bench_util.h"
#include "common/stopwatch.h"

namespace kondo {
namespace {

struct TimedRecall {
  double seconds = 0.0;
  double recall = 0.0;
};

/// Runs BF with doubling time budgets until `target` recall or the cap;
/// reports the (wall) time of the successful campaign — "the time taken to
/// reach the same recall as Kondo".
TimedRecall BruteForceUntil(const Program& program, double target,
                            double cap_seconds) {
  const IndexSet& truth = program.GroundTruth();
  double budget = std::min(0.1, cap_seconds);
  TimedRecall result;
  while (true) {
    BruteForceConfig config;
    config.rng_seed = 1;
    config.max_seconds = budget;
    config.exec_overhead_micros = bench::ExecCostMicros();
    const BruteForceResult bf = RunBruteForce(program, config);
    result.recall =
        static_cast<double>(truth.IntersectionSize(bf.discovered)) /
        static_cast<double>(truth.size());
    result.seconds = bf.elapsed_seconds;
    if (result.recall >= target || bf.exhausted || budget >= cap_seconds) {
      break;
    }
    budget = std::min(budget * 2.0, cap_seconds);
  }
  return result;
}

/// Runs AFL in growing-budget stages until `target` recall, the cap, or a
/// stable recall (double the time improves recall < 1%, the paper's
/// stability criterion).
TimedRecall AflUntil(const Program& program, double target,
                     double cap_seconds) {
  const IndexSet& truth = program.GroundTruth();
  double budget = std::min(0.25, cap_seconds);
  double last_recall = -1.0;
  TimedRecall result;
  while (true) {
    AflConfig config;
    config.max_seconds = budget;
    config.rng_seed = 1;
    config.exec_overhead_micros += bench::ExecCostMicros();
    const AflResult afl = AflFuzzer(program, config).Run();
    result.recall =
        static_cast<double>(truth.IntersectionSize(afl.coverage)) /
        static_cast<double>(truth.size());
    result.seconds = budget;
    if (result.recall >= target || budget >= cap_seconds) {
      break;
    }
    if (last_recall >= 0.0 && result.recall - last_recall < 0.01) {
      break;  // Stable: doubling the budget barely helped.
    }
    last_recall = result.recall;
    budget = std::min(budget * 2.0, cap_seconds);
  }
  return result;
}

void PrintFigure() {
  const double cap = bench::EnvDouble("KONDO_BENCH_CAP_SECONDS", 10.0);
  std::printf(
      "=== Figure 10: time to reach Kondo's recall (cap %.0fs) ===\n\n",
      cap);
  std::printf("%-7s %16s %18s %18s\n", "prog", "Kondo s (recall)",
              "BF s (recall)", "AFL s (recall)");
  for (const std::string& name : MicroBenchmarkNames()) {
    const std::unique_ptr<Program> program = CreateProgram(name);
    program->GroundTruth();

    const bench::ToolOutcome kondo =
        bench::RunKondoOnce(*program, /*seed=*/1, /*budget_seconds=*/0.0);
    // Ask the baselines to reach (slightly under) Kondo's recall.
    const double target = kondo.recall * 0.999;
    const TimedRecall bf = BruteForceUntil(*program, target, cap);
    const TimedRecall afl = AflUntil(*program, target, cap);
    std::printf("%-7s %8.2f (%.2f) %10.2f (%.2f) %10.2f (%.2f)\n",
                name.c_str(), kondo.seconds, kondo.recall, bf.seconds,
                bf.recall, afl.seconds, afl.recall);
  }
  std::printf("\n");
}

void BM_BruteForceFullCs(benchmark::State& state) {
  const std::unique_ptr<Program> program = CreateProgram("CS");
  for (auto _ : state) {
    BruteForceConfig config;
    benchmark::DoNotOptimize(RunBruteForce(*program, config).runs);
  }
}
BENCHMARK(BM_BruteForceFullCs)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kondo

int main(int argc, char** argv) {
  kondo::PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
