// Figure 6 — the bottom-up merge algorithm against the single-hull
// baseline: per-stage hull counts and the covered-area blow-up a single
// global hull (Fig. 6b) suffers versus merged cell hulls (Fig. 6d).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "carve/carver.h"
#include "common/rng.h"

namespace kondo {
namespace {

/// Builds a Fig.6-style point set: three separated blobs, two of which are
/// split into nearby fragments that should merge back together.
IndexSet FigureSixPoints(uint64_t seed) {
  const Shape shape{128, 128};
  IndexSet points(shape);
  Rng rng(seed);
  struct Blob {
    int64_t cx, cy, spread, count;
  };
  // Blob A: two nearby fragments (merge expected). Blob B: distant.
  const Blob blobs[] = {
      {20, 20, 7, 60},  {36, 30, 7, 60},   // Fragments of one region.
      {30, 90, 9, 80},                     // Second region.
      {100, 45, 6, 50}, {108, 58, 6, 50},  // Fragments of a third region.
  };
  for (const Blob& blob : blobs) {
    for (int64_t i = 0; i < blob.count; ++i) {
      points.Insert(Index{blob.cx + rng.UniformInt(-blob.spread, blob.spread),
                          blob.cy + rng.UniformInt(-blob.spread, blob.spread)});
    }
  }
  return points;
}

void PrintFigure() {
  std::printf("=== Figure 6: merge algorithm vs single convex hull ===\n\n");
  const IndexSet points = FigureSixPoints(7);

  CarveStats stats;
  Carver carver{CarveConfig{}};
  const CarvedSubset merged = carver.Carve(points, &stats);
  const IndexSet merged_raster = merged.Rasterize();

  const CarvedSubset single = SimpleConvexCarve(points);
  const IndexSet single_raster = single.Rasterize();

  std::printf("observed index points:            %zu\n", points.size());
  std::printf("(a) initial cell hulls:           %d (cell size %lld)\n",
              stats.initial_hulls,
              static_cast<long long>(carver.config().cell_size));
  std::printf("(c) pairwise merges performed:    %d\n",
              stats.merge_operations);
  std::printf("(d) final merged hulls:           %d, covering %zu indices\n",
              stats.final_hulls, merged_raster.size());
  std::printf("(b) single-hull baseline:         1 hull covering %zu "
              "indices (%.1fx blow-up vs merged)\n\n",
              single_raster.size(),
              static_cast<double>(single_raster.size()) /
                  static_cast<double>(merged_raster.size()));
}

void BM_CarveFigureSix(benchmark::State& state) {
  const IndexSet points = FigureSixPoints(7);
  const Carver carver{CarveConfig{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(carver.Carve(points).num_hulls());
  }
}
BENCHMARK(BM_CarveFigureSix)->Unit(benchmark::kMillisecond);

void BM_CarveScalesWithPoints(benchmark::State& state) {
  const Shape shape{512, 512};
  IndexSet points(shape);
  Rng rng(3);
  for (int64_t i = 0; i < state.range(0); ++i) {
    points.Insert(Index{rng.UniformInt(0, 127), rng.UniformInt(0, 127)});
  }
  const Carver carver{CarveConfig{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(carver.Carve(points).num_hulls());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CarveScalesWithPoints)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kondo

int main(int argc, char** argv) {
  kondo::PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
