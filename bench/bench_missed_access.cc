// Section V-D1 — how often a user is hurt by recall < 1: the percentage of
// parameter valuations whose run would hit at least one missed (Null)
// offset in the carved subset. The paper reports 0.0%–0.8% across programs.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "core/metrics.h"

namespace kondo {
namespace {

void PrintTable() {
  const int reps = bench::EnvInt("KONDO_BENCH_REPS", 5);
  std::printf(
      "=== §V-D1: valuations with at least one missed access ===\n\n");
  std::printf("%-7s %14s %12s %12s\n", "prog", "missed-val%", "recall",
              "checked");
  for (const std::string& name : TableTwoProgramNames()) {
    const std::unique_ptr<Program> program = CreateProgram(name);
    std::vector<double> missed, recall;
    double checked = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      KondoConfig config;
      config.rng_seed = static_cast<uint64_t>(rep + 1);
      const KondoResult result = KondoPipeline(config).Run(*program);
      const MissedAccessStats stats = ComputeMissedValuations(
          *program, result.approx, /*max_exhaustive=*/50000,
          /*sample_size=*/10000);
      missed.push_back(stats.missed_fraction);
      recall.push_back(
          ComputeAccuracy(program->GroundTruth(), result.approx).recall);
      checked = static_cast<double>(stats.valuations_checked);
    }
    std::printf("%-7s %9.2f%% ±%4.2f %12.3f %12.0f\n", name.c_str(),
                100.0 * bench::Summarize(missed).mean,
                100.0 * bench::Summarize(missed).stdev,
                bench::Summarize(recall).mean, checked);
  }
  std::printf("(paper: 0.0%%-0.8%% of valuations see a missed access)\n\n");
}

void BM_MissedValuationScan(benchmark::State& state) {
  const std::unique_ptr<Program> program = CreateProgram("CS", 64);
  const IndexSet& truth = program->GroundTruth();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeMissedValuations(*program, truth).valuations_missed);
  }
}
BENCHMARK(BM_MissedValuationScan)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kondo

int main(int argc, char** argv) {
  kondo::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
