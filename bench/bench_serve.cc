// Serve-path concurrency benchmark: aggregate fetch-subset throughput of
// an in-process kondo daemon under `kondo blast` load at 1, 2, 4, and 8
// closed-loop clients, plus the subset cache's hit/miss byte-identity
// check. Emits BENCH_serve.json in the working directory.
//
// Latency model. Each fetch-subset request carries a deterministic
// blocking sleep (ServeOptions::fetch_sleep_micros) modelling the backing
// store's round trip — the NVMe/object-store read a production deployment
// pays per miss. A *sleep*, not a busy-wait, for the same reason
// bench_shard sleeps: blocked sessions overlap even on one hardware
// thread, so the benchmark measures how well the daemon's session
// concurrency pipelines independent requests, not how many cores the CI
// box has.
//
// Gates: >= 4x aggregate throughput at 8 clients vs 1; every response
// byte-identical within and across clients (the wire-level cache
// contract); a direct hit-vs-miss raw-frame comparison; zero failed
// requests anywhere.
//
// Knobs: KONDO_BENCH_SERVE_REQUESTS      requests per client (default 400)
//        KONDO_BENCH_SERVE_SLEEP_MICROS  per-fetch model sleep (default 500)
//        KONDO_BENCH_SERVE_RANGE         fetched element range (default 256)
//        KONDO_BENCH_SERVE_REPS          timing reps, best-of (default 2)

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "array/data_array.h"
#include "array/debloated_array.h"
#include "array/index_set.h"
#include "bench/bench_util.h"
#include "serve/blast.h"
#include "serve/client.h"
#include "serve/server.h"
#include "shard/shard_scheduler.h"

namespace kondo {
namespace {

constexpr int kClientCounts[] = {1, 2, 4, 8};

struct LoadRun {
  int clients = 0;
  BlastReport report;
  double speedup = 1.0;  // Aggregate rps vs the 1-client leg.
};

/// A 32x32 debloated array with every third element retained.
bool WriteArtifact(const std::string& path) {
  DataArray data(Shape({32, 32}));
  data.FillPattern(/*seed=*/42);
  IndexSet retained(data.shape());
  for (int64_t linear = 0; linear < 1024; linear += 3) {
    retained.InsertLinear(linear);
  }
  const DebloatedArray debloated =
      DebloatedArray::FromDataArray(data, retained);
  const Status written = debloated.WriteFile(path);
  if (!written.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 written.ToString().c_str());
    return false;
  }
  return true;
}

void WriteJson(const std::vector<LoadRun>& runs, int64_t requests,
               int64_t sleep_micros, int64_t range, bool hit_identical,
               const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"benchmark\": \"serve_throughput\",\n"
               "  \"requests_per_client\": %lld,\n"
               "  \"fetch_sleep_micros\": %lld,\n"
               "  \"range_elements\": %lld,\n"
               "  \"hit_byte_identical_to_miss\": %s,\n"
               "  \"runs\": [\n",
               static_cast<long long>(requests),
               static_cast<long long>(sleep_micros),
               static_cast<long long>(range),
               hit_identical ? "true" : "false");
  for (size_t i = 0; i < runs.size(); ++i) {
    const LoadRun& run = runs[i];
    std::fprintf(f,
                 "    {\"clients\": %d, \"ok\": %lld, \"failed\": %lld, "
                 "\"seconds\": %.6f,\n"
                 "     \"throughput_rps\": %.1f, \"speedup_vs_1\": %.4f, "
                 "\"p50_us\": %lld, \"p99_us\": %lld,\n"
                 "     \"responses_identical\": %s}%s\n",
                 run.clients, static_cast<long long>(run.report.ok_requests),
                 static_cast<long long>(run.report.failed_requests),
                 run.report.elapsed_seconds, run.report.throughput_rps,
                 run.speedup,
                 static_cast<long long>(run.report.p50_micros),
                 static_cast<long long>(run.report.p99_micros),
                 run.report.responses_identical ? "true" : "false",
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int Run() {
  const int64_t requests = bench::EnvInt("KONDO_BENCH_SERVE_REQUESTS", 400);
  const int64_t sleep_micros =
      bench::EnvInt("KONDO_BENCH_SERVE_SLEEP_MICROS", 500);
  const int64_t range = bench::EnvInt("KONDO_BENCH_SERVE_RANGE", 256);
  const int reps = static_cast<int>(bench::EnvInt("KONDO_BENCH_SERVE_REPS", 2));

  const std::string pool = "bench_serve_pool";
  (void)std::remove((pool + "/main.kdd").c_str());
  (void)std::remove((pool + "/kondo.sock").c_str());
  const Status pool_made = EnsureCampaignDirectory(pool);
  if (!pool_made.ok()) {
    std::fprintf(stderr, "cannot create %s: %s\n", pool.c_str(),
                 pool_made.ToString().c_str());
    return 1;
  }
  if (!WriteArtifact(pool + "/main.kdd")) {
    return 1;
  }

  ServeOptions options;
  options.address.unix_path = pool + "/kondo.sock";
  options.pool_root = pool;
  options.fetch_sleep_micros = sleep_micros;
  KondoServer server(options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "serve start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  // Hit/miss byte identity, observed at the rawest level the client can:
  // the first fetch builds the payload, the second is served from cache,
  // and the two full frames must match bit for bit.
  bool hit_identical = false;
  {
    auto client = KpcClient::Connect(server.bound_address());
    if (!client.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    FetchSubsetRequest request;
    request.artifact = "main.kdd";
    request.begin = 0;
    request.end = range;
    const auto miss = (*client)->FetchSubsetRaw(request);
    const auto hit = (*client)->FetchSubsetRaw(request);
    if (!miss.ok() || !hit.ok()) {
      std::fprintf(stderr, "identity fetch failed\n");
      return 1;
    }
    const ServeStatsSnapshot stats = server.Stats();
    hit_identical =
        *miss == *hit && stats.cache_hits >= 1 && stats.cache_misses == 1;
  }

  std::vector<LoadRun> runs;
  for (int clients : kClientCounts) {
    BlastOptions blast;
    blast.address = server.bound_address();
    blast.artifact = "main.kdd";
    blast.clients = clients;
    blast.requests = static_cast<int>(requests);
    blast.begin = 0;
    blast.end = range;

    LoadRun best;
    best.clients = clients;
    for (int rep = 0; rep < reps; ++rep) {
      StatusOr<BlastReport> report = RunBlast(blast);
      if (!report.ok()) {
        std::fprintf(stderr, "blast failed: %s\n",
                     report.status().ToString().c_str());
        return 1;
      }
      if (rep == 0 ||
          report->throughput_rps > best.report.throughput_rps) {
        best.report = *report;
      }
    }
    best.speedup = runs.empty() ? 1.0
                                : best.report.throughput_rps /
                                      runs.front().report.throughput_rps;
    runs.push_back(best);
    std::printf("clients=%d  %6lld ok  %5.3f s  %8.0f req/s  "
                "speedup %5.2fx  p50/p99 %lld/%lld us  %s\n",
                clients,
                static_cast<long long>(best.report.ok_requests),
                best.report.elapsed_seconds, best.report.throughput_rps,
                best.speedup,
                static_cast<long long>(best.report.p50_micros),
                static_cast<long long>(best.report.p99_micros),
                best.report.responses_identical ? "identical" : "DIVERGENT");
  }

  server.Stop();
  const ServeStatsSnapshot stats = server.Stats();
  std::printf("cache: %lld hits / %lld misses, %lld sessions, "
              "%lld requests\n",
              static_cast<long long>(stats.cache_hits),
              static_cast<long long>(stats.cache_misses),
              static_cast<long long>(stats.sessions_accepted),
              static_cast<long long>(stats.requests_total));
  WriteJson(runs, requests, sleep_micros, range, hit_identical,
            "BENCH_serve.json");

  // Acceptance gates.
  bool ok = true;
  if (!hit_identical) {
    std::fprintf(stderr, "FAIL: cache hit not byte-identical to miss\n");
    ok = false;
  }
  for (const LoadRun& run : runs) {
    if (run.report.failed_requests != 0) {
      std::fprintf(stderr, "FAIL: %lld failed requests at %d clients\n",
                   static_cast<long long>(run.report.failed_requests),
                   run.clients);
      ok = false;
    }
    if (!run.report.responses_identical) {
      std::fprintf(stderr, "FAIL: divergent responses at %d clients\n",
                   run.clients);
      ok = false;
    }
    if (run.clients == 8 && run.speedup < 4.0) {
      std::fprintf(stderr, "FAIL: 8-client speedup %.2fx < 4.0x\n",
                   run.speedup);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace kondo

int main() { return kondo::Run(); }
