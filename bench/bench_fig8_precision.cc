// Figure 8 — precision per program for a fixed time budget: Kondo vs BF vs
// AFL, plus the Simple Convex (SC) ablation (Kondo's fuzzer with a single
// regular convex hull instead of the merge-based carver).
//
// Expected shape (Section V-D2): BF and AFL are always 1 (they never subset
// unaccessed data); Kondo dips below 1 where hull merging covers holes
// (PRL) or bridges sparse distant regions (CS1, CS5); LDC/RDC stay at 1;
// SC is uniformly worse than Kondo.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"

namespace kondo {
namespace {

void PrintFigure() {
  using bench::Series;
  const int kondo_reps = bench::EnvInt("KONDO_BENCH_REPS", 5);
  const int afl_reps = bench::EnvInt("KONDO_BENCH_AFL_REPS", 2);

  std::printf(
      "=== Figure 8: precision per program (per-program budgets, exec cost "
      "%lldus) ===\n\n",
      static_cast<long long>(bench::ExecCostMicros()));
  std::printf("%-7s %16s %8s %8s %16s\n", "prog", "Kondo", "BF", "AFL",
              "SC");
  double kondo_sum = 0.0;
  int programs = 0;
  for (const std::string& name : TableTwoProgramNames()) {
    const std::unique_ptr<Program> program = CreateProgram(name);
    program->GroundTruth();
    const double budget = bench::CalibrateBudgetSeconds(*program);

    std::vector<double> kondo, sc;
    double bf = 1.0;
    double afl = 1.0;
    for (int rep = 0; rep < kondo_reps; ++rep) {
      kondo.push_back(
          bench::RunKondoOnce(*program, rep + 1, budget).precision);
      sc.push_back(
          bench::RunSimpleConvexOnce(*program, rep + 1, budget).precision);
    }
    // BF/AFL report raw accessed indices: precision 1 by construction. Run
    // them anyway to confirm (2 reps for AFL per §V-C).
    bf = bench::RunBruteForceOnce(*program, 1, budget).precision;
    for (int rep = 0; rep < afl_reps; ++rep) {
      afl = std::min(afl,
                     bench::RunAflOnce(*program, rep + 1, budget).precision);
    }
    const Series ks = bench::Summarize(kondo);
    const Series ss = bench::Summarize(sc);
    std::printf("%-7s %8.3f ±%5.3f %8.3f %8.3f %8.3f ±%5.3f\n", name.c_str(),
                ks.mean, ks.stdev, bf, afl, ss.mean, ss.stdev);
    kondo_sum += ks.mean;
    ++programs;
  }
  std::printf("%-7s %8.3f\n\n", "mean", kondo_sum / programs);
}

void BM_SimpleConvexCarvePrl(benchmark::State& state) {
  const std::unique_ptr<Program> program = CreateProgram("PRL");
  program->GroundTruth();
  uint64_t seed = 1;
  for (auto _ : state) {
    const bench::ToolOutcome outcome =
        bench::RunSimpleConvexOnce(*program, seed++, 0.0);
    state.counters["precision"] = outcome.precision;
  }
}
BENCHMARK(BM_SimpleConvexCarvePrl)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kondo

int main(int argc, char** argv) {
  kondo::PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
