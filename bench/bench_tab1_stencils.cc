// Table I — Types of Stencils.
//
// Renders the stencil families behind the four H5bench micro-benchmarks:
// the Listing-1 cross, the solid rectangle (LDC/RDC), the rectangle with a
// hole (PRL's union region), and the 3-D box extension. Also times stencil
// application as a google-benchmark microbenchmark.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "workloads/stencil.h"

namespace kondo {
namespace {

void PrintTable() {
  std::printf("=== Table I: Types of Stencils ===\n\n");
  struct Row {
    const char* program;
    const char* family;
    Stencil stencil;
  };
  const Row rows[] = {
      {"CS (Listing 1)", "cross", CrossStencil2D()},
      {"LDC / RDC", "solid rectangle", SolidRectStencil(6, 6)},
      {"PRL", "rectangle with hole", HoledRectStencil(8, 8, 4)},
  };
  for (const Row& row : rows) {
    std::printf("%-16s %-22s (%zu cells)\n", row.program, row.family,
                row.stencil.offsets.size());
    std::printf("%s\n", RenderStencil2D(row.stencil).c_str());
  }
  std::printf("%-16s %-22s (%zu cells, 3-D)\n", "LDC3D / RDC3D",
              "solid box", SolidBoxStencil(4, 4, 4).offsets.size());
  std::printf("\n");
}

void BM_ApplyCrossStencil(benchmark::State& state) {
  const Stencil cross = CrossStencil2D();
  const Shape shape{128, 128};
  int64_t sink = 0;
  for (auto _ : state) {
    cross.Apply(shape, Index{64, 64},
                [&sink](const Index& index) { sink += index[0]; });
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_ApplyCrossStencil);

void BM_ApplySolidRect(benchmark::State& state) {
  const Stencil rect =
      SolidRectStencil(state.range(0), state.range(0));
  const Shape shape{256, 256};
  int64_t sink = 0;
  for (auto _ : state) {
    rect.Apply(shape, Index{10, 10},
               [&sink](const Index& index) { sink += index[1]; });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(rect.offsets.size()));
}
BENCHMARK(BM_ApplySolidRect)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace kondo

int main(int argc, char** argv) {
  kondo::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
