// Discovery trajectories: recall as a function of *executions* (rather
// than wall time) for Kondo, brute force, and AFL. Complements Fig. 10 by
// removing the machine from the comparison entirely: at equal execution
// counts, Kondo's boundary-seeking schedule discovers the subset with far
// fewer debloat tests.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>

#include "baselines/afl_fuzzer.h"
#include "baselines/brute_force.h"
#include "bench/bench_util.h"
#include "core/debloat_test.h"

namespace kondo {
namespace {

constexpr int kCheckpoints[] = {100, 250, 500, 1000, 2000};

/// Kondo's in-run trajectory via the schedule observer.
std::map<int, double> KondoTrajectory(const Program& program,
                                      uint64_t seed) {
  const IndexSet& truth = program.GroundTruth();
  FuzzConfig config;
  config.max_iter = 2000;
  config.stop_iter = 1 << 30;  // Run all checkpoints.
  FuzzSchedule schedule(program.param_space(), program.data_shape(), config,
                        seed);
  std::map<int, double> recall_at;
  schedule.Run(MakeDebloatTest(program),
               [&truth, &recall_at](int itr, const ParamValue&, bool,
                                    size_t discovered) {
                 for (int checkpoint : kCheckpoints) {
                   if (itr == checkpoint) {
                     recall_at[checkpoint] =
                         static_cast<double>(discovered) /
                         static_cast<double>(truth.size());
                   }
                 }
               });
  return recall_at;
}

/// BF/AFL trajectories via deterministic prefixes (same seed, growing
/// budget).
std::map<int, double> BfTrajectory(const Program& program, uint64_t seed) {
  const IndexSet& truth = program.GroundTruth();
  std::map<int, double> recall_at;
  for (int checkpoint : kCheckpoints) {
    BruteForceConfig config;
    config.rng_seed = seed;
    config.max_runs = checkpoint;
    const BruteForceResult result = RunBruteForce(program, config);
    recall_at[checkpoint] =
        static_cast<double>(truth.IntersectionSize(result.discovered)) /
        static_cast<double>(truth.size());
  }
  return recall_at;
}

std::map<int, double> AflTrajectory(const Program& program, uint64_t seed) {
  const IndexSet& truth = program.GroundTruth();
  std::map<int, double> recall_at;
  for (int checkpoint : kCheckpoints) {
    AflConfig config;
    config.rng_seed = seed;
    config.max_execs = checkpoint;
    config.max_seconds = 0.0;
    config.exec_overhead_micros = 0;
    const AflResult result = AflFuzzer(program, config).Run();
    recall_at[checkpoint] =
        static_cast<double>(truth.IntersectionSize(result.coverage)) /
        static_cast<double>(truth.size());
  }
  return recall_at;
}

void PrintTrajectories() {
  std::printf(
      "=== Discovery trajectories: recall vs number of executions ===\n\n");
  for (const std::string& name :
       {std::string("CS"), std::string("PRL"), std::string("CS3")}) {
    const std::unique_ptr<Program> program = CreateProgram(name);
    program->GroundTruth();
    const std::map<int, double> kondo = KondoTrajectory(*program, 1);
    const std::map<int, double> bf = BfTrajectory(*program, 1);
    const std::map<int, double> afl = AflTrajectory(*program, 1);
    std::printf("%s (raw fuzzer discovery, before carving):\n",
                name.c_str());
    std::printf("%10s %10s %10s %10s\n", "execs", "Kondo", "BF", "AFL");
    for (int checkpoint : kCheckpoints) {
      auto at = [checkpoint](const std::map<int, double>& m) {
        auto it = m.find(checkpoint);
        return it == m.end() ? -1.0 : it->second;
      };
      std::printf("%10d %10.3f %10.3f %10.3f\n", checkpoint, at(kondo),
                  at(bf), at(afl));
    }
    std::printf("\n");
  }
  std::printf("(-1.000 marks campaigns that terminated before the "
              "checkpoint)\n\n");
}

void BM_KondoTwoThousandIterations(benchmark::State& state) {
  const std::unique_ptr<Program> program = CreateProgram("CS");
  uint64_t seed = 1;
  for (auto _ : state) {
    FuzzConfig config;
    config.max_iter = 2000;
    config.stop_iter = 1 << 30;
    FuzzSchedule schedule(program->param_space(), program->data_shape(),
                          config, seed++);
    benchmark::DoNotOptimize(
        schedule.Run(MakeDebloatTest(*program)).discovered.size());
  }
}
BENCHMARK(BM_KondoTwoThousandIterations)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kondo

int main(int argc, char** argv) {
  kondo::PrintTrajectories();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
