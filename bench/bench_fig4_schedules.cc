// Figure 4 — contrasting the plain exploit-and-explore (EE) schedule with
// the boundary-based EE schedule on the multi-region contrast program.
//
// The paper's figure scatters the 1500 evaluated seeds of each schedule;
// this bench reproduces the quantitative content: how many of the disjoint
// useful regions each schedule discovers, how much of the useful space it
// covers, and how densely its samples hug the region boundaries. A CSV of
// the seeds is written next to the binary for plotting.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>

#include "bench/bench_util.h"
#include "core/debloat_test.h"
#include "fuzz/fuzz_schedule.h"
#include "workloads/demo_program.h"

namespace kondo {
namespace {

struct ScheduleSummary {
  int useful_seeds = 0;
  int non_useful_seeds = 0;
  bool found_band = false;
  bool found_disk_island = false;
  bool found_square_island = false;
  double boundary_density = 0.0;  // Seeds within distance 4 of a boundary.
  size_t discovered = 0;
};

/// A parameter value sits near a region boundary when flipping usefulness
/// is possible within distance `radius`.
bool NearBoundary(const DemoMultiRegionProgram& program, double p, double q,
                  double radius) {
  const bool self = program.IsUseful(p, q);
  for (double dp = -radius; dp <= radius; dp += radius) {
    for (double dq = -radius; dq <= radius; dq += radius) {
      if (program.IsUseful(p + dp, q + dq) != self) {
        return true;
      }
    }
  }
  return false;
}

ScheduleSummary RunSchedule(const DemoMultiRegionProgram& program,
                            const FuzzConfig& base, uint64_t seed,
                            const char* csv_path) {
  FuzzConfig config = base;
  config.max_iter = 1500;     // "Figure is based on 1500 runs" (Fig. 4).
  config.stop_iter = 1 << 30; // Run the full 1500 for a fair scatter.
  FuzzSchedule schedule(program.param_space(), program.data_shape(), config,
                        seed);
  const FuzzResult result = schedule.Run(MakeDebloatTest(program));

  ScheduleSummary summary;
  summary.discovered = result.discovered.size();
  std::ofstream csv(csv_path);
  csv << "p,q,useful\n";
  int near_boundary = 0;
  for (const Seed& s : result.seeds) {
    csv << s.value[0] << "," << s.value[1] << "," << (s.useful ? 1 : 0)
        << "\n";
    if (s.useful) {
      ++summary.useful_seeds;
      const double p = s.value[0];
      const double q = s.value[1];
      if (p <= q - 16.0) summary.found_band = true;
      const double dx = p - 104.0;
      const double dy = q - 24.0;
      if (std::sqrt(dx * dx + dy * dy) <= 10.0) {
        summary.found_disk_island = true;
      }
      if (p >= 88.0 && p <= 104.0 && q >= 56.0 && q <= 72.0) {
        summary.found_square_island = true;
      }
    } else {
      ++summary.non_useful_seeds;
    }
    if (NearBoundary(program, s.value[0], s.value[1], 4.0)) {
      ++near_boundary;
    }
  }
  summary.boundary_density =
      result.seeds.empty()
          ? 0.0
          : static_cast<double>(near_boundary) /
                static_cast<double>(result.seeds.size());
  return summary;
}

void PrintFigure() {
  std::printf("=== Figure 4: EE vs boundary-based EE (1500 runs each) ===\n\n");
  const DemoMultiRegionProgram program;
  const int reps = bench::EnvInt("KONDO_BENCH_REPS", 10);

  std::printf("%-12s %8s %8s %6s %6s %6s %10s %10s\n", "schedule", "useful",
              "nonuse", "band", "disk", "sqr", "bnd-dens", "coverage");
  for (const bool boundary_based : {false, true}) {
    FuzzConfig config =
        boundary_based ? FuzzConfig{} : FuzzConfig::PlainExploitExplore();
    std::vector<double> useful, nonuseful, density, coverage;
    int band = 0, disk = 0, square = 0;
    for (int rep = 0; rep < reps; ++rep) {
      const std::string csv =
          std::string("/tmp/fig4_") + (boundary_based ? "boundary" : "plain") +
          "_" + std::to_string(rep) + ".csv";
      const ScheduleSummary summary = RunSchedule(
          program, config, static_cast<uint64_t>(rep + 1), csv.c_str());
      useful.push_back(summary.useful_seeds);
      nonuseful.push_back(summary.non_useful_seeds);
      density.push_back(summary.boundary_density);
      coverage.push_back(static_cast<double>(summary.discovered));
      band += summary.found_band ? 1 : 0;
      disk += summary.found_disk_island ? 1 : 0;
      square += summary.found_square_island ? 1 : 0;
    }
    std::printf("%-12s %8.0f %8.0f %3d/%-2d %3d/%-2d %3d/%-2d %9.2f%% %10.0f\n",
                boundary_based ? "boundary-EE" : "plain-EE",
                bench::Summarize(useful).mean,
                bench::Summarize(nonuseful).mean, band, reps, disk, reps,
                square, reps, 100.0 * bench::Summarize(density).mean,
                bench::Summarize(coverage).mean);
  }
  std::printf(
      "\n(band/disk/sqr: runs that discovered each disjoint useful region;\n"
      " bnd-dens: fraction of seeds within distance 4 of a region boundary;\n"
      " seed scatters written to /tmp/fig4_*.csv)\n\n");
}

void BM_BoundaryScheduleCampaign(benchmark::State& state) {
  const DemoMultiRegionProgram program;
  FuzzConfig config;
  config.max_iter = 1500;
  config.stop_iter = 1 << 30;
  uint64_t seed = 1;
  for (auto _ : state) {
    FuzzSchedule schedule(program.param_space(), program.data_shape(),
                          config, seed++);
    benchmark::DoNotOptimize(
        schedule.Run(MakeDebloatTest(program)).discovered.size());
  }
}
BENCHMARK(BM_BoundaryScheduleCampaign)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kondo

int main(int argc, char** argv) {
  kondo::PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
