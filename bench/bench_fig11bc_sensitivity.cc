// Figures 11b/11c — sensitivity of precision and recall to the
// `center_d_thresh` hull-merging threshold (and, as the paper mentions but
// omits for space, `bound_d_thresh` shows the same trend — included here).
//
// Expected shape (Section V-D5): recall rises with the threshold while
// precision falls; recall stays above ~0.75 even at large thresholds.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"

namespace kondo {
namespace {

void SweepProgram(const char* name, bool sweep_boundary) {
  const int reps = bench::EnvInt("KONDO_BENCH_REPS", 10);
  const std::unique_ptr<Program> program = CreateProgram(name);
  program->GroundTruth();
  std::printf("program %s, sweeping %s:\n", name,
              sweep_boundary ? "bound_d_thresh" : "center_d_thresh");
  std::printf("%8s %16s %16s\n", "thresh", "precision", "recall");
  for (double threshold : {2.5, 5.0, 10.0, 20.0, 40.0, 80.0}) {
    std::vector<double> precision, recall;
    for (int rep = 0; rep < reps; ++rep) {
      KondoConfig config;
      if (sweep_boundary) {
        config.carve.boundary_d_thresh = threshold;
      } else {
        config.carve.center_d_thresh = threshold;
      }
      const bench::ToolOutcome outcome = bench::RunKondoOnce(
          *program, rep + 1, /*budget_seconds=*/0.0, config);
      precision.push_back(outcome.precision);
      recall.push_back(outcome.recall);
    }
    const bench::Series ps = bench::Summarize(precision);
    const bench::Series rs = bench::Summarize(recall);
    std::printf("%8.1f %8.3f ±%6.3f %8.3f ±%6.3f\n", threshold, ps.mean,
                ps.stdev, rs.mean, rs.stdev);
  }
  std::printf("\n");
}

void PrintFigure() {
  std::printf(
      "=== Figures 11b/11c: precision & recall vs hull-merge thresholds "
      "===\n\n");
  SweepProgram("CS3", /*sweep_boundary=*/false);
  SweepProgram("PRL", /*sweep_boundary=*/false);
  SweepProgram("CS3", /*sweep_boundary=*/true);
}

void BM_CarveThresholdSweep(benchmark::State& state) {
  const std::unique_ptr<Program> program = CreateProgram("CS3");
  program->GroundTruth();
  KondoConfig config;
  config.carve.center_d_thresh = static_cast<double>(state.range(0));
  uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench::RunKondoOnce(*program, seed++, 0.0, config).precision);
  }
}
BENCHMARK(BM_CarveThresholdSweep)->Arg(5)->Arg(20)->Arg(80)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kondo

int main(int argc, char** argv) {
  kondo::PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
