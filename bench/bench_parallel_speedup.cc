// Parallel campaign executor speedup: wall-clock of identical fuzz+carve
// campaigns at --jobs 1/2/4/8 on a stencil (CS) and a block (LDC) workload.
// Emits BENCH_parallel.json in the working directory.
//
// The debloat test of Definition 2 executes the target program as a real
// process and waits on it — the campaign thread is *blocked*, not
// computing. That latency is modelled here with a per-test sleep (not a
// busy-wait: a blocking wait overlaps across workers even on a single
// hardware thread, exactly like real process waits, whereas a busy-wait
// would measure core count instead of executor efficiency).
//
// Every run also fingerprints its FuzzResult (discovered set, seed
// sequence, counters); the gate fails if any jobs setting diverges from
// jobs=1 — speedup is only meaningful if results stay bit-identical.
//
// Knobs: KONDO_BENCH_PAR_ITERS        campaign iterations (default 160)
//        KONDO_BENCH_PAR_SLEEP_MICROS per-test exec latency (default 2000)
//        KONDO_BENCH_PAR_REPS         timing reps, best-of (default 2)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/kondo.h"
#include "core/metrics.h"
#include "exec/test_candidate.h"
#include "exec/thread_pool.h"
#include "workloads/registry.h"

namespace kondo {
namespace {

constexpr int kJobs[] = {1, 2, 4, 8};

/// FNV-1a over the campaign's result — discovered linear ids in sorted
/// order, the evaluated seed sequence, and the counters. Equal fingerprints
/// <=> bit-identical campaign outcome.
uint64_t Fingerprint(const FuzzResult& fuzz, const Shape& shape) {
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xff;
      hash *= 1099511628211ull;
    }
  };
  std::vector<int64_t> ids;
  ids.reserve(fuzz.discovered.size());
  fuzz.discovered.ForEach([&ids, &shape](const Index& index) {
    ids.push_back(shape.Linearize(index));
  });
  std::sort(ids.begin(), ids.end());
  for (int64_t id : ids) {
    mix(static_cast<uint64_t>(id));
  }
  for (const Seed& seed : fuzz.seeds) {
    for (double v : seed.value) {
      uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(v));
      std::memcpy(&bits, &v, sizeof(bits));
      mix(bits);
    }
    mix(seed.useful ? 1 : 0);
  }
  mix(static_cast<uint64_t>(fuzz.stats.iterations));
  mix(static_cast<uint64_t>(fuzz.stats.evaluations));
  mix(static_cast<uint64_t>(fuzz.stats.restarts));
  return hash;
}

struct JobsRun {
  int jobs = 0;
  double seconds = 0.0;
  double speedup = 1.0;
  int evaluations = 0;
  double recall = 0.0;
  double precision = 0.0;
  uint64_t fingerprint = 0;
};

struct WorkloadResult {
  std::string workload;
  std::vector<JobsRun> runs;
};

WorkloadResult RunWorkload(const std::string& name, int max_iter,
                           int64_t sleep_micros, int reps) {
  std::unique_ptr<Program> program = CreateProgram(name, 48);
  const Program& ref = *program;

  // The latency-modelled debloat test: block (as a real process wait
  // would), then compute I_v. Depends only on the candidate, as the
  // CandidateTestFn contract requires.
  const CandidateTestFn test = [&ref, sleep_micros](
                                   const TestCandidate& candidate) {
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_micros));
    CandidateResult result;
    result.accessed = ref.AccessSet(candidate.value);
    return result;
  };

  WorkloadResult out;
  out.workload = name;
  for (int jobs : kJobs) {
    KondoConfig config;
    config.rng_seed = 29;
    config.fuzz.max_iter = max_iter;
    config.jobs = jobs;
    const KondoPipeline pipeline(config);

    double best_seconds = 0.0;
    KondoResult result;
    for (int rep = 0; rep < reps; ++rep) {
      Stopwatch stopwatch;
      result = pipeline.RunWithCandidateTest(test, ref.param_space(),
                                             ref.data_shape());
      const double seconds = stopwatch.ElapsedSeconds();
      if (rep == 0 || seconds < best_seconds) {
        best_seconds = seconds;
      }
    }

    const AccuracyMetrics metrics =
        ComputeAccuracy(ref.GroundTruth(), result.approx);
    JobsRun run;
    run.jobs = jobs;
    run.seconds = best_seconds;
    run.evaluations = result.fuzz.stats.evaluations;
    run.recall = metrics.recall;
    run.precision = metrics.precision;
    run.fingerprint = Fingerprint(result.fuzz, ref.data_shape());
    run.speedup = out.runs.empty() ? 1.0
                                   : out.runs.front().seconds /
                                         std::max(best_seconds, 1e-9);
    out.runs.push_back(run);

    std::printf("%-4s jobs=%d  %7.3f s  speedup %5.2fx  evals %4d  "
                "recall %.4f  precision %.4f  fp %016llx\n",
                name.c_str(), jobs, run.seconds, run.speedup,
                run.evaluations, run.recall, run.precision,
                static_cast<unsigned long long>(run.fingerprint));
  }
  return out;
}

void WriteJson(const std::vector<WorkloadResult>& results, int max_iter,
               int64_t sleep_micros, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"benchmark\": \"parallel_speedup\",\n"
               "  \"iterations\": %d,\n  \"exec_sleep_micros\": %lld,\n"
               "  \"hardware_threads\": %d,\n  \"workloads\": [\n",
               max_iter, static_cast<long long>(sleep_micros),
               HardwareThreads());
  for (size_t w = 0; w < results.size(); ++w) {
    const WorkloadResult& result = results[w];
    std::fprintf(f, "    {\"workload\": \"%s\", \"runs\": [\n",
                 result.workload.c_str());
    for (size_t i = 0; i < result.runs.size(); ++i) {
      const JobsRun& run = result.runs[i];
      std::fprintf(f,
                   "      {\"jobs\": %d, \"seconds\": %.6f, "
                   "\"speedup_vs_1\": %.4f, \"evaluations\": %d,\n"
                   "       \"recall\": %.6f, \"precision\": %.6f, "
                   "\"fingerprint\": \"%016llx\", "
                   "\"bit_identical_to_jobs1\": %s}%s\n",
                   run.jobs, run.seconds, run.speedup, run.evaluations,
                   run.recall, run.precision,
                   static_cast<unsigned long long>(run.fingerprint),
                   run.fingerprint == result.runs.front().fingerprint
                       ? "true"
                       : "false",
                   i + 1 < result.runs.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", w + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int Run() {
  const int max_iter = bench::EnvInt("KONDO_BENCH_PAR_ITERS", 160);
  const int64_t sleep_micros =
      bench::EnvInt("KONDO_BENCH_PAR_SLEEP_MICROS", 2000);
  const int reps = bench::EnvInt("KONDO_BENCH_PAR_REPS", 2);

  std::vector<WorkloadResult> results;
  results.push_back(RunWorkload("CS", max_iter, sleep_micros, reps));
  results.push_back(RunWorkload("LDC", max_iter, sleep_micros, reps));
  WriteJson(results, max_iter, sleep_micros, "BENCH_parallel.json");

  // Acceptance gates: every jobs setting bit-identical to jobs=1, and the
  // stencil campaign at jobs=8 at least 3x faster than jobs=1.
  bool ok = true;
  for (const WorkloadResult& result : results) {
    for (const JobsRun& run : result.runs) {
      if (run.fingerprint != result.runs.front().fingerprint) {
        std::fprintf(stderr, "FAIL: %s jobs=%d diverged from jobs=1\n",
                     result.workload.c_str(), run.jobs);
        ok = false;
      }
    }
  }
  const JobsRun& stencil_j8 = results[0].runs.back();
  if (stencil_j8.speedup < 3.0) {
    std::fprintf(stderr, "FAIL: stencil jobs=8 speedup %.2fx < 3.0x\n",
                 stencil_j8.speedup);
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace kondo

int main() { return kondo::Run(); }
