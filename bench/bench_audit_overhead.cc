// Section V-D6 — overhead of I/O event auditing: the benchmark programs
// run against real KDF data files with increasing sizes, once through the
// bare file reader and once through the interposition shim (recording,
// merging, and indexing every event, plus a per-process offset-range
// lookup). The paper reports ~31% average overhead.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "array/data_array.h"
#include "array/kdf_file.h"
#include "audit/auditor.h"
#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "workloads/registry.h"

namespace kondo {
namespace {

struct OverheadRow {
  std::string program;
  int64_t n;
  int64_t io_calls;
  double raw_seconds;
  double audited_seconds;
  double overhead;
};

OverheadRow MeasureOne(const std::string& name, int64_t n, int repeats) {
  const std::unique_ptr<Program> program = CreateProgram(name, n);
  DataArray array(program->data_shape(), DType::kFloat64);
  array.FillPattern(1);
  const std::string path =
      "/tmp/kondo_bench_" + name + "_" + std::to_string(n) + ".kdf";
  KONDO_CHECK(WriteKdfFile(path, array).ok());

  // A heavyweight valuation: mid-range parameters are useful for every
  // benchmark program family.
  ParamValue v;
  for (int i = 0; i < program->param_space().num_params(); ++i) {
    const ParamRange& r = program->param_space().range(i);
    v.push_back(std::floor((r.lo + r.hi) / 2));
  }

  OverheadRow row;
  row.program = name;
  row.n = n;

  // Adaptive repetition: keep executing until the raw measurement is long
  // enough (>= 20 ms) to be stable on a noisy machine.
  constexpr double kMinMeasureSeconds = 0.02;
  int effective_repeats = repeats;
  double raw = 0.0;
  while (true) {
    Stopwatch stopwatch;
    int64_t io_calls = 0;
    for (int rep = 0; rep < effective_repeats; ++rep) {
      StatusOr<TracedFile> file = TracedFile::Open(path, 1, 1, nullptr);
      KONDO_CHECK(file.ok());
      KONDO_CHECK(program->ExecuteOnFile(v, *file).ok());
      io_calls = file->access_count();
    }
    raw = stopwatch.ElapsedSeconds();
    row.io_calls = io_calls;
    if (raw >= kMinMeasureSeconds || effective_repeats > 1000000) {
      break;
    }
    effective_repeats *= 4;
  }
  row.raw_seconds = raw;

  // Audited executions: record + merge + index + one range lookup, the
  // full pipeline of Section IV-C.
  Stopwatch stopwatch;
  for (int rep = 0; rep < effective_repeats; ++rep) {
    EventLog log;
    StatusOr<TracedFile> file = TracedFile::Open(path, 1, 1, &log);
    KONDO_CHECK(file.ok());
    KONDO_CHECK(program->ExecuteOnFile(v, *file).ok());
    file->Close();
    benchmark::DoNotOptimize(log.AccessedRanges(1).TotalLength());
    benchmark::DoNotOptimize(
        log.LookupProcessRange(1, 1, 0, file->reader().FileBytes()).size());
  }
  row.audited_seconds = stopwatch.ElapsedSeconds();
  row.overhead = row.raw_seconds > 0.0
                     ? (row.audited_seconds - row.raw_seconds) /
                           row.raw_seconds
                     : 0.0;
  std::remove(path.c_str());
  return row;
}

void PrintTable() {
  const int repeats = bench::EnvInt("KONDO_BENCH_AUDIT_REPS", 20);
  std::printf("=== §V-D6: I/O event auditing overhead ===\n\n");
  std::printf("%-7s %6s %10s %10s %10s %10s\n", "prog", "n", "io-calls",
              "raw s", "audited s", "overhead");
  double sum = 0.0;
  int rows = 0;
  const std::vector<std::pair<std::string, std::vector<int64_t>>> cases = {
      {"CS", {32, 48, 64, 96, 128}},
      {"PRL", {32, 48, 64, 96, 128}},
      {"LDC", {32, 48, 64, 96, 128}},
      {"RDC", {32, 48, 64, 96, 128}},
      {"PRL3D", {16, 24, 32, 48, 64}},
      {"LDC3D", {16, 24, 32, 48, 64}},
  };
  for (const auto& [name, sizes] : cases) {
    for (int64_t n : sizes) {
      const OverheadRow row = MeasureOne(name, n, repeats);
      std::printf("%-7s %6lld %10lld %10.4f %10.4f %9.1f%%\n",
                  row.program.c_str(), static_cast<long long>(row.n),
                  static_cast<long long>(row.io_calls), row.raw_seconds,
                  row.audited_seconds, 100.0 * row.overhead);
      sum += row.overhead;
      ++rows;
    }
  }
  std::printf("%-7s %49.1f%%\n", "mean", 100.0 * sum / rows);
  std::printf("(paper: ~31%% average auditing overhead)\n\n");
}

void BM_AuditedElementRead(benchmark::State& state) {
  DataArray array(Shape{64, 64}, DType::kFloat64);
  const std::string path = "/tmp/kondo_bench_audited_read.kdf";
  KONDO_CHECK(WriteKdfFile(path, array).ok());
  EventLog log;
  StatusOr<TracedFile> file = TracedFile::Open(path, 1, 1, &log);
  KONDO_CHECK(file.ok());
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        file->ReadElement(Index{i % 64, (i * 7) % 64}));
    ++i;
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_AuditedElementRead);

void BM_RawElementRead(benchmark::State& state) {
  DataArray array(Shape{64, 64}, DType::kFloat64);
  const std::string path = "/tmp/kondo_bench_raw_read.kdf";
  KONDO_CHECK(WriteKdfFile(path, array).ok());
  StatusOr<TracedFile> file = TracedFile::Open(path, 1, 1, nullptr);
  KONDO_CHECK(file.ok());
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        file->ReadElement(Index{i % 64, (i * 7) % 64}));
    ++i;
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_RawElementRead);

}  // namespace
}  // namespace kondo

int main(int argc, char** argv) {
  kondo::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
