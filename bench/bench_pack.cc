// KDP packaging benchmark: on-disk size of the chunked package versus the
// dense KDF source array on a stencil workload, and parallel unpack
// throughput at 1..8 codec workers. Emits BENCH_pack.json in the working
// directory.
//
// Latency model. Each chunk decode carries a deterministic blocking sleep
// (PackReadOptions::chunk_fetch_sleep_micros) modelling the cold-store
// fetch a production unpack pays per chunk — the same device-latency model
// bench_serve uses per request. A *sleep*, not a busy-wait: blocked codec
// workers overlap their waits even on one hardware thread, so the jobs
// sweep measures how well Unpack pipelines independent chunk fetches, not
// how many cores the CI box has.
//
// Gates: package >= 4x smaller on disk than the dense KDF; >= 2x unpack
// speedup at jobs=8 vs jobs=1; D_Θ byte-identical after pack -> unpack and
// after pack -> repack -> unpack; repack of unchanged data byte-identical
// to the fresh package with every chunk reused.
//
// Knobs: KONDO_BENCH_PACK_SLEEP_MICROS  per-chunk model sleep (default 300)
//        KONDO_BENCH_PACK_REPS          timing reps, best-of (default 3)
//        KONDO_BENCH_PACK_PROGRAM       stencil program (default LDC)

#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "array/data_array.h"
#include "array/debloated_array.h"
#include "array/index_set.h"
#include "array/kdf_file.h"
#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "pack/pack_reader.h"
#include "pack/pack_writer.h"
#include "workloads/registry.h"

namespace kondo {
namespace {

constexpr int kJobs[] = {1, 2, 4, 8};

struct UnpackRun {
  int jobs = 0;
  double seconds = 0.0;
  double speedup = 1.0;  // vs the jobs=1 leg.
};

int64_t FileSize(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<int64_t>(st.st_size)
                                        : -1;
}

std::string ReadFileBytes(const std::string& path) {
  std::string bytes;
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    return bytes;
  }
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), in)) > 0) {
    bytes.append(buffer, n);
  }
  std::fclose(in);
  return bytes;
}

void WriteJson(const std::string& program, int64_t kdf_bytes,
               int64_t kdd_bytes, int64_t kdp_bytes, double size_reduction,
               const PackStats& stats, int64_t sleep_micros,
               const std::vector<UnpackRun>& runs, bool unpack_identical,
               bool repack_identical, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"benchmark\": \"pack\",\n"
               "  \"program\": \"%s\",\n"
               "  \"dense_kdf_bytes\": %lld,\n"
               "  \"kdd_bytes\": %lld,\n"
               "  \"kdp_bytes\": %lld,\n"
               "  \"size_reduction_vs_kdf\": %.2f,\n"
               "  \"chunks\": {\"total\": %lld, \"hole\": %lld, "
               "\"coded\": %lld, \"raw\": %lld},\n"
               "  \"chunk_fetch_sleep_micros\": %lld,\n"
               "  \"unpack_byte_identical\": %s,\n"
               "  \"repack_byte_identical\": %s,\n"
               "  \"unpack_runs\": [\n",
               program.c_str(), static_cast<long long>(kdf_bytes),
               static_cast<long long>(kdd_bytes),
               static_cast<long long>(kdp_bytes), size_reduction,
               static_cast<long long>(stats.total_chunks),
               static_cast<long long>(stats.hole_chunks),
               static_cast<long long>(stats.coded_chunks),
               static_cast<long long>(stats.raw_chunks),
               static_cast<long long>(sleep_micros),
               unpack_identical ? "true" : "false",
               repack_identical ? "true" : "false");
  for (size_t i = 0; i < runs.size(); ++i) {
    std::fprintf(f,
                 "    {\"jobs\": %d, \"seconds\": %.6f, "
                 "\"speedup_vs_1\": %.4f}%s\n",
                 runs[i].jobs, runs[i].seconds, runs[i].speedup,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int Run() {
  const int64_t sleep_micros =
      bench::EnvInt("KONDO_BENCH_PACK_SLEEP_MICROS", 300);
  const int reps =
      static_cast<int>(bench::EnvInt("KONDO_BENCH_PACK_REPS", 3));
  const char* program_env = std::getenv("KONDO_BENCH_PACK_PROGRAM");
  const std::string program_name =
      program_env != nullptr ? program_env : "LDC";

  const std::unique_ptr<Program> program = CreateProgram(program_name);
  if (program == nullptr) {
    std::fprintf(stderr, "unknown program %s\n", program_name.c_str());
    return 1;
  }

  // The stencil's source array (dense) and its carved D_Θ: the ground
  // truth I'_Θ is exactly what the carve pipeline converges to.
  DataArray data(program->data_shape());
  data.FillPattern(/*seed=*/42);
  const DebloatedArray debloated =
      DebloatedArray::FromDataArray(data, program->GroundTruth());

  const std::string kdf_path = "bench_pack_dense.kdf";
  const std::string kdd_path = "bench_pack_dtheta.kdd";
  const std::string kdp_path = "bench_pack_dtheta.kdp";
  const std::string repack_path = "bench_pack_repacked.kdp";
  if (!WriteKdfFile(kdf_path, data).ok() ||
      !debloated.WriteFile(kdd_path).ok()) {
    std::fprintf(stderr, "cannot write baseline artifacts\n");
    return 1;
  }

  const StatusOr<PackStats> packed = WriteKdpFile(kdp_path, debloated);
  if (!packed.ok()) {
    std::fprintf(stderr, "pack failed: %s\n",
                 packed.status().ToString().c_str());
    return 1;
  }

  const int64_t kdf_bytes = FileSize(kdf_path);
  const int64_t kdd_bytes = FileSize(kdd_path);
  const int64_t kdp_bytes = FileSize(kdp_path);
  const double size_reduction =
      kdp_bytes > 0 ? static_cast<double>(kdf_bytes) /
                          static_cast<double>(kdp_bytes)
                    : 0.0;
  std::printf("%s: dense KDF %lld B, D_theta KDD %lld B, KDP %lld B "
              "(%.2fx smaller than KDF)\n",
              program_name.c_str(), static_cast<long long>(kdf_bytes),
              static_cast<long long>(kdd_bytes),
              static_cast<long long>(kdp_bytes), size_reduction);
  std::printf("chunks: %lld total, %lld holes, %lld coded, %lld raw; "
              "%lld -> %lld payload bytes\n",
              static_cast<long long>(packed->total_chunks),
              static_cast<long long>(packed->hole_chunks),
              static_cast<long long>(packed->coded_chunks),
              static_cast<long long>(packed->raw_chunks),
              static_cast<long long>(packed->decoded_bytes),
              static_cast<long long>(packed->encoded_bytes));

  // Unpack identity: pack -> unpack reproduces the .kdd byte for byte.
  bool unpack_identical = false;
  {
    const StatusOr<std::unique_ptr<PackReader>> reader =
        PackReader::Open(kdp_path);
    if (!reader.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   reader.status().ToString().c_str());
      return 1;
    }
    const StatusOr<DebloatedArray> unpacked = (*reader)->Unpack();
    if (!unpacked.ok() ||
        !unpacked->WriteFile("bench_pack_unpacked.kdd").ok()) {
      std::fprintf(stderr, "unpack failed\n");
      return 1;
    }
    unpack_identical = ReadFileBytes("bench_pack_unpacked.kdd") ==
                       ReadFileBytes(kdd_path);
  }

  // Repack identity: repack of unchanged data is byte-identical with every
  // chunk reused, and still unpacks to the same D_Θ.
  bool repack_identical = false;
  {
    const StatusOr<PackStats> repacked =
        RepackKdpFile(kdp_path, repack_path, debloated);
    if (!repacked.ok()) {
      std::fprintf(stderr, "repack failed: %s\n",
                   repacked.status().ToString().c_str());
      return 1;
    }
    const StatusOr<std::unique_ptr<PackReader>> reader =
        PackReader::Open(repack_path);
    bool reunpack_identical = false;
    if (reader.ok()) {
      const StatusOr<DebloatedArray> unpacked = (*reader)->Unpack();
      if (unpacked.ok() &&
          unpacked->WriteFile("bench_pack_reunpacked.kdd").ok()) {
        reunpack_identical = ReadFileBytes("bench_pack_reunpacked.kdd") ==
                             ReadFileBytes(kdd_path);
      }
    }
    repack_identical =
        ReadFileBytes(repack_path) == ReadFileBytes(kdp_path) &&
        repacked->chunks_reused == repacked->total_chunks &&
        reunpack_identical;
  }

  // Parallel unpack sweep under the per-chunk fetch-sleep model.
  PackReadOptions read_options;
  read_options.chunk_fetch_sleep_micros = sleep_micros;
  std::vector<UnpackRun> runs;
  for (int jobs : kJobs) {
    const StatusOr<std::unique_ptr<PackReader>> reader =
        PackReader::Open(kdp_path, read_options);
    if (!reader.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   reader.status().ToString().c_str());
      return 1;
    }
    UnpackRun run;
    run.jobs = jobs;
    for (int rep = 0; rep < reps; ++rep) {
      Stopwatch timer;
      const StatusOr<DebloatedArray> unpacked =
          (*reader)->Unpack(nullptr, jobs);
      const double seconds = timer.ElapsedSeconds();
      if (!unpacked.ok()) {
        std::fprintf(stderr, "unpack at jobs=%d failed: %s\n", jobs,
                     unpacked.status().ToString().c_str());
        return 1;
      }
      if (rep == 0 || seconds < run.seconds) {
        run.seconds = seconds;
      }
    }
    run.speedup = runs.empty() ? 1.0 : runs.front().seconds / run.seconds;
    runs.push_back(run);
    std::printf("jobs=%d  %.4f s  speedup %5.2fx\n", jobs, run.seconds,
                run.speedup);
  }

  WriteJson(program_name, kdf_bytes, kdd_bytes, kdp_bytes, size_reduction,
            *packed, sleep_micros, runs, unpack_identical, repack_identical,
            "BENCH_pack.json");

  // Acceptance gates.
  bool ok = true;
  if (size_reduction < 4.0) {
    std::fprintf(stderr, "FAIL: size reduction %.2fx < 4.0x vs dense KDF\n",
                 size_reduction);
    ok = false;
  }
  if (!unpack_identical) {
    std::fprintf(stderr, "FAIL: pack -> unpack not byte-identical\n");
    ok = false;
  }
  if (!repack_identical) {
    std::fprintf(stderr,
                 "FAIL: pack -> repack -> unpack not byte-identical\n");
    ok = false;
  }
  for (const UnpackRun& run : runs) {
    if (run.jobs == 8 && run.speedup < 2.0) {
      std::fprintf(stderr, "FAIL: jobs=8 unpack speedup %.2fx < 2.0x\n",
                   run.speedup);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace kondo

int main() { return kondo::Run(); }
