// Figure 11a — precision and recall as the data file grows from 128x128
// (256 KB at 16-byte elements) to 2048x2048 (64 MB), on CS3 (the program
// with the lowest recall), parameter ranges scaled to the dataset size.
//
// Expected shape (Section V-D4): recall stays stable; precision's mean
// rises and its variance falls as disjoint regions separate.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"

namespace kondo {
namespace {

void PrintFigure() {
  const int reps = bench::EnvInt("KONDO_BENCH_REPS", 10);
  const int max_n = bench::EnvInt("KONDO_BENCH_MAX_N", 2048);
  std::printf("=== Figure 11a: precision/recall vs data file size (CS3) "
              "===\n\n");
  std::printf("%-6s %-9s %16s %16s %10s\n", "n", "file", "precision",
              "recall", "t/run(s)");
  for (int64_t n = 128; n <= max_n; n *= 2) {
    const std::unique_ptr<Program> program = CreateProgram("CS3", n);
    program->GroundTruth();
    std::vector<double> precision, recall, seconds;
    for (int rep = 0; rep < reps; ++rep) {
      // Length-valued knobs scale with the array (see ScaledKondoConfig).
      const bench::ToolOutcome outcome = bench::RunKondoOnce(
          *program, rep + 1, /*budget_seconds=*/0.0,
          ScaledKondoConfig(program->data_shape()));
      precision.push_back(outcome.precision);
      recall.push_back(outcome.recall);
      seconds.push_back(outcome.seconds);
    }
    const bench::Series ps = bench::Summarize(precision);
    const bench::Series rs = bench::Summarize(recall);
    const double file_mb =
        static_cast<double>(n * n * 16) / (1024.0 * 1024.0);
    std::printf("%-6lld %7.1fMB %8.3f ±%6.3f %8.3f ±%6.3f %10.2f\n",
                static_cast<long long>(n), file_mb, ps.mean, ps.stdev,
                rs.mean, rs.stdev, bench::Summarize(seconds).mean);
  }
  std::printf("\n");
}

void BM_KondoCs3ByScale(benchmark::State& state) {
  const std::unique_ptr<Program> program =
      CreateProgram("CS3", state.range(0));
  program->GroundTruth();
  uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench::RunKondoOnce(*program, seed++, 0.0).recall);
  }
}
BENCHMARK(BM_KondoCs3ByScale)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kondo

int main(int argc, char** argv) {
  kondo::PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
