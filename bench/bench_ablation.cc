// Ablations over Kondo's design choices (DESIGN.md §7) and the Section VI
// extensions:
//
//   A. CLOSE predicate: conjunctive (paper) vs disjunctive merging.
//   B. Carver cell size.
//   C. Element-granular vs chunk-granular debloating (§VI).
//   D. Kondo+AFL hybrid top-up (§VI future work): recall repair.
//   E. Remote fetch-on-miss (§VI): round-trips needed for recall-1 replays.
//   F. Conjunctive (octagon) invariant inference (§VII) vs Kondo's
//      disjunctive hulls, on the same fuzz campaign.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "array/kdf_file.h"
#include "baselines/invariant_baseline.h"
#include "bench/bench_util.h"
#include "carve/chunk_subset.h"
#include "core/ensemble.h"
#include "core/hybrid.h"
#include "core/metrics.h"
#include "core/remote_fetch.h"

namespace kondo {
namespace {

void AblateCloseMode() {
  std::printf("--- A. CLOSE: boundary AND centre (paper) vs OR ---\n");
  std::printf("%-7s %22s %22s\n", "prog", "AND prec/recall",
              "OR prec/recall");
  for (const std::string& name :
       {std::string("CS1"), std::string("CS3"), std::string("PRL"),
        std::string("LDC")}) {
    const std::unique_ptr<Program> program = CreateProgram(name);
    program->GroundTruth();
    double values[2][2];
    for (int mode = 0; mode < 2; ++mode) {
      KondoConfig config;
      config.carve.close_mode = mode == 0 ? CloseMode::kBoundaryAndCenter
                                          : CloseMode::kBoundaryOrCenter;
      const bench::ToolOutcome outcome =
          bench::RunKondoOnce(*program, 1, 0.0, config);
      values[mode][0] = outcome.precision;
      values[mode][1] = outcome.recall;
    }
    std::printf("%-7s %10.3f / %-9.3f %10.3f / %-9.3f\n", name.c_str(),
                values[0][0], values[0][1], values[1][0], values[1][1]);
  }
  std::printf("\n");
}

void AblateCellSize() {
  std::printf("--- B. carver cell size (CS, paper default 16) ---\n");
  std::printf("%8s %10s %10s %12s %12s\n", "cell", "precision", "recall",
              "init hulls", "final hulls");
  const std::unique_ptr<Program> program = CreateProgram("CS");
  const IndexSet& truth = program->GroundTruth();
  // One shared fuzz campaign: isolate the carver.
  FuzzSchedule schedule(program->param_space(), program->data_shape(),
                        FuzzConfig{}, /*rng_seed=*/1);
  const FuzzResult fuzz = schedule.Run(MakeDebloatTest(*program));
  for (int64_t cell : {4, 8, 16, 32, 64}) {
    CarveConfig config;
    config.cell_size = cell;
    CarveStats stats;
    const IndexSet approx =
        Carver(config).Carve(fuzz.discovered, &stats).Rasterize();
    const AccuracyMetrics metrics = ComputeAccuracy(truth, approx);
    std::printf("%8lld %10.3f %10.3f %12d %12d\n",
                static_cast<long long>(cell), metrics.precision,
                metrics.recall, stats.initial_hulls, stats.final_hulls);
  }
  std::printf("\n");
}

void AblateChunkGranularity() {
  std::printf("--- C. element- vs chunk-granular debloating (§VI) ---\n");
  std::printf("%-7s %8s %14s %14s %14s\n", "prog", "chunk", "elem payload",
              "chunk payload", "chunk recall");
  for (const std::string& name : {std::string("LDC"), std::string("CS")}) {
    const std::unique_ptr<Program> program = CreateProgram(name);
    const IndexSet& truth = program->GroundTruth();
    KondoConfig config;
    const KondoResult result = KondoPipeline(config).Run(*program);
    for (int64_t chunk : {8, 16, 32}) {
      ChunkedLayout layout(program->data_shape(), DType::kFloat128,
                           {chunk, chunk});
      ChunkSubsetStats stats;
      const IndexSet aligned =
          ChunkAlignedSubset(result.approx, layout, &stats);
      const AccuracyMetrics metrics = ComputeAccuracy(truth, aligned);
      // Element-granular payload: bitmap + packed elements (cf. KDD files).
      const int64_t elem_payload =
          static_cast<int64_t>(result.approx.size()) * 16 +
          program->data_shape().NumElements() / 8;
      std::printf("%-7s %8lld %13lldB %13lldB %14.3f\n", name.c_str(),
                  static_cast<long long>(chunk),
                  static_cast<long long>(elem_payload),
                  static_cast<long long>(
                      ChunkSubsetPayloadBytes(stats.retained_chunks, layout)),
                  metrics.recall);
    }
  }
  std::printf("(chunk-granular subsets are supersets: recall can only "
              "rise; payload grows with chunk size)\n\n");
}

void AblateHybrid() {
  std::printf("--- D. Kondo+AFL hybrid top-up (§VI future work) ---\n");
  std::printf("%-7s %12s %12s %12s %12s\n", "prog", "Kondo rec",
              "hybrid rec", "AFL new", "repaired");
  for (const std::string& name : {std::string("CS3"), std::string("CS")}) {
    const std::unique_ptr<Program> program = CreateProgram(name);
    const IndexSet& truth = program->GroundTruth();
    KondoConfig kondo_config;
    kondo_config.fuzz.max_iter = 600;  // Under-converged on purpose.
    kondo_config.rng_seed = 1;
    AflConfig afl_config;
    afl_config.max_seconds = 1.0;
    afl_config.exec_overhead_micros = 100;
    const HybridOutcome outcome =
        RunHybridKondoAfl(*program, kondo_config, afl_config);
    std::printf("%-7s %12.3f %12.3f %12lld %12lld\n", name.c_str(),
                ComputeAccuracy(truth, outcome.kondo.approx).recall,
                ComputeAccuracy(truth, outcome.combined_approx).recall,
                static_cast<long long>(outcome.afl_new_offsets),
                static_cast<long long>(outcome.repaired_offsets));
  }
  std::printf("\n");
}

void AblateRemoteFetch() {
  std::printf("--- E. remote fetch-on-miss (§VI) ---\n");
  const std::unique_ptr<Program> program = CreateProgram("CS", 64);
  DataArray array(program->data_shape(), DType::kFloat64);
  array.FillPattern(9);
  const std::string registry = "/tmp/kondo_bench_registry.kdf";
  KONDO_CHECK(WriteKdfFile(registry, array).ok());

  KondoConfig config;
  config.fuzz.max_iter = 400;  // Leaves a recall gap for fetches to repair.
  config.rng_seed = 2;
  const KondoResult result = KondoPipeline(config).Run(*program);

  StatusOr<std::unique_ptr<KdfRemoteSource>> remote =
      KdfRemoteSource::Open(registry);
  KONDO_CHECK(remote.ok());
  FetchingRuntime runtime(PackageDebloated(array, result.approx),
                          *std::move(remote));

  Rng rng(4);
  int64_t runs = 0;
  for (int i = 0; i < 200; ++i) {
    const ParamValue v = program->param_space().Sample(rng);
    KONDO_CHECK(runtime.ReplayRun(*program, v).ok());
    ++runs;
  }
  std::printf("replayed %lld sampled runs with 0 failures: %lld local hits, "
              "%lld remote fetches (%lld bytes pulled)\n\n",
              static_cast<long long>(runs),
              static_cast<long long>(runtime.stats().local_hits),
              static_cast<long long>(runtime.stats().remote_fetches),
              static_cast<long long>(runtime.stats().bytes_fetched));
  std::remove(registry.c_str());
}

void AblateInvariantBaseline() {
  std::printf("--- F. conjunctive invariant inference (§VII) vs Kondo ---\n");
  std::printf("%-7s %22s %22s\n", "prog", "octagon prec/recall",
              "Kondo prec/recall");
  for (const std::string& name :
       {std::string("CS"), std::string("LDC"), std::string("PRL"),
        std::string("CS1")}) {
    const std::unique_ptr<Program> program = CreateProgram(name);
    const IndexSet& truth = program->GroundTruth();
    // Same fuzz campaign feeds both: isolate the region representation.
    KondoConfig config;
    config.rng_seed = 1;
    const KondoResult kondo = KondoPipeline(config).Run(*program);
    const OctagonInvariant invariant =
        OctagonInvariant::Infer(kondo.fuzz.discovered);
    const AccuracyMetrics oct =
        ComputeAccuracy(truth, invariant.Rasterize(program->data_shape()));
    const AccuracyMetrics hull = ComputeAccuracy(truth, kondo.approx);
    std::printf("%-7s %10.3f / %-9.3f %10.3f / %-9.3f\n", name.c_str(),
                oct.precision, oct.recall, hull.precision, hull.recall);
  }
  std::printf("(a single conjunctive octagon cannot express disjoint or "
              "holed subsets — the §VII limitation)\n\n");
}

void AblateEnsemble() {
  std::printf("--- G. ensemble of independent campaigns (variance -> "
              "recall) ---\n");
  std::printf("%8s %12s %12s %14s\n", "members", "recall", "precision",
              "evaluations");
  const std::unique_ptr<Program> program = CreateProgram("CS3");
  const IndexSet& truth = program->GroundTruth();
  KondoConfig config;
  config.fuzz.max_iter = 400;  // Weak members show the ensemble effect.
  config.rng_seed = 1;
  for (int members : {1, 2, 4, 8}) {
    const EnsembleResult ensemble =
        RunEnsembleKondo(*program, config, members);
    const AccuracyMetrics metrics =
        ComputeAccuracy(truth, ensemble.combined_approx);
    std::printf("%8d %12.3f %12.3f %14d\n", members, metrics.recall,
                metrics.precision, ensemble.total_evaluations);
  }
  std::printf("\n");
}

void PrintAblations() {
  std::printf("=== Ablations over Kondo design choices ===\n\n");
  AblateCloseMode();
  AblateCellSize();
  AblateChunkGranularity();
  AblateHybrid();
  AblateRemoteFetch();
  AblateInvariantBaseline();
  AblateEnsemble();
}

void BM_ChunkAlignSubset(benchmark::State& state) {
  const std::unique_ptr<Program> program = CreateProgram("CS");
  const KondoResult result = KondoPipeline(KondoConfig{}).Run(*program);
  ChunkedLayout layout(program->data_shape(), DType::kFloat128,
                       {state.range(0), state.range(0)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ChunkAlignedSubset(result.approx, layout).size());
  }
}
BENCHMARK(BM_ChunkAlignSubset)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kondo

int main(int argc, char** argv) {
  kondo::PrintAblations();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
