// Table III — Kondo on programs derived from real applications: ARD
// (Atmospheric River Detection) and MSI (Mass Spectrometry Imaging), both
// scaled-down meshes preserving the paper's subset fractions (DESIGN.md §2).
//
// Expected shape: Kondo reaches precision & recall (near) 1 within the
// budget; BF's recall collapses because |Θ| dwarfs the budget (the paper
// reports BF recall 0.24 for ARD and 0.78 for MSI in 2 hours).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "core/metrics.h"

namespace kondo {
namespace {

void PrintTable() {
  const double budget = bench::EnvDouble("KONDO_BENCH_REAL_SECONDS", 1.5);
  std::printf("=== Table III: programs derived from real applications "
              "(budget %.0fs) ===\n\n", budget);
  std::printf("%-22s %-18s %-18s\n", "", "ARD", "MSI");

  struct Row {
    std::string theta;
    std::string data;
    bench::ToolOutcome kondo;
    bench::ToolOutcome bf;
    double debloat = 0.0;
  };
  std::vector<Row> rows;
  for (const char* name : {"ARD", "MSI"}) {
    const std::unique_ptr<Program> program = CreateProgram(name);
    program->GroundTruth();
    Row row;
    row.theta = program->param_space().ToString();
    row.data = program->data_shape().ToString();
    // Kondo's Table III runs use a larger iteration allowance (the paper
    // gave each tool a 2-hour budget); scale up max_iter within our budget
    // and scale the length-valued knobs to the mesh.
    KondoConfig config = ScaledKondoConfig(program->data_shape());
    config.fuzz.max_iter = 4000;
    config.fuzz.stop_iter = 1000;
    row.kondo = bench::RunKondoOnce(*program, /*seed=*/1, budget, config);
    row.bf = bench::RunBruteForceOnce(*program, /*seed=*/1, budget);
    row.debloat = 1.0 - row.kondo.subset_size /
                            static_cast<double>(
                                program->data_shape().NumElements());
    rows.push_back(row);
  }

  std::printf("%-22s %-18s %-18s\n", "# of Parameters", "3", "3");
  std::printf("%-22s %-18s %-18s\n", "Theta (scaled)", rows[0].theta.c_str(),
              rows[1].theta.c_str());
  std::printf("%-22s %-18s %-18s\n", "Data Size (scaled)",
              rows[0].data.c_str(), rows[1].data.c_str());
  std::printf("%-22s %.2f & %-11.2f %.2f & %-11.2f\n",
              "Kondo Prec.&Recall", rows[0].kondo.precision,
              rows[0].kondo.recall, rows[1].kondo.precision,
              rows[1].kondo.recall);
  std::printf("%-22s %.2f & %-11.2f %.2f & %-11.2f\n", "BF Prec.&Recall",
              rows[0].bf.precision, rows[0].bf.recall, rows[1].bf.precision,
              rows[1].bf.recall);
  std::printf("%-22s %-18.2f %-18.2f\n", "Kondo % Debloat",
              100.0 * rows[0].debloat, 100.0 * rows[1].debloat);
  std::printf("(paper: ARD Kondo 1&1, BF 1&0.24, 97.20%% debloat; "
              "MSI Kondo 1&1, BF 1&0.78, 96.24%% debloat)\n\n");
}

void BM_ArdFuzzCampaign(benchmark::State& state) {
  const std::unique_ptr<Program> program = CreateProgram("ARD");
  uint64_t seed = 1;
  for (auto _ : state) {
    KondoConfig config;
    config.fuzz.max_iter = 500;
    config.rng_seed = seed++;
    benchmark::DoNotOptimize(
        KondoPipeline(config).Run(*program).approx.size());
  }
}
BENCHMARK(BM_ArdFuzzCampaign)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace
}  // namespace kondo

int main(int argc, char** argv) {
  kondo::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
