// Fleet coordinator speedup: wall-clock of identical sharded campaigns
// dispatched to 1 / 2 / 4 in-process fleet workers over unix sockets, on
// the STORM and CLIMATE workloads, plus a kill-one-worker leg where a
// coordinator-side net fault tears the first dispatch frame mid-write.
// Emits BENCH_fleet.json in the working directory.
//
// Latency model. As in bench_shard, the dominant per-test cost of a real
// deployment — the audited application execution — is modelled as a fixed
// sleep inside the program's Execute. Every shard replays the full fuzz
// schedule, so each shard campaign costs roughly max_evals * exec_micros
// of modelled execution. The fleet pays that cost *where the shard runs*:
// one worker serialises all shards on its single connection (one
// assignment in flight per link), while four workers overlap four shard
// campaigns — which is exactly the scaling the coordinator is built to
// buy. Worker-side lineage persistence and result shipping are real, not
// modelled: sealed KSS + KEL2 bytes cross the socket and are
// fingerprint-verified on receipt.
//
// Gates (exit 1 on violation):
//  * every fleet leg's merged.kel2 is byte-identical to the local
//    single-process RunShardedCampaign on the same plan;
//  * the kill-one-worker leg converges to that same fingerprint after the
//    re-dispatch, with at least one fault actually injected;
//  * at 4 workers, STORM or CLIMATE reaches >= 1.8x over the same
//    campaign on 1 worker.
//
// Knobs: KONDO_BENCH_FLEET_EVALS       eval budget per campaign (default 320)
//        KONDO_BENCH_FLEET_EXEC_MICROS per-test exec latency (default 400)
//        KONDO_BENCH_FLEET_EXTENT      program extent (default 32)
//        KONDO_BENCH_FLEET_REPS        timing reps, best-of (default 2)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/net_fault.h"
#include "common/stopwatch.h"
#include "exec/thread_pool.h"
#include "fleet/fleet_scheduler.h"
#include "fleet/fleet_worker.h"
#include "shard/shard_scheduler.h"
#include "workloads/registry.h"

namespace kondo {
namespace {

/// Wraps a multi-file program with the modelled application-execution
/// latency. Depends only on the parameter value, as Execute requires.
class LatencyModelledProgram final : public MultiFileProgram {
 public:
  LatencyModelledProgram(std::unique_ptr<MultiFileProgram> inner,
                         int64_t exec_micros)
      : inner_(std::move(inner)), exec_micros_(exec_micros) {}

  std::string_view name() const override { return inner_->name(); }
  const ParamSpace& param_space() const override {
    return inner_->param_space();
  }
  int num_files() const override { return inner_->num_files(); }
  std::string_view file_name(int file) const override {
    return inner_->file_name(file);
  }
  const Shape& file_shape(int file) const override {
    return inner_->file_shape(file);
  }
  void Execute(const ParamValue& v, const MultiReadFn& read) const override {
    std::this_thread::sleep_for(std::chrono::microseconds(exec_micros_));
    inner_->Execute(v, read);
  }

 private:
  std::unique_ptr<MultiFileProgram> inner_;
  int64_t exec_micros_;
};

/// FNV-1a over the merged KEL2 store's bytes. Equal fingerprints <=>
/// byte-identical merged lineage.
uint64_t FingerprintFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  KONDO_CHECK(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  uint64_t hash = 1469598103934665603ull;
  for (unsigned char byte : bytes) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Starts `count` in-process fleet workers on unix sockets under `dir`,
/// each instantiating the latency-modelled program for its campaigns.
std::vector<std::unique_ptr<FleetWorker>> StartWorkers(
    const std::string& dir, int count, int64_t exec_micros) {
  std::vector<std::unique_ptr<FleetWorker>> workers;
  for (int i = 0; i < count; ++i) {
    FleetWorkerOptions options;
    options.address.unix_path = dir + "/w" + std::to_string(i) + ".sock";
    options.scratch_dir = dir + "/w" + std::to_string(i);
    options.program_factory = [exec_micros](const std::string& name,
                                            int64_t extent)
        -> std::unique_ptr<MultiFileProgram> {
      std::unique_ptr<MultiFileProgram> inner =
          CreateFleetProgram(name, extent);
      if (inner == nullptr) {
        return nullptr;
      }
      return std::make_unique<LatencyModelledProgram>(std::move(inner),
                                                      exec_micros);
    };
    auto worker = std::make_unique<FleetWorker>(options);
    const Status started = worker->Start();
    KONDO_CHECK(started.ok()) << started;
    workers.push_back(std::move(worker));
  }
  return workers;
}

struct LegRun {
  std::string leg;  // "local", "workers=N", or "kill-one".
  int workers = 0;
  double seconds = 0.0;
  double speedup_vs_one_worker = 0.0;  // 0 for the local reference leg.
  int evaluations = 0;
  uint64_t fingerprint = 0;
  int64_t faults_injected = 0;
};

struct WorkloadResult {
  std::string workload;
  std::vector<LegRun> legs;
};

constexpr int kShards = 4;

/// One fleet campaign into a fresh directory; returns (seconds, result).
double RunFleetOnce(const MultiFileProgram& program, const KondoConfig& config,
                    const std::vector<SocketAddress>& endpoints,
                    int64_t extent, const std::string& out_dir, NetEnv* net,
                    ShardedRunResult* result) {
  FleetOptions options;
  options.shards = kShards;
  options.output_dir = out_dir;
  options.workers = endpoints;
  options.program_extent = extent;
  options.net = net;
  Stopwatch stopwatch;
  StatusOr<ShardedRunResult> run = RunFleetCampaign(program, config, options);
  const double seconds = stopwatch.ElapsedSeconds();
  KONDO_CHECK(run.ok()) << run.status();
  KONDO_CHECK(run->complete);
  *result = *std::move(run);
  return seconds;
}

WorkloadResult RunWorkload(const std::string& name, const std::string& root,
                           int64_t max_evals, int64_t exec_micros,
                           int64_t extent, int reps) {
  const std::string dir = root + "/" + name;
  std::filesystem::create_directories(dir);

  const LatencyModelledProgram program(CreateMultiFileProgram(name, extent),
                                       exec_micros);
  KondoConfig config;
  config.rng_seed = 29;
  config.jobs = 4;  // Merge-tail executor width; the fuzz runs on workers.
  config.fuzz.max_evals = max_evals;

  WorkloadResult out;
  out.workload = name;

  // Local single-process reference: the byte-identity anchor every fleet
  // leg must reproduce. Timed for the record, not part of the speedup gate.
  {
    ShardOptions local;
    local.shards = kShards;
    local.output_dir = dir + "/local";
    Stopwatch stopwatch;
    StatusOr<ShardedRunResult> run =
        RunShardedCampaign(program, config, local);
    KONDO_CHECK(run.ok()) << run.status();
    LegRun leg;
    leg.leg = "local";
    leg.seconds = stopwatch.ElapsedSeconds();
    leg.evaluations = run->merged.fuzz_stats.evaluations;
    leg.fingerprint = FingerprintFile(run->merged_lineage_path);
    out.legs.push_back(leg);
  }

  std::vector<std::unique_ptr<FleetWorker>> workers =
      StartWorkers(dir, 4, exec_micros);
  std::vector<SocketAddress> endpoints;
  for (const std::unique_ptr<FleetWorker>& worker : workers) {
    endpoints.push_back(worker->bound_address());
  }

  double one_worker_seconds = 0.0;
  for (int count : {1, 2, 4}) {
    const std::vector<SocketAddress> subset(endpoints.begin(),
                                            endpoints.begin() + count);
    double best_seconds = 0.0;
    ShardedRunResult result;
    for (int rep = 0; rep < reps; ++rep) {
      const std::string out_dir = dir + "/w" + std::to_string(count) +
                                  "-rep" + std::to_string(rep);
      const double seconds = RunFleetOnce(program, config, subset, extent,
                                          out_dir, nullptr, &result);
      if (rep == 0 || seconds < best_seconds) {
        best_seconds = seconds;
      }
    }
    if (count == 1) {
      one_worker_seconds = best_seconds;
    }
    LegRun leg;
    leg.leg = "workers=" + std::to_string(count);
    leg.workers = count;
    leg.seconds = best_seconds;
    leg.speedup_vs_one_worker =
        one_worker_seconds / std::max(best_seconds, 1e-9);
    leg.evaluations = result.merged.fuzz_stats.evaluations;
    leg.fingerprint = FingerprintFile(result.merged_lineage_path);
    out.legs.push_back(leg);
    std::printf("%-8s %-10s  %7.3f s  speedup %5.2fx  evals %4d  "
                "fp %016llx\n",
                name.c_str(), leg.leg.c_str(), leg.seconds,
                leg.speedup_vs_one_worker, leg.evaluations,
                static_cast<unsigned long long>(leg.fingerprint));
  }

  // Kill-one-worker crash schedule: connection ordinal 0 (the first worker
  // link) tears its second write — the first kRunShard frame — mid-frame.
  // The coordinator must retire that worker, re-dispatch the shard to a
  // survivor, and still converge to the identical merged bytes.
  {
    NetFaultPlan plan;
    plan.drop_connection = 0;
    plan.drop_after_writes = 2;
    plan.short_frame_bytes = 5;
    FaultInjectingNetEnv net(NetEnv::Default(), plan);
    const std::vector<SocketAddress> subset(endpoints.begin(),
                                            endpoints.begin() + 3);
    ShardedRunResult result;
    LegRun leg;
    leg.leg = "kill-one";
    leg.workers = 3;
    leg.seconds = RunFleetOnce(program, config, subset, extent,
                               dir + "/kill", &net, &result);
    leg.evaluations = result.merged.fuzz_stats.evaluations;
    leg.fingerprint = FingerprintFile(result.merged_lineage_path);
    leg.faults_injected = net.faults_injected();
    out.legs.push_back(leg);
    std::printf("%-8s %-10s  %7.3f s  faults %lld         evals %4d  "
                "fp %016llx\n",
                name.c_str(), leg.leg.c_str(), leg.seconds,
                static_cast<long long>(leg.faults_injected), leg.evaluations,
                static_cast<unsigned long long>(leg.fingerprint));
  }

  for (const std::unique_ptr<FleetWorker>& worker : workers) {
    worker->Stop();
  }
  return out;
}

void WriteJson(const std::vector<WorkloadResult>& results, int64_t max_evals,
               int64_t exec_micros, int64_t extent, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"benchmark\": \"fleet_scheduler\",\n"
               "  \"shards\": %d,\n  \"max_evals\": %lld,\n"
               "  \"exec_sleep_micros\": %lld,\n  \"extent\": %lld,\n"
               "  \"hardware_threads\": %d,\n  \"workloads\": [\n",
               kShards, static_cast<long long>(max_evals),
               static_cast<long long>(exec_micros),
               static_cast<long long>(extent), HardwareThreads());
  for (size_t w = 0; w < results.size(); ++w) {
    const WorkloadResult& result = results[w];
    std::fprintf(f, "    {\"workload\": \"%s\", \"legs\": [\n",
                 result.workload.c_str());
    for (size_t i = 0; i < result.legs.size(); ++i) {
      const LegRun& leg = result.legs[i];
      std::fprintf(f,
                   "      {\"leg\": \"%s\", \"workers\": %d, "
                   "\"seconds\": %.6f, \"speedup_vs_one_worker\": %.4f,\n"
                   "       \"evaluations\": %d, \"faults_injected\": %lld, "
                   "\"fingerprint\": \"%016llx\", "
                   "\"byte_identical_to_local\": %s}%s\n",
                   leg.leg.c_str(), leg.workers, leg.seconds,
                   leg.speedup_vs_one_worker, leg.evaluations,
                   static_cast<long long>(leg.faults_injected),
                   static_cast<unsigned long long>(leg.fingerprint),
                   leg.fingerprint == result.legs.front().fingerprint
                       ? "true"
                       : "false",
                   i + 1 < result.legs.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", w + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int Run() {
  const int64_t max_evals = bench::EnvInt("KONDO_BENCH_FLEET_EVALS", 320);
  const int64_t exec_micros =
      bench::EnvInt("KONDO_BENCH_FLEET_EXEC_MICROS", 400);
  const int64_t extent = bench::EnvInt("KONDO_BENCH_FLEET_EXTENT", 32);
  const int reps = bench::EnvInt("KONDO_BENCH_FLEET_REPS", 2);

  // Unix socket paths must stay under sockaddr_un's ~100-byte limit, so
  // everything lives under a short mkdtemp root.
  char root_template[] = "/tmp/kfleet.XXXXXX";
  const char* root = mkdtemp(root_template);
  KONDO_CHECK(root != nullptr) << "mkdtemp failed";

  std::vector<WorkloadResult> results;
  results.push_back(
      RunWorkload("STORM", root, max_evals, exec_micros, extent, reps));
  results.push_back(
      RunWorkload("CLIMATE", root, max_evals, exec_micros, extent, reps));
  WriteJson(results, max_evals, exec_micros, extent, "BENCH_fleet.json");
  std::filesystem::remove_all(root);

  // Acceptance gates: every leg byte-identical to the local single-process
  // run (the kill-one leg included, with at least one fault actually
  // delivered), and a >= 1.8x 4-worker speedup on STORM or CLIMATE.
  bool ok = true;
  double best_four_worker_speedup = 0.0;
  for (const WorkloadResult& result : results) {
    for (const LegRun& leg : result.legs) {
      if (leg.fingerprint != result.legs.front().fingerprint) {
        std::fprintf(stderr, "FAIL: %s %s diverged from the local run\n",
                     result.workload.c_str(), leg.leg.c_str());
        ok = false;
      }
      if (leg.leg == "kill-one" && leg.faults_injected < 1) {
        std::fprintf(stderr, "FAIL: %s kill-one leg injected no fault\n",
                     result.workload.c_str());
        ok = false;
      }
      if (leg.workers == 4) {
        best_four_worker_speedup =
            std::max(best_four_worker_speedup, leg.speedup_vs_one_worker);
      }
    }
  }
  if (best_four_worker_speedup < 1.8) {
    std::fprintf(stderr,
                 "FAIL: best 4-worker speedup %.2fx < 1.8x on every "
                 "workload\n",
                 best_four_worker_speedup);
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace kondo

int main() { return kondo::Run(); }
