#ifndef KONDO_BENCH_BENCH_UTIL_H_
#define KONDO_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "baselines/afl_fuzzer.h"
#include "baselines/brute_force.h"
#include "carve/carver.h"
#include "common/stopwatch.h"
#include "core/kondo.h"
#include "core/metrics.h"
#include "workloads/registry.h"

namespace kondo::bench {

// All bench timing goes through Stopwatch (common/stopwatch.h), which is
// pinned to std::chrono::steady_clock: speedup ratios (e.g. the --jobs
// comparisons in bench_parallel_speedup) must come from a monotonic clock,
// never from wall-clock sources that can step under NTP adjustment. Keep
// system_clock / gettimeofday out of the bench and report paths.

/// Mean and (sample) standard deviation of a series.
struct Series {
  double mean = 0.0;
  double stdev = 0.0;
  int count = 0;
};

inline Series Summarize(const std::vector<double>& values) {
  Series series;
  series.count = static_cast<int>(values.size());
  if (values.empty()) {
    return series;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  series.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double sq = 0.0;
    for (double v : values) {
      sq += (v - series.mean) * (v - series.mean);
    }
    series.stdev = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  return series;
}

/// Reads a double/int knob from the environment with a default — used to
/// scale bench budgets to the machine (e.g. KONDO_BENCH_SECONDS=2).
inline double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

/// Per-tool accuracy outcome of one campaign.
struct ToolOutcome {
  double precision = 0.0;
  double recall = 0.0;
  double seconds = 0.0;
  double subset_size = 0.0;
};

/// Simulated cost of one program execution in microseconds, charged
/// uniformly to every tool. The paper's debloat tests execute the target
/// program as a real process per valuation; this in-process harness would
/// otherwise make executions ~microseconds and let brute force exhaust Θ
/// inside any budget. Override with KONDO_BENCH_EXEC_MICROS (0 disables).
inline int64_t ExecCostMicros() {
  static const int64_t value = EnvInt("KONDO_BENCH_EXEC_MICROS", 200);
  return value;
}

/// Wraps the fast debloat test with the uniform simulated execution cost.
inline DebloatTestFn MakeCostedDebloatTest(const Program& program) {
  const int64_t cost = ExecCostMicros();
  return [&program, cost](const ParamValue& v) {
    BusyWaitMicros(cost);
    return program.AccessSet(v);
  };
}

/// Runs Kondo on `program` under an optional wall-clock fuzz budget and
/// reports accuracy against the cached ground truth.
inline ToolOutcome RunKondoOnce(const Program& program, uint64_t seed,
                                double budget_seconds,
                                const KondoConfig& base = KondoConfig{}) {
  KondoConfig config = base;
  config.rng_seed = seed;
  if (budget_seconds > 0.0) {
    config.fuzz.max_seconds = budget_seconds;
  }
  const KondoResult result = KondoPipeline(config).RunWithTest(
      MakeCostedDebloatTest(program), program.param_space(),
      program.data_shape());
  const AccuracyMetrics metrics =
      ComputeAccuracy(program.GroundTruth(), result.approx);
  return ToolOutcome{metrics.precision, metrics.recall,
                     result.fuzz_seconds + result.carve_seconds +
                         result.rasterize_seconds,
                     static_cast<double>(result.approx.size())};
}

/// Runs the BF baseline under a wall-clock budget.
inline ToolOutcome RunBruteForceOnce(const Program& program, uint64_t seed,
                                     double budget_seconds) {
  BruteForceConfig config;
  config.max_seconds = budget_seconds;
  config.rng_seed = seed;
  config.exec_overhead_micros = ExecCostMicros();
  const BruteForceResult result = RunBruteForce(program, config);
  const AccuracyMetrics metrics =
      ComputeAccuracy(program.GroundTruth(), result.discovered);
  return ToolOutcome{metrics.precision, metrics.recall,
                     result.elapsed_seconds,
                     static_cast<double>(result.discovered.size())};
}

/// Runs the AFL baseline under a wall-clock budget. AFL pays the uniform
/// execution cost plus its own instrumentation bookkeeping (AflConfig
/// default).
inline ToolOutcome RunAflOnce(const Program& program, uint64_t seed,
                              double budget_seconds) {
  AflConfig config;
  config.max_seconds = budget_seconds;
  config.rng_seed = seed;
  config.exec_overhead_micros += ExecCostMicros();
  AflFuzzer fuzzer(program, config);
  const AflResult result = fuzzer.Run();
  const AccuracyMetrics metrics =
      ComputeAccuracy(program.GroundTruth(), result.coverage);
  return ToolOutcome{metrics.precision, metrics.recall,
                     result.elapsed_seconds,
                     static_cast<double>(result.coverage.size())};
}

/// Runs Kondo's fuzzer but carves with the Simple Convex baseline (§V-C).
inline ToolOutcome RunSimpleConvexOnce(const Program& program, uint64_t seed,
                                       double budget_seconds) {
  KondoConfig config;
  config.rng_seed = seed;
  if (budget_seconds > 0.0) {
    config.fuzz.max_seconds = budget_seconds;
  }
  FuzzSchedule schedule(program.param_space(), program.data_shape(),
                        config.fuzz, seed);
  const FuzzResult fuzz = schedule.Run(MakeCostedDebloatTest(program));
  const IndexSet approx = SimpleConvexCarve(fuzz.discovered).Rasterize();
  const AccuracyMetrics metrics =
      ComputeAccuracy(program.GroundTruth(), approx);
  return ToolOutcome{metrics.precision, metrics.recall,
                     fuzz.stats.elapsed_seconds,
                     static_cast<double>(approx.size())};
}

/// The paper's per-program budget (§V-C): "We chose a time budget for Kondo
/// to reach at least 97% of its eventual recall" — i.e. roughly the wall
/// time of one converged Kondo campaign. The same budget is then granted to
/// every tool. A calibration run (seed 1000) measures it.
inline double CalibrateBudgetSeconds(const Program& program) {
  const ToolOutcome outcome =
      RunKondoOnce(program, /*seed=*/1000, /*budget_seconds=*/0.0);
  return std::max(outcome.seconds, 0.02);
}

/// The Fig. 7 program families: each micro-benchmark averaged with its
/// synthetic variants ("The 3D PRL, LDC and RDC programs have lower BF
/// recall than corresponding 2D programs", §V-D1).
inline std::vector<std::pair<std::string, std::vector<std::string>>>
MicroBenchmarkFamilies() {
  return {{"CS", {"CS", "CS1", "CS2", "CS3", "CS5"}},
          {"PRL", {"PRL", "PRL3D"}},
          {"LDC", {"LDC", "LDC3D"}},
          {"RDC", {"RDC", "RDC3D"}}};
}

}  // namespace kondo::bench

#endif  // KONDO_BENCH_BENCH_UTIL_H_
