// Sharded campaign scheduler speedup: wall-clock of identical multi-file
// campaigns at (shards, jobs) = (1,1) / (2,4) / (4,4) / (4,8) on the STORM
// and CLIMATE workloads. Emits BENCH_shard.json in the working directory.
//
// Latency model. A real sharded deployment pays two per-test costs:
//
//  * application execution — the audited process run. Replicated per shard
//    (every shard replays the full schedule), modelled as a fixed sleep
//    inside the program's Execute.
//  * lineage persistence — writing the audit trace. In the shard subsystem
//    this cost is *partitioned*, not replicated: each shard persists only
//    the canonical event log of its own slices (see RunShardCampaign), so a
//    1/K shard pays ~1/K of the trace latency. Modelled as a sleep inside
//    the per-shard AuditPersistFn, proportional to the bytes the log
//    covers. Persistence is serial within a shard (the single-writer
//    consumption thread) but overlaps across shards — which is exactly the
//    scaling the scheduler is designed to buy.
//
// Sleeps, not busy-waits: blocking waits overlap across pool workers even
// on one hardware thread (like real process waits and disk writes), so the
// benchmark measures scheduling efficiency rather than core count.
//
// Every configuration is fingerprinted (merged per-file index sets, seed
// sequence, counters); the gates fail if any (shards, jobs) setting
// diverges from (1,1) or if shards=4/jobs=8 is not at least 2x faster than
// the serial unsharded run.
//
// Knobs: KONDO_BENCH_SHARD_EVALS       eval budget per campaign (default 320)
//        KONDO_BENCH_SHARD_EXEC_MICROS per-test exec latency (default 200)
//        KONDO_BENCH_SHARD_NS_PER_BYTE persist latency per byte (default 500)
//        KONDO_BENCH_SHARD_REPS        timing reps, best-of (default 2)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "audit/event_log.h"
#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "exec/thread_pool.h"
#include "shard/merge_stage.h"
#include "shard/shard_campaign.h"
#include "shard/shard_plan.h"
#include "workloads/registry.h"

namespace kondo {
namespace {

struct BenchConfig {
  int shards = 1;
  int jobs = 1;
};

/// The (1,1) serial run is the baseline every other config must reproduce
/// bit-identically. The (8,8) leg exists for the skew story: CLIMATE's
/// wind file absorbs most of the accessed bytes, so the per-file partition
/// at shards=4 leaves one shard holding ~70% of the persistence work —
/// at shards=8 the chunk-range splitter breaks that file up and restores
/// near-balanced scaling.
constexpr BenchConfig kConfigs[] = {{1, 1}, {2, 4}, {4, 4}, {4, 8}, {8, 8}};

/// Wraps a multi-file program with the modelled application-execution
/// latency. Depends only on the parameter value, as Execute requires.
class LatencyModelledProgram final : public MultiFileProgram {
 public:
  LatencyModelledProgram(std::unique_ptr<MultiFileProgram> inner,
                         int64_t exec_micros)
      : inner_(std::move(inner)), exec_micros_(exec_micros) {}

  std::string_view name() const override { return inner_->name(); }
  const ParamSpace& param_space() const override {
    return inner_->param_space();
  }
  int num_files() const override { return inner_->num_files(); }
  std::string_view file_name(int file) const override {
    return inner_->file_name(file);
  }
  const Shape& file_shape(int file) const override {
    return inner_->file_shape(file);
  }
  void Execute(const ParamValue& v, const MultiReadFn& read) const override {
    std::this_thread::sleep_for(std::chrono::microseconds(exec_micros_));
    inner_->Execute(v, read);
  }

 private:
  std::unique_ptr<MultiFileProgram> inner_;
  int64_t exec_micros_;
};

/// FNV-1a over the merged campaign: per-file discovered + approx ids in
/// sorted order, the seed sequence, and the deterministic counters. Equal
/// fingerprints <=> bit-identical merged outcome.
uint64_t Fingerprint(const MergedCampaign& merged) {
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xff;
      hash *= 1099511628211ull;
    }
  };
  auto mix_set = [&mix](const IndexSet& set) {
    for (int64_t id : set.ToSortedLinearIds()) {
      mix(static_cast<uint64_t>(id));
    }
    mix(0xfeedfacefeedfaceull);
  };
  for (const IndexSet& set : merged.per_file_discovered) {
    mix_set(set);
  }
  for (const IndexSet& set : merged.per_file_approx) {
    mix_set(set);
  }
  for (const Seed& seed : merged.seeds) {
    for (double v : seed.value) {
      uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(v));
      std::memcpy(&bits, &v, sizeof(bits));
      mix(bits);
    }
    mix(seed.useful ? 1 : 0);
  }
  mix(static_cast<uint64_t>(merged.fuzz_stats.iterations));
  mix(static_cast<uint64_t>(merged.fuzz_stats.evaluations));
  mix(static_cast<uint64_t>(merged.fuzz_stats.useful_evaluations));
  mix(static_cast<uint64_t>(merged.fuzz_stats.restarts));
  return hash;
}

/// The modelled persistence hook: sleep proportionally to the bytes the
/// shard's canonical log covers, i.e. to the shard's share of the trace.
AuditPersistFn ModelledPersist(int64_t ns_per_byte) {
  return [ns_per_byte](const EventLog& log) {
    int64_t bytes = 0;
    for (const Event& event : log.events()) {
      bytes += event.size;
    }
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(bytes * ns_per_byte));
    return OkStatus();
  };
}

struct ConfigRun {
  BenchConfig config;
  double seconds = 0.0;
  double speedup = 1.0;
  int evaluations = 0;
  uint64_t fingerprint = 0;
};

struct WorkloadResult {
  std::string workload;
  std::vector<ConfigRun> runs;
};

/// One sharded campaign over the library's planner / per-shard campaign /
/// merge stages, scheduled the way ShardScheduler schedules: one shared
/// pool, one plain driver thread per running shard, non-owning executors.
/// (The bench drives these pieces directly rather than RunShardedCampaign
/// so the modelled persistence hook can stand in for the KEL2 sinks.)
MergedCampaign RunSharded(const MultiFileProgram& program,
                          const KondoConfig& config, const BenchConfig& bench,
                          int64_t ns_per_byte) {
  std::vector<Shape> shapes;
  for (int f = 0; f < program.num_files(); ++f) {
    shapes.push_back(program.file_shape(f));
  }
  StatusOr<ShardPlan> plan = PlanShards(shapes, bench.shards);
  KONDO_CHECK(plan.ok()) << plan.status();

  const AuditPersistFn persist = ModelledPersist(ns_per_byte);
  std::vector<ShardCampaignResult> results(
      static_cast<size_t>(plan->num_shards()));
  if (bench.jobs <= 1) {
    CampaignExecutor executor(1);
    for (const Shard& shard : plan->shards) {
      StatusOr<ShardCampaignResult> run =
          RunShardCampaign(program, *plan, shard, config, executor, persist);
      KONDO_CHECK(run.ok()) << run.status();
      results[static_cast<size_t>(shard.id)] = *std::move(run);
    }
  } else {
    ThreadPool pool(bench.jobs);
    const size_t drivers = std::min(results.size(),
                                    static_cast<size_t>(bench.jobs));
    std::atomic<size_t> next{0};
    std::vector<std::thread> threads;
    threads.reserve(drivers);
    for (size_t d = 0; d < drivers; ++d) {
      threads.emplace_back([&] {
        CampaignExecutor executor(&pool, bench.jobs);
        for (size_t s = next.fetch_add(1); s < results.size();
             s = next.fetch_add(1)) {
          StatusOr<ShardCampaignResult> run = RunShardCampaign(
              program, *plan, plan->shards[s], config, executor, persist);
          KONDO_CHECK(run.ok()) << run.status();
          results[s] = *std::move(run);
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }

  CampaignExecutor merge_executor(bench.jobs);
  StatusOr<MergedCampaign> merged =
      MergeShardCampaigns(*plan, results, config, merge_executor);
  KONDO_CHECK(merged.ok()) << merged.status();
  return *std::move(merged);
}

WorkloadResult RunWorkload(const std::string& name, int64_t max_evals,
                           int64_t exec_micros, int64_t ns_per_byte,
                           int reps) {
  const LatencyModelledProgram program(CreateMultiFileProgram(name, 48),
                                       exec_micros);
  KondoConfig config;
  config.rng_seed = 29;
  config.fuzz.max_evals = max_evals;

  WorkloadResult out;
  out.workload = name;
  for (const BenchConfig& bench : kConfigs) {
    config.jobs = bench.jobs;
    double best_seconds = 0.0;
    MergedCampaign merged;
    for (int rep = 0; rep < reps; ++rep) {
      Stopwatch stopwatch;
      merged = RunSharded(program, config, bench, ns_per_byte);
      const double seconds = stopwatch.ElapsedSeconds();
      if (rep == 0 || seconds < best_seconds) {
        best_seconds = seconds;
      }
    }

    ConfigRun run;
    run.config = bench;
    run.seconds = best_seconds;
    run.evaluations = merged.fuzz_stats.evaluations;
    run.fingerprint = Fingerprint(merged);
    run.speedup = out.runs.empty() ? 1.0
                                   : out.runs.front().seconds /
                                         std::max(best_seconds, 1e-9);
    out.runs.push_back(run);

    std::printf("%-8s shards=%d jobs=%d  %7.3f s  speedup %5.2fx  "
                "evals %4d  fp %016llx\n",
                name.c_str(), bench.shards, bench.jobs, run.seconds,
                run.speedup, run.evaluations,
                static_cast<unsigned long long>(run.fingerprint));
  }
  return out;
}

void WriteJson(const std::vector<WorkloadResult>& results, int64_t max_evals,
               int64_t exec_micros, int64_t ns_per_byte,
               const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"benchmark\": \"shard_scheduler\",\n"
               "  \"max_evals\": %lld,\n  \"exec_sleep_micros\": %lld,\n"
               "  \"persist_ns_per_byte\": %lld,\n"
               "  \"hardware_threads\": %d,\n  \"workloads\": [\n",
               static_cast<long long>(max_evals),
               static_cast<long long>(exec_micros),
               static_cast<long long>(ns_per_byte), HardwareThreads());
  for (size_t w = 0; w < results.size(); ++w) {
    const WorkloadResult& result = results[w];
    std::fprintf(f, "    {\"workload\": \"%s\", \"runs\": [\n",
                 result.workload.c_str());
    for (size_t i = 0; i < result.runs.size(); ++i) {
      const ConfigRun& run = result.runs[i];
      std::fprintf(f,
                   "      {\"shards\": %d, \"jobs\": %d, "
                   "\"seconds\": %.6f, \"speedup_vs_serial\": %.4f,\n"
                   "       \"evaluations\": %d, "
                   "\"fingerprint\": \"%016llx\", "
                   "\"bit_identical_to_serial\": %s}%s\n",
                   run.config.shards, run.config.jobs, run.seconds,
                   run.speedup, run.evaluations,
                   static_cast<unsigned long long>(run.fingerprint),
                   run.fingerprint == result.runs.front().fingerprint
                       ? "true"
                       : "false",
                   i + 1 < result.runs.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", w + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int Run() {
  const int64_t max_evals = bench::EnvInt("KONDO_BENCH_SHARD_EVALS", 320);
  const int64_t exec_micros =
      bench::EnvInt("KONDO_BENCH_SHARD_EXEC_MICROS", 200);
  const int64_t ns_per_byte =
      bench::EnvInt("KONDO_BENCH_SHARD_NS_PER_BYTE", 500);
  const int reps = bench::EnvInt("KONDO_BENCH_SHARD_REPS", 2);

  std::vector<WorkloadResult> results;
  results.push_back(
      RunWorkload("STORM", max_evals, exec_micros, ns_per_byte, reps));
  results.push_back(
      RunWorkload("CLIMATE", max_evals, exec_micros, ns_per_byte, reps));
  WriteJson(results, max_evals, exec_micros, ns_per_byte,
            "BENCH_shard.json");

  // Acceptance gates: every (shards, jobs) bit-identical to the serial
  // unsharded run; STORM at least 2x faster at shards=4/jobs=8; and every
  // workload at least 2x faster at its best config (CLIMATE only gets
  // there at shards=8, where the chunk-range splitter rebalances its
  // skewed wind file — the per-file partition tops out lower).
  bool ok = true;
  for (const WorkloadResult& result : results) {
    double best_speedup = 1.0;
    for (const ConfigRun& run : result.runs) {
      if (run.fingerprint != result.runs.front().fingerprint) {
        std::fprintf(stderr,
                     "FAIL: %s shards=%d jobs=%d diverged from serial\n",
                     result.workload.c_str(), run.config.shards,
                     run.config.jobs);
        ok = false;
      }
      best_speedup = std::max(best_speedup, run.speedup);
      if (&result == &results.front() && run.config.shards == 4 &&
          run.config.jobs == 8 && run.speedup < 2.0) {
        std::fprintf(stderr,
                     "FAIL: %s shards=4 jobs=8 speedup %.2fx < 2.0x\n",
                     result.workload.c_str(), run.speedup);
        ok = false;
      }
    }
    if (best_speedup < 2.0) {
      std::fprintf(stderr, "FAIL: %s best speedup %.2fx < 2.0x\n",
                   result.workload.c_str(), best_speedup);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace kondo

int main() { return kondo::Run(); }
