// Figure 7 — mean recall of Kondo vs brute force (BF) vs AFL for a fixed
// per-program time budget, over the four H5bench micro-benchmarks.
//
// Methodology per Section V-C: 10 runs for Kondo and BF, 2 for AFL, with
// the same wall-clock budget per program. Absolute budgets are scaled to
// this machine via KONDO_BENCH_SECONDS (default 0.3 s); the paper's shape —
// Kondo >= BF > AFL, with 3-D programs hurting BF — is the target.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"

namespace kondo {
namespace {

void PrintFigure() {
  using bench::Series;
  const int kondo_reps = bench::EnvInt("KONDO_BENCH_REPS", 5);
  const int afl_reps = bench::EnvInt("KONDO_BENCH_AFL_REPS", 2);

  std::printf(
      "=== Figure 7: mean recall for per-program budgets (Kondo's "
      "convergence time, exec cost %lldus) ===\n\n",
      static_cast<long long>(bench::ExecCostMicros()));
  std::printf("%-7s %18s %18s %18s\n", "family", "Kondo", "BF", "AFL");
  double kondo_sum = 0.0, bf_sum = 0.0, afl_sum = 0.0;
  int families = 0;
  for (const auto& [family, members] : bench::MicroBenchmarkFamilies()) {
    std::vector<double> kondo, bf, afl;
    for (const std::string& name : members) {
      const std::unique_ptr<Program> program = CreateProgram(name);
      program->GroundTruth();  // Warm the cache outside the budget.
      // §V-C: every tool gets the budget Kondo needs to converge.
      const double budget = bench::CalibrateBudgetSeconds(*program);
      for (int rep = 0; rep < kondo_reps; ++rep) {
        kondo.push_back(
            bench::RunKondoOnce(*program, rep + 1, budget).recall);
        bf.push_back(
            bench::RunBruteForceOnce(*program, rep + 1, budget).recall);
      }
      for (int rep = 0; rep < afl_reps; ++rep) {
        afl.push_back(bench::RunAflOnce(*program, rep + 1, budget).recall);
      }
    }
    const Series ks = bench::Summarize(kondo);
    const Series bs = bench::Summarize(bf);
    const Series as = bench::Summarize(afl);
    std::printf("%-7s %9.3f ±%6.3f %9.3f ±%6.3f %9.3f ±%6.3f\n",
                family.c_str(), ks.mean, ks.stdev, bs.mean, bs.stdev,
                as.mean, as.stdev);
    kondo_sum += ks.mean;
    bf_sum += bs.mean;
    afl_sum += as.mean;
    ++families;
  }
  std::printf("%-7s %9.3f %8s %9.3f %8s %9.3f\n\n", "mean",
              kondo_sum / families, "", bf_sum / families, "",
              afl_sum / families);
}

void BM_KondoCampaignCS(benchmark::State& state) {
  const std::unique_ptr<Program> program = CreateProgram("CS");
  program->GroundTruth();
  uint64_t seed = 1;
  for (auto _ : state) {
    const bench::ToolOutcome outcome =
        bench::RunKondoOnce(*program, seed++, /*budget_seconds=*/0.0);
    state.counters["recall"] = outcome.recall;
    state.counters["precision"] = outcome.precision;
  }
}
BENCHMARK(BM_KondoCampaignCS)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kondo

int main(int argc, char** argv) {
  kondo::PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
