// Figure 9 — fraction of data bloat identified by Kondo, |I - I'_Θ| / |I|,
// against the ground truth |I - I_Θ| / |I| for all 11 programs.
//
// The paper reports an average identified bloat of 63%; Kondo's identified
// bloat tracks the ground truth (it under-identifies exactly where its
// precision dips, since extra carved indices are kept, not dropped).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "core/metrics.h"

namespace kondo {
namespace {

void PrintFigure() {
  const int reps = bench::EnvInt("KONDO_BENCH_REPS", 10);
  std::printf("=== Figure 9: fraction of data bloat identified ===\n\n");
  std::printf("%-7s %14s %14s\n", "prog", "Kondo bloat%", "truth bloat%");
  double kondo_sum = 0.0;
  double truth_sum = 0.0;
  int programs = 0;
  for (const std::string& name : TableTwoProgramNames()) {
    const std::unique_ptr<Program> program = CreateProgram(name);
    const double truth_bloat =
        BloatFraction(program->data_shape(), program->GroundTruth());
    std::vector<double> kondo;
    for (int rep = 0; rep < reps; ++rep) {
      KondoConfig config;
      config.rng_seed = static_cast<uint64_t>(rep + 1);
      const KondoResult result = KondoPipeline(config).Run(*program);
      kondo.push_back(BloatFraction(program->data_shape(), result.approx));
    }
    const bench::Series ks = bench::Summarize(kondo);
    std::printf("%-7s %8.1f%% ±%4.1f %13.1f%%\n", name.c_str(),
                100.0 * ks.mean, 100.0 * ks.stdev, 100.0 * truth_bloat);
    kondo_sum += ks.mean;
    truth_sum += truth_bloat;
    ++programs;
  }
  std::printf("%-7s %8.1f%% %14.1f%%\n", "mean",
              100.0 * kondo_sum / programs, 100.0 * truth_sum / programs);
  std::printf("(paper: Kondo identifies an average bloat of 63%%)\n\n");
}

void BM_FullPipelineLdc(benchmark::State& state) {
  const std::unique_ptr<Program> program = CreateProgram("LDC");
  program->GroundTruth();
  uint64_t seed = 1;
  for (auto _ : state) {
    KondoConfig config;
    config.rng_seed = seed++;
    benchmark::DoNotOptimize(
        KondoPipeline(config).Run(*program).approx.size());
  }
}
BENCHMARK(BM_FullPipelineLdc)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kondo

int main(int argc, char** argv) {
  kondo::PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
