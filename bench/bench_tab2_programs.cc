// Table II — the 11 micro-benchmark and synthetic programs: parameter
// counts, Θ spaces, data shapes, and ground-truth data subsets.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "core/metrics.h"
#include "workloads/registry.h"

namespace kondo {
namespace {

void PrintTable() {
  std::printf("=== Table II: Micro-benchmark and synthetic programs ===\n\n");
  std::printf("%-6s %-8s %-22s %-11s %10s %12s %8s\n", "prog", "#params",
              "theta", "data", "|theta|", "|I_theta|", "bloat%");
  for (const std::string& name : TableTwoProgramNames()) {
    const std::unique_ptr<Program> program = CreateProgram(name);
    const IndexSet& truth = program->GroundTruth();
    std::printf("%-6s %-8d %-22s %-11s %10.0f %12zu %7.1f%%\n", name.c_str(),
                program->param_space().num_params(),
                program->param_space().ToString().c_str(),
                program->data_shape().ToString().c_str(),
                program->param_space().NumValuations(), truth.size(),
                100.0 * BloatFraction(program->data_shape(), truth));
  }
  std::printf("\n");
}

void BM_GroundTruthEnumeration(benchmark::State& state) {
  const std::unique_ptr<Program> program = CreateProgram("CS", 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(program->GroundTruthByEnumeration(1e6).size());
  }
}
BENCHMARK(BM_GroundTruthEnumeration);

}  // namespace
}  // namespace kondo

int main(int argc, char** argv) {
  kondo::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
