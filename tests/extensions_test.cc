// Tests for the Section VI extensions: remote fetch-on-miss, chunk-granular
// debloating, the Kondo+AFL hybrid schedule, and the persistent event store.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "array/data_array.h"
#include "array/kdf_file.h"
#include "audit/event_store.h"
#include "carve/chunk_subset.h"
#include "core/hybrid.h"
#include "core/kondo.h"
#include "core/metrics.h"
#include "core/remote_fetch.h"
#include "workloads/registry.h"

namespace kondo {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------- remote fetch --

class RemoteFetchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    program_ = CreateProgram("CS", 32);
    array_ = std::make_unique<DataArray>(program_->data_shape(),
                                         DType::kFloat64);
    array_->FillPattern(11);
    registry_path_ = TempPath("registry.kdf");
    ASSERT_TRUE(WriteKdfFile(registry_path_, *array_).ok());
  }

  /// A debloated array retaining only indices with even x.
  DebloatedArray HalfRetained() {
    IndexSet retained(program_->data_shape());
    program_->data_shape().ForEachIndex([&retained](const Index& index) {
      if (index[0] % 2 == 0) {
        retained.Insert(index);
      }
    });
    return DebloatedArray::FromDataArray(*array_, retained);
  }

  std::unique_ptr<Program> program_;
  std::unique_ptr<DataArray> array_;
  std::string registry_path_;
};

TEST_F(RemoteFetchTest, LocalHitsDoNotFetch) {
  StatusOr<std::unique_ptr<KdfRemoteSource>> remote =
      KdfRemoteSource::Open(registry_path_);
  ASSERT_TRUE(remote.ok());
  FetchingRuntime runtime(HalfRetained(), *std::move(remote));
  StatusOr<double> value = runtime.Read(Index{2, 3});
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(*value, array_->At(Index{2, 3}));
  EXPECT_EQ(runtime.stats().local_hits, 1);
  EXPECT_EQ(runtime.stats().remote_fetches, 0);
}

TEST_F(RemoteFetchTest, MissFetchesFromRemote) {
  StatusOr<std::unique_ptr<KdfRemoteSource>> remote =
      KdfRemoteSource::Open(registry_path_);
  ASSERT_TRUE(remote.ok());
  FetchingRuntime runtime(HalfRetained(), *std::move(remote));
  StatusOr<double> value = runtime.Read(Index{3, 5});  // Odd x: Null.
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(*value, array_->At(Index{3, 5}));
  EXPECT_EQ(runtime.stats().remote_fetches, 1);
  EXPECT_EQ(runtime.stats().bytes_fetched, 8);  // One float64 element.
}

TEST_F(RemoteFetchTest, FetchedElementsAreCached) {
  StatusOr<std::unique_ptr<KdfRemoteSource>> remote =
      KdfRemoteSource::Open(registry_path_);
  ASSERT_TRUE(remote.ok());
  FetchingRuntime runtime(HalfRetained(), *std::move(remote));
  ASSERT_TRUE(runtime.Read(Index{3, 5}).ok());
  ASSERT_TRUE(runtime.Read(Index{3, 5}).ok());
  ASSERT_TRUE(runtime.Read(Index{3, 5}).ok());
  EXPECT_EQ(runtime.stats().remote_fetches, 1);
}

TEST_F(RemoteFetchTest, NullRemoteDegradesToDataMissing) {
  FetchingRuntime runtime(HalfRetained(), nullptr);
  StatusOr<double> value = runtime.Read(Index{3, 5});
  EXPECT_EQ(value.status().code(), StatusCode::kDataMissing);
  EXPECT_EQ(runtime.stats().hard_misses, 1);
}

TEST_F(RemoteFetchTest, OutOfBoundsIsNotFetched) {
  StatusOr<std::unique_ptr<KdfRemoteSource>> remote =
      KdfRemoteSource::Open(registry_path_);
  ASSERT_TRUE(remote.ok());
  FetchingRuntime runtime(HalfRetained(), *std::move(remote));
  StatusOr<double> value = runtime.Read(Index{99, 99});
  EXPECT_EQ(value.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(runtime.stats().remote_fetches, 0);
}

TEST_F(RemoteFetchTest, ReplayReachesEffectiveRecallOne) {
  // Even a poorly debloated payload replays every supported run cleanly
  // when backed by a remote source — the paper's path to 100% recall.
  StatusOr<std::unique_ptr<KdfRemoteSource>> remote =
      KdfRemoteSource::Open(registry_path_);
  ASSERT_TRUE(remote.ok());
  FetchingRuntime runtime(HalfRetained(), *std::move(remote));
  EXPECT_TRUE(runtime.ReplayRun(*program_, {1.0, 1.0}).ok());
  EXPECT_TRUE(runtime.ReplayRun(*program_, {3.0, 7.0}).ok());
  EXPECT_EQ(runtime.stats().hard_misses, 0);
  EXPECT_GT(runtime.stats().remote_fetches, 0);
}

TEST_F(RemoteFetchTest, MissingRegistryFileFailsToOpen) {
  EXPECT_FALSE(KdfRemoteSource::Open(TempPath("nope.kdf")).ok());
}

// ---------------------------------------------------------- chunk subset --

TEST(ChunkSubsetTest, TouchedChunksAreSortedAndUnique) {
  ChunkedLayout layout(Shape{8, 8}, DType::kFloat64, {4, 4});
  IndexSet subset(layout.shape());
  subset.Insert(Index{0, 0});
  subset.Insert(Index{1, 1});  // Same chunk (0,0).
  subset.Insert(Index{7, 7});  // Chunk (1,1) = linear 3.
  const std::vector<int64_t> touched = TouchedChunks(subset, layout);
  ASSERT_EQ(touched.size(), 2u);
  EXPECT_EQ(touched[0], 0);
  EXPECT_EQ(touched[1], 3);
}

TEST(ChunkSubsetTest, AlignedSubsetExpandsToWholeChunks) {
  ChunkedLayout layout(Shape{8, 8}, DType::kFloat64, {4, 4});
  IndexSet subset(layout.shape());
  subset.Insert(Index{1, 1});
  ChunkSubsetStats stats;
  const IndexSet aligned = ChunkAlignedSubset(subset, layout, &stats);
  EXPECT_EQ(aligned.size(), 16u);  // Whole 4x4 chunk.
  EXPECT_TRUE(aligned.Contains(Index{0, 0}));
  EXPECT_TRUE(aligned.Contains(Index{3, 3}));
  EXPECT_FALSE(aligned.Contains(Index{4, 0}));
  EXPECT_EQ(stats.total_chunks, 4);
  EXPECT_EQ(stats.retained_chunks, 1);
  EXPECT_EQ(stats.subset_elements, 1);
  EXPECT_EQ(stats.chunk_aligned_elements, 16);
  EXPECT_DOUBLE_EQ(stats.ChunkBloatFraction(), 0.75);
}

TEST(ChunkSubsetTest, EdgeChunksClipToShape) {
  // 6x6 with 4x4 chunks: edge chunks are partial.
  ChunkedLayout layout(Shape{6, 6}, DType::kFloat64, {4, 4});
  IndexSet subset(layout.shape());
  subset.Insert(Index{5, 5});  // Corner chunk (1,1): only 2x2 in-bounds.
  const IndexSet aligned = ChunkAlignedSubset(subset, layout);
  EXPECT_EQ(aligned.size(), 4u);
  EXPECT_TRUE(aligned.Contains(Index{4, 4}));
  EXPECT_FALSE(aligned.Contains(Index{3, 4}));
}

TEST(ChunkSubsetTest, AlignedSubsetIsSuperset) {
  ChunkedLayout layout(Shape{32, 32}, DType::kFloat64, {5, 7});
  IndexSet subset(layout.shape());
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    subset.Insert(Index{rng.UniformInt(0, 31), rng.UniformInt(0, 31)});
  }
  const IndexSet aligned = ChunkAlignedSubset(subset, layout);
  EXPECT_TRUE(subset.IsSubsetOf(aligned));
}

TEST(ChunkSubsetTest, ThreeDimensionalChunks) {
  ChunkedLayout layout(Shape{8, 8, 8}, DType::kFloat64, {4, 4, 4});
  IndexSet subset(layout.shape());
  subset.Insert(Index{0, 0, 0});
  subset.Insert(Index{7, 7, 7});
  ChunkSubsetStats stats;
  const IndexSet aligned = ChunkAlignedSubset(subset, layout, &stats);
  EXPECT_EQ(stats.total_chunks, 8);
  EXPECT_EQ(stats.retained_chunks, 2);
  EXPECT_EQ(aligned.size(), 128u);
}

TEST(ChunkSubsetTest, PayloadBytesAccounting) {
  ChunkedLayout layout(Shape{8, 8}, DType::kFloat128, {4, 4});
  // 2 chunks * (16 elements * 16 bytes + 8-byte id).
  EXPECT_EQ(ChunkSubsetPayloadBytes(2, layout), 2 * (256 + 8));
}

TEST(ChunkSubsetTest, EmptySubsetKeepsNoChunks) {
  ChunkedLayout layout(Shape{8, 8}, DType::kFloat64, {4, 4});
  ChunkSubsetStats stats;
  const IndexSet aligned =
      ChunkAlignedSubset(IndexSet(layout.shape()), layout, &stats);
  EXPECT_TRUE(aligned.empty());
  EXPECT_EQ(stats.retained_chunks, 0);
  EXPECT_DOUBLE_EQ(stats.ChunkBloatFraction(), 1.0);
}

// ----------------------------------------------------------------- hybrid --

TEST(HybridTest, CombinedSubsetIsAtLeastKondo) {
  const std::unique_ptr<Program> program = CreateProgram("CS", 64);
  KondoConfig kondo_config;
  kondo_config.fuzz.max_iter = 400;
  kondo_config.rng_seed = 5;
  AflConfig afl_config;
  afl_config.max_execs = 1500;
  afl_config.max_seconds = 0.0;
  afl_config.exec_overhead_micros = 0;
  const HybridOutcome outcome =
      RunHybridKondoAfl(*program, kondo_config, afl_config);
  EXPECT_GE(outcome.combined_approx.size(), outcome.kondo.approx.size() / 2);
  const double kondo_recall =
      ComputeAccuracy(program->GroundTruth(), outcome.kondo.approx).recall;
  const double hybrid_recall =
      ComputeAccuracy(program->GroundTruth(), outcome.combined_approx).recall;
  EXPECT_GE(hybrid_recall, kondo_recall - 1e-9);
}

TEST(HybridTest, CountsNewAndRepairedOffsets) {
  const std::unique_ptr<Program> program = CreateProgram("CS", 64);
  KondoConfig kondo_config;
  kondo_config.fuzz.max_iter = 50;  // Deliberately weak Kondo campaign.
  kondo_config.rng_seed = 5;
  AflConfig afl_config;
  afl_config.max_execs = 2000;
  afl_config.max_seconds = 0.0;
  afl_config.exec_overhead_micros = 0;
  const HybridOutcome outcome =
      RunHybridKondoAfl(*program, kondo_config, afl_config);
  EXPECT_GT(outcome.afl_new_offsets, 0);
  EXPECT_GE(outcome.afl_new_offsets, outcome.repaired_offsets);
}

// ------------------------------------------------------------ event store --

Event MakeEvent(int64_t pid, EventType type, int64_t offset, int64_t size) {
  Event event;
  event.id = EventId{pid, 1};
  event.type = type;
  event.offset = offset;
  event.size = size;
  return event;
}

TEST(EventStoreTest, RoundTrip) {
  const std::string path = TempPath("events.kel");
  {
    StatusOr<EventStoreWriter> writer = EventStoreWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(MakeEvent(1, EventType::kOpen, 0, 0)).ok());
    ASSERT_TRUE(writer->Append(MakeEvent(1, EventType::kPread, 24, 16)).ok());
    ASSERT_TRUE(writer->Append(MakeEvent(2, EventType::kMmap, 100, 64)).ok());
    EXPECT_EQ(writer->events_written(), 3);
    ASSERT_TRUE(writer->Close().ok());
  }
  StatusOr<std::vector<Event>> events = ReadEventStore(path);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 3u);
  EXPECT_EQ((*events)[1].type, EventType::kPread);
  EXPECT_EQ((*events)[1].offset, 24);
  EXPECT_EQ((*events)[2].id.pid, 2);
  EXPECT_EQ((*events)[2].size, 64);
}

TEST(EventStoreTest, AppendAllFromLog) {
  EventLog log;
  log.Record(MakeEvent(1, EventType::kRead, 0, 110));
  log.Record(MakeEvent(2, EventType::kRead, 70, 30));
  const std::string path = TempPath("log.kel");
  {
    StatusOr<EventStoreWriter> writer = EventStoreWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->AppendAll(log).ok());
  }
  // Replay into a fresh log: derived state matches.
  EventLog replayed;
  ASSERT_TRUE(ReplayEventStore(path, &replayed).ok());
  EXPECT_EQ(replayed.NumEvents(), 2);
  EXPECT_EQ(replayed.AccessedRanges(1).ToString(),
            log.AccessedRanges(1).ToString());
}

TEST(EventStoreTest, AppendAfterCloseFails) {
  const std::string path = TempPath("closed.kel");
  StatusOr<EventStoreWriter> writer = EventStoreWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Close().ok());
  EXPECT_EQ(writer->Append(MakeEvent(1, EventType::kRead, 0, 1)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(EventStoreTest, ToleratesTornTrailingRecord) {
  const std::string path = TempPath("torn.kel");
  {
    StatusOr<EventStoreWriter> writer = EventStoreWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(MakeEvent(1, EventType::kRead, 0, 8)).ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  // Simulate a torn write: append half a record of garbage.
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const char garbage[13] = {};
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);

  StatusOr<std::vector<Event>> events = ReadEventStore(path);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->size(), 1u);
}

TEST(EventStoreTest, RejectsWrongMagic) {
  const std::string path = TempPath("bad.kel");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("JUNKJUNK", 1, 8, f);
  std::fclose(f);
  EXPECT_FALSE(ReadEventStore(path).ok());
}

TEST(EventStoreTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadEventStore(TempPath("absent.kel")).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace kondo
