#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "array/data_array.h"
#include "core/container_spec.h"
#include "core/debloat_test.h"
#include "core/kondo.h"
#include "core/metrics.h"
#include "core/runtime.h"
#include "workloads/registry.h"

namespace kondo {
namespace {

// --------------------------------------------------------------- Metrics --

IndexSet SetOf(const Shape& shape, std::initializer_list<Index> indices) {
  IndexSet set(shape);
  for (const Index& index : indices) {
    set.Insert(index);
  }
  return set;
}

TEST(MetricsTest, ExactValues) {
  const Shape shape{8, 8};
  const IndexSet truth =
      SetOf(shape, {Index{0, 0}, Index{0, 1}, Index{0, 2}, Index{0, 3}});
  const IndexSet approx =
      SetOf(shape, {Index{0, 0}, Index{0, 1}, Index{7, 7}});
  const AccuracyMetrics metrics = ComputeAccuracy(truth, approx);
  EXPECT_DOUBLE_EQ(metrics.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(metrics.recall, 0.5);
  EXPECT_EQ(metrics.intersection, 2);
  EXPECT_NEAR(metrics.f1, 2.0 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5), 1e-12);
}

TEST(MetricsTest, PerfectMatch) {
  const Shape shape{4, 4};
  const IndexSet set = SetOf(shape, {Index{1, 1}, Index{2, 2}});
  const AccuracyMetrics metrics = ComputeAccuracy(set, set);
  EXPECT_DOUBLE_EQ(metrics.precision, 1.0);
  EXPECT_DOUBLE_EQ(metrics.recall, 1.0);
  EXPECT_DOUBLE_EQ(metrics.f1, 1.0);
}

TEST(MetricsTest, EmptyApproxConventions) {
  const Shape shape{4, 4};
  const IndexSet truth = SetOf(shape, {Index{0, 0}});
  const AccuracyMetrics metrics = ComputeAccuracy(truth, IndexSet(shape));
  EXPECT_DOUBLE_EQ(metrics.precision, 1.0);  // Nothing wasteful included.
  EXPECT_DOUBLE_EQ(metrics.recall, 0.0);
}

TEST(MetricsTest, BloatFraction) {
  const Shape shape{4, 4};
  EXPECT_DOUBLE_EQ(BloatFraction(shape, IndexSet(shape)), 1.0);
  const IndexSet half = SetOf(
      shape, {Index{0, 0}, Index{0, 1}, Index{0, 2}, Index{0, 3},
              Index{1, 0}, Index{1, 1}, Index{1, 2}, Index{1, 3}});
  EXPECT_DOUBLE_EQ(BloatFraction(shape, half), 0.5);
}

TEST(MetricsTest, MissedValuationsExhaustive) {
  std::unique_ptr<Program> program = CreateProgram("CS", 16);
  const MissedAccessStats none =
      ComputeMissedValuations(*program, program->GroundTruth());
  EXPECT_TRUE(none.exhaustive);
  EXPECT_EQ(none.valuations_checked, 256);
  EXPECT_EQ(none.valuations_missed, 0);

  // Remove one ground-truth index: every run touching it now misses.
  IndexSet truncated(program->data_shape());
  program->GroundTruth().ForEach([&truncated](const Index& index) {
    if (!(index == Index{0, 0})) {
      truncated.Insert(index);
    }
  });
  const MissedAccessStats some =
      ComputeMissedValuations(*program, truncated);
  // (0,0) is read by every useful run (the walk starts there).
  EXPECT_GT(some.valuations_missed, 100);
}

TEST(MetricsTest, MissedValuationsSampledForHugeTheta) {
  std::unique_ptr<Program> program = CreateProgram("CS", 128);
  const MissedAccessStats stats = ComputeMissedValuations(
      *program, program->GroundTruth(), /*max_exhaustive=*/100,
      /*sample_size=*/500);
  EXPECT_FALSE(stats.exhaustive);
  EXPECT_EQ(stats.valuations_checked, 500);
  EXPECT_EQ(stats.valuations_missed, 0);
}

// --------------------------------------------------------- ContainerSpec --

constexpr char kSpecText[] = R"(
# Kondo container specification (Fig. 2a)
FROM ubuntu:20.04
RUN apt-get install -y gcc
RUN mkdir /stencil
ADD ./mnist.kdf /stencil/mnist.kdf
ADD Stencil.c /stencil/crossStencil.c
PARAM [0-30, 300.00-1200.00, 0-50]
ENTRYPOINT ["/stencil/CS"]
CMD [30, 550.0, 10, /stencil/mnist.kdf]
)";

TEST(ContainerSpecTest, ParsesFigureTwoExample) {
  StatusOr<ContainerSpec> spec = ParseContainerSpec(kSpecText);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->base_image, "ubuntu:20.04");
  EXPECT_EQ(spec->run_steps.size(), 2u);
  EXPECT_EQ(spec->adds.size(), 2u);
  EXPECT_EQ(spec->entrypoint, "/stencil/CS");
  ASSERT_EQ(spec->cmd_args.size(), 4u);
  EXPECT_EQ(spec->cmd_args[0], "30");

  ASSERT_EQ(spec->params.num_params(), 3);
  EXPECT_TRUE(spec->params.range(0).integer);
  EXPECT_DOUBLE_EQ(spec->params.range(0).hi, 30.0);
  EXPECT_FALSE(spec->params.range(1).integer);  // Decimal points present.
  EXPECT_DOUBLE_EQ(spec->params.range(1).lo, 300.0);
  EXPECT_DOUBLE_EQ(spec->params.range(2).hi, 50.0);
}

TEST(ContainerSpecTest, DataDependenciesExcludeCode) {
  StatusOr<ContainerSpec> spec = ParseContainerSpec(kSpecText);
  ASSERT_TRUE(spec.ok());
  const std::vector<std::string> deps = spec->DataDependencies();
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0], "/stencil/mnist.kdf");
}

TEST(ContainerSpecTest, MissingFromFails) {
  EXPECT_FALSE(ParseContainerSpec("RUN echo hi\n").ok());
}

TEST(ContainerSpecTest, UnknownInstructionFails) {
  EXPECT_FALSE(ParseContainerSpec("FROM x\nVOLUME /data\n").ok());
}

TEST(ContainerSpecTest, MalformedParamFails) {
  EXPECT_FALSE(ParseContainerSpec("FROM x\nPARAM [abc]\n").ok());
  EXPECT_FALSE(ParseContainerSpec("FROM x\nPARAM 0-30\n").ok());
  EXPECT_FALSE(ParseContainerSpec("FROM x\nPARAM [30-0]\n").ok());
}

TEST(ContainerSpecTest, MalformedAddFails) {
  EXPECT_FALSE(ParseContainerSpec("FROM x\nADD onlyone\n").ok());
}

TEST(ContainerSpecTest, DefaultParamsFromCmdSkipPaths) {
  const ParamSpace space = DefaultParamSpaceFromCmd(
      {"30", "550.0", "10", "/stencil/mnist.kdf"});
  ASSERT_EQ(space.num_params(), 3);
  EXPECT_TRUE(space.range(0).integer);
  EXPECT_DOUBLE_EQ(space.range(0).lo, 0.0);
  EXPECT_DOUBLE_EQ(space.range(0).hi, 120.0);  // 4 * 30.
  EXPECT_FALSE(space.range(1).integer);        // "550.0" has a point.
  EXPECT_DOUBLE_EQ(space.range(1).hi, 2200.0);
  EXPECT_DOUBLE_EQ(space.range(2).hi, 40.0);
}

TEST(ContainerSpecTest, DefaultParamsHaveMinimumWidth) {
  const ParamSpace space = DefaultParamSpaceFromCmd({"1", "0"});
  ASSERT_EQ(space.num_params(), 2);
  EXPECT_DOUBLE_EQ(space.range(0).hi, 16.0);
  EXPECT_DOUBLE_EQ(space.range(1).hi, 16.0);
}

TEST(ContainerSpecTest, EffectiveParamsPrefersExplicitParam) {
  StatusOr<ContainerSpec> spec = ParseContainerSpec(kSpecText);
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->HasExplicitParams());
  EXPECT_EQ(spec->EffectiveParams().num_params(), 3);
  EXPECT_DOUBLE_EQ(spec->EffectiveParams().range(0).hi, 30.0);
}

TEST(ContainerSpecTest, EffectiveParamsFallsBackToCmdDefaults) {
  StatusOr<ContainerSpec> spec = ParseContainerSpec(
      "FROM x\nENTRYPOINT [\"/a\"]\nCMD [5, 7, /data.kdf]\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec->HasExplicitParams());
  const ParamSpace space = spec->EffectiveParams();
  ASSERT_EQ(space.num_params(), 2);
  EXPECT_DOUBLE_EQ(space.range(0).hi, 20.0);
  EXPECT_DOUBLE_EQ(space.range(1).hi, 28.0);
}

TEST(ContainerSpecTest, CommentsAndBlankLinesIgnored) {
  StatusOr<ContainerSpec> spec =
      ParseContainerSpec("FROM x\n\n# comment\n  \nRUN step\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->run_steps.size(), 1u);
}

// ----------------------------------------------------------- DebloatTest --

TEST(DebloatTestTest, FastTestMatchesAccessSet) {
  std::unique_ptr<Program> program = CreateProgram("CS", 32);
  const DebloatTestFn test = MakeDebloatTest(*program);
  const ParamValue v{2.0, 5.0};
  const IndexSet via_test = test(v);
  const IndexSet direct = program->AccessSet(v);
  EXPECT_EQ(via_test.size(), direct.size());
  EXPECT_TRUE(direct.IsSubsetOf(via_test));
}

// -------------------------------------------------------------- Pipeline --

TEST(KondoPipelineTest, HighAccuracyOnCs) {
  std::unique_ptr<Program> program = CreateProgram("CS");
  KondoPipeline pipeline{KondoConfig{}};
  const KondoResult result = pipeline.Run(*program);
  const AccuracyMetrics metrics =
      ComputeAccuracy(program->GroundTruth(), result.approx);
  EXPECT_GT(metrics.recall, 0.95);
  EXPECT_GT(metrics.precision, 0.9);
  EXPECT_GT(result.fuzz.stats.evaluations, 100);
  EXPECT_GE(result.carve_stats.final_hulls, 1);
}

TEST(KondoPipelineTest, PerfectSeparationOnLdc) {
  std::unique_ptr<Program> program = CreateProgram("LDC");
  KondoPipeline pipeline{KondoConfig{}};
  const KondoResult result = pipeline.Run(*program);
  const AccuracyMetrics metrics =
      ComputeAccuracy(program->GroundTruth(), result.approx);
  // The paper reports precision 1 for LDC "across all runs" (§V-D2): the
  // two block regions are clearly separated, so no hull ever bridges the
  // gap between them (conjunctive CLOSE may keep several hulls per block,
  // which costs nothing).
  EXPECT_DOUBLE_EQ(metrics.precision, 1.0);
  EXPECT_GE(result.carve_stats.final_hulls, 2);
}

TEST(KondoPipelineTest, DeterministicUnderSeed) {
  std::unique_ptr<Program> program = CreateProgram("CS", 64);
  KondoConfig config;
  config.rng_seed = 99;
  const KondoResult a = KondoPipeline(config).Run(*program);
  const KondoResult b = KondoPipeline(config).Run(*program);
  EXPECT_EQ(a.approx.size(), b.approx.size());
  EXPECT_EQ(a.carve_stats.final_hulls, b.carve_stats.final_hulls);
}

TEST(KondoPipelineTest, AuditedTestProducesSameSubset) {
  std::unique_ptr<Program> program = CreateProgram("CS", 32);
  DataArray array(program->data_shape(), DType::kFloat64);
  const std::string path = ::testing::TempDir() + "/pipe32.kdf";
  ASSERT_TRUE(WriteKdfFile(path, array).ok());

  KondoConfig config;
  config.fuzz.max_iter = 300;
  config.rng_seed = 4;
  KondoPipeline pipeline(config);
  const KondoResult fast = pipeline.Run(*program);
  const KondoResult audited = pipeline.RunWithTest(
      MakeAuditedDebloatTest(*program, path), program->param_space(),
      program->data_shape());
  // Identical RNG seed => identical campaign => identical subset.
  EXPECT_EQ(audited.approx.size(), fast.approx.size());
  EXPECT_EQ(audited.fuzz.discovered.size(), fast.fuzz.discovered.size());
}

// --------------------------------------------------------------- Runtime --

TEST(RuntimeTest, ServesRetainedReadsAndRaisesDataMissing) {
  const Shape shape{8, 8};
  DataArray array(shape, DType::kFloat64);
  array.FillWith([&shape](const Index& index) {
    return static_cast<double>(shape.Linearize(index));
  });
  IndexSet retained(shape);
  retained.Insert(Index{1, 1});
  DebloatRuntime runtime(PackageDebloated(array, retained));

  StatusOr<double> hit = runtime.Read(Index{1, 1});
  ASSERT_TRUE(hit.ok());
  EXPECT_DOUBLE_EQ(*hit, 9.0);
  StatusOr<double> miss = runtime.Read(Index{2, 2});
  EXPECT_EQ(miss.status().code(), StatusCode::kDataMissing);
  EXPECT_EQ(runtime.stats().reads, 2);
  EXPECT_EQ(runtime.stats().hits, 1);
  EXPECT_EQ(runtime.stats().misses, 1);
  ASSERT_EQ(runtime.missing_log().size(), 1u);
  EXPECT_EQ(runtime.missing_log()[0], (Index{2, 2}));
}

TEST(RuntimeTest, ReplaySupportedRunSucceeds) {
  std::unique_ptr<Program> program = CreateProgram("CS", 32);
  DataArray array(program->data_shape(), DType::kFloat64);
  array.FillPattern(8);
  // Retain the full ground truth: every supported run must replay cleanly.
  DebloatRuntime runtime(
      PackageDebloated(array, program->GroundTruth()));
  EXPECT_TRUE(runtime.ReplayRun(*program, {1.0, 3.0}).ok());
  EXPECT_TRUE(runtime.ReplayRun(*program, {0.0, 1.0}).ok());
  EXPECT_EQ(runtime.stats().misses, 0);
}

TEST(RuntimeTest, ReplayOutsideSubsetRaisesAndLogs) {
  std::unique_ptr<Program> program = CreateProgram("CS", 32);
  DataArray array(program->data_shape(), DType::kFloat64);
  // Retain nothing: every access misses.
  DebloatRuntime runtime(
      PackageDebloated(array, IndexSet(program->data_shape())));
  const Status status = runtime.ReplayRun(*program, {1.0, 1.0});
  EXPECT_EQ(status.code(), StatusCode::kDataMissing);
  EXPECT_GT(runtime.stats().misses, 0);
  EXPECT_EQ(runtime.missing_log().size(),
            static_cast<size_t>(runtime.stats().misses));
}

TEST(RuntimeTest, ResetStatsClears) {
  DataArray array(Shape{4, 4}, DType::kFloat64);
  DebloatRuntime runtime(PackageDebloated(array, IndexSet(array.shape())));
  (void)runtime.Read(Index{0, 0});
  runtime.ResetStats();
  EXPECT_EQ(runtime.stats().reads, 0);
  EXPECT_TRUE(runtime.missing_log().empty());
}

}  // namespace
}  // namespace kondo
