// Tests for the kondo-lint static-analysis subsystem (src/lint/).
//
// Three layers:
//   1. Unit tests over the lexer, directive parser, and include graph.
//   2. Rule tests on inline sources via CheckR1..CheckR4 directly.
//   3. End-to-end tests over tests/lint_fixtures/ — a miniature repo tree
//      whose src/{fuzz,exec,shard,carve,provenance,serve,pack} mirror the
//      real
//      determinism-critical modules, with one seeded violation per rule
//      and a clean counterpart next to each. These assert exact rule ids,
//      file:line anchors, suppression counts, and LintMain exit codes.
//
// The fixture directory is compiled in as KONDO_LINT_FIXTURES; the built
// binary path as KONDO_LINT_BINARY (for process-level exit-code checks).

#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/include_graph.h"
#include "lint/lexer.h"
#include "lint/linter.h"
#include "lint/rules.h"
#include "lint/token.h"

namespace kondo {
namespace lint {
namespace {

// ---------------------------------------------------------------------------
// Helpers.

std::vector<std::string> IdentTexts(const LexedFile& lexed) {
  std::vector<std::string> out;
  for (const Token& tok : lexed.tokens) {
    if (tok.kind == TokenKind::kIdentifier) {
      out.push_back(tok.text);
    }
  }
  return out;
}

bool HasIdent(const LexedFile& lexed, const std::string& name) {
  for (const Token& tok : lexed.tokens) {
    if (tok.kind == TokenKind::kIdentifier && tok.text == name) {
      return true;
    }
  }
  return false;
}

/// Runs one rule over an inline source snippet.
std::vector<Finding> RunRule(
    void (*check)(const FileContext&, std::vector<Finding>*),
    const std::string& source, bool critical) {
  const LexedFile lexed = Lex(source);
  const std::set<std::string> names = CollectUnorderedDeclNames(lexed);
  FileContext ctx;
  ctx.path = "snippet.cc";
  ctx.lexed = &lexed;
  ctx.critical = critical;
  ctx.unordered_names = &names;
  std::vector<Finding> findings;
  check(ctx, &findings);
  return findings;
}

/// Lints `paths` inside the fixture tree and fails the test on lint-runner
/// errors (not on findings — those are the assertions' subject).
LintReport LintFixture(const std::vector<std::string>& paths) {
  LintOptions options;
  options.root = KONDO_LINT_FIXTURES;
  options.paths = paths;
  const StatusOr<LintReport> report = RunLint(options);
  EXPECT_TRUE(report.ok()) << report.status();
  return report.ok() ? *report : LintReport{};
}

/// (rule, line) pairs for every finding in `report`, in report order.
std::vector<std::pair<std::string, int>> RuleLines(const LintReport& report) {
  std::vector<std::pair<std::string, int>> out;
  for (const Finding& finding : report.findings) {
    out.emplace_back(finding.rule, finding.line);
  }
  return out;
}

// ---------------------------------------------------------------------------
// 1. Lexer.

TEST(LintLexerTest, CombinesScopeAndArrowPuncts) {
  const LexedFile lexed = Lex("a->b::c");
  ASSERT_EQ(lexed.tokens.size(), 5u);
  EXPECT_EQ(lexed.tokens[1].text, "->");
  EXPECT_EQ(lexed.tokens[3].text, "::");
  EXPECT_EQ(lexed.tokens[1].kind, TokenKind::kPunct);
}

TEST(LintLexerTest, CommentsAndStringsNeverLeakIdentifiers) {
  const LexedFile lexed = Lex(
      "int x = 0;  // rand() lives here\n"
      "/* std::random_device too */\n"
      "const char* s = \"rand() and \\\"random_device\\\"\";\n"
      "char c = 'r';\n");
  EXPECT_FALSE(HasIdent(lexed, "rand"));
  EXPECT_FALSE(HasIdent(lexed, "random_device"));
  EXPECT_TRUE(HasIdent(lexed, "x"));
  EXPECT_TRUE(HasIdent(lexed, "s"));
}

TEST(LintLexerTest, RawStringLiteralIsOneStringToken) {
  const LexedFile lexed = Lex("auto s = R\"(call rand() \"anywhere\")\";");
  EXPECT_FALSE(HasIdent(lexed, "rand"));
  bool saw_string = false;
  for (const Token& tok : lexed.tokens) {
    if (tok.kind == TokenKind::kString) {
      saw_string = true;
      EXPECT_NE(tok.text.find("rand()"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_string);
}

TEST(LintLexerTest, TracksLineNumbers) {
  const LexedFile lexed = Lex("one\n\ntwo\nthree");
  const std::vector<std::string> idents = IdentTexts(lexed);
  ASSERT_EQ(idents.size(), 3u);
  EXPECT_EQ(lexed.tokens[0].line, 1);
  EXPECT_EQ(lexed.tokens[1].line, 3);
  EXPECT_EQ(lexed.tokens[2].line, 4);
}

// ---------------------------------------------------------------------------
// 1b. Suppression directives.

TEST(LintDirectiveTest, EndOfLineDirectiveCoversItsOwnLine) {
  const LexedFile lexed = Lex("int a = rand();  // kondo-lint: allow(R1) x\n");
  ASSERT_EQ(lexed.suppressions.count(1), 1u);
  EXPECT_EQ(lexed.suppressions.at(1).count("R1"), 1u);
  EXPECT_EQ(lexed.suppressions.count(2), 0u);
}

TEST(LintDirectiveTest, StandaloneDirectiveCoversTheNextLine) {
  const LexedFile lexed = Lex(
      "// kondo-lint: allow(R2, R3) reason\n"
      "for (const auto& e : m) {}\n");
  ASSERT_EQ(lexed.suppressions.count(2), 1u);
  EXPECT_EQ(lexed.suppressions.at(2).count("R2"), 1u);
  EXPECT_EQ(lexed.suppressions.at(2).count("R3"), 1u);
  EXPECT_EQ(lexed.suppressions.at(2).count("R1"), 0u);
}

TEST(LintDirectiveTest, ProseMentionOfTheSyntaxIsNotADirective) {
  const LexedFile lexed =
      Lex("// justify with `kondo-lint: allow(R2) reason` when needed\n");
  EXPECT_TRUE(lexed.suppressions.empty());
  EXPECT_TRUE(lexed.malformed_directives.empty());
}

TEST(LintDirectiveTest, MalformedDirectiveIsReportedNotHonoured) {
  const LexedFile lexed = Lex("// kondo-lint: allow() oops\n");
  EXPECT_TRUE(lexed.suppressions.empty());
  ASSERT_EQ(lexed.malformed_directives.size(), 1u);
  EXPECT_EQ(lexed.malformed_directives[0].first, 1);
}

// ---------------------------------------------------------------------------
// 1c. Include graph.

TEST(LintIncludeGraphTest, ExtractsQuotedIncludeTargets) {
  const LexedFile lexed = Lex(
      "#include \"array/index_set.h\"\n"
      "#include <vector>\n");
  const std::vector<std::string> targets = ExtractIncludeTargets(lexed);
  ASSERT_FALSE(targets.empty());
  EXPECT_EQ(targets[0], "array/index_set.h");
}

TEST(LintIncludeGraphTest, CriticalClosureFollowsIncludes) {
  std::map<std::string, LexedFile> files;
  files["src/fuzz/driver.cc"] = Lex("#include \"array/shared.h\"\n");
  files["src/array/shared.h"] = Lex("int x;\n");
  files["src/other/outside.cc"] = Lex("int y;\n");
  const IncludeGraph graph = IncludeGraph::Build(files);
  const std::set<std::string> critical = graph.CriticalClosure({"src/fuzz/"});
  EXPECT_EQ(critical.count("src/fuzz/driver.cc"), 1u);
  EXPECT_EQ(critical.count("src/array/shared.h"), 1u)
      << "headers included by critical modules must join the closure";
  EXPECT_EQ(critical.count("src/other/outside.cc"), 0u);
}

// ---------------------------------------------------------------------------
// 2. Rules on inline snippets.

TEST(LintRuleR1Test, FlagsBannedApisOnlyInCriticalFiles) {
  const std::string source = "int seed() { return rand(); }";
  EXPECT_EQ(RunRule(CheckR1, source, /*critical=*/true).size(), 1u);
  EXPECT_TRUE(RunRule(CheckR1, source, /*critical=*/false).empty());
}

TEST(LintRuleR1Test, MemberNamedLikeBannedApiIsNotFlagged) {
  EXPECT_TRUE(RunRule(CheckR1, "int x = obj.rand();", true).empty());
  EXPECT_TRUE(RunRule(CheckR1, "int y = mylib::rand();", true).empty());
  EXPECT_EQ(RunRule(CheckR1, "auto d = std::random_device{};", true).size(),
            1u);
}

TEST(LintRuleR1Test, TimeIsOnlyBannedAsWallClockRead) {
  EXPECT_EQ(RunRule(CheckR1, "long t = time(nullptr);", true).size(), 1u);
  // `time` as a plain identifier (a variable, a field) is fine.
  EXPECT_TRUE(RunRule(CheckR1, "double time = 0.5; Use(time);", true).empty());
}

TEST(LintRuleR2Test, PointerKeyedUnorderedFlaggedEvenOutsideCriticalCode) {
  const std::string source = "std::unordered_set<Node*> live;";
  ASSERT_EQ(RunRule(CheckR2, source, /*critical=*/false).size(), 1u);
  EXPECT_EQ(RunRule(CheckR2, source, false)[0].rule, "R2");
}

TEST(LintRuleR2Test, RangeForOverUnorderedOnlyFlaggedWhenCritical) {
  const std::string source =
      "std::unordered_map<std::string, int> counts;\n"
      "void f() { for (const auto& e : counts) { Use(e); } }\n";
  ASSERT_EQ(RunRule(CheckR2, source, /*critical=*/true).size(), 1u);
  EXPECT_EQ(RunRule(CheckR2, source, true)[0].line, 2);
  EXPECT_TRUE(RunRule(CheckR2, source, /*critical=*/false).empty());
}

TEST(LintRuleR2Test, SortedMaterialisationIsClean) {
  const std::string source =
      "std::map<std::string, int> counts;\n"
      "void f() { for (const auto& e : counts) { Use(e); } }\n";
  EXPECT_TRUE(RunRule(CheckR2, source, /*critical=*/true).empty());
}

TEST(LintRuleR3Test, FlagsEachSuppressionShapeOnce) {
  EXPECT_EQ(RunRule(CheckR3, "void f() { (void)writer.Close(); }", true).size(),
            1u)
      << "(void) cast must report exactly once, not once per arm";
  EXPECT_EQ(
      RunRule(CheckR3, "void f() { static_cast<void>(sink->Flush()); }", true)
          .size(),
      1u);
  EXPECT_EQ(
      RunRule(CheckR3, "void f() { std::ignore = writer.Append(e); }", true)
          .size(),
      1u);
  EXPECT_EQ(RunRule(CheckR3, "void f() { event_writer_->Append(e); }", true)
                .size(),
            1u);
}

TEST(LintRuleR3Test, HandledStatusesAreClean) {
  EXPECT_TRUE(RunRule(CheckR3,
                      "Status f() {\n"
                      "  Status s = writer.Append(e);\n"
                      "  if (!s.ok()) return s;\n"
                      "  return writer.Close();\n"
                      "}\n",
                      true)
                  .empty());
}

TEST(LintRuleR4Test, UnannotatedMutexMemberIsFlagged) {
  const std::vector<Finding> findings = RunRule(
      CheckR4,
      "class Q {\n"
      " public:\n"
      "  void Push(int v);\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  std::vector<int> items_;\n"
      "};\n",
      true);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R4");
  EXPECT_EQ(findings[0].line, 5);
  EXPECT_NE(findings[0].message.find("'Q'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("'mu_'"), std::string::npos);
}

TEST(LintRuleR4Test, AnyKondoAnnotationInTheClassSatisfiesTheRule) {
  EXPECT_TRUE(RunRule(CheckR4,
                      "class Q {\n"
                      "  Mutex mu_;\n"
                      "  int n_ KONDO_GUARDED_BY(mu_) = 0;\n"
                      "};\n",
                      true)
                  .empty());
}

TEST(LintRuleR4Test, EnumClassAndForwardDeclarationsAreNotClasses) {
  EXPECT_TRUE(RunRule(CheckR4,
                      "enum class Mode { kA, kB };\n"
                      "class Fwd;\n"
                      "std::mutex global_mu;\n",
                      true)
                  .empty());
}

// ---------------------------------------------------------------------------
// 3. Fixture tree, per file: exact rule ids and line anchors.

TEST(LintFixtureTest, R1BadAnchorsEveryViolation) {
  const LintReport report = LintFixture({"src/fuzz/r1_bad.cc"});
  EXPECT_EQ(RuleLines(report),
            (std::vector<std::pair<std::string, int>>{
                {"R1", 9}, {"R1", 14}, {"R1", 18}}));
  for (const Finding& finding : report.findings) {
    EXPECT_EQ(finding.file, "src/fuzz/r1_bad.cc");
  }
}

TEST(LintFixtureTest, R1CleanCounterpartIsClean) {
  EXPECT_TRUE(LintFixture({"src/fuzz/r1_clean.cc"}).findings.empty());
}

TEST(LintFixtureTest, ServeModuleIsInTheCriticalClosure) {
  // The daemon code joined critical_modules with the serve subsystem; a
  // seeded wall-clock read and a getpid() in the serve mirror must anchor
  // as R1, proving the closure covers src/serve/.
  const LintReport report = LintFixture({"src/serve/r1_bad.cc"});
  EXPECT_EQ(RuleLines(report), (std::vector<std::pair<std::string, int>>{
                                   {"R1", 10}, {"R1", 14}}));
  for (const Finding& finding : report.findings) {
    EXPECT_EQ(finding.file, "src/serve/r1_bad.cc");
  }
}

TEST(LintFixtureTest, ServeCleanCounterpartIsClean) {
  // steady_clock and a daemon-minted session counter are the allowed
  // spellings of what r1_bad.cc does wrong.
  EXPECT_TRUE(LintFixture({"src/serve/r1_clean.cc"}).findings.empty());
}

TEST(LintFixtureTest, R2BadAnchorsPointerKeyAndIteration) {
  const LintReport report = LintFixture({"src/exec/r2_bad.cc"});
  EXPECT_EQ(RuleLines(report), (std::vector<std::pair<std::string, int>>{
                                   {"R2", 14}, {"R2", 19}}));
}

TEST(LintFixtureTest, R2CleanCounterpartIsClean) {
  EXPECT_TRUE(LintFixture({"src/exec/r2_clean.cc"}).findings.empty());
}

TEST(LintFixtureTest, FleetModuleIsInTheCriticalClosure) {
  // The distributed-fleet code joined critical_modules: a pointer-keyed
  // session set and dispatch-order iteration over an unordered shard map
  // in the fleet mirror must anchor as R2, proving the closure covers
  // src/fleet/.
  const LintReport report = LintFixture({"src/fleet/r2_bad.cc"});
  EXPECT_EQ(RuleLines(report), (std::vector<std::pair<std::string, int>>{
                                   {"R2", 15}, {"R2", 21}}));
  for (const Finding& finding : report.findings) {
    EXPECT_EQ(finding.file, "src/fleet/r2_bad.cc");
  }
}

TEST(LintFixtureTest, FleetCleanCounterpartIsClean) {
  // An id-ordered session map and a sorted dispatch order are the allowed
  // spellings of what r2_bad.cc does wrong.
  EXPECT_TRUE(LintFixture({"src/fleet/r2_clean.cc"}).findings.empty());
}

TEST(LintFixtureTest, R3BadAnchorsAllThreeDiscardShapes) {
  const LintReport report = LintFixture({"src/provenance/r3_bad.cc"});
  EXPECT_EQ(RuleLines(report),
            (std::vector<std::pair<std::string, int>>{
                {"R3", 15}, {"R3", 16}, {"R3", 17}}));
}

TEST(LintFixtureTest, R3CleanCounterpartIsClean) {
  EXPECT_TRUE(LintFixture({"src/provenance/r3_clean.cc"}).findings.empty());
}

TEST(LintFixtureTest, PackModuleIsInTheCriticalClosure) {
  // The KDP packaging code joined critical_modules; a bare chunk append and
  // a (void)-cast flush in the pack mirror must anchor as R3, proving the
  // closure covers src/pack/.
  const LintReport report = LintFixture({"src/pack/r3_bad.cc"});
  EXPECT_EQ(RuleLines(report), (std::vector<std::pair<std::string, int>>{
                                   {"R3", 14}, {"R3", 15}}));
  for (const Finding& finding : report.findings) {
    EXPECT_EQ(finding.file, "src/pack/r3_bad.cc");
  }
}

TEST(LintFixtureTest, PackCleanCounterpartIsClean) {
  // Propagating every writer Status is the allowed spelling of what
  // r3_bad.cc does wrong.
  EXPECT_TRUE(LintFixture({"src/pack/r3_clean.cc"}).findings.empty());
}

TEST(LintFixtureTest, R4BadAnchorsEachUnannotatedMutexMember) {
  const LintReport report = LintFixture({"src/shard/r4_bad.cc"});
  EXPECT_EQ(RuleLines(report), (std::vector<std::pair<std::string, int>>{
                                   {"R4", 16}, {"R4", 17}}));
}

TEST(LintFixtureTest, R4CleanCounterpartIsClean) {
  EXPECT_TRUE(LintFixture({"src/shard/r4_clean.cc"}).findings.empty());
}

TEST(LintFixtureTest, WellFormedDirectivesSuppressAndAreCounted) {
  const LintReport report = LintFixture({"src/carve/suppressed.cc"});
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.suppressed, 2);
}

TEST(LintFixtureTest, MalformedDirectiveSurfacesAsLintRule) {
  const LintReport report = LintFixture({"src/carve/malformed.cc"});
  EXPECT_EQ(RuleLines(report),
            (std::vector<std::pair<std::string, int>>{{"LINT", 5}}));
}

TEST(LintFixtureTest, NoncriticalModuleEscapesR1AndR2Iteration) {
  EXPECT_TRUE(LintFixture({"src/util/noncritical_ok.cc"}).findings.empty());
}

TEST(LintFixtureTest, WholeTreeTotalsAreExact) {
  const LintReport report = LintFixture({"src"});
  EXPECT_EQ(report.files_scanned, 17);
  EXPECT_EQ(report.suppressed, 2);
  std::map<std::string, int> by_rule;
  for (const Finding& finding : report.findings) {
    ++by_rule[finding.rule];
  }
  EXPECT_EQ(by_rule["R1"], 5);
  EXPECT_EQ(by_rule["R2"], 4);
  EXPECT_EQ(by_rule["R3"], 5);
  EXPECT_EQ(by_rule["R4"], 2);
  EXPECT_EQ(by_rule["LINT"], 1);
  EXPECT_EQ(report.findings.size(), 17u);
}

// ---------------------------------------------------------------------------
// 3b. LintMain: flags, report format, exit codes.

TEST(LintMainTest, ExitsOneAndPrintsAnchorsOnFindings) {
  std::ostringstream out;
  std::ostringstream err;
  const int code =
      LintMain({"--root", KONDO_LINT_FIXTURES, "src"}, out, err);
  EXPECT_EQ(code, 1);
  const std::string text = out.str();
  EXPECT_NE(text.find("src/fuzz/r1_bad.cc:9: [R1]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("src/exec/r2_bad.cc:14: [R2]"), std::string::npos);
  EXPECT_NE(text.find("src/provenance/r3_bad.cc:16: [R3]"),
            std::string::npos);
  EXPECT_NE(text.find("src/shard/r4_bad.cc:16: [R4]"), std::string::npos);
  EXPECT_NE(text.find("src/serve/r1_bad.cc:14: [R1]"), std::string::npos);
  EXPECT_NE(text.find("src/pack/r3_bad.cc:14: [R3]"), std::string::npos);
  EXPECT_NE(text.find("src/fleet/r2_bad.cc:15: [R2]"), std::string::npos);
  EXPECT_NE(text.find("src/carve/malformed.cc:5: [LINT]"),
            std::string::npos);
  EXPECT_NE(text.find("17 finding(s) across 17 file(s) (2 suppressed)"),
            std::string::npos);
}

TEST(LintMainTest, ExitsZeroOnCleanInput) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = LintMain(
      {"--root", KONDO_LINT_FIXTURES, "src/fuzz/r1_clean.cc"}, out, err);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.str().find("0 finding(s)"), std::string::npos);
}

TEST(LintMainTest, RulesFlagRestrictsToTheListedRules) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = LintMain(
      {"--root", KONDO_LINT_FIXTURES, "--rules", "R1", "src"}, out, err);
  EXPECT_EQ(code, 1);
  const std::string text = out.str();
  EXPECT_NE(text.find("[R1]"), std::string::npos);
  EXPECT_EQ(text.find("[R2]"), std::string::npos);
  EXPECT_EQ(text.find("[R3]"), std::string::npos);
  EXPECT_EQ(text.find("[R4]"), std::string::npos);
  // Malformed directives stay fatal under any rule filter: a typo must
  // never silently disable linting.
  EXPECT_NE(text.find("[LINT]"), std::string::npos);
}

TEST(LintMainTest, ExitsTwoOnUnknownFlagOrBadPath) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(LintMain({"--bogus"}, out, err), 2);
  EXPECT_NE(err.str().find("unknown flag"), std::string::npos);
  std::ostringstream out2;
  std::ostringstream err2;
  EXPECT_EQ(LintMain({"--root", KONDO_LINT_FIXTURES, "no/such/dir"}, out2,
                     err2),
            2);
}

TEST(LintMainTest, HelpExitsZero) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(LintMain({"--help"}, out, err), 0);
  EXPECT_NE(out.str().find("exit codes"), std::string::npos);
}

// ---------------------------------------------------------------------------
// 3c. The shipped binary: process-level exit codes match LintMain's.

TEST(LintBinaryTest, ProcessExitCodesMatchContract) {
  const std::string binary = KONDO_LINT_BINARY;
  const std::string fixtures = KONDO_LINT_FIXTURES;
  const int findings_code = std::system(
      (binary + " --root " + fixtures + " src > /dev/null 2>&1").c_str());
  ASSERT_NE(findings_code, -1);
  EXPECT_EQ(WEXITSTATUS(findings_code), 1);
  const int clean_code = std::system(
      (binary + " --root " + fixtures +
       " src/exec/r2_clean.cc > /dev/null 2>&1")
          .c_str());
  EXPECT_EQ(WEXITSTATUS(clean_code), 0);
  const int usage_code =
      std::system((binary + " --definitely-not-a-flag > /dev/null 2>&1")
                      .c_str());
  EXPECT_EQ(WEXITSTATUS(usage_code), 2);
}

}  // namespace
}  // namespace lint
}  // namespace kondo
