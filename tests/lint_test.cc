// Tests for the kondo-lint static-analysis subsystem (src/lint/).
//
// Three layers:
//   1. Unit tests over the lexer, directive parser, include graph, and the
//      flow engine (function segmentation, lock tracing, taint walking).
//   2. Rule tests on inline sources via CheckR1..CheckR6 and the global
//      LockOrderCollector directly.
//   3. End-to-end tests over tests/lint_fixtures/ — a miniature repo tree
//      whose src/{fuzz,exec,shard,carve,provenance,serve,pack} mirror the
//      real
//      determinism-critical modules, with one seeded violation per rule
//      and a clean counterpart next to each. These assert exact rule ids,
//      file:line anchors, suppression counts, and LintMain exit codes.
//
// The fixture directory is compiled in as KONDO_LINT_FIXTURES; the built
// binary path as KONDO_LINT_BINARY (for process-level exit-code checks).

#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/flow.h"
#include "lint/include_graph.h"
#include "lint/lexer.h"
#include "lint/linter.h"
#include "lint/rules.h"
#include "lint/token.h"

namespace kondo {
namespace lint {
namespace {

// ---------------------------------------------------------------------------
// Helpers.

std::vector<std::string> IdentTexts(const LexedFile& lexed) {
  std::vector<std::string> out;
  for (const Token& tok : lexed.tokens) {
    if (tok.kind == TokenKind::kIdentifier) {
      out.push_back(tok.text);
    }
  }
  return out;
}

bool HasIdent(const LexedFile& lexed, const std::string& name) {
  for (const Token& tok : lexed.tokens) {
    if (tok.kind == TokenKind::kIdentifier && tok.text == name) {
      return true;
    }
  }
  return false;
}

/// Runs one rule over an inline source snippet.
std::vector<Finding> RunRule(
    void (*check)(const FileContext&, std::vector<Finding>*),
    const std::string& source, bool critical) {
  const LexedFile lexed = Lex(source);
  const std::set<std::string> names = CollectUnorderedDeclNames(lexed);
  FileContext ctx;
  ctx.path = "snippet.cc";
  ctx.lexed = &lexed;
  ctx.critical = critical;
  ctx.unordered_names = &names;
  std::vector<Finding> findings;
  check(ctx, &findings);
  return findings;
}

/// Lints `paths` inside the fixture tree and fails the test on lint-runner
/// errors (not on findings — those are the assertions' subject).
LintReport LintFixture(const std::vector<std::string>& paths) {
  LintOptions options;
  options.root = KONDO_LINT_FIXTURES;
  options.paths = paths;
  const StatusOr<LintReport> report = RunLint(options);
  EXPECT_TRUE(report.ok()) << report.status();
  return report.ok() ? *report : LintReport{};
}

/// (rule, line) pairs for every finding in `report`, in report order.
std::vector<std::pair<std::string, int>> RuleLines(const LintReport& report) {
  std::vector<std::pair<std::string, int>> out;
  for (const Finding& finding : report.findings) {
    out.emplace_back(finding.rule, finding.line);
  }
  return out;
}

// ---------------------------------------------------------------------------
// 1. Lexer.

TEST(LintLexerTest, CombinesScopeAndArrowPuncts) {
  const LexedFile lexed = Lex("a->b::c");
  ASSERT_EQ(lexed.tokens.size(), 5u);
  EXPECT_EQ(lexed.tokens[1].text, "->");
  EXPECT_EQ(lexed.tokens[3].text, "::");
  EXPECT_EQ(lexed.tokens[1].kind, TokenKind::kPunct);
}

TEST(LintLexerTest, CommentsAndStringsNeverLeakIdentifiers) {
  const LexedFile lexed = Lex(
      "int x = 0;  // rand() lives here\n"
      "/* std::random_device too */\n"
      "const char* s = \"rand() and \\\"random_device\\\"\";\n"
      "char c = 'r';\n");
  EXPECT_FALSE(HasIdent(lexed, "rand"));
  EXPECT_FALSE(HasIdent(lexed, "random_device"));
  EXPECT_TRUE(HasIdent(lexed, "x"));
  EXPECT_TRUE(HasIdent(lexed, "s"));
}

TEST(LintLexerTest, RawStringLiteralIsOneStringToken) {
  const LexedFile lexed = Lex("auto s = R\"(call rand() \"anywhere\")\";");
  EXPECT_FALSE(HasIdent(lexed, "rand"));
  bool saw_string = false;
  for (const Token& tok : lexed.tokens) {
    if (tok.kind == TokenKind::kString) {
      saw_string = true;
      EXPECT_NE(tok.text.find("rand()"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_string);
}

TEST(LintLexerTest, TracksLineNumbers) {
  const LexedFile lexed = Lex("one\n\ntwo\nthree");
  const std::vector<std::string> idents = IdentTexts(lexed);
  ASSERT_EQ(idents.size(), 3u);
  EXPECT_EQ(lexed.tokens[0].line, 1);
  EXPECT_EQ(lexed.tokens[1].line, 3);
  EXPECT_EQ(lexed.tokens[2].line, 4);
}

// ---------------------------------------------------------------------------
// 1b. Suppression directives.

TEST(LintDirectiveTest, EndOfLineDirectiveCoversItsOwnLine) {
  const LexedFile lexed = Lex("int a = rand();  // kondo-lint: allow(R1) x\n");
  ASSERT_EQ(lexed.suppressions.count(1), 1u);
  EXPECT_EQ(lexed.suppressions.at(1).count("R1"), 1u);
  EXPECT_EQ(lexed.suppressions.count(2), 0u);
}

TEST(LintDirectiveTest, StandaloneDirectiveCoversTheNextLine) {
  const LexedFile lexed = Lex(
      "// kondo-lint: allow(R2, R3) reason\n"
      "for (const auto& e : m) {}\n");
  ASSERT_EQ(lexed.suppressions.count(2), 1u);
  EXPECT_EQ(lexed.suppressions.at(2).count("R2"), 1u);
  EXPECT_EQ(lexed.suppressions.at(2).count("R3"), 1u);
  EXPECT_EQ(lexed.suppressions.at(2).count("R1"), 0u);
}

TEST(LintDirectiveTest, ProseMentionOfTheSyntaxIsNotADirective) {
  const LexedFile lexed =
      Lex("// justify with `kondo-lint: allow(R2) reason` when needed\n");
  EXPECT_TRUE(lexed.suppressions.empty());
  EXPECT_TRUE(lexed.malformed_directives.empty());
}

TEST(LintDirectiveTest, MalformedDirectiveIsReportedNotHonoured) {
  const LexedFile lexed = Lex("// kondo-lint: allow() oops\n");
  EXPECT_TRUE(lexed.suppressions.empty());
  ASSERT_EQ(lexed.malformed_directives.size(), 1u);
  EXPECT_EQ(lexed.malformed_directives[0].first, 1);
}

// ---------------------------------------------------------------------------
// 1c. Include graph.

TEST(LintIncludeGraphTest, ExtractsQuotedIncludeTargets) {
  const LexedFile lexed = Lex(
      "#include \"array/index_set.h\"\n"
      "#include <vector>\n");
  const std::vector<std::string> targets = ExtractIncludeTargets(lexed);
  ASSERT_FALSE(targets.empty());
  EXPECT_EQ(targets[0], "array/index_set.h");
}

TEST(LintIncludeGraphTest, CriticalClosureFollowsIncludes) {
  std::map<std::string, LexedFile> files;
  files["src/fuzz/driver.cc"] = Lex("#include \"array/shared.h\"\n");
  files["src/array/shared.h"] = Lex("int x;\n");
  files["src/other/outside.cc"] = Lex("int y;\n");
  const IncludeGraph graph = IncludeGraph::Build(files);
  const std::set<std::string> critical = graph.CriticalClosure({"src/fuzz/"});
  EXPECT_EQ(critical.count("src/fuzz/driver.cc"), 1u);
  EXPECT_EQ(critical.count("src/array/shared.h"), 1u)
      << "headers included by critical modules must join the closure";
  EXPECT_EQ(critical.count("src/other/outside.cc"), 0u);
}

/// Runs the global R5 collector over one inline snippet.
std::vector<Finding> RunLockOrder(const std::string& source, bool critical) {
  const LexedFile lexed = Lex(source);
  const std::set<std::string> names;
  FileContext ctx;
  ctx.path = "snippet.cc";
  ctx.lexed = &lexed;
  ctx.critical = critical;
  ctx.unordered_names = &names;
  LockOrderCollector collector;
  collector.AddFile(ctx);
  std::vector<Finding> findings;
  collector.Finish(&findings);
  return findings;
}

// ---------------------------------------------------------------------------
// 1d. Flow engine: function segmentation, lock tracing, taint walking.

TEST(LintFlowTest, SegmentsFreeQualifiedAndInlineMemberFunctions) {
  const LexedFile lexed = Lex(
      "int Free(int x) { return x; }\n"
      "void Klass::Method() { Use(); }\n"
      "class C {\n"
      " public:\n"
      "  C() : x_(0) {}\n"
      "  int Inline() const { return x_; }\n"
      " private:\n"
      "  int x_;\n"
      "};\n");
  const std::vector<FlowFunction> fns = SegmentFunctions(lexed);
  ASSERT_EQ(fns.size(), 4u);
  EXPECT_EQ(fns[0].name, "Free");
  EXPECT_EQ(fns[0].scope, "Free") << "free-function locals get a private scope";
  EXPECT_EQ(fns[0].line, 1);
  EXPECT_EQ(fns[1].name, "Klass::Method");
  EXPECT_EQ(fns[1].scope, "Klass");
  EXPECT_EQ(fns[2].name, "C") << "constructors with initialiser lists segment";
  EXPECT_EQ(fns[2].scope, "C");
  EXPECT_EQ(fns[3].name, "Inline");
  EXPECT_EQ(fns[3].scope, "C") << "inline methods inherit the class scope";
}

TEST(LintFlowTest, DeclarationsAndControlFlowAreNotFunctions) {
  const LexedFile lexed = Lex(
      "void Decl(int x);\n"
      "void F() {\n"
      "  if (Cond()) { A(); }\n"
      "  while (Cond()) { B(); }\n"
      "}\n");
  const std::vector<FlowFunction> fns = SegmentFunctions(lexed);
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].name, "F");
}

TEST(LintFlowTest, TraceLocksQualifiesAndOrdersAcquisitions) {
  const LexedFile lexed = Lex(
      "void Q::Go() {\n"
      "  MutexLock a(mu_);\n"
      "  MutexLock b(peer_->mu);\n"
      "  cv_.Wait(mu_);\n"
      "}\n");
  const std::vector<FlowFunction> fns = SegmentFunctions(lexed);
  ASSERT_EQ(fns.size(), 1u);
  const LockTrace trace = TraceLocks(lexed, fns[0]);
  ASSERT_EQ(trace.acquisitions.size(), 2u);
  EXPECT_EQ(trace.acquisitions[0].lock, "Q::mu_");
  EXPECT_TRUE(trace.acquisitions[0].held.empty());
  EXPECT_EQ(trace.acquisitions[1].lock, "Q::peer_->mu");
  ASSERT_EQ(trace.acquisitions[1].held.size(), 1u);
  EXPECT_EQ(trace.acquisitions[1].held[0], "Q::mu_");
  ASSERT_EQ(trace.waits.size(), 1u);
  EXPECT_EQ(trace.waits[0].wait_lock, "Q::mu_");
  EXPECT_EQ(trace.waits[0].held.size(), 2u);
}

TEST(LintFlowTest, RaiiGuardsReleaseAtTheirBraceScope) {
  const LexedFile lexed = Lex(
      "void Q::Go() {\n"
      "  { MutexLock a(mu_a_); }\n"
      "  MutexLock b(mu_b_);\n"
      "}\n");
  const std::vector<FlowFunction> fns = SegmentFunctions(lexed);
  ASSERT_EQ(fns.size(), 1u);
  const LockTrace trace = TraceLocks(lexed, fns[0]);
  ASSERT_EQ(trace.acquisitions.size(), 2u);
  EXPECT_TRUE(trace.acquisitions[1].held.empty())
      << "sequential scopes must not read as nested acquisitions";
}

TEST(LintFlowTest, TaintFlowsFromCursorReadThroughAssignmentToSink) {
  const LexedFile lexed = Lex(
      "bool D(Cur& c, V* out) {\n"
      "  uint32_t n = 0;\n"
      "  c.ReadU32(&n);\n"
      "  uint64_t total = n;\n"
      "  out->v.reserve(total);\n"
      "  return true;\n"
      "}\n");
  const std::vector<FlowFunction> fns = SegmentFunctions(lexed);
  ASSERT_EQ(fns.size(), 1u);
  const std::vector<TaintedUse> uses = TraceWireTaint(lexed, fns[0]);
  ASSERT_EQ(uses.size(), 1u);
  EXPECT_EQ(uses[0].variable, "total");
  EXPECT_EQ(uses[0].sink, "reserve");
  EXPECT_EQ(uses[0].sink_expr, "out->v");
  EXPECT_EQ(uses[0].line, 5);
  EXPECT_EQ(uses[0].source, "ReadU32");
  EXPECT_EQ(uses[0].source_line, 3);
}

TEST(LintFlowTest, BoundsComparisonClearsTaint) {
  const LexedFile lexed = Lex(
      "bool D(Cur& c, V* out) {\n"
      "  uint32_t n = 0;\n"
      "  c.ReadU32(&n);\n"
      "  if (n > c.remaining()) { return false; }\n"
      "  out->v.resize(n);\n"
      "  return true;\n"
      "}\n");
  const std::vector<FlowFunction> fns = SegmentFunctions(lexed);
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_TRUE(TraceWireTaint(lexed, fns[0]).empty());
}

// ---------------------------------------------------------------------------
// 2. Rules on inline snippets.

TEST(LintRuleR1Test, FlagsBannedApisOnlyInCriticalFiles) {
  const std::string source = "int seed() { return rand(); }";
  EXPECT_EQ(RunRule(CheckR1, source, /*critical=*/true).size(), 1u);
  EXPECT_TRUE(RunRule(CheckR1, source, /*critical=*/false).empty());
}

TEST(LintRuleR1Test, MemberNamedLikeBannedApiIsNotFlagged) {
  EXPECT_TRUE(RunRule(CheckR1, "int x = obj.rand();", true).empty());
  EXPECT_TRUE(RunRule(CheckR1, "int y = mylib::rand();", true).empty());
  EXPECT_EQ(RunRule(CheckR1, "auto d = std::random_device{};", true).size(),
            1u);
}

TEST(LintRuleR1Test, TimeIsOnlyBannedAsWallClockRead) {
  EXPECT_EQ(RunRule(CheckR1, "long t = time(nullptr);", true).size(), 1u);
  // `time` as a plain identifier (a variable, a field) is fine.
  EXPECT_TRUE(RunRule(CheckR1, "double time = 0.5; Use(time);", true).empty());
}

TEST(LintRuleR2Test, PointerKeyedUnorderedFlaggedEvenOutsideCriticalCode) {
  const std::string source = "std::unordered_set<Node*> live;";
  ASSERT_EQ(RunRule(CheckR2, source, /*critical=*/false).size(), 1u);
  EXPECT_EQ(RunRule(CheckR2, source, false)[0].rule, "R2");
}

TEST(LintRuleR2Test, RangeForOverUnorderedOnlyFlaggedWhenCritical) {
  const std::string source =
      "std::unordered_map<std::string, int> counts;\n"
      "void f() { for (const auto& e : counts) { Use(e); } }\n";
  ASSERT_EQ(RunRule(CheckR2, source, /*critical=*/true).size(), 1u);
  EXPECT_EQ(RunRule(CheckR2, source, true)[0].line, 2);
  EXPECT_TRUE(RunRule(CheckR2, source, /*critical=*/false).empty());
}

TEST(LintRuleR2Test, SortedMaterialisationIsClean) {
  const std::string source =
      "std::map<std::string, int> counts;\n"
      "void f() { for (const auto& e : counts) { Use(e); } }\n";
  EXPECT_TRUE(RunRule(CheckR2, source, /*critical=*/true).empty());
}

TEST(LintRuleR3Test, FlagsEachSuppressionShapeOnce) {
  EXPECT_EQ(RunRule(CheckR3, "void f() { (void)writer.Close(); }", true).size(),
            1u)
      << "(void) cast must report exactly once, not once per arm";
  EXPECT_EQ(
      RunRule(CheckR3, "void f() { static_cast<void>(sink->Flush()); }", true)
          .size(),
      1u);
  EXPECT_EQ(
      RunRule(CheckR3, "void f() { std::ignore = writer.Append(e); }", true)
          .size(),
      1u);
  EXPECT_EQ(RunRule(CheckR3, "void f() { event_writer_->Append(e); }", true)
                .size(),
            1u);
}

TEST(LintRuleR3Test, HandledStatusesAreClean) {
  EXPECT_TRUE(RunRule(CheckR3,
                      "Status f() {\n"
                      "  Status s = writer.Append(e);\n"
                      "  if (!s.ok()) return s;\n"
                      "  return writer.Close();\n"
                      "}\n",
                      true)
                  .empty());
}

TEST(LintRuleR4Test, UnannotatedMutexMemberIsFlagged) {
  const std::vector<Finding> findings = RunRule(
      CheckR4,
      "class Q {\n"
      " public:\n"
      "  void Push(int v);\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  std::vector<int> items_;\n"
      "};\n",
      true);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R4");
  EXPECT_EQ(findings[0].line, 5);
  EXPECT_NE(findings[0].message.find("'Q'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("'mu_'"), std::string::npos);
}

TEST(LintRuleR4Test, AnyKondoAnnotationInTheClassSatisfiesTheRule) {
  EXPECT_TRUE(RunRule(CheckR4,
                      "class Q {\n"
                      "  Mutex mu_;\n"
                      "  int n_ KONDO_GUARDED_BY(mu_) = 0;\n"
                      "};\n",
                      true)
                  .empty());
}

TEST(LintRuleR4Test, EnumClassAndForwardDeclarationsAreNotClasses) {
  EXPECT_TRUE(RunRule(CheckR4,
                      "enum class Mode { kA, kB };\n"
                      "class Fwd;\n"
                      "std::mutex global_mu;\n",
                      true)
                  .empty());
}

TEST(LintRuleR5Test, InconsistentNestingOrderIsACycleOnlyWhenCritical) {
  const std::string source =
      "class P {\n"
      " public:\n"
      "  void AB() {\n"
      "    MutexLock a(mu_a_);\n"
      "    MutexLock b(mu_b_);\n"
      "  }\n"
      "  void BA() {\n"
      "    MutexLock b(mu_b_);\n"
      "    MutexLock a(mu_a_);\n"
      "  }\n"
      " private:\n"
      "  Mutex mu_a_;\n"
      "  Mutex mu_b_;\n"
      "};\n";
  const std::vector<Finding> findings = RunLockOrder(source, /*critical=*/true);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R5");
  EXPECT_EQ(findings[0].line, 5) << "anchored at the smallest lock's edge";
  EXPECT_NE(
      findings[0].message.find("'P::mu_a_' -> 'P::mu_b_' in AB (snippet.cc:5)"),
      std::string::npos)
      << findings[0].message;
  EXPECT_NE(
      findings[0].message.find("'P::mu_b_' -> 'P::mu_a_' in BA (snippet.cc:9)"),
      std::string::npos)
      << findings[0].message;
  EXPECT_TRUE(RunLockOrder(source, /*critical=*/false).empty());
}

TEST(LintRuleR5Test, WaitWhileHoldingASecondMutexNamesTheHeldLock) {
  const std::vector<Finding> findings = RunLockOrder(
      "class G {\n"
      " public:\n"
      "  void W() {\n"
      "    MutexLock a(mu_a_);\n"
      "    MutexLock b(mu_b_);\n"
      "    cv_.Wait(mu_b_);\n"
      "  }\n"
      " private:\n"
      "  Mutex mu_a_;\n"
      "  Mutex mu_b_;\n"
      "  CondVar cv_;\n"
      "};\n",
      /*critical=*/true);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R5");
  EXPECT_EQ(findings[0].line, 6);
  EXPECT_NE(findings[0].message.find("CondVar::Wait(mu_b_) in W"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("still holding 'G::mu_a_'"),
            std::string::npos)
      << findings[0].message;
}

TEST(LintRuleR5Test, ConsistentOrderAndSoloWaitAreClean) {
  EXPECT_TRUE(RunLockOrder(
                  "class P {\n"
                  " public:\n"
                  "  void One() {\n"
                  "    MutexLock a(mu_a_);\n"
                  "    MutexLock b(mu_b_);\n"
                  "  }\n"
                  "  void Two() {\n"
                  "    MutexLock a(mu_a_);\n"
                  "    MutexLock b(mu_b_);\n"
                  "  }\n"
                  "  void Park() {\n"
                  "    MutexLock b(mu_b_);\n"
                  "    cv_.Wait(mu_b_);\n"
                  "  }\n"
                  " private:\n"
                  "  Mutex mu_a_;\n"
                  "  Mutex mu_b_;\n"
                  "  CondVar cv_;\n"
                  "};\n",
                  /*critical=*/true)
                  .empty());
}

TEST(LintRuleR5Test, SameSpellingInDistinctClassesNeverCollides) {
  // A::mu_a_ and B::mu_a_ are different mutexes; the reversed nesting in B
  // must not close a cycle against A's order.
  EXPECT_TRUE(RunLockOrder(
                  "class A {\n"
                  "  void F() {\n"
                  "    MutexLock x(mu_a_);\n"
                  "    MutexLock y(mu_b_);\n"
                  "  }\n"
                  "  Mutex mu_a_;\n"
                  "  Mutex mu_b_;\n"
                  "};\n"
                  "class B {\n"
                  "  void F() {\n"
                  "    MutexLock x(mu_b_);\n"
                  "    MutexLock y(mu_a_);\n"
                  "  }\n"
                  "  Mutex mu_a_;\n"
                  "  Mutex mu_b_;\n"
                  "};\n",
                  /*critical=*/true)
                  .empty());
}

TEST(LintRuleR6Test, UncheckedWireLengthFlaggedOnlyInCriticalFiles) {
  const std::string source =
      "bool D(Cur& c, V* out) {\n"
      "  uint32_t n = 0;\n"
      "  c.ReadU32(&n);\n"
      "  out->v.resize(n);\n"
      "  return true;\n"
      "}\n";
  const std::vector<Finding> findings = RunRule(CheckR6, source, true);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R6");
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("'n' carries a wire-tainted length"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("(ReadU32 at line 3)"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("'out->v.resize()'"), std::string::npos)
      << findings[0].message;
  EXPECT_TRUE(RunRule(CheckR6, source, false).empty());
}

TEST(LintRuleR6Test, NewArrayExtentIsASink) {
  const std::vector<Finding> findings = RunRule(
      CheckR6,
      "double* A(Cur& c) {\n"
      "  uint32_t n = 0;\n"
      "  c.ReadVarint(&n);\n"
      "  return new double[n];\n"
      "}\n",
      true);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("a 'new double[]' allocation"),
            std::string::npos)
      << findings[0].message;
}

TEST(LintRuleR6Test, RemainingBytesComparisonSatisfiesTheRule) {
  EXPECT_TRUE(RunRule(CheckR6,
                      "bool D(Cur& c, V* out) {\n"
                      "  uint32_t n = 0;\n"
                      "  c.ReadU32(&n);\n"
                      "  if (n > c.remaining()) { return false; }\n"
                      "  out->v.resize(n);\n"
                      "  return true;\n"
                      "}\n",
                      true)
                  .empty());
}

// ---------------------------------------------------------------------------
// 3. Fixture tree, per file: exact rule ids and line anchors.

TEST(LintFixtureTest, R1BadAnchorsEveryViolation) {
  const LintReport report = LintFixture({"src/fuzz/r1_bad.cc"});
  EXPECT_EQ(RuleLines(report),
            (std::vector<std::pair<std::string, int>>{
                {"R1", 9}, {"R1", 14}, {"R1", 18}}));
  for (const Finding& finding : report.findings) {
    EXPECT_EQ(finding.file, "src/fuzz/r1_bad.cc");
  }
}

TEST(LintFixtureTest, R1CleanCounterpartIsClean) {
  EXPECT_TRUE(LintFixture({"src/fuzz/r1_clean.cc"}).findings.empty());
}

TEST(LintFixtureTest, ServeModuleIsInTheCriticalClosure) {
  // The daemon code joined critical_modules with the serve subsystem; a
  // seeded wall-clock read and a getpid() in the serve mirror must anchor
  // as R1, proving the closure covers src/serve/.
  const LintReport report = LintFixture({"src/serve/r1_bad.cc"});
  EXPECT_EQ(RuleLines(report), (std::vector<std::pair<std::string, int>>{
                                   {"R1", 10}, {"R1", 14}}));
  for (const Finding& finding : report.findings) {
    EXPECT_EQ(finding.file, "src/serve/r1_bad.cc");
  }
}

TEST(LintFixtureTest, ServeCleanCounterpartIsClean) {
  // steady_clock and a daemon-minted session counter are the allowed
  // spellings of what r1_bad.cc does wrong.
  EXPECT_TRUE(LintFixture({"src/serve/r1_clean.cc"}).findings.empty());
}

TEST(LintFixtureTest, R2BadAnchorsPointerKeyAndIteration) {
  const LintReport report = LintFixture({"src/exec/r2_bad.cc"});
  EXPECT_EQ(RuleLines(report), (std::vector<std::pair<std::string, int>>{
                                   {"R2", 14}, {"R2", 19}}));
}

TEST(LintFixtureTest, R2CleanCounterpartIsClean) {
  EXPECT_TRUE(LintFixture({"src/exec/r2_clean.cc"}).findings.empty());
}

TEST(LintFixtureTest, FleetModuleIsInTheCriticalClosure) {
  // The distributed-fleet code joined critical_modules: a pointer-keyed
  // session set and dispatch-order iteration over an unordered shard map
  // in the fleet mirror must anchor as R2, proving the closure covers
  // src/fleet/.
  const LintReport report = LintFixture({"src/fleet/r2_bad.cc"});
  EXPECT_EQ(RuleLines(report), (std::vector<std::pair<std::string, int>>{
                                   {"R2", 15}, {"R2", 21}}));
  for (const Finding& finding : report.findings) {
    EXPECT_EQ(finding.file, "src/fleet/r2_bad.cc");
  }
}

TEST(LintFixtureTest, FleetCleanCounterpartIsClean) {
  // An id-ordered session map and a sorted dispatch order are the allowed
  // spellings of what r2_bad.cc does wrong.
  EXPECT_TRUE(LintFixture({"src/fleet/r2_clean.cc"}).findings.empty());
}

TEST(LintFixtureTest, R3BadAnchorsAllThreeDiscardShapes) {
  const LintReport report = LintFixture({"src/provenance/r3_bad.cc"});
  EXPECT_EQ(RuleLines(report),
            (std::vector<std::pair<std::string, int>>{
                {"R3", 15}, {"R3", 16}, {"R3", 17}}));
}

TEST(LintFixtureTest, R3CleanCounterpartIsClean) {
  EXPECT_TRUE(LintFixture({"src/provenance/r3_clean.cc"}).findings.empty());
}

TEST(LintFixtureTest, PackModuleIsInTheCriticalClosure) {
  // The KDP packaging code joined critical_modules; a bare chunk append and
  // a (void)-cast flush in the pack mirror must anchor as R3, proving the
  // closure covers src/pack/.
  const LintReport report = LintFixture({"src/pack/r3_bad.cc"});
  EXPECT_EQ(RuleLines(report), (std::vector<std::pair<std::string, int>>{
                                   {"R3", 14}, {"R3", 15}}));
  for (const Finding& finding : report.findings) {
    EXPECT_EQ(finding.file, "src/pack/r3_bad.cc");
  }
}

TEST(LintFixtureTest, PackCleanCounterpartIsClean) {
  // Propagating every writer Status is the allowed spelling of what
  // r3_bad.cc does wrong.
  EXPECT_TRUE(LintFixture({"src/pack/r3_clean.cc"}).findings.empty());
}

TEST(LintFixtureTest, R4BadAnchorsEachUnannotatedMutexMember) {
  const LintReport report = LintFixture({"src/shard/r4_bad.cc"});
  EXPECT_EQ(RuleLines(report), (std::vector<std::pair<std::string, int>>{
                                   {"R4", 16}, {"R4", 17}}));
}

TEST(LintFixtureTest, R4CleanCounterpartIsClean) {
  EXPECT_TRUE(LintFixture({"src/shard/r4_clean.cc"}).findings.empty());
}

TEST(LintFixtureTest, R5CycleBadAnchorsTheWitnessPath) {
  const LintReport report = LintFixture({"src/serve/r5_cycle_bad.cc"});
  ASSERT_EQ(RuleLines(report),
            (std::vector<std::pair<std::string, int>>{{"R5", 14}}));
  const Finding& finding = report.findings[0];
  EXPECT_EQ(finding.file, "src/serve/r5_cycle_bad.cc");
  EXPECT_NE(finding.message.find("lock-order cycle"), std::string::npos);
  EXPECT_NE(finding.message.find("'ResultLedger::mu_a_' -> "
                                 "'ResultLedger::mu_b_' in Credit "
                                 "(src/serve/r5_cycle_bad.cc:14)"),
            std::string::npos)
      << finding.message;
  EXPECT_NE(finding.message.find("'ResultLedger::mu_b_' -> "
                                 "'ResultLedger::mu_a_' in Debit "
                                 "(src/serve/r5_cycle_bad.cc:20)"),
            std::string::npos)
      << finding.message;
  EXPECT_NE(finding.message.find("deadlock"), std::string::npos);
}

TEST(LintFixtureTest, R5WaitBadAnchorsTheWaitSite) {
  const LintReport report = LintFixture({"src/serve/r5_wait_bad.cc"});
  ASSERT_EQ(RuleLines(report),
            (std::vector<std::pair<std::string, int>>{{"R5", 16}}));
  const Finding& finding = report.findings[0];
  EXPECT_NE(finding.message.find("CondVar::Wait(mu_) in Drain"),
            std::string::npos);
  EXPECT_NE(finding.message.find("still holding 'DrainGate::admit_mu_'"),
            std::string::npos)
      << finding.message;
}

TEST(LintFixtureTest, R5CleanCounterpartIsCleanAndCountsItsSuppression) {
  // OrderedLedger nests mu_a_ before mu_b_ everywhere and its one
  // deliberate wait-while-holding carries a justified allow(R5).
  const LintReport report = LintFixture({"src/serve/r5_clean.cc"});
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.suppressed, 1);
}

TEST(LintFixtureTest, R6BadAnchorsBothSinksAndNamesTheTaintingRead) {
  const LintReport report = LintFixture({"src/serve/r6_bad.cc"});
  ASSERT_EQ(RuleLines(report), (std::vector<std::pair<std::string, int>>{
                                   {"R6", 23}, {"R6", 30}}));
  EXPECT_NE(report.findings[0].message.find(
                "'count' carries a wire-tainted length (ReadU32 at line 22)"),
            std::string::npos)
      << report.findings[0].message;
  EXPECT_NE(report.findings[1].message.find(
                "'extent' carries a wire-tainted length (ReadU32 at line 29)"),
            std::string::npos)
      << report.findings[1].message;
  EXPECT_NE(report.findings[1].message.find("a 'new double[]' allocation"),
            std::string::npos);
}

TEST(LintFixtureTest, R6CleanCounterpartIsCleanAndCountsItsSuppression) {
  // Comparing against cur.remaining() before the resize clears the taint;
  // the one unchecked resize carries a justified allow(R6).
  const LintReport report = LintFixture({"src/serve/r6_clean.cc"});
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.suppressed, 1);
}

TEST(LintFixtureTest, WellFormedDirectivesSuppressAndAreCounted) {
  const LintReport report = LintFixture({"src/carve/suppressed.cc"});
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.suppressed, 2);
}

TEST(LintFixtureTest, MalformedDirectiveSurfacesAsLintRule) {
  const LintReport report = LintFixture({"src/carve/malformed.cc"});
  EXPECT_EQ(RuleLines(report),
            (std::vector<std::pair<std::string, int>>{{"LINT", 5}}));
}

TEST(LintFixtureTest, NoncriticalModuleEscapesR1AndR2Iteration) {
  EXPECT_TRUE(LintFixture({"src/util/noncritical_ok.cc"}).findings.empty());
}

TEST(LintFixtureTest, WholeTreeTotalsAreExact) {
  const LintReport report = LintFixture({"src"});
  EXPECT_EQ(report.files_scanned, 22);
  EXPECT_EQ(report.suppressed, 4);
  std::map<std::string, int> by_rule;
  for (const Finding& finding : report.findings) {
    ++by_rule[finding.rule];
  }
  EXPECT_EQ(by_rule["R1"], 5);
  EXPECT_EQ(by_rule["R2"], 4);
  EXPECT_EQ(by_rule["R3"], 5);
  EXPECT_EQ(by_rule["R4"], 2);
  EXPECT_EQ(by_rule["R5"], 2);
  EXPECT_EQ(by_rule["R6"], 2);
  EXPECT_EQ(by_rule["LINT"], 1);
  EXPECT_EQ(report.findings.size(), 21u);
}

// ---------------------------------------------------------------------------
// 3b. LintMain: flags, report format, exit codes.

TEST(LintMainTest, ExitsOneAndPrintsAnchorsOnFindings) {
  std::ostringstream out;
  std::ostringstream err;
  const int code =
      LintMain({"--root", KONDO_LINT_FIXTURES, "src"}, out, err);
  EXPECT_EQ(code, 1);
  const std::string text = out.str();
  EXPECT_NE(text.find("src/fuzz/r1_bad.cc:9: [R1]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("src/exec/r2_bad.cc:14: [R2]"), std::string::npos);
  EXPECT_NE(text.find("src/provenance/r3_bad.cc:16: [R3]"),
            std::string::npos);
  EXPECT_NE(text.find("src/shard/r4_bad.cc:16: [R4]"), std::string::npos);
  EXPECT_NE(text.find("src/serve/r1_bad.cc:14: [R1]"), std::string::npos);
  EXPECT_NE(text.find("src/pack/r3_bad.cc:14: [R3]"), std::string::npos);
  EXPECT_NE(text.find("src/fleet/r2_bad.cc:15: [R2]"), std::string::npos);
  EXPECT_NE(text.find("src/carve/malformed.cc:5: [LINT]"),
            std::string::npos);
  EXPECT_NE(text.find("src/serve/r5_cycle_bad.cc:14: [R5]"),
            std::string::npos);
  EXPECT_NE(text.find("src/serve/r5_wait_bad.cc:16: [R5]"),
            std::string::npos);
  EXPECT_NE(text.find("src/serve/r6_bad.cc:23: [R6]"), std::string::npos);
  EXPECT_NE(text.find("21 finding(s) across 22 file(s) (4 suppressed)"),
            std::string::npos);
}

TEST(LintMainTest, ExitsZeroOnCleanInput) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = LintMain(
      {"--root", KONDO_LINT_FIXTURES, "src/fuzz/r1_clean.cc"}, out, err);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.str().find("0 finding(s)"), std::string::npos);
}

TEST(LintMainTest, RulesFlagRestrictsToTheListedRules) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = LintMain(
      {"--root", KONDO_LINT_FIXTURES, "--rules", "R1", "src"}, out, err);
  EXPECT_EQ(code, 1);
  const std::string text = out.str();
  EXPECT_NE(text.find("[R1]"), std::string::npos);
  EXPECT_EQ(text.find("[R2]"), std::string::npos);
  EXPECT_EQ(text.find("[R3]"), std::string::npos);
  EXPECT_EQ(text.find("[R4]"), std::string::npos);
  EXPECT_EQ(text.find("[R5]"), std::string::npos);
  EXPECT_EQ(text.find("[R6]"), std::string::npos);
  // Malformed directives stay fatal under any rule filter: a typo must
  // never silently disable linting.
  EXPECT_NE(text.find("[LINT]"), std::string::npos);
}

TEST(LintMainTest, JsonFormatEmitsMachineReadableReport) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = LintMain(
      {"--root", KONDO_LINT_FIXTURES, "--format=json", "src"}, out, err);
  EXPECT_EQ(code, 1) << "findings still drive the exit code in json mode";
  const std::string text = out.str();
  EXPECT_NE(text.find("\"tool\": \"kondo-lint\""), std::string::npos);
  EXPECT_NE(text.find("\"files_scanned\": 22"), std::string::npos) << text;
  EXPECT_NE(text.find("\"suppressed\": 4"), std::string::npos);
  EXPECT_NE(text.find("{\"file\": \"src/fuzz/r1_bad.cc\", \"line\": 9, "
                      "\"rule\": \"R1\""),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"rule\": \"R5\""), std::string::npos);
  EXPECT_NE(text.find("\"rule\": \"R6\""), std::string::npos);
  EXPECT_EQ(text.find(": [R1]"), std::string::npos)
      << "json mode must not interleave the text report";
}

TEST(LintMainTest, JsonReportEscapesQuotesBackslashesAndControlBytes) {
  LintReport report;
  report.files_scanned = 1;
  report.findings.push_back(
      Finding{"R1", "src/a.cc", 3, "saw \"quoted\\path\"\n\tand a tab"});
  std::ostringstream out;
  PrintJsonReport(report, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("saw \\\"quoted\\\\path\\\"\\n\\tand a tab"),
            std::string::npos)
      << text;
}

TEST(LintMainTest, JsonCleanReportHasEmptyFindingsArray) {
  std::ostringstream out;
  std::ostringstream err;
  const int code =
      LintMain({"--root", KONDO_LINT_FIXTURES, "--format", "json",
                "src/fuzz/r1_clean.cc"},
               out, err);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.str().find("\"findings\": []"), std::string::npos)
      << out.str();
}

TEST(LintMainTest, UnknownFormatExitsTwo) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(LintMain({"--format=xml"}, out, err), 2);
  EXPECT_NE(err.str().find("unknown --format 'xml'"), std::string::npos);
}

TEST(LintMainTest, ExitsTwoOnUnknownFlagOrBadPath) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(LintMain({"--bogus"}, out, err), 2);
  EXPECT_NE(err.str().find("unknown flag"), std::string::npos);
  std::ostringstream out2;
  std::ostringstream err2;
  EXPECT_EQ(LintMain({"--root", KONDO_LINT_FIXTURES, "no/such/dir"}, out2,
                     err2),
            2);
}

TEST(LintMainTest, HelpExitsZero) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(LintMain({"--help"}, out, err), 0);
  EXPECT_NE(out.str().find("exit codes"), std::string::npos);
}

// ---------------------------------------------------------------------------
// 3c. The shipped binary: process-level exit codes match LintMain's.

TEST(LintBinaryTest, ProcessExitCodesMatchContract) {
  const std::string binary = KONDO_LINT_BINARY;
  const std::string fixtures = KONDO_LINT_FIXTURES;
  const int findings_code = std::system(
      (binary + " --root " + fixtures + " src > /dev/null 2>&1").c_str());
  ASSERT_NE(findings_code, -1);
  EXPECT_EQ(WEXITSTATUS(findings_code), 1);
  const int clean_code = std::system(
      (binary + " --root " + fixtures +
       " src/exec/r2_clean.cc > /dev/null 2>&1")
          .c_str());
  EXPECT_EQ(WEXITSTATUS(clean_code), 0);
  const int usage_code =
      std::system((binary + " --definitely-not-a-flag > /dev/null 2>&1")
                      .c_str());
  EXPECT_EQ(WEXITSTATUS(usage_code), 2);
}

}  // namespace
}  // namespace lint
}  // namespace kondo
