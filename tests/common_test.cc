#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include "common/interval_set.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/stopwatch.h"
#include "common/strings.h"

namespace kondo {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgumentError("bad thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad thing");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(StatusTest, DataMissingIsDistinctCode) {
  Status status = DataMissingError("hole");
  EXPECT_EQ(status.code(), StatusCode::kDataMissing);
  EXPECT_EQ(StatusCodeToString(status.code()), "DATA_MISSING");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFoundError("x"), NotFoundError("x"));
  EXPECT_FALSE(NotFoundError("x") == NotFoundError("y"));
  EXPECT_FALSE(NotFoundError("x") == InternalError("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 10; ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

Status FailsIfNegative(int x) {
  if (x < 0) {
    return OutOfRangeError("negative");
  }
  return OkStatus();
}

Status UsesReturnIfError(int x) {
  KONDO_RETURN_IF_ERROR(FailsIfNegative(x));
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kOutOfRange);
}

// -------------------------------------------------------------- StatusOr --

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) {
    return InvalidArgumentError("not positive");
  }
  return x;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = ParsePositive(5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 5);
  EXPECT_EQ(result.value(), 5);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = ParsePositive(-1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

StatusOr<int> DoublesViaAssignOrReturn(int x) {
  KONDO_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  return value * 2;
}

TEST(StatusOrTest, AssignOrReturnHappyPath) {
  StatusOr<int> result = DoublesViaAssignOrReturn(4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 8);
}

TEST(StatusOrTest, AssignOrReturnPropagatesError) {
  EXPECT_EQ(DoublesViaAssignOrReturn(0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> value = *std::move(result);
  EXPECT_EQ(*value, 7);
}

TEST(StatusOrTest, OkStatusConstructionIsInternalError) {
  StatusOr<int> result{OkStatus()};
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 12);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 12);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(4);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(rng.UniformInt(0, 9));
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(5);
  EXPECT_EQ(rng.UniformInt(7, 7), 7);
}

TEST(RngTest, UniformDoubleStaysInRange) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble(2.5, 3.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(8);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(9);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.1);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(10);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(11);
  Rng child = a.Fork();
  EXPECT_NE(a.NextU64(), child.NextU64());
}

// ----------------------------------------------------------- IntervalSet --

TEST(IntervalTest, BasicPredicates) {
  const Interval iv{10, 20};
  EXPECT_EQ(iv.length(), 10);
  EXPECT_FALSE(iv.empty());
  EXPECT_TRUE(iv.Contains(10));
  EXPECT_TRUE(iv.Contains(19));
  EXPECT_FALSE(iv.Contains(20));
  EXPECT_TRUE(iv.Overlaps(Interval{19, 25}));
  EXPECT_FALSE(iv.Overlaps(Interval{20, 25}));
  EXPECT_TRUE(iv.Touches(Interval{20, 25}));
}

TEST(IntervalSetTest, PaperWorkedExample) {
  // e1(0,110), e2(70,30), e3(130,20), e4(90,30) -> (0,120) and (130,150).
  IntervalSet set;
  set.Add(0, 110);
  set.Add(70, 100);
  set.Add(130, 150);
  set.Add(90, 120);
  EXPECT_EQ(set.ToString(), "[0,120) [130,150)");
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.TotalLength(), 140);
}

TEST(IntervalSetTest, IgnoresEmptyIntervals) {
  IntervalSet set;
  set.Add(5, 5);
  set.Add(7, 3);
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSetTest, CoalescesTouchingIntervals) {
  IntervalSet set;
  set.Add(0, 10);
  set.Add(10, 20);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.ContainsRange(0, 20));
}

TEST(IntervalSetTest, KeepsGaps) {
  IntervalSet set;
  set.Add(0, 10);
  set.Add(11, 20);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_FALSE(set.Contains(10));
}

TEST(IntervalSetTest, AbsorbsMultipleSuccessors) {
  IntervalSet set;
  set.Add(0, 2);
  set.Add(4, 6);
  set.Add(8, 10);
  set.Add(1, 9);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.TotalLength(), 10);
}

TEST(IntervalSetTest, ContainsAndIntersects) {
  IntervalSet set;
  set.Add(10, 20);
  set.Add(30, 40);
  EXPECT_TRUE(set.Contains(15));
  EXPECT_FALSE(set.Contains(25));
  EXPECT_TRUE(set.ContainsRange(31, 39));
  EXPECT_FALSE(set.ContainsRange(15, 35));
  EXPECT_TRUE(set.Intersects(19, 31));
  EXPECT_FALSE(set.Intersects(20, 30));
  EXPECT_FALSE(set.Intersects(25, 25));
}

TEST(IntervalSetTest, UnionMergesSets) {
  IntervalSet a;
  a.Add(0, 10);
  IntervalSet b;
  b.Add(5, 15);
  b.Add(20, 25);
  a.Union(b);
  EXPECT_EQ(a.ToString(), "[0,15) [20,25)");
}

TEST(IntervalSetTest, RandomizedAgainstBruteForce) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    IntervalSet set;
    std::vector<bool> covered(200, false);
    for (int i = 0; i < 30; ++i) {
      const int64_t begin = rng.UniformInt(0, 180);
      const int64_t end = begin + rng.UniformInt(0, 19);
      set.Add(begin, end);
      for (int64_t x = begin; x < end; ++x) {
        covered[static_cast<size_t>(x)] = true;
      }
    }
    int64_t expected_length = 0;
    for (int x = 0; x < 200; ++x) {
      EXPECT_EQ(set.Contains(x), covered[static_cast<size_t>(x)])
          << "x=" << x << " trial=" << trial;
      expected_length += covered[static_cast<size_t>(x)] ? 1 : 0;
    }
    EXPECT_EQ(set.TotalLength(), expected_length);
    // Intervals must be disjoint, sorted, and non-touching.
    const std::vector<Interval> intervals = set.ToIntervals();
    for (size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GT(intervals[i].begin, intervals[i - 1].end);
    }
  }
}

// --------------------------------------------------------------- Strings --

TEST(StringsTest, StrSplitBasic) {
  const std::vector<std::string> pieces = StrSplit("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(pieces[3], "c");
}

TEST(StringsTest, StrSplitNoDelimiter) {
  const std::vector<std::string> pieces = StrSplit("abc", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "abc");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("PARAM [1-2]", "PARAM"));
  EXPECT_FALSE(StartsWith("PAR", "PARAM"));
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringsTest, ParseInt64) {
  int64_t value = 0;
  EXPECT_TRUE(ParseInt64("42", &value));
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(ParseInt64(" -17 ", &value));
  EXPECT_EQ(value, -17);
  EXPECT_FALSE(ParseInt64("4x", &value));
  EXPECT_FALSE(ParseInt64("", &value));
  EXPECT_FALSE(ParseInt64("3.5", &value));
}

TEST(StringsTest, ParseDouble) {
  double value = 0.0;
  EXPECT_TRUE(ParseDouble("3.25", &value));
  EXPECT_DOUBLE_EQ(value, 3.25);
  EXPECT_TRUE(ParseDouble("-2", &value));
  EXPECT_DOUBLE_EQ(value, -2.0);
  EXPECT_FALSE(ParseDouble("nope", &value));
  EXPECT_FALSE(ParseDouble("1.2.3", &value));
}

// --------------------------------------------------------------- Logging --

TEST(LoggingTest, SeverityThresholdRoundTrips) {
  const LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  SetMinLogSeverity(original);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ KONDO_CHECK_EQ(1, 2) << "boom"; }, "Check failed");
}

// -------------------------------------------------------------- Stopwatch --

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch stopwatch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GE(stopwatch.ElapsedSeconds(), 0.0);
  EXPECT_GE(stopwatch.ElapsedMicros(), 0);
  stopwatch.Reset();
  EXPECT_LT(stopwatch.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace kondo
