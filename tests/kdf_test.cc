#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <tuple>

#include "array/data_array.h"
#include "array/debloated_array.h"
#include "array/index_set.h"
#include "array/kdf_file.h"
#include "common/rng.h"

namespace kondo {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ------------------------------------------------------- element codecs --

TEST(ElementCodecTest, RoundTripsAllDTypes) {
  char buf[16];
  for (DType dtype : {DType::kInt32, DType::kInt64, DType::kFloat32,
                      DType::kFloat64, DType::kFloat128}) {
    EncodeElement(42.0, dtype, buf);
    EXPECT_DOUBLE_EQ(DecodeElement(buf, dtype), 42.0)
        << DTypeName(dtype);
  }
}

TEST(ElementCodecTest, Float64PrecisionPreserved) {
  char buf[16];
  EncodeElement(0.12345678901234567, DType::kFloat64, buf);
  EXPECT_DOUBLE_EQ(DecodeElement(buf, DType::kFloat64), 0.12345678901234567);
  EncodeElement(0.12345678901234567, DType::kFloat128, buf);
  EXPECT_DOUBLE_EQ(DecodeElement(buf, DType::kFloat128),
                   0.12345678901234567);
}

TEST(ElementCodecTest, IntegerTruncation) {
  char buf[16];
  EncodeElement(3.9, DType::kInt32, buf);
  EXPECT_DOUBLE_EQ(DecodeElement(buf, DType::kInt32), 3.0);
}

TEST(ElementCodecTest, DoubleWidthSpecialValuesRoundTripExactly) {
  // float64 and float128 store the full double bit pattern, so every
  // special value — infinities, signed zero, denormals, extremes — must
  // come back bit-exact, sign bit included.
  char buf[16];
  const double specials[] = {
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      0.0,
      -0.0,
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::lowest(),
      std::numeric_limits<double>::epsilon(),
  };
  for (DType dtype : {DType::kFloat64, DType::kFloat128}) {
    for (double value : specials) {
      EncodeElement(value, dtype, buf);
      const double back = DecodeElement(buf, dtype);
      EXPECT_EQ(back, value) << DTypeName(dtype) << " " << value;
      EXPECT_EQ(std::signbit(back), std::signbit(value))
          << DTypeName(dtype) << " " << value;
    }
    EncodeElement(std::nan(""), dtype, buf);
    EXPECT_TRUE(std::isnan(DecodeElement(buf, dtype))) << DTypeName(dtype);
  }
}

TEST(ElementCodecTest, Float32SpecialValuesRoundTripAtFloatWidth) {
  char buf[16];
  const float specials[] = {
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      0.0f,
      -0.0f,
      std::numeric_limits<float>::denorm_min(),  // ~1.4e-45, denormal.
      -std::numeric_limits<float>::denorm_min(),
      std::numeric_limits<float>::min(),
      std::numeric_limits<float>::max(),
      std::numeric_limits<float>::lowest(),
  };
  for (float value : specials) {
    EncodeElement(static_cast<double>(value), DType::kFloat32, buf);
    const double back = DecodeElement(buf, DType::kFloat32);
    EXPECT_EQ(back, static_cast<double>(value)) << value;
    EXPECT_EQ(std::signbit(back), std::signbit(static_cast<double>(value)))
        << value;
  }
  EncodeElement(std::nan(""), DType::kFloat32, buf);
  EXPECT_TRUE(std::isnan(DecodeElement(buf, DType::kFloat32)));
  // A double denormal below float range rounds to (positive) zero at the
  // 4-byte width rather than producing garbage.
  EncodeElement(std::numeric_limits<double>::denorm_min(), DType::kFloat32,
                buf);
  EXPECT_EQ(DecodeElement(buf, DType::kFloat32), 0.0);
}

TEST(ElementCodecTest, IntegerExtremesRoundTrip) {
  char buf[16];
  const double int32_extremes[] = {2147483647.0, -2147483648.0, -1.0, 0.0};
  for (double value : int32_extremes) {
    EncodeElement(value, DType::kInt32, buf);
    EXPECT_EQ(DecodeElement(buf, DType::kInt32), value) << value;
  }
  // +/- 2^53: the widest integers a double carries exactly.
  const double int64_extremes[] = {9007199254740992.0, -9007199254740992.0,
                                   -1.0, 0.0};
  for (double value : int64_extremes) {
    EncodeElement(value, DType::kInt64, buf);
    EXPECT_EQ(DecodeElement(buf, DType::kInt64), value) << value;
  }
  // Negative truncation is toward zero, matching static_cast.
  EncodeElement(-3.9, DType::kInt64, buf);
  EXPECT_EQ(DecodeElement(buf, DType::kInt64), -3.0);
}

// ------------------------------------------------------------- KDF files --

using KdfParam = std::tuple<DType, LayoutKind>;

class KdfRoundTripTest : public ::testing::TestWithParam<KdfParam> {
 protected:
  /// Per-instance temp path: ctest runs each parameterized instance as its
  /// own test process, so a shared name would race under `ctest -j`.
  std::string ParamPath(const std::string& stem) const {
    const auto& [dtype, layout_kind] = GetParam();
    return TempPath(stem + "_" + std::string(DTypeName(dtype)) + "_" +
                    std::to_string(static_cast<int>(layout_kind)) + ".kdf");
  }
};

TEST_P(KdfRoundTripTest, WriteReadAllRoundTrips) {
  const auto& [dtype, layout_kind] = GetParam();
  DataArray array(Shape{6, 7}, dtype);
  array.FillWith([](const Index& index) {
    return static_cast<double>(index[0] * 100 + index[1]);
  });
  const std::string path = ParamPath("roundtrip");
  ASSERT_TRUE(WriteKdfFile(path, array, layout_kind, {3, 4}).ok());

  StatusOr<KdfReader> reader = KdfReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->shape(), array.shape());
  EXPECT_EQ(reader->header().dtype, dtype);
  EXPECT_EQ(reader->header().layout_kind, layout_kind);

  StatusOr<DataArray> back = reader->ReadAll();
  ASSERT_TRUE(back.ok());
  array.shape().ForEachIndex([&](const Index& index) {
    EXPECT_DOUBLE_EQ(back->At(index), array.At(index)) << index;
  });
}

TEST_P(KdfRoundTripTest, ReadElementMatchesArray) {
  const auto& [dtype, layout_kind] = GetParam();
  DataArray array(Shape{5, 5}, dtype);
  array.FillWith([](const Index& index) {
    return static_cast<double>(index[0] + 10 * index[1]);
  });
  const std::string path = ParamPath("element");
  ASSERT_TRUE(WriteKdfFile(path, array, layout_kind, {2, 2}).ok());
  StatusOr<KdfReader> reader = KdfReader::Open(path);
  ASSERT_TRUE(reader.ok());
  array.shape().ForEachIndex([&](const Index& index) {
    StatusOr<double> value = reader->ReadElement(index);
    ASSERT_TRUE(value.ok());
    EXPECT_DOUBLE_EQ(*value, array.At(index)) << index;
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, KdfRoundTripTest,
    ::testing::Combine(::testing::Values(DType::kInt32, DType::kFloat64,
                                         DType::kFloat128),
                       ::testing::Values(LayoutKind::kRowMajor,
                                         LayoutKind::kChunked)));

TEST(KdfFileTest, ThreeDimensionalRoundTrip) {
  DataArray array(Shape{3, 4, 5}, DType::kFloat64);
  array.FillPattern(17);
  const std::string path = TempPath("threedee.kdf");
  ASSERT_TRUE(WriteKdfFile(path, array).ok());
  StatusOr<KdfReader> reader = KdfReader::Open(path);
  ASSERT_TRUE(reader.ok());
  StatusOr<double> value = reader->ReadElement(Index{2, 3, 4});
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(*value, array.At(Index{2, 3, 4}));
}

TEST(KdfFileTest, OpenMissingFileFails) {
  StatusOr<KdfReader> reader = KdfReader::Open(TempPath("nope.kdf"));
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);
}

TEST(KdfFileTest, RejectsBadMagic) {
  const std::string path = TempPath("bad.kdf");
  std::ofstream(path) << "not a kdf file at all";
  StatusOr<KdfReader> reader = KdfReader::Open(path);
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
}

TEST(KdfFileTest, RejectsTruncatedHeader) {
  const std::string path = TempPath("trunc.kdf");
  std::ofstream(path) << "KDF1";
  EXPECT_FALSE(KdfReader::Open(path).ok());
}

TEST(KdfFileTest, ReadElementOutOfBounds) {
  DataArray array(Shape{2, 2}, DType::kFloat64);
  const std::string path = TempPath("oob.kdf");
  ASSERT_TRUE(WriteKdfFile(path, array).ok());
  StatusOr<KdfReader> reader = KdfReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->ReadElement(Index{2, 0}).status().code(),
            StatusCode::kOutOfRange);
}

TEST(KdfFileTest, FileBytesMatchesHeaderPlusPayload) {
  DataArray array(Shape{4, 4}, DType::kFloat128);
  const std::string path = TempPath("size.kdf");
  ASSERT_TRUE(WriteKdfFile(path, array).ok());
  StatusOr<KdfReader> reader = KdfReader::Open(path);
  ASSERT_TRUE(reader.ok());
  // Header: 8 fixed + 2*8 dims; payload 16 elements * 16 bytes.
  EXPECT_EQ(reader->payload_offset(), 24);
  EXPECT_EQ(reader->FileBytes(), 24 + 256);
}

TEST(KdfFileTest, ReadRawShortReadAtEof) {
  DataArray array(Shape{2, 2}, DType::kFloat64);
  const std::string path = TempPath("raw.kdf");
  ASSERT_TRUE(WriteKdfFile(path, array).ok());
  StatusOr<KdfReader> reader = KdfReader::Open(path);
  ASSERT_TRUE(reader.ok());
  char buf[64];
  StatusOr<int64_t> n = reader->ReadRaw(reader->FileBytes() - 8, 64, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 8);
}

// ------------------------------------------------------- DebloatedArray --

DebloatedArray MakeCheckerboard(const Shape& shape, DataArray* array_out) {
  DataArray array(shape, DType::kFloat64);
  array.FillWith([&shape](const Index& index) {
    return static_cast<double>(shape.Linearize(index));
  });
  IndexSet retained(shape);
  shape.ForEachIndex([&retained](const Index& index) {
    int64_t sum = 0;
    for (int d = 0; d < index.rank(); ++d) {
      sum += index[d];
    }
    if (sum % 2 == 0) {
      retained.Insert(index);
    }
  });
  if (array_out != nullptr) {
    *array_out = array;
  }
  return DebloatedArray::FromDataArray(array, retained);
}

TEST(DebloatedArrayTest, RetainedValuesMatch) {
  DataArray array(Shape{1, 1}, DType::kFloat64);
  DebloatedArray debloated = MakeCheckerboard(Shape{8, 8}, &array);
  array.shape().ForEachIndex([&](const Index& index) {
    const int64_t sum = index[0] + index[1];
    StatusOr<double> value = debloated.At(index);
    if (sum % 2 == 0) {
      ASSERT_TRUE(value.ok()) << index;
      EXPECT_DOUBLE_EQ(*value, array.At(index));
      EXPECT_TRUE(debloated.IsRetained(index));
    } else {
      EXPECT_EQ(value.status().code(), StatusCode::kDataMissing) << index;
      EXPECT_FALSE(debloated.IsRetained(index));
    }
  });
}

TEST(DebloatedArrayTest, OutOfBoundsIsOutOfRangeNotMissing) {
  DebloatedArray debloated = MakeCheckerboard(Shape{4, 4}, nullptr);
  EXPECT_EQ(debloated.At(Index{4, 0}).status().code(),
            StatusCode::kOutOfRange);
}

TEST(DebloatedArrayTest, SizeAccounting) {
  DebloatedArray debloated = MakeCheckerboard(Shape{8, 8}, nullptr);
  EXPECT_EQ(debloated.retained_count(), 32);
  EXPECT_EQ(debloated.OriginalPayloadBytes(), 64 * 8);
  // Bitmap (1 word) + 32 packed values.
  EXPECT_EQ(debloated.DebloatedPayloadBytes(), 8 + 32 * 8);
  EXPECT_GT(debloated.SizeReductionFraction(), 0.4);
}

TEST(DebloatedArrayTest, EmptyRetentionIsAllMissing) {
  DataArray array(Shape{4, 4}, DType::kFloat64);
  DebloatedArray debloated =
      DebloatedArray::FromDataArray(array, IndexSet(array.shape()));
  EXPECT_EQ(debloated.retained_count(), 0);
  EXPECT_EQ(debloated.At(Index{0, 0}).status().code(),
            StatusCode::kDataMissing);
}

TEST(DebloatedArrayTest, FullRetentionKeepsEverything) {
  DataArray array(Shape{4, 4}, DType::kFloat64);
  array.FillPattern(3);
  IndexSet all(array.shape());
  array.shape().ForEachIndex([&all](const Index& index) { all.Insert(index); });
  DebloatedArray debloated = DebloatedArray::FromDataArray(array, all);
  EXPECT_EQ(debloated.retained_count(), 16);
  EXPECT_DOUBLE_EQ(*debloated.At(Index{3, 3}), array.At(Index{3, 3}));
  // Full retention is slightly larger than the original (bitmap overhead).
  EXPECT_LT(debloated.SizeReductionFraction(), 0.0);
}

TEST(DebloatedArrayTest, FileRoundTrip) {
  DataArray array(Shape{1, 1}, DType::kFloat64);
  DebloatedArray debloated = MakeCheckerboard(Shape{6, 6}, &array);
  const std::string path = TempPath("debloated.kdd");
  ASSERT_TRUE(debloated.WriteFile(path).ok());

  StatusOr<DebloatedArray> back = DebloatedArray::ReadFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->shape(), debloated.shape());
  EXPECT_EQ(back->retained_count(), debloated.retained_count());
  array.shape().ForEachIndex([&](const Index& index) {
    StatusOr<double> original = debloated.At(index);
    StatusOr<double> restored = back->At(index);
    EXPECT_EQ(original.ok(), restored.ok()) << index;
    if (original.ok()) {
      EXPECT_DOUBLE_EQ(*restored, *original);
    }
  });
}

TEST(DebloatedArrayTest, ReadFileRejectsGarbage) {
  const std::string path = TempPath("garbage.kdd");
  std::ofstream(path) << "garbage bytes here";
  EXPECT_FALSE(DebloatedArray::ReadFile(path).ok());
}

TEST(DebloatedArrayTest, RandomRetentionProperty) {
  Rng rng(21);
  for (int trial = 0; trial < 5; ++trial) {
    const Shape shape{9, 7};
    DataArray array(shape, DType::kFloat128);
    array.FillPattern(trial);
    IndexSet retained(shape);
    shape.ForEachIndex([&](const Index& index) {
      if (rng.Bernoulli(0.35)) {
        retained.Insert(index);
      }
    });
    DebloatedArray debloated = DebloatedArray::FromDataArray(array, retained);
    EXPECT_EQ(debloated.retained_count(),
              static_cast<int64_t>(retained.size()));
    shape.ForEachIndex([&](const Index& index) {
      if (retained.Contains(index)) {
        EXPECT_DOUBLE_EQ(*debloated.At(index), array.At(index));
      } else {
        EXPECT_FALSE(debloated.At(index).ok());
      }
    });
  }
}

}  // namespace
}  // namespace kondo
