#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "array/data_array.h"
#include "array/kdf_file.h"
#include "audit/auditor.h"
#include "audit/event.h"
#include "audit/event_store.h"
#include "audit/offset_mapper.h"
#include "audit/traced_file.h"
#include "common/rng.h"
#include "provenance/crc32.h"
#include "provenance/kel2_format.h"
#include "provenance/kel2_reader.h"
#include "provenance/kel2_writer.h"
#include "provenance/persist.h"
#include "provenance/provenance_query.h"
#include "provenance/varint.h"

namespace kondo {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Event MakeEvent(int64_t pid, int64_t file_id, EventType type, int64_t offset,
                int64_t size) {
  Event event;
  event.id = EventId{pid, file_id};
  event.type = type;
  event.offset = offset;
  event.size = size;
  return event;
}

bool SameEvent(const Event& a, const Event& b) {
  return a.id == b.id && a.type == b.type && a.offset == b.offset &&
         a.size == b.size;
}

void ExpectSameEvents(const std::vector<Event>& got,
                      const std::vector<Event>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_TRUE(SameEvent(got[i], want[i]))
        << "event " << i << ": got " << got[i] << " want " << want[i];
  }
}

// Event stream generators for the round-trip property tests: the three
// access patterns named in the acceptance criteria.

/// Near-sequential stencil sweeps: several runs, each scanning a window
/// with a fixed element width — the pattern KEL2's delta coding targets.
std::vector<Event> StencilStream(int64_t num_events, uint64_t seed) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(num_events));
  int64_t pid = 1;
  int64_t offset = 64;
  const int64_t width = 16;
  for (int64_t i = 0; i < num_events; ++i) {
    if (i % 4096 == 0) {
      ++pid;
      offset = rng.UniformInt(0, 1024);
      events.push_back(MakeEvent(pid, 1, EventType::kOpen, 0, 0));
      continue;
    }
    events.push_back(MakeEvent(pid, 1, EventType::kPread, offset, width));
    offset += width;
  }
  return events;
}

/// Uniformly random positioned reads over a large file.
std::vector<Event> UniformStream(int64_t num_events, uint64_t seed) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(num_events));
  for (int64_t i = 0; i < num_events; ++i) {
    events.push_back(MakeEvent(rng.UniformInt(1, 8), rng.UniformInt(1, 3),
                               EventType::kPread,
                               rng.UniformInt(0, 1 << 24),
                               rng.UniformInt(1, 4096)));
  }
  return events;
}

/// Random cluster centers with short sequential bursts inside each.
std::vector<Event> ClusteredStream(int64_t num_events, uint64_t seed) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(num_events));
  while (static_cast<int64_t>(events.size()) < num_events) {
    const int64_t center = rng.UniformInt(0, 1 << 22);
    const int64_t pid = rng.UniformInt(1, 4);
    const int64_t burst = rng.UniformInt(1, 64);
    int64_t offset = center;
    for (int64_t i = 0;
         i < burst && static_cast<int64_t>(events.size()) < num_events;
         ++i) {
      const int64_t size = rng.UniformInt(8, 128);
      events.push_back(MakeEvent(pid, 1, EventType::kRead, offset, size));
      offset += size;
    }
  }
  return events;
}

std::string WriteKel2(const std::string& name,
                      const std::vector<Event>& events,
                      int64_t events_per_block = 512) {
  const std::string path = TempPath(name);
  Kel2WriterOptions options;
  options.events_per_block = events_per_block;
  StatusOr<Kel2Writer> writer = Kel2Writer::Create(path, options);
  EXPECT_TRUE(writer.ok()) << writer.status();
  for (const Event& event : events) {
    EXPECT_TRUE(writer->Append(event).ok());
  }
  EXPECT_TRUE(writer->Close().ok());
  return path;
}

// ---------------------------------------------------------------- varint --

TEST(VarintTest, RoundTripBoundaryValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (1ull << 32) - 1,
                             1ull << 32,
                             std::numeric_limits<uint64_t>::max()};
  std::string buf;
  for (uint64_t v : values) {
    AppendVarint(v, &buf);
  }
  VarintReader reader(buf.data(), buf.size());
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(reader.Next(&got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(VarintTest, RoundTripRandomSigned) {
  Rng rng(7);
  std::string buf;
  std::vector<int64_t> values;
  for (int i = 0; i < 1000; ++i) {
    // Mix magnitudes so every varint length is exercised.
    const int shift = static_cast<int>(rng.UniformInt(0, 62));
    int64_t v = static_cast<int64_t>(rng.NextU64() >> shift);
    if (rng.Bernoulli(0.5)) {
      v = -v;
    }
    values.push_back(v);
    AppendSignedVarint(v, &buf);
  }
  values.push_back(std::numeric_limits<int64_t>::min());
  AppendSignedVarint(values.back(), &buf);
  values.push_back(std::numeric_limits<int64_t>::max());
  AppendSignedVarint(values.back(), &buf);

  VarintReader reader(buf.data(), buf.size());
  for (int64_t v : values) {
    int64_t got = 0;
    ASSERT_TRUE(reader.NextSigned(&got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(VarintTest, TruncatedInputFails) {
  std::string buf;
  AppendVarint(1ull << 40, &buf);
  VarintReader reader(buf.data(), buf.size() - 1);
  uint64_t value;
  EXPECT_FALSE(reader.Next(&value));
}

TEST(VarintTest, SmallMagnitudesStayShort) {
  std::string buf;
  AppendSignedVarint(-1, &buf);
  AppendSignedVarint(1, &buf);
  AppendSignedVarint(0, &buf);
  EXPECT_EQ(buf.size(), 3u);  // Zigzag keeps sign bits out of the way.
}

// ----------------------------------------------------------------- crc32 --

TEST(Crc32Test, KnownVector) {
  // The classic IEEE CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "kondo provenance block payload";
  uint32_t crc = 0;
  crc = Crc32Update(crc, data.data(), 10);
  crc = Crc32Update(crc, data.data() + 10, data.size() - 10);
  EXPECT_EQ(crc, Crc32(data.data(), data.size()));
}

// ------------------------------------------------------------ round trip --

TEST(Kel2RoundTripTest, EmptyStore) {
  const std::string path = WriteKel2("empty.kel2", {});
  StatusOr<Kel2Reader> reader = Kel2Reader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->NumBlocks(), 0);
  EXPECT_EQ(reader->NumEvents(), 0);
  StatusOr<std::vector<Event>> events = reader->ReadAll();
  ASSERT_TRUE(events.ok());
  EXPECT_TRUE(events->empty());
}

TEST(Kel2RoundTripTest, StencilStream) {
  const std::vector<Event> events = StencilStream(10000, 11);
  const std::string path = WriteKel2("stencil.kel2", events);
  StatusOr<Kel2Reader> reader = Kel2Reader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->NumEvents(), 10000);
  StatusOr<std::vector<Event>> got = reader->ReadAll();
  ASSERT_TRUE(got.ok()) << got.status();
  ExpectSameEvents(*got, events);
}

TEST(Kel2RoundTripTest, UniformStream) {
  const std::vector<Event> events = UniformStream(10000, 12);
  const std::string path = WriteKel2("uniform.kel2", events);
  StatusOr<Kel2Reader> reader = Kel2Reader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  StatusOr<std::vector<Event>> got = reader->ReadAll();
  ASSERT_TRUE(got.ok()) << got.status();
  ExpectSameEvents(*got, events);
}

TEST(Kel2RoundTripTest, ClusteredStream) {
  const std::vector<Event> events = ClusteredStream(10000, 13);
  const std::string path = WriteKel2("clustered.kel2", events);
  StatusOr<Kel2Reader> reader = Kel2Reader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  StatusOr<std::vector<Event>> got = reader->ReadAll();
  ASSERT_TRUE(got.ok()) << got.status();
  ExpectSameEvents(*got, events);
}

TEST(Kel2RoundTripTest, ManySeedsAndBlockSizes) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    for (int64_t block : {1, 3, 64, 1000}) {
      const std::vector<Event> events = UniformStream(257, seed);
      const std::string path = WriteKel2("many.kel2", events, block);
      StatusOr<Kel2Reader> reader = Kel2Reader::Open(path);
      ASSERT_TRUE(reader.ok()) << reader.status();
      StatusOr<std::vector<Event>> got = reader->ReadAll();
      ASSERT_TRUE(got.ok()) << got.status();
      ExpectSameEvents(*got, events);
    }
  }
}

TEST(Kel2RoundTripTest, PartialBlockSealedOnClose) {
  const std::vector<Event> events = StencilStream(700, 3);
  const std::string path = WriteKel2("partial.kel2", events, 512);
  StatusOr<Kel2Reader> reader = Kel2Reader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->NumBlocks(), 2);  // 512 + 188.
  EXPECT_EQ(reader->NumEvents(), 700);
}

TEST(Kel2RoundTripTest, NegativeOffsetsSurvive) {
  // Hostile but encodable: zigzag must carry negative fields unchanged.
  std::vector<Event> events;
  events.push_back(MakeEvent(-5, -9, EventType::kPread, -1000, 10));
  events.push_back(MakeEvent(5, 9, EventType::kRead, 1000, 10));
  const std::string path = WriteKel2("negative.kel2", events);
  StatusOr<Kel2Reader> reader = Kel2Reader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  StatusOr<std::vector<Event>> got = reader->ReadAll();
  ASSERT_TRUE(got.ok()) << got.status();
  ExpectSameEvents(*got, events);
}

TEST(Kel2RoundTripTest, StencilCompressesAtLeastThreeFold) {
  const std::vector<Event> events = StencilStream(20000, 4);
  const std::string kel2_path = WriteKel2("ratio.kel2", events);
  StatusOr<int64_t> kel2_bytes = FileSizeBytes(kel2_path);
  ASSERT_TRUE(kel2_bytes.ok());
  const int64_t kel1_bytes =
      8 + 40 * static_cast<int64_t>(events.size());
  EXPECT_GE(static_cast<double>(kel1_bytes) /
                static_cast<double>(*kel2_bytes),
            3.0);
}

// --------------------------------------------------------- crash + decay --

TEST(Kel2CrashTest, TornTrailingPayloadDropped) {
  const std::vector<Event> events = StencilStream(1024, 9);
  const std::string path = WriteKel2("torn.kel2", events, 256);
  StatusOr<int64_t> full = FileSizeBytes(path);
  ASSERT_TRUE(full.ok());
  // Chop into the last block's payload: the reader must drop exactly that
  // block and keep the first three.
  ASSERT_EQ(::truncate(path.c_str(), *full - 10), 0);
  StatusOr<Kel2Reader> reader = Kel2Reader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->NumBlocks(), 3);
  StatusOr<std::vector<Event>> got = reader->ReadAll();
  ASSERT_TRUE(got.ok()) << got.status();
  ExpectSameEvents(*got,
                   std::vector<Event>(events.begin(), events.begin() + 768));
}

TEST(Kel2CrashTest, TornTrailingDescriptorDropped) {
  const std::vector<Event> events = StencilStream(512, 10);
  const std::string path = WriteKel2("torn_desc.kel2", events, 256);
  // Append half a descriptor of garbage, as a crash between the descriptor
  // write and the payload write would leave.
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const char garbage[30] = {};
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);
  StatusOr<Kel2Reader> reader = Kel2Reader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->NumBlocks(), 2);
  EXPECT_EQ(reader->NumEvents(), 512);
}

TEST(Kel2CrashTest, CorruptedBlockDetectedByChecksum) {
  const std::vector<Event> events = UniformStream(1024, 21);
  const std::string path = WriteKel2("corrupt.kel2", events, 256);
  StatusOr<Kel2Reader> pristine = Kel2Reader::Open(path);
  ASSERT_TRUE(pristine.ok());
  ASSERT_EQ(pristine->NumBlocks(), 4);
  // Flip one payload byte in the middle of block 1.
  const Kel2BlockInfo& block = pristine->blocks()[1];
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, block.payload_pos + block.payload_bytes / 2,
                       SEEK_SET),
            0);
  const int original = std::fgetc(f);
  ASSERT_NE(original, EOF);
  ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
  std::fputc(original ^ 0x40, f);
  std::fclose(f);

  StatusOr<Kel2Reader> reader = Kel2Reader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  // Block 1 is poisoned; the others still decode.
  EXPECT_TRUE(reader->DecodeBlock(0).ok());
  StatusOr<std::vector<Event>> bad = reader->DecodeBlock(1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(bad.status().message().find("checksum"), std::string::npos);
  EXPECT_TRUE(reader->DecodeBlock(2).ok());
  // And a full scan reports the corruption instead of mis-decoding.
  EXPECT_EQ(reader->ReadAll().status().code(), StatusCode::kDataLoss);
}

TEST(Kel2CrashTest, NotAKel2StoreRejected) {
  const std::string path = TempPath("junk.kel2");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("JUNKJUNK", 1, 8, f);
  std::fclose(f);
  EXPECT_EQ(Kel2Reader::Open(path).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(Kel2Reader::Open(TempPath("absent.kel2")).status().code(),
            StatusCode::kNotFound);
}

TEST(Kel2CrashTest, AppendAfterCloseFails) {
  const std::string path = TempPath("closed.kel2");
  StatusOr<Kel2Writer> writer = Kel2Writer::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Close().ok());
  const Status status =
      writer->Append(MakeEvent(1, 1, EventType::kRead, 0, 1));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find(path), std::string::npos);
}

// ----------------------------------------------------------------- query --

TEST(ProvenanceQueryTest, IntervalQueryMatchesBruteForce) {
  const std::vector<Event> events = ClusteredStream(5000, 31);
  const std::string path = WriteKel2("query.kel2", events, 128);
  StatusOr<Kel2Reader> reader = Kel2Reader::Open(path);
  ASSERT_TRUE(reader.ok());
  ProvenanceQuery query(&*reader);

  Rng rng(32);
  for (int trial = 0; trial < 20; ++trial) {
    const int64_t begin = rng.UniformInt(0, 1 << 22);
    const int64_t end = begin + rng.UniformInt(1, 1 << 16);
    StatusOr<std::vector<Event>> got =
        query.EventsOverlapping(1, begin, end);
    ASSERT_TRUE(got.ok()) << got.status();
    std::vector<Event> want;
    for (const Event& event : events) {
      if (event.IsDataAccess() && event.id.file_id == 1 &&
          event.offset < end && begin < event.offset + event.size) {
        want.push_back(event);
      }
    }
    ExpectSameEvents(*got, want);
  }
}

TEST(ProvenanceQueryTest, BlockSkippingDecodesFewerBlocksThanFullScan) {
  // Two far-apart clusters: a query inside one cannot touch the other's
  // blocks.
  std::vector<Event> events;
  for (int64_t i = 0; i < 2048; ++i) {
    events.push_back(MakeEvent(1, 1, EventType::kPread, i * 16, 16));
  }
  for (int64_t i = 0; i < 2048; ++i) {
    events.push_back(
        MakeEvent(2, 1, EventType::kPread, (1 << 30) + i * 16, 16));
  }
  const std::string path = WriteKel2("skip.kel2", events, 256);
  StatusOr<Kel2Reader> reader = Kel2Reader::Open(path);
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(reader->NumBlocks(), 16);

  ProvenanceQuery query(&*reader);
  StatusOr<std::vector<Event>> got =
      query.EventsOverlapping(1, 0, 1024);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 64u);
  EXPECT_EQ(query.stats().blocks_considered, 16);
  EXPECT_EQ(query.stats().blocks_decoded, 1);
  EXPECT_EQ(query.stats().blocks_skipped, 15);
}

TEST(ProvenanceQueryTest, DecodeMemoServesRepeatedQueries) {
  const std::vector<Event> events = StencilStream(2000, 5);
  const std::string path = WriteKel2("memo.kel2", events, 128);
  StatusOr<Kel2Reader> reader = Kel2Reader::Open(path);
  ASSERT_TRUE(reader.ok());
  ProvenanceQuery query(&*reader);
  ASSERT_TRUE(query.EventsOverlapping(1, 0, 1 << 20).ok());
  const int64_t decoded_once = query.stats().blocks_decoded;
  ASSERT_TRUE(query.EventsOverlapping(1, 0, 1 << 20).ok());
  EXPECT_EQ(query.stats().blocks_decoded, decoded_once);
  EXPECT_GT(query.stats().block_cache_hits, 0);
}

TEST(ProvenanceQueryTest, RunsTouchingAndPerRunCoverage) {
  std::vector<Event> events;
  events.push_back(MakeEvent(1, 1, EventType::kRead, 0, 110));
  events.push_back(MakeEvent(2, 1, EventType::kRead, 70, 30));
  events.push_back(MakeEvent(1, 1, EventType::kRead, 130, 20));
  events.push_back(MakeEvent(1, 1, EventType::kRead, 90, 30));
  events.push_back(MakeEvent(3, 2, EventType::kRead, 0, 50));
  const std::string path = WriteKel2("runs.kel2", events, 2);
  StatusOr<Kel2Reader> reader = Kel2Reader::Open(path);
  ASSERT_TRUE(reader.ok());
  ProvenanceQuery query(&*reader);

  StatusOr<std::vector<int64_t>> runs = query.RunsTouching(1, 60, 80);
  ASSERT_TRUE(runs.ok());
  EXPECT_EQ(*runs, (std::vector<int64_t>{1, 2}));

  runs = query.RunsTouching(1, 125, 128);
  ASSERT_TRUE(runs.ok());
  EXPECT_TRUE(runs->empty());

  // The paper's worked example: merged access ranges [0,120) and [130,150).
  StatusOr<IntervalSet> ranges = query.AccessedRanges(1);
  ASSERT_TRUE(ranges.ok());
  EXPECT_EQ(ranges->ToString(), "[0,120) [130,150)");

  StatusOr<std::map<int64_t, int64_t>> coverage = query.PerRunCoverage(1);
  ASSERT_TRUE(coverage.ok());
  ASSERT_EQ(coverage->size(), 2u);
  EXPECT_EQ((*coverage)[1], 140);  // [0,120) merged + [130,150).
  EXPECT_EQ((*coverage)[2], 30);

  StatusOr<IntervalSet> run1 = query.AccessedRangesForRun(1, 1);
  ASSERT_TRUE(run1.ok());
  EXPECT_EQ(run1->ToString(), "[0,120) [130,150)");
}

TEST(ProvenanceQueryTest, CoverageHistogram) {
  std::vector<Event> events;
  events.push_back(MakeEvent(1, 1, EventType::kPread, 0, 100));
  events.push_back(MakeEvent(1, 1, EventType::kPread, 250, 100));
  const std::string path = WriteKel2("hist.kel2", events);
  StatusOr<Kel2Reader> reader = Kel2Reader::Open(path);
  ASSERT_TRUE(reader.ok());
  ProvenanceQuery query(&*reader);
  StatusOr<std::vector<int64_t>> histogram = query.CoverageHistogram(1, 100);
  ASSERT_TRUE(histogram.ok()) << histogram.status();
  EXPECT_EQ(*histogram, (std::vector<int64_t>{100, 0, 50, 50}));
  EXPECT_FALSE(query.CoverageHistogram(1, 0).ok());
}

TEST(ProvenanceQueryTest, AccessedIndicesFeedTheCarver) {
  // End-to-end: audit a stencil-ish read pattern, persist to KEL2, query
  // the store, and map the ranges back to element indices.
  const std::string data_path = TempPath("prov_data.kdf");
  DataArray array(Shape({32}), DType::kFloat64);
  array.FillPattern(1);
  ASSERT_TRUE(WriteKdfFile(data_path, array).ok());

  const std::string store_path = TempPath("prov_audit.kel2");
  StatusOr<AuditReport> report = RunAudited(
      data_path, /*pid=*/7,
      [](TracedFile& file) -> Status {
        for (int64_t i = 4; i < 12; ++i) {
          KONDO_RETURN_IF_ERROR(file.ReadElement(Index({i})).status());
        }
        return OkStatus();
      },
      MakeKel2Persister(store_path));
  ASSERT_TRUE(report.ok()) << report.status();

  StatusOr<Kel2Reader> reader = Kel2Reader::Open(store_path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->NumEvents(), report->num_events);
  ProvenanceQuery query(&*reader);

  StatusOr<KdfReader> kdf = KdfReader::Open(data_path);
  ASSERT_TRUE(kdf.ok());
  OffsetMapper mapper(&kdf->layout(), kdf->payload_offset());
  StatusOr<IndexSet> indices = query.AccessedIndices(1, mapper);
  ASSERT_TRUE(indices.ok());
  EXPECT_EQ(indices->size(), report->accessed_indices.size());
  for (int64_t i = 4; i < 12; ++i) {
    EXPECT_TRUE(indices->Contains(Index({i})));
  }
  EXPECT_FALSE(indices->Contains(Index({3})));
}

// --------------------------------------------------- persist + compaction --

TEST(PersistTest, Kel1PersisterWritesReplayableStore) {
  const std::string data_path = TempPath("persist_data.kdf");
  DataArray array(Shape({16}), DType::kFloat64);
  array.FillPattern(1);
  ASSERT_TRUE(WriteKdfFile(data_path, array).ok());
  const std::string store_path = TempPath("persist.kel");
  StatusOr<AuditReport> report = RunAudited(
      data_path, /*pid=*/3,
      [](TracedFile& file) -> Status {
        return file.ReadElement(Index({2})).status();
      },
      MakeKel1Persister(store_path));
  ASSERT_TRUE(report.ok()) << report.status();
  StatusOr<std::vector<Event>> events = ReadEventStore(store_path);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(static_cast<int64_t>(events->size()), report->num_events);
}

TEST(PersistTest, CompactKel1ToKel2PreservesEvents) {
  const std::vector<Event> events = ClusteredStream(3000, 17);
  const std::string kel1_path = TempPath("compact_in.kel");
  {
    StatusOr<EventStoreWriter> writer = EventStoreWriter::Create(kel1_path);
    ASSERT_TRUE(writer.ok());
    for (const Event& event : events) {
      ASSERT_TRUE(writer->Append(event).ok());
    }
    ASSERT_TRUE(writer->Close().ok());
  }
  const std::string kel2_path = TempPath("compact_out.kel2");
  StatusOr<CompactStats> stats = CompactLineageStore(kel1_path, kel2_path);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->events, 3000);
  EXPECT_GT(stats->Ratio(), 1.0);

  StatusOr<std::vector<Event>> got = ReadLineageStore(kel2_path);
  ASSERT_TRUE(got.ok());
  ExpectSameEvents(*got, events);
}

TEST(PersistTest, ReadLineageStoreDispatchesOnMagic) {
  const std::vector<Event> events = StencilStream(100, 2);
  const std::string kel1_path = TempPath("dispatch.kel");
  {
    StatusOr<EventStoreWriter> writer = EventStoreWriter::Create(kel1_path);
    ASSERT_TRUE(writer.ok());
    for (const Event& event : events) {
      ASSERT_TRUE(writer->Append(event).ok());
    }
  }
  const std::string kel2_path = WriteKel2("dispatch.kel2", events);
  EXPECT_FALSE(IsKel2Store(kel1_path));
  EXPECT_TRUE(IsKel2Store(kel2_path));

  StatusOr<std::vector<Event>> kel1_events = ReadLineageStore(kel1_path);
  StatusOr<std::vector<Event>> kel2_events = ReadLineageStore(kel2_path);
  ASSERT_TRUE(kel1_events.ok());
  ASSERT_TRUE(kel2_events.ok());
  ExpectSameEvents(*kel1_events, events);
  ExpectSameEvents(*kel2_events, events);

  // Either store replays into an identical EventLog.
  EventLog log1, log2;
  ASSERT_TRUE(ReplayLineageStore(kel1_path, &log1).ok());
  ASSERT_TRUE(ReplayLineageStore(kel2_path, &log2).ok());
  EXPECT_EQ(log1.NumEvents(), log2.NumEvents());
  EXPECT_EQ(log1.AccessedRanges(1).ToString(),
            log2.AccessedRanges(1).ToString());
}

TEST(PersistTest, RejectsNonPositiveBlockSize) {
  Kel2WriterOptions options;
  options.events_per_block = 0;
  EXPECT_EQ(Kel2Writer::Create(TempPath("badopts.kel2"), options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace kondo
