// Fixture: real violations silenced by well-formed suppression directives.
// lint_test.cc asserts zero findings and a suppressed count of 2.
#include <unordered_map>

namespace kondo_fixture {

long Stamp() {
  return time(nullptr);  // kondo-lint: allow(R1) fixture: timing-only stat
}

int Sum(const std::unordered_map<int, int>& hist) {
  int sum = 0;
  // kondo-lint: allow(R2) fixture: pure reduction, order-insensitive
  for (const auto& entry : hist) {
    sum += entry.second;
  }
  return sum;
}

}  // namespace kondo_fixture
