// Fixture: a directive that parses as kondo-lint but is not a well-formed
// allow(...) — reported as rule LINT and never honoured as a suppression.
namespace kondo_fixture {

// kondo-lint: allow() forgot the rule list -- line 5: LINT
int Answer() { return 42; }

}  // namespace kondo_fixture
