// Fixture: the clean counterpart of r4_bad.cc — the mutex-protected fields
// carry KONDO_GUARDED_BY annotations, so clang's -Wthread-safety analysis
// can verify the locking discipline at compile time.
#include <vector>

#define KONDO_GUARDED_BY(x)
#define KONDO_EXCLUDES(...)

namespace kondo_fixture {

class Mutex {};

class ResultQueue {
 public:
  void Push(int value) KONDO_EXCLUDES(mu_);
  int Pop() KONDO_EXCLUDES(mu_);

 private:
  Mutex mu_;
  std::vector<int> items_ KONDO_GUARDED_BY(mu_);
};

}  // namespace kondo_fixture
