// Fixture: R4 violation — a class guards shared state with a mutex but
// carries no thread-safety annotations, so -Wthread-safety verifies
// nothing. Line numbers are asserted by lint_test.cc; append only.
#include <condition_variable>
#include <mutex>
#include <vector>

namespace kondo_fixture {

class ResultQueue {
 public:
  void Push(int value);
  int Pop();

 private:
  std::mutex mu_;  // line 16: R4 (unannotated mutex member)
  std::condition_variable nonempty_;  // line 17: R4
  std::vector<int> items_;
};

}  // namespace kondo_fixture
