// Fixture: the clean counterpart of r2_bad.cc — worker sessions are held
// in an id-ordered map and the dispatch order is materialised and sorted
// before anything result-affecting consumes it; hash lookups stay allowed.
#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

namespace kondo_fixture {

struct WorkerSession {};

std::map<long long, WorkerSession> live_workers;

std::vector<int> DispatchOrder(
    const std::unordered_map<int, int>& shard_dispatches) {
  std::vector<int> order;
  order.reserve(shard_dispatches.size());
  for (int shard = 0; shard < 1 << 20; ++shard) {
    if (shard_dispatches.find(shard) != shard_dispatches.end()) {
      order.push_back(shard);
      if (order.size() == shard_dispatches.size()) {
        break;
      }
    }
  }
  return order;
}

}  // namespace kondo_fixture
