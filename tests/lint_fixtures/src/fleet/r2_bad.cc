// Fixture: R2 violations in the fleet mirror — a coordinator keying live
// worker sessions by pointer (flagged unconditionally), and dispatch-order
// iteration over an unordered shard map in a determinism-critical module.
// Line numbers are asserted by lint_test.cc.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace kondo_fixture {

struct WorkerSession {};

// line 15: R2 (pointer-keyed unordered container)
std::unordered_set<WorkerSession*> live_workers;

std::vector<int> DispatchOrder(
    const std::unordered_map<int, int>& shard_dispatches) {
  std::vector<int> order;
  // line 21: R2 (unordered iteration decides dispatch order)
  for (const auto& entry : shard_dispatches) {
    order.push_back(entry.first);
  }
  return order;
}

}  // namespace kondo_fixture
