// Fixture: nondeterminism APIs and unordered iteration OUTSIDE the
// determinism-critical modules. R1 and R2(b) are scoped to critical
// modules, so this file must produce zero findings.
#include <unordered_map>

namespace kondo_fixture {

long UptimeSeconds() {
  return time(nullptr);  // Fine here: src/util is not critical.
}

int JitterSource() {
  return rand();  // Fine here too.
}

int CountAll(const std::unordered_map<int, int>& hist) {
  int n = 0;
  for (const auto& entry : hist) {
    n += entry.second;
  }
  return n;
}

}  // namespace kondo_fixture
