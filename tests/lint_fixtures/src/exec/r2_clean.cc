// Fixture: the clean counterpart of r2_bad.cc — the unordered container is
// materialised into a sorted vector before any result-affecting iteration,
// and lookups (which are order-free) stay on the hash table.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

namespace kondo_fixture {

std::vector<std::string> SerializeCounts(
    const std::unordered_map<std::string, int>& counts) {
  std::vector<std::pair<std::string, int>> sorted(counts.begin(),
                                                  counts.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::string> lines;
  for (const auto& entry : sorted) {
    lines.push_back(entry.first + ":" + std::to_string(entry.second));
  }
  return lines;
}

bool Known(const std::unordered_map<std::string, int>& counts,
           const std::string& key) {
  return counts.find(key) != counts.end();
}

}  // namespace kondo_fixture
