// Fixture: R2 violations — unordered iteration in a determinism-critical
// module (src/exec mirror), plus a pointer-keyed container (flagged
// unconditionally). Line numbers are asserted by lint_test.cc.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace kondo_fixture {

struct Task {};

// line 14: R2 (pointer-keyed unordered container)
std::unordered_set<Task*> live_tasks;

std::vector<std::string> SerializeCounts(
    const std::unordered_map<std::string, int>& counts) {
  std::vector<std::string> lines;
  for (const auto& entry : counts) {  // line 19: R2 (unordered iteration)
    lines.push_back(entry.first + ":" + std::to_string(entry.second));
  }
  return lines;
}

}  // namespace kondo_fixture
