// Fixture: the clean counterpart of r6_bad.cc — every wire-decoded
// length is compared against the cursor's remaining bytes before it
// reaches an allocation, and the one deliberately unchecked resize
// carries a justified allow(R6).
#include <cstdint>
#include <vector>

namespace kondo_fixture {

struct WireCursor {
  bool ReadU32(uint32_t* v);
  unsigned long remaining() const;
};

struct EventFrame {
  std::vector<double> values;
  std::vector<uint8_t> flags;
};

bool DecodeEventFrame(WireCursor& cur, EventFrame* out) {
  uint32_t count = 0;
  cur.ReadU32(&count);
  if (count > cur.remaining() / 8) {
    return false;
  }
  out->values.resize(count);
  uint32_t flag_count = 0;
  cur.ReadU32(&flag_count);
  // kondo-lint: allow(R6) the frame ceiling upstream bounds this count
  out->flags.resize(flag_count);
  return true;
}

}  // namespace kondo_fixture
