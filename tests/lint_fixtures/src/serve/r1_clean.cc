// Fixture: the clean counterpart of serve/r1_bad.cc — session identity is
// a monotonic counter minted by the daemon, and elapsed time comes from
// steady_clock, which R1 allows (it measures duration, not wall time).
#include <chrono>
#include <cstdint>

namespace kondo_fixture {

struct SessionCounter {
  int64_t next = 1;
  int64_t Mint() { return next++; }
};

int64_t ElapsedMicros(std::chrono::steady_clock::time_point start) {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(now - start)
      .count();
}

// "system_clock" in a comment — or "getpid" in a string literal — must
// never trigger R1.
const char* kDoc = "never read system_clock or getpid() in serve code";

}  // namespace kondo_fixture
