// Fixture: R5 violation — a seeded two-mutex lock-order cycle. Credit
// nests mu_b_ inside mu_a_ while Debit nests mu_a_ inside mu_b_; two
// threads interleaving these paths deadlock. lint_test.cc asserts the
// anchor line of the first nested acquisition below and the witness-path
// text naming both sites; append only.
#include "common/thread_annotations.h"

namespace kondo_fixture {

class ResultLedger {
 public:
  void Credit() {
    MutexLock ledger(mu_a_);
    MutexLock journal(mu_b_);  // line 14: acquires mu_b_ holding mu_a_
    ++balance_;
  }

  void Debit() {
    MutexLock journal(mu_b_);
    MutexLock ledger(mu_a_);  // line 20: acquires mu_a_ holding mu_b_
    --balance_;
  }

 private:
  Mutex mu_a_;
  Mutex mu_b_;
  long balance_ KONDO_GUARDED_BY(mu_a_) = 0;
};

}  // namespace kondo_fixture
