// Fixture: R6 violations — lengths decoded off the wire reaching
// allocation before any bounds comparison. A hostile 32-bit count here
// commands a resize() and a new[] orders of magnitude larger than the
// frame that carried it. lint_test.cc asserts both sink lines and the
// witness text naming the tainting read; append only.
#include <cstdint>
#include <vector>

namespace kondo_fixture {

struct WireCursor {
  bool ReadU32(uint32_t* v);
  unsigned long remaining() const;
};

struct EventFrame {
  std::vector<double> values;
};

bool DecodeEventFrame(WireCursor& cur, EventFrame* out) {
  uint32_t count = 0;
  cur.ReadU32(&count);
  out->values.resize(count);  // line 23: unchecked wire length
  return true;
}

double* AllocScratch(WireCursor& cur) {
  uint32_t extent = 0;
  cur.ReadU32(&extent);
  return new double[extent];  // line 30: unchecked new[] extent
}

}  // namespace kondo_fixture
