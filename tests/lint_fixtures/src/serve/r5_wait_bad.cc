// Fixture: R5 violation — CondVar::Wait reached while a second mutex is
// held. Drain blocks on cv_ with both admit_mu_ and mu_ held: Wait
// atomically releases only mu_, so a producer that needs admit_mu_ to
// make progress can never deliver the notify. lint_test.cc asserts the
// Wait line below; append only.
#include "common/thread_annotations.h"

namespace kondo_fixture {

class DrainGate {
 public:
  void Drain() {
    MutexLock admit(admit_mu_);
    MutexLock lock(mu_);
    while (pending_ > 0) {
      cv_.Wait(mu_);  // line 16: waits with admit_mu_ still held
    }
  }

 private:
  Mutex admit_mu_;
  Mutex mu_;
  CondVar cv_;
  long pending_ KONDO_GUARDED_BY(mu_) = 0;
};

}  // namespace kondo_fixture
