// Fixture: the clean counterpart of r5_cycle_bad.cc and r5_wait_bad.cc —
// every function nests the mutexes in one global order (mu_a_ before
// mu_b_), the plain wait holds only the mutex it releases, and the one
// deliberate wait-while-holding carries a justified allow(R5).
#include "common/thread_annotations.h"

namespace kondo_fixture {

class OrderedLedger {
 public:
  void Credit() {
    MutexLock a(mu_a_);
    MutexLock b(mu_b_);
    ++balance_;
  }

  void Debit() {
    MutexLock a(mu_a_);
    MutexLock b(mu_b_);
    --balance_;
  }

  void Park() {
    MutexLock b(mu_b_);
    while (balance_ > 0) {
      cv_.Wait(mu_b_);
    }
  }

  void ParkNested() {
    MutexLock a(mu_a_);
    MutexLock b(mu_b_);
    // kondo-lint: allow(R5) the notifier takes mu_b_ only, never mu_a_
    cv_.Wait(mu_b_);
  }

 private:
  Mutex mu_a_;
  Mutex mu_b_;
  CondVar cv_;
  long balance_ KONDO_GUARDED_BY(mu_b_) = 0;
};

}  // namespace kondo_fixture
