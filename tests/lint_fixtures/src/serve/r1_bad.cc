// Fixture: R1 violations — nondeterminism APIs inside the serve daemon
// (src/serve mirror). Session stamps and identities must come from the
// daemon's own counters, never the host. Line numbers are asserted by
// lint_test.cc; append only.
#include <chrono>

namespace kondo_fixture {

long SessionStamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();  // 10: R1
}

int SessionOwnerPid() {
  return getpid();  // line 14: R1 (process identity as data)
}

}  // namespace kondo_fixture
