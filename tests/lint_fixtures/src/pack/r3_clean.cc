// Fixture: the clean counterpart of r3_bad.cc — every pack writer status
// is propagated or branched on, so a dropped chunk can never vanish
// silently from the package.
namespace kondo_fixture {

struct Status {
  bool ok() const { return code == 0; }
  int code = 0;
};

struct Chunk {};
struct PackWriter {
  Status Append(const Chunk&) { return {}; }
  Status Flush() { return {}; }
};

Status WriteChunk(PackWriter& writer, const Chunk& chunk) {
  Status append_status = writer.Append(chunk);
  if (!append_status.ok()) {
    return append_status;
  }
  return writer.Flush();
}

}  // namespace kondo_fixture
