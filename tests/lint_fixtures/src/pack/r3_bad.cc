// Fixture: R3 violations — pack writer chunk statuses dropped. Line
// numbers are asserted by lint_test.cc; append only.
#include <tuple>

namespace kondo_fixture {

struct Chunk {};
struct PackWriter {
  int Append(const Chunk&) { return 0; }
  int Flush() { return 0; }
};

void DropChunkStatuses(PackWriter& writer, const Chunk& chunk) {
  writer.Append(chunk);  // line 14: R3 (bare discard on writer receiver)
  (void)writer.Flush();  // line 15: R3 ((void) cast)
}

}  // namespace kondo_fixture
