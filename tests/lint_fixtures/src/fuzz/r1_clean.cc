// Fixture: the clean counterpart of r1_bad.cc — randomness flows from an
// explicitly seeded campaign stream, so replay is bit-identical.
#include <cstdint>

namespace kondo_fixture {

struct Rng {
  explicit Rng(uint64_t seed) : state(seed) {}
  uint64_t Next() { return state = state * 6364136223846793005ULL + 1442695040888963407ULL; }
  uint64_t state;
};

uint64_t SampleSeed(uint64_t campaign_seed) {
  Rng rng(campaign_seed);
  return rng.Next();
}

// Mentioning rand() or std::random_device in a comment — or "rand" in a
// string literal — must never trigger R1.
const char* kDoc = "never call rand() or std::random_device here";

}  // namespace kondo_fixture
