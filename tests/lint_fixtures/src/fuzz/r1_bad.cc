// Fixture: R1 violations — nondeterminism APIs inside a determinism-
// critical module (src/fuzz mirror). Line numbers are asserted by
// lint_test.cc; append only.
#include <random>

namespace kondo_fixture {

int SampleSeed() {
  std::random_device entropy;  // line 9: R1 (hardware entropy)
  return static_cast<int>(entropy());
}

long WallClockSeed() {
  return time(nullptr);  // line 14: R1 (wall clock)
}

int LegacyNoise() {
  return rand();  // line 18: R1 (seed-free C PRNG)
}

}  // namespace kondo_fixture
