// Fixture: R3 violations — IO writer statuses dropped in three ways. Line
// numbers are asserted by lint_test.cc; append only.
#include <tuple>

namespace kondo_fixture {

struct Event {};
struct Writer {
  int Append(const Event&) { return 0; }
  int Flush() { return 0; }
  int Close() { return 0; }
};

void DropAll(Writer& writer, const Event& ev) {
  (void)writer.Close();  // line 15: R3 ((void) cast)
  writer.Append(ev);  // line 16: R3 (bare discard on writer receiver)
  std::ignore = writer.Flush();  // line 17: R3 (std::ignore)
}

}  // namespace kondo_fixture
