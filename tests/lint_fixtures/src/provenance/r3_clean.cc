// Fixture: the clean counterpart of r3_bad.cc — every writer status is
// propagated or branched on, so a short write can never vanish silently.
namespace kondo_fixture {

struct Status {
  bool ok() const { return code == 0; }
  int code = 0;
};

struct Event {};
struct Writer {
  Status Append(const Event&) { return {}; }
  Status Flush() { return {}; }
  Status Close() { return {}; }
};

Status WriteAll(Writer& writer, const Event& ev) {
  Status append_status = writer.Append(ev);
  if (!append_status.ok()) {
    return append_status;
  }
  Status flush_status = writer.Flush();
  if (!flush_status.ok()) {
    return flush_status;
  }
  return writer.Close();
}

}  // namespace kondo_fixture
