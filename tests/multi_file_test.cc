// Tests for the multi-file generalization (footnote 1 / Section VI).

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/multi_kondo.h"
#include "workloads/multi_file_program.h"

namespace kondo {
namespace {

TEST(StormTrackProgramTest, DeclaresTwoFiles) {
  StormTrackProgram program(64, 16);
  EXPECT_EQ(program.num_files(), 2);
  EXPECT_EQ(program.file_name(0), "terrain");
  EXPECT_EQ(program.file_name(1), "atmosphere");
  EXPECT_EQ(program.file_shape(0), (Shape{64, 64}));
  EXPECT_EQ(program.file_shape(1), (Shape{32, 32, 16}));
}

TEST(StormTrackProgramTest, RunTouchesBothFiles) {
  StormTrackProgram program(64, 16);
  const MultiIndexSets sets = program.AccessSets({2.0, 10.0});
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_FALSE(sets[0].empty());
  EXPECT_FALSE(sets[1].empty());
  // Terrain track: diagonal from (2, 10).
  EXPECT_TRUE(sets[0].Contains(Index{2, 10}));
  EXPECT_TRUE(sets[0].Contains(Index{3, 11}));
  // Atmosphere column above the entry point.
  EXPECT_TRUE(sets[1].Contains(Index{1, 5, 0}));
  EXPECT_TRUE(sets[1].Contains(Index{1, 5, 15}));
}

TEST(StormTrackProgramTest, GuardRejectsUnsupportedEntries) {
  StormTrackProgram program(64, 16);
  const MultiIndexSets sets = program.AccessSets({10.0, 2.0});  // x0 > y0.
  EXPECT_TRUE(sets[0].empty());
  EXPECT_TRUE(sets[1].empty());
}

TEST(StormTrackProgramTest, AtmosphereIsReadEveryOtherStep) {
  StormTrackProgram program(64, 16);
  const MultiIndexSets sets = program.AccessSets({0.0, 0.0});
  // Track has 64 cells; columns at even steps over a coarser grid. The
  // track (k, k) maps to atmosphere (k/2, k/2): steps 0,2,4,... give
  // distinct columns (0,0), (1,1), ..., (31,31).
  EXPECT_EQ(sets[0].size(), 64u);
  EXPECT_EQ(sets[1].size(), static_cast<size_t>(32 * 16));
}

TEST(StormTrackProgramTest, AccessSetsWithinGroundTruths) {
  StormTrackProgram program(32, 8);
  const MultiIndexSets truths = program.GroundTruths();
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const ParamValue v = program.param_space().Sample(rng);
    const MultiIndexSets sets = program.AccessSets(v);
    EXPECT_TRUE(sets[0].IsSubsetOf(truths[0]));
    EXPECT_TRUE(sets[1].IsSubsetOf(truths[1]));
  }
}

TEST(MultiKondoTest, CarvesEachFileIndependently) {
  StormTrackProgram program(64, 16);
  KondoConfig config;
  config.rng_seed = 3;
  const MultiKondoResult result = RunMultiFileKondo(program, config);
  ASSERT_EQ(result.per_file_approx.size(), 2u);

  const MultiIndexSets truths = program.GroundTruths();
  const AccuracyMetrics terrain =
      ComputeAccuracy(truths[0], result.per_file_approx[0]);
  const AccuracyMetrics atmosphere =
      ComputeAccuracy(truths[1], result.per_file_approx[1]);
  EXPECT_GT(terrain.recall, 0.9);
  EXPECT_GT(atmosphere.recall, 0.9);
  EXPECT_GT(terrain.precision, 0.5);
  EXPECT_GT(atmosphere.precision, 0.9);
}

TEST(MultiKondoTest, DiscoveredSubsetsAreWithinApprox) {
  StormTrackProgram program(64, 16);
  KondoConfig config;
  config.rng_seed = 9;
  const MultiKondoResult result = RunMultiFileKondo(program, config);
  for (size_t f = 0; f < 2; ++f) {
    EXPECT_TRUE(result.per_file_discovered[f].IsSubsetOf(
        result.per_file_approx[f]))
        << "file " << f;
  }
}

TEST(MultiKondoTest, DeterministicUnderSeed) {
  StormTrackProgram program(32, 8);
  KondoConfig config;
  config.rng_seed = 77;
  const MultiKondoResult a = RunMultiFileKondo(program, config);
  const MultiKondoResult b = RunMultiFileKondo(program, config);
  for (size_t f = 0; f < 2; ++f) {
    EXPECT_EQ(a.per_file_approx[f].size(), b.per_file_approx[f].size());
  }
}

}  // namespace
}  // namespace kondo
