#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/kondo.h"
#include "core/metrics.h"
#include "core/report.h"
#include "workloads/registry.h"

namespace kondo {
namespace {

IndexSet FilledBlock(const Shape& shape, int64_t x0, int64_t y0, int64_t x1,
                     int64_t y1) {
  IndexSet set(shape);
  for (int64_t x = x0; x <= x1; ++x) {
    for (int64_t y = y0; y <= y1; ++y) {
      set.Insert(Index{x, y});
    }
  }
  return set;
}

TEST(RenderIndexMapTest, EmptySetRendersBlank) {
  const std::string map = RenderIndexMap(IndexSet(Shape{64, 64}), 16, 8);
  EXPECT_EQ(map.find('#'), std::string::npos);
  EXPECT_EQ(map.find('.'), std::string::npos);
  EXPECT_NE(map.find('|'), std::string::npos);
}

TEST(RenderIndexMapTest, FullSetRendersDense) {
  const Shape shape{32, 32};
  const IndexSet full = FilledBlock(shape, 0, 0, 31, 31);
  const std::string map = RenderIndexMap(full, 16, 8);
  // Every interior cell is dense.
  EXPECT_NE(map.find('#'), std::string::npos);
  EXPECT_EQ(map.find('.'), std::string::npos);
}

TEST(RenderIndexMapTest, CornerBlockAppearsInCorrectQuadrant) {
  const Shape shape{64, 64};
  const IndexSet block = FilledBlock(shape, 0, 0, 15, 15);  // Top-left.
  const std::string map = RenderIndexMap(block, 16, 8);
  // Find first and last '#': both should be in the first rows.
  const size_t first_line_end = map.find('\n', map.find('|'));
  EXPECT_NE(map.substr(0, first_line_end + 50).find('#'),
            std::string::npos);
  // Bottom rows (the second half of the output) contain no '#'.
  EXPECT_EQ(map.substr(map.size() / 2).find('#'), std::string::npos);
}

TEST(RenderIndexMapTest, ThreeDimensionalSetsProject) {
  const Shape shape{16, 16, 16};
  IndexSet set(shape);
  for (int64_t z = 0; z < 16; ++z) {
    set.Insert(Index{4, 4, z});
  }
  const std::string map = RenderIndexMap(set, 16, 16);
  EXPECT_NE(map.find_first_of("#:."), std::string::npos);
}

TEST(RenderComparisonTest, MarksPrecisionAndRecallLosses) {
  const Shape shape{64, 64};
  const IndexSet truth = FilledBlock(shape, 0, 0, 31, 63);   // Left half.
  const IndexSet approx = FilledBlock(shape, 16, 0, 47, 63);  // Middle band.
  const std::string map = RenderComparison(truth, approx, 16, 8);
  EXPECT_NE(map.find('#'), std::string::npos);  // Overlap.
  EXPECT_NE(map.find('+'), std::string::npos);  // Carved-only (right).
  EXPECT_NE(map.find('-'), std::string::npos);  // Truth-only (left).
}

TEST(RenderComparisonTest, PerfectMatchHasNoLossMarkers) {
  const Shape shape{32, 32};
  const IndexSet set = FilledBlock(shape, 4, 4, 27, 27);
  const std::string map = RenderComparison(set, set, 16, 8);
  // Interior rows (between the '|' borders) carry only '#' and spaces;
  // the borders and legend are excluded from the check.
  std::istringstream lines(map);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line.front() != '|') {
      continue;
    }
    const std::string interior = line.substr(1, line.size() - 2);
    EXPECT_EQ(interior.find('+'), std::string::npos) << line;
    EXPECT_EQ(interior.find('-'), std::string::npos) << line;
  }
}

TEST(FormatCampaignReportTest, MentionsKeyNumbers) {
  const std::unique_ptr<Program> program = CreateProgram("CS", 64);
  KondoConfig config;
  config.fuzz.max_iter = 200;
  const KondoResult result = KondoPipeline(config).Run(*program);
  const AccuracyMetrics metrics =
      ComputeAccuracy(program->GroundTruth(), result.approx);
  const std::string report = FormatCampaignReport(result, metrics);
  EXPECT_NE(report.find("debloat tests"), std::string::npos);
  EXPECT_NE(report.find("precision"), std::string::npos);
  EXPECT_NE(report.find("hulls"), std::string::npos);
}

}  // namespace
}  // namespace kondo
