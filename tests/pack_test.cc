// Tests for the KDP package subsystem (src/pack/): chunk grid geometry,
// chunk codecs, writer/reader round-trips across every dtype, random
// access + decoded-chunk LRU cache, corruption detection (errors name the
// chunk), incremental repack, jobs-invariance, and a crash-point sweep over
// the writer's commit protocol.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "array/data_array.h"
#include "array/debloated_array.h"
#include "array/index_set.h"
#include "array/kdf_file.h"
#include "common/env.h"
#include "exec/thread_pool.h"
#include "pack/chunk_codec.h"
#include "pack/kdp_format.h"
#include "pack/pack_reader.h"
#include "pack/pack_writer.h"

namespace kondo {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

bool FileExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

uint64_t FaultSeed() {
  if (const char* env = std::getenv("KONDO_FAULT_SEED")) {
    const uint64_t parsed = std::strtoull(env, nullptr, 10);
    if (parsed != 0) {
      return parsed;
    }
  }
  return 1;
}

/// Builds a debloated array over `shape` keeping every element whose
/// coordinate sum is divisible by `keep_mod` (keep_mod 1 = keep all).
DebloatedArray MakeArray(const Shape& shape, DType dtype, int keep_mod) {
  DataArray array(shape, dtype);
  array.FillWith([&shape](const Index& index) {
    return static_cast<double>(shape.Linearize(index) % 977);
  });
  IndexSet retained(shape);
  shape.ForEachIndex([&retained, keep_mod](const Index& index) {
    int64_t sum = 0;
    for (int d = 0; d < index.rank(); ++d) {
      sum += index[d];
    }
    if (sum % keep_mod == 0) {
      retained.Insert(index);
    }
  });
  return DebloatedArray::FromDataArray(array, retained);
}

/// Element-wise equality of two debloated arrays, including the retention
/// mask; NaN compares equal to NaN.
void ExpectSameArray(const DebloatedArray& a, const DebloatedArray& b) {
  ASSERT_EQ(a.shape().dims(), b.shape().dims());
  ASSERT_EQ(a.dtype(), b.dtype());
  EXPECT_EQ(a.retained_count(), b.retained_count());
  a.shape().ForEachIndex([&](const Index& index) {
    const StatusOr<double> va = a.At(index);
    const StatusOr<double> vb = b.At(index);
    ASSERT_EQ(va.ok(), vb.ok()) << "retention diverged";
    if (va.ok()) {
      if (std::isnan(*va)) {
        EXPECT_TRUE(std::isnan(*vb));
      } else {
        EXPECT_EQ(*va, *vb);
      }
    }
  });
}

// ------------------------------------------------------------ chunk grid --

TEST(KdpChunkGridTest, EdgeChunksClipToTheShape) {
  const KdpChunkGrid grid(Shape{7, 5}, {3, 2});
  EXPECT_EQ(grid.num_chunks(), 3 * 3);  // ceil(7/3) x ceil(5/2).
  // Last chunk: origin (6, 4), clipped extents (1, 1).
  const int64_t last = grid.num_chunks() - 1;
  EXPECT_EQ(grid.ChunkOrigin(last), (Index{6, 4}));
  EXPECT_EQ(grid.ChunkExtents(last), (std::vector<int64_t>{1, 1}));
  EXPECT_EQ(grid.ChunkElements(last), 1);
  // Interior chunk 0 is full-size.
  EXPECT_EQ(grid.ChunkElements(0), 6);
}

TEST(KdpChunkGridTest, ChunkOfIndexAgreesWithOriginAndExtents) {
  const KdpChunkGrid grid(Shape{7, 5}, {3, 2});
  grid.shape().ForEachIndex([&grid](const Index& index) {
    const int64_t chunk = grid.ChunkOfIndex(index);
    const Index origin = grid.ChunkOrigin(chunk);
    const std::vector<int64_t> extents = grid.ChunkExtents(chunk);
    for (int d = 0; d < index.rank(); ++d) {
      EXPECT_GE(index[d], origin[d]);
      EXPECT_LT(index[d], origin[d] + extents[static_cast<size_t>(d)]);
    }
    EXPECT_EQ(grid.ChunkOfLinear(grid.shape().Linearize(index)), chunk);
  });
}

TEST(KdpChunkGridTest, LocalPositionEnumeratesChunkRowMajor) {
  const KdpChunkGrid grid(Shape{7, 5}, {3, 2});
  for (int64_t chunk = 0; chunk < grid.num_chunks(); ++chunk) {
    int64_t expected = 0;
    grid.ForEachChunkElement(chunk, [&](const Index& index) {
      EXPECT_EQ(grid.LocalPosition(index), expected) << "chunk " << chunk;
      ++expected;
    });
    EXPECT_EQ(expected, grid.ChunkElements(chunk));
  }
}

// ---------------------------------------------------------- chunk codecs --

std::string MakePayload(DType dtype, const std::vector<double>& values,
                        int64_t elements) {
  std::string decoded(
      static_cast<size_t>(KdpBitmapBytes(elements)), '\0');
  for (size_t i = 0; i < values.size(); ++i) {
    decoded[i / 8] = static_cast<char>(
        static_cast<uint8_t>(decoded[i / 8]) | (1u << (i % 8)));
  }
  char buf[16];
  for (double value : values) {
    EncodeElement(value, dtype, buf);
    decoded.append(buf, static_cast<size_t>(DTypeSize(dtype)));
  }
  return decoded;
}

TEST(ChunkCodecTest, DeltaVarintRoundTripsAndCompressesSmoothInts) {
  const std::vector<double> values = {100, 101, 102, 103, 104, 105, 104,
                                      103, 102, 101, 100, 99,  98,  97};
  const std::string decoded =
      MakePayload(DType::kInt64, values, static_cast<int64_t>(values.size()));
  const std::string encoded = EncodeChunkPayload(
      KdpCodec::kDeltaVarint, DType::kInt64,
      static_cast<int64_t>(values.size()), decoded);
  EXPECT_LT(encoded.size(), decoded.size());
  const StatusOr<std::string> back = DecodeChunkPayload(
      KdpCodec::kDeltaVarint, DType::kInt64,
      static_cast<int64_t>(values.size()),
      static_cast<int64_t>(decoded.size()), encoded);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, decoded);
}

TEST(ChunkCodecTest, BytePlaneRoundTripsFloats) {
  const std::vector<double> values = {1.5, 2.5, 3.5, 4.5, 1e-3, -0.0, 7.25};
  for (DType dtype :
       {DType::kFloat32, DType::kFloat64, DType::kFloat128}) {
    const std::string decoded =
        MakePayload(dtype, values, static_cast<int64_t>(values.size()));
    const std::string encoded = EncodeChunkPayload(
        KdpCodec::kBytePlane, dtype, static_cast<int64_t>(values.size()),
        decoded);
    const StatusOr<std::string> back = DecodeChunkPayload(
        KdpCodec::kBytePlane, dtype, static_cast<int64_t>(values.size()),
        static_cast<int64_t>(decoded.size()), encoded);
    ASSERT_TRUE(back.ok()) << DTypeName(dtype) << ": " << back.status();
    EXPECT_EQ(*back, decoded) << DTypeName(dtype);
  }
}

TEST(ChunkCodecTest, TruncatedInputIsDataLossNotUb) {
  const std::vector<double> values = {10, 20, 30, 40};
  for (KdpCodec codec : {KdpCodec::kDeltaVarint, KdpCodec::kBytePlane}) {
    const DType dtype = codec == KdpCodec::kDeltaVarint ? DType::kInt64
                                                        : DType::kFloat64;
    const std::string decoded =
        MakePayload(dtype, values, static_cast<int64_t>(values.size()));
    const std::string encoded = EncodeChunkPayload(
        codec, dtype, static_cast<int64_t>(values.size()), decoded);
    for (size_t cut = 0; cut < encoded.size(); ++cut) {
      const StatusOr<std::string> back = DecodeChunkPayload(
          codec, dtype, static_cast<int64_t>(values.size()),
          static_cast<int64_t>(decoded.size()), encoded.substr(0, cut));
      EXPECT_FALSE(back.ok()) << KdpCodecName(codec) << " cut " << cut;
    }
  }
}

TEST(ChunkCodecTest, RawDecodeRejectsSizeMismatch) {
  const StatusOr<std::string> back = DecodeChunkPayload(
      KdpCodec::kRaw, DType::kFloat64, 4, 16, std::string(15, 'x'));
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kDataLoss);
}

// ----------------------------------------------------- pack round trips --

TEST(PackRoundTripTest, AllDTypesUnpackIdentically) {
  for (DType dtype : {DType::kInt32, DType::kInt64, DType::kFloat32,
                      DType::kFloat64, DType::kFloat128}) {
    const DebloatedArray array = MakeArray(Shape{9, 11}, dtype, 3);
    const std::string path =
        TempPath(std::string("rt_") + std::string(DTypeName(dtype)) +
                 ".kdp");
    PackOptions options;
    options.chunk_dims = {4, 3};
    const StatusOr<PackStats> stats = WriteKdpFile(path, array, options);
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_EQ(stats->total_chunks, 3 * 4);

    StatusOr<std::unique_ptr<PackReader>> reader = PackReader::Open(path);
    ASSERT_TRUE(reader.ok()) << reader.status();
    EXPECT_EQ((*reader)->dtype(), dtype);
    EXPECT_EQ((*reader)->retained_count(), array.retained_count());
    const StatusOr<DebloatedArray> unpacked = (*reader)->Unpack();
    ASSERT_TRUE(unpacked.ok()) << unpacked.status();
    ExpectSameArray(array, *unpacked);
  }
}

TEST(PackRoundTripTest, UnpackedKddIsByteIdenticalToOriginal) {
  const DebloatedArray array = MakeArray(Shape{16, 16}, DType::kFloat64, 2);
  const std::string kdd_a = TempPath("ident_a.kdd");
  const std::string kdd_b = TempPath("ident_b.kdd");
  ASSERT_TRUE(array.WriteFile(kdd_a).ok());

  const std::string kdp = TempPath("ident.kdp");
  ASSERT_TRUE(WriteKdpFile(kdp, array).ok());
  StatusOr<std::unique_ptr<PackReader>> reader = PackReader::Open(kdp);
  ASSERT_TRUE(reader.ok()) << reader.status();
  const StatusOr<DebloatedArray> unpacked = (*reader)->Unpack();
  ASSERT_TRUE(unpacked.ok()) << unpacked.status();
  ASSERT_TRUE(unpacked->WriteFile(kdd_b).ok());
  EXPECT_EQ(ReadFileBytes(kdd_a), ReadFileBytes(kdd_b));
}

TEST(PackRoundTripTest, SpecialFloatValuesSurvive) {
  const Shape shape{2, 4};
  DataArray array(shape, DType::kFloat64);
  const std::vector<double> specials = {
      std::nan(""), std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(), -0.0,
      std::numeric_limits<double>::denorm_min(), 1e308, -1e-308, 0.0};
  array.FillWith([&](const Index& index) {
    return specials[static_cast<size_t>(shape.Linearize(index))];
  });
  IndexSet retained(shape);
  shape.ForEachIndex([&retained](const Index& index) {
    retained.Insert(index);
  });
  const DebloatedArray original = DebloatedArray::FromDataArray(
      array, retained);
  const std::string path = TempPath("specials.kdp");
  ASSERT_TRUE(WriteKdpFile(path, original).ok());
  StatusOr<std::unique_ptr<PackReader>> reader = PackReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  const StatusOr<DebloatedArray> unpacked = (*reader)->Unpack();
  ASSERT_TRUE(unpacked.ok()) << unpacked.status();
  ExpectSameArray(original, *unpacked);
}

TEST(PackWriterTest, ChunkClassificationMatchesRetention) {
  // Shape 8x8, chunks 4x4: quadrant (0,0) fully retained, the rest empty.
  const Shape shape{8, 8};
  DataArray array(shape, DType::kInt64);
  array.FillWith([&shape](const Index& index) {
    return static_cast<double>(shape.Linearize(index));
  });
  IndexSet retained(shape);
  shape.ForEachIndex([&retained](const Index& index) {
    if (index[0] < 4 && index[1] < 4) {
      retained.Insert(index);
    }
  });
  const DebloatedArray quadrant =
      DebloatedArray::FromDataArray(array, retained);
  const std::string path = TempPath("quadrant.kdp");
  PackOptions options;
  options.chunk_dims = {4, 4};
  const StatusOr<PackStats> stats = WriteKdpFile(path, quadrant, options);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->total_chunks, 4);
  EXPECT_EQ(stats->hole_chunks, 3);
  EXPECT_EQ(stats->raw_chunks + stats->coded_chunks, 1);

  StatusOr<std::unique_ptr<PackReader>> reader = PackReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  int64_t holes = 0;
  for (const KdpChunkInfo& chunk : (*reader)->manifest().chunks) {
    if (chunk.codec == KdpCodec::kHole) {
      ++holes;
      EXPECT_EQ(chunk.encoded_bytes, 0);
      EXPECT_EQ(chunk.decoded_bytes, 0);
    }
  }
  EXPECT_EQ(holes, 3);
}

TEST(PackWriterTest, PackagesAreByteIdenticalAtEveryJobsSetting) {
  const DebloatedArray array = MakeArray(Shape{20, 14}, DType::kFloat64, 2);
  const std::string serial = TempPath("jobs1.kdp");
  const std::string fanned = TempPath("jobs4.kdp");
  const std::string pooled = TempPath("pooled.kdp");
  PackOptions options;
  ASSERT_TRUE(WriteKdpFile(serial, array, options).ok());
  options.jobs = 4;
  ASSERT_TRUE(WriteKdpFile(fanned, array, options).ok());
  ThreadPool pool(3);
  options.pool = &pool;
  ASSERT_TRUE(WriteKdpFile(pooled, array, options).ok());
  const std::string want = ReadFileBytes(serial);
  ASSERT_FALSE(want.empty());
  EXPECT_EQ(ReadFileBytes(fanned), want);
  EXPECT_EQ(ReadFileBytes(pooled), want);
}

TEST(PackReaderTest, UnpackIsIdenticalAtEveryJobsSetting) {
  const DebloatedArray array = MakeArray(Shape{20, 14}, DType::kInt64, 3);
  const std::string path = TempPath("unpack_jobs.kdp");
  ASSERT_TRUE(WriteKdpFile(path, array).ok());
  StatusOr<std::unique_ptr<PackReader>> reader = PackReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  const StatusOr<DebloatedArray> serial = (*reader)->Unpack();
  ASSERT_TRUE(serial.ok()) << serial.status();
  const StatusOr<DebloatedArray> fanned = (*reader)->Unpack(nullptr, 4);
  ASSERT_TRUE(fanned.ok()) << fanned.status();
  ThreadPool pool(3);
  const StatusOr<DebloatedArray> pooled = (*reader)->Unpack(&pool, 3);
  ASSERT_TRUE(pooled.ok()) << pooled.status();
  ExpectSameArray(*serial, *fanned);
  ExpectSameArray(*serial, *pooled);
}

// ---------------------------------------------------------- random access --

TEST(PackReaderTest, ReadElementMatchesArrayAndReportsMissing) {
  const DebloatedArray array = MakeArray(Shape{9, 7}, DType::kFloat64, 2);
  const std::string path = TempPath("read_element.kdp");
  PackOptions options;
  options.chunk_dims = {3, 3};
  ASSERT_TRUE(WriteKdpFile(path, array, options).ok());
  StatusOr<std::unique_ptr<PackReader>> opened = PackReader::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status();
  PackReader& reader = **opened;

  array.shape().ForEachIndex([&](const Index& index) {
    const StatusOr<double> want = array.At(index);
    const StatusOr<double> got = reader.ReadElement(index);
    ASSERT_EQ(want.ok(), got.ok());
    if (want.ok()) {
      EXPECT_EQ(*want, *got);
    } else {
      EXPECT_EQ(got.status().code(), StatusCode::kDataMissing);
    }
  });
  EXPECT_EQ(reader.ReadElement(Index{9, 0}).status().code(),
            StatusCode::kOutOfRange);

  // The full sweep visits each of the 9 chunks many times; all but the
  // first touch per chunk must come from cache.
  const PackReaderStats stats = reader.stats();
  EXPECT_EQ(stats.chunks_decoded, 9);
  EXPECT_GT(stats.cache_hits, stats.cache_misses);
}

TEST(PackReaderTest, ReadRangeSpansChunkBoundaries) {
  const DebloatedArray array = MakeArray(Shape{8, 10}, DType::kInt32, 3);
  const std::string path = TempPath("read_range.kdp");
  PackOptions options;
  options.chunk_dims = {3, 4};
  ASSERT_TRUE(WriteKdpFile(path, array, options).ok());
  StatusOr<std::unique_ptr<PackReader>> opened = PackReader::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status();
  PackReader& reader = **opened;

  const int64_t total = array.shape().NumElements();
  for (const auto& [begin, end] :
       std::vector<std::pair<int64_t, int64_t>>{
           {0, total}, {0, 0}, {5, 37}, {17, 18}, {total - 1, total}}) {
    std::vector<uint8_t> present;
    std::vector<double> values;
    ASSERT_TRUE(reader.ReadRange(begin, end, &present, &values).ok());
    ASSERT_EQ(present.size(), static_cast<size_t>(end - begin));
    size_t value_at = 0;
    for (int64_t linear = begin; linear < end; ++linear) {
      const StatusOr<double> want =
          array.At(array.shape().Delinearize(linear));
      ASSERT_EQ(present[static_cast<size_t>(linear - begin)] != 0,
                want.ok());
      if (want.ok()) {
        ASSERT_LT(value_at, values.size());
        EXPECT_EQ(values[value_at], *want);
        ++value_at;
      }
    }
    EXPECT_EQ(value_at, values.size());
  }
}

TEST(PackReaderTest, TinyCacheEvictsLeastRecentlyUsedChunks) {
  const DebloatedArray array = MakeArray(Shape{12, 12}, DType::kFloat64, 1);
  const std::string path = TempPath("lru.kdp");
  PackOptions options;
  options.chunk_dims = {4, 4};
  ASSERT_TRUE(WriteKdpFile(path, array, options).ok());
  PackReadOptions read_options;
  read_options.cache_bytes = 300;  // Roughly two decoded 16-element chunks.
  StatusOr<std::unique_ptr<PackReader>> opened =
      PackReader::Open(path, read_options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  PackReader& reader = **opened;

  // Two full sweeps over all 9 chunks: the second sweep cannot be all hits
  // with only ~2 chunks resident, so eviction must have fired.
  for (int sweep = 0; sweep < 2; ++sweep) {
    array.shape().ForEachIndex([&](const Index& index) {
      ASSERT_TRUE(reader.ReadElement(index).ok());
    });
  }
  const PackReaderStats stats = reader.stats();
  EXPECT_GT(stats.cache_evictions, 0);
  EXPECT_GT(stats.chunks_decoded, 9);
}

// ------------------------------------------------------------- corruption --

TEST(PackCorruptionTest, FlippedPayloadByteNamesTheChunk) {
  const DebloatedArray array = MakeArray(Shape{8, 8}, DType::kFloat64, 1);
  const std::string path = TempPath("corrupt.kdp");
  PackOptions options;
  options.chunk_dims = {4, 4};
  ASSERT_TRUE(WriteKdpFile(path, array, options).ok());

  std::string bytes = ReadFileBytes(path);
  // First payload byte lives right after the header (rank-2 header is
  // 8 + 16*2 = 40 bytes).
  const size_t victim = 40;
  ASSERT_LT(victim, bytes.size());
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x5a);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // The trailer CRC covers header + manifest only, so Open succeeds; the
  // decode of chunk 0 must fail and the error must name it.
  StatusOr<std::unique_ptr<PackReader>> opened = PackReader::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status();
  const StatusOr<DebloatedArray> unpacked = (*opened)->Unpack();
  ASSERT_FALSE(unpacked.ok());
  EXPECT_EQ(unpacked.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(unpacked.status().message().find("KDP chunk 0"),
            std::string::npos)
      << unpacked.status();
}

TEST(PackCorruptionTest, DamagedTrailerFailsOpen) {
  const DebloatedArray array = MakeArray(Shape{6, 6}, DType::kInt64, 2);
  const std::string path = TempPath("trailer.kdp");
  ASSERT_TRUE(WriteKdpFile(path, array).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[bytes.size() - 6] =
      static_cast<char>(bytes[bytes.size() - 6] ^ 0xff);  // file_crc field.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const StatusOr<std::unique_ptr<PackReader>> opened = PackReader::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss);
}

// ----------------------------------------------------------------- repack --

TEST(PackRepackTest, CleanRepackReusesEveryChunk) {
  const DebloatedArray array = MakeArray(Shape{10, 10}, DType::kFloat64, 2);
  const std::string in = TempPath("reuse_in.kdp");
  const std::string out = TempPath("reuse_out.kdp");
  PackOptions options;
  options.chunk_dims = {4, 4};
  ASSERT_TRUE(WriteKdpFile(in, array, options).ok());
  const StatusOr<PackStats> stats = RepackKdpFile(in, out, array, options);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->chunks_reused, stats->total_chunks);
  EXPECT_EQ(stats->chunks_reencoded, 0);
  EXPECT_EQ(ReadFileBytes(in), ReadFileBytes(out));
}

TEST(PackRepackTest, DirtyChunksReencodeAndMatchFreshPack) {
  const Shape shape{12, 12};
  const DebloatedArray before = MakeArray(shape, DType::kFloat64, 2);

  // Rebuild with one corner changed: only the chunks covering it are dirty.
  DataArray array(shape, DType::kFloat64);
  array.FillWith([&shape](const Index& index) {
    const int64_t linear = shape.Linearize(index);
    if (index[0] < 2 && index[1] < 2) {
      return static_cast<double>(-linear);
    }
    return static_cast<double>(linear % 977);
  });
  IndexSet retained(shape);
  shape.ForEachIndex([&retained](const Index& index) {
    if ((index[0] + index[1]) % 2 == 0) {
      retained.Insert(index);
    }
  });
  const DebloatedArray after = DebloatedArray::FromDataArray(array, retained);

  const std::string in = TempPath("dirty_in.kdp");
  const std::string repacked = TempPath("dirty_out.kdp");
  const std::string fresh = TempPath("dirty_fresh.kdp");
  PackOptions options;
  options.chunk_dims = {4, 4};
  ASSERT_TRUE(WriteKdpFile(in, before, options).ok());
  const StatusOr<PackStats> stats =
      RepackKdpFile(in, repacked, after, options);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->chunks_reencoded, 1);  // Only the (0,0) 4x4 chunk moved.
  EXPECT_EQ(stats->chunks_reused, stats->total_chunks - 1);

  ASSERT_TRUE(WriteKdpFile(fresh, after, options).ok());
  EXPECT_EQ(ReadFileBytes(repacked), ReadFileBytes(fresh));

  // And the repacked fingerprint differs from the original's.
  StatusOr<std::unique_ptr<PackReader>> old_reader = PackReader::Open(in);
  StatusOr<std::unique_ptr<PackReader>> new_reader =
      PackReader::Open(repacked);
  ASSERT_TRUE(old_reader.ok() && new_reader.ok());
  EXPECT_NE((*old_reader)->pack_fingerprint(),
            (*new_reader)->pack_fingerprint());
}

TEST(PackRepackTest, InPlaceRepackRoundTrips) {
  const DebloatedArray before = MakeArray(Shape{8, 8}, DType::kInt64, 2);
  const DebloatedArray after = MakeArray(Shape{8, 8}, DType::kInt64, 4);
  const std::string path = TempPath("inplace.kdp");
  ASSERT_TRUE(WriteKdpFile(path, before).ok());
  ASSERT_TRUE(RepackKdpFile(path, path, after).ok());
  StatusOr<std::unique_ptr<PackReader>> reader = PackReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  const StatusOr<DebloatedArray> unpacked = (*reader)->Unpack();
  ASSERT_TRUE(unpacked.ok()) << unpacked.status();
  ExpectSameArray(after, *unpacked);
}

TEST(PackRepackTest, ShapeOrDTypeMismatchIsFailedPrecondition) {
  const DebloatedArray array = MakeArray(Shape{6, 6}, DType::kFloat64, 2);
  const std::string path = TempPath("mismatch.kdp");
  ASSERT_TRUE(WriteKdpFile(path, array).ok());
  const DebloatedArray other_shape = MakeArray(Shape{6, 7}, DType::kFloat64, 2);
  EXPECT_EQ(RepackKdpFile(path, path, other_shape).status().code(),
            StatusCode::kFailedPrecondition);
  const DebloatedArray other_dtype = MakeArray(Shape{6, 6}, DType::kInt64, 2);
  EXPECT_EQ(RepackKdpFile(path, path, other_dtype).status().code(),
            StatusCode::kFailedPrecondition);
}

// ----------------------------------------------------------- crash safety --

TEST(PackCrashSweepTest, InterruptedCommitLeavesNoFileOrAValidOne) {
  const DebloatedArray array = MakeArray(Shape{10, 10}, DType::kFloat64, 3);
  const std::string reference_path = TempPath("crash_ref.kdp");
  ASSERT_TRUE(WriteKdpFile(reference_path, array).ok());
  const std::string reference = ReadFileBytes(reference_path);
  ASSERT_FALSE(reference.empty());

  // A fault-free injecting env must be byte-transparent, and its op count
  // bounds the sweep.
  FaultPlan count_plan;
  count_plan.seed = FaultSeed();
  FaultInjectingEnv counter(Env::Default(), count_plan);
  PackOptions counted;
  counted.env = &counter;
  const std::string counted_path = TempPath("crash_count.kdp");
  ASSERT_TRUE(WriteKdpFile(counted_path, array, counted).ok());
  EXPECT_EQ(ReadFileBytes(counted_path), reference);
  const int64_t num_ops = counter.ops();
  ASSERT_GT(num_ops, 2);

  for (int64_t k = 0; k < num_ops; ++k) {
    FaultPlan plan;
    plan.seed = FaultSeed();
    plan.crash_at_op = k;
    FaultInjectingEnv env(Env::Default(), plan);
    PackOptions crashed;
    crashed.env = &env;
    const std::string path = TempPath("crash_" + std::to_string(k) + ".kdp");
    const StatusOr<PackStats> broken = WriteKdpFile(path, array, crashed);
    EXPECT_FALSE(broken.ok()) << "crash at op " << k << " did not surface";
    // Atomic commit: either nothing landed at the target path, or the
    // rename happened and the package is complete and valid.
    if (FileExists(path)) {
      EXPECT_EQ(ReadFileBytes(path), reference) << "crash at op " << k;
      const StatusOr<std::unique_ptr<PackReader>> opened =
          PackReader::Open(path);
      EXPECT_TRUE(opened.ok())
          << "crash at op " << k << ": " << opened.status();
    }
  }
}

TEST(PackCrashSweepTest, InterruptedRepackPreservesTheOldPackage) {
  const DebloatedArray before = MakeArray(Shape{8, 8}, DType::kInt64, 2);
  const DebloatedArray after = MakeArray(Shape{8, 8}, DType::kInt64, 4);

  // Count repack ops on a scratch copy.
  const std::string scratch = TempPath("repack_count.kdp");
  ASSERT_TRUE(WriteKdpFile(scratch, before).ok());
  const std::string old_bytes = ReadFileBytes(scratch);
  FaultPlan count_plan;
  count_plan.seed = FaultSeed();
  FaultInjectingEnv counter(Env::Default(), count_plan);
  PackOptions counted;
  counted.env = &counter;
  ASSERT_TRUE(RepackKdpFile(scratch, scratch, after, counted).ok());
  const std::string new_bytes = ReadFileBytes(scratch);
  ASSERT_NE(new_bytes, old_bytes);
  const int64_t num_ops = counter.ops();
  ASSERT_GT(num_ops, 2);

  for (int64_t k = 0; k < num_ops; ++k) {
    const std::string path =
        TempPath("repack_crash_" + std::to_string(k) + ".kdp");
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(old_bytes.data(),
                static_cast<std::streamsize>(old_bytes.size()));
    }
    FaultPlan plan;
    plan.seed = FaultSeed();
    plan.crash_at_op = k;
    FaultInjectingEnv env(Env::Default(), plan);
    PackOptions crashed;
    crashed.env = &env;
    const StatusOr<PackStats> broken =
        RepackKdpFile(path, path, after, crashed);
    EXPECT_FALSE(broken.ok()) << "crash at op " << k << " did not surface";
    // In-place repack through AtomicFile: the package at `path` is either
    // still the old bytes or already the complete new bytes — never torn.
    const std::string left = ReadFileBytes(path);
    EXPECT_TRUE(left == old_bytes || left == new_bytes)
        << "torn package after crash at op " << k;
  }
}

}  // namespace
}  // namespace kondo
