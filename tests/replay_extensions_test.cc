// Tests for the byte-level debloated replay file (Sciunit's re-execution
// mapping), the VPIC threshold-subsetting workload, and ensemble campaigns.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "array/kdf_file.h"
#include "core/debloated_file.h"
#include "core/ensemble.h"
#include "core/metrics.h"
#include "workloads/registry.h"
#include "workloads/vpic_program.h"

namespace kondo {
namespace {

// --------------------------------------------------- VirtualDebloatedFile --

class VirtualDebloatedFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    array_ = std::make_unique<DataArray>(Shape{8, 8}, DType::kFloat64);
    array_->FillWith([](const Index& index) {
      return static_cast<double>(index[0] * 8 + index[1]);
    });
    // Retain the top half (x < 4).
    IndexSet retained(array_->shape());
    array_->shape().ForEachIndex([&retained](const Index& index) {
      if (index[0] < 4) {
        retained.Insert(index);
      }
    });
    debloated_ = DebloatedArray::FromDataArray(*array_, retained);
  }

  std::unique_ptr<DataArray> array_;
  DebloatedArray debloated_{
      DebloatedArray::FromDataArray(DataArray(Shape{1}), IndexSet(Shape{1}))};
};

TEST_F(VirtualDebloatedFileTest, HeaderBytesMatchRealKdfFile) {
  StatusOr<VirtualDebloatedFile> vfile =
      VirtualDebloatedFile::Create(debloated_);
  ASSERT_TRUE(vfile.ok());
  // Write the original as a real KDF file and compare header bytes.
  const std::string path = ::testing::TempDir() + "/vfile_ref.kdf";
  ASSERT_TRUE(WriteKdfFile(path, *array_).ok());
  StatusOr<KdfReader> reader = KdfReader::Open(path);
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(vfile->payload_offset(), reader->payload_offset());
  ASSERT_EQ(vfile->FileBytes(), reader->FileBytes());

  std::vector<char> expected(static_cast<size_t>(reader->payload_offset()));
  std::vector<char> actual(expected.size());
  ASSERT_TRUE(reader->ReadRaw(0, reader->payload_offset(), expected.data())
                  .ok());
  ASSERT_TRUE(
      vfile->ReadRaw(0, vfile->payload_offset(), actual.data()).ok());
  EXPECT_EQ(std::memcmp(expected.data(), actual.data(), expected.size()), 0);
}

TEST_F(VirtualDebloatedFileTest, RetainedRangeReplaysOriginalBytes) {
  StatusOr<VirtualDebloatedFile> vfile =
      VirtualDebloatedFile::Create(debloated_);
  ASSERT_TRUE(vfile.ok());
  // Row 2 (retained): elements (2,0)..(2,7), 64 bytes.
  const int64_t offset = vfile->payload_offset() + 2 * 8 * 8;
  char buf[64];
  StatusOr<int64_t> n = vfile->ReadRaw(offset, 64, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 64);
  for (int i = 0; i < 8; ++i) {
    double value;
    std::memcpy(&value, buf + i * 8, 8);
    EXPECT_DOUBLE_EQ(value, static_cast<double>(16 + i));
  }
}

TEST_F(VirtualDebloatedFileTest, NullRangeRaisesDataMissing) {
  StatusOr<VirtualDebloatedFile> vfile =
      VirtualDebloatedFile::Create(debloated_);
  ASSERT_TRUE(vfile.ok());
  // Row 6 is debloated.
  const int64_t offset = vfile->payload_offset() + 6 * 8 * 8;
  char buf[64];
  StatusOr<int64_t> n = vfile->ReadRaw(offset, 64, buf);
  EXPECT_EQ(n.status().code(), StatusCode::kDataMissing);
  EXPECT_EQ(vfile->stats().missing_range_hits, 1);
}

TEST_F(VirtualDebloatedFileTest, PartialElementReadWorks) {
  StatusOr<VirtualDebloatedFile> vfile =
      VirtualDebloatedFile::Create(debloated_);
  ASSERT_TRUE(vfile.ok());
  // 4 bytes straddling elements (0,0) and (0,1): offset mid-element.
  char buf[8];
  StatusOr<int64_t> n =
      vfile->ReadRaw(vfile->payload_offset() + 4, 8, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 8);
  // Verify against a real file.
  const std::string path = ::testing::TempDir() + "/vfile_partial.kdf";
  ASSERT_TRUE(WriteKdfFile(path, *array_).ok());
  StatusOr<KdfReader> reader = KdfReader::Open(path);
  ASSERT_TRUE(reader.ok());
  char expected[8];
  ASSERT_TRUE(reader->ReadRaw(reader->payload_offset() + 4, 8, expected).ok());
  EXPECT_EQ(std::memcmp(buf, expected, 8), 0);
}

TEST_F(VirtualDebloatedFileTest, ShortReadAtEof) {
  StatusOr<VirtualDebloatedFile> vfile =
      VirtualDebloatedFile::Create(debloated_);
  ASSERT_TRUE(vfile.ok());
  char buf[64];
  // The last row is Null, so read the end of a *retained* region instead:
  // EOF behaviour with a valid range start beyond file end.
  StatusOr<int64_t> n = vfile->ReadRaw(vfile->FileBytes() + 10, 64, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0);
}

TEST_F(VirtualDebloatedFileTest, ChunkedPaddingReadsAsZero) {
  DataArray array(Shape{3, 3}, DType::kFloat64);
  array.FillWith([](const Index&) { return 7.0; });
  IndexSet all(array.shape());
  array.shape().ForEachIndex([&all](const Index& i) { all.Insert(i); });
  StatusOr<VirtualDebloatedFile> vfile = VirtualDebloatedFile::Create(
      DebloatedArray::FromDataArray(array, all), LayoutKind::kChunked,
      {2, 2});
  ASSERT_TRUE(vfile.ok());
  // Read the whole payload: padding slots must be zero, elements 7.0.
  const int64_t payload = vfile->FileBytes() - vfile->payload_offset();
  std::vector<char> buf(static_cast<size_t>(payload));
  StatusOr<int64_t> n =
      vfile->ReadRaw(vfile->payload_offset(), payload, buf.data());
  ASSERT_TRUE(n.ok());
  int sevens = 0;
  int zeros = 0;
  for (int64_t i = 0; i < payload; i += 8) {
    double value;
    std::memcpy(&value, buf.data() + i, 8);
    if (value == 7.0) ++sevens;
    if (value == 0.0) ++zeros;
  }
  EXPECT_EQ(sevens, 9);
  EXPECT_EQ(zeros, 7);  // 4 chunks x 4 slots - 9 elements.
}

TEST(VirtualDebloatedFileReplayTest, SupportedRunReplaysViaByteReads) {
  const std::unique_ptr<Program> program = CreateProgram("LDC", 64);
  DataArray array(program->data_shape(), DType::kFloat64);
  array.FillPattern(3);
  StatusOr<VirtualDebloatedFile> vfile = VirtualDebloatedFile::Create(
      DebloatedArray::FromDataArray(array, program->GroundTruth()));
  ASSERT_TRUE(vfile.ok());
  EXPECT_TRUE(vfile->ReplayRun(*program, {2.0, 3.0}).ok());
  EXPECT_EQ(vfile->stats().missing_range_hits, 0);
  EXPECT_GT(vfile->stats().bytes_served, 0);
}

TEST(VirtualDebloatedFileReplayTest, UnsupportedRunRaisesDataMissing) {
  const std::unique_ptr<Program> program = CreateProgram("PRL", 64);
  DataArray array(program->data_shape(), DType::kFloat64);
  // Retain nothing: every byte range misses.
  StatusOr<VirtualDebloatedFile> vfile = VirtualDebloatedFile::Create(
      DebloatedArray::FromDataArray(array, IndexSet(array.shape())));
  ASSERT_TRUE(vfile.ok());
  const Status status = vfile->ReplayRun(*program, {10.0, 10.0});
  EXPECT_EQ(status.code(), StatusCode::kDataMissing);
  EXPECT_GT(vfile->stats().missing_range_hits, 0);
}

// ------------------------------------------------------------------ VPIC --

TEST(VpicProgramTest, EnergyFieldIsDeterministicAndBounded) {
  VpicProgram program(32);
  const double e1 = program.EnergyAt(Index{10, 10, 16});
  EXPECT_DOUBLE_EQ(e1, program.EnergyAt(Index{10, 10, 16}));
  EXPECT_GE(e1, 0.0);
  EXPECT_LE(e1, 100.0);
  // The hot spot core is hotter than the far corner.
  EXPECT_GT(program.EnergyAt(Index{10, 10, 16}),
            program.EnergyAt(Index{31, 31, 0}));
}

TEST(VpicProgramTest, RunsReadOnlyAboveThreshold) {
  VpicProgram program(32);
  const IndexSet accessed = program.AccessSet({80.0, 16.0});
  EXPECT_FALSE(accessed.empty());
  accessed.ForEach([&program](const Index& index) {
    EXPECT_GE(program.EnergyAt(index), 80.0);
    EXPECT_EQ(index[2], 16);  // Only the chosen slab.
  });
}

TEST(VpicProgramTest, LowerThresholdReadsSuperset) {
  VpicProgram program(32);
  const IndexSet tight = program.AccessSet({90.0, 16.0});
  const IndexSet loose = program.AccessSet({60.0, 16.0});
  EXPECT_TRUE(tight.IsSubsetOf(loose));
  EXPECT_GT(loose.size(), tight.size());
}

TEST(VpicProgramTest, AnalyticGroundTruthMatchesEnumeration) {
  VpicProgram program(16);
  const IndexSet enumerated = program.GroundTruthByEnumeration(1e5);
  EXPECT_EQ(program.GroundTruth().size(), enumerated.size());
  EXPECT_TRUE(program.GroundTruth().IsSubsetOf(enumerated));
}

TEST(VpicProgramTest, OutOfThetaRunsAreUseless) {
  VpicProgram program(32);
  EXPECT_TRUE(program.AccessSet({50.0, 16.0}).empty());   // Below t_min.
  EXPECT_TRUE(program.AccessSet({80.0, 99.0}).empty());   // Slab OOB.
}

// -------------------------------------------------------------- Ensemble --

TEST(EnsembleTest, CombinedRecallAtLeastBestMember) {
  const std::unique_ptr<Program> program = CreateProgram("CS3");
  const IndexSet& truth = program->GroundTruth();
  KondoConfig config;
  config.fuzz.max_iter = 300;  // Weak members.
  config.rng_seed = 10;

  double best_member_recall = 0.0;
  for (int member = 0; member < 3; ++member) {
    KondoConfig member_config = config;
    member_config.rng_seed = config.rng_seed + static_cast<uint64_t>(member);
    const KondoResult result = KondoPipeline(member_config).Run(*program);
    best_member_recall = std::max(
        best_member_recall, ComputeAccuracy(truth, result.approx).recall);
  }

  const EnsembleResult ensemble = RunEnsembleKondo(*program, config, 3);
  const double ensemble_recall =
      ComputeAccuracy(truth, ensemble.combined_approx).recall;
  // The union of discoveries carves at least as much as any member's
  // discoveries alone (typically more).
  EXPECT_GE(ensemble_recall, best_member_recall - 0.02);
  EXPECT_EQ(ensemble.member_approx_sizes.size(), 3u);
  EXPECT_GT(ensemble.total_evaluations, 0);
}

TEST(EnsembleTest, SingleMemberMatchesPlainPipeline) {
  const std::unique_ptr<Program> program = CreateProgram("LDC", 64);
  KondoConfig config;
  config.rng_seed = 21;
  const EnsembleResult ensemble = RunEnsembleKondo(*program, config, 1);
  const KondoResult plain = KondoPipeline(config).Run(*program);
  EXPECT_EQ(ensemble.combined_approx.size(), plain.approx.size());
}

}  // namespace
}  // namespace kondo
