#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "baselines/afl_fuzzer.h"
#include "baselines/brute_force.h"
#include "baselines/invariant_baseline.h"
#include "common/rng.h"
#include "core/metrics.h"
#include "workloads/registry.h"

namespace kondo {
namespace {

// ------------------------------------------------------------ BruteForce --

TEST(BruteForceTest, ExhaustionReachesRecallOne) {
  std::unique_ptr<Program> program = CreateProgram("CS", 16);
  BruteForceConfig config;  // Unlimited budget.
  const BruteForceResult result = RunBruteForce(*program, config);
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.runs, 256);
  const AccuracyMetrics metrics =
      ComputeAccuracy(program->GroundTruth(), result.discovered);
  EXPECT_DOUBLE_EQ(metrics.recall, 1.0);
  EXPECT_DOUBLE_EQ(metrics.precision, 1.0);
}

TEST(BruteForceTest, MaxRunsBudgetRespected) {
  std::unique_ptr<Program> program = CreateProgram("CS", 32);
  BruteForceConfig config;
  config.max_runs = 100;
  const BruteForceResult result = RunBruteForce(*program, config);
  EXPECT_EQ(result.runs, 100);
  EXPECT_FALSE(result.exhausted);
}

TEST(BruteForceTest, PrecisionAlwaysOne) {
  std::unique_ptr<Program> program = CreateProgram("PRL", 32);
  BruteForceConfig config;
  config.max_runs = 50;
  const BruteForceResult result = RunBruteForce(*program, config);
  // BF never reports unaccessed indices (Section V-D2).
  EXPECT_TRUE(result.discovered.IsSubsetOf(program->GroundTruth()));
}

TEST(BruteForceTest, ShuffledOrderIsSeedDeterministic) {
  std::unique_ptr<Program> program = CreateProgram("CS", 32);
  BruteForceConfig config;
  config.max_runs = 64;
  config.rng_seed = 5;
  const BruteForceResult a = RunBruteForce(*program, config);
  const BruteForceResult b = RunBruteForce(*program, config);
  EXPECT_EQ(a.discovered.size(), b.discovered.size());
  config.rng_seed = 6;
  const BruteForceResult c = RunBruteForce(*program, config);
  // Different permutation ⇒ (almost surely) different partial coverage.
  EXPECT_NE(a.discovered.size(), c.discovered.size());
}

TEST(BruteForceTest, LexicographicOrderCoversPrefix) {
  std::unique_ptr<Program> program = CreateProgram("CS", 16);
  BruteForceConfig config;
  config.shuffled = false;
  config.max_runs = 16;  // Valuations (0,0) .. (0,15): stepX=0 column.
  const BruteForceResult result = RunBruteForce(*program, config);
  // stepX=0 walks read column x∈{0,1}: all useful, subsets of the truth.
  EXPECT_FALSE(result.discovered.empty());
  EXPECT_TRUE(result.discovered.Contains(Index{0, 0}));
}

TEST(BruteForceTest, TimeBudgetStopsEarly) {
  std::unique_ptr<Program> program = CreateProgram("CS", 128);
  BruteForceConfig config;
  config.max_seconds = 0.02;
  const BruteForceResult result = RunBruteForce(*program, config);
  EXPECT_LE(result.runs, 16384);
  EXPECT_GT(result.runs, 0);
}

// ------------------------------------------------------------------- AFL --

TEST(AflFuzzerTest, ParsesWellFormedInput) {
  std::unique_ptr<Program> program = CreateProgram("CS", 32);
  AflFuzzer fuzzer(*program, AflConfig{});
  const std::optional<ParamValue> v = fuzzer.ParseInput("3 7");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ((*v)[0], 3.0);
  EXPECT_DOUBLE_EQ((*v)[1], 7.0);
}

TEST(AflFuzzerTest, RejectsMalformedInput) {
  std::unique_ptr<Program> program = CreateProgram("CS", 32);
  AflFuzzer fuzzer(*program, AflConfig{});
  EXPECT_FALSE(fuzzer.ParseInput("").has_value());
  EXPECT_FALSE(fuzzer.ParseInput("3").has_value());        // Arity.
  EXPECT_FALSE(fuzzer.ParseInput("3 7 9").has_value());    // Arity.
  EXPECT_FALSE(fuzzer.ParseInput("3 x").has_value());      // Garbage.
  EXPECT_FALSE(fuzzer.ParseInput("3.5 7").has_value());    // Non-integer.
}

TEST(AflFuzzerTest, ParsesNegativeAndPaddedIntegers) {
  std::unique_ptr<Program> program = CreateProgram("CS", 32);
  AflFuzzer fuzzer(*program, AflConfig{});
  const std::optional<ParamValue> v = fuzzer.ParseInput("  -4   009 ");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ((*v)[0], -4.0);
  EXPECT_DOUBLE_EQ((*v)[1], 9.0);
}

TEST(AflFuzzerTest, CampaignFindsCoverage) {
  std::unique_ptr<Program> program = CreateProgram("CS", 32);
  AflConfig config;
  config.max_seconds = 0.0;
  config.max_execs = 3000;
  config.exec_overhead_micros = 0;
  config.rng_seed = 3;
  AflFuzzer fuzzer(*program, config);
  const AflResult result = fuzzer.Run();
  EXPECT_EQ(result.execs, 3000);
  EXPECT_GT(result.valid_execs, 0);
  EXPECT_GT(result.coverage.size(), 0u);
  EXPECT_GE(result.queue_size, 2);
}

TEST(AflFuzzerTest, CoverageIsSubsetOfGroundTruth) {
  std::unique_ptr<Program> program = CreateProgram("CS", 32);
  AflConfig config;
  config.max_execs = 2000;
  config.max_seconds = 0.0;
  config.exec_overhead_micros = 0;
  const AflResult result = AflFuzzer(*program, config).Run();
  // AFL reports raw covered indices -> precision 1 by construction.
  EXPECT_TRUE(result.coverage.IsSubsetOf(program->GroundTruth()));
}

TEST(AflFuzzerTest, ManyExecsAreWasted) {
  // The paper attributes AFL's low recall to mutations that produce
  // non-integer or duplicate inputs; most executions should be invalid.
  std::unique_ptr<Program> program = CreateProgram("CS", 32);
  AflConfig config;
  config.max_execs = 3000;
  config.max_seconds = 0.0;
  config.exec_overhead_micros = 0;
  const AflResult result = AflFuzzer(*program, config).Run();
  EXPECT_LT(result.valid_execs, result.execs);
}

TEST(AflFuzzerTest, ExecOverheadSlowsCampaign) {
  std::unique_ptr<Program> program = CreateProgram("CS", 32);
  AflConfig fast;
  fast.max_seconds = 0.05;
  fast.exec_overhead_micros = 0;
  AflConfig slow = fast;
  slow.exec_overhead_micros = 200;
  const AflResult fast_result = AflFuzzer(*program, fast).Run();
  const AflResult slow_result = AflFuzzer(*program, slow).Run();
  EXPECT_GT(fast_result.execs, slow_result.execs * 2);
}

TEST(AflFuzzerTest, DeterministicUnderSeed) {
  std::unique_ptr<Program> program = CreateProgram("CS", 32);
  AflConfig config;
  config.max_execs = 500;
  config.max_seconds = 0.0;
  config.exec_overhead_micros = 0;
  config.rng_seed = 11;
  const AflResult a = AflFuzzer(*program, config).Run();
  const AflResult b = AflFuzzer(*program, config).Run();
  EXPECT_EQ(a.coverage.size(), b.coverage.size());
  EXPECT_EQ(a.valid_execs, b.valid_execs);
  EXPECT_EQ(a.queue_size, b.queue_size);
}

// --------------------------------------------------- invariant baseline --

IndexSet PointsOf(const Shape& shape, std::initializer_list<Index> indices) {
  IndexSet set(shape);
  for (const Index& index : indices) {
    set.Insert(index);
  }
  return set;
}

TEST(OctagonInvariantTest, IntervalBoundsAreTight) {
  const Shape shape{32, 32};
  const IndexSet points =
      PointsOf(shape, {Index{2, 5}, Index{7, 9}, Index{4, 6}});
  const OctagonInvariant invariant = OctagonInvariant::Infer(points);
  EXPECT_TRUE(invariant.Satisfies(Index{2, 5}));
  EXPECT_TRUE(invariant.Satisfies(Index{7, 9}));
  EXPECT_FALSE(invariant.Satisfies(Index{1, 5}));   // x0 below lo.
  EXPECT_FALSE(invariant.Satisfies(Index{8, 9}));   // x0 above hi.
  EXPECT_FALSE(invariant.Satisfies(Index{2, 10}));  // x1 above hi.
}

TEST(OctagonInvariantTest, DifferenceBoundsCutCorners) {
  const Shape shape{32, 32};
  // Diagonal points: x0 - x1 == 0 everywhere.
  const IndexSet points =
      PointsOf(shape, {Index{1, 1}, Index{5, 5}, Index{9, 9}});
  const OctagonInvariant invariant = OctagonInvariant::Infer(points);
  EXPECT_TRUE(invariant.Satisfies(Index{3, 3}));
  // Inside the interval box but off the diagonal: rejected by diff bound.
  EXPECT_FALSE(invariant.Satisfies(Index{3, 7}));
  // Sum bound rejects points with x0 + x1 outside [2, 18].
  EXPECT_FALSE(invariant.Satisfies(Index{1, 0}));
}

TEST(OctagonInvariantTest, RasterizeContainsAllObservedPoints) {
  const Shape shape{64, 64};
  IndexSet points(shape);
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    points.Insert(Index{rng.UniformInt(10, 40), rng.UniformInt(10, 40)});
  }
  const OctagonInvariant invariant = OctagonInvariant::Infer(points);
  const IndexSet raster = invariant.Rasterize(shape);
  EXPECT_TRUE(points.IsSubsetOf(raster));
}

TEST(OctagonInvariantTest, CannotExpressDisjointRegions) {
  // Two distant blobs: the conjunctive invariant covers the gap between
  // them — the §VII limitation Kondo's disjunctive hulls avoid.
  const Shape shape{128, 128};
  IndexSet points(shape);
  for (int64_t x = 0; x <= 8; ++x) {
    for (int64_t y = 0; y <= 8; ++y) {
      points.Insert(Index{x, y});
      points.Insert(Index{x + 100, y + 100});
    }
  }
  const OctagonInvariant invariant = OctagonInvariant::Infer(points);
  EXPECT_TRUE(invariant.Satisfies(Index{54, 54}));  // Middle of the gap.
  const IndexSet raster = invariant.Rasterize(shape);
  EXPECT_GT(raster.size(), points.size() * 3);
}

TEST(OctagonInvariantTest, ThreeDimensional) {
  const Shape shape{16, 16, 16};
  const IndexSet points =
      PointsOf(shape, {Index{1, 2, 3}, Index{4, 5, 6}, Index{2, 3, 4}});
  const OctagonInvariant invariant = OctagonInvariant::Infer(points);
  EXPECT_TRUE(invariant.Satisfies(Index{2, 3, 4}));
  EXPECT_FALSE(invariant.Satisfies(Index{4, 2, 3}));  // Violates x0 - x1.
  EXPECT_FALSE(invariant.Rasterize(shape).empty());
}

TEST(OctagonInvariantTest, ToStringListsConstraints) {
  const Shape shape{16, 16};
  const IndexSet points = PointsOf(shape, {Index{1, 2}, Index{3, 4}});
  const std::string rendered =
      OctagonInvariant::Infer(points).ToString();
  EXPECT_NE(rendered.find("1 <= x0 <= 3"), std::string::npos);
  EXPECT_NE(rendered.find("x0 - x1"), std::string::npos);
  EXPECT_NE(rendered.find("x0 + x1"), std::string::npos);
}

TEST(OctagonInvariantTest, SinglePointIsExact) {
  const Shape shape{8, 8};
  const IndexSet points = PointsOf(shape, {Index{3, 5}});
  const OctagonInvariant invariant = OctagonInvariant::Infer(points);
  const IndexSet raster = invariant.Rasterize(shape);
  EXPECT_EQ(raster.size(), 1u);
  EXPECT_TRUE(raster.Contains(Index{3, 5}));
}

}  // namespace
}  // namespace kondo
