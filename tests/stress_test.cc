// Larger randomized stress tests: data-intensive shapes the micro tests
// don't reach (tens of thousands of events/intervals/points). Budgeted to
// stay under ~1 s each on a laptop core.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "audit/event_log.h"
#include "audit/interval_btree.h"
#include "carve/carver.h"
#include "common/interval_set.h"
#include "common/rng.h"
#include "geom/hull.h"

namespace kondo {
namespace {

TEST(StressTest, IntervalBTreeFiftyThousandInserts) {
  IntervalBTree tree(/*min_degree=*/16);
  Rng rng(1);
  int64_t max_end_inserted = 0;
  for (int i = 0; i < 50000; ++i) {
    const int64_t begin = rng.UniformInt(0, 1 << 20);
    const int64_t end = begin + rng.UniformInt(1, 512);
    tree.Insert(Interval{begin, end}, i);
    max_end_inserted = std::max(max_end_inserted, end);
  }
  EXPECT_EQ(tree.size(), 50000);
  tree.CheckInvariants();
  // Height stays logarithmic: degree-16 B-tree with 50k entries is shallow.
  EXPECT_LE(tree.Height(), 5);
  // Full-range scan sees everything.
  EXPECT_EQ(tree.QueryOverlaps(0, max_end_inserted).size(), 50000u);
}

TEST(StressTest, EventLogHundredThousandEvents) {
  EventLog log;
  Rng rng(2);
  for (int i = 0; i < 100000; ++i) {
    Event event;
    event.id = EventId{rng.UniformInt(1, 4), rng.UniformInt(1, 2)};
    event.type = EventType::kPread;
    event.offset = rng.UniformInt(0, 1 << 22);
    event.size = rng.UniformInt(1, 256);
    log.Record(event);
  }
  EXPECT_EQ(log.NumEvents(), 100000);
  // Derived state stays coherent.
  for (int64_t file = 1; file <= 2; ++file) {
    int64_t per_process_total = 0;
    IntervalSet merged;
    for (int64_t pid = 1; pid <= 4; ++pid) {
      const IntervalSet ranges = log.AccessedRangesForProcess(pid, file);
      per_process_total += ranges.TotalLength();
      merged.Union(ranges);
    }
    EXPECT_EQ(merged.TotalLength(), log.AccessedRanges(file).TotalLength());
    EXPECT_GE(per_process_total, log.AccessedRanges(file).TotalLength());
  }
}

TEST(StressTest, IntervalSetAdversarialCoalescing) {
  // Insert a comb of ten thousand teeth, then close every gap; the set
  // must collapse to a single interval.
  IntervalSet set;
  for (int64_t i = 0; i < 10000; ++i) {
    set.Add(i * 4, i * 4 + 2);
  }
  EXPECT_EQ(set.size(), 10000u);
  for (int64_t i = 0; i < 10000; ++i) {
    set.Add(i * 4 + 2, i * 4 + 4);
  }
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.TotalLength(), 40000);
}

TEST(StressTest, HullOverFiveThousand3DPoints) {
  Rng rng(3);
  std::vector<Vec3> points;
  points.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    points.push_back(Vec3(rng.UniformDouble(0, 100),
                          rng.UniformDouble(0, 100),
                          rng.UniformDouble(0, 100)));
  }
  const Hull hull = Hull::Build(points, 3);
  EXPECT_EQ(hull.affine_rank(), 3);
  // Spot-check containment on a sample (full scan is O(n * facets)).
  for (int i = 0; i < 5000; i += 50) {
    EXPECT_TRUE(hull.Contains(points[static_cast<size_t>(i)], 1e-6)) << i;
  }
  // The hull of ~uniform points in a cube approaches the cube volume.
  EXPECT_GT(hull.Measure(), 0.8 * 100 * 100 * 100);
  EXPECT_LE(hull.Measure(), 100.0 * 100 * 100 + 1e-6);
}

TEST(StressTest, CarveTenThousandScatteredPoints) {
  const Shape shape{512, 512};
  IndexSet points(shape);
  Rng rng(4);
  // 20 clusters of 500 points each.
  for (int c = 0; c < 20; ++c) {
    const int64_t cx = rng.UniformInt(30, 480);
    const int64_t cy = rng.UniformInt(30, 480);
    for (int i = 0; i < 500; ++i) {
      points.Insert(Index{cx + rng.UniformInt(-25, 25),
                          cy + rng.UniformInt(-25, 25)});
    }
  }
  Carver carver(CarveConfig{});
  CarveStats stats;
  const CarvedSubset carved = carver.Carve(points, &stats);
  EXPECT_GT(stats.initial_hulls, 20);
  EXPECT_LE(stats.final_hulls, stats.initial_hulls);
  // No observed point may be dropped.
  const IndexSet raster = carved.Rasterize();
  EXPECT_TRUE(points.IsSubsetOf(raster));
}

}  // namespace
}  // namespace kondo
