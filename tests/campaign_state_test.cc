#include <gtest/gtest.h>

#include <string>

#include "core/debloat_test.h"
#include "fuzz/campaign_state.h"
#include "workloads/registry.h"

namespace kondo {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

CampaignState SmallCampaign() {
  CampaignState state;
  state.shape = Shape{16, 16};
  state.discovered = IndexSet(state.shape);
  state.discovered.Insert(Index{1, 2});
  state.discovered.Insert(Index{15, 15});
  state.seeds.push_back(Seed{{3.0, 4.0}, true});
  state.seeds.push_back(Seed{{100.0, -2.5}, false});
  return state;
}

TEST(CampaignStateTest, RoundTrip) {
  const std::string path = TempPath("campaign.kcs");
  ASSERT_TRUE(SaveCampaignState(path, SmallCampaign()).ok());
  StatusOr<CampaignState> loaded = LoadCampaignState(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->shape, (Shape{16, 16}));
  ASSERT_EQ(loaded->seeds.size(), 2u);
  EXPECT_TRUE(loaded->seeds[0].useful);
  EXPECT_DOUBLE_EQ(loaded->seeds[0].value[1], 4.0);
  EXPECT_FALSE(loaded->seeds[1].useful);
  EXPECT_DOUBLE_EQ(loaded->seeds[1].value[1], -2.5);
  EXPECT_EQ(loaded->discovered.size(), 2u);
  EXPECT_TRUE(loaded->discovered.Contains(Index{1, 2}));
}

TEST(CampaignStateTest, DoublePrecisionPreserved) {
  CampaignState state = SmallCampaign();
  state.seeds[0].value = {0.1234567890123456789, 1e-300};
  const std::string path = TempPath("precise.kcs");
  ASSERT_TRUE(SaveCampaignState(path, state).ok());
  StatusOr<CampaignState> loaded = LoadCampaignState(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->seeds[0].value[0], state.seeds[0].value[0]);
  EXPECT_DOUBLE_EQ(loaded->seeds[0].value[1], 1e-300);
}

TEST(CampaignStateTest, RejectsGarbage) {
  const std::string path = TempPath("garbage.kcs");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("not a campaign\n", f);
  std::fclose(f);
  EXPECT_FALSE(LoadCampaignState(path).ok());
}

TEST(CampaignStateTest, RejectsOutOfRangeIds) {
  const std::string path = TempPath("badid.kcs");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("KCS1 2 4 4\nI 99\n", f);
  std::fclose(f);
  EXPECT_FALSE(LoadCampaignState(path).ok());
}

TEST(CampaignStateTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadCampaignState(TempPath("absent.kcs")).status().code(),
            StatusCode::kNotFound);
}

TEST(CampaignStateTest, MergeUnionsDiscoveryAndConcatenatesSeeds) {
  CampaignState base = SmallCampaign();
  CampaignState extra;
  extra.shape = base.shape;
  extra.discovered = IndexSet(extra.shape);
  extra.discovered.Insert(Index{1, 2});  // Duplicate.
  extra.discovered.Insert(Index{0, 0});  // New.
  extra.seeds.push_back(Seed{{7.0, 7.0}, true});
  MergeCampaignState(&base, extra);
  EXPECT_EQ(base.seeds.size(), 3u);
  EXPECT_EQ(base.discovered.size(), 3u);
}

TEST(CampaignStateTest, ResumedCampaignExtendsDiscovery) {
  // A short campaign persisted, then a second campaign merged in: the
  // combined state discovers at least as much as either alone.
  const std::unique_ptr<Program> program = CreateProgram("CS", 64);
  const DebloatTestFn test = MakeDebloatTest(*program);

  FuzzConfig short_config;
  short_config.max_iter = 150;
  FuzzSchedule first(program->param_space(), program->data_shape(),
                     short_config, 1);
  CampaignState state =
      MakeCampaignState(program->data_shape(), first.Run(test));
  const size_t after_first = state.discovered.size();

  const std::string path = TempPath("resume.kcs");
  ASSERT_TRUE(SaveCampaignState(path, state).ok());
  StatusOr<CampaignState> reloaded = LoadCampaignState(path);
  ASSERT_TRUE(reloaded.ok());

  FuzzSchedule second(program->param_space(), program->data_shape(),
                      short_config, 2);
  MergeCampaignState(&*reloaded,
                     MakeCampaignState(program->data_shape(),
                                       second.Run(test)));
  EXPECT_GE(reloaded->discovered.size(), after_first);
  EXPECT_GE(reloaded->seeds.size(), 2u);
}

}  // namespace
}  // namespace kondo
