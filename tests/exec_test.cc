// Tests for the parallel campaign executor (src/exec/): thread pool and
// executor mechanics, the single-writer result channel, per-test RNG seed
// derivation, and the headline guarantee — `jobs = N` campaigns are
// bit-identical to `jobs = 1`, down to the on-disk lineage store.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "array/data_array.h"
#include "array/index_set.h"
#include "array/kdf_file.h"
#include "array/shape.h"
#include "audit/event.h"
#include "audit/event_log.h"
#include "core/debloat_test.h"
#include "core/kondo.h"
#include "core/metrics.h"
#include "exec/campaign_executor.h"
#include "exec/result_collector.h"
#include "exec/test_candidate.h"
#include "exec/thread_pool.h"
#include "provenance/kel2_reader.h"
#include "provenance/persist.h"
#include "workloads/registry.h"

namespace kondo {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<int64_t> SortedLinear(const IndexSet& set, const Shape& shape) {
  std::vector<int64_t> ids;
  ids.reserve(set.size());
  set.ForEach(
      [&ids, &shape](const Index& index) { ids.push_back(shape.Linearize(index)); });
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ------------------------------------------------------------- Seed KDF --

TEST(DeriveTestSeedTest, DeterministicAcrossCalls) {
  EXPECT_EQ(DeriveTestSeed(42, 3, 17), DeriveTestSeed(42, 3, 17));
}

TEST(DeriveTestSeedTest, DistinctAcrossIdentityGrid) {
  // The stream seed must separate candidates by (campaign, round, index) —
  // collisions would correlate "independent" test RNGs.
  std::set<uint64_t> seen;
  for (uint64_t campaign : {1u, 2u, 99u}) {
    for (int round = 0; round < 8; ++round) {
      for (int index = 0; index < 32; ++index) {
        seen.insert(DeriveTestSeed(campaign, round, index));
      }
    }
  }
  EXPECT_EQ(seen.size(), 3u * 8u * 32u);
}

// ---------------------------------------------------------- Thread pool --

TEST(ThreadPoolTest, ExecutesEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, ClampJobsBounds) {
  EXPECT_GE(HardwareThreads(), 1);
  EXPECT_EQ(ClampJobs(0), 1);
  EXPECT_EQ(ClampJobs(-7), 1);
  EXPECT_EQ(ClampJobs(4), 4);
  EXPECT_EQ(ClampJobs(3, 2), 2);
  const int huge = ClampJobs(1000000);
  EXPECT_GE(huge, 1);
  EXPECT_LE(huge, std::max(64, 8 * HardwareThreads()));
}

// ------------------------------------------------------------- Executor --

TEST(CampaignExecutorTest, MapPreservesItemOrder) {
  CampaignExecutor executor(4);
  EXPECT_EQ(executor.jobs(), 4);
  const std::vector<int64_t> squares =
      executor.Map<int64_t>(100, [](int64_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 100u);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(squares[static_cast<size_t>(i)], i * i);
  }
}

TEST(CampaignExecutorTest, SerialExecutorRunsInline) {
  CampaignExecutor executor(1);
  const std::thread::id caller = std::this_thread::get_id();
  bool inline_everywhere = true;
  executor.ParallelFor(16, [&caller, &inline_everywhere](int64_t) {
    if (std::this_thread::get_id() != caller) {
      inline_everywhere = false;
    }
  });
  EXPECT_TRUE(inline_everywhere);
}

TEST(CampaignExecutorTest, RethrowsFirstWorkerException) {
  CampaignExecutor executor(4);
  EXPECT_THROW(executor.ParallelFor(
                   50,
                   [](int64_t i) {
                     if (i == 17) {
                       throw std::runtime_error("worker failure");
                     }
                   }),
               std::runtime_error);
}

TEST(CampaignExecutorTest, RunBatchAlignsResultsWithCandidates) {
  const Shape shape{32};
  std::vector<TestCandidate> batch;
  for (int i = 0; i < 24; ++i) {
    TestCandidate candidate;
    candidate.value = {static_cast<double>(i)};
    candidate.round = 1;
    candidate.index = i;
    candidate.seq = i;
    batch.push_back(candidate);
  }
  CampaignExecutor executor(4);
  const std::vector<CandidateResult> results = executor.RunBatch(
      batch, [&shape](const TestCandidate& candidate) {
        CandidateResult result;
        result.accessed = IndexSet(shape);
        result.accessed.Insert(
            Index{static_cast<int64_t>(candidate.value[0])});
        return result;
      });
  ASSERT_EQ(results.size(), batch.size());
  for (int64_t i = 0; i < 24; ++i) {
    EXPECT_TRUE(results[static_cast<size_t>(i)].accessed.Contains(Index{i}))
        << "slot " << i << " holds another candidate's result";
  }
}

// ------------------------------------------------------------ Collector --

TEST(ResultCollectorTest, MergesAccessSetsAndPersistsLogs) {
  const Shape shape{8, 8};
  int persisted_events = 0;
  ResultCollector collector(shape, [&persisted_events](const EventLog& log) {
    persisted_events += static_cast<int>(log.NumEvents());
    return OkStatus();
  });

  CandidateResult first;
  first.accessed = IndexSet(shape);
  first.accessed.Insert(Index{1, 1});
  first.log = std::make_shared<EventLog>();
  first.log->Record(Event{EventId{1, 0}, EventType::kRead, 0, 8});

  CandidateResult second;
  second.accessed = IndexSet(shape);
  second.accessed.Insert(Index{1, 1});
  second.accessed.Insert(Index{2, 3});

  ASSERT_TRUE(collector.Collect(first).ok());
  ASSERT_TRUE(collector.Collect(second).ok());
  EXPECT_EQ(collector.merged().size(), 2u);
  EXPECT_EQ(collector.collected(), 2);
  EXPECT_EQ(collector.persisted(), 1);  // Only `first` carried a log.
  EXPECT_EQ(persisted_events, 1);
}

TEST(ResultCollectorTest, MergesPerFileSetsWhenEnabled) {
  const Shape shape{4, 4};
  ResultCollector collector(shape);
  collector.EnablePerFile({Shape{4}, Shape{4}});

  CandidateResult result;
  result.accessed = IndexSet(shape);
  result.per_file.emplace_back(Shape{4});
  result.per_file.emplace_back(Shape{4});
  result.per_file[0].Insert(Index{2});
  result.per_file[1].Insert(Index{3});
  ASSERT_TRUE(collector.Collect(result).ok());

  ASSERT_EQ(collector.per_file().size(), 2u);
  EXPECT_TRUE(collector.per_file()[0].Contains(Index{2}));
  EXPECT_TRUE(collector.per_file()[1].Contains(Index{3}));
}

// Satellite 1 (regression): an overlapping Collect must be rejected with a
// clear Status, never silently interleaved into the lineage store.
TEST(ResultCollectorTest, RejectsConcurrentCollect) {
  const Shape shape{4};
  std::mutex mu;
  std::condition_variable cv;
  bool inside_persist = false;
  bool release_persist = false;

  ResultCollector collector(
      shape, [&](const EventLog&) {
        std::unique_lock<std::mutex> lock(mu);
        inside_persist = true;
        cv.notify_all();
        cv.wait(lock, [&release_persist] { return release_persist; });
        return OkStatus();
      });

  CandidateResult with_log;
  with_log.accessed = IndexSet(shape);
  with_log.log = std::make_shared<EventLog>();
  with_log.log->Record(Event{EventId{1, 0}, EventType::kRead, 0, 4});

  Status background_status;
  std::thread writer([&collector, &with_log, &background_status] {
    background_status = collector.Collect(with_log);
  });
  {
    // Wait until the first Collect is parked inside the persist sink, so the
    // second call below genuinely overlaps it.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&inside_persist] { return inside_persist; });
  }

  CandidateResult plain;
  plain.accessed = IndexSet(shape);
  const Status overlapping = collector.Collect(plain);
  EXPECT_EQ(overlapping.code(), StatusCode::kFailedPrecondition);

  {
    std::lock_guard<std::mutex> lock(mu);
    release_persist = true;
  }
  cv.notify_all();
  writer.join();
  EXPECT_TRUE(background_status.ok());
  EXPECT_EQ(collector.collected(), 1);
}

// Satellite 1 (regression): concurrent audited runs persisting to ONE KEL2
// store must serialize through MakeSerializedPersister — the sealed store
// then contains every run's events intact.
TEST(SerializedPersisterTest, ConcurrentPersistenceYieldsValidStore) {
  const std::string path = TempPath("concurrent_lineage.kel2");
  StatusOr<CampaignLineageSink> sink = CampaignLineageSink::Create(path);
  ASSERT_TRUE(sink.ok());
  const AuditPersistFn persist = MakeSerializedPersister(sink->persister());

  constexpr int kThreads = 8;
  constexpr int kLogsPerThread = 10;
  constexpr int kEventsPerLog = 5;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t, &persist, &failures] {
      for (int i = 0; i < kLogsPerThread; ++i) {
        EventLog log;
        for (int e = 0; e < kEventsPerLog; ++e) {
          log.Record(Event{EventId{1 + t * kLogsPerThread + i, 0},
                           EventType::kRead, static_cast<int64_t>(e) * 8, 8});
        }
        if (!persist(log).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& writer : writers) {
    writer.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(sink->runs(), kThreads * kLogsPerThread);
  ASSERT_TRUE(sink->Close().ok());

  StatusOr<std::vector<Event>> events = ReadLineageStore(path);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->size(),
            static_cast<size_t>(kThreads * kLogsPerThread * kEventsPerLog));
}

// ---------------------------------------------------------- Determinism --

// Satellite 2 (regression): two workloads, jobs=1 vs jobs=4 — recall,
// precision, %debloat, and the carved hull set must all be identical.
TEST(ExecDeterminismTest, ParallelCampaignBitIdenticalToSerial) {
  for (const char* workload : {"CS", "LDC"}) {
    SCOPED_TRACE(workload);
    std::unique_ptr<Program> program = CreateProgram(workload, 48);
    ASSERT_NE(program, nullptr);

    KondoConfig serial_config;
    serial_config.rng_seed = 7;
    serial_config.fuzz.max_iter = 400;
    serial_config.jobs = 1;
    KondoConfig parallel_config = serial_config;
    parallel_config.jobs = 4;

    const KondoResult serial = KondoPipeline(serial_config).Run(*program);
    const KondoResult parallel = KondoPipeline(parallel_config).Run(*program);

    // Same evaluations, same discoveries, same seeds — the fuzz campaign
    // replayed identically.
    EXPECT_EQ(parallel.fuzz.stats.iterations, serial.fuzz.stats.iterations);
    EXPECT_EQ(parallel.fuzz.stats.evaluations, serial.fuzz.stats.evaluations);
    EXPECT_EQ(parallel.fuzz.stats.restarts, serial.fuzz.stats.restarts);
    ASSERT_EQ(parallel.fuzz.seeds.size(), serial.fuzz.seeds.size());
    for (size_t i = 0; i < serial.fuzz.seeds.size(); ++i) {
      EXPECT_EQ(parallel.fuzz.seeds[i].value, serial.fuzz.seeds[i].value);
      EXPECT_EQ(parallel.fuzz.seeds[i].useful, serial.fuzz.seeds[i].useful);
    }
    EXPECT_EQ(SortedLinear(parallel.fuzz.discovered, program->data_shape()),
              SortedLinear(serial.fuzz.discovered, program->data_shape()));

    // Identical carved hull set and rasterised subset => identical %debloat.
    EXPECT_EQ(parallel.carve_stats.final_hulls, serial.carve_stats.final_hulls);
    EXPECT_EQ(SortedLinear(parallel.approx, program->data_shape()),
              SortedLinear(serial.approx, program->data_shape()));

    const AccuracyMetrics serial_metrics =
        ComputeAccuracy(program->GroundTruth(), serial.approx);
    const AccuracyMetrics parallel_metrics =
        ComputeAccuracy(program->GroundTruth(), parallel.approx);
    EXPECT_DOUBLE_EQ(parallel_metrics.recall, serial_metrics.recall);
    EXPECT_DOUBLE_EQ(parallel_metrics.precision, serial_metrics.precision);
    EXPECT_EQ(parallel_metrics.approx_size, serial_metrics.approx_size);
  }
}

// Tentpole guarantee, audited end-to-end: with the single-writer collector
// channel the on-disk KEL2 lineage of a jobs=4 campaign is byte-identical
// to the jobs=1 campaign — same runs, same order, same bytes.
TEST(ExecDeterminismTest, AuditedLineageStoreByteIdenticalAcrossJobs) {
  std::unique_ptr<Program> program = CreateProgram("CS", 32);
  DataArray array(program->data_shape(), DType::kFloat64);
  array.FillPattern(77);
  const std::string data_path = TempPath("exec_lineage.kdf");
  ASSERT_TRUE(WriteKdfFile(data_path, array).ok());

  auto run_campaign = [&](int jobs, const std::string& store_path) {
    StatusOr<CampaignLineageSink> sink =
        CampaignLineageSink::Create(store_path);
    EXPECT_TRUE(sink.ok());
    ResultCollector collector(program->data_shape(), sink->persister());
    KondoConfig config;
    config.rng_seed = 11;
    config.fuzz.max_iter = 200;
    config.jobs = jobs;
    const KondoResult result = KondoPipeline(config).RunWithCandidateTest(
        MakeAuditedCandidateTest(*program, data_path),
        program->param_space(), program->data_shape(), &collector);
    EXPECT_EQ(collector.persisted(), result.fuzz.stats.evaluations);
    EXPECT_TRUE(sink->Close().ok());
    return result;
  };

  const std::string serial_store = TempPath("lineage_jobs1.kel2");
  const std::string parallel_store = TempPath("lineage_jobs4.kel2");
  const KondoResult serial = run_campaign(1, serial_store);
  const KondoResult parallel = run_campaign(4, parallel_store);

  EXPECT_EQ(parallel.fuzz.stats.evaluations, serial.fuzz.stats.evaluations);
  EXPECT_EQ(SortedLinear(parallel.approx, program->data_shape()),
            SortedLinear(serial.approx, program->data_shape()));

  const std::string serial_bytes = ReadFileBytes(serial_store);
  const std::string parallel_bytes = ReadFileBytes(parallel_store);
  ASSERT_FALSE(serial_bytes.empty());
  EXPECT_EQ(parallel_bytes, serial_bytes)
      << "parallel campaign diverged from the serial lineage store";

  // The store is queryable and holds one audited run per evaluation
  // (pid = 1 + seq, assigned at candidate-generation time).
  StatusOr<std::vector<Event>> events = ReadLineageStore(parallel_store);
  ASSERT_TRUE(events.ok());
  std::set<int64_t> pids;
  for (const Event& event : *events) {
    pids.insert(event.id.pid);
  }
  EXPECT_EQ(static_cast<int>(pids.size()),
            parallel.fuzz.stats.evaluations);
}

// The executor overload of FuzzSchedule::Run must reproduce the serial
// convenience overload exactly, for any jobs value.
TEST(ExecDeterminismTest, ScheduleExecutorOverloadMatchesSerialOverload) {
  std::unique_ptr<Program> program = CreateProgram("PRL", 40);
  const uint64_t seed = 19;
  FuzzConfig config;
  config.max_iter = 300;

  FuzzSchedule serial_schedule(program->param_space(), program->data_shape(),
                               config, seed);
  const FuzzResult serial = serial_schedule.Run(
      [&program](const ParamValue& v) { return program->AccessSet(v); });

  FuzzSchedule parallel_schedule(program->param_space(),
                                 program->data_shape(), config, seed);
  CampaignExecutor executor(3);
  const FuzzResult parallel =
      parallel_schedule.Run(executor, MakeCandidateTest(*program));

  EXPECT_EQ(parallel.stats.iterations, serial.stats.iterations);
  EXPECT_EQ(parallel.stats.evaluations, serial.stats.evaluations);
  EXPECT_EQ(parallel.stats.useful_evaluations,
            serial.stats.useful_evaluations);
  EXPECT_EQ(parallel.stats.restarts, serial.stats.restarts);
  EXPECT_DOUBLE_EQ(parallel.stats.final_epsilon, serial.stats.final_epsilon);
  ASSERT_EQ(parallel.seeds.size(), serial.seeds.size());
  for (size_t i = 0; i < serial.seeds.size(); ++i) {
    EXPECT_EQ(parallel.seeds[i].value, serial.seeds[i].value);
  }
  EXPECT_EQ(SortedLinear(parallel.discovered, program->data_shape()),
            SortedLinear(serial.discovered, program->data_shape()));
}

}  // namespace
}  // namespace kondo
