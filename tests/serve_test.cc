// Tests for the serve subsystem: the KPC wire codec, the fingerprint-keyed
// subset cache, ThreadPool job handles, and the daemon end-to-end over
// unix-domain and TCP sockets — including the cache's hit/miss byte
// identity, stale-fingerprint invalidation, campaign admission control,
// and clean shutdown with jobs still pending.

#include <sys/socket.h>
#include <sys/stat.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "array/data_array.h"
#include "array/debloated_array.h"
#include "array/index_set.h"
#include "common/socket.h"
#include "exec/thread_pool.h"
#include "gtest/gtest.h"
#include "pack/pack_writer.h"
#include "provenance/kel2_writer.h"
#include "serve/artifact_pool.h"
#include "serve/blast.h"
#include "serve/client.h"
#include "serve/kpc.h"
#include "serve/server.h"
#include "serve/subset_cache.h"

namespace kondo {
namespace {

// ---------------------------------------------------------------------------
// KPC codec.

TEST(KpcCodecTest, FetchSubsetRoundTrip) {
  FetchSubsetRequest request;
  request.artifact = "main.kdd";
  request.begin = 7;
  request.end = 123;
  auto decoded_request = FetchSubsetRequest::Decode(request.Encode());
  ASSERT_TRUE(decoded_request.ok()) << decoded_request.status();
  EXPECT_EQ(decoded_request->artifact, "main.kdd");
  EXPECT_EQ(decoded_request->begin, 7);
  EXPECT_EQ(decoded_request->end, 123);

  FetchSubsetResponse response;
  response.fingerprint_bytes = 1234;
  response.fingerprint_crc = 0xdeadbeef;
  response.begin = 7;
  response.end = 10;
  response.present = {1, 0, 1};
  response.values = {3.25, -0.5};
  auto decoded = FetchSubsetResponse::Decode(response.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->fingerprint_bytes, 1234);
  EXPECT_EQ(decoded->fingerprint_crc, 0xdeadbeefu);
  EXPECT_EQ(decoded->present, (std::vector<uint8_t>{1, 0, 1}));
  EXPECT_EQ(decoded->values, (std::vector<double>{3.25, -0.5}));
}

TEST(KpcCodecTest, EncodingIsDeterministic) {
  FetchSubsetResponse response;
  response.fingerprint_bytes = 99;
  response.begin = 0;
  response.end = 2;
  response.present = {1, 1};
  response.values = {1.0, 2.0};
  EXPECT_EQ(response.Encode(), response.Encode());

  std::string frame_a, frame_b;
  AppendKpcFrame(KpcKind::kFetchSubsetResponse, response.Encode(), &frame_a);
  AppendKpcFrame(KpcKind::kFetchSubsetResponse, response.Encode(), &frame_b);
  EXPECT_EQ(frame_a, frame_b);
}

TEST(KpcCodecTest, QueryAndSubmitRoundTrip) {
  QueryRequest query;
  query.store = "merged.kel2";
  query.file_id = 3;
  query.begin = 64;
  query.end = 4096;
  query.runs_only = 1;
  auto decoded_query = QueryRequest::Decode(query.Encode());
  ASSERT_TRUE(decoded_query.ok()) << decoded_query.status();
  EXPECT_EQ(decoded_query->store, "merged.kel2");
  EXPECT_EQ(decoded_query->file_id, 3);
  EXPECT_EQ(decoded_query->runs_only, 1);

  EventBatch batch;
  Event event;
  event.id.pid = 42;
  event.id.file_id = 3;
  event.type = EventType::kPread;
  event.offset = 512;
  event.size = 8;
  batch.events = {event, event};
  auto decoded_batch = EventBatch::Decode(batch.Encode());
  ASSERT_TRUE(decoded_batch.ok()) << decoded_batch.status();
  ASSERT_EQ(decoded_batch->events.size(), 2u);
  EXPECT_EQ(decoded_batch->events[1].id.pid, 42);
  EXPECT_EQ(decoded_batch->events[1].offset, 512);

  QueryDone done;
  done.events_total = 9;
  done.runs = {1, 5, 9};
  done.blocks_considered = 4;
  done.blocks_skipped = 3;
  done.blocks_decoded = 1;
  auto decoded_done = QueryDone::Decode(done.Encode());
  ASSERT_TRUE(decoded_done.ok()) << decoded_done.status();
  EXPECT_EQ(decoded_done->runs, (std::vector<int64_t>{1, 5, 9}));
  EXPECT_EQ(decoded_done->blocks_skipped, 3);

  SubmitRequest submit;
  submit.program = "CS";
  submit.seed = 11;
  submit.max_evals = 100;
  submit.max_iter = 50;
  auto decoded_submit = SubmitRequest::Decode(submit.Encode());
  ASSERT_TRUE(decoded_submit.ok()) << decoded_submit.status();
  EXPECT_EQ(decoded_submit->program, "CS");
  EXPECT_EQ(decoded_submit->seed, 11);

  SubmitResponse verdict;
  verdict.accepted = 1;
  verdict.job_id = 17;
  verdict.queue_depth = 2;
  verdict.message = "accepted";
  auto decoded_verdict = SubmitResponse::Decode(verdict.Encode());
  ASSERT_TRUE(decoded_verdict.ok()) << decoded_verdict.status();
  EXPECT_EQ(decoded_verdict->job_id, 17);
  EXPECT_EQ(decoded_verdict->message, "accepted");
}

TEST(KpcCodecTest, StatsRoundTrip) {
  ServeStatsSnapshot stats;
  stats.cache_hits = 10;
  stats.cache_misses = 2;
  stats.campaigns_completed = 5;
  stats.verbs[kVerbFetchSubset].count = 12;
  stats.verbs[kVerbFetchSubset].total_micros = 3400;
  stats.verbs[kVerbFetchSubset].max_micros = 900;
  stats.verbs[kVerbFetchSubset].buckets[10] = 12;
  auto decoded = ServeStatsSnapshot::Decode(stats.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->cache_hits, 10);
  EXPECT_EQ(decoded->campaigns_completed, 5);
  EXPECT_EQ(decoded->verbs[kVerbFetchSubset].count, 12);
  EXPECT_EQ(decoded->verbs[kVerbFetchSubset].buckets[10], 12);
}

TEST(KpcCodecTest, ErrorCarriesStatus) {
  const Status original = NotFoundError("no such artifact");
  const KpcError error = KpcError::FromStatus(original);
  auto decoded = KpcError::Decode(error.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const Status round_tripped = decoded->ToStatus();
  EXPECT_EQ(round_tripped.code(), StatusCode::kNotFound);
  EXPECT_EQ(round_tripped.message(), "no such artifact");
}

TEST(KpcCodecTest, DecodeRejectsTruncatedPayload) {
  FetchSubsetRequest request;
  request.artifact = "a.kdd";
  const std::string payload = request.Encode();
  const auto truncated =
      FetchSubsetRequest::Decode(std::string_view(payload).substr(
          0, payload.size() - 1));
  EXPECT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kDataLoss);
  // Trailing junk is rejected too: a payload must decode exactly.
  const auto padded = FetchSubsetRequest::Decode(payload + "x");
  EXPECT_FALSE(padded.ok());
}

// A connected socket pair for exercising the frame layer without a server.
struct SocketPair {
  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = std::make_unique<Connection>(fds[0]);
    b = std::make_unique<Connection>(fds[1]);
  }
  std::unique_ptr<Connection> a;
  std::unique_ptr<Connection> b;
};

TEST(KpcFrameTest, WriteReadRoundTrip) {
  SocketPair pair;
  ASSERT_TRUE(
      WriteKpcFrame(*pair.a, KpcKind::kStatsRequest, "payload!").ok());
  auto frame = ReadKpcFrame(*pair.b);
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->kind, KpcKind::kStatsRequest);
  EXPECT_EQ(frame->payload, "payload!");
}

TEST(KpcFrameTest, DetectsCorruption) {
  SocketPair pair;
  std::string frame;
  AppendKpcFrame(KpcKind::kStatsRequest, "payload!", &frame);
  frame[kKpcHeaderBytes] ^= 0x01;  // Flip one payload bit.
  ASSERT_TRUE(pair.a->WriteFully(frame.data(), frame.size()).ok());
  auto read = ReadKpcFrame(*pair.b);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
}

TEST(KpcFrameTest, RejectsBadMagic) {
  SocketPair pair;
  std::string frame;
  AppendKpcFrame(KpcKind::kStatsRequest, "", &frame);
  frame[0] = 'X';
  ASSERT_TRUE(pair.a->WriteFully(frame.data(), frame.size()).ok());
  auto read = ReadKpcFrame(*pair.b);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
}

TEST(KpcFrameTest, CleanEofIsOutOfRange) {
  SocketPair pair;
  pair.a->ShutdownWrite();
  auto read = ReadKpcFrame(*pair.b);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kOutOfRange);
}

// ---------------------------------------------------------------------------
// Subset cache.

SubsetKey MakeKey(const std::string& artifact, int64_t begin, int64_t end) {
  SubsetKey key;
  key.artifact = artifact;
  key.fingerprint_bytes = 100;
  key.fingerprint_crc = 0xabcd;
  key.begin = begin;
  key.end = end;
  return key;
}

TEST(SubsetCacheTest, HitReturnsIdenticalBytes) {
  SubsetCache cache(1 << 20);
  const SubsetKey key = MakeKey("a.kdd", 0, 64);
  EXPECT_EQ(cache.Get(key), nullptr);
  auto inserted = cache.Put(key, "the exact payload");
  auto hit = cache.Get(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "the exact payload");
  EXPECT_EQ(hit.get(), inserted.get());  // Same object, not a copy.
  const SubsetCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1);
}

TEST(SubsetCacheTest, EvictionIsDeterministicLru) {
  // Capacity fits exactly two 8-byte payloads.
  SubsetCache cache(16);
  cache.Put(MakeKey("a.kdd", 0, 1), "11111111");
  cache.Put(MakeKey("a.kdd", 1, 2), "22222222");
  // Touch the first entry so the second becomes least recently used.
  ASSERT_NE(cache.Get(MakeKey("a.kdd", 0, 1)), nullptr);
  cache.Put(MakeKey("a.kdd", 2, 3), "33333333");
  EXPECT_NE(cache.Get(MakeKey("a.kdd", 0, 1)), nullptr);   // Kept (MRU).
  EXPECT_EQ(cache.Get(MakeKey("a.kdd", 1, 2)), nullptr);   // Evicted (LRU).
  EXPECT_NE(cache.Get(MakeKey("a.kdd", 2, 3)), nullptr);   // Newly inserted.
  const SubsetCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 2);
  EXPECT_EQ(stats.bytes, 16);
}

TEST(SubsetCacheTest, OversizedEntryIsServedNotCached) {
  SubsetCache cache(4);
  auto value = cache.Put(MakeKey("a.kdd", 0, 1), "way too large");
  EXPECT_EQ(*value, "way too large");
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.Get(MakeKey("a.kdd", 0, 1)), nullptr);
}

TEST(SubsetCacheTest, EvictStaleDropsOnlyChangedFingerprints) {
  SubsetCache cache(1 << 20);
  SubsetKey stale = MakeKey("a.kdd", 0, 64);
  stale.fingerprint_crc = 0x1111;
  SubsetKey fresh = MakeKey("a.kdd", 0, 64);
  fresh.fingerprint_crc = 0x2222;
  const SubsetKey other = MakeKey("b.kdd", 0, 64);
  cache.Put(stale, "old bytes");
  cache.Put(fresh, "new bytes");
  cache.Put(other, "unrelated");
  EXPECT_EQ(cache.EvictStale("a.kdd", fresh.fingerprint_bytes,
                             fresh.fingerprint_crc),
            1);
  EXPECT_EQ(cache.Get(stale), nullptr);
  EXPECT_NE(cache.Get(fresh), nullptr);
  EXPECT_NE(cache.Get(other), nullptr);
  EXPECT_EQ(cache.stats().stale_evictions, 1);
}

// ---------------------------------------------------------------------------
// ThreadPool job handles.

TEST(JobHandleTest, ReportsCompletionAndWaits) {
  ThreadPool pool(2);
  Mutex mu;
  int ran = 0;
  JobHandle job = pool.SubmitJob([&] {
    MutexLock lock(mu);
    ++ran;
  });
  ASSERT_TRUE(job.valid());
  job.Wait();
  EXPECT_TRUE(job.done());
  MutexLock lock(mu);
  EXPECT_EQ(ran, 1);
}

TEST(JobHandleTest, DefaultHandleIsDoneAndInvalid) {
  JobHandle job;
  EXPECT_FALSE(job.valid());
  EXPECT_TRUE(job.done());
  job.Wait();  // Must not block.
}

// ---------------------------------------------------------------------------
// Artifact pool.

TEST(ArtifactPoolTest, RejectsFilesystemAddressing) {
  ArtifactPool pool("/pool", 1 << 20);
  EXPECT_EQ(pool.ResolvePath("").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(pool.ResolvePath("/etc/passwd").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(pool.ResolvePath("../secret.kdd").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(pool.ResolvePath("sub/../../x.kdd").status().code(),
            StatusCode::kInvalidArgument);
  auto fine = pool.ResolvePath("sub/main.kdd");
  ASSERT_TRUE(fine.ok());
  EXPECT_EQ(*fine, "/pool/sub/main.kdd");
  // A dot-prefixed name is not a traversal.
  EXPECT_TRUE(pool.ResolvePath(".hidden.kdd").ok());
}

// ---------------------------------------------------------------------------
// End-to-end daemon tests.

/// The 8x8 debloated array the pool fixtures serve: FillPattern(seed) with
/// every fourth element retained.
DebloatedArray MakePoolArray(uint64_t seed) {
  DataArray data(Shape({8, 8}));
  data.FillPattern(seed);
  IndexSet retained(data.shape());
  for (int64_t linear = 0; linear < 64; linear += 4) {
    retained.InsertLinear(linear);
  }
  return DebloatedArray::FromDataArray(data, retained);
}

/// Writes an 8x8 debloated array with every fourth element retained.
void WritePoolArtifact(const std::string& path, uint64_t seed) {
  ASSERT_TRUE(MakePoolArray(seed).WriteFile(path).ok());
}

/// Packs the same array as a `.kdp` package.
void WritePoolPack(const std::string& path, uint64_t seed) {
  const StatusOr<PackStats> stats = WriteKdpFile(path, MakePoolArray(seed));
  ASSERT_TRUE(stats.ok()) << stats.status();
}

/// Writes a KEL2 store with `events` positioned reads, 4 events per block,
/// pid cycling 0..3, offsets marching 8 bytes at a time.
void WritePoolStore(const std::string& path, int64_t events) {
  Kel2WriterOptions options;
  options.events_per_block = 4;
  auto writer = Kel2Writer::Create(path, options);
  ASSERT_TRUE(writer.ok()) << writer.status();
  for (int64_t i = 0; i < events; ++i) {
    Event event;
    event.id.pid = i % 4;
    event.id.file_id = 1;
    event.type = EventType::kPread;
    event.offset = i * 8;
    event.size = 8;
    ASSERT_TRUE(writer->Append(event).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
}

class ServeTest : public ::testing::Test {
 protected:
  /// Starts a daemon over a fresh pool dir on a unix socket.
  void StartServer(ServeOptions options) {
    pool_root_ = ::testing::TempDir() + "/serve_pool_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name();
    std::remove((pool_root_ + "/main.kdd").c_str());
    std::remove((pool_root_ + "/trace.kel2").c_str());
    mkdir(pool_root_.c_str(), 0755);
    WritePoolArtifact(pool_root_ + "/main.kdd", /*seed=*/7);
    WritePoolStore(pool_root_ + "/trace.kel2", /*events=*/20);
    options.address.unix_path = pool_root_ + "/kondo.sock";
    options.pool_root = pool_root_;
    server_ = std::make_unique<KondoServer>(options);
    ASSERT_TRUE(server_->Start().ok());
  }

  std::unique_ptr<KpcClient> Client() {
    auto client = KpcClient::Connect(server_->bound_address());
    EXPECT_TRUE(client.ok()) << client.status();
    return client.ok() ? std::move(*client) : nullptr;
  }

  std::string pool_root_;
  std::unique_ptr<KondoServer> server_;
};

TEST_F(ServeTest, CacheHitIsByteIdenticalToMiss) {
  StartServer(ServeOptions{});
  auto client = Client();
  ASSERT_NE(client, nullptr);
  FetchSubsetRequest request;
  request.artifact = "main.kdd";
  request.begin = 0;
  request.end = 64;
  auto miss = client->FetchSubsetRaw(request);
  ASSERT_TRUE(miss.ok()) << miss.status();
  auto hit = client->FetchSubsetRaw(request);
  ASSERT_TRUE(hit.ok()) << hit.status();
  EXPECT_EQ(*miss, *hit);  // Bit-identical raw frames.

  // Read stats over the same connection: the session thread serves the
  // stats verb strictly after the previous dispatch (including its
  // latency recording) finished, so the counters are settled.
  const StatusOr<ServeStatsSnapshot> stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->cache_misses, 1);
  EXPECT_EQ(stats->cache_hits, 1);
  EXPECT_EQ(stats->verbs[kVerbFetchSubset].count, 2);

  // Decoded content matches the artifact: retained elements present.
  auto decoded = client->FetchSubset(request);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->present.size(), 64u);
  EXPECT_EQ(decoded->values.size(), 16u);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(decoded->present[i] != 0, i % 4 == 0) << "element " << i;
  }
  server_->Stop();
}

TEST_F(ServeTest, RewrittenArtifactInvalidatesCache) {
  StartServer(ServeOptions{});
  auto client = Client();
  ASSERT_NE(client, nullptr);
  FetchSubsetRequest request;
  request.artifact = "main.kdd";
  request.begin = 0;
  request.end = 64;
  auto before = client->FetchSubset(request);
  ASSERT_TRUE(before.ok()) << before.status();

  // Rewrite the pool file with different content.
  WritePoolArtifact(pool_root_ + "/main.kdd", /*seed=*/99);
  auto after = client->FetchSubset(request);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_NE(before->fingerprint_crc, after->fingerprint_crc);
  EXPECT_NE(before->values, after->values);

  const ServeStatsSnapshot stats = server_->Stats();
  EXPECT_EQ(stats.cache_hits, 0);
  EXPECT_EQ(stats.cache_misses, 2);
  EXPECT_EQ(stats.cache_stale_evictions, 1);
  server_->Stop();
}

// ---------------------------------------------------------------------------
// Packed (.kdp) artifacts through the pool and the daemon.

TEST(ArtifactPoolPackTest, PackHitReturnsIdenticalBytesToMiss) {
  const std::string root = ::testing::TempDir() + "/pack_pool_hit";
  mkdir(root.c_str(), 0755);
  WritePoolPack(root + "/main.kdp", /*seed=*/7);
  ArtifactPool pool(root, 1 << 20);
  FetchSubsetRequest request;
  request.artifact = "main.kdp";
  request.begin = 0;
  request.end = 64;
  auto miss = pool.FetchSubsetPayload(request);
  ASSERT_TRUE(miss.ok()) << miss.status();
  auto hit = pool.FetchSubsetPayload(request);
  ASSERT_TRUE(hit.ok()) << hit.status();
  EXPECT_EQ(**miss, **hit);
  EXPECT_EQ(miss->get(), hit->get());  // The very same cached string.
  EXPECT_EQ(pool.cache_stats().misses, 1);
  EXPECT_EQ(pool.cache_stats().hits, 1);
  EXPECT_EQ(pool.packs_open(), 1);

  // Decoded content matches the array that was packed: every fourth
  // element present.
  auto decoded = FetchSubsetResponse::Decode(**hit);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->present.size(), 64u);
  EXPECT_EQ(decoded->values.size(), 16u);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(decoded->present[i] != 0, i % 4 == 0) << "element " << i;
  }
}

TEST(ArtifactPoolPackTest, RepackEvictsStaleCachedSlices) {
  const std::string root = ::testing::TempDir() + "/pack_pool_repack";
  mkdir(root.c_str(), 0755);
  const std::string path = root + "/main.kdp";
  WritePoolPack(path, /*seed=*/7);
  ArtifactPool pool(root, 1 << 20);
  FetchSubsetRequest request;
  request.artifact = "main.kdp";
  request.begin = 0;
  request.end = 64;
  auto before = pool.FetchSubsetPayload(request);
  ASSERT_TRUE(before.ok()) << before.status();

  // Repack in place with different content: both the whole-file
  // fingerprint and the pack fingerprint (manifest CRC) change, so the
  // cached slice must be unreachable AND swept as stale, and the pooled
  // PackReader must be reopened.
  const StatusOr<PackStats> repacked =
      RepackKdpFile(path, path, MakePoolArray(/*seed=*/99));
  ASSERT_TRUE(repacked.ok()) << repacked.status();

  auto after = pool.FetchSubsetPayload(request);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_NE(**before, **after);
  EXPECT_EQ(pool.cache_stats().hits, 0);
  EXPECT_EQ(pool.cache_stats().misses, 2);
  EXPECT_EQ(pool.cache_stats().stale_evictions, 1);
  EXPECT_EQ(pool.packs_reopened(), 1);

  auto decoded_before = FetchSubsetResponse::Decode(**before);
  auto decoded_after = FetchSubsetResponse::Decode(**after);
  ASSERT_TRUE(decoded_before.ok() && decoded_after.ok());
  EXPECT_NE(decoded_before->values, decoded_after->values);

  // Post-repack hits are byte-identical to the post-repack miss.
  auto again = pool.FetchSubsetPayload(request);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(after->get(), again->get());
  EXPECT_EQ(pool.cache_stats().hits, 1);
}

TEST_F(ServeTest, PackedArtifactServesOverTheWire) {
  StartServer(ServeOptions{});
  WritePoolPack(pool_root_ + "/main.kdp", /*seed=*/7);
  auto client = Client();
  ASSERT_NE(client, nullptr);

  // The packed and the dense artifact carry the same D_Θ, so their decoded
  // subsets must agree element for element.
  FetchSubsetRequest packed_request;
  packed_request.artifact = "main.kdp";
  packed_request.begin = 0;
  packed_request.end = 64;
  auto packed = client->FetchSubset(packed_request);
  ASSERT_TRUE(packed.ok()) << packed.status();
  FetchSubsetRequest dense_request = packed_request;
  dense_request.artifact = "main.kdd";
  auto dense = client->FetchSubset(dense_request);
  ASSERT_TRUE(dense.ok()) << dense.status();
  EXPECT_EQ(packed->present, dense->present);
  EXPECT_EQ(packed->values, dense->values);

  // And raw hit/miss byte-identity holds for the packed path too.
  auto raw_miss = client->FetchSubsetRaw(packed_request);
  auto raw_hit = client->FetchSubsetRaw(packed_request);
  ASSERT_TRUE(raw_miss.ok() && raw_hit.ok());
  EXPECT_EQ(*raw_miss, *raw_hit);
  server_->Stop();
}

TEST_F(ServeTest, FetchErrorsAreStatusCarrying) {
  StartServer(ServeOptions{});
  auto client = Client();
  ASSERT_NE(client, nullptr);
  FetchSubsetRequest request;
  request.artifact = "absent.kdd";
  request.end = 8;
  EXPECT_EQ(client->FetchSubset(request).status().code(),
            StatusCode::kNotFound);
  request.artifact = "../escape.kdd";
  EXPECT_EQ(client->FetchSubset(request).status().code(),
            StatusCode::kInvalidArgument);
  request.artifact = "main.kdd";
  request.begin = 0;
  request.end = 1 << 20;  // Past the 64-element shape.
  EXPECT_EQ(client->FetchSubset(request).status().code(),
            StatusCode::kOutOfRange);
  // The connection survives application errors.
  request.end = 8;
  EXPECT_TRUE(client->FetchSubset(request).ok());
  server_->Stop();
}

TEST_F(ServeTest, QueryStreamsBatchesAndTotals) {
  ServeOptions options;
  options.events_per_batch = 4;
  StartServer(options);
  auto client = Client();
  ASSERT_NE(client, nullptr);
  QueryRequest request;
  request.store = "trace.kel2";
  request.file_id = 1;
  request.begin = 0;
  request.end = 96;  // Events 0..11 overlap (offsets 0,8,...,88).
  auto result = client->QueryProvenance(request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->done.events_total, 12);
  ASSERT_EQ(result->events.size(), 12u);  // 3 batches of 4, reassembled.
  for (size_t i = 0; i < result->events.size(); ++i) {
    EXPECT_EQ(result->events[i].offset, static_cast<int64_t>(i) * 8);
  }
  EXPECT_EQ(result->done.runs, (std::vector<int64_t>{0, 1, 2, 3}));
  // The store has 5 blocks (20 events, 4 per block); [0,96) needs 3.
  EXPECT_EQ(result->done.blocks_considered, 5);
  EXPECT_EQ(result->done.blocks_decoded, 3);
  EXPECT_EQ(result->done.blocks_skipped, 2);

  // runs_only suppresses the event stream but keeps the totals.
  request.runs_only = 1;
  auto runs = client->QueryProvenance(request);
  ASSERT_TRUE(runs.ok()) << runs.status();
  EXPECT_TRUE(runs->events.empty());
  EXPECT_EQ(runs->done.events_total, 12);
  EXPECT_EQ(runs->done.runs, (std::vector<int64_t>{0, 1, 2, 3}));
  // Block counters are per-query deltas, not the store's lifetime
  // totals: the repeat considers the same 5 blocks but decodes none
  // fresh — the store's decode memo serves all three.
  EXPECT_EQ(runs->done.blocks_considered, 5);
  EXPECT_EQ(runs->done.blocks_skipped, 2);
  EXPECT_EQ(runs->done.blocks_decoded, 0);
  server_->Stop();
}

TEST_F(ServeTest, SubmitRunsCampaignAndWritesLineage) {
  ServeOptions options;
  options.jobs = 2;
  StartServer(options);
  auto client = Client();
  ASSERT_NE(client, nullptr);
  SubmitRequest request;
  request.program = "CS";
  request.seed = 5;
  request.max_iter = 30;
  auto response = client->SubmitCampaign(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->accepted, 1);
  EXPECT_EQ(response->job_id, 1);
  server_->Stop();  // Drains the job.

  const ServeStatsSnapshot stats = server_->Stats();
  EXPECT_EQ(stats.campaigns_submitted, 1);
  EXPECT_EQ(stats.campaigns_completed, 1);
  EXPECT_EQ(stats.campaigns_failed, 0);
  EXPECT_EQ(stats.campaign_queue_depth, 0);
  EXPECT_EQ(stats.campaign_inflight, 0);
  EXPECT_GT(stats.lineage_bytes_written, 0);

  // The lineage store the job wrote is a queryable pool member.
  auto store = ProvenanceStore::Open(pool_root_ + "/job-1.kel2");
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_GT((*store)->NumEvents(), 0);
}

TEST_F(ServeTest, UnknownProgramIsNotFound) {
  StartServer(ServeOptions{});
  auto client = Client();
  ASSERT_NE(client, nullptr);
  SubmitRequest request;
  request.program = "NO_SUCH_PROGRAM";
  EXPECT_EQ(client->SubmitCampaign(request).status().code(),
            StatusCode::kNotFound);
  server_->Stop();
}

TEST_F(ServeTest, ZeroQueueCapacityRejectsEverySubmit) {
  ServeOptions options;
  options.queue_capacity = 0;
  StartServer(options);
  auto client = Client();
  ASSERT_NE(client, nullptr);
  SubmitRequest request;
  request.program = "CS";
  auto response = client->SubmitCampaign(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->accepted, 0);
  EXPECT_EQ(response->message, "queue full");
  EXPECT_EQ(server_->Stats().campaigns_rejected, 1);
  server_->Stop();
}

TEST_F(ServeTest, InflightCapRejectsThirdConcurrentSubmit) {
  ServeOptions options;
  options.jobs = 1;
  options.max_inflight = 2;
  // Long enough that neither job finishes while the submits race in.
  options.job_spin_micros = 500 * 1000;
  StartServer(options);
  auto client = Client();
  ASSERT_NE(client, nullptr);
  SubmitRequest request;
  request.program = "CS";
  request.max_iter = 10;
  auto first = client->SubmitCampaign(request);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->accepted, 1);
  auto second = client->SubmitCampaign(request);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->accepted, 1);
  auto third = client->SubmitCampaign(request);
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_EQ(third->accepted, 0);
  EXPECT_EQ(third->message, "session in-flight cap reached");
  server_->Stop();
  const ServeStatsSnapshot stats = server_->Stats();
  EXPECT_EQ(stats.campaigns_submitted, 2);
  EXPECT_EQ(stats.campaigns_rejected, 1);
  EXPECT_EQ(stats.campaigns_completed, 2);
}

TEST_F(ServeTest, StopWithPendingJobsDrainsEverything) {
  ServeOptions options;
  options.jobs = 1;
  options.max_inflight = 8;
  options.job_spin_micros = 50 * 1000;
  StartServer(options);
  auto client = Client();
  ASSERT_NE(client, nullptr);
  SubmitRequest request;
  request.program = "CS";
  request.max_iter = 10;
  for (int i = 0; i < 4; ++i) {
    auto response = client->SubmitCampaign(request);
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_EQ(response->accepted, 1);
  }
  server_->Stop();  // Must wait for all four, not abandon them.
  const ServeStatsSnapshot stats = server_->Stats();
  EXPECT_EQ(stats.campaigns_submitted, 4);
  EXPECT_EQ(stats.campaigns_completed + stats.campaigns_failed, 4);
  EXPECT_EQ(stats.campaign_queue_depth, 0);
  EXPECT_EQ(stats.campaign_inflight, 0);
  EXPECT_EQ(stats.sessions_active, 0);
}

TEST_F(ServeTest, StatsVerbMatchesServerSnapshot) {
  StartServer(ServeOptions{});
  auto client = Client();
  ASSERT_NE(client, nullptr);
  FetchSubsetRequest fetch;
  fetch.artifact = "main.kdd";
  fetch.end = 8;
  ASSERT_TRUE(client->FetchSubset(fetch).ok());
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->cache_misses, 1);
  EXPECT_EQ(stats->sessions_accepted, 1);
  EXPECT_EQ(stats->sessions_active, 1);
  EXPECT_EQ(stats->verbs[kVerbFetchSubset].count, 1);
  EXPECT_GE(stats->verbs[kVerbFetchSubset].max_micros, 0);
  server_->Stop();
}

TEST_F(ServeTest, ProtocolGarbageDropsConnectionAndCounts) {
  StartServer(ServeOptions{});
  auto conn = NetEnv::Default()->Connect(server_->bound_address());
  ASSERT_TRUE(conn.ok()) << conn.status();
  const std::string garbage = "this is not a KPC frame at all....";
  ASSERT_TRUE((*conn)->WriteFully(garbage.data(), garbage.size()).ok());
  // The server drops the connection; the next read sees EOF.
  char byte = 0;
  EXPECT_FALSE((*conn)->ReadFully(&byte, 1).ok());
  server_->Stop();
  EXPECT_EQ(server_->Stats().protocol_errors, 1);
}

TEST_F(ServeTest, ServesOverTcpWithPortZero) {
  ServeOptions options;
  StartServer(options);
  server_->Stop();
  // Re-start on TCP: port 0 resolves to a real ephemeral port.
  ServeOptions tcp;
  tcp.address.port = 0;
  tcp.pool_root = pool_root_;
  KondoServer server(tcp);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.bound_address().unix_path.empty());
  EXPECT_GT(server.bound_address().port, 0);
  auto client = KpcClient::Connect(server.bound_address());
  ASSERT_TRUE(client.ok()) << client.status();
  FetchSubsetRequest request;
  request.artifact = "main.kdd";
  request.end = 16;
  auto response = (*client)->FetchSubset(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->present.size(), 16u);
  server.Stop();
}

TEST_F(ServeTest, BlastSeesIdenticalResponsesAcrossClients) {
  StartServer(ServeOptions{});
  BlastOptions blast;
  blast.address = server_->bound_address();
  blast.artifact = "main.kdd";
  blast.clients = 4;
  blast.requests = 25;
  blast.begin = 0;
  blast.end = 64;
  auto report = RunBlast(blast);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->ok_requests, 100);
  EXPECT_EQ(report->failed_requests, 0);
  EXPECT_TRUE(report->responses_identical);
  EXPECT_GT(report->bytes_received, 0);
  server_->Stop();
  const ServeStatsSnapshot stats = server_->Stats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 100);
  EXPECT_EQ(stats.cache_misses, 1);  // One load, 99 identical hits.
}

TEST_F(ServeTest, StopIsIdempotentAndDestructorSafe) {
  StartServer(ServeOptions{});
  server_->Stop();
  server_->Stop();     // Second stop is a no-op.
  server_.reset();     // Destructor after explicit stop is safe too.
}

}  // namespace
}  // namespace kondo
