// Fault-injection and durability tests: the AtomicFile commit protocol,
// deterministic fault schedules (FaultInjectingEnv), crash-safe artifact
// writers (event store, KEL2, KSM/KSS), resume of a sharded campaign after
// a simulated crash at *every* injection point, detection and re-run of
// corrupted shard artifacts, deterministic retry/quarantine of failing
// debloat tests, and the retrying/degraded-mode fetching runtime.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "array/data_array.h"
#include "array/kdf_file.h"
#include "audit/event_store.h"
#include "common/env.h"
#include "core/debloat_test.h"
#include "core/remote_fetch.h"
#include "fuzz/fuzz_schedule.h"
#include "provenance/kel2_reader.h"
#include "provenance/kel2_writer.h"
#include "shard/shard_campaign.h"
#include "shard/shard_manifest.h"
#include "shard/shard_scheduler.h"
#include "workloads/registry.h"

namespace kondo {
namespace {

/// Fault seed swept by CI through KONDO_FAULT_SEED; every deterministic
/// injection claim must hold at any seed.
uint64_t FaultSeed() {
  if (const char* env = std::getenv("KONDO_FAULT_SEED")) {
    const uint64_t parsed = std::strtoull(env, nullptr, 10);
    if (parsed != 0) {
      return parsed;
    }
  }
  return 1;
}

/// A per-test scratch directory, wiped up front and created empty.
std::string TempDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/robustness_test_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool FileMissing(const std::string& path) {
  return !std::filesystem::exists(path);
}

/// Flips one bit in the middle of `path` (size unchanged, content damaged).
void FlipByte(const std::string& path) {
  std::string bytes = ReadFileBytes(path);
  ASSERT_FALSE(bytes.empty()) << path;
  bytes[bytes.size() / 2] ^= 0x01;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Drops the last `drop` bytes of `path` — the torn tail a crash leaves.
void TruncateTail(const std::string& path, size_t drop) {
  std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), drop) << path;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - drop));
}

// ------------------------------------------------------------ AtomicFile --

TEST(AtomicFileTest, CommitPublishesExactBytesAndRemovesTmp) {
  const std::string dir = TempDir("atomic_commit");
  const std::string path = dir + "/artifact.bin";
  StatusOr<AtomicFile> file = AtomicFile::Create(path);
  ASSERT_TRUE(file.ok()) << file.status();
  ASSERT_TRUE(file->Append("hello ").ok());
  ASSERT_TRUE(file->Append("world").ok());
  // Uncommitted: the final path must not exist yet.
  EXPECT_TRUE(FileMissing(path));
  ASSERT_TRUE(file->Commit().ok());
  EXPECT_FALSE(file->open());
  EXPECT_EQ(ReadFileBytes(path), "hello world");
  EXPECT_TRUE(FileMissing(path + ".tmp"));
}

TEST(AtomicFileTest, DestructionWithoutCommitDiscardsTheTmpFile) {
  const std::string dir = TempDir("atomic_discard");
  const std::string path = dir + "/artifact.bin";
  {
    StatusOr<AtomicFile> file = AtomicFile::Create(path);
    ASSERT_TRUE(file.ok()) << file.status();
    ASSERT_TRUE(file->Append("doomed").ok());
  }
  EXPECT_TRUE(FileMissing(path));
  EXPECT_TRUE(FileMissing(path + ".tmp"));
}

TEST(AtomicFileTest, WriteFailurePoisonsCommitAndPublishesNothing) {
  const std::string dir = TempDir("atomic_poison");
  const std::string path = dir + "/artifact.bin";
  FaultPlan plan;
  plan.seed = FaultSeed();
  plan.enospc_at_op = 0;
  FaultInjectingEnv env(Env::Default(), plan);
  StatusOr<AtomicFile> file = AtomicFile::Create(path, &env);
  ASSERT_TRUE(file.ok()) << file.status();
  const Status write = file->Append("vanishes");
  EXPECT_EQ(write.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(IsInjectedFault(write)) << write;
  // A poisoned file refuses further writes and refuses to publish.
  EXPECT_EQ(file->Append("more").code(), StatusCode::kFailedPrecondition);
  const Status commit = file->Commit();
  EXPECT_EQ(commit.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(FileMissing(path));
}

// ----------------------------------------------------- FaultInjectingEnv --

TEST(FaultInjectingEnvTest, ShortWriteSequencesReplayPerSeed) {
  const FaultPlan plan = [] {
    FaultPlan p;
    p.seed = FaultSeed();
    p.short_write_prob = 0.5;
    return p;
  }();

  // Same seed, same artifact basename, different directories: the injected
  // failure sequence must be identical (decisions key on the basename and
  // the per-file op index, never on the directory or global interleaving).
  const auto failure_ops = [&plan](const std::string& dir) {
    FaultInjectingEnv env(Env::Default(), plan);
    StatusOr<std::unique_ptr<WritableFile>> file =
        env.NewWritableFile(dir + "/wal.bin");
    EXPECT_TRUE(file.ok()) << file.status();
    std::vector<int> failures;
    for (int i = 0; i < 64; ++i) {
      const Status appended = (*file)->Append("12345678", 8);
      if (!appended.ok()) {
        EXPECT_TRUE(IsInjectedFault(appended)) << appended;
        failures.push_back(i);
      }
    }
    return failures;
  };
  const std::vector<int> first = failure_ops(TempDir("shortw_a"));
  const std::vector<int> second = failure_ops(TempDir("shortw_b"));
  EXPECT_EQ(first, second);
  // p = 0.5 over 64 appends: an empty failure set means the hash is broken.
  EXPECT_FALSE(first.empty());
}

TEST(FaultInjectingEnvTest, EnospcFiresExactlyOnce) {
  const std::string dir = TempDir("enospc");
  FaultPlan plan;
  plan.seed = FaultSeed();
  plan.enospc_at_op = 1;
  FaultInjectingEnv env(Env::Default(), plan);
  StatusOr<std::unique_ptr<WritableFile>> file =
      env.NewWritableFile(dir + "/e.bin");
  ASSERT_TRUE(file.ok()) << file.status();
  EXPECT_TRUE((*file)->Append("a", 1).ok());
  const Status hit = (*file)->Append("b", 1);
  EXPECT_EQ(hit.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(IsInjectedFault(hit)) << hit;
  EXPECT_TRUE((*file)->Append("c", 1).ok());
  EXPECT_EQ(env.faults_injected(), 1);
}

TEST(FaultInjectingEnvTest, CrashDropsUnsyncedBytesAndFailsEveryLaterOp) {
  const std::string dir = TempDir("crash");
  const std::string path = dir + "/wal.bin";
  FaultPlan plan;
  plan.seed = FaultSeed();
  plan.crash_at_op = 2;  // Op 0: append, op 1: sync, op 2: the fatal append.
  FaultInjectingEnv env(Env::Default(), plan);
  StatusOr<std::unique_ptr<WritableFile>> file = env.NewWritableFile(path);
  ASSERT_TRUE(file.ok()) << file.status();
  ASSERT_TRUE((*file)->Append("AAAA", 4).ok());
  ASSERT_TRUE((*file)->Sync().ok());
  const Status fatal = (*file)->Append("BBBB", 4);
  EXPECT_EQ(fatal.code(), StatusCode::kInternal);
  EXPECT_TRUE(IsInjectedFault(fatal)) << fatal;
  EXPECT_TRUE(env.crashed());
  // The page cache "lost" everything past the last fsync.
  EXPECT_EQ(ReadFileBytes(path), "AAAA");
  // The dead process cannot touch the filesystem any more.
  EXPECT_FALSE(env.NewWritableFile(dir + "/other.bin").ok());
  EXPECT_FALSE(env.RenameFile(path, dir + "/moved.bin").ok());
}

// -------------------------------------------------- crash-safe writers --

TEST(DurabilityTest, EventStoreCrashPublishesNothingCleanRunCommits) {
  const std::string dir = TempDir("event_store");
  const std::string path = dir + "/audit.kel";
  Event event;
  event.id = EventId{1, 1};
  event.type = EventType::kPread;
  event.offset = 0;
  event.size = 8;

  FaultPlan plan;
  plan.seed = FaultSeed();
  plan.crash_at_op = 1;  // Header lands; the first record crashes.
  FaultInjectingEnv env(Env::Default(), plan);
  StatusOr<EventStoreWriter> writer = EventStoreWriter::Create(path, &env);
  ASSERT_TRUE(writer.ok()) << writer.status();
  EXPECT_FALSE(writer->Append(event).ok());
  EXPECT_FALSE(writer->Close().ok());
  EXPECT_TRUE(FileMissing(path));

  StatusOr<EventStoreWriter> clean = EventStoreWriter::Create(path);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_TRUE(clean->Append(event).ok());
  ASSERT_TRUE(clean->Close().ok());
  const StatusOr<std::vector<Event>> events = ReadEventStore(path);
  ASSERT_TRUE(events.ok()) << events.status();
  EXPECT_EQ(events->size(), 1u);
}

TEST(DurabilityTest, Kel2CrashLeavesThePreviousStoreIntact) {
  const std::string dir = TempDir("kel2_crash");
  const std::string path = dir + "/lineage.kel2";
  Event event;
  event.id = EventId{1, 1};
  event.type = EventType::kPread;
  event.offset = 16;
  event.size = 8;

  {
    StatusOr<Kel2Writer> writer = Kel2Writer::Create(path);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE(writer->Append(event).ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  const std::string committed = ReadFileBytes(path);
  ASSERT_FALSE(committed.empty());

  // An overwrite attempt that crashes mid-write must not disturb the
  // committed store: the new bytes only ever lived in the tmp file.
  FaultPlan plan;
  plan.seed = FaultSeed();
  plan.crash_at_op = 0;
  FaultInjectingEnv env(Env::Default(), plan);
  Kel2WriterOptions options;
  options.env = &env;
  StatusOr<Kel2Writer> writer = Kel2Writer::Create(path, options);
  if (writer.ok()) {
    EXPECT_FALSE(writer->Append(event).ok());
    EXPECT_FALSE(writer->Close().ok());
  }
  EXPECT_EQ(ReadFileBytes(path), committed);
}

// ------------------------------------------------------ checksum trailers --

TEST(ChecksumTrailerTest, ManifestDetectsCorruptionAndTruncation) {
  const std::string dir = TempDir("ksm_crc");
  const std::string path = dir + "/manifest.ksm";
  const std::vector<Shape> shapes = {Shape{4, 4}, Shape{8}};
  StatusOr<ShardPlan> plan = PlanShards(shapes, 2);
  ASSERT_TRUE(plan.ok()) << plan.status();
  const ShardManifest manifest = MakeShardManifest(*plan, 17);
  ASSERT_TRUE(SaveShardManifest(path, manifest).ok());
  ASSERT_TRUE(LoadShardManifest(path).ok());

  FlipByte(path);
  const StatusOr<ShardManifest> corrupt = LoadShardManifest(path);
  EXPECT_EQ(corrupt.status().code(), StatusCode::kDataLoss)
      << corrupt.status();

  ASSERT_TRUE(SaveShardManifest(path, manifest).ok());
  TruncateTail(path, 4);
  const StatusOr<ShardManifest> torn = LoadShardManifest(path);
  EXPECT_EQ(torn.status().code(), StatusCode::kDataLoss) << torn.status();
}

TEST(ChecksumTrailerTest, ShardStateRoundTripsExtrasAndDetectsDamage) {
  const std::string dir = TempDir("kss_crc");
  const std::string path = dir + "/shard-004.kss";
  const std::vector<Shape> shapes = {Shape{4, 4}};

  ShardCampaignResult result;
  result.per_file.emplace_back(shapes[0]);
  result.per_file[0].InsertLinear(3);
  result.per_file[0].InsertLinear(11);
  result.seeds.push_back(Seed{{0.5, 1.5}, true});
  result.stats.iterations = 5;
  result.stats.evaluations = 4;
  result.stats.useful_evaluations = 2;
  result.stats.retries = 2;
  result.stats.quarantined = 1;
  result.stats.quarantined_points.push_back({2.25, -1.0});
  ShardArtifactInfo info;
  info.lineage_bytes = 123;
  info.lineage_crc = 456;
  ASSERT_TRUE(SaveShardState(path, 4, result, info).ok());

  ShardArtifactInfo loaded_info;
  const StatusOr<ShardCampaignResult> loaded =
      LoadShardState(path, 4, shapes, &loaded_info);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->per_file[0].ToSortedLinearIds(),
            result.per_file[0].ToSortedLinearIds());
  EXPECT_EQ(loaded->stats.retries, 2);
  EXPECT_EQ(loaded->stats.quarantined, 1);
  ASSERT_EQ(loaded->stats.quarantined_points.size(), 1u);
  EXPECT_EQ(loaded->stats.quarantined_points[0], result.stats.quarantined_points[0]);
  EXPECT_EQ(loaded_info.lineage_bytes, 123);
  EXPECT_EQ(loaded_info.lineage_crc, 456u);

  FlipByte(path);
  const StatusOr<ShardCampaignResult> corrupt =
      LoadShardState(path, 4, shapes);
  EXPECT_EQ(corrupt.status().code(), StatusCode::kDataLoss)
      << corrupt.status();

  ASSERT_TRUE(SaveShardState(path, 4, result, info).ok());
  TruncateTail(path, 3);
  const StatusOr<ShardCampaignResult> torn = LoadShardState(path, 4, shapes);
  EXPECT_EQ(torn.status().code(), StatusCode::kDataLoss) << torn.status();
}

// --------------------------------------------------- corrupt-shard resume --

TEST(ShardResumeRobustnessTest, CorruptLineageStoreReRunsOnlyThatShard) {
  const StormTrackProgram program(32, 8);
  KondoConfig config;
  config.rng_seed = 31;
  config.fuzz.max_evals = 200;

  ShardOptions reference_options;
  reference_options.shards = 3;
  reference_options.output_dir = TempDir("corrupt_ref");
  const StatusOr<ShardedRunResult> reference =
      RunShardedCampaign(program, config, reference_options);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_TRUE(reference->complete);
  const std::string reference_bytes =
      ReadFileBytes(reference->merged_lineage_path);

  ShardOptions options;
  options.shards = 3;
  options.output_dir = TempDir("corrupt_dmg");
  const StatusOr<ShardedRunResult> first =
      RunShardedCampaign(program, config, options);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(first->complete);

  // Damage shard 0's sealed lineage store. Kel2Reader alone would silently
  // accept a truncation; the KSS fingerprint catches both damage kinds.
  FlipByte(options.output_dir + "/shard-000.kel2");
  const StatusOr<ShardedRunResult> resumed =
      RunShardedCampaign(program, config, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  ASSERT_TRUE(resumed->complete);
  EXPECT_EQ(resumed->shards_fuzzed_now, 1);  // Only the damaged shard re-ran.
  EXPECT_EQ(ReadFileBytes(resumed->merged_lineage_path), reference_bytes);
}

TEST(ShardResumeRobustnessTest, EveryDamagedArtifactKindForcesAReRun) {
  const StormTrackProgram program(32, 8);
  KondoConfig config;
  config.rng_seed = 31;
  config.fuzz.max_evals = 200;

  ShardOptions options;
  options.shards = 3;
  options.output_dir = TempDir("corrupt_all");
  const StatusOr<ShardedRunResult> first =
      RunShardedCampaign(program, config, options);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(first->complete);
  const std::string reference_bytes =
      ReadFileBytes(first->merged_lineage_path);

  TruncateTail(options.output_dir + "/shard-000.kel2", 7);  // Torn tail.
  FlipByte(options.output_dir + "/shard-001.kel2");         // Bit rot.
  FlipByte(options.output_dir + "/shard-002.kss");          // Damaged state.
  const StatusOr<ShardedRunResult> resumed =
      RunShardedCampaign(program, config, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  ASSERT_TRUE(resumed->complete);
  EXPECT_EQ(resumed->shards_fuzzed_now, 3);
  EXPECT_EQ(ReadFileBytes(resumed->merged_lineage_path), reference_bytes);
}

// ------------------------------------------------------ crash-point sweep --

// The acceptance sweep: a campaign killed at ANY mutating filesystem
// operation resumes from the manifest to a bit-identical merged store.
TEST(CrashSweepTest, ResumeFromEveryCrashPointYieldsIdenticalMergedStore) {
  const StormTrackProgram program(16, 4);
  KondoConfig config;
  config.rng_seed = 17;
  config.jobs = 1;  // Serial drivers give a deterministic global op order.
  config.fuzz.max_evals = 60;

  ShardOptions reference_options;
  reference_options.shards = 2;
  reference_options.output_dir = TempDir("sweep_ref");
  const StatusOr<ShardedRunResult> reference =
      RunShardedCampaign(program, config, reference_options);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_TRUE(reference->complete);
  const std::string reference_bytes =
      ReadFileBytes(reference->merged_lineage_path);
  ASSERT_FALSE(reference_bytes.empty());

  // A fault-free injecting env must be transparent — and its op count
  // bounds the sweep.
  FaultPlan count_plan;
  count_plan.seed = FaultSeed();
  FaultInjectingEnv counter(Env::Default(), count_plan);
  ShardOptions counted = reference_options;
  counted.output_dir = TempDir("sweep_count");
  counted.env = &counter;
  const StatusOr<ShardedRunResult> clean =
      RunShardedCampaign(program, config, counted);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_TRUE(clean->complete);
  EXPECT_EQ(ReadFileBytes(clean->merged_lineage_path), reference_bytes);
  const int64_t num_ops = counter.ops();
  ASSERT_GT(num_ops, 10);

  for (int64_t k = 0; k < num_ops; ++k) {
    FaultPlan plan;
    plan.seed = FaultSeed();
    plan.crash_at_op = k;
    FaultInjectingEnv env(Env::Default(), plan);
    ShardOptions crashed = reference_options;
    crashed.output_dir = TempDir("sweep_" + std::to_string(k));
    crashed.env = &env;
    const StatusOr<ShardedRunResult> broken =
        RunShardedCampaign(program, config, crashed);
    EXPECT_FALSE(broken.ok()) << "crash at op " << k << " did not surface";

    ShardOptions resume = crashed;
    resume.env = nullptr;
    const StatusOr<ShardedRunResult> resumed =
        RunShardedCampaign(program, config, resume);
    ASSERT_TRUE(resumed.ok())
        << "resume after crash at op " << k << ": " << resumed.status();
    ASSERT_TRUE(resumed->complete) << "crash at op " << k;
    EXPECT_EQ(ReadFileBytes(resumed->merged_lineage_path), reference_bytes)
        << "merged store diverged after crash at op " << k;
  }
}

// -------------------------------------------------- retry and quarantine --

/// Wraps the real debloat test with injected failures keyed on candidate
/// identity (seq), so the failure schedule is a pure function of the
/// campaign — identical at every jobs setting. `fail_attempts` controls how
/// many attempts fail per selected candidate (persistent when >= the retry
/// budget).
CandidateTestFn FlakyTest(const Program& program, uint64_t seed,
                          double fail_prob, int fail_attempts,
                          std::mutex* mu, std::map<int64_t, int>* attempts) {
  const CandidateTestFn base = MakeCandidateTest(program);
  return [base, seed, fail_prob, fail_attempts, mu,
          attempts](const TestCandidate& candidate) {
    if (FaultHash(seed, candidate.seq, 3) < fail_prob) {
      int attempt = 0;
      {
        std::lock_guard<std::mutex> lock(*mu);
        attempt = ++(*attempts)[candidate.seq];
      }
      if (attempt <= fail_attempts) {
        CandidateResult failed;
        failed.status = InternalError("injected transient test failure");
        return failed;
      }
    }
    return base(candidate);
  };
}

TEST(RetryPolicyTest, TransientFailuresRecoverIdenticallyAtEveryJobs) {
  const std::unique_ptr<Program> program = CreateProgram("PRL", 40);
  ASSERT_NE(program, nullptr);
  const uint64_t seed = 19;
  FuzzConfig config;
  config.max_iter = 200;

  FuzzSchedule reference_schedule(program->param_space(),
                                  program->data_shape(), config, seed);
  CampaignExecutor reference_executor(1);
  const FuzzResult reference =
      reference_schedule.Run(reference_executor, MakeCandidateTest(*program));

  // Every selected candidate fails exactly once; attempt 2 succeeds, well
  // inside the 3-attempt budget — so the campaign must be indistinguishable
  // from the failure-free reference, at any jobs setting.
  config.test_max_attempts = 3;
  config.test_backoff_micros = 1;
  std::vector<FuzzResult> results;
  for (int jobs : {1, 8}) {
    std::mutex mu;
    std::map<int64_t, int> attempts;
    FuzzSchedule schedule(program->param_space(), program->data_shape(),
                          config, seed);
    CampaignExecutor executor(jobs);
    results.push_back(schedule.Run(
        executor,
        FlakyTest(*program, FaultSeed(), 0.3, 1, &mu, &attempts)));
    const FuzzResult& result = results.back();
    ASSERT_TRUE(result.status.ok()) << result.status;
    EXPECT_EQ(result.stats.quarantined, 0) << "jobs=" << jobs;
    EXPECT_GT(result.stats.retries, 0) << "jobs=" << jobs;
    EXPECT_EQ(result.stats.iterations, reference.stats.iterations);
    EXPECT_EQ(result.stats.evaluations, reference.stats.evaluations);
    EXPECT_EQ(result.stats.useful_evaluations,
              reference.stats.useful_evaluations);
    ASSERT_EQ(result.seeds.size(), reference.seeds.size());
    for (size_t i = 0; i < reference.seeds.size(); ++i) {
      EXPECT_EQ(result.seeds[i].value, reference.seeds[i].value);
    }
    EXPECT_EQ(result.discovered.ToSortedLinearIds(),
              reference.discovered.ToSortedLinearIds());
  }
  EXPECT_EQ(results[0].stats.retries, results[1].stats.retries);
}

TEST(QuarantinePolicyTest, PersistentFailuresQuarantineIdenticallyAtEveryJobs) {
  const std::unique_ptr<Program> program = CreateProgram("PRL", 40);
  ASSERT_NE(program, nullptr);
  const uint64_t seed = 23;
  FuzzConfig config;
  config.max_iter = 200;
  config.test_max_attempts = 2;

  // Selected candidates fail every attempt: they must be quarantined — and
  // the quarantine set, like everything else, must be jobs-invariant.
  std::vector<FuzzResult> results;
  for (int jobs : {1, 8}) {
    std::mutex mu;
    std::map<int64_t, int> attempts;
    FuzzSchedule schedule(program->param_space(), program->data_shape(),
                          config, seed);
    CampaignExecutor executor(jobs);
    results.push_back(schedule.Run(
        executor,
        FlakyTest(*program, FaultSeed(), 0.15, 1 << 20, &mu, &attempts)));
    const FuzzResult& result = results.back();
    ASSERT_TRUE(result.status.ok()) << result.status;
    EXPECT_GT(result.stats.quarantined, 0) << "jobs=" << jobs;
    EXPECT_EQ(result.stats.retries, result.stats.quarantined)
        << "each quarantined point consumed exactly one retry";
    EXPECT_EQ(static_cast<int>(result.stats.quarantined_points.size()),
              result.stats.quarantined);
  }
  const FuzzResult& serial = results[0];
  const FuzzResult& parallel = results[1];
  EXPECT_EQ(parallel.stats.iterations, serial.stats.iterations);
  EXPECT_EQ(parallel.stats.evaluations, serial.stats.evaluations);
  EXPECT_EQ(parallel.stats.quarantined, serial.stats.quarantined);
  EXPECT_EQ(parallel.stats.quarantined_points,
            serial.stats.quarantined_points);
  ASSERT_EQ(parallel.seeds.size(), serial.seeds.size());
  for (size_t i = 0; i < serial.seeds.size(); ++i) {
    EXPECT_EQ(parallel.seeds[i].value, serial.seeds[i].value);
  }
  EXPECT_EQ(parallel.discovered.ToSortedLinearIds(),
            serial.discovered.ToSortedLinearIds());
}

// ------------------------------------------------- degraded-mode fetching --

/// A remote source that fails the first `fail_first` fetches of every
/// element (transient flakiness), or every fetch when `fail_first` is
/// huge (a dead server).
class FlakyRemoteSource final : public RemoteSource {
 public:
  FlakyRemoteSource(std::unique_ptr<RemoteSource> base, Shape shape,
                    int fail_first)
      : base_(std::move(base)),
        shape_(std::move(shape)),
        fail_first_(fail_first) {}

  StatusOr<double> Fetch(const Index& index) override {
    ++calls_;
    int& failed = failures_[shape_.Linearize(index)];
    if (failed < fail_first_) {
      ++failed;
      return InternalError("injected remote failure");
    }
    return base_->Fetch(index);
  }

  int64_t bytes_fetched() const override { return base_->bytes_fetched(); }
  int64_t calls() const { return calls_; }

 private:
  std::unique_ptr<RemoteSource> base_;
  Shape shape_;
  int fail_first_;
  int64_t calls_ = 0;
  std::map<int64_t, int> failures_;
};

class FetchPolicyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    program_ = CreateProgram("CS", 16);
    ASSERT_NE(program_, nullptr);
    array_ = std::make_unique<DataArray>(program_->data_shape(),
                                         DType::kFloat64);
    array_->FillPattern(11);
    // Unique per test case: ctest runs the cases as separate processes, and
    // TempDir wipes the directory — a shared one would race under -j.
    registry_path_ =
        TempDir(std::string("fetch_") +
                ::testing::UnitTest::GetInstance()->current_test_info()->name()) +
        "/registry.kdf";
    ASSERT_TRUE(WriteKdfFile(registry_path_, *array_).ok());
  }

  /// A debloated array retaining only even-x indices: odd-x reads miss.
  DebloatedArray HalfRetained() {
    IndexSet retained(program_->data_shape());
    program_->data_shape().ForEachIndex([&retained](const Index& index) {
      if (index[0] % 2 == 0) {
        retained.Insert(index);
      }
    });
    return DebloatedArray::FromDataArray(*array_, retained);
  }

  std::unique_ptr<FlakyRemoteSource> FlakyRemote(int fail_first) {
    StatusOr<std::unique_ptr<KdfRemoteSource>> base =
        KdfRemoteSource::Open(registry_path_);
    EXPECT_TRUE(base.ok()) << base.status();
    return std::make_unique<FlakyRemoteSource>(
        *std::move(base), program_->data_shape(), fail_first);
  }

  std::unique_ptr<Program> program_;
  std::unique_ptr<DataArray> array_;
  std::string registry_path_;
};

TEST_F(FetchPolicyTest, RetriesRecoverTransientRemoteFailures) {
  FetchPolicy policy;
  policy.max_attempts = 2;
  FetchingRuntime runtime(HalfRetained(), FlakyRemote(/*fail_first=*/1),
                          policy);
  EXPECT_TRUE(runtime.ReplayRun(*program_, {1.0, 1.0}).ok());
  EXPECT_GT(runtime.stats().remote_fetches, 0);
  EXPECT_GT(runtime.stats().fetch_retries, 0);
  EXPECT_EQ(runtime.stats().fetch_failures, 0);
  EXPECT_EQ(runtime.stats().hard_misses, 0);
  EXPECT_FALSE(runtime.stats().degraded);
}

TEST_F(FetchPolicyTest, ExhaustionSurfacesDataMissingWithoutAborting) {
  FetchPolicy policy;
  policy.max_attempts = 3;
  std::unique_ptr<FlakyRemoteSource> remote = FlakyRemote(1 << 20);
  const FlakyRemoteSource* raw = remote.get();
  FetchingRuntime runtime(HalfRetained(), std::move(remote), policy);

  const StatusOr<double> value = runtime.Read(Index{3, 5});  // Odd x: Null.
  EXPECT_EQ(value.status().code(), StatusCode::kDataMissing)
      << value.status();
  EXPECT_NE(value.status().message().find("3 attempts"), std::string::npos)
      << value.status();
  EXPECT_EQ(raw->calls(), 3);
  EXPECT_EQ(runtime.stats().fetch_retries, 2);
  EXPECT_EQ(runtime.stats().fetch_failures, 1);
  EXPECT_EQ(runtime.stats().hard_misses, 1);

  // A whole-run replay degrades to per-element data-missing errors, never
  // an abort; the first error is surfaced, and the stats carry the toll.
  // (Between them the two runs touch at least one odd-x element — the same
  // pair extensions_test uses to prove the working remote fetches.)
  Status replay = runtime.ReplayRun(*program_, {1.0, 1.0});
  if (replay.ok()) {
    replay = runtime.ReplayRun(*program_, {3.0, 7.0});
  }
  EXPECT_EQ(replay.code(), StatusCode::kDataMissing) << replay;
  EXPECT_GT(runtime.stats().fetch_failures, 1);
}

TEST_F(FetchPolicyTest, ConsecutiveFailuresTripDegradedMode) {
  FetchPolicy policy;
  policy.max_attempts = 2;
  policy.degrade_after = 2;
  std::unique_ptr<FlakyRemoteSource> remote = FlakyRemote(1 << 20);
  const FlakyRemoteSource* raw = remote.get();
  FetchingRuntime runtime(HalfRetained(), std::move(remote), policy);

  EXPECT_FALSE(runtime.Read(Index{1, 0}).ok());
  EXPECT_FALSE(runtime.stats().degraded);
  EXPECT_FALSE(runtime.Read(Index{1, 1}).ok());
  EXPECT_TRUE(runtime.stats().degraded);

  // Degraded: misses surface immediately, no further remote round-trips.
  const int64_t calls_at_degrade = raw->calls();
  const StatusOr<double> after = runtime.Read(Index{1, 2});
  EXPECT_EQ(after.status().code(), StatusCode::kDataMissing)
      << after.status();
  EXPECT_NE(after.status().message().find("degraded"), std::string::npos)
      << after.status();
  EXPECT_EQ(raw->calls(), calls_at_degrade);
  // Local hits keep working in degraded mode.
  EXPECT_TRUE(runtime.Read(Index{2, 3}).ok());
}

}  // namespace
}  // namespace kondo
