#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "array/index_set.h"
#include "common/rng.h"
#include "fuzz/cluster.h"
#include "fuzz/fuzz_config.h"
#include "fuzz/fuzz_schedule.h"
#include "fuzz/param_space.h"

namespace kondo {
namespace {

// ------------------------------------------------------------ ParamSpace --

TEST(ParamSpaceTest, SampleStaysInRange) {
  const ParamSpace space{ParamRange{0, 30, true},
                         ParamRange{300.0, 1200.0, false}};
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const ParamValue v = space.Sample(rng);
    ASSERT_EQ(v.size(), 2u);
    EXPECT_GE(v[0], 0);
    EXPECT_LE(v[0], 30);
    EXPECT_DOUBLE_EQ(v[0], std::round(v[0]));  // Integer grid.
    EXPECT_GE(v[1], 300.0);
    EXPECT_LT(v[1], 1200.0);
  }
}

TEST(ParamSpaceTest, ContainsChecksBounds) {
  const ParamSpace space{ParamRange{0, 10, true}};
  EXPECT_TRUE(space.Contains({5.0}));
  EXPECT_TRUE(space.Contains({0.0}));
  EXPECT_FALSE(space.Contains({-1.0}));
  EXPECT_FALSE(space.Contains({11.0}));
  EXPECT_FALSE(space.Contains({5.0, 5.0}));  // Arity mismatch.
}

TEST(ParamSpaceTest, ClampProjectsIntoTheta) {
  const ParamSpace space{ParamRange{0, 10, true},
                         ParamRange{1.5, 2.5, false}};
  const ParamValue clamped = space.Clamp({12.7, 0.1});
  EXPECT_DOUBLE_EQ(clamped[0], 10.0);
  EXPECT_DOUBLE_EQ(clamped[1], 1.5);
  const ParamValue rounded = space.Clamp({3.4, 2.0});
  EXPECT_DOUBLE_EQ(rounded[0], 3.0);
}

TEST(ParamSpaceTest, NumValuations) {
  EXPECT_DOUBLE_EQ(
      (ParamSpace{ParamRange{0, 9, true}, ParamRange{0, 9, true}})
          .NumValuations(),
      100.0);
  EXPECT_TRUE(std::isinf(
      (ParamSpace{ParamRange{0, 1.0, false}}).NumValuations()));
}

TEST(ParamSpaceTest, QuantizeKeyDistinguishesValues) {
  const ParamSpace space{ParamRange{0, 100, true},
                         ParamRange{0, 1.0, false}};
  EXPECT_EQ(space.QuantizeKey({3.0, 0.5}), space.QuantizeKey({3.0, 0.5}));
  EXPECT_NE(space.QuantizeKey({3.0, 0.5}), space.QuantizeKey({4.0, 0.5}));
  EXPECT_NE(space.QuantizeKey({3.0, 0.5}), space.QuantizeKey({3.0, 0.51}));
  // Integer dims quantise to the grid: 3.4 is not a distinct key from 3.
  EXPECT_EQ(space.QuantizeKey({3.4, 0.5}), space.QuantizeKey({3.0, 0.5}));
}

TEST(ParamSpaceTest, ParamDistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(ParamDistance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(ParamDistance({1.0}, {1.0}), 0.0);
}

TEST(ParamSpaceTest, ToStringFormat) {
  const ParamSpace space{ParamRange{0, 30, true},
                         ParamRange{300.0, 1200.0, false}};
  EXPECT_EQ(space.ToString(), "[0-30, 300-1200 (real)]");
}

// ---------------------------------------------------------- ClusterStore --

TEST(ClusterStoreTest, FirstValueFoundsCluster) {
  ClusterStore store;
  EXPECT_EQ(store.Add({5.0, 5.0}, 10.0), 0);
  EXPECT_EQ(store.size(), 1);
  EXPECT_EQ(store.clusters()[0].count, 1);
}

TEST(ClusterStoreTest, NearbyValueJoinsAndRecenters) {
  ClusterStore store;
  store.Add({0.0, 0.0}, 10.0);
  EXPECT_EQ(store.Add({4.0, 0.0}, 10.0), 0);
  EXPECT_EQ(store.size(), 1);
  EXPECT_DOUBLE_EQ(store.clusters()[0].center[0], 2.0);
  EXPECT_EQ(store.clusters()[0].count, 2);
}

TEST(ClusterStoreTest, FarValueFoundsNewCluster) {
  ClusterStore store;
  store.Add({0.0, 0.0}, 10.0);
  EXPECT_EQ(store.Add({50.0, 0.0}, 10.0), 1);
  EXPECT_EQ(store.size(), 2);
}

TEST(ClusterStoreTest, ExactDiameterStillJoins) {
  ClusterStore store;
  store.Add({0.0}, 10.0);
  // ADD_TO_CLUSTER: a new cluster only when distance *exceeds* diameter.
  EXPECT_EQ(store.Add({10.0}, 10.0), 0);
}

TEST(ClusterStoreTest, NearestReturnsDistance) {
  ClusterStore store;
  store.Add({0.0, 0.0}, 5.0);
  store.Add({100.0, 0.0}, 5.0);
  double distance = 0.0;
  EXPECT_EQ(store.Nearest({90.0, 0.0}, &distance), 1);
  EXPECT_DOUBLE_EQ(distance, 10.0);
  EXPECT_EQ(ClusterStore().Nearest({0.0}), -1);
}

// ---------------------------------------------------------- FuzzSchedule --

/// A rectangular useful region: v useful iff inside [20,60]x[20,60]; a run
/// reads the single index (v0, v1).
DebloatTestFn RectRegionTest(const Shape& shape) {
  return [shape](const ParamValue& v) {
    IndexSet accessed(shape);
    const int64_t x = static_cast<int64_t>(std::llround(v[0]));
    const int64_t y = static_cast<int64_t>(std::llround(v[1]));
    if (x >= 20 && x <= 60 && y >= 20 && y <= 60) {
      accessed.Insert(Index{x, y});
    }
    return accessed;
  };
}

ParamSpace GridSpace(int64_t n) {
  return ParamSpace{ParamRange{0, static_cast<double>(n - 1), true},
                    ParamRange{0, static_cast<double>(n - 1), true}};
}

TEST(FuzzScheduleTest, DeterministicUnderFixedSeed) {
  const Shape shape{128, 128};
  FuzzConfig config;
  config.max_iter = 300;
  FuzzResult a =
      FuzzSchedule(GridSpace(128), shape, config, 7).Run(RectRegionTest(shape));
  FuzzResult b =
      FuzzSchedule(GridSpace(128), shape, config, 7).Run(RectRegionTest(shape));
  EXPECT_EQ(a.discovered.size(), b.discovered.size());
  ASSERT_EQ(a.seeds.size(), b.seeds.size());
  for (size_t i = 0; i < a.seeds.size(); ++i) {
    EXPECT_EQ(a.seeds[i].value, b.seeds[i].value);
    EXPECT_EQ(a.seeds[i].useful, b.seeds[i].useful);
  }
}

TEST(FuzzScheduleTest, DifferentSeedsDiffer) {
  const Shape shape{128, 128};
  FuzzConfig config;
  config.max_iter = 200;
  FuzzResult a =
      FuzzSchedule(GridSpace(128), shape, config, 1).Run(RectRegionTest(shape));
  FuzzResult b =
      FuzzSchedule(GridSpace(128), shape, config, 2).Run(RectRegionTest(shape));
  ASSERT_FALSE(a.seeds.empty());
  ASSERT_FALSE(b.seeds.empty());
  EXPECT_NE(a.seeds[0].value, b.seeds[0].value);
}

TEST(FuzzScheduleTest, StopsAtMaxIter) {
  const Shape shape{128, 128};
  FuzzConfig config;
  config.max_iter = 50;
  config.stop_iter = 1000;
  const FuzzResult result =
      FuzzSchedule(GridSpace(128), shape, config, 3).Run(RectRegionTest(shape));
  EXPECT_EQ(result.stats.iterations, 50);
  EXPECT_FALSE(result.stats.stopped_by_stagnation);
}

TEST(FuzzScheduleTest, StopsByStagnation) {
  const Shape shape{8, 8};
  // A tiny region: after it is fully discovered, no new offsets appear.
  const DebloatTestFn test = [&shape](const ParamValue& v) {
    IndexSet accessed(shape);
    if (std::llround(v[0]) == 0 && std::llround(v[1]) == 0) {
      accessed.Insert(Index{0, 0});
    }
    return accessed;
  };
  FuzzConfig config;
  config.max_iter = 100000;
  config.stop_iter = 40;
  const FuzzResult result =
      FuzzSchedule(GridSpace(64), shape, config, 3).Run(test);
  EXPECT_TRUE(result.stats.stopped_by_stagnation);
  EXPECT_LT(result.stats.iterations, 100000);
}

TEST(FuzzScheduleTest, RespectsTimeBudget) {
  const Shape shape{128, 128};
  FuzzConfig config;
  config.max_iter = 1 << 30;
  config.stop_iter = 1 << 30;
  config.max_seconds = 0.05;
  const DebloatTestFn slow_test = [&shape](const ParamValue&) {
    volatile double sink = 0.0;
    for (int i = 0; i < 20000; ++i) {
      sink = sink + std::sqrt(static_cast<double>(i));
    }
    return IndexSet(shape);
  };
  const FuzzResult result =
      FuzzSchedule(GridSpace(128), shape, config, 3).Run(slow_test);
  EXPECT_TRUE(result.stats.stopped_by_budget);
  EXPECT_LT(result.stats.elapsed_seconds, 1.0);
}

TEST(FuzzScheduleTest, NeverEvaluatesDuplicateSeeds) {
  const Shape shape{128, 128};
  FuzzConfig config;
  config.max_iter = 500;
  const ParamSpace space = GridSpace(128);
  std::set<std::string> seen;
  int duplicates = 0;
  const DebloatTestFn test = [&](const ParamValue& v) {
    if (!seen.insert(space.QuantizeKey(v)).second) {
      ++duplicates;
    }
    return IndexSet(shape);
  };
  FuzzSchedule(space, shape, config, 5).Run(test);
  EXPECT_EQ(duplicates, 0);
}

TEST(FuzzScheduleTest, SeedsStayInsideTheta) {
  const Shape shape{128, 128};
  const ParamSpace space = GridSpace(128);
  FuzzConfig config;
  config.max_iter = 800;
  const FuzzResult result =
      FuzzSchedule(space, shape, config, 11).Run(RectRegionTest(shape));
  for (const Seed& seed : result.seeds) {
    EXPECT_TRUE(space.Contains(seed.value));
  }
}

TEST(FuzzScheduleTest, DiscoversMostOfRectRegion) {
  const Shape shape{128, 128};
  FuzzConfig config;  // Paper defaults: 2000 iterations.
  const FuzzResult result =
      FuzzSchedule(GridSpace(128), shape, config, 13).Run(RectRegionTest(shape));
  // The region holds 41x41 = 1681 indices; discovery (without carving)
  // should cover a good share and label the seeds correctly.
  EXPECT_GT(result.discovered.size(), 400u);
  EXPECT_GT(result.stats.useful_evaluations, 100);
  for (const Seed& seed : result.seeds) {
    const bool inside = seed.value[0] >= 20 && seed.value[0] <= 60 &&
                        seed.value[1] >= 20 && seed.value[1] <= 60;
    EXPECT_EQ(seed.useful, inside);
  }
}

TEST(FuzzScheduleTest, EpsilonDecays) {
  const Shape shape{128, 128};
  FuzzConfig config;
  config.max_iter = 2000;
  config.decay_iter = 100;
  config.decay = 0.5;
  const FuzzResult result =
      FuzzSchedule(GridSpace(128), shape, config, 17).Run(RectRegionTest(shape));
  EXPECT_LT(result.stats.final_epsilon, 0.01);
}

TEST(FuzzScheduleTest, PlainExploitExploreKeepsEpsilonOne) {
  const Shape shape{128, 128};
  FuzzConfig config = FuzzConfig::PlainExploitExplore();
  config.max_iter = 500;
  const FuzzResult result =
      FuzzSchedule(GridSpace(128), shape, config, 19).Run(RectRegionTest(shape));
  EXPECT_DOUBLE_EQ(result.stats.final_epsilon, 1.0);
  EXPECT_EQ(result.stats.restarts, 1);  // Only the initial seeding.
}

TEST(FuzzScheduleTest, RestartsHappenPeriodically) {
  const Shape shape{128, 128};
  FuzzConfig config;
  config.max_iter = 1000;
  config.restart = 100;
  config.stop_iter = 1 << 30;
  const FuzzResult result =
      FuzzSchedule(GridSpace(128), shape, config, 23).Run(RectRegionTest(shape));
  EXPECT_GE(result.stats.restarts, 9);
}

TEST(FuzzScheduleTest, BoundaryScheduleBeatsPlainOnMultiRegion) {
  // Two small disjoint useful islands: boundary-based EE with restarts
  // should discover more than plain EE for the same iteration budget —
  // the Fig. 4 contrast.
  const Shape shape{128, 128};
  const DebloatTestFn test = [&shape](const ParamValue& v) {
    IndexSet accessed(shape);
    const int64_t x = static_cast<int64_t>(std::llround(v[0]));
    const int64_t y = static_cast<int64_t>(std::llround(v[1]));
    const bool island_a = x >= 5 && x <= 20 && y >= 100 && y <= 115;
    const bool island_b = x >= 100 && x <= 115 && y >= 5 && y <= 20;
    if (island_a || island_b) {
      accessed.Insert(Index{x, y});
    }
    return accessed;
  };
  FuzzConfig boundary;
  boundary.max_iter = 1500;
  boundary.stop_iter = 1 << 30;
  FuzzConfig plain = FuzzConfig::PlainExploitExplore();
  plain.max_iter = 1500;
  plain.stop_iter = 1 << 30;

  size_t boundary_total = 0;
  size_t plain_total = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    boundary_total +=
        FuzzSchedule(GridSpace(128), shape, boundary, seed).Run(test)
            .discovered.size();
    plain_total +=
        FuzzSchedule(GridSpace(128), shape, plain, seed).Run(test)
            .discovered.size();
  }
  EXPECT_GT(boundary_total, plain_total);
}

}  // namespace
}  // namespace kondo
