#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "array/data_array.h"
#include "array/dtype.h"
#include "array/index.h"
#include "array/index_set.h"
#include "array/layout.h"
#include "array/shape.h"
#include "common/rng.h"

namespace kondo {
namespace {

// ----------------------------------------------------------------- Index --

TEST(IndexTest, ConstructionAndAccess) {
  Index index{3, 4, 5};
  EXPECT_EQ(index.rank(), 3);
  EXPECT_EQ(index[0], 3);
  EXPECT_EQ(index[2], 5);
  index[1] = 9;
  EXPECT_EQ(index[1], 9);
}

TEST(IndexTest, ZeroInitialized) {
  Index index(2);
  EXPECT_EQ(index[0], 0);
  EXPECT_EQ(index[1], 0);
}

TEST(IndexTest, Equality) {
  EXPECT_EQ((Index{1, 2}), (Index{1, 2}));
  EXPECT_FALSE((Index{1, 2}) == (Index{1, 3}));
  EXPECT_FALSE((Index{1, 2}) == (Index{1, 2, 0}));  // Rank differs.
}

TEST(IndexTest, Ordering) {
  EXPECT_LT((Index{1, 2}), (Index{1, 3}));
  EXPECT_LT((Index{1, 9}), (Index{2, 0}));
  EXPECT_LT((Index{5}), (Index{0, 0}));  // Lower rank sorts first.
}

TEST(IndexTest, ToString) {
  EXPECT_EQ((Index{7, 8}).ToString(), "(7, 8)");
  EXPECT_EQ(Index(1).ToString(), "(0)");
}

TEST(IndexTest, HashDistinguishesNearbyIndices) {
  const std::hash<Index> hasher;
  EXPECT_NE(hasher(Index{0, 1}), hasher(Index{1, 0}));
  EXPECT_EQ(hasher(Index{3, 4}), hasher(Index{3, 4}));
}

// ----------------------------------------------------------------- Shape --

TEST(ShapeTest, BasicProperties) {
  const Shape shape{4, 5, 6};
  EXPECT_EQ(shape.rank(), 3);
  EXPECT_EQ(shape.NumElements(), 120);
  EXPECT_EQ(shape.ToString(), "4x5x6");
}

TEST(ShapeTest, Contains) {
  const Shape shape{4, 5};
  EXPECT_TRUE(shape.Contains(Index{0, 0}));
  EXPECT_TRUE(shape.Contains(Index{3, 4}));
  EXPECT_FALSE(shape.Contains(Index{4, 0}));
  EXPECT_FALSE(shape.Contains(Index{0, -1}));
  EXPECT_FALSE(shape.Contains(Index{0, 0, 0}));  // Rank mismatch.
}

TEST(ShapeTest, LinearizeIsRowMajor) {
  const Shape shape{3, 4};
  EXPECT_EQ(shape.Linearize(Index{0, 0}), 0);
  EXPECT_EQ(shape.Linearize(Index{0, 3}), 3);
  EXPECT_EQ(shape.Linearize(Index{1, 0}), 4);
  EXPECT_EQ(shape.Linearize(Index{2, 3}), 11);
}

class ShapeRoundTripTest
    : public ::testing::TestWithParam<std::vector<int64_t>> {};

TEST_P(ShapeRoundTripTest, LinearizeDelinearizeRoundTrips) {
  const Shape shape(GetParam());
  const int64_t n = shape.NumElements();
  for (int64_t linear = 0; linear < n; ++linear) {
    const Index index = shape.Delinearize(linear);
    EXPECT_TRUE(shape.Contains(index));
    EXPECT_EQ(shape.Linearize(index), linear);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeRoundTripTest,
                         ::testing::Values(std::vector<int64_t>{7},
                                           std::vector<int64_t>{3, 5},
                                           std::vector<int64_t>{4, 4, 4},
                                           std::vector<int64_t>{2, 3, 4, 5},
                                           std::vector<int64_t>{1, 9},
                                           std::vector<int64_t>{16, 16}));

TEST(ShapeTest, ForEachIndexVisitsAllOnce) {
  const Shape shape{3, 3};
  int count = 0;
  Index last(2);
  shape.ForEachIndex([&count, &last, &shape](const Index& index) {
    EXPECT_TRUE(shape.Contains(index));
    ++count;
    last = index;
  });
  EXPECT_EQ(count, 9);
  EXPECT_EQ(last, (Index{2, 2}));
}

// -------------------------------------------------------------- IndexSet --

TEST(IndexSetTest, InsertAndContains) {
  IndexSet set(Shape{4, 4});
  set.Insert(Index{1, 2});
  EXPECT_TRUE(set.Contains(Index{1, 2}));
  EXPECT_FALSE(set.Contains(Index{2, 1}));
  EXPECT_EQ(set.size(), 1u);
}

TEST(IndexSetTest, OutOfBoundsInsertIsClipped) {
  IndexSet set(Shape{4, 4});
  set.Insert(Index{4, 0});
  set.Insert(Index{-1, 2});
  EXPECT_TRUE(set.empty());
}

TEST(IndexSetTest, DuplicateInsertIsIdempotent) {
  IndexSet set(Shape{4, 4});
  set.Insert(Index{1, 1});
  set.Insert(Index{1, 1});
  EXPECT_EQ(set.size(), 1u);
}

TEST(IndexSetTest, UnionAndIntersection) {
  IndexSet a(Shape{8, 8});
  IndexSet b(Shape{8, 8});
  a.Insert(Index{0, 0});
  a.Insert(Index{1, 1});
  b.Insert(Index{1, 1});
  b.Insert(Index{2, 2});
  EXPECT_EQ(a.IntersectionSize(b), 1);
  a.Union(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.IntersectionSize(b), 2);
}

TEST(IndexSetTest, UnionIntoDefaultConstructedAdoptsShape) {
  IndexSet a;
  IndexSet b(Shape{4, 4});
  b.Insert(Index{3, 3});
  a.Union(b);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_TRUE(a.Contains(Index{3, 3}));
}

TEST(IndexSetTest, IsSubsetOf) {
  IndexSet a(Shape{4, 4});
  IndexSet b(Shape{4, 4});
  a.Insert(Index{0, 1});
  b.Insert(Index{0, 1});
  b.Insert(Index{2, 3});
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
}

TEST(IndexSetTest, SortedLinearIdsAreSorted) {
  IndexSet set(Shape{4, 4});
  set.Insert(Index{3, 3});
  set.Insert(Index{0, 0});
  set.Insert(Index{1, 2});
  const std::vector<int64_t> ids = set.ToSortedLinearIds();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], 0);
  EXPECT_EQ(ids[2], 15);
}

TEST(IndexSetTest, ForEachVisitsEveryMember) {
  IndexSet set(Shape{5, 5});
  set.Insert(Index{1, 1});
  set.Insert(Index{4, 0});
  int count = 0;
  set.ForEach([&count, &set](const Index& index) {
    EXPECT_TRUE(set.Contains(index));
    ++count;
  });
  EXPECT_EQ(count, 2);
}

// ----------------------------------------------------------------- DType --

TEST(DTypeTest, Sizes) {
  EXPECT_EQ(DTypeSize(DType::kInt32), 4);
  EXPECT_EQ(DTypeSize(DType::kInt64), 8);
  EXPECT_EQ(DTypeSize(DType::kFloat32), 4);
  EXPECT_EQ(DTypeSize(DType::kFloat64), 8);
  // The paper assumes 16-byte long double elements (Section V-B).
  EXPECT_EQ(DTypeSize(DType::kFloat128), 16);
}

TEST(DTypeTest, NamesAndValidity) {
  EXPECT_EQ(DTypeName(DType::kFloat128), "float128");
  EXPECT_TRUE(IsValidDType(0));
  EXPECT_TRUE(IsValidDType(4));
  EXPECT_FALSE(IsValidDType(5));
}

// --------------------------------------------------------------- Layouts --

TEST(RowMajorLayoutTest, OffsetsAreContiguous) {
  RowMajorLayout layout(Shape{4, 4}, DType::kFloat64);
  EXPECT_EQ(layout.PayloadBytes(), 128);
  EXPECT_EQ(layout.ByteOffsetOf(Index{0, 0}), 0);
  EXPECT_EQ(layout.ByteOffsetOf(Index{0, 1}), 8);
  EXPECT_EQ(layout.ByteOffsetOf(Index{1, 0}), 32);
}

TEST(RowMajorLayoutTest, InverseMapping) {
  RowMajorLayout layout(Shape{4, 4}, DType::kFloat64);
  StatusOr<Index> index = layout.IndexOfByteOffset(33);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(*index, (Index{1, 0}));  // Offset mid-element maps to element.
  EXPECT_FALSE(layout.IndexOfByteOffset(-1).ok());
  EXPECT_FALSE(layout.IndexOfByteOffset(128).ok());
}

TEST(ChunkedLayoutTest, GridDims) {
  ChunkedLayout layout(Shape{10, 10}, DType::kFloat64, {4, 4});
  EXPECT_EQ(layout.ChunkGridDim(0), 3);
  EXPECT_EQ(layout.ChunkGridDim(1), 3);
  // 9 chunks, each padded to 16 elements.
  EXPECT_EQ(layout.PayloadBytes(), 9 * 16 * 8);
}

TEST(ChunkedLayoutTest, ChunkInteriorIsContiguous) {
  ChunkedLayout layout(Shape{8, 8}, DType::kFloat64, {4, 4});
  const int64_t base = layout.ByteOffsetOf(Index{0, 0});
  EXPECT_EQ(layout.ByteOffsetOf(Index{0, 1}) - base, 8);
  EXPECT_EQ(layout.ByteOffsetOf(Index{1, 0}) - base, 32);
  // Next chunk starts a full chunk later.
  EXPECT_EQ(layout.ByteOffsetOf(Index{0, 4}), 16 * 8);
}

TEST(ChunkedLayoutTest, PaddingBytesMapToNoElement) {
  ChunkedLayout layout(Shape{3, 3}, DType::kFloat64, {2, 2});
  // Chunk grid is 2x2; the element (0,0) of chunk (1,1) is index (2,2), and
  // its chunk-mate slot for (2,3) -> index (2,3) exists, but (3,3) is pure
  // padding.
  int pad_slots = 0;
  for (int64_t offset = 0; offset < layout.PayloadBytes(); offset += 8) {
    StatusOr<Index> index = layout.IndexOfByteOffset(offset);
    if (!index.ok()) {
      EXPECT_EQ(index.status().code(), StatusCode::kNotFound);
      ++pad_slots;
    }
  }
  // 4 chunks x 4 slots = 16 slots for 9 elements -> 7 padding slots.
  EXPECT_EQ(pad_slots, 7);
}

using LayoutParam = std::tuple<std::vector<int64_t>, std::vector<int64_t>,
                               DType>;

class ChunkedRoundTripTest : public ::testing::TestWithParam<LayoutParam> {};

TEST_P(ChunkedRoundTripTest, OffsetIndexRoundTrips) {
  const auto& [dims, chunks, dtype] = GetParam();
  ChunkedLayout layout(Shape(dims), dtype, chunks);
  layout.shape().ForEachIndex([&layout](const Index& index) {
    const int64_t offset = layout.ByteOffsetOf(index);
    EXPECT_GE(offset, 0);
    EXPECT_LT(offset, layout.PayloadBytes());
    StatusOr<Index> back = layout.IndexOfByteOffset(offset);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, index);
  });
}

TEST_P(ChunkedRoundTripTest, OffsetsAreUnique) {
  const auto& [dims, chunks, dtype] = GetParam();
  ChunkedLayout layout(Shape(dims), dtype, chunks);
  std::vector<int64_t> offsets;
  layout.shape().ForEachIndex([&layout, &offsets](const Index& index) {
    offsets.push_back(layout.ByteOffsetOf(index));
  });
  std::sort(offsets.begin(), offsets.end());
  EXPECT_EQ(std::adjacent_find(offsets.begin(), offsets.end()),
            offsets.end());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ChunkedRoundTripTest,
    ::testing::Values(
        LayoutParam{{8, 8}, {4, 4}, DType::kFloat64},
        LayoutParam{{10, 10}, {4, 4}, DType::kFloat128},
        LayoutParam{{7, 5}, {3, 2}, DType::kInt32},
        LayoutParam{{6, 6, 6}, {2, 3, 4}, DType::kFloat64},
        LayoutParam{{5, 5, 5}, {2, 2, 2}, DType::kFloat32},
        LayoutParam{{9}, {4}, DType::kInt64}));

TEST(LayoutTest, ElementsInByteRange) {
  RowMajorLayout layout(Shape{4, 4}, DType::kFloat64);
  std::vector<Index> elements;
  // Bytes [4, 20) touch elements 0, 1, 2 (element 2 partially).
  layout.ElementsInByteRange(4, 20, &elements);
  ASSERT_EQ(elements.size(), 3u);
  EXPECT_EQ(elements[0], (Index{0, 0}));
  EXPECT_EQ(elements[2], (Index{0, 2}));
}

TEST(LayoutTest, ElementsInByteRangeClipsToPayload) {
  RowMajorLayout layout(Shape{2, 2}, DType::kFloat64);
  std::vector<Index> elements;
  layout.ElementsInByteRange(-100, 1000, &elements);
  EXPECT_EQ(elements.size(), 4u);
  elements.clear();
  layout.ElementsInByteRange(50, 40, &elements);
  EXPECT_TRUE(elements.empty());
}

TEST(LayoutTest, ByteRangeOfCoversElement) {
  ChunkedLayout layout(Shape{4, 4}, DType::kFloat128, {2, 2});
  const Interval range = layout.ByteRangeOf(Index{3, 3});
  EXPECT_EQ(range.length(), 16);
  StatusOr<Index> back = layout.IndexOfByteOffset(range.begin);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, (Index{3, 3}));
}

TEST(LayoutTest, MakeLayoutFactory) {
  std::unique_ptr<Layout> row =
      MakeLayout(LayoutKind::kRowMajor, Shape{4, 4}, DType::kFloat64);
  EXPECT_NE(dynamic_cast<RowMajorLayout*>(row.get()), nullptr);
  std::unique_ptr<Layout> chunked =
      MakeLayout(LayoutKind::kChunked, Shape{4, 4}, DType::kFloat64, {2, 2});
  EXPECT_NE(dynamic_cast<ChunkedLayout*>(chunked.get()), nullptr);
}

// ------------------------------------------------------------- DataArray --

TEST(DataArrayTest, ZeroInitialized) {
  DataArray array(Shape{3, 3});
  EXPECT_DOUBLE_EQ(array.At(Index{1, 1}), 0.0);
  EXPECT_EQ(array.dtype(), DType::kFloat128);
}

TEST(DataArrayTest, SetAndGet) {
  DataArray array(Shape{3, 3}, DType::kFloat64);
  array.Set(Index{2, 1}, 3.5);
  EXPECT_DOUBLE_EQ(array.At(Index{2, 1}), 3.5);
  EXPECT_DOUBLE_EQ(array.AtLinear(array.shape().Linearize(Index{2, 1})), 3.5);
}

TEST(DataArrayTest, FillWithFunction) {
  DataArray array(Shape{4, 4});
  array.FillWith([](const Index& index) {
    return static_cast<double>(index[0] * 10 + index[1]);
  });
  EXPECT_DOUBLE_EQ(array.At(Index{3, 2}), 32.0);
}

TEST(DataArrayTest, FillPatternIsDeterministic) {
  DataArray a(Shape{8, 8});
  DataArray b(Shape{8, 8});
  a.FillPattern(5);
  b.FillPattern(5);
  EXPECT_EQ(a.values(), b.values());
  DataArray c(Shape{8, 8});
  c.FillPattern(6);
  EXPECT_NE(a.values(), c.values());
}

}  // namespace
}  // namespace kondo
