#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "array/data_array.h"
#include "array/kdf_file.h"
#include "audit/auditor.h"
#include "audit/event.h"
#include "audit/event_log.h"
#include "audit/event_store.h"
#include "audit/interval_btree.h"
#include "audit/offset_mapper.h"
#include "audit/traced_file.h"
#include "common/rng.h"
#include "provenance/kel2_reader.h"
#include "provenance/kel2_writer.h"
#include "provenance/persist.h"

#include <unistd.h>

namespace kondo {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ----------------------------------------------------------------- Event --

TEST(EventTest, ToStringMatchesDefinitionFour) {
  Event event;
  event.id = EventId{7, 3};
  event.type = EventType::kPread;
  event.offset = 100;
  event.size = 16;
  EXPECT_EQ(event.ToString(), "<pid=7,file=3,pread,100,16>");
}

TEST(EventTest, DataAccessClassification) {
  Event event;
  for (EventType type : {EventType::kRead, EventType::kPread,
                         EventType::kMmap}) {
    event.type = type;
    EXPECT_TRUE(event.IsDataAccess());
  }
  for (EventType type : {EventType::kOpen, EventType::kWrite,
                         EventType::kClose}) {
    event.type = type;
    EXPECT_FALSE(event.IsDataAccess());
  }
}

// --------------------------------------------------------- IntervalBTree --

TEST(IntervalBTreeTest, EmptyTree) {
  IntervalBTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_FALSE(tree.AnyOverlap(0, 100));
  tree.CheckInvariants();
}

TEST(IntervalBTreeTest, SingleInsertAndQuery) {
  IntervalBTree tree;
  tree.Insert(Interval{10, 20}, 1);
  EXPECT_EQ(tree.size(), 1);
  EXPECT_TRUE(tree.AnyOverlap(15, 16));
  EXPECT_TRUE(tree.AnyOverlap(0, 11));
  EXPECT_FALSE(tree.AnyOverlap(20, 30));
  EXPECT_FALSE(tree.AnyOverlap(0, 10));
  tree.CheckInvariants();
}

TEST(IntervalBTreeTest, DuplicateIntervalsAllowed) {
  IntervalBTree tree;
  tree.Insert(Interval{5, 10}, 1);
  tree.Insert(Interval{5, 10}, 2);
  EXPECT_EQ(tree.QueryOverlaps(5, 6).size(), 2u);
  tree.CheckInvariants();
}

TEST(IntervalBTreeTest, SplitsGrowHeight) {
  IntervalBTree tree(/*min_degree=*/2);
  for (int i = 0; i < 100; ++i) {
    tree.Insert(Interval{i * 10, i * 10 + 5}, i);
    tree.CheckInvariants();
  }
  EXPECT_EQ(tree.size(), 100);
  EXPECT_GT(tree.Height(), 2);
}

TEST(IntervalBTreeTest, VisitationOrderIsSorted) {
  IntervalBTree tree(/*min_degree=*/2);
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const int64_t begin = rng.UniformInt(0, 1000);
    tree.Insert(Interval{begin, begin + rng.UniformInt(1, 20)}, i);
  }
  std::vector<IntervalBTree::Entry> all = tree.QueryOverlaps(-10, 2000);
  ASSERT_EQ(all.size(), 200u);
  for (size_t i = 1; i < all.size(); ++i) {
    const bool sorted =
        all[i - 1].interval.begin < all[i].interval.begin ||
        (all[i - 1].interval.begin == all[i].interval.begin &&
         all[i - 1].interval.end <= all[i].interval.end);
    EXPECT_TRUE(sorted) << i;
  }
}

class IntervalBTreeDegreeTest : public ::testing::TestWithParam<int> {};

TEST_P(IntervalBTreeDegreeTest, RandomizedQueriesMatchBruteForce) {
  const int min_degree = GetParam();
  Rng rng(42 + static_cast<uint64_t>(min_degree));
  IntervalBTree tree(min_degree);
  std::vector<Interval> reference;
  for (int i = 0; i < 300; ++i) {
    const int64_t begin = rng.UniformInt(0, 500);
    const Interval interval{begin, begin + rng.UniformInt(1, 40)};
    tree.Insert(interval, i);
    reference.push_back(interval);
  }
  tree.CheckInvariants();
  for (int q = 0; q < 100; ++q) {
    const int64_t begin = rng.UniformInt(-10, 550);
    const int64_t end = begin + rng.UniformInt(0, 60);
    size_t expected = 0;
    for (const Interval& interval : reference) {
      // Half-open semantics: an empty query range overlaps nothing.
      if (begin < end && interval.begin < end && interval.end > begin) {
        ++expected;
      }
    }
    EXPECT_EQ(tree.QueryOverlaps(begin, end).size(), expected)
        << "q=[" << begin << "," << end << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, IntervalBTreeDegreeTest,
                         ::testing::Values(2, 3, 8, 16, 64));

TEST(IntervalBTreeTest, EmptyQueryRangeFindsNothing) {
  IntervalBTree tree;
  tree.Insert(Interval{0, 100}, 0);
  EXPECT_TRUE(tree.QueryOverlaps(50, 50).empty());
}

// -------------------------------------------------------------- EventLog --

Event MakeRead(int64_t pid, int64_t file, int64_t offset, int64_t size) {
  Event event;
  event.id = EventId{pid, file};
  event.type = EventType::kRead;
  event.offset = offset;
  event.size = size;
  return event;
}

TEST(EventLogTest, PaperWorkedExample) {
  // e1(P1,R,0,110), e2(P2,R,70,30), e3(P1,R,130,20), e4(P1,R,90,30)
  // -> accessed offsets (0,120) and (130,150).
  EventLog log;
  log.Record(MakeRead(1, 1, 0, 110));
  log.Record(MakeRead(2, 1, 70, 30));
  log.Record(MakeRead(1, 1, 130, 20));
  log.Record(MakeRead(1, 1, 90, 30));
  EXPECT_EQ(log.AccessedRanges(1).ToString(), "[0,120) [130,150)");
}

TEST(EventLogTest, PerProcessRangesAreSeparate) {
  EventLog log;
  log.Record(MakeRead(1, 1, 0, 110));
  log.Record(MakeRead(2, 1, 70, 30));
  log.Record(MakeRead(1, 1, 130, 20));
  log.Record(MakeRead(1, 1, 90, 30));
  EXPECT_EQ(log.AccessedRangesForProcess(1, 1).ToString(),
            "[0,120) [130,150)");
  EXPECT_EQ(log.AccessedRangesForProcess(2, 1).ToString(), "[70,100)");
  EXPECT_TRUE(log.AccessedRangesForProcess(3, 1).empty());
}

TEST(EventLogTest, PerProcessLookupReturnsEvents) {
  EventLog log;
  log.Record(MakeRead(1, 1, 0, 50));
  log.Record(MakeRead(1, 1, 100, 50));
  log.Record(MakeRead(2, 1, 10, 5));
  const std::vector<Event> hits = log.LookupProcessRange(1, 1, 40, 110);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].offset, 0);
  EXPECT_EQ(hits[1].offset, 100);
}

TEST(EventLogTest, FilesAreIndependent) {
  EventLog log;
  log.Record(MakeRead(1, 1, 0, 10));
  log.Record(MakeRead(1, 2, 50, 10));
  EXPECT_EQ(log.AccessedRanges(1).ToString(), "[0,10)");
  EXPECT_EQ(log.AccessedRanges(2).ToString(), "[50,60)");
  EXPECT_TRUE(log.AccessedRanges(3).empty());
}

TEST(EventLogTest, TracksWrites) {
  EventLog log;
  EXPECT_FALSE(log.HasWrites(1));
  Event write = MakeRead(1, 1, 0, 10);
  write.type = EventType::kWrite;
  log.Record(write);
  EXPECT_TRUE(log.HasWrites(1));
  EXPECT_FALSE(log.HasWrites(2));
  // Writes do not count as accessed read ranges.
  EXPECT_TRUE(log.AccessedRanges(1).empty());
}

TEST(EventLogTest, NonDataEventsAreRecordedButNotIndexed) {
  EventLog log;
  Event open = MakeRead(1, 1, 0, 0);
  open.type = EventType::kOpen;
  log.Record(open);
  EXPECT_EQ(log.NumEvents(), 1);
  EXPECT_TRUE(log.AccessedRanges(1).empty());
  EXPECT_EQ(log.ProcessIndex(1, 1), nullptr);
}

TEST(EventLogTest, ZeroSizeReadIgnoredByIndex) {
  EventLog log;
  log.Record(MakeRead(1, 1, 42, 0));
  EXPECT_TRUE(log.AccessedRanges(1).empty());
}

TEST(EventLogTest, ClearResetsEverything) {
  EventLog log;
  log.Record(MakeRead(1, 1, 0, 10));
  log.Clear();
  EXPECT_EQ(log.NumEvents(), 0);
  EXPECT_TRUE(log.AccessedRanges(1).empty());
}

TEST(EventLogTest, ManyEventsBuildDeepIndex) {
  EventLog log;
  Rng rng(3);
  IntervalSet reference;
  for (int i = 0; i < 3000; ++i) {
    const int64_t offset = rng.UniformInt(0, 100000);
    const int64_t size = rng.UniformInt(1, 64);
    log.Record(MakeRead(1, 1, offset, size));
    reference.Add(offset, offset + size);
  }
  EXPECT_EQ(log.AccessedRanges(1), reference);
  const IntervalBTree* index = log.ProcessIndex(1, 1);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->size(), 3000);
  index->CheckInvariants();
}

// ---------------------------------------------------------- OffsetMapper --

TEST(OffsetMapperTest, RangesToIndicesRowMajor) {
  RowMajorLayout layout(Shape{4, 4}, DType::kFloat64);
  OffsetMapper mapper(&layout, /*payload_offset=*/24);
  IntervalSet ranges;
  ranges.Add(24, 24 + 3 * 8);  // First three elements.
  const IndexSet indices = mapper.IndicesForRanges(ranges);
  EXPECT_EQ(indices.size(), 3u);
  EXPECT_TRUE(indices.Contains(Index{0, 0}));
  EXPECT_TRUE(indices.Contains(Index{0, 2}));
}

TEST(OffsetMapperTest, HeaderBytesMapToNothing) {
  RowMajorLayout layout(Shape{4, 4}, DType::kFloat64);
  OffsetMapper mapper(&layout, 24);
  IntervalSet ranges;
  ranges.Add(0, 24);  // Pure header read.
  EXPECT_TRUE(mapper.IndicesForRanges(ranges).empty());
}

TEST(OffsetMapperTest, PartialElementCountsAsAccessed) {
  RowMajorLayout layout(Shape{4, 4}, DType::kFloat64);
  OffsetMapper mapper(&layout, 0);
  IntervalSet ranges;
  ranges.Add(4, 12);  // Second half of element 0, first half of element 1.
  const IndexSet indices = mapper.IndicesForRanges(ranges);
  EXPECT_EQ(indices.size(), 2u);
}

TEST(OffsetMapperTest, ChunkedPaddingSkipped) {
  ChunkedLayout layout(Shape{3, 3}, DType::kFloat64, {2, 2});
  OffsetMapper mapper(&layout, 0);
  IntervalSet ranges;
  ranges.Add(0, layout.PayloadBytes());  // Whole payload incl. padding.
  EXPECT_EQ(mapper.IndicesForRanges(ranges).size(), 9u);
}

TEST(OffsetMapperTest, RoundTripIndexSet) {
  ChunkedLayout layout(Shape{6, 6}, DType::kFloat128, {4, 4});
  OffsetMapper mapper(&layout, 100);
  IndexSet indices(layout.shape());
  indices.Insert(Index{0, 0});
  indices.Insert(Index{5, 5});
  indices.Insert(Index{2, 3});
  const IntervalSet ranges = mapper.RangesForIndices(indices);
  const IndexSet back = mapper.IndicesForRanges(ranges);
  EXPECT_EQ(back.size(), indices.size());
  indices.ForEach([&back](const Index& index) {
    EXPECT_TRUE(back.Contains(index));
  });
}

// ------------------------------------------------------------ TracedFile --

class TracedFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DataArray array(Shape{8, 8}, DType::kFloat64);
    array.FillWith([](const Index& index) {
      return static_cast<double>(index[0] * 8 + index[1]);
    });
    // Unique per test case: ctest runs the cases as separate processes, so
    // a shared fixture file would race under a parallel test driver.
    path_ = TempPath(std::string("traced-") +
                     ::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name() +
                     ".kdf");
    ASSERT_TRUE(WriteKdfFile(path_, array).ok());
  }

  std::string path_;
};

TEST_F(TracedFileTest, OpenLogsOpenEvent) {
  EventLog log;
  StatusOr<TracedFile> file = TracedFile::Open(path_, 1, 9, &log);
  ASSERT_TRUE(file.ok());
  ASSERT_GE(log.NumEvents(), 1);
  EXPECT_EQ(log.events()[0].type, EventType::kOpen);
  EXPECT_EQ(log.events()[0].id.file_id, 9);
}

TEST_F(TracedFileTest, ReadElementLogsPreadWithElementRange) {
  EventLog log;
  StatusOr<TracedFile> file = TracedFile::Open(path_, 1, 1, &log);
  ASSERT_TRUE(file.ok());
  StatusOr<double> value = file->ReadElement(Index{2, 3});
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(*value, 19.0);
  const Event& event = log.events().back();
  EXPECT_EQ(event.type, EventType::kPread);
  EXPECT_EQ(event.size, 8);
  // Offset = header + linear(2,3)*8 = 24 + 19*8.
  EXPECT_EQ(event.offset, 24 + 19 * 8);
}

TEST_F(TracedFileTest, CloseIsIdempotentAndLogged) {
  EventLog log;
  {
    StatusOr<TracedFile> file = TracedFile::Open(path_, 1, 1, &log);
    ASSERT_TRUE(file.ok());
    file->Close();
    file->Close();
  }
  int close_events = 0;
  for (const Event& event : log.events()) {
    if (event.type == EventType::kClose) {
      ++close_events;
    }
  }
  EXPECT_EQ(close_events, 1);
}

TEST_F(TracedFileTest, DestructorLogsClose) {
  EventLog log;
  {
    StatusOr<TracedFile> file = TracedFile::Open(path_, 1, 1, &log);
    ASSERT_TRUE(file.ok());
  }
  EXPECT_EQ(log.events().back().type, EventType::kClose);
}

TEST_F(TracedFileTest, NullLogDisablesAuditing) {
  StatusOr<TracedFile> file = TracedFile::Open(path_, 1, 1, nullptr);
  ASSERT_TRUE(file.ok());
  StatusOr<double> value = file->ReadElement(Index{0, 1});
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(*value, 1.0);
  EXPECT_EQ(file->access_count(), 1);
}

TEST_F(TracedFileTest, MultiProcessEventsViaSetPid) {
  EventLog log;
  StatusOr<TracedFile> file = TracedFile::Open(path_, 1, 1, &log);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->ReadElement(Index{0, 0}).ok());
  file->SetPid(2);
  ASSERT_TRUE(file->ReadElement(Index{0, 1}).ok());
  EXPECT_FALSE(log.AccessedRangesForProcess(1, 1).empty());
  EXPECT_FALSE(log.AccessedRangesForProcess(2, 1).empty());
}

TEST_F(TracedFileTest, TouchMmapLogsWithoutReading) {
  EventLog log;
  StatusOr<TracedFile> file = TracedFile::Open(path_, 1, 1, &log);
  ASSERT_TRUE(file.ok());
  file->TouchMmap(24, 64);
  EXPECT_EQ(log.AccessedRanges(1).ToString(), "[24,88)");
}

// --------------------------------------------------------------- Auditor --

TEST_F(TracedFileTest, RunAuditedRecoversIndexSubset) {
  StatusOr<AuditReport> report =
      RunAudited(path_, /*pid=*/1, [](TracedFile& file) {
        KONDO_RETURN_IF_ERROR(file.ReadElement(Index{1, 1}).status());
        KONDO_RETURN_IF_ERROR(file.ReadElement(Index{1, 2}).status());
        KONDO_RETURN_IF_ERROR(file.ReadElement(Index{1, 1}).status());
        return OkStatus();
      });
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->accessed_indices.size(), 2u);
  EXPECT_TRUE(report->accessed_indices.Contains(Index{1, 1}));
  EXPECT_TRUE(report->accessed_indices.Contains(Index{1, 2}));
  EXPECT_FALSE(report->saw_writes);
  // Adjacent elements coalesce into one byte range.
  EXPECT_EQ(report->accessed_ranges.size(), 1u);
}

TEST_F(TracedFileTest, RunAuditedPropagatesBodyError) {
  StatusOr<AuditReport> report = RunAudited(
      path_, 1, [](TracedFile&) { return InternalError("boom"); });
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
}

// -------------------------------------------- durable store crash safety --

Event StoreEvent(int64_t pid, int64_t offset, int64_t size) {
  Event event;
  event.id = EventId{pid, 1};
  event.type = EventType::kPread;
  event.offset = offset;
  event.size = size;
  return event;
}

/// Torn-write tolerance, parameterized over both store generations: write
/// three events, truncate the file mid-record (KEL1) / mid-block (KEL2),
/// and assert the reader drops exactly the partial trailing unit.
class TornWriteTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TornWriteTest, TruncationDropsExactlyThePartialTail) {
  const bool kel2 = std::string(GetParam()) == "kel2";
  const std::string path =
      TempPath(std::string("torn_param.") + GetParam());
  const std::vector<Event> events = {StoreEvent(1, 0, 8),
                                     StoreEvent(1, 8, 8),
                                     StoreEvent(2, 100, 8)};
  int64_t intact = 0;  // Events expected to survive truncation.
  if (kel2) {
    // One event per block: truncating into the third block keeps two.
    Kel2WriterOptions options;
    options.events_per_block = 1;
    StatusOr<Kel2Writer> writer = Kel2Writer::Create(path, options);
    ASSERT_TRUE(writer.ok());
    for (const Event& event : events) {
      ASSERT_TRUE(writer->Append(event).ok());
    }
    ASSERT_TRUE(writer->Close().ok());
    intact = 2;
  } else {
    StatusOr<EventStoreWriter> writer = EventStoreWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    for (const Event& event : events) {
      ASSERT_TRUE(writer->Append(event).ok());
    }
    ASSERT_TRUE(writer->Close().ok());
    intact = 2;
  }

  StatusOr<int64_t> full = FileSizeBytes(path);
  ASSERT_TRUE(full.ok());
  // Chop into (not at) the final record/block.
  ASSERT_EQ(::truncate(path.c_str(), *full - 5), 0);

  StatusOr<std::vector<Event>> got = ReadLineageStore(path);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_EQ(static_cast<int64_t>(got->size()), intact);
  for (int64_t i = 0; i < intact; ++i) {
    EXPECT_EQ((*got)[static_cast<size_t>(i)].offset, events[i].offset);
    EXPECT_EQ((*got)[static_cast<size_t>(i)].id.pid, events[i].id.pid);
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, TornWriteTest,
                         ::testing::Values("kel1", "kel2"));

// ------------------------------------------ event store error reporting --

TEST(EventStoreErrorTest, AppendAfterCloseNamesTheStore) {
  const std::string path = TempPath("closed_named.kel");
  StatusOr<EventStoreWriter> writer = EventStoreWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Close().ok());
  const Status status = writer->Append(StoreEvent(1, 0, 8));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find(path), std::string::npos)
      << status.message();
}

TEST(EventStoreErrorTest, ShortWriteReportsSizes) {
  // /dev/full fails every flush with ENOSPC; with the default 4 KiB stdio
  // buffer the failure surfaces inside some Append (or at Close). The
  // regression under test: the status must report how many of the 40
  // record bytes made it out.
  std::FILE* probe = std::fopen("/dev/full", "wb");
  if (probe == nullptr) {
    GTEST_SKIP() << "/dev/full not available";
  }
  std::fclose(probe);

  StatusOr<EventStoreWriter> writer = EventStoreWriter::Create("/dev/full");
  ASSERT_TRUE(writer.ok());
  Status failure = OkStatus();
  for (int i = 0; i < 500 && failure.ok(); ++i) {
    failure = writer->Append(StoreEvent(1, i * 8, 8));
  }
  if (failure.ok()) {
    failure = writer->Close();
  }
  ASSERT_FALSE(failure.ok());
  if (failure.message().find("short write") != std::string::npos) {
    EXPECT_NE(failure.message().find("of 40 bytes"), std::string::npos)
        << failure.message();
  }
  EXPECT_NE(failure.message().find("/dev/full"), std::string::npos)
      << failure.message();
}

}  // namespace
}  // namespace kondo
