#include <gtest/gtest.h>

#include <vector>

#include "array/index_set.h"
#include "carve/carve_config.h"
#include "carve/carved_subset.h"
#include "carve/carver.h"
#include "common/rng.h"
#include "exec/campaign_executor.h"
#include "geom/hull.h"

namespace kondo {
namespace {

IndexSet FilledRect(const Shape& shape, int64_t x0, int64_t y0, int64_t x1,
                    int64_t y1) {
  IndexSet set(shape);
  for (int64_t x = x0; x <= x1; ++x) {
    for (int64_t y = y0; y <= y1; ++y) {
      set.Insert(Index{x, y});
    }
  }
  return set;
}

// ------------------------------------------------------------- CLOSE(.) --

TEST(CloseTest, BoundaryOrCenterMode) {
  CarveConfig config;
  config.center_d_thresh = 20.0;
  config.boundary_d_thresh = 10.0;
  config.close_mode = CloseMode::kBoundaryOrCenter;
  Carver carver(config);

  const Hull a = Hull::FromIndices({Index{0, 0}, Index{4, 4}}, 2);
  const Hull near = Hull::FromIndices({Index{8, 8}, Index{12, 12}}, 2);
  const Hull far = Hull::FromIndices({Index{100, 100}, Index{104, 104}}, 2);
  EXPECT_TRUE(carver.Close(a, near));   // Boundary distance ~5.7.
  EXPECT_FALSE(carver.Close(a, far));   // Both distances huge.
}

TEST(CloseTest, CenterAloneSufficesInOrMode) {
  CarveConfig config;
  config.center_d_thresh = 200.0;
  config.boundary_d_thresh = 1.0;
  config.close_mode = CloseMode::kBoundaryOrCenter;
  Carver carver(config);
  // Far-apart boundaries but centres within the generous centre threshold:
  // the big-hull-absorbs-small-hull case the paper describes.
  const Hull a = Hull::FromIndices({Index{0, 0}, Index{40, 40}}, 2);
  const Hull b = Hull::FromIndices({Index{80, 80}, Index{90, 90}}, 2);
  EXPECT_TRUE(carver.Close(a, b));
}

TEST(CloseTest, AndModeRequiresBoth) {
  CarveConfig config;
  config.center_d_thresh = 200.0;
  config.boundary_d_thresh = 1.0;
  config.close_mode = CloseMode::kBoundaryAndCenter;
  Carver carver(config);
  const Hull a = Hull::FromIndices({Index{0, 0}, Index{40, 40}}, 2);
  const Hull b = Hull::FromIndices({Index{80, 80}, Index{90, 90}}, 2);
  EXPECT_FALSE(carver.Close(a, b));
}

// --------------------------------------------------------------- Carver --

TEST(CarverTest, SingleBlobBecomesOneHull) {
  const Shape shape{64, 64};
  const IndexSet points = FilledRect(shape, 10, 10, 40, 40);
  Carver carver(CarveConfig{});
  CarveStats stats;
  const CarvedSubset carved = carver.Carve(points, &stats);
  EXPECT_EQ(carved.num_hulls(), 1);
  EXPECT_GT(stats.initial_hulls, 1);
  EXPECT_EQ(stats.merge_operations, stats.initial_hulls - 1);
  EXPECT_EQ(stats.final_hulls, 1);
}

TEST(CarverTest, DistantBlobsStaySeparate) {
  const Shape shape{128, 128};
  IndexSet points = FilledRect(shape, 0, 0, 15, 15);
  points.Union(FilledRect(shape, 100, 100, 115, 115));
  Carver carver(CarveConfig{});
  const CarvedSubset carved = carver.Carve(points);
  EXPECT_EQ(carved.num_hulls(), 2);
}

TEST(CarverTest, SeparateBlobsDoNotLeakIntoGap) {
  const Shape shape{128, 128};
  IndexSet points = FilledRect(shape, 0, 0, 15, 15);
  points.Union(FilledRect(shape, 100, 100, 115, 115));
  Carver carver(CarveConfig{});
  const IndexSet raster = carver.Carve(points).Rasterize();
  EXPECT_EQ(raster.size(), points.size());
  EXPECT_FALSE(raster.Contains(Index{50, 50}));
}

TEST(CarverTest, SandwichedGapIsRecovered) {
  // Two rectangles separated by a thin unobserved gap: merging recovers the
  // sandwiched indices (the Fig. 6 motivation).
  const Shape shape{64, 64};
  IndexSet points = FilledRect(shape, 0, 0, 20, 9);
  points.Union(FilledRect(shape, 0, 13, 20, 22));
  Carver carver(CarveConfig{});
  const CarvedSubset carved = carver.Carve(points);
  EXPECT_EQ(carved.num_hulls(), 1);
  const IndexSet raster = carved.Rasterize();
  EXPECT_TRUE(raster.Contains(Index{10, 11}));  // Inside the gap.
}

TEST(CarverTest, EmptyInputYieldsNoHulls) {
  Carver carver(CarveConfig{});
  CarveStats stats;
  const CarvedSubset carved = carver.Carve(IndexSet(Shape{32, 32}), &stats);
  EXPECT_EQ(carved.num_hulls(), 0);
  EXPECT_EQ(stats.num_cells, 0);
  EXPECT_TRUE(carved.Rasterize().empty());
}

TEST(CarverTest, SinglePointInput) {
  IndexSet points(Shape{32, 32});
  points.Insert(Index{5, 7});
  Carver carver(CarveConfig{});
  const CarvedSubset carved = carver.Carve(points);
  EXPECT_EQ(carved.num_hulls(), 1);
  const IndexSet raster = carved.Rasterize();
  EXPECT_EQ(raster.size(), 1u);
  EXPECT_TRUE(raster.Contains(Index{5, 7}));
}

TEST(CarverTest, RasterizeIsSupersetOfInputProperty) {
  Rng rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    const Shape shape{96, 96};
    IndexSet points(shape);
    const int clusters = static_cast<int>(rng.UniformInt(1, 4));
    for (int c = 0; c < clusters; ++c) {
      const int64_t cx = rng.UniformInt(10, 85);
      const int64_t cy = rng.UniformInt(10, 85);
      for (int i = 0; i < 40; ++i) {
        points.Insert(Index{cx + rng.UniformInt(-8, 8),
                            cy + rng.UniformInt(-8, 8)});
      }
    }
    Carver carver(CarveConfig{});
    const IndexSet raster = carver.Carve(points).Rasterize();
    EXPECT_TRUE(points.IsSubsetOf(raster)) << "trial=" << trial;
  }
}

TEST(CarverTest, ParallelScanCarveIsBitIdenticalToSerial) {
  // The executor overload parallelises every merge round's CLOSE-pair
  // scan; the chosen pair — and therefore every hull, every stat, and the
  // rasterised result — must match the serial scan exactly.
  Rng rng(29);
  CampaignExecutor executor(4);
  for (int trial = 0; trial < 6; ++trial) {
    const Shape shape{128, 128};
    IndexSet points(shape);
    const int clusters = static_cast<int>(rng.UniformInt(6, 14));
    for (int c = 0; c < clusters; ++c) {
      const int64_t cx = rng.UniformInt(8, 119);
      const int64_t cy = rng.UniformInt(8, 119);
      for (int i = 0; i < 30; ++i) {
        points.Insert(Index{cx + rng.UniformInt(-6, 6),
                            cy + rng.UniformInt(-6, 6)});
      }
    }
    Carver carver(CarveConfig{});
    CarveStats serial_stats;
    CarveStats parallel_stats;
    const CarvedSubset serial = carver.Carve(points, &serial_stats);
    const CarvedSubset parallel =
        carver.Carve(points, executor, &parallel_stats);
    EXPECT_EQ(serial_stats.num_cells, parallel_stats.num_cells);
    EXPECT_EQ(serial_stats.merge_operations, parallel_stats.merge_operations)
        << "trial=" << trial;
    EXPECT_EQ(serial_stats.final_hulls, parallel_stats.final_hulls);
    ASSERT_EQ(serial.num_hulls(), parallel.num_hulls()) << "trial=" << trial;
    EXPECT_EQ(serial.Rasterize().ToSortedLinearIds(),
              parallel.Rasterize().ToSortedLinearIds())
        << "trial=" << trial;
  }
}

TEST(CarverTest, ThreeDimensionalCarving) {
  const Shape shape{32, 32, 32};
  IndexSet points(shape);
  for (int64_t x = 4; x <= 12; ++x) {
    for (int64_t y = 4; y <= 12; ++y) {
      for (int64_t z = 4; z <= 12; ++z) {
        points.Insert(Index{x, y, z});
      }
    }
  }
  Carver carver(CarveConfig{});
  const CarvedSubset carved = carver.Carve(points);
  EXPECT_EQ(carved.num_hulls(), 1);
  EXPECT_EQ(carved.Rasterize().size(), points.size());
}

TEST(CarverTest, CellSizeControlsInitialHulls) {
  const Shape shape{64, 64};
  const IndexSet points = FilledRect(shape, 0, 0, 31, 31);
  CarveConfig coarse;
  coarse.cell_size = 32;
  CarveStats coarse_stats;
  Carver(coarse).Carve(points, &coarse_stats);
  CarveConfig fine;
  fine.cell_size = 8;
  CarveStats fine_stats;
  Carver(fine).Carve(points, &fine_stats);
  EXPECT_EQ(coarse_stats.initial_hulls, 1);
  EXPECT_EQ(fine_stats.initial_hulls, 16);
}

TEST(CarverTest, ThresholdZeroDisablesMerging) {
  const Shape shape{64, 64};
  const IndexSet points = FilledRect(shape, 0, 0, 31, 31);
  CarveConfig config;
  config.cell_size = 16;
  config.center_d_thresh = 0.0;
  config.boundary_d_thresh = 0.0;
  CarveStats stats;
  const CarvedSubset carved = Carver(config).Carve(points, &stats);
  // Adjacent cell hulls have vertex distance 1 > 0: no merges.
  EXPECT_EQ(stats.merge_operations, 0);
  EXPECT_EQ(carved.num_hulls(), 4);
}

// ---------------------------------------------------------- CarvedSubset --

TEST(CarvedSubsetTest, ContainsMatchesRasterize) {
  const Shape shape{48, 48};
  IndexSet points = FilledRect(shape, 2, 2, 10, 10);
  points.Union(FilledRect(shape, 30, 30, 40, 40));
  const CarvedSubset carved = Carver(CarveConfig{}).Carve(points);
  const IndexSet raster = carved.Rasterize();
  shape.ForEachIndex([&](const Index& index) {
    EXPECT_EQ(carved.Contains(index), raster.Contains(index)) << index;
  });
}

// ---------------------------------------------------------- SimpleConvex --

TEST(SimpleConvexTest, SingleHullCoversEverything) {
  const Shape shape{128, 128};
  IndexSet points = FilledRect(shape, 0, 0, 15, 15);
  points.Union(FilledRect(shape, 100, 100, 115, 115));
  const CarvedSubset carved = SimpleConvexCarve(points);
  EXPECT_EQ(carved.num_hulls(), 1);
  const IndexSet raster = carved.Rasterize();
  // SC bridges the gap -> worse precision than Kondo's merge-based carver.
  EXPECT_TRUE(raster.Contains(Index{50, 50}));
  EXPECT_GT(raster.size(), points.size() * 2);
}

TEST(SimpleConvexTest, EmptyInput) {
  const CarvedSubset carved = SimpleConvexCarve(IndexSet(Shape{8, 8}));
  EXPECT_EQ(carved.num_hulls(), 0);
}

}  // namespace
}  // namespace kondo
