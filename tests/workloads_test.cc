#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "array/data_array.h"
#include "array/kdf_file.h"
#include "audit/auditor.h"
#include "common/rng.h"
#include "workloads/block_programs.h"
#include "workloads/cs_programs.h"
#include "workloads/demo_program.h"
#include "workloads/prl_programs.h"
#include "workloads/real_app_programs.h"
#include "workloads/registry.h"
#include "workloads/stencil.h"

namespace kondo {
namespace {

// --------------------------------------------------------------- Stencil --

TEST(StencilTest, CrossStencilShape) {
  const Stencil cross = CrossStencil2D();
  EXPECT_EQ(cross.offsets.size(), 4u);
  EXPECT_EQ(RenderStencil2D(cross), "##\n##\n");
}

TEST(StencilTest, SolidRectCount) {
  EXPECT_EQ(SolidRectStencil(3, 5).offsets.size(), 15u);
  EXPECT_EQ(SolidBoxStencil(2, 3, 4).offsets.size(), 24u);
}

TEST(StencilTest, HoledRectHasHole) {
  const Stencil holed = HoledRectStencil(6, 6, 2);
  EXPECT_EQ(holed.offsets.size(), 32u);  // 36 - 4.
  const std::string render = RenderStencil2D(holed);
  EXPECT_NE(render.find('.'), std::string::npos);
}

TEST(StencilTest, ApplyClipsToShape) {
  const Stencil cross = CrossStencil2D();
  const Shape shape{4, 4};
  int count = 0;
  cross.Apply(shape, Index{3, 3}, [&count](const Index&) { ++count; });
  EXPECT_EQ(count, 1);  // Only (3,3) itself is in bounds.
  cross.Apply(shape, Index{0, 0}, [&count](const Index&) { ++count; });
  EXPECT_EQ(count, 5);
}

// -------------------------------------------------------------- Registry --

TEST(RegistryTest, AllProgramsInstantiate) {
  for (const std::string& name : AllProgramNames()) {
    std::unique_ptr<Program> program = CreateProgram(name);
    ASSERT_NE(program, nullptr) << name;
    EXPECT_EQ(program->name(), name);
    EXPECT_GE(program->param_space().num_params(), 2);
    EXPECT_GE(program->rank(), 2);
  }
}

TEST(RegistryTest, TableTwoHasElevenPrograms) {
  EXPECT_EQ(TableTwoProgramNames().size(), 11u);
  EXPECT_EQ(MicroBenchmarkNames().size(), 4u);
}

TEST(RegistryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(CreateProgram("NOPE"), nullptr);
}

TEST(RegistryTest, SizeOverrideChangesShape) {
  std::unique_ptr<Program> program = CreateProgram("CS", 256);
  EXPECT_EQ(program->data_shape(), (Shape{256, 256}));
}

// --------------------------------------------- per-program properties --

class ProgramPropertyTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    // Smaller instances keep ground-truth enumeration cheap in tests.
    program_ = CreateProgram(GetParam(), 32);
    ASSERT_NE(program_, nullptr);
  }
  std::unique_ptr<Program> program_;
};

TEST_P(ProgramPropertyTest, AccessSetsAreWithinGroundTruth) {
  const IndexSet& truth = program_->GroundTruth();
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const ParamValue v = program_->param_space().Sample(rng);
    const IndexSet accessed = program_->AccessSet(v);
    EXPECT_TRUE(accessed.IsSubsetOf(truth))
        << GetParam() << " v[0]=" << v[0];
  }
}

TEST_P(ProgramPropertyTest, GroundTruthMatchesEnumeration) {
  const IndexSet enumerated = program_->GroundTruthByEnumeration(5e5);
  const IndexSet& truth = program_->GroundTruth();
  EXPECT_EQ(truth.size(), enumerated.size()) << GetParam();
  EXPECT_TRUE(truth.IsSubsetOf(enumerated)) << GetParam();
}

TEST_P(ProgramPropertyTest, ExecutionIsDeterministic) {
  Rng rng(2);
  const ParamValue v = program_->param_space().Sample(rng);
  const IndexSet a = program_->AccessSet(v);
  const IndexSet b = program_->AccessSet(v);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_TRUE(a.IsSubsetOf(b));
}

TEST_P(ProgramPropertyTest, SomeValuationIsUseful) {
  Rng rng(3);
  bool any_useful = false;
  for (int i = 0; i < 500 && !any_useful; ++i) {
    any_useful = !program_->AccessSet(program_->param_space().Sample(rng))
                      .empty();
  }
  EXPECT_TRUE(any_useful) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    TableTwo, ProgramPropertyTest,
    ::testing::Values("CS", "CS1", "CS2", "CS3", "CS5", "PRL", "LDC", "RDC",
                      "PRL3D", "LDC3D", "RDC3D", "FIG4", "VPIC"));

// ------------------------------------------------------------- CS family --

TEST(CsProgramTest, BaseGroundTruthIsLowerTriangle) {
  CsProgram program(CsVariant::kBase, 32);
  const IndexSet& truth = program.GroundTruth();
  // The union over all stepX <= stepY walks is exactly {x <= y + 1}.
  int64_t expected = 0;
  program.data_shape().ForEachIndex([&](const Index& index) {
    const bool in_region = index[0] <= index[1] + 1;
    EXPECT_EQ(truth.Contains(index), in_region) << index;
    expected += in_region ? 1 : 0;
  });
  EXPECT_EQ(static_cast<int64_t>(truth.size()), expected);
}

TEST(CsProgramTest, GuardRejectsStepXGreaterThanStepY) {
  CsProgram program(CsVariant::kBase, 32);
  EXPECT_TRUE(program.AccessSet({5.0, 2.0}).empty());
  EXPECT_FALSE(program.AccessSet({2.0, 5.0}).empty());
}

TEST(CsProgramTest, NegativeStepsRejected) {
  CsProgram program(CsVariant::kBase, 32);
  EXPECT_TRUE(program.AccessSet({-1.0, 5.0}).empty());
  EXPECT_TRUE(program.AccessSet({1.0, -5.0}).empty());
}

TEST(CsProgramTest, ZeroStepsReadSingleCross) {
  CsProgram program(CsVariant::kBase, 32);
  const IndexSet accessed = program.AccessSet({0.0, 0.0});
  EXPECT_EQ(accessed.size(), 4u);
  EXPECT_TRUE(accessed.Contains(Index{0, 0}));
  EXPECT_TRUE(accessed.Contains(Index{1, 1}));
}

TEST(CsProgramTest, UnitWalkFollowsDiagonal) {
  CsProgram program(CsVariant::kBase, 8);
  const IndexSet accessed = program.AccessSet({1.0, 1.0});
  EXPECT_TRUE(accessed.Contains(Index{0, 0}));
  EXPECT_TRUE(accessed.Contains(Index{6, 6}));
  EXPECT_TRUE(accessed.Contains(Index{7, 7}));  // Cross at (6,6).
  EXPECT_FALSE(accessed.Contains(Index{0, 3}));
}

TEST(CsProgramTest, Cs1HasTwoSeparatedRegions) {
  CsProgram program(CsVariant::kCs1, 64);
  const IndexSet& truth = program.GroundTruth();
  // Branch A region near x <= y; branch B region beyond the gap.
  EXPECT_TRUE(truth.Contains(Index{0, 0}));
  EXPECT_TRUE(truth.Contains(Index{32, 0}));
  // The band between the two triangles is untouched.
  EXPECT_FALSE(truth.Contains(Index{20, 2}));
}

TEST(CsProgramTest, Cs3AnalyticGroundTruthMatchesEnumeration) {
  CsProgram program(CsVariant::kCs3, 32);
  const IndexSet enumerated = program.GroundTruthByEnumeration(1e5);
  const IndexSet& analytic = program.GroundTruth();
  EXPECT_EQ(analytic.size(), enumerated.size());
  EXPECT_TRUE(analytic.IsSubsetOf(enumerated));
}

TEST(CsProgramTest, Cs3AnalyticAlsoMatchesAtOtherSizes) {
  for (int64_t n : {16, 48, 64}) {
    CsProgram program(CsVariant::kCs3, n);
    const IndexSet enumerated = program.GroundTruthByEnumeration(1e6);
    EXPECT_EQ(program.GroundTruth().size(), enumerated.size()) << n;
  }
}

TEST(CsProgramTest, VariantNames) {
  EXPECT_EQ(CsVariantName(CsVariant::kBase), "CS");
  EXPECT_EQ(CsVariantName(CsVariant::kCs5), "CS5");
}

// ------------------------------------------------------------------- PRL --

TEST(PrlProgramTest, RunReadsRingOnly) {
  Prl2DProgram program(32);
  const IndexSet accessed = program.AccessSet({8.0, 8.0});
  const int64_t c = 16;
  EXPECT_TRUE(accessed.Contains(Index{c - 8, c}));
  EXPECT_TRUE(accessed.Contains(Index{c + 8, c + 8}));
  EXPECT_FALSE(accessed.Contains(Index{c, c}));  // Interior of the ring.
  // Ring of half-extents (8,8): perimeter of a 17x17 square = 64 cells.
  EXPECT_EQ(accessed.size(), 64u);
}

TEST(PrlProgramTest, GroundTruthHasCentralHole) {
  Prl2DProgram program(32);
  const IndexSet& truth = program.GroundTruth();
  const int64_t c = 16;
  EXPECT_FALSE(truth.Contains(Index{c, c}));
  EXPECT_FALSE(truth.Contains(Index{c + 2, c - 3}));
  EXPECT_TRUE(truth.Contains(Index{c - 4, c + 1}));
}

TEST(PrlProgramTest, OutOfRangeExtentsAreUseless) {
  Prl2DProgram program(32);
  EXPECT_TRUE(program.AccessSet({2.0, 8.0}).empty());
  EXPECT_TRUE(program.AccessSet({8.0, 100.0}).empty());
}

TEST(Prl3DProgramTest, AnalyticGroundTruthMatchesEnumeration) {
  Prl3DProgram program(16);
  const IndexSet enumerated = program.GroundTruthByEnumeration(1e4);
  const IndexSet& analytic = program.GroundTruth();
  EXPECT_EQ(analytic.size(), enumerated.size());
  EXPECT_TRUE(analytic.IsSubsetOf(enumerated));
}

TEST(Prl3DProgramTest, ShellRunTouchesAllSixFaces) {
  Prl3DProgram program(32);
  const IndexSet accessed = program.AccessSet({8.0, 8.0, 8.0});
  const int64_t c = 16;
  EXPECT_TRUE(accessed.Contains(Index{c - 8, c, c}));
  EXPECT_TRUE(accessed.Contains(Index{c + 8, c, c}));
  EXPECT_TRUE(accessed.Contains(Index{c, c - 8, c}));
  EXPECT_TRUE(accessed.Contains(Index{c, c + 8, c}));
  EXPECT_TRUE(accessed.Contains(Index{c, c, c - 8}));
  EXPECT_TRUE(accessed.Contains(Index{c, c, c + 8}));
  EXPECT_FALSE(accessed.Contains(Index{c, c, c}));
  // Exact surface cell count of a 17^3 box.
  EXPECT_EQ(accessed.size(), static_cast<size_t>(17 * 17 * 17 - 15 * 15 * 15));
}

// ------------------------------------------------------------- LDC / RDC --

TEST(BlockProgramTest, TwoDisjointBlocksPerRun) {
  BlockProgram ldc(BlockCorners::kLeftDiagonal, 2, 64);
  const IndexSet accessed = ldc.AccessSet({0.0, 0.0});
  // Two 8x8 blocks.
  EXPECT_EQ(accessed.size(), 128u);
  EXPECT_TRUE(accessed.Contains(Index{0, 0}));
  EXPECT_TRUE(accessed.Contains(Index{63, 63}));
  EXPECT_FALSE(accessed.Contains(Index{32, 32}));
}

TEST(BlockProgramTest, RdcMirrorsAcrossX) {
  BlockProgram rdc(BlockCorners::kRightDiagonal, 2, 64);
  const IndexSet accessed = rdc.AccessSet({0.0, 0.0});
  EXPECT_TRUE(accessed.Contains(Index{63, 0}));
  EXPECT_TRUE(accessed.Contains(Index{0, 63}));
  EXPECT_FALSE(accessed.Contains(Index{0, 0}));
}

TEST(BlockProgramTest, GroundTruthIsTwoSquares) {
  BlockProgram ldc(BlockCorners::kLeftDiagonal, 2, 64);
  const IndexSet& truth = ldc.GroundTruth();
  // Anchors [0,16] + block 8 -> regions [0,23]^2 and [40,63]^2.
  EXPECT_EQ(truth.size(), static_cast<size_t>(2 * 24 * 24));
  EXPECT_TRUE(truth.Contains(Index{23, 23}));
  EXPECT_TRUE(truth.Contains(Index{40, 40}));
  EXPECT_FALSE(truth.Contains(Index{30, 30}));
}

TEST(BlockProgramTest, ThreeDimensionalBlocks) {
  BlockProgram ldc3(BlockCorners::kLeftDiagonal, 3, 32);
  const IndexSet accessed = ldc3.AccessSet({1.0, 2.0, 3.0});
  EXPECT_EQ(accessed.size(), static_cast<size_t>(2 * 4 * 4 * 4));
  EXPECT_TRUE(accessed.Contains(Index{1, 2, 3}));
}

TEST(BlockProgramTest, OutOfRangeAnchorsAreUseless) {
  BlockProgram ldc(BlockCorners::kLeftDiagonal, 2, 64);
  EXPECT_TRUE(ldc.AccessSet({17.0, 0.0}).empty());
  EXPECT_TRUE(ldc.AccessSet({0.0, -1.0}).empty());
}

// ------------------------------------------------------------- ARD / MSI --

TEST(ArdProgramTest, RunReadsOneTemporalPlane) {
  ArdProgram program;
  const IndexSet accessed = program.AccessSet({10.0, 20.0, 100.0});
  EXPECT_EQ(accessed.size(), 200u);
  EXPECT_TRUE(accessed.Contains(Index{0, 0, 100}));
  EXPECT_TRUE(accessed.Contains(Index{9, 19, 100}));
  EXPECT_FALSE(accessed.Contains(Index{0, 0, 101}));
}

TEST(ArdProgramTest, GroundTruthFractionMatchesPaper) {
  // The paper reports 97.20% debloat for ARD (Table III).
  ArdProgram program;
  const double fraction =
      static_cast<double>(program.GroundTruth().size()) /
      static_cast<double>(program.data_shape().NumElements());
  EXPECT_NEAR(1.0 - fraction, 0.972, 0.002);
}

TEST(ArdProgramTest, AccessSubsetOfGroundTruth) {
  ArdProgram program;
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(program.AccessSet(program.param_space().Sample(rng))
                    .IsSubsetOf(program.GroundTruth()));
  }
}

TEST(MsiProgramTest, RunReadsSpectralPrefix) {
  MsiProgram program;
  const int64_t z_lo = program.z_lo();
  const IndexSet accessed =
      program.AccessSet({5.0, 6.0, static_cast<double>(z_lo + 3)});
  EXPECT_EQ(accessed.size(), 4u);
  EXPECT_TRUE(accessed.Contains(Index{5, 6, z_lo}));
  EXPECT_TRUE(accessed.Contains(Index{5, 6, z_lo + 3}));
  EXPECT_FALSE(accessed.Contains(Index{5, 6, z_lo + 4}));
}

TEST(MsiProgramTest, GroundTruthFractionMatchesPaper) {
  // The paper reports 96.24% debloat for MSI (Table III).
  MsiProgram program;
  const double fraction =
      static_cast<double>(program.GroundTruth().size()) /
      static_cast<double>(program.data_shape().NumElements());
  EXPECT_NEAR(1.0 - fraction, 0.9624, 0.004);
}

// ------------------------------------------------------------------ FIG4 --

TEST(DemoProgramTest, RegionsAreDisjoint) {
  DemoMultiRegionProgram program;
  EXPECT_TRUE(program.IsUseful(10, 60));    // Band.
  EXPECT_TRUE(program.IsUseful(104, 24));   // Disk island.
  EXPECT_TRUE(program.IsUseful(96, 64));    // Square island.
  EXPECT_FALSE(program.IsUseful(60, 10));   // Below the band, no island.
  EXPECT_FALSE(program.IsUseful(127, 127));
}

TEST(DemoProgramTest, AccessMirrorsParameterSpace) {
  DemoMultiRegionProgram program;
  const IndexSet accessed = program.AccessSet({10.0, 60.0});
  EXPECT_TRUE(accessed.Contains(Index{10, 60}));
  EXPECT_TRUE(program.AccessSet({60.0, 10.0}).empty());
}

// ----------------------------------------------------- audited execution --

TEST(ProgramAuditTest, ExecuteOnFileMatchesAccessSet) {
  std::unique_ptr<Program> program = CreateProgram("CS", 32);
  DataArray array(program->data_shape(), DType::kFloat64);
  array.FillPattern(9);
  const std::string path = ::testing::TempDir() + "/cs32.kdf";
  ASSERT_TRUE(WriteKdfFile(path, array).ok());

  const ParamValue v{2.0, 3.0};
  StatusOr<AuditReport> report =
      RunAudited(path, /*pid=*/1, [&](TracedFile& file) {
        return program->ExecuteOnFile(v, file);
      });
  ASSERT_TRUE(report.ok());
  const IndexSet expected = program->AccessSet(v);
  EXPECT_EQ(report->accessed_indices.size(), expected.size());
  EXPECT_TRUE(expected.IsSubsetOf(report->accessed_indices));
}

TEST(ProgramAuditTest, ChunkedLayoutRecoversSameIndices) {
  std::unique_ptr<Program> program = CreateProgram("LDC", 32);
  DataArray array(program->data_shape(), DType::kFloat64);
  const std::string path = ::testing::TempDir() + "/ldc32.kdf";
  ASSERT_TRUE(
      WriteKdfFile(path, array, LayoutKind::kChunked, {8, 8}).ok());
  const ParamValue v{1.0, 2.0};
  StatusOr<AuditReport> report =
      RunAudited(path, 1, [&](TracedFile& file) {
        return program->ExecuteOnFile(v, file);
      });
  ASSERT_TRUE(report.ok());
  const IndexSet expected = program->AccessSet(v);
  EXPECT_EQ(report->accessed_indices.size(), expected.size());
  EXPECT_TRUE(expected.IsSubsetOf(report->accessed_indices));
}

TEST(ProgramAuditTest, ShapeMismatchIsRejected) {
  std::unique_ptr<Program> program = CreateProgram("CS", 32);
  DataArray array(Shape{16, 16}, DType::kFloat64);
  const std::string path = ::testing::TempDir() + "/mismatch.kdf";
  ASSERT_TRUE(WriteKdfFile(path, array).ok());
  StatusOr<AuditReport> report =
      RunAudited(path, 1, [&](TracedFile& file) {
        return program->ExecuteOnFile({1.0, 2.0}, file);
      });
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace kondo
