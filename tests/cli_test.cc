// Integration tests for the `kondo` command-line tool: each test shells out
// to the built binary (path injected by CMake via KONDO_CLI_BINARY).

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace kondo {
namespace {

#ifndef KONDO_CLI_BINARY
#error "KONDO_CLI_BINARY must be defined by the build"
#endif

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult RunCli(const std::string& args) {
  const std::string command =
      std::string(KONDO_CLI_BINARY) + " " + args + " 2>&1";
  std::FILE* pipe = popen(command.c_str(), "r");
  CommandResult result;
  if (pipe == nullptr) {
    return result;
  }
  std::array<char, 512> buffer;
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadAllBytes(const std::string& path) {
  std::string bytes;
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    return bytes;
  }
  std::array<char, 4096> buffer;
  size_t n = 0;
  while ((n = std::fread(buffer.data(), 1, buffer.size(), in)) > 0) {
    bytes.append(buffer.data(), n);
  }
  std::fclose(in);
  return bytes;
}

TEST(CliTest, NoArgsPrintsUsage) {
  const CommandResult result = RunCli("");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST(CliTest, UnknownCommandPrintsUsage) {
  EXPECT_EQ(RunCli("frobnicate").exit_code, 2);
}

TEST(CliTest, ProgramsListsRegistry) {
  const CommandResult result = RunCli("programs");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("CS"), std::string::npos);
  EXPECT_NE(result.output.find("MSI"), std::string::npos);
  EXPECT_NE(result.output.find("128x128"), std::string::npos);
}

TEST(CliTest, MakeDataInspectRoundTrip) {
  const std::string kdf = TempPath("cli_ldc.kdf");
  ASSERT_EQ(RunCli("make-data LDC " + kdf).exit_code, 0);
  const CommandResult inspect = RunCli("inspect " + kdf);
  EXPECT_EQ(inspect.exit_code, 0);
  EXPECT_NE(inspect.output.find("128x128"), std::string::npos);
  EXPECT_NE(inspect.output.find("row-major"), std::string::npos);
}

TEST(CliTest, MakeDataChunked) {
  const std::string kdf = TempPath("cli_chunked.kdf");
  ASSERT_EQ(RunCli("make-data LDC " + kdf + " --chunked").exit_code, 0);
  const CommandResult inspect = RunCli("inspect " + kdf);
  EXPECT_NE(inspect.output.find("chunked"), std::string::npos);
}

TEST(CliTest, DebloatAndReplayFlow) {
  const std::string kdf = TempPath("cli_flow.kdf");
  const std::string kdd = TempPath("cli_flow.kdd");
  ASSERT_EQ(RunCli("make-data LDC " + kdf).exit_code, 0);
  const CommandResult debloat = RunCli("debloat LDC --data " + kdf +
                                       " --out " + kdd + " --seed 3");
  EXPECT_EQ(debloat.exit_code, 0) << debloat.output;
  EXPECT_NE(debloat.output.find("smaller"), std::string::npos);

  const CommandResult inspect = RunCli("inspect " + kdd);
  EXPECT_EQ(inspect.exit_code, 0);
  EXPECT_NE(inspect.output.find("debloated"), std::string::npos);

  const CommandResult replay = RunCli("replay LDC " + kdd + " 3 4");
  EXPECT_EQ(replay.exit_code, 0) << replay.output;
  EXPECT_NE(replay.output.find("0 misses"), std::string::npos);
}

TEST(CliTest, ReplayWithRemoteFallback) {
  const std::string kdf = TempPath("cli_remote.kdf");
  const std::string kdd = TempPath("cli_remote.kdd");
  ASSERT_EQ(RunCli("make-data CS " + kdf).exit_code, 0);
  // A deliberately weak campaign leaves holes for the remote to fill.
  ASSERT_EQ(RunCli("debloat CS --data " + kdf + " --out " + kdd +
                   " --max-iter 100")
                .exit_code,
            0);
  const CommandResult replay =
      RunCli("replay CS " + kdd + " 1 2 --remote " + kdf);
  EXPECT_EQ(replay.exit_code, 0) << replay.output;
  EXPECT_NE(replay.output.find("remote fetches"), std::string::npos);
}

TEST(CliTest, EvaluatePrintsReport) {
  const CommandResult result = RunCli("evaluate LDC --seed 2");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("precision"), std::string::npos);
  EXPECT_NE(result.output.find("bloat identified"), std::string::npos);
}

TEST(CliTest, EvaluateMapRendersGrid) {
  const CommandResult result = RunCli("evaluate LDC --seed 2 --map");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("legend"), std::string::npos);
  EXPECT_NE(result.output.find('#'), std::string::npos);
}

TEST(CliTest, SpecParsesKondofile) {
  const std::string spec_path = TempPath("cli_spec.kondofile");
  std::FILE* f = std::fopen(spec_path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("FROM ubuntu:20.04\nADD ./d.kdf /d.kdf\nPARAM [0-9]\n"
             "ENTRYPOINT [\"/x\"]\n",
             f);
  std::fclose(f);
  const CommandResult result = RunCli("spec " + spec_path);
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("ubuntu:20.04"), std::string::npos);
  EXPECT_NE(result.output.find("[0-9]"), std::string::npos);
}

TEST(CliTest, FuzzCarveStagedPipeline) {
  const std::string state = TempPath("cli_campaign.kcs");
  const CommandResult fuzz =
      RunCli("fuzz CS --out " + state + " --seed 4 --max-iter 400");
  EXPECT_EQ(fuzz.exit_code, 0) << fuzz.output;
  EXPECT_NE(fuzz.output.find("discovered offsets"), std::string::npos);

  // Resume with a second seed: the state must grow (or stay equal).
  const CommandResult resumed = RunCli("fuzz CS --out " + state +
                                       " --resume " + state +
                                       " --seed 5 --max-iter 400");
  EXPECT_EQ(resumed.exit_code, 0) << resumed.output;

  const CommandResult carve = RunCli("carve CS --state " + state);
  EXPECT_EQ(carve.exit_code, 0) << carve.output;
  EXPECT_NE(carve.output.find("precision"), std::string::npos);
}

TEST(CliTest, CarveShapeMismatchFails) {
  const std::string state = TempPath("cli_mismatch.kcs");
  ASSERT_EQ(RunCli("fuzz CS --out " + state + " --max-iter 100").exit_code,
            0);
  const CommandResult carve = RunCli("carve LDC3D --state " + state);
  EXPECT_EQ(carve.exit_code, 1);
  EXPECT_NE(carve.output.find("does not match"), std::string::npos);
}

TEST(CliTest, UnknownProgramFails) {
  EXPECT_EQ(RunCli("evaluate NOPE").exit_code, 1);
}

TEST(CliTest, ReplayWrongArityFails) {
  const std::string kdf = TempPath("cli_arity.kdf");
  const std::string kdd = TempPath("cli_arity.kdd");
  ASSERT_EQ(RunCli("make-data LDC " + kdf).exit_code, 0);
  ASSERT_EQ(
      RunCli("debloat LDC --data " + kdf + " --out " + kdd).exit_code, 0);
  const CommandResult result = RunCli("replay LDC " + kdd + " 1 2 3");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("expected 2 parameters"), std::string::npos);
}

// ------------------------------------------------------------ provenance --

/// Writes a minimal KEL1 store by hand (the test binary links only gtest,
/// so it re-states the 40-byte record layout of docs/FORMATS.md).
void WriteKel1Fixture(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("KEL1\0\0\0\0", 1, 8, f);
  const struct {
    int64_t pid, file_id;
    unsigned char type;
    int64_t offset, size;
  } records[] = {
      {1, 1, 2, 0, 100},    // pread [0,100)
      {2, 1, 2, 250, 100},  // pread [250,350)
      {1, 1, 2, 40, 20},    // pread [40,60)
  };
  for (const auto& r : records) {
    char buf[40] = {};
    std::memcpy(buf, &r.pid, 8);
    std::memcpy(buf + 8, &r.file_id, 8);
    buf[16] = static_cast<char>(r.type);
    std::memcpy(buf + 24, &r.offset, 8);
    std::memcpy(buf + 32, &r.size, 8);
    std::fwrite(buf, 1, sizeof(buf), f);
  }
  std::fclose(f);
}

TEST(CliTest, GlobalUsageListsProvenance) {
  const CommandResult result = RunCli("");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("provenance compact"), std::string::npos);
  EXPECT_NE(result.output.find("provenance query"), std::string::npos);
  EXPECT_NE(result.output.find("provenance stats"), std::string::npos);
}

TEST(CliTest, ArgumentErrorPrintsPerCommandUsage) {
  // A recognised command with bad arguments prints only its own synopsis,
  // not the global usage wall.
  const CommandResult result = RunCli("debloat");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("kondo debloat"), std::string::npos);
  EXPECT_EQ(result.output.find("kondo fuzz"), std::string::npos);
  EXPECT_EQ(result.output.find("kondo provenance"), std::string::npos);

  const CommandResult prov = RunCli("provenance");
  EXPECT_EQ(prov.exit_code, 2);
  EXPECT_NE(prov.output.find("provenance compact"), std::string::npos);
  EXPECT_EQ(prov.output.find("kondo debloat"), std::string::npos);
}

TEST(CliTest, ProvenanceCompactQueryStatsFlow) {
  const std::string kel1 = TempPath("cli_prov.kel");
  const std::string kel2 = TempPath("cli_prov.kel2");
  WriteKel1Fixture(kel1);

  const CommandResult compact =
      RunCli("provenance compact " + kel1 + " " + kel2 + " --block 2");
  EXPECT_EQ(compact.exit_code, 0) << compact.output;
  EXPECT_NE(compact.output.find("3 events"), std::string::npos);

  // Querying either generation of store finds the same events; the KEL2
  // answer reports block decode/skip counts.
  const CommandResult q1 = RunCli("provenance query " + kel1 +
                                  " --range 30:50");
  EXPECT_EQ(q1.exit_code, 0) << q1.output;
  EXPECT_NE(q1.output.find("full scan"), std::string::npos);
  EXPECT_NE(q1.output.find("2 events"), std::string::npos);

  const CommandResult q2 = RunCli("provenance query " + kel2 +
                                  " --range 30:50");
  EXPECT_EQ(q2.exit_code, 0) << q2.output;
  EXPECT_NE(q2.output.find("2 events"), std::string::npos);
  EXPECT_NE(q2.output.find("blocks"), std::string::npos);

  const CommandResult runs = RunCli("provenance query " + kel2 +
                                    " --range 240:260 --runs");
  EXPECT_EQ(runs.exit_code, 0) << runs.output;
  EXPECT_NE(runs.output.find("2\n"), std::string::npos);
  EXPECT_NE(runs.output.find("1 runs"), std::string::npos);

  const CommandResult stats = RunCli("provenance stats " + kel2);
  EXPECT_EQ(stats.exit_code, 0) << stats.output;
  EXPECT_NE(stats.output.find("KEL2 store: 3 events"), std::string::npos);
  EXPECT_NE(stats.output.find("run 1: 100 distinct bytes"),
            std::string::npos);

  const CommandResult stats1 = RunCli("provenance stats " + kel1);
  EXPECT_EQ(stats1.exit_code, 0) << stats1.output;
  EXPECT_NE(stats1.output.find("KEL1 store: 3 events"), std::string::npos);
}

TEST(CliTest, GlobalUsageListsServeClientBlast) {
  const CommandResult result = RunCli("");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("serve"), std::string::npos);
  EXPECT_NE(result.output.find("blast"), std::string::npos);
  EXPECT_NE(result.output.find("client fetch"), std::string::npos);
}

TEST(CliTest, ServeRejectsGarbageIntFlags) {
  // Strict positive-integer parsing: garbage, negatives, zero, and
  // trailing junk all exit 2 with the command's own usage, before any
  // socket is bound.
  for (const std::string args :
       {"serve --port banana", "serve --port -1", "serve --port 0x50",
        "serve --socket /tmp/kondo_cli_none.sock --cache-mb many",
        "serve --socket /tmp/kondo_cli_none.sock --max-inflight 0"}) {
    const CommandResult result = RunCli(args);
    EXPECT_EQ(result.exit_code, 2) << args << "\n" << result.output;
    EXPECT_NE(result.output.find("kondo serve"), std::string::npos) << args;
    EXPECT_EQ(result.output.find("kondo blast"), std::string::npos) << args;
  }
  // Out-of-range ports are positive integers but still not listenable.
  const CommandResult high = RunCli("serve --port 65536");
  EXPECT_EQ(high.exit_code, 2) << high.output;
}

TEST(CliTest, BlastRejectsGarbageIntFlags) {
  for (const std::string args :
       {"blast --socket /tmp/kondo_cli_none.sock --artifact a.kdd"
        " --clients 1.5",
        "blast --socket /tmp/kondo_cli_none.sock --artifact a.kdd"
        " --requests zero",
        "blast --socket /tmp/kondo_cli_none.sock --artifact a.kdd"
        " --clients -4"}) {
    const CommandResult result = RunCli(args);
    EXPECT_EQ(result.exit_code, 2) << args << "\n" << result.output;
    EXPECT_NE(result.output.find("invalid"), std::string::npos) << args;
    EXPECT_NE(result.output.find("kondo blast"), std::string::npos) << args;
  }
}

TEST(CliTest, ServeRequiresExactlyOneListenAddress) {
  EXPECT_EQ(RunCli("serve").exit_code, 2);
  EXPECT_EQ(
      RunCli("serve --socket /tmp/kondo_cli_none.sock --port 7777").exit_code,
      2);
}

TEST(CliTest, PackUnpackRepackFlow) {
  const std::string kdf = TempPath("cli_pack.kdf");
  const std::string kdd = TempPath("cli_pack.kdd");
  ASSERT_EQ(RunCli("make-data LDC " + kdf).exit_code, 0);
  const CommandResult debloat =
      RunCli("debloat LDC --data " + kdf + " --out " + kdd);
  ASSERT_EQ(debloat.exit_code, 0) << debloat.output;
  // Debloat emits the packaged companion alongside the .kdd.
  EXPECT_NE(debloat.output.find("packed"), std::string::npos)
      << debloat.output;
  const std::string companion = TempPath("cli_pack.kdp");

  // An explicit pack of the same .kdd is byte-identical to the companion.
  const std::string kdp = TempPath("cli_pack_explicit.kdp");
  const CommandResult pack = RunCli("pack " + kdd + " " + kdp);
  ASSERT_EQ(pack.exit_code, 0) << pack.output;
  EXPECT_NE(pack.output.find("packed"), std::string::npos);
  EXPECT_EQ(ReadAllBytes(companion), ReadAllBytes(kdp));

  const CommandResult stats = RunCli("pack-stats " + kdp);
  ASSERT_EQ(stats.exit_code, 0) << stats.output;
  EXPECT_NE(stats.output.find("chunks"), std::string::npos) << stats.output;
  EXPECT_NE(stats.output.find("fingerprint"), std::string::npos)
      << stats.output;

  // Unpack reproduces the original .kdd byte for byte.
  const std::string back = TempPath("cli_pack_back.kdd");
  const CommandResult unpack = RunCli("unpack " + kdp + " " + back);
  ASSERT_EQ(unpack.exit_code, 0) << unpack.output;
  EXPECT_EQ(ReadAllBytes(kdd), ReadAllBytes(back));

  // Repack against unchanged data reuses every chunk and changes nothing.
  const CommandResult repack = RunCli("repack " + kdp + " --data " + kdd);
  ASSERT_EQ(repack.exit_code, 0) << repack.output;
  EXPECT_NE(repack.output.find("reused"), std::string::npos)
      << repack.output;
  EXPECT_EQ(ReadAllBytes(companion), ReadAllBytes(kdp));
}

TEST(CliTest, PackRejectsGarbageIntFlags) {
  const std::string kdd = TempPath("cli_pack_flags.kdd");
  for (const std::string args : std::vector<std::string>{
           "pack " + kdd + " out.kdp --chunk banana",
           "pack " + kdd + " out.kdp --chunk -2",
           "pack " + kdd + " out.kdp --jobs 1.5",
           "unpack in.kdp out.kdd --jobs zero",
           "repack in.kdp --data " + kdd + " --jobs 0"}) {
    const CommandResult result = RunCli(args);
    EXPECT_EQ(result.exit_code, 2) << args << "\n" << result.output;
    EXPECT_NE(result.output.find("invalid"), std::string::npos) << args;
  }
}

TEST(CliTest, UnpackSurfacesCorruptionNamingTheChunk) {
  const std::string kdf = TempPath("cli_corrupt.kdf");
  const std::string kdd = TempPath("cli_corrupt.kdd");
  const std::string kdp = TempPath("cli_corrupt.kdp");
  ASSERT_EQ(RunCli("make-data LDC " + kdf).exit_code, 0);
  ASSERT_EQ(RunCli("debloat LDC --data " + kdf + " --out " + kdd).exit_code,
            0);
  ASSERT_EQ(RunCli("pack " + kdd + " " + kdp).exit_code, 0);

  // Flip one payload byte (past the rank-2 header) and unpack: the failure
  // must name the damaged chunk.
  std::string bytes = ReadAllBytes(kdp);
  ASSERT_GT(bytes.size(), 60u);
  bytes[45] = static_cast<char>(bytes[45] ^ 0x5a);
  {
    std::FILE* out = std::fopen(kdp.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), out);
    std::fclose(out);
  }
  const CommandResult unpack =
      RunCli("unpack " + kdp + " " + TempPath("cli_corrupt_back.kdd"));
  EXPECT_EQ(unpack.exit_code, 1) << unpack.output;
  EXPECT_NE(unpack.output.find("KDP chunk"), std::string::npos)
      << unpack.output;
}

TEST(CliTest, ProvenanceQueryRejectsBadRange) {
  const std::string kel1 = TempPath("cli_prov_bad.kel");
  WriteKel1Fixture(kel1);
  const CommandResult result =
      RunCli("provenance query " + kel1 + " --range 50:30");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("invalid --range"), std::string::npos);
}

}  // namespace
}  // namespace kondo
