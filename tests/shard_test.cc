// Tests for the sharded campaign scheduler (src/shard/): planner partition
// invariants, manifest/state round-trips, bit-identity of the merged result
// against the unsharded pipeline at every (shards, jobs) setting, byte
// identity of the merged lineage store across shard counts, and resume via
// the campaign manifest.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/multi_kondo.h"
#include "fuzz/fuzz_schedule.h"
#include "shard/merge_stage.h"
#include "shard/plan_weights.h"
#include "shard/shard_campaign.h"
#include "shard/shard_manifest.h"
#include "shard/shard_plan.h"
#include "shard/shard_scheduler.h"
#include "workloads/registry.h"

namespace kondo {
namespace {

/// Jobs settings the equality tests sweep. CI adds an extra leg through
/// KONDO_TEST_JOBS so the jobs=1 and jobs=4 matrix entries both exercise
/// the invariance claims.
std::vector<int> TestJobs() {
  std::vector<int> jobs = {1, 4};
  if (const char* env = std::getenv("KONDO_TEST_JOBS")) {
    const int extra = std::atoi(env);
    if (extra > 0 &&
        std::find(jobs.begin(), jobs.end(), extra) == jobs.end()) {
      jobs.push_back(extra);
    }
  }
  return jobs;
}

void ExpectIndexSetsEqual(const IndexSet& a, const IndexSet& b,
                          const std::string& what) {
  EXPECT_EQ(a.ToSortedLinearIds(), b.ToSortedLinearIds()) << what;
}

void ExpectStatsEqual(const FuzzStats& a, const FuzzStats& b,
                      const std::string& what) {
  EXPECT_EQ(a.iterations, b.iterations) << what;
  EXPECT_EQ(a.evaluations, b.evaluations) << what;
  EXPECT_EQ(a.useful_evaluations, b.useful_evaluations) << what;
  EXPECT_EQ(a.restarts, b.restarts) << what;
  EXPECT_EQ(a.final_epsilon, b.final_epsilon) << what;
  EXPECT_EQ(a.stopped_by_stagnation, b.stopped_by_stagnation) << what;
  EXPECT_EQ(a.stopped_by_budget, b.stopped_by_budget) << what;
  EXPECT_EQ(a.stopped_by_eval_budget, b.stopped_by_eval_budget) << what;
}

void ExpectResultsEqual(const MultiKondoResult& a, const MultiKondoResult& b,
                        const std::string& what) {
  ExpectStatsEqual(a.fuzz_stats, b.fuzz_stats, what);
  ASSERT_EQ(a.per_file_discovered.size(), b.per_file_discovered.size());
  for (size_t f = 0; f < a.per_file_discovered.size(); ++f) {
    const std::string file_what = what + ", file " + std::to_string(f);
    ExpectIndexSetsEqual(a.per_file_discovered[f], b.per_file_discovered[f],
                         file_what + " discovered");
    ExpectIndexSetsEqual(a.per_file_approx[f], b.per_file_approx[f],
                         file_what + " approx");
    EXPECT_EQ(a.per_file_carve_stats[f].num_cells,
              b.per_file_carve_stats[f].num_cells) << file_what;
    EXPECT_EQ(a.per_file_carve_stats[f].merge_operations,
              b.per_file_carve_stats[f].merge_operations) << file_what;
    EXPECT_EQ(a.per_file_carve_stats[f].final_hulls,
              b.per_file_carve_stats[f].final_hulls) << file_what;
  }
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A per-test campaign directory, wiped up front: campaign directories are
/// resumable by design, so a leftover from a previous test-binary run
/// would otherwise satisfy (or corrupt) this run's campaign.
std::string TempDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/shard_test_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// A short campaign config: the eval budget bounds runtime and (being
// checked at serial consumption time) keeps every sweep bit-comparable.
KondoConfig ShortCampaignConfig(uint64_t seed) {
  KondoConfig config;
  config.rng_seed = seed;
  config.fuzz.max_evals = 400;
  return config;
}

// ------------------------------------------------------------- planner --

TEST(ShardPlanTest, OneShardPerFileIsTheDefaultPartition) {
  const std::vector<Shape> shapes = {Shape{8, 8}, Shape{4, 4, 4},
                                     Shape{16}, Shape{2, 2}};
  const StatusOr<ShardPlan> plan = PlanShards(shapes, 4);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->num_shards(), 4);
  for (int s = 0; s < 4; ++s) {
    const Shard& shard = plan->shards[static_cast<size_t>(s)];
    ASSERT_EQ(shard.slices.size(), 1u);
    EXPECT_EQ(shard.slices[0],
              (ShardSlice{s, 0, shapes[static_cast<size_t>(s)].NumElements()}));
  }
  EXPECT_TRUE(ValidateShardPlan(*plan).ok());
}

TEST(ShardPlanTest, FewerShardsGroupWholeFiles) {
  const std::vector<Shape> shapes = {Shape{8, 8}, Shape{4, 4, 4},
                                     Shape{16}, Shape{2, 2}};
  const StatusOr<ShardPlan> plan = PlanShards(shapes, 2);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->num_shards(), 2);
  EXPECT_TRUE(ValidateShardPlan(*plan).ok());
  // Every slice spans its whole file (grouping never splits a file).
  for (const Shard& shard : plan->shards) {
    for (const ShardSlice& slice : shard.slices) {
      EXPECT_EQ(slice.begin, 0);
      EXPECT_EQ(slice.end,
                shapes[static_cast<size_t>(slice.file)].NumElements());
    }
  }
}

TEST(ShardPlanTest, ExtraShardsSplitTheLargestFile) {
  const std::vector<Shape> shapes = {Shape{64, 64}, Shape{8}};
  const StatusOr<ShardPlan> plan = PlanShards(shapes, 4);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->num_shards(), 4);
  EXPECT_TRUE(ValidateShardPlan(*plan).ok());
  // The 4096-element file takes the three extra splits; the 8-element file
  // stays whole.
  int file0_slices = 0;
  for (const Shard& shard : plan->shards) {
    for (const ShardSlice& slice : shard.slices) {
      if (slice.file == 0) {
        ++file0_slices;
      } else {
        EXPECT_EQ(slice.NumElements(), 8);
      }
    }
  }
  EXPECT_EQ(file0_slices, 3);
}

TEST(ShardPlanTest, TinyFilesYieldFewerShardsThanRequested) {
  const StatusOr<ShardPlan> plan = PlanShards({Shape{3}}, 10);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->num_shards(), 3);  // Never more slices than elements.
  EXPECT_TRUE(ValidateShardPlan(*plan).ok());
}

TEST(ShardPlanTest, DeterministicAndValidatedAcrossCounts) {
  const std::vector<Shape> shapes = {Shape{32, 32}, Shape{16, 16, 8},
                                     Shape{64}};
  for (int shards : {1, 2, 3, 5, 9}) {
    const StatusOr<ShardPlan> a = PlanShards(shapes, shards);
    const StatusOr<ShardPlan> b = PlanShards(shapes, shards);
    ASSERT_TRUE(a.ok()) << a.status();
    EXPECT_TRUE(ValidateShardPlan(*a).ok()) << shards << " shards";
    ASSERT_EQ(a->num_shards(), b->num_shards());
    for (int s = 0; s < a->num_shards(); ++s) {
      EXPECT_EQ(a->shards[static_cast<size_t>(s)].slices,
                b->shards[static_cast<size_t>(s)].slices);
    }
  }
}

TEST(ShardPlanTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(PlanShards({Shape{4, 4}}, 0).ok());
  EXPECT_FALSE(PlanShards({}, 2).ok());
}

// ------------------------------------------------- manifest and state --

TEST(ShardPlanTest, UniformWeightsReproduceTheUnweightedPlan) {
  const std::vector<Shape> shapes = {Shape{64, 64}, Shape{8, 8}};
  const StatusOr<ShardPlan> unweighted = PlanShards(shapes, 5);
  ASSERT_TRUE(unweighted.ok()) << unweighted.status();

  PlanWeights weights;
  weights.per_file.push_back(std::vector<double>(64 * 64, 2.5));
  weights.per_file.push_back(std::vector<double>(8 * 8, 2.5));
  const StatusOr<ShardPlan> weighted = PlanShards(shapes, 5, weights);
  ASSERT_TRUE(weighted.ok()) << weighted.status();
  ASSERT_EQ(weighted->num_shards(), unweighted->num_shards());
  for (int s = 0; s < unweighted->num_shards(); ++s) {
    EXPECT_EQ(weighted->shards[s].slices, unweighted->shards[s].slices)
        << "shard " << s;
  }
}

TEST(ShardPlanTest, SkewedWeightsShrinkTheHotRegionsShards) {
  // The first eighth of the file concentrates the observed accesses; the
  // weighted split must give the hot prefix proportionally fewer elements
  // per shard than the uniform element-count split would.
  const std::vector<Shape> shapes = {Shape{1024}};
  PlanWeights weights;
  std::vector<double> w(1024, kColdElementWeight);
  for (int i = 0; i < 128; ++i) {
    w[static_cast<size_t>(i)] = kHotElementWeight;
  }
  weights.per_file.push_back(std::move(w));

  const StatusOr<ShardPlan> plan = PlanShards(shapes, 4, weights);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_TRUE(ValidateShardPlan(*plan).ok());
  ASSERT_EQ(plan->num_shards(), 4);
  // Shard 0 owns the hot prefix: far fewer elements than the 256 an
  // unweighted split would give it.
  EXPECT_LT(plan->shards[0].NumElements(), 256);
  // Every element is still covered exactly once (ValidateShardPlan), and
  // the shard count is unchanged — only boundaries moved.
  int64_t total = 0;
  for (const Shard& shard : plan->shards) {
    total += shard.NumElements();
  }
  EXPECT_EQ(total, 1024);
}

TEST(ShardPlanTest, MalformedWeightsAreRejected) {
  const std::vector<Shape> shapes = {Shape{16}};
  // Non-uniform but covering only half the file (exactly uniform weights
  // would legitimately defer to the unweighted planner before validation).
  PlanWeights short_weights;
  short_weights.per_file.push_back(std::vector<double>(8, 1.0));
  short_weights.per_file[0][0] = 2.0;
  EXPECT_FALSE(PlanShards(shapes, 2, short_weights).ok());

  PlanWeights negative;
  negative.per_file.push_back(std::vector<double>(16, 1.0));
  negative.per_file[0][3] = -1.0;
  EXPECT_FALSE(PlanShards(shapes, 2, negative).ok());
}

TEST(PlanWeightsTest, WeightsFromIndexSetsMarkAccessedElementsHot) {
  std::vector<IndexSet> per_file;
  per_file.emplace_back(Shape{4, 4});
  per_file[0].InsertLinear(0);
  per_file[0].InsertLinear(5);
  const PlanWeights weights = WeightsFromIndexSets(per_file);
  ASSERT_EQ(weights.per_file.size(), 1u);
  EXPECT_EQ(weights.per_file[0][0], kHotElementWeight);
  EXPECT_EQ(weights.per_file[0][5], kHotElementWeight);
  EXPECT_EQ(weights.per_file[0][1], kColdElementWeight);
  EXPECT_FALSE(weights.IsUniform());
}

TEST(ShardManifestTest, DispatchCountsRoundTripThroughWLines) {
  const std::vector<Shape> shapes = {Shape{8, 8}, Shape{4, 4, 4}};
  const StatusOr<ShardPlan> plan = PlanShards(shapes, 3);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ShardManifest manifest = MakeShardManifest(*plan, 42);
  manifest.dispatch_counts[0] = 2;
  manifest.dispatch_counts[2] = 5;

  const std::string dir = TempDir("manifest_w");
  ASSERT_TRUE(EnsureCampaignDirectory(dir).ok());
  const std::string path = dir + "/" + kShardManifestFileName;
  ASSERT_TRUE(SaveShardManifest(path, manifest).ok());
  const StatusOr<ShardManifest> loaded = LoadShardManifest(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->dispatch_counts,
            (std::vector<int>{2, 0, 5}));
  // The fleet's re-dispatch accounting never perturbs plan matching.
  EXPECT_TRUE(CheckManifestMatchesPlan(*loaded, *plan, 42).ok());
}

TEST(ShardManifestTest, RoundTripsThroughDisk) {
  const std::vector<Shape> shapes = {Shape{8, 8}, Shape{4, 4, 4}};
  const StatusOr<ShardPlan> plan = PlanShards(shapes, 3);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ShardManifest manifest = MakeShardManifest(*plan, 42);
  manifest.statuses[1] = ShardStatus::kFuzzed;

  const std::string dir = TempDir("manifest");
  ASSERT_TRUE(EnsureCampaignDirectory(dir).ok());
  const std::string path = dir + "/" + kShardManifestFileName;
  ASSERT_TRUE(SaveShardManifest(path, manifest).ok());

  const StatusOr<ShardManifest> loaded = LoadShardManifest(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->rng_seed, 42u);
  EXPECT_FALSE(loaded->merged);
  EXPECT_EQ(loaded->statuses[0], ShardStatus::kPending);
  EXPECT_EQ(loaded->statuses[1], ShardStatus::kFuzzed);
  EXPECT_TRUE(CheckManifestMatchesPlan(*loaded, *plan, 42).ok());
  // A different campaign seed must be rejected — it is a different
  // schedule, and merging its shards would corrupt the campaign.
  EXPECT_FALSE(CheckManifestMatchesPlan(*loaded, *plan, 43).ok());
}

TEST(ShardStateTest, RoundTripsThroughDisk) {
  const std::vector<Shape> shapes = {Shape{4, 4}, Shape{8}};
  ShardCampaignResult result;
  result.per_file.emplace_back(shapes[0]);
  result.per_file.emplace_back(shapes[1]);
  result.per_file[0].InsertLinear(3);
  result.per_file[0].InsertLinear(7);
  result.per_file[1].InsertLinear(0);
  result.seeds.push_back({{1.5, -2.25}, true});
  result.seeds.push_back({{0.125, 9.0}, false});
  result.stats.iterations = 11;
  result.stats.evaluations = 9;
  result.stats.useful_evaluations = 4;
  result.stats.final_epsilon = 0.375;
  result.stats.stopped_by_eval_budget = true;

  const std::string dir = TempDir("state");
  ASSERT_TRUE(EnsureCampaignDirectory(dir).ok());
  const std::string path = dir + "/" + ShardStateFileName(7);
  ASSERT_TRUE(SaveShardState(path, 7, result).ok());

  const StatusOr<ShardCampaignResult> loaded = LoadShardState(path, 7, shapes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectStatsEqual(loaded->stats, result.stats, "state round trip");
  ASSERT_EQ(loaded->seeds.size(), 2u);
  EXPECT_EQ(loaded->seeds[0].value, result.seeds[0].value);
  EXPECT_EQ(loaded->seeds[0].useful, true);
  EXPECT_EQ(loaded->seeds[1].value, result.seeds[1].value);
  ExpectIndexSetsEqual(loaded->per_file[0], result.per_file[0], "file 0");
  ExpectIndexSetsEqual(loaded->per_file[1], result.per_file[1], "file 1");
  // Loading under the wrong shard id is the resume-corruption guard.
  EXPECT_FALSE(LoadShardState(path, 6, shapes).ok());
}

// ----------------------------------------------- merged-result identity --

TEST(ShardSchedulerTest, MergedResultIsBitIdenticalToUnsharded) {
  for (const std::string& name : AllMultiFileProgramNames()) {
    const std::unique_ptr<MultiFileProgram> program =
        CreateMultiFileProgram(name, 32);
    ASSERT_NE(program, nullptr);
    KondoConfig config = ShortCampaignConfig(19);
    const MultiKondoResult baseline = RunMultiFileKondo(*program, config);
    EXPECT_TRUE(baseline.fuzz_stats.stopped_by_eval_budget);

    for (int shards : {2, 4}) {
      for (int jobs : TestJobs()) {
        config.shards = shards;
        config.jobs = jobs;
        const MultiKondoResult sharded = RunMultiFileKondo(*program, config);
        ExpectResultsEqual(baseline, sharded,
                           name + ", shards=" + std::to_string(shards) +
                               ", jobs=" + std::to_string(jobs));
      }
    }
  }
}

TEST(ShardSchedulerTest, SingleFileChunkSplitMatchesWholeFile) {
  // The chunk-range splitter partitions one file across shards; results
  // must still match the one-shard run exactly.
  KondoConfig config = ShortCampaignConfig(5);
  const SingleFileProgramAdapter adapter(CreateProgram("CS"));
  const MultiKondoResult baseline = RunMultiFileKondo(adapter, config);
  config.shards = 3;
  config.jobs = 2;
  const MultiKondoResult sharded = RunMultiFileKondo(adapter, config);
  ExpectResultsEqual(baseline, sharded, "CS chunk split");
}

TEST(ShardSchedulerTest, MergedLineageBytesInvariantAcrossShardCounts) {
  const StormTrackProgram program(32, 8);
  const KondoConfig config = ShortCampaignConfig(23);
  std::string reference;
  for (int shards : {1, 2, 4}) {
    ShardOptions options;
    options.shards = shards;
    options.output_dir = TempDir("lineage_" + std::to_string(shards));
    const StatusOr<ShardedRunResult> run =
        RunShardedCampaign(program, config, options);
    ASSERT_TRUE(run.ok()) << run.status();
    ASSERT_TRUE(run->complete);
    const std::string bytes = ReadFileBytes(run->merged_lineage_path);
    ASSERT_FALSE(bytes.empty());
    if (shards == 1) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference)
          << "merged.kel2 differs at shards=" << shards;
    }
  }
}

TEST(ShardSchedulerTest, ResumesFromManifestOneShardAtATime) {
  const StormTrackProgram program(32, 8);
  const KondoConfig config = ShortCampaignConfig(31);

  ShardOptions oneshot;
  oneshot.shards = 3;
  oneshot.output_dir = TempDir("resume_oneshot");
  const StatusOr<ShardedRunResult> full =
      RunShardedCampaign(program, config, oneshot);
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_TRUE(full->complete);

  ShardOptions paced;
  paced.shards = 3;
  paced.output_dir = TempDir("resume_paced");
  paced.max_shards_this_run = 1;
  for (int invocation = 0; invocation < 2; ++invocation) {
    const StatusOr<ShardedRunResult> partial =
        RunShardedCampaign(program, config, paced);
    ASSERT_TRUE(partial.ok()) << partial.status();
    EXPECT_FALSE(partial->complete);
    EXPECT_EQ(partial->shards_fuzzed_now, 1);
    // The manifest records progress between invocations.
    const StatusOr<ShardManifest> manifest = LoadShardManifest(
        paced.output_dir + "/" + kShardManifestFileName);
    ASSERT_TRUE(manifest.ok()) << manifest.status();
    EXPECT_FALSE(manifest->AllFuzzed());
  }
  const StatusOr<ShardedRunResult> last =
      RunShardedCampaign(program, config, paced);
  ASSERT_TRUE(last.ok()) << last.status();
  ASSERT_TRUE(last->complete);

  // The paced campaign merged shards 0-1 from their .kss state files, yet
  // the outcome — including the merged lineage bytes — matches one shot.
  ExpectStatsEqual(last->merged.fuzz_stats, full->merged.fuzz_stats,
                   "paced vs oneshot");
  for (size_t f = 0; f < full->merged.per_file_approx.size(); ++f) {
    ExpectIndexSetsEqual(last->merged.per_file_approx[f],
                         full->merged.per_file_approx[f],
                         "paced approx, file " + std::to_string(f));
  }
  EXPECT_EQ(ReadFileBytes(last->merged_lineage_path),
            ReadFileBytes(full->merged_lineage_path));
}

// ----------------------------------------------------------- satellites --

TEST(FuzzEvalBudgetTest, MaxEvalsIsJobsInvariantAndRecorded) {
  const std::unique_ptr<Program> program = CreateProgram("CS");
  KondoConfig config = ScaledKondoConfig(program->data_shape());
  config.fuzz.max_evals = 100;

  FuzzResult baseline;
  bool first = true;
  for (int jobs : TestJobs()) {
    CampaignExecutor executor(jobs);
    FuzzSchedule schedule(program->param_space(), program->data_shape(),
                          config.fuzz, 7);
    const FuzzResult result =
        schedule.Run(executor, MakeCandidateTest(*program));
    EXPECT_EQ(result.stats.evaluations, 100);
    EXPECT_TRUE(result.stats.stopped_by_eval_budget);
    EXPECT_FALSE(result.stats.stopped_by_stagnation);
    if (first) {
      baseline = result;
      first = false;
      continue;
    }
    const std::string what = "jobs=" + std::to_string(jobs);
    ExpectStatsEqual(result.stats, baseline.stats, what);
    ExpectIndexSetsEqual(result.discovered, baseline.discovered, what);
    ASSERT_EQ(result.seeds.size(), baseline.seeds.size());
    for (size_t i = 0; i < result.seeds.size(); ++i) {
      EXPECT_EQ(result.seeds[i].value, baseline.seeds[i].value) << what;
      EXPECT_EQ(result.seeds[i].useful, baseline.seeds[i].useful) << what;
    }
  }
}

TEST(ParallelRasterizeTest, MatchesSerialRasterize) {
  // Scattered clusters carve into several hulls, so the parallel per-hull
  // path actually fans out.
  IndexSet discovered(Shape{64, 64});
  for (int64_t x = 2; x < 12; ++x) {
    for (int64_t y = 2; y < 12; ++y) {
      discovered.Insert(Index{x, y});
    }
  }
  for (int64_t x = 40; x < 60; x += 2) {
    discovered.Insert(Index{x, 50});
    discovered.Insert(Index{50, x});
  }
  CarveStats stats;
  const Carver carver(ScaledKondoConfig(Shape{64, 64}).carve);
  const CarvedSubset carved = carver.Carve(discovered, &stats);
  ASSERT_GT(stats.final_hulls, 1);

  const IndexSet serial = carved.Rasterize();
  CampaignExecutor executor(4);
  const IndexSet parallel = Carver::Rasterize(carved, executor);
  ExpectIndexSetsEqual(parallel, serial, "parallel rasterize");
}

}  // namespace
}  // namespace kondo
