// Tests for the distributed shard fleet (src/fleet/): KPC worker-verb
// payload round-trips, byte-identity of the fleet-merged campaign against
// the local scheduler at every worker count, re-dispatch after injected
// connection kills and straggler timeouts, duplicate-completion
// fingerprint tolerance, and the per-shard dispatch budget.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/net_fault.h"
#include "common/socket.h"
#include "exec/campaign_executor.h"
#include "fleet/fleet_protocol.h"
#include "fleet/fleet_scheduler.h"
#include "fleet/fleet_worker.h"
#include "provenance/crc32.h"
#include "provenance/persist.h"
#include "shard/shard_campaign.h"
#include "shard/shard_manifest.h"
#include "shard/shard_plan.h"
#include "shard/shard_scheduler.h"
#include "workloads/multi_file_program.h"
#include "workloads/registry.h"

namespace kondo {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A per-test directory, wiped up front. Unix socket paths must stay under
/// sockaddr_un's ~100-byte limit, so the names are kept short.
std::string TempDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/fleet_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// A short, budget-bounded campaign: bit-comparable across jobs and worker
/// counts, quick enough for the worker-count sweep.
KondoConfig ShortCampaignConfig(uint64_t seed) {
  KondoConfig config;
  config.rng_seed = seed;
  config.fuzz.max_evals = 400;
  return config;
}

/// The fleet campaigns here all run the registry STORM program at a small
/// extent; coordinator and worker instantiate it independently, which is
/// exactly the production path.
constexpr int64_t kExtent = 24;

std::unique_ptr<MultiFileProgram> TestProgram() {
  return CreateMultiFileProgram("STORM", kExtent);
}

/// Starts `count` in-process fleet workers on unix sockets under `dir`,
/// applying `tweak` (may be null) to each worker's options before Start.
std::vector<std::unique_ptr<FleetWorker>> StartWorkers(
    const std::string& dir, int count,
    void (*tweak)(int index, FleetWorkerOptions*) = nullptr) {
  std::vector<std::unique_ptr<FleetWorker>> workers;
  for (int i = 0; i < count; ++i) {
    FleetWorkerOptions options;
    options.address.unix_path = dir + "/w" + std::to_string(i) + ".sock";
    options.scratch_dir = dir + "/w" + std::to_string(i);
    options.heartbeat_micros = 20'000;
    if (tweak != nullptr) {
      tweak(i, &options);
    }
    auto worker = std::make_unique<FleetWorker>(options);
    const Status started = worker->Start();
    EXPECT_TRUE(started.ok()) << started;
    workers.push_back(std::move(worker));
  }
  return workers;
}

std::vector<SocketAddress> Endpoints(
    const std::vector<std::unique_ptr<FleetWorker>>& workers) {
  std::vector<SocketAddress> endpoints;
  for (const std::unique_ptr<FleetWorker>& worker : workers) {
    endpoints.push_back(worker->bound_address());
  }
  return endpoints;
}

// ---------------------------------------------- protocol round-trips --

TEST(FleetProtocolTest, WorkerHelloRoundTripsEveryField) {
  WorkerHello hello;
  hello.program = "STORM";
  hello.extent = 48;
  hello.rng_seed = 0xdeadbeefcafe1234ull;
  hello.fuzz.max_iter = 77;
  hello.fuzz.max_evals = 1234;
  hello.fuzz.decay = 0.625;
  hello.fuzz.init_seeds = 9;

  const StatusOr<WorkerHello> decoded = WorkerHello::Decode(hello.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->program, "STORM");
  EXPECT_EQ(decoded->extent, 48);
  EXPECT_EQ(decoded->rng_seed, 0xdeadbeefcafe1234ull);
  EXPECT_EQ(decoded->fuzz.max_iter, 77);
  EXPECT_EQ(decoded->fuzz.max_evals, 1234);
  EXPECT_EQ(decoded->fuzz.decay, 0.625);
  EXPECT_EQ(decoded->fuzz.init_seeds, 9);
}

TEST(FleetProtocolTest, WorkerHelloAckRoundTripsShapes) {
  WorkerHelloAck ack;
  ack.program = "STORM";
  ack.file_shapes = {Shape{24, 24}, Shape{12, 12, 16}};
  const StatusOr<WorkerHelloAck> decoded =
      WorkerHelloAck::Decode(ack.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->program, "STORM");
  EXPECT_EQ(decoded->file_shapes, ack.file_shapes);
}

TEST(FleetProtocolTest, RunShardRequestRoundTripsSlices) {
  RunShardRequest request;
  request.shard = 3;
  request.slices = {{0, 0, 100}, {1, 64, 256}};
  const StatusOr<RunShardRequest> decoded =
      RunShardRequest::Decode(request.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->shard, 3);
  EXPECT_EQ(decoded->slices, request.slices);
}

TEST(FleetProtocolTest, HeartbeatAndResultRoundTrip) {
  HeartbeatMsg beat;
  beat.shard = 2;
  beat.sequence = 41;
  const StatusOr<HeartbeatMsg> beat2 = HeartbeatMsg::Decode(beat.Encode());
  ASSERT_TRUE(beat2.ok()) << beat2.status();
  EXPECT_EQ(beat2->shard, 2);
  EXPECT_EQ(beat2->sequence, 41);

  ShardResultMsg result;
  result.shard = 5;
  result.kss = std::string("KSS1 bytes\0with nul", 19);
  result.kel2 = "lineage bytes";
  const StatusOr<ShardResultMsg> result2 =
      ShardResultMsg::Decode(result.Encode());
  ASSERT_TRUE(result2.ok()) << result2.status();
  EXPECT_EQ(result2->shard, 5);
  EXPECT_EQ(result2->kss, result.kss);
  EXPECT_EQ(result2->kel2, result.kel2);
}

TEST(FleetProtocolTest, TruncatedAndPaddedPayloadsAreRejected) {
  WorkerHello hello;
  hello.program = "STORM";
  const std::string wire = hello.Encode();
  for (size_t cut : {size_t{0}, size_t{3}, wire.size() - 1}) {
    EXPECT_FALSE(WorkerHello::Decode(wire.substr(0, cut)).ok())
        << "cut at " << cut;
  }
  // Trailing bytes mean a framing bug, not forward compatibility.
  EXPECT_FALSE(WorkerHello::Decode(wire + "x").ok());

  RunShardRequest request;
  request.shard = 1;
  request.slices = {{0, 0, 8}};
  const std::string req_wire = request.Encode();
  EXPECT_FALSE(RunShardRequest::Decode(req_wire.substr(0, 5)).ok());
  EXPECT_FALSE(RunShardRequest::Decode(req_wire + "y").ok());
}

// ------------------------------------------------- fleet determinism --

TEST(FleetCampaignTest, MergedResultIsByteIdenticalAtEveryWorkerCount) {
  const std::unique_ptr<MultiFileProgram> program = TestProgram();
  const KondoConfig config = ShortCampaignConfig(19);

  ShardOptions local;
  local.shards = 4;
  local.output_dir = TempDir("base");
  const StatusOr<ShardedRunResult> baseline =
      RunShardedCampaign(*program, config, local);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_TRUE(baseline->complete);
  const std::string reference = ReadFileBytes(baseline->merged_lineage_path);
  ASSERT_FALSE(reference.empty());

  for (int count : {1, 2, 4}) {
    const std::string dir = TempDir("n" + std::to_string(count));
    ASSERT_TRUE(EnsureCampaignDirectory(dir).ok());
    std::vector<std::unique_ptr<FleetWorker>> workers =
        StartWorkers(dir, count);

    FleetOptions options;
    options.shards = 4;
    options.output_dir = dir + "/campaign";
    options.workers = Endpoints(workers);
    options.program_extent = kExtent;
    const StatusOr<ShardedRunResult> fleet =
        RunFleetCampaign(*program, config, options);
    ASSERT_TRUE(fleet.ok()) << fleet.status();
    ASSERT_TRUE(fleet->complete);
    EXPECT_EQ(fleet->shards_fuzzed_now, 4) << "workers=" << count;
    EXPECT_EQ(ReadFileBytes(fleet->merged_lineage_path), reference)
        << "merged.kel2 differs at workers=" << count;
    EXPECT_EQ(fleet->merged.fuzz_stats.evaluations,
              baseline->merged.fuzz_stats.evaluations);
    for (size_t f = 0; f < baseline->merged.per_file_approx.size(); ++f) {
      EXPECT_EQ(fleet->merged.per_file_approx[f].ToSortedLinearIds(),
                baseline->merged.per_file_approx[f].ToSortedLinearIds())
          << "workers=" << count << ", file " << f;
    }
    for (const std::unique_ptr<FleetWorker>& worker : workers) {
      worker->Stop();
    }
  }
}

TEST(FleetCampaignTest, KilledWorkerConnectionIsReDispatched) {
  const std::unique_ptr<MultiFileProgram> program = TestProgram();
  const KondoConfig config = ShortCampaignConfig(19);

  ShardOptions local;
  local.shards = 3;
  local.output_dir = TempDir("killbase");
  const StatusOr<ShardedRunResult> baseline =
      RunShardedCampaign(*program, config, local);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  const std::string reference = ReadFileBytes(baseline->merged_lineage_path);

  const std::string dir = TempDir("kill");
  ASSERT_TRUE(EnsureCampaignDirectory(dir).ok());
  std::vector<std::unique_ptr<FleetWorker>> workers = StartWorkers(dir, 2);

  // Coordinator-side fault: connection ordinal 0 (the first worker link)
  // tears its second write — the first kRunShard frame — mid-frame. The
  // worker sees a torn stream, the coordinator's next read fails, and the
  // shard must be re-dispatched to the surviving worker.
  NetFaultPlan plan;
  plan.drop_connection = 0;
  plan.drop_after_writes = 2;
  plan.short_frame_bytes = 5;
  FaultInjectingNetEnv net(NetEnv::Default(), plan);

  FleetOptions options;
  options.shards = 3;
  options.output_dir = dir + "/campaign";
  options.workers = Endpoints(workers);
  options.program_extent = kExtent;
  options.net = &net;
  const StatusOr<ShardedRunResult> fleet =
      RunFleetCampaign(*program, config, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status();
  ASSERT_TRUE(fleet->complete);
  EXPECT_GE(net.faults_injected(), 1);
  EXPECT_EQ(ReadFileBytes(fleet->merged_lineage_path), reference);

  // The kill consumed a dispatch: the manifest's W lines must show more
  // dispatches than shards.
  const StatusOr<ShardManifest> manifest = LoadShardManifest(
      options.output_dir + "/" + kShardManifestFileName);
  ASSERT_TRUE(manifest.ok()) << manifest.status();
  int total_dispatches = 0;
  for (int count : manifest->dispatch_counts) {
    total_dispatches += count;
  }
  EXPECT_GT(total_dispatches, manifest->num_shards());

  for (const std::unique_ptr<FleetWorker>& worker : workers) {
    worker->Stop();
  }
}

TEST(FleetCampaignTest, StragglerTimesOutAndShardIsReassigned) {
  const std::unique_ptr<MultiFileProgram> program = TestProgram();
  const KondoConfig config = ShortCampaignConfig(19);

  ShardOptions local;
  local.shards = 3;
  local.output_dir = TempDir("slowbase");
  const StatusOr<ShardedRunResult> baseline =
      RunShardedCampaign(*program, config, local);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  const std::string reference = ReadFileBytes(baseline->merged_lineage_path);

  const std::string dir = TempDir("slow");
  ASSERT_TRUE(EnsureCampaignDirectory(dir).ok());
  // Worker 0 is a deliberate straggler: heartbeats suppressed and every
  // result stalled well past the coordinator's timeout, so it goes silent
  // exactly like a wedged process.
  std::vector<std::unique_ptr<FleetWorker>> workers = StartWorkers(
      dir, 2, [](int index, FleetWorkerOptions* options) {
        if (index == 0) {
          options->heartbeat_micros = 0;
          options->result_stall_micros = 2'000'000;
        }
      });

  FleetOptions options;
  options.shards = 3;
  options.output_dir = dir + "/campaign";
  options.workers = Endpoints(workers);
  options.program_extent = kExtent;
  options.heartbeat_timeout_micros = 150'000;
  const StatusOr<ShardedRunResult> fleet =
      RunFleetCampaign(*program, config, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status();
  ASSERT_TRUE(fleet->complete);
  EXPECT_EQ(ReadFileBytes(fleet->merged_lineage_path), reference);

  const StatusOr<ShardManifest> manifest = LoadShardManifest(
      options.output_dir + "/" + kShardManifestFileName);
  ASSERT_TRUE(manifest.ok()) << manifest.status();
  int total_dispatches = 0;
  for (int count : manifest->dispatch_counts) {
    total_dispatches += count;
  }
  EXPECT_GT(total_dispatches, manifest->num_shards());

  for (const std::unique_ptr<FleetWorker>& worker : workers) {
    worker->Stop();
  }
}

// --------------------------------------- duplicate-completion commits --

/// Runs shard `s` of `plan` locally and seals its artefacts into a
/// ShardResultMsg — exactly what a worker ships in kShardResult.
StatusOr<ShardResultMsg> MakeShardResult(const MultiFileProgram& program,
                                         const ShardPlan& plan, int s,
                                         const KondoConfig& config,
                                         const std::string& scratch) {
  const std::string lineage_path =
      scratch + "/made-" + std::to_string(s) + ".kel2";
  KONDO_ASSIGN_OR_RETURN(CampaignLineageSink sink,
                         CampaignLineageSink::Create(lineage_path, {}));
  CampaignExecutor executor(1);
  KONDO_ASSIGN_OR_RETURN(
      ShardCampaignResult run,
      RunShardCampaign(program, plan, plan.shards[static_cast<size_t>(s)],
                       config, executor, sink.persister()));
  KONDO_RETURN_IF_ERROR(sink.Close());
  std::string kel2;
  KONDO_RETURN_IF_ERROR(ReadFileToString(lineage_path, &kel2));
  ShardArtifactInfo info;
  info.lineage_bytes = static_cast<int64_t>(kel2.size());
  info.lineage_crc = Crc32(kel2.data(), kel2.size());
  ShardResultMsg result;
  result.shard = s;
  result.kss = EncodeShardState(s, run, info);
  result.kel2 = std::move(kel2);
  return result;
}

TEST(CommitShardResultTest, DuplicateAgreementIsIdempotent) {
  const std::unique_ptr<MultiFileProgram> program = TestProgram();
  std::vector<Shape> shapes;
  for (int f = 0; f < program->num_files(); ++f) {
    shapes.push_back(program->file_shape(f));
  }
  const StatusOr<ShardPlan> plan = PlanShards(shapes, 2);
  ASSERT_TRUE(plan.ok()) << plan.status();

  const std::string dir = TempDir("dup");
  ASSERT_TRUE(EnsureCampaignDirectory(dir).ok());
  const KondoConfig config = ShortCampaignConfig(7);
  const StatusOr<ShardResultMsg> result =
      MakeShardResult(*program, *plan, 0, config, dir);
  ASSERT_TRUE(result.ok()) << result.status();

  ASSERT_TRUE(CommitShardResult(dir, *plan, *result).ok());
  const std::string kel2_bytes =
      ReadFileBytes(dir + "/" + ShardLineageFileName(0));
  // The second, identical completion is a no-op: same status, artefacts
  // untouched.
  const StatusOr<ShardCampaignResult> again =
      CommitShardResult(dir, *plan, *result);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(ReadFileBytes(dir + "/" + ShardLineageFileName(0)), kel2_bytes);
}

TEST(CommitShardResultTest, DuplicateDisagreementIsInternalError) {
  const std::unique_ptr<MultiFileProgram> program = TestProgram();
  std::vector<Shape> shapes;
  for (int f = 0; f < program->num_files(); ++f) {
    shapes.push_back(program->file_shape(f));
  }
  const StatusOr<ShardPlan> plan = PlanShards(shapes, 2);
  ASSERT_TRUE(plan.ok()) << plan.status();

  const std::string dir = TempDir("dup2");
  ASSERT_TRUE(EnsureCampaignDirectory(dir).ok());
  const StatusOr<ShardResultMsg> first =
      MakeShardResult(*program, *plan, 0, ShortCampaignConfig(7), dir);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(CommitShardResult(dir, *plan, *first).ok());

  // A different seed produces a self-consistent but different artefact
  // pair for the same shard id — a determinism violation, not a resend.
  const StatusOr<ShardResultMsg> second =
      MakeShardResult(*program, *plan, 0, ShortCampaignConfig(8), dir);
  ASSERT_TRUE(second.ok()) << second.status();
  const StatusOr<ShardCampaignResult> clash =
      CommitShardResult(dir, *plan, *second);
  ASSERT_FALSE(clash.ok());
  EXPECT_EQ(clash.status().code(), StatusCode::kInternal)
      << clash.status();
}

TEST(CommitShardResultTest, TamperedLineageBytesAreRejectedBeforeCommit) {
  const std::unique_ptr<MultiFileProgram> program = TestProgram();
  std::vector<Shape> shapes;
  for (int f = 0; f < program->num_files(); ++f) {
    shapes.push_back(program->file_shape(f));
  }
  const StatusOr<ShardPlan> plan = PlanShards(shapes, 2);
  ASSERT_TRUE(plan.ok()) << plan.status();

  const std::string dir = TempDir("tamper");
  ASSERT_TRUE(EnsureCampaignDirectory(dir).ok());
  StatusOr<ShardResultMsg> result =
      MakeShardResult(*program, *plan, 1, ShortCampaignConfig(7), dir);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_FALSE(result->kel2.empty());
  result->kel2[result->kel2.size() / 2] ^= 0x40;

  const StatusOr<ShardCampaignResult> commit =
      CommitShardResult(dir, *plan, *result);
  ASSERT_FALSE(commit.ok());
  EXPECT_EQ(commit.status().code(), StatusCode::kDataLoss) << commit.status();
  // Nothing may have touched the campaign directory.
  EXPECT_FALSE(
      std::filesystem::exists(dir + "/" + ShardStateFileName(1)));
}

// ------------------------------------------------------ dispatch budget --

TEST(FleetCampaignTest, ExhaustedDispatchBudgetFailsTheCampaign) {
  const std::unique_ptr<MultiFileProgram> program = TestProgram();
  const KondoConfig config = ShortCampaignConfig(19);
  std::vector<Shape> shapes;
  for (int f = 0; f < program->num_files(); ++f) {
    shapes.push_back(program->file_shape(f));
  }
  const StatusOr<ShardPlan> plan = PlanShards(shapes, 2);
  ASSERT_TRUE(plan.ok()) << plan.status();

  const std::string dir = TempDir("budget");
  const std::string campaign = dir + "/campaign";
  ASSERT_TRUE(EnsureCampaignDirectory(campaign).ok());
  // A manifest whose shard 0 already burned every allowed dispatch — the
  // state a coordinator leaves behind after repeated worker losses.
  ShardManifest manifest = MakeShardManifest(*plan, config.rng_seed);
  manifest.dispatch_counts[0] = 3;
  ASSERT_TRUE(SaveShardManifest(campaign + "/" + kShardManifestFileName,
                                manifest)
                  .ok());

  std::vector<std::unique_ptr<FleetWorker>> workers = StartWorkers(dir, 1);
  FleetOptions options;
  options.shards = 2;
  options.output_dir = campaign;
  options.workers = Endpoints(workers);
  options.program_extent = kExtent;
  options.max_dispatches = 3;
  const StatusOr<ShardedRunResult> fleet =
      RunFleetCampaign(*program, config, options);
  ASSERT_FALSE(fleet.ok());
  EXPECT_EQ(fleet.status().code(), StatusCode::kInternal) << fleet.status();
  EXPECT_NE(fleet.status().ToString().find("dispatch budget"),
            std::string::npos)
      << fleet.status();

  for (const std::unique_ptr<FleetWorker>& worker : workers) {
    worker->Stop();
  }
}

// ---------------------------------------------------- resume interplay --

TEST(FleetCampaignTest, FleetResumesALocalCampaignAndViceVersa) {
  const std::unique_ptr<MultiFileProgram> program = TestProgram();
  const KondoConfig config = ShortCampaignConfig(19);

  // Local runs one shard, the fleet finishes the campaign; the merged
  // bytes must match a purely local run.
  ShardOptions reference_options;
  reference_options.shards = 3;
  reference_options.output_dir = TempDir("mixbase");
  const StatusOr<ShardedRunResult> reference =
      RunShardedCampaign(*program, config, reference_options);
  ASSERT_TRUE(reference.ok()) << reference.status();

  const std::string dir = TempDir("mix");
  ASSERT_TRUE(EnsureCampaignDirectory(dir).ok());
  ShardOptions paced;
  paced.shards = 3;
  paced.output_dir = dir + "/campaign";
  paced.max_shards_this_run = 1;
  const StatusOr<ShardedRunResult> partial =
      RunShardedCampaign(*program, config, paced);
  ASSERT_TRUE(partial.ok()) << partial.status();
  ASSERT_FALSE(partial->complete);

  std::vector<std::unique_ptr<FleetWorker>> workers = StartWorkers(dir, 2);
  FleetOptions options;
  options.shards = 3;
  options.output_dir = paced.output_dir;
  options.workers = Endpoints(workers);
  options.program_extent = kExtent;
  const StatusOr<ShardedRunResult> fleet =
      RunFleetCampaign(*program, config, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status();
  ASSERT_TRUE(fleet->complete);
  EXPECT_EQ(fleet->shards_fuzzed_now, 2);
  EXPECT_EQ(ReadFileBytes(fleet->merged_lineage_path),
            ReadFileBytes(reference->merged_lineage_path));

  for (const std::unique_ptr<FleetWorker>& worker : workers) {
    worker->Stop();
  }
}

}  // namespace
}  // namespace kondo
