// Coverage for recently added surfaces: the fuzz-schedule observer, the
// scaled configuration helper, and assorted edge paths.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "array/kdf_file.h"
#include "carve/carver.h"
#include "core/debloat_test.h"
#include "core/kondo.h"
#include "fuzz/fuzz_schedule.h"
#include "geom/hull.h"
#include "workloads/registry.h"

namespace kondo {
namespace {

// ------------------------------------------------------ schedule observer --

TEST(FuzzObserverTest, SeesEveryEvaluationInOrder) {
  const std::unique_ptr<Program> program = CreateProgram("CS", 64);
  FuzzConfig config;
  config.max_iter = 120;
  FuzzSchedule schedule(program->param_space(), program->data_shape(),
                        config, 5);
  std::vector<int> iterations;
  std::vector<size_t> discovered_sizes;
  const FuzzResult result = schedule.Run(
      MakeDebloatTest(*program),
      [&](int itr, const ParamValue& v, bool useful, size_t discovered) {
        iterations.push_back(itr);
        discovered_sizes.push_back(discovered);
        EXPECT_EQ(v.size(), 2u);
        // Usefulness matches the program's guard.
        EXPECT_EQ(useful, v[0] <= v[1]);
      });
  ASSERT_EQ(iterations.size(), result.seeds.size());
  // Iterations strictly increase; discovery is monotone non-decreasing.
  for (size_t i = 1; i < iterations.size(); ++i) {
    EXPECT_LT(iterations[i - 1], iterations[i]);
    EXPECT_LE(discovered_sizes[i - 1], discovered_sizes[i]);
  }
  EXPECT_EQ(discovered_sizes.back(), result.discovered.size());
}

TEST(FuzzObserverTest, NullObserverIsAllowed) {
  const std::unique_ptr<Program> program = CreateProgram("CS", 32);
  FuzzConfig config;
  config.max_iter = 50;
  FuzzSchedule schedule(program->param_space(), program->data_shape(),
                        config, 5);
  const FuzzResult result = schedule.Run(MakeDebloatTest(*program), nullptr);
  EXPECT_GT(result.stats.evaluations, 0);
}

// ------------------------------------------------------ scaled config --

TEST(ScaledKondoConfigTest, DefaultShapeKeepsFigFiveValues) {
  const KondoConfig config = ScaledKondoConfig(Shape{128, 128});
  EXPECT_DOUBLE_EQ(config.fuzz.u_dist.lo, 5.0);
  EXPECT_DOUBLE_EQ(config.fuzz.u_dist.hi, 15.0);
  EXPECT_DOUBLE_EQ(config.fuzz.n_dist.hi, 50.0);
  EXPECT_DOUBLE_EQ(config.fuzz.diameter, 20.0);
  EXPECT_EQ(config.carve.cell_size, 16);
  EXPECT_DOUBLE_EQ(config.carve.center_d_thresh, 20.0);
  EXPECT_DOUBLE_EQ(config.carve.boundary_d_thresh, 10.0);
}

TEST(ScaledKondoConfigTest, LargestExtentDrivesTheScale) {
  const KondoConfig config = ScaledKondoConfig(Shape{64, 512, 64});
  const double scale = 512.0 / 128.0;
  EXPECT_DOUBLE_EQ(config.fuzz.u_dist.hi, 15.0 * scale);
  EXPECT_DOUBLE_EQ(config.carve.center_d_thresh, 20.0 * scale);
  EXPECT_EQ(config.carve.cell_size, 64);
}

TEST(ScaledKondoConfigTest, SmallShapesNeverShrinkBelowDefaults) {
  const KondoConfig config = ScaledKondoConfig(Shape{16, 16});
  EXPECT_DOUBLE_EQ(config.fuzz.u_dist.lo, 5.0);
  EXPECT_EQ(config.carve.cell_size, 16);
}

// ----------------------------------------------------------- geometry --

TEST(HullEdgeCaseTest, AllIdenticalPointsIn3DAmbient) {
  const std::vector<Vec3> points(10, Vec3(4, 5, 6));
  const Hull hull = Hull::Build(points, 3);
  EXPECT_EQ(hull.affine_rank(), 0);
  EXPECT_TRUE(hull.Contains(Vec3(4, 5, 6)));
  EXPECT_FALSE(hull.Contains(Vec3(4, 5, 6.5)));
  EXPECT_DOUBLE_EQ(hull.Measure(), 0.0);
}

TEST(HullEdgeCaseTest, CountIntegerPointsMatchesRasterSize) {
  const Hull hull = Hull::FromIndices(
      {Index{0, 0}, Index{6, 0}, Index{0, 6}}, 2);
  const Shape shape{10, 10};
  IndexSet raster(shape);
  hull.RasterizeInto(&raster);
  EXPECT_EQ(hull.CountIntegerPoints(shape),
            static_cast<int64_t>(raster.size()));
}

TEST(HullEdgeCaseTest, RankOneIndices) {
  const Hull hull = Hull::FromIndices({Index{2}, Index{9}}, 1);
  EXPECT_TRUE(hull.ContainsIndex(Index{5}));
  EXPECT_FALSE(hull.ContainsIndex(Index{1}));
  IndexSet raster(Shape{16});
  hull.RasterizeInto(&raster);
  EXPECT_EQ(raster.size(), 8u);  // 2..9 inclusive.
}

TEST(CarverEdgeCaseTest, RankOneCarving) {
  IndexSet points(Shape{64});
  points.Insert(Index{3});
  points.Insert(Index{5});
  points.Insert(Index{40});
  points.Insert(Index{42});
  Carver carver(CarveConfig{});
  const CarvedSubset carved = carver.Carve(points);
  const IndexSet raster = carved.Rasterize();
  EXPECT_TRUE(raster.Contains(Index{4}));    // Sandwiched.
  EXPECT_TRUE(raster.Contains(Index{41}));
  EXPECT_FALSE(raster.Contains(Index{20}));  // Far gap (distance 35 > 20).
}

// --------------------------------------------------------- audited VPIC --

TEST(AuditedVpicTest, AuditedTestMatchesFastTestOnDataDependentReads) {
  // VPIC's reads are data-dependent (via its energy index); the audited
  // byte-offset path must recover the identical index subset.
  const std::unique_ptr<Program> program = CreateProgram("VPIC", 16);
  DataArray array(program->data_shape(), DType::kFloat64);
  const std::string path = ::testing::TempDir() + "/vpic16.kdf";
  ASSERT_TRUE(WriteKdfFile(path, array).ok());
  const DebloatTestFn audited = MakeAuditedDebloatTest(*program, path);
  const DebloatTestFn fast = MakeDebloatTest(*program);
  for (double threshold : {60.0, 75.0, 95.0}) {
    const ParamValue v{threshold, 8.0};
    const IndexSet a = audited(v);
    const IndexSet f = fast(v);
    EXPECT_EQ(a.size(), f.size()) << threshold;
    EXPECT_TRUE(f.IsSubsetOf(a)) << threshold;
  }
}

}  // namespace
}  // namespace kondo
