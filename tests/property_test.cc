// Cross-module property tests: randomized invariants that tie the geometry,
// carving, packaging, and audit layers together.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "array/data_array.h"
#include "array/debloated_array.h"
#include "array/kdf_file.h"
#include "audit/event_log.h"
#include "audit/offset_mapper.h"
#include "carve/carver.h"
#include "common/rng.h"
#include "core/kondo.h"
#include "geom/hull.h"
#include "workloads/registry.h"

namespace kondo {
namespace {

// ------------------------------------------------------- hull geometry --

class HullRankProperty : public ::testing::TestWithParam<int> {};

TEST_P(HullRankProperty, ConvexCombinationsOfVerticesAreInside) {
  const int rank = GetParam();
  Rng rng(400 + static_cast<uint64_t>(rank));
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Vec3> points;
    for (int i = 0; i < 25; ++i) {
      Vec3 p;
      for (int d = 0; d < rank; ++d) {
        p[d] = rng.UniformDouble(0, 30);
      }
      points.push_back(p);
    }
    const Hull hull = Hull::Build(points, rank);
    // Random convex combinations of the hull's vertices must lie inside.
    for (int q = 0; q < 20; ++q) {
      std::vector<double> weights(hull.vertices().size());
      double total = 0.0;
      for (double& w : weights) {
        w = rng.UniformDouble(0, 1);
        total += w;
      }
      Vec3 point;
      for (size_t i = 0; i < weights.size(); ++i) {
        point += hull.vertices()[i] * (weights[i] / total);
      }
      EXPECT_TRUE(hull.Contains(point, 1e-6))
          << "rank=" << rank << " trial=" << trial;
    }
  }
}

TEST_P(HullRankProperty, SeparatedPointsAreOutside) {
  const int rank = GetParam();
  Rng rng(500 + static_cast<uint64_t>(rank));
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Vec3> points;
    for (int i = 0; i < 25; ++i) {
      Vec3 p;
      for (int d = 0; d < rank; ++d) {
        p[d] = rng.UniformDouble(0, 30);
      }
      points.push_back(p);
    }
    const Hull hull = Hull::Build(points, rank);
    // A point strictly beyond the maximum support in a random direction is
    // provably outside the hull.
    for (int q = 0; q < 20; ++q) {
      Vec3 direction;
      for (int d = 0; d < rank; ++d) {
        direction[d] = rng.Gaussian();
      }
      if (Norm(direction) < 1e-9) {
        continue;
      }
      direction = Normalized(direction);
      double max_support = -1e300;
      for (const Vec3& p : points) {
        max_support = std::max(max_support, Dot(p, direction));
      }
      const Vec3 outside =
          hull.centroid() +
          direction * (max_support - Dot(hull.centroid(), direction) + 1.0);
      EXPECT_FALSE(hull.Contains(outside, 1e-6))
          << "rank=" << rank << " trial=" << trial;
    }
  }
}

TEST_P(HullRankProperty, HullOfVerticesHasSameMembership) {
  const int rank = GetParam();
  Rng rng(600 + static_cast<uint64_t>(rank));
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<Vec3> points;
    for (int i = 0; i < 30; ++i) {
      Vec3 p;
      for (int d = 0; d < rank; ++d) {
        p[d] = static_cast<double>(rng.UniformInt(0, 20));
      }
      points.push_back(p);
    }
    const Hull original = Hull::Build(points, rank);
    const Hull rebuilt = Hull::Build(original.vertices(), rank);
    for (int q = 0; q < 50; ++q) {
      Vec3 probe;
      for (int d = 0; d < rank; ++d) {
        probe[d] = rng.UniformDouble(-2, 22);
      }
      EXPECT_EQ(original.Contains(probe, 1e-6), rebuilt.Contains(probe, 1e-6))
          << "rank=" << rank << " probe=" << probe;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, HullRankProperty, ::testing::Values(1, 2, 3));

// ----------------------------------------------------------- carving --

TEST(CarveProperty, DeterministicForEqualInput) {
  Rng rng(7);
  const Shape shape{64, 64};
  IndexSet points(shape);
  for (int i = 0; i < 200; ++i) {
    points.Insert(Index{rng.UniformInt(0, 63), rng.UniformInt(0, 63)});
  }
  Carver carver(CarveConfig{});
  const IndexSet a = carver.Carve(points).Rasterize();
  const IndexSet b = carver.Carve(points).Rasterize();
  EXPECT_EQ(a.size(), b.size());
  EXPECT_TRUE(a.IsSubsetOf(b));
}

TEST(CarveProperty, RasterizeIsIdempotentUnderRecarving) {
  // Carving an already-carved raster must not lose any of its points
  // (hulls contain their inputs; re-carving can only preserve or connect).
  Rng rng(8);
  const Shape shape{64, 64};
  IndexSet points(shape);
  for (int i = 0; i < 150; ++i) {
    points.Insert(Index{rng.UniformInt(0, 63), rng.UniformInt(0, 63)});
  }
  Carver carver(CarveConfig{});
  const IndexSet first = carver.Carve(points).Rasterize();
  const IndexSet second = carver.Carve(first).Rasterize();
  EXPECT_TRUE(first.IsSubsetOf(second));
}

TEST(CarveProperty, MoreMergingNeverShrinksCoverage) {
  // Raising both thresholds strictly relaxes CLOSE, so coverage (and hence
  // recall) is monotone non-decreasing.
  Rng rng(9);
  const Shape shape{96, 96};
  IndexSet points(shape);
  for (int cluster = 0; cluster < 5; ++cluster) {
    const int64_t cx = rng.UniformInt(8, 88);
    const int64_t cy = rng.UniformInt(8, 88);
    for (int i = 0; i < 30; ++i) {
      points.Insert(
          Index{cx + rng.UniformInt(-6, 6), cy + rng.UniformInt(-6, 6)});
    }
  }
  size_t previous = 0;
  for (double scale : {0.5, 1.0, 2.0, 4.0}) {
    CarveConfig config;
    config.center_d_thresh = 20.0 * scale;
    config.boundary_d_thresh = 10.0 * scale;
    const size_t covered =
        Carver(config).Carve(points).Rasterize().size();
    EXPECT_GE(covered, previous) << "scale=" << scale;
    previous = covered;
  }
}

// ------------------------------------------------- packaging round trip --

TEST(PackagingProperty, PipelineSubsetPackagesAndReplaysLosslessly) {
  Rng rng(10);
  for (const std::string& name : {std::string("CS"), std::string("LDC")}) {
    const std::unique_ptr<Program> program = CreateProgram(name, 64);
    DataArray array(program->data_shape(), DType::kFloat64);
    array.FillPattern(rng.NextU64());

    KondoConfig config;
    config.fuzz.max_iter = 500;
    config.rng_seed = rng.NextU64();
    const KondoResult result = KondoPipeline(config).Run(*program);
    const DebloatedArray debloated =
        PackageDebloated(array, result.approx);

    // Every approx member round-trips with its exact value; every
    // non-member raises data-missing.
    result.approx.ForEach([&](const Index& index) {
      StatusOr<double> value = debloated.At(index);
      ASSERT_TRUE(value.ok());
      EXPECT_DOUBLE_EQ(*value, array.At(index));
    });
    int missing_checked = 0;
    program->data_shape().ForEachIndex([&](const Index& index) {
      if (!result.approx.Contains(index) && missing_checked < 500) {
        ++missing_checked;
        EXPECT_EQ(debloated.At(index).status().code(),
                  StatusCode::kDataMissing);
      }
    });
  }
}

// ------------------------------------------- audit event-stream oracle --

TEST(AuditProperty, RandomEventStreamsMatchByteOracle) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    RowMajorLayout layout(Shape{16, 16}, DType::kFloat64);
    const int64_t payload = layout.PayloadBytes();
    EventLog log;
    std::vector<bool> touched(static_cast<size_t>(payload), false);
    for (int e = 0; e < 60; ++e) {
      Event event;
      event.id = EventId{rng.UniformInt(1, 3), 1};
      event.type = EventType::kPread;
      event.offset = rng.UniformInt(0, payload - 1);
      event.size = rng.UniformInt(1, 48);
      log.Record(event);
      for (int64_t b = event.offset;
           b < std::min(event.offset + event.size, payload); ++b) {
        touched[static_cast<size_t>(b)] = true;
      }
    }
    // The mapper's recovered indices must equal the per-byte oracle.
    OffsetMapper mapper(&layout, /*payload_offset=*/0);
    const IndexSet indices = mapper.IndicesForRanges(log.AccessedRanges(1));
    layout.shape().ForEachIndex([&](const Index& index) {
      const Interval range = layout.ByteRangeOf(index);
      bool oracle = false;
      for (int64_t b = range.begin; b < std::min(range.end, payload); ++b) {
        oracle = oracle || touched[static_cast<size_t>(b)];
      }
      EXPECT_EQ(indices.Contains(index), oracle)
          << index << " trial=" << trial;
    });
  }
}

// -------------------------------------------------- corrupt-input fuzz --

TEST(RobustnessProperty, KdfReaderSurvivesRandomGarbage) {
  Rng rng(12);
  const std::string path = ::testing::TempDir() + "/garbage_fuzz.kdf";
  for (int trial = 0; trial < 40; ++trial) {
    const int64_t size = rng.UniformInt(0, 200);
    std::string bytes;
    if (rng.Bernoulli(0.5)) {
      bytes = "KDF1";  // Valid magic, garbage rest.
    }
    for (int64_t i = static_cast<int64_t>(bytes.size()); i < size; ++i) {
      bytes.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    std::ofstream(path, std::ios::binary) << bytes;
    // Must return an error status or a safely-readable reader; never crash.
    StatusOr<KdfReader> reader = KdfReader::Open(path);
    if (reader.ok()) {
      (void)reader->ReadElement(Index{0, 0});
    }
  }
}

TEST(RobustnessProperty, DebloatedReaderSurvivesRandomGarbage) {
  Rng rng(13);
  const std::string path = ::testing::TempDir() + "/garbage_fuzz.kdd";
  for (int trial = 0; trial < 40; ++trial) {
    const int64_t size = rng.UniformInt(0, 200);
    std::string bytes;
    if (rng.Bernoulli(0.5)) {
      bytes = "KDD1";
    }
    for (int64_t i = static_cast<int64_t>(bytes.size()); i < size; ++i) {
      bytes.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    std::ofstream(path, std::ios::binary) << bytes;
    StatusOr<DebloatedArray> array = DebloatedArray::ReadFile(path);
    if (array.ok()) {
      (void)array->At(Index{0, 0});
    }
  }
}

// ------------------------------------------------ end-to-end soundness --

TEST(SoundnessProperty, ApproxAlwaysContainsEveryDiscoveredOffset) {
  // The carved subset must never drop an offset the fuzzer actually
  // observed — observed offsets are certain members of I_Θ.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const std::unique_ptr<Program> program = CreateProgram("CS1", 96);
    KondoConfig config;
    config.fuzz.max_iter = 400;
    config.rng_seed = seed;
    const KondoResult result = KondoPipeline(config).Run(*program);
    EXPECT_TRUE(result.fuzz.discovered.IsSubsetOf(result.approx))
        << "seed=" << seed;
  }
}

}  // namespace
}  // namespace kondo
