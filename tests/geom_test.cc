#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "geom/convex2d.h"
#include "geom/convex3d.h"
#include "geom/hull.h"
#include "geom/vec.h"

namespace kondo {
namespace {

// ------------------------------------------------------------------ Vec3 --

TEST(Vec3Test, Arithmetic) {
  const Vec3 a(1, 2, 3);
  const Vec3 b(4, 5, 6);
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  EXPECT_EQ(Cross(Vec3(1, 0, 0), Vec3(0, 1, 0)), Vec3(0, 0, 1));
  EXPECT_DOUBLE_EQ(Norm(Vec3(3, 4, 0)), 5.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), std::sqrt(27.0));
}

TEST(Vec3Test, FromIndex) {
  EXPECT_EQ(Vec3::FromIndex(Index{3, 4}), Vec3(3, 4, 0));
  EXPECT_EQ(Vec3::FromIndex(Index{1, 2, 3}), Vec3(1, 2, 3));
  EXPECT_EQ(Vec3::FromIndex(Index{9}), Vec3(9, 0, 0));
}

TEST(Vec3Test, NormalizedHandlesZero) {
  EXPECT_EQ(Normalized(Vec3(0, 0, 0)), Vec3(0, 0, 0));
  EXPECT_NEAR(Norm(Normalized(Vec3(2, 3, 6))), 1.0, 1e-12);
}

// ----------------------------------------------------------- 2-D hulls --

TEST(ConvexHull2DTest, SquareHullIsFourCorners) {
  std::vector<Vec2> points;
  for (int x = 0; x <= 4; ++x) {
    for (int y = 0; y <= 4; ++y) {
      points.push_back(Vec2{static_cast<double>(x), static_cast<double>(y)});
    }
  }
  const std::vector<Vec2> hull = ConvexHull2D(points);
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_NEAR(ConvexPolygonArea(hull), 16.0, 1e-9);
}

TEST(ConvexHull2DTest, SinglePoint) {
  const std::vector<Vec2> hull = ConvexHull2D({Vec2{2, 3}});
  ASSERT_EQ(hull.size(), 1u);
  EXPECT_TRUE(PointInConvexPolygon(hull, Vec2{2, 3}, 1e-9));
  EXPECT_FALSE(PointInConvexPolygon(hull, Vec2{2, 4}, 1e-9));
}

TEST(ConvexHull2DTest, DuplicatePointsCollapse) {
  const std::vector<Vec2> hull =
      ConvexHull2D({Vec2{1, 1}, Vec2{1, 1}, Vec2{1, 1}});
  EXPECT_EQ(hull.size(), 1u);
}

TEST(ConvexHull2DTest, CollinearPointsBecomeSegment) {
  const std::vector<Vec2> hull =
      ConvexHull2D({Vec2{0, 0}, Vec2{1, 1}, Vec2{2, 2}, Vec2{3, 3}});
  ASSERT_EQ(hull.size(), 2u);
  EXPECT_TRUE(PointInConvexPolygon(hull, Vec2{1.5, 1.5}, 1e-9));
  EXPECT_FALSE(PointInConvexPolygon(hull, Vec2{1.5, 1.6}, 1e-3));
}

TEST(ConvexHull2DTest, InteriorCollinearBoundaryPointsDropped) {
  const std::vector<Vec2> hull = ConvexHull2D(
      {Vec2{0, 0}, Vec2{2, 0}, Vec2{4, 0}, Vec2{4, 4}, Vec2{0, 4}});
  EXPECT_EQ(hull.size(), 4u);  // (2,0) is on an edge, not a vertex.
}

TEST(PointInConvexPolygonTest, BoundaryIsInside) {
  const std::vector<Vec2> hull =
      ConvexHull2D({Vec2{0, 0}, Vec2{4, 0}, Vec2{4, 4}, Vec2{0, 4}});
  EXPECT_TRUE(PointInConvexPolygon(hull, Vec2{2, 0}, 1e-9));
  EXPECT_TRUE(PointInConvexPolygon(hull, Vec2{0, 0}, 1e-9));
  EXPECT_TRUE(PointInConvexPolygon(hull, Vec2{2, 2}, 1e-9));
  EXPECT_FALSE(PointInConvexPolygon(hull, Vec2{2, -0.01}, 1e-6));
  EXPECT_FALSE(PointInConvexPolygon(hull, Vec2{4.01, 2}, 1e-6));
}

TEST(ConvexHull2DTest, HullContainsAllInputsProperty) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Vec2> points;
    for (int i = 0; i < 50; ++i) {
      points.push_back(Vec2{rng.UniformDouble(-10, 10),
                            rng.UniformDouble(-10, 10)});
    }
    const std::vector<Vec2> hull = ConvexHull2D(points);
    for (const Vec2& p : points) {
      EXPECT_TRUE(PointInConvexPolygon(hull, p, 1e-7)) << trial;
    }
  }
}

// ----------------------------------------------------------- 3-D hulls --

std::vector<Vec3> UnitCubeCorners() {
  std::vector<Vec3> corners;
  for (int x = 0; x <= 1; ++x) {
    for (int y = 0; y <= 1; ++y) {
      for (int z = 0; z <= 1; ++z) {
        corners.push_back(Vec3(x, y, z));
      }
    }
  }
  return corners;
}

TEST(ConvexHull3DTest, TetrahedronHasFourFacets) {
  const std::vector<Vec3> points = {Vec3(0, 0, 0), Vec3(1, 0, 0),
                                    Vec3(0, 1, 0), Vec3(0, 0, 1)};
  const Hull3D hull = ConvexHull3D(points);
  EXPECT_EQ(hull.facets.size(), 4u);
  EXPECT_EQ(hull.vertex_indices.size(), 4u);
  EXPECT_NEAR(Hull3DVolume(hull, points), 1.0 / 6.0, 1e-9);
}

TEST(ConvexHull3DTest, CubeHull) {
  const std::vector<Vec3> points = UnitCubeCorners();
  const Hull3D hull = ConvexHull3D(points);
  EXPECT_EQ(hull.vertex_indices.size(), 8u);
  EXPECT_NEAR(Hull3DVolume(hull, points), 1.0, 1e-9);
  EXPECT_TRUE(PointInHull3D(hull, Vec3(0.5, 0.5, 0.5), 1e-9));
  EXPECT_TRUE(PointInHull3D(hull, Vec3(0, 0.5, 0.5), 1e-9));  // Face point.
  EXPECT_FALSE(PointInHull3D(hull, Vec3(1.01, 0.5, 0.5), 1e-6));
}

TEST(ConvexHull3DTest, InteriorPointsNotVertices) {
  std::vector<Vec3> points = UnitCubeCorners();
  points.push_back(Vec3(0.5, 0.5, 0.5));
  points.push_back(Vec3(0.25, 0.25, 0.25));
  const Hull3D hull = ConvexHull3D(points);
  EXPECT_EQ(hull.vertex_indices.size(), 8u);
}

TEST(ConvexHull3DTest, HullContainsAllInputsProperty) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Vec3> points;
    for (int i = 0; i < 60; ++i) {
      points.push_back(Vec3(rng.UniformDouble(-5, 5),
                            rng.UniformDouble(-5, 5),
                            rng.UniformDouble(-5, 5)));
    }
    const Hull3D hull = ConvexHull3D(points);
    for (const Vec3& p : points) {
      EXPECT_TRUE(PointInHull3D(hull, p, 1e-6)) << trial;
    }
    // Outward orientation: far-away points are outside.
    EXPECT_FALSE(PointInHull3D(hull, Vec3(100, 100, 100), 1e-6));
  }
}

TEST(ConvexHull3DTest, FacetsAreConsistentlyOutward) {
  const std::vector<Vec3> points = UnitCubeCorners();
  const Hull3D hull = ConvexHull3D(points);
  const Vec3 center(0.5, 0.5, 0.5);
  for (const HullFacet& facet : hull.facets) {
    EXPECT_LT(facet.SignedDistance(center), 0.0);
  }
}

// ----------------------------------------------------- Hull (any rank) --

TEST(HullTest, SinglePointHull) {
  const Hull hull = Hull::Build({Vec3(3, 4, 0)}, 2);
  EXPECT_EQ(hull.affine_rank(), 0);
  EXPECT_TRUE(hull.Contains(Vec3(3, 4, 0)));
  EXPECT_FALSE(hull.Contains(Vec3(3, 5, 0)));
  EXPECT_DOUBLE_EQ(hull.Measure(), 0.0);
}

TEST(HullTest, SegmentHull) {
  const Hull hull = Hull::Build({Vec3(0, 0, 0), Vec3(4, 4, 0),
                                 Vec3(2, 2, 0)},
                                2);
  EXPECT_EQ(hull.affine_rank(), 1);
  EXPECT_EQ(hull.vertices().size(), 2u);
  EXPECT_TRUE(hull.Contains(Vec3(1, 1, 0)));
  EXPECT_FALSE(hull.Contains(Vec3(1, 2, 0)));
  EXPECT_NEAR(hull.Measure(), std::sqrt(32.0), 1e-9);
}

TEST(HullTest, PolygonHull) {
  const Hull hull = Hull::Build(
      {Vec3(0, 0, 0), Vec3(4, 0, 0), Vec3(4, 4, 0), Vec3(0, 4, 0),
       Vec3(2, 2, 0)},
      2);
  EXPECT_EQ(hull.affine_rank(), 2);
  EXPECT_EQ(hull.vertices().size(), 4u);
  EXPECT_TRUE(hull.Contains(Vec3(2, 2, 0)));
  EXPECT_TRUE(hull.Contains(Vec3(4, 4, 0)));
  EXPECT_FALSE(hull.Contains(Vec3(5, 2, 0)));
  EXPECT_NEAR(hull.Measure(), 16.0, 1e-9);
  EXPECT_NEAR(Distance(hull.centroid(), Vec3(2, 2, 0)), 0.0, 1e-9);
}

TEST(HullTest, FullRank3DHull) {
  std::vector<Vec3> points = UnitCubeCorners();
  for (Vec3& p : points) {
    p = p * 4.0;
  }
  const Hull hull = Hull::Build(points, 3);
  EXPECT_EQ(hull.affine_rank(), 3);
  EXPECT_TRUE(hull.Contains(Vec3(2, 2, 2)));
  EXPECT_FALSE(hull.Contains(Vec3(2, 2, 4.1)));
  EXPECT_NEAR(hull.Measure(), 64.0, 1e-6);
}

TEST(HullTest, PlanarPointsIn3DAreRankTwo) {
  // A plane z = 2 inside a rank-3 ambient space.
  std::vector<Vec3> points;
  for (int x = 0; x <= 3; ++x) {
    for (int y = 0; y <= 3; ++y) {
      points.push_back(Vec3(x, y, 2));
    }
  }
  const Hull hull = Hull::Build(points, 3);
  EXPECT_EQ(hull.affine_rank(), 2);
  EXPECT_TRUE(hull.Contains(Vec3(1.5, 1.5, 2)));
  EXPECT_FALSE(hull.Contains(Vec3(1.5, 1.5, 2.5)));
}

TEST(HullTest, CollinearPointsIn3DAreRankOne) {
  const Hull hull = Hull::Build(
      {Vec3(0, 0, 0), Vec3(1, 2, 3), Vec3(2, 4, 6), Vec3(3, 6, 9)}, 3);
  EXPECT_EQ(hull.affine_rank(), 1);
  EXPECT_TRUE(hull.Contains(Vec3(1.5, 3, 4.5)));
  EXPECT_FALSE(hull.Contains(Vec3(1.5, 3, 5)));
}

TEST(HullTest, RankOneAmbient) {
  const Hull hull = Hull::Build({Vec3(2, 0, 0), Vec3(9, 0, 0)}, 1);
  EXPECT_EQ(hull.affine_rank(), 1);
  EXPECT_TRUE(hull.Contains(Vec3(5, 0, 0)));
  EXPECT_FALSE(hull.Contains(Vec3(1, 0, 0)));
}

TEST(HullTest, FromIndices) {
  const Hull hull =
      Hull::FromIndices({Index{0, 0}, Index{4, 0}, Index{0, 4}}, 2);
  EXPECT_TRUE(hull.ContainsIndex(Index{1, 1}));
  EXPECT_FALSE(hull.ContainsIndex(Index{3, 3}));
}

class HullContainmentPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HullContainmentPropertyTest, HullContainsItsInputPoints) {
  const int rank = GetParam();
  Rng rng(100 + static_cast<uint64_t>(rank));
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<Vec3> points;
    const int count = static_cast<int>(rng.UniformInt(1, 40));
    for (int i = 0; i < count; ++i) {
      Vec3 p;
      for (int d = 0; d < rank; ++d) {
        p[d] = static_cast<double>(rng.UniformInt(0, 20));
      }
      points.push_back(p);
    }
    const Hull hull = Hull::Build(points, rank);
    for (const Vec3& p : points) {
      EXPECT_TRUE(hull.Contains(p, 1e-6))
          << "rank=" << rank << " trial=" << trial << " p=" << p;
    }
  }
}

TEST_P(HullContainmentPropertyTest, MergedHullContainsBothVertexSets) {
  const int rank = GetParam();
  Rng rng(200 + static_cast<uint64_t>(rank));
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Vec3> a_points;
    std::vector<Vec3> b_points;
    for (int i = 0; i < 15; ++i) {
      Vec3 pa, pb;
      for (int d = 0; d < rank; ++d) {
        pa[d] = static_cast<double>(rng.UniformInt(0, 10));
        pb[d] = static_cast<double>(rng.UniformInt(8, 20));
      }
      a_points.push_back(pa);
      b_points.push_back(pb);
    }
    const Hull a = Hull::Build(a_points, rank);
    const Hull b = Hull::Build(b_points, rank);
    std::vector<Vec3> merged_points = a.vertices();
    merged_points.insert(merged_points.end(), b.vertices().begin(),
                         b.vertices().end());
    const Hull merged = Hull::Build(merged_points, rank);
    // The merge of two hulls contains every original point — the paper's
    // claim that merging vertex sets equals hulling the underlying points.
    for (const Vec3& p : a_points) {
      EXPECT_TRUE(merged.Contains(p, 1e-6)) << "rank=" << rank;
    }
    for (const Vec3& p : b_points) {
      EXPECT_TRUE(merged.Contains(p, 1e-6)) << "rank=" << rank;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, HullContainmentPropertyTest,
                         ::testing::Values(1, 2, 3));

TEST(HullTest, CentroidAndVertexDistance) {
  const Hull a = Hull::Build({Vec3(0, 0, 0), Vec3(2, 0, 0), Vec3(0, 2, 0),
                              Vec3(2, 2, 0)},
                             2);
  const Hull b = Hull::Build({Vec3(10, 0, 0), Vec3(12, 0, 0),
                              Vec3(10, 2, 0), Vec3(12, 2, 0)},
                             2);
  EXPECT_DOUBLE_EQ(a.CentroidDistance(b), 10.0);
  EXPECT_DOUBLE_EQ(a.MinVertexDistance(b), 8.0);
  EXPECT_DOUBLE_EQ(a.MinVertexDistance(a), 0.0);
}

TEST(HullTest, RasterizeSquare) {
  const Hull hull = Hull::Build(
      {Vec3(1, 1, 0), Vec3(3, 1, 0), Vec3(1, 3, 0), Vec3(3, 3, 0)}, 2);
  IndexSet raster(Shape{8, 8});
  hull.RasterizeInto(&raster);
  EXPECT_EQ(raster.size(), 9u);  // 3x3 integer points.
  EXPECT_TRUE(raster.Contains(Index{2, 2}));
  EXPECT_TRUE(raster.Contains(Index{1, 3}));
  EXPECT_FALSE(raster.Contains(Index{0, 0}));
}

TEST(HullTest, RasterizeClipsToShape) {
  const Hull hull = Hull::Build(
      {Vec3(-5, -5, 0), Vec3(20, -5, 0), Vec3(-5, 20, 0), Vec3(20, 20, 0)},
      2);
  IndexSet raster(Shape{4, 4});
  hull.RasterizeInto(&raster);
  EXPECT_EQ(raster.size(), 16u);
}

TEST(HullTest, RasterizeSegment) {
  const Hull hull = Hull::Build({Vec3(0, 0, 0), Vec3(3, 3, 0)}, 2);
  IndexSet raster(Shape{8, 8});
  hull.RasterizeInto(&raster);
  EXPECT_EQ(raster.size(), 4u);  // (0,0) (1,1) (2,2) (3,3).
}

TEST(HullTest, Rasterize3DBox) {
  std::vector<Vec3> corners;
  for (int x : {0, 2}) {
    for (int y : {0, 2}) {
      for (int z : {0, 2}) {
        corners.push_back(Vec3(x, y, z));
      }
    }
  }
  const Hull hull = Hull::Build(corners, 3);
  IndexSet raster(Shape{4, 4, 4});
  hull.RasterizeInto(&raster);
  EXPECT_EQ(raster.size(), 27u);
  EXPECT_EQ(hull.CountIntegerPoints(Shape{4, 4, 4}), 27);
}

TEST(HullTest, RasterizeContainsIntegerInputsProperty) {
  Rng rng(33);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Index> indices;
    IndexSet raster(Shape{24, 24});
    for (int i = 0; i < 20; ++i) {
      indices.push_back(Index{rng.UniformInt(0, 23), rng.UniformInt(0, 23)});
    }
    const Hull hull = Hull::FromIndices(indices, 2);
    hull.RasterizeInto(&raster);
    for (const Index& index : indices) {
      EXPECT_TRUE(raster.Contains(index)) << index << " trial=" << trial;
    }
  }
}

TEST(HullTest, IntegerBounds) {
  const Hull hull = Hull::Build({Vec3(1.2, 2.8, 0), Vec3(5.9, 7.1, 0)}, 2);
  int64_t lo[3];
  int64_t hi[3];
  hull.IntegerBounds(lo, hi);
  EXPECT_EQ(lo[0], 1);
  EXPECT_EQ(hi[0], 6);
  EXPECT_EQ(lo[1], 2);
  EXPECT_EQ(hi[1], 8);
}

}  // namespace
}  // namespace kondo
