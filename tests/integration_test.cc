// End-to-end integration tests: the full container debloating story of
// Fig. 2 / Fig. 3, from a container specification through audited fuzzing,
// carving, packaging, and user-end replay.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "array/data_array.h"
#include "array/debloated_array.h"
#include "array/kdf_file.h"
#include "core/container_spec.h"
#include "core/debloat_test.h"
#include "core/kondo.h"
#include "core/metrics.h"
#include "core/runtime.h"
#include "workloads/registry.h"

namespace kondo {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(IntegrationTest, FullContainerDebloatStory) {
  // 1. Alice's container spec advertises the program and Θ.
  constexpr char kSpec[] = R"(
FROM ubuntu:20.04
ADD ./grid.kdf /app/grid.kdf
PARAM [0-63, 0-63]
ENTRYPOINT ["/app/CS"]
CMD [1, 2, /app/grid.kdf]
)";
  StatusOr<ContainerSpec> spec = ParseContainerSpec(kSpec);
  ASSERT_TRUE(spec.ok());

  // 2. The data dependency is built as a real KDF file.
  std::unique_ptr<Program> program = CreateProgram("CS", 64);
  DataArray array(program->data_shape(), DType::kFloat128);
  array.FillPattern(123);
  const std::string data_path = TempPath("grid.kdf");
  ASSERT_TRUE(WriteKdfFile(data_path, array).ok());

  // 3. Kondo runs fully audited debloat tests over the spec's Θ.
  ASSERT_EQ(spec->params.num_params(), 2);
  KondoConfig config;
  config.fuzz.max_iter = 800;
  config.rng_seed = 3;
  KondoPipeline pipeline(config);
  const KondoResult result = pipeline.RunWithTest(
      MakeAuditedDebloatTest(*program, data_path), spec->params,
      program->data_shape());
  const AccuracyMetrics metrics =
      ComputeAccuracy(program->GroundTruth(), result.approx);
  EXPECT_GT(metrics.recall, 0.9);

  // 4. The debloated payload replaces the original data file.
  DebloatedArray debloated = PackageDebloated(array, result.approx);
  EXPECT_GT(debloated.SizeReductionFraction(), 0.2);
  const std::string debloated_path = TempPath("grid.kdd");
  ASSERT_TRUE(debloated.WriteFile(debloated_path).ok());

  // 5. Bob's runtime recreates D_Θ and replays the advertised CMD run.
  //    Recall may be fractionally below 1 (§V-D1 reports 0.0%-0.8% of
  //    valuations seeing a missed access); any miss must surface as the
  //    data-missing exception, never as silent wrong data.
  StatusOr<DebloatedArray> shipped = DebloatedArray::ReadFile(debloated_path);
  ASSERT_TRUE(shipped.ok());
  DebloatRuntime runtime(*std::move(shipped));
  const Status replay = runtime.ReplayRun(*program, {1.0, 2.0});
  if (!replay.ok()) {
    EXPECT_EQ(replay.code(), StatusCode::kDataMissing);
  }
  EXPECT_LE(runtime.stats().misses, runtime.stats().reads / 20);

  // 6. Every retained read returns the original value (Definition 1:
  //    identical program states on D and D_Θ wherever data is present).
  bool values_match = true;
  program->Execute({1.0, 2.0}, [&](const Index& index) {
    StatusOr<double> value = runtime.Read(index);
    if (value.ok() && *value != array.At(index)) {
      values_match = false;
    }
  });
  EXPECT_TRUE(values_match);
}

TEST(IntegrationTest, MissedAccessRateIsLowAcrossTableTwo) {
  // Section V-D1: between 0.0% and 0.8% of valuations see a missed access.
  // We assert a slightly looser bound per program on default configs.
  for (const std::string& name :
       {std::string("CS"), std::string("LDC"), std::string("PRL")}) {
    std::unique_ptr<Program> program = CreateProgram(name);
    KondoConfig config;
    config.rng_seed = 5;
    const KondoResult result = KondoPipeline(config).Run(*program);
    const MissedAccessStats stats = ComputeMissedValuations(
        *program, result.approx, /*max_exhaustive=*/20000,
        /*sample_size=*/5000);
    EXPECT_LT(stats.missed_fraction, 0.05) << name;
  }
}

TEST(IntegrationTest, DebloatedReplayFailsLoudlyOutsideTheta) {
  // A user running a valuation outside the advertised Θ semantics (here: a
  // region Kondo never saw because the creator's Θ excluded it) gets the
  // data-missing exception rather than silent wrong data.
  std::unique_ptr<Program> full = CreateProgram("PRL", 64);
  // Creator advertises only ring extents up to 16 — a sub-space of the
  // program's full extent range [8, 31]. Rings beyond 16 are never fuzzed,
  // so their indices are absent from the carved subset.
  const ParamSpace narrow_theta{ParamRange{8, 16, true},
                                ParamRange{8, 16, true}};
  KondoConfig config;
  config.rng_seed = 7;
  const KondoResult result = KondoPipeline(config).RunWithTest(
      MakeDebloatTest(*full), narrow_theta, full->data_shape());

  DataArray array(full->data_shape(), DType::kFloat64);
  DebloatRuntime runtime(PackageDebloated(array, result.approx));
  // In-Θ replay works.
  EXPECT_TRUE(runtime.ReplayRun(*full, {10.0, 12.0}).ok());
  // Out-of-Θ replay (ring extent 28 ⇒ reads far outside the carved frame)
  // must raise data-missing.
  const Status status = runtime.ReplayRun(*full, {28.0, 28.0});
  EXPECT_EQ(status.code(), StatusCode::kDataMissing);
}

TEST(IntegrationTest, ChunkedFileAuditedPipeline) {
  std::unique_ptr<Program> program = CreateProgram("LDC", 32);
  DataArray array(program->data_shape(), DType::kFloat64);
  array.FillPattern(5);
  const std::string path = TempPath("chunked_ldc.kdf");
  ASSERT_TRUE(WriteKdfFile(path, array, LayoutKind::kChunked, {8, 8}).ok());

  KondoConfig config;
  config.fuzz.max_iter = 600;
  config.rng_seed = 11;
  const KondoResult result = KondoPipeline(config).RunWithTest(
      MakeAuditedDebloatTest(*program, path), program->param_space(),
      program->data_shape());
  const AccuracyMetrics metrics =
      ComputeAccuracy(program->GroundTruth(), result.approx);
  EXPECT_GT(metrics.recall, 0.9);
  EXPECT_DOUBLE_EQ(metrics.precision, 1.0);
}

TEST(IntegrationTest, SimpleConvexBaselineHasWorsePrecisionOnLdc) {
  // Fig. 8's SC column: a single hull bridges LDC's two blocks.
  std::unique_ptr<Program> program = CreateProgram("LDC");
  KondoConfig config;
  config.rng_seed = 13;
  const KondoResult kondo = KondoPipeline(config).Run(*program);
  const IndexSet sc_approx =
      SimpleConvexCarve(kondo.fuzz.discovered).Rasterize();
  const double kondo_precision =
      ComputeAccuracy(program->GroundTruth(), kondo.approx).precision;
  const double sc_precision =
      ComputeAccuracy(program->GroundTruth(), sc_approx).precision;
  EXPECT_GT(kondo_precision, sc_precision + 0.2);
}

}  // namespace
}  // namespace kondo
