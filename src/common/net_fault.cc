#include "common/net_fault.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"

namespace kondo {

namespace {

constexpr char kInjectedDrop[] = "injected connection drop";

}  // namespace

/// A Connection decorator that forwards IO to the wrapped connection until
/// its scheduled drop point, then fails every later operation. Single
/// owner-thread use, like the connection it wraps.
class FaultInjectingConnection : public Connection {
 public:
  FaultInjectingConnection(FaultInjectingNetEnv* env,
                           std::unique_ptr<Connection> base, bool faulted,
                           int64_t drop_after_writes,
                           int64_t short_frame_bytes)
      : env_(env),
        base_(std::move(base)),
        faulted_(faulted),
        drop_after_writes_(drop_after_writes),
        short_frame_bytes_(short_frame_bytes) {}

  Status WriteFully(const void* data, size_t size) override {
    if (dropped_) {
      return DataLossError(kInjectedDrop);
    }
    if (faulted_ && writes_ == drop_after_writes_) {
      // The drop fires on this write: transmit the scheduled prefix (a
      // torn frame on the peer's wire) and half-close so the peer's next
      // read sees EOF or a short frame — exactly what a worker killed
      // mid-send leaves behind.
      const size_t prefix = static_cast<size_t>(
          std::min<int64_t>(short_frame_bytes_,
                            static_cast<int64_t>(size)));
      if (prefix > 0) {
        (void)base_->WriteFully(data, prefix);
      }
      base_->ShutdownWrite();
      dropped_ = true;
      env_->RecordFault();
      return DataLossError(kInjectedDrop);
    }
    ++writes_;
    return base_->WriteFully(data, size);
  }

  Status ReadFully(void* data, size_t size) override {
    if (dropped_) {
      return DataLossError(kInjectedDrop);
    }
    return base_->ReadFully(data, size);
  }

  Status SetRecvTimeout(int64_t micros) override {
    return base_->SetRecvTimeout(micros);
  }

  void ShutdownRead() override { base_->ShutdownRead(); }
  void ShutdownWrite() override { base_->ShutdownWrite(); }

 private:
  FaultInjectingNetEnv* const env_;
  const std::unique_ptr<Connection> base_;
  const bool faulted_;
  const int64_t drop_after_writes_;
  const int64_t short_frame_bytes_;
  int64_t writes_ = 0;
  bool dropped_ = false;
};

/// Wraps every accepted connection through the env's fault schedule.
class FaultInjectingListenSocket : public ListenSocket {
 public:
  FaultInjectingListenSocket(FaultInjectingNetEnv* env,
                             std::unique_ptr<ListenSocket> base)
      : ListenSocket(base->address()), env_(env), base_(std::move(base)) {}

  StatusOr<std::unique_ptr<Connection>> Accept() override {
    KONDO_ASSIGN_OR_RETURN(std::unique_ptr<Connection> conn,
                           base_->Accept());
    return env_->Wrap(std::move(conn));
  }

  void Shutdown() override { base_->Shutdown(); }

 private:
  FaultInjectingNetEnv* const env_;
  const std::unique_ptr<ListenSocket> base_;
};

FaultInjectingNetEnv::FaultInjectingNetEnv(NetEnv* base,
                                           const NetFaultPlan& plan)
    : base_(base), plan_(plan) {}

StatusOr<std::unique_ptr<ListenSocket>> FaultInjectingNetEnv::Listen(
    const SocketAddress& address) {
  KONDO_ASSIGN_OR_RETURN(std::unique_ptr<ListenSocket> listener,
                         base_->Listen(address));
  return std::unique_ptr<ListenSocket>(
      new FaultInjectingListenSocket(this, std::move(listener)));
}

StatusOr<std::unique_ptr<Connection>> FaultInjectingNetEnv::Connect(
    const SocketAddress& address) {
  KONDO_ASSIGN_OR_RETURN(std::unique_ptr<Connection> conn,
                         base_->Connect(address));
  return Wrap(std::move(conn));
}

std::unique_ptr<Connection> FaultInjectingNetEnv::Wrap(
    std::unique_ptr<Connection> conn) {
  int64_t ordinal = 0;
  {
    MutexLock lock(mu_);
    ordinal = connections_++;
  }
  const bool faulted = plan_.drop_connection == ordinal;
  return std::make_unique<FaultInjectingConnection>(
      this, std::move(conn), faulted, plan_.drop_after_writes,
      plan_.short_frame_bytes);
}

void FaultInjectingNetEnv::RecordFault() {
  MutexLock lock(mu_);
  ++faults_;
}

int64_t FaultInjectingNetEnv::connections() const {
  MutexLock lock(mu_);
  return connections_;
}

int64_t FaultInjectingNetEnv::faults_injected() const {
  MutexLock lock(mu_);
  return faults_;
}

bool IsInjectedNetFault(const Status& status) {
  return !status.ok() &&
         status.message().find(kInjectedDrop) != std::string::npos;
}

}  // namespace kondo
