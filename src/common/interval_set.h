#ifndef KONDO_COMMON_INTERVAL_SET_H_
#define KONDO_COMMON_INTERVAL_SET_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace kondo {

/// A half-open byte/index interval [begin, end).
struct Interval {
  int64_t begin = 0;
  int64_t end = 0;

  int64_t length() const { return end - begin; }
  bool empty() const { return end <= begin; }
  bool Contains(int64_t x) const { return begin <= x && x < end; }
  bool Overlaps(const Interval& other) const {
    return begin < other.end && other.begin < end;
  }
  /// True when the intervals overlap or touch (can be coalesced).
  bool Touches(const Interval& other) const {
    return begin <= other.end && other.begin <= end;
  }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

std::ostream& operator<<(std::ostream& os, const Interval& interval);

/// An ordered set of disjoint half-open intervals with automatic coalescing.
///
/// The audit layer uses `IntervalSet` to merge overlapping I/O events into
/// accessed offset ranges; the paper's worked example (events
/// e1(0,110), e2(70,30), e3(130,20), e4(90,30)) coalesces to
/// [0,120) and [130,150).
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Inserts [begin, end); overlapping or adjacent intervals are coalesced.
  /// Empty intervals are ignored.
  void Add(int64_t begin, int64_t end);
  void Add(const Interval& interval) { Add(interval.begin, interval.end); }

  /// Adds every interval of `other`.
  void Union(const IntervalSet& other);

  /// True if `x` lies inside some interval.
  bool Contains(int64_t x) const;

  /// True if [begin, end) is fully covered.
  bool ContainsRange(int64_t begin, int64_t end) const;

  /// True if [begin, end) overlaps any interval.
  bool Intersects(int64_t begin, int64_t end) const;

  /// Number of disjoint intervals.
  size_t size() const { return intervals_.size(); }
  bool empty() const { return intervals_.empty(); }

  /// Total covered length (sum of interval lengths).
  int64_t TotalLength() const;

  /// Returns the disjoint intervals in increasing order.
  std::vector<Interval> ToIntervals() const;

  /// Renders e.g. "[0,120) [130,150)".
  std::string ToString() const;

  friend bool operator==(const IntervalSet& a, const IntervalSet& b) {
    return a.intervals_ == b.intervals_;
  }

 private:
  // Maps interval begin -> end. Invariant: entries are disjoint and
  // non-adjacent (gap of at least 1 between consecutive intervals).
  std::map<int64_t, int64_t> intervals_;
};

}  // namespace kondo

#endif  // KONDO_COMMON_INTERVAL_SET_H_
