#ifndef KONDO_COMMON_STATUS_H_
#define KONDO_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace kondo {

/// Canonical error codes, modelled after the Abseil/Google canonical space
/// plus one Kondo-specific code: `kDataMissing`, raised by the debloat
/// runtime when an access falls outside the carved subset `D_Θ`
/// (Section III of the paper).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kResourceExhausted = 8,
  kDataLoss = 9,
  kDataMissing = 10,
};

/// Returns a stable human-readable name for `code` (e.g. "INVALID_ARGUMENT").
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result type. Kondo does not use C++
/// exceptions; every fallible operation returns `Status` or `StatusOr<T>`.
///
/// `[[nodiscard]]` at class level: silently dropping a Status — an IO
/// writer's short-write, a failed manifest save — is exactly the bug class
/// kondo-lint rule R3 exists for, and the compiler is the first line of
/// defence. Deliberate discards must be spelled `(void)expr` with a
/// `// kondo-lint: allow(R3) <reason>` justification.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with `code` and a diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "CODE: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Factory helpers mirroring absl::*Error.
Status OkStatus();
Status InvalidArgumentError(std::string_view message);
Status NotFoundError(std::string_view message);
Status AlreadyExistsError(std::string_view message);
Status OutOfRangeError(std::string_view message);
Status FailedPreconditionError(std::string_view message);
Status InternalError(std::string_view message);
Status UnimplementedError(std::string_view message);
Status ResourceExhaustedError(std::string_view message);
Status DataLossError(std::string_view message);
/// The paper's "data missing" exception: an access hit a Null region of the
/// debloated array.
Status DataMissingError(std::string_view message);

}  // namespace kondo

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define KONDO_RETURN_IF_ERROR(expr)                     \
  do {                                                  \
    ::kondo::Status kondo_status_macro_tmp = (expr);    \
    if (!kondo_status_macro_tmp.ok()) {                 \
      return kondo_status_macro_tmp;                    \
    }                                                   \
  } while (false)

#endif  // KONDO_COMMON_STATUS_H_
