#ifndef KONDO_COMMON_THREAD_ANNOTATIONS_H_
#define KONDO_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

/// Clang thread-safety annotations (https://clang.llvm.org/docs/
/// ThreadSafetyAnalysis.html) behind Kondo-prefixed macros, plus annotated
/// drop-in wrappers around the standard synchronisation primitives.
///
/// Why this exists: the repo's headline guarantee is bit-identical replay at
/// any --jobs/--shards, which only holds while every shared mutable field is
/// reached under its lock. `-Wthread-safety` proves that statically — but
/// only when mutexes are *capabilities* the analysis can see. `std::mutex`
/// carries no capability attributes, so Kondo code uses `kondo::Mutex`,
/// `kondo::MutexLock`, and `kondo::CondVar` below; on GCC (and any compiler
/// without the attributes) every macro expands to nothing and the wrappers
/// compile to exactly the std primitives they hold.
///
/// kondo-lint rule R4 enforces adoption: a class declaring a mutex member
/// must annotate what that mutex guards (see docs/STATIC_ANALYSIS.md).

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define KONDO_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef KONDO_THREAD_ANNOTATION_
#define KONDO_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Field annotation: reads and writes require holding `x`.
#define KONDO_GUARDED_BY(x) KONDO_THREAD_ANNOTATION_(guarded_by(x))
/// Pointer field annotation: the *pointee* is guarded by `x`.
#define KONDO_PT_GUARDED_BY(x) KONDO_THREAD_ANNOTATION_(pt_guarded_by(x))
/// Function annotation: caller must hold `...` for the duration of the call.
#define KONDO_REQUIRES(...) \
  KONDO_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/// Function annotation: caller must NOT hold `...` (the function acquires it).
#define KONDO_EXCLUDES(...) \
  KONDO_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Function annotation: acquires `...` and holds it on return.
#define KONDO_ACQUIRE(...) \
  KONDO_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
/// Function annotation: releases `...` (held on entry).
#define KONDO_RELEASE(...) \
  KONDO_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
/// Type annotation: this type is a lockable capability named in diagnostics.
#define KONDO_CAPABILITY(x) KONDO_THREAD_ANNOTATION_(capability(x))
/// Type annotation: RAII type that holds a capability for its lifetime.
#define KONDO_SCOPED_CAPABILITY KONDO_THREAD_ANNOTATION_(scoped_lockable)
/// Function annotation: returns the mutex guarding this object.
#define KONDO_RETURN_CAPABILITY(x) \
  KONDO_THREAD_ANNOTATION_(lock_returned(x))
/// Escape hatch for code the analysis cannot model; use with a comment.
#define KONDO_NO_THREAD_SAFETY_ANALYSIS \
  KONDO_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace kondo {

/// `std::mutex` as a Clang capability. Identical layout and cost; the only
/// addition is the attribute set that lets `-Wthread-safety` track it.
class KONDO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() KONDO_ACQUIRE() { mu_.lock(); }
  void Unlock() KONDO_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over `Mutex` — the annotated equivalent of
/// `std::lock_guard<std::mutex>`.
class KONDO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) KONDO_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() KONDO_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to `Mutex`. `Wait` must be called with the mutex
/// held (enforced by the analysis); it atomically releases while blocked and
/// re-acquires before returning, like `std::condition_variable::wait`.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// No predicate overload on purpose: a predicate lambda reads guarded
  /// state from a context the analysis treats as a separate function, which
  /// defeats the point. Write the standard `while (!cond) cv.Wait(mu);`
  /// loop inside the locked scope instead — the analysis verifies it.
  void Wait(Mutex& mu) KONDO_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // The caller's scope still owns the re-acquired mutex.
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace kondo

#endif  // KONDO_COMMON_THREAD_ANNOTATIONS_H_
