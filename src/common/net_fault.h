#ifndef KONDO_COMMON_NET_FAULT_H_
#define KONDO_COMMON_NET_FAULT_H_

#include <cstdint>
#include <memory>

#include "common/socket.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"

namespace kondo {

/// Deterministic fault schedule for a FaultInjectingNetEnv — the wire
/// counterpart of FaultPlan (common/env.h). Operation indices count the
/// *writes* a faulted connection performs, in per-connection order, so a
/// schedule keyed on (connection ordinal, write index) replays identically
/// regardless of how sessions interleave.
struct NetFaultPlan {
  /// Reserved for probabilistic schedules; deterministic drop/short-frame
  /// points below do not consume it.
  uint64_t seed = 1;

  /// Drop connection ordinal `drop_connection` (0-based, counted across
  /// Connect() and Accept() on the faulted env) after it completes
  /// `drop_after_writes` writes: every later write and read on it fails
  /// with an "injected connection drop" kDataLoss and the write side is
  /// shut down so the peer observes EOF. -1 = never.
  int64_t drop_connection = -1;
  int64_t drop_after_writes = 0;

  /// On the dropped write (requires drop_connection >= 0), transmit only
  /// the first `short_frame_bytes` bytes before shutting down — a torn
  /// frame on the peer's wire instead of a clean EOF. 0 = drop cleanly.
  int64_t short_frame_bytes = 0;
};

/// A NetEnv decorator that deterministically injects connection drops and
/// short (torn) frames per a NetFaultPlan, mirroring FaultInjectingEnv's
/// role for artifact IO. Both Connect()ed and Accept()ed connections are
/// counted and wrapped, so either end of a protocol can be faulted.
class FaultInjectingNetEnv : public NetEnv {
 public:
  FaultInjectingNetEnv(NetEnv* base, const NetFaultPlan& plan);

  StatusOr<std::unique_ptr<ListenSocket>> Listen(
      const SocketAddress& address) override;
  StatusOr<std::unique_ptr<Connection>> Connect(
      const SocketAddress& address) override;

  /// Connections handed out so far (Connect + Accept).
  int64_t connections() const KONDO_EXCLUDES(mu_);

  /// Injected drops delivered so far.
  int64_t faults_injected() const KONDO_EXCLUDES(mu_);

 private:
  friend class FaultInjectingConnection;
  friend class FaultInjectingListenSocket;

  std::unique_ptr<Connection> Wrap(std::unique_ptr<Connection> conn)
      KONDO_EXCLUDES(mu_);
  void RecordFault() KONDO_EXCLUDES(mu_);

  NetEnv* const base_;
  const NetFaultPlan plan_;
  mutable Mutex mu_;
  int64_t connections_ KONDO_GUARDED_BY(mu_) = 0;
  int64_t faults_ KONDO_GUARDED_BY(mu_) = 0;
};

/// True when `status` carries a net-injected fault rather than a real
/// socket failure.
bool IsInjectedNetFault(const Status& status);

}  // namespace kondo

#endif  // KONDO_COMMON_NET_FAULT_H_
