#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace kondo {

std::vector<std::string> StrSplit(std::string_view text, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      break;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      result.append(separator);
    }
    result.append(pieces[i]);
  }
  return result;
}

bool ParseInt64(std::string_view text, int64_t* value) {
  text = StripWhitespace(text);
  if (text.empty()) {
    return false;
  }
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *value);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool ParseDouble(std::string_view text, double* value) {
  text = StripWhitespace(text);
  if (text.empty()) {
    return false;
  }
  // std::from_chars for double is incomplete on some libstdc++ versions;
  // strtod on a NUL-terminated copy is portable.
  std::string copy(text);
  char* end = nullptr;
  *value = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size();
}

}  // namespace kondo
