#include "common/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/strings.h"

namespace kondo {
namespace {

Status ErrnoError(StatusCode code, const std::string& what) {
  return Status(code, StrCat(what, ": ", std::strerror(errno)));
}

}  // namespace

std::string SocketAddress::ToString() const {
  if (is_unix()) {
    return StrCat("unix:", unix_path);
  }
  return StrCat("tcp:127.0.0.1:", port);
}

// ---------------------------------------------------------------------------
// Connection

Connection::~Connection() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status Connection::WriteFully(const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    const ssize_t n = ::send(fd_, p, remaining, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoError(StatusCode::kDataLoss, "socket write");
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  return OkStatus();
}

Status Connection::ReadFully(void* data, size_t size) {
  char* p = static_cast<char*>(data);
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::recv(fd_, p + done, size - done, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired. Distinct from kDataLoss: the stream is not
        // torn, the peer just went silent — the coordinator's straggler
        // signal.
        return ResourceExhaustedError("socket read timed out");
      }
      return ErrnoError(StatusCode::kDataLoss, "socket read");
    }
    if (n == 0) {
      if (done == 0) {
        return OutOfRangeError("connection closed");
      }
      return DataLossError(StrCat("connection closed mid-read: got ", done,
                                  " of ", size, " bytes"));
    }
    done += static_cast<size_t>(n);
  }
  return OkStatus();
}

Status Connection::SetRecvTimeout(int64_t micros) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(micros / 1000000);
  tv.tv_usec = static_cast<suseconds_t>(micros % 1000000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return ErrnoError(StatusCode::kInternal, "setsockopt SO_RCVTIMEO");
  }
  return OkStatus();
}

void Connection::ShutdownRead() { ::shutdown(fd_, SHUT_RD); }

void Connection::ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }

// ---------------------------------------------------------------------------
// ListenSocket

ListenSocket::~ListenSocket() {
  if (fd_ < 0) {
    return;  // A decorator; the wrapped listener owns the descriptor.
  }
  ::close(fd_);
  if (address_.is_unix()) {
    // Remove the socket file so the next server can bind cleanly even
    // without the Listen-side unlink (e.g. under a different umask).
    std::remove(address_.unix_path.c_str());
  }
}

StatusOr<std::unique_ptr<Connection>> ListenSocket::Accept() {
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      return std::make_unique<Connection>(fd);
    }
    if (errno == EINTR) {
      continue;
    }
    // After Shutdown() accept fails (EINVAL on Linux); report it as an
    // orderly close rather than an IO error so accept loops can exit.
    return FailedPreconditionError("listener closed");
  }
}

void ListenSocket::Shutdown() { ::shutdown(fd_, SHUT_RDWR); }

// ---------------------------------------------------------------------------
// NetEnv

namespace {

StatusOr<std::unique_ptr<ListenSocket>> ListenUnix(
    const SocketAddress& address) {
  sockaddr_un sun;
  std::memset(&sun, 0, sizeof(sun));
  sun.sun_family = AF_UNIX;
  if (address.unix_path.size() >= sizeof(sun.sun_path)) {
    return InvalidArgumentError(
        StrCat("unix socket path too long: ", address.unix_path));
  }
  std::memcpy(sun.sun_path, address.unix_path.c_str(),
              address.unix_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoError(StatusCode::kInternal, "socket");
  }
  std::remove(address.unix_path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) != 0) {
    const Status status =
        ErrnoError(StatusCode::kFailedPrecondition,
                   StrCat("bind ", address.unix_path));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    const Status status = ErrnoError(StatusCode::kInternal, "listen");
    ::close(fd);
    return status;
  }
  return std::make_unique<ListenSocket>(fd, address);
}

StatusOr<std::unique_ptr<ListenSocket>> ListenTcp(
    const SocketAddress& address) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoError(StatusCode::kInternal, "socket");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sin;
  std::memset(&sin, 0, sizeof(sin));
  sin.sin_family = AF_INET;
  sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sin.sin_port = htons(static_cast<uint16_t>(address.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) != 0) {
    const Status status = ErrnoError(StatusCode::kFailedPrecondition,
                                     StrCat("bind port ", address.port));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    const Status status = ErrnoError(StatusCode::kInternal, "listen");
    ::close(fd);
    return status;
  }
  // Read back the kernel-assigned port for port 0 binds.
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  SocketAddress resolved = address;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    resolved.port = static_cast<int>(ntohs(bound.sin_port));
  }
  return std::make_unique<ListenSocket>(fd, resolved);
}

class RealNetEnv : public NetEnv {
 public:
  StatusOr<std::unique_ptr<ListenSocket>> Listen(
      const SocketAddress& address) override {
    return address.is_unix() ? ListenUnix(address) : ListenTcp(address);
  }

  StatusOr<std::unique_ptr<Connection>> Connect(
      const SocketAddress& address) override {
    if (address.is_unix()) {
      sockaddr_un sun;
      std::memset(&sun, 0, sizeof(sun));
      sun.sun_family = AF_UNIX;
      if (address.unix_path.size() >= sizeof(sun.sun_path)) {
        return InvalidArgumentError(
            StrCat("unix socket path too long: ", address.unix_path));
      }
      std::memcpy(sun.sun_path, address.unix_path.c_str(),
                  address.unix_path.size() + 1);
      const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) {
        return ErrnoError(StatusCode::kInternal, "socket");
      }
      if (::connect(fd, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) !=
          0) {
        const Status status =
            ErrnoError(StatusCode::kNotFound,
                       StrCat("connect ", address.unix_path));
        ::close(fd);
        return status;
      }
      return std::make_unique<Connection>(fd);
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return ErrnoError(StatusCode::kInternal, "socket");
    }
    sockaddr_in sin;
    std::memset(&sin, 0, sizeof(sin));
    sin.sin_family = AF_INET;
    sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sin.sin_port = htons(static_cast<uint16_t>(address.port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) != 0) {
      const Status status = ErrnoError(
          StatusCode::kNotFound, StrCat("connect 127.0.0.1:", address.port));
      ::close(fd);
      return status;
    }
    return std::make_unique<Connection>(fd);
  }
};

}  // namespace

NetEnv* NetEnv::Default() {
  static RealNetEnv* real = new RealNetEnv;
  return real;
}

}  // namespace kondo
