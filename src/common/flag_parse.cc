#include "common/flag_parse.h"

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace kondo {

std::string TakeFlagValue(std::vector<std::string>* args,
                          const std::string& flag) {
  for (size_t i = 0; i + 1 < args->size(); ++i) {
    if ((*args)[i] == flag) {
      std::string value = (*args)[i + 1];
      args->erase(args->begin() + static_cast<int64_t>(i),
                  args->begin() + static_cast<int64_t>(i) + 2);
      return value;
    }
  }
  return "";
}

bool TakeFlag(std::vector<std::string>* args, const std::string& flag) {
  for (size_t i = 0; i < args->size(); ++i) {
    if ((*args)[i] == flag) {
      args->erase(args->begin() + static_cast<int64_t>(i));
      return true;
    }
  }
  return false;
}

uint64_t SeedFrom(std::vector<std::string>* args) {
  const std::string value = TakeFlagValue(args, "--seed");
  return value.empty() ? 1 : std::strtoull(value.c_str(), nullptr, 10);
}

FlagParse TakePositiveInt(std::vector<std::string>* args,
                          const std::string& flag, int64_t* value) {
  const std::string text = TakeFlagValue(args, flag);
  if (text.empty()) {
    return FlagParse::kAbsent;
  }
  int64_t parsed = 0;
  if (!ParseInt64(text, &parsed) || parsed <= 0) {
    std::fprintf(stderr, "invalid %s value (want a positive integer): %s\n",
                 flag.c_str(), text.c_str());
    return FlagParse::kBad;
  }
  *value = parsed;
  return FlagParse::kOk;
}

bool ParseRange(const std::string& text, int64_t* begin, int64_t* end) {
  const std::vector<std::string> parts = StrSplit(text, ':');
  return parts.size() == 2 && ParseInt64(parts[0], begin) &&
         ParseInt64(parts[1], end) && *begin < *end;
}

}  // namespace kondo
