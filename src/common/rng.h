#ifndef KONDO_COMMON_RNG_H_
#define KONDO_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace kondo {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64). All stochastic components in Kondo (fuzz schedules, the AFL
/// baseline, workload generators) draw from an explicitly seeded `Rng` so
/// every experiment is reproducible from its 64-bit seed.
class Rng {
 public:
  /// Seeds the generator; equal seeds produce identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t NextU64();

  /// Returns a uniformly distributed integer in the closed range [lo, hi].
  /// Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniformly distributed double in the half-open range [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Returns a uniformly distributed double in [0, 1).
  double UniformUnit();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns a standard normal deviate (Marsaglia polar method).
  double Gaussian();

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(
          UniformInt(0, static_cast<int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; useful for spawning one RNG per
  /// repetition without correlated streams.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace kondo

#endif  // KONDO_COMMON_RNG_H_
