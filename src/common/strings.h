#ifndef KONDO_COMMON_STRINGS_H_
#define KONDO_COMMON_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace kondo {

/// Concatenates the stream renderings of its arguments — the error-message
/// workhorse (`StrCat("short write: ", n, " of ", total, " bytes")`).
template <typename... Args>
std::string StrCat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}

/// Splits `text` on `delimiter`, trimming nothing. Empty pieces are kept.
std::vector<std::string> StrSplit(std::string_view text, char delimiter);

/// Returns `text` with leading and trailing ASCII whitespace removed.
std::string_view StripWhitespace(std::string_view text);

/// True when `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Joins `pieces` with `separator`.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view separator);

/// Parses a signed integer; returns false on malformed or trailing input.
bool ParseInt64(std::string_view text, int64_t* value);

/// Parses a double; returns false on malformed or trailing input.
bool ParseDouble(std::string_view text, double* value);

}  // namespace kondo

#endif  // KONDO_COMMON_STRINGS_H_
