#include "common/rng.h"

#include <cmath>

namespace kondo {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo >= hi) {
    return lo;
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t value = NextU64();
  while (value >= limit) {
    value = NextU64();
  }
  return lo + static_cast<int64_t>(value % range);
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformUnit();
}

double Rng::UniformUnit() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return UniformUnit() < p;
}

double Rng::Gaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = UniformDouble(-1.0, 1.0);
    v = UniformDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  have_spare_gaussian_ = true;
  return u * factor;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace kondo
