#ifndef KONDO_COMMON_ENV_H_
#define KONDO_COMMON_ENV_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"

namespace kondo {

/// What a path resolves to, as far as the durability layer cares: regular
/// files get the tmp-rename commit protocol, anything else (character
/// devices like /dev/full, pipes) is written in place.
enum class FileKind {
  kMissing,
  kRegular,
  kOther,
};

/// A sequential append-only output file. All artifact writers go through
/// this interface so a FaultInjectingEnv can interpose short writes,
/// ENOSPC, lost fsyncs, and crash points underneath them.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  /// Appends `size` bytes. A short write is an error (the message names the
  /// path and the wrote/of byte counts).
  virtual Status Append(const void* data, size_t size) = 0;

  /// Pushes buffered bytes to the OS (no durability guarantee).
  virtual Status Flush() = 0;

  /// Flushes and fsyncs: on return, appended bytes survive a crash.
  virtual Status Sync() = 0;

  /// Closes the file. Idempotent; further Appends fail.
  virtual Status Close() = 0;

  const std::string& path() const { return path_; }

 protected:
  explicit WritableFile(std::string path) : path_(std::move(path)) {}

  std::string path_;
};

/// Filesystem access points used by the artifact writers. Production code
/// uses Env::Default() (the real filesystem); tests inject a
/// FaultInjectingEnv. Read paths intentionally stay on plain stdio — fault
/// injection targets the write/commit protocol.
class Env {
 public:
  virtual ~Env() = default;

  /// Creates (truncates) `path` for writing.
  virtual StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Atomically renames `from` onto `to` (POSIX rename semantics).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  /// Removes `path`; removing a missing file is an error.
  virtual Status RemoveFile(const std::string& path) = 0;

  /// Truncates `path` to `size` bytes.
  virtual Status TruncateFile(const std::string& path, int64_t size) = 0;

  /// Best-effort fsync of the directory containing `path`, making a
  /// preceding rename durable.
  virtual Status SyncDirOf(const std::string& path) = 0;

  virtual FileKind GetFileKind(const std::string& path) = 0;

  /// The real-filesystem environment (process-wide singleton).
  static Env* Default();
};

/// Crash-safe artifact commit: writes to `path + ".tmp"`, and on Commit()
/// flushes, fsyncs, closes, and renames the tmp file onto `path` (then
/// fsyncs the directory). A reader therefore only ever observes either the
/// old complete artifact or the new complete artifact — never a torn one.
///
/// Degenerate paths (devices such as /dev/full, FIFOs) are written in
/// place: Commit() is then sync+close with no rename.
///
/// Any Append/Flush failure poisons the file: Commit() refuses to publish
/// a torn artifact and returns an error instead. The destructor discards
/// an uncommitted tmp file.
class AtomicFile {
 public:
  /// `env == nullptr` selects Env::Default().
  static StatusOr<AtomicFile> Create(const std::string& path,
                                     Env* env = nullptr);

  AtomicFile(AtomicFile&& other) noexcept;
  AtomicFile& operator=(AtomicFile&& other) noexcept;
  ~AtomicFile();

  Status Append(const void* data, size_t size);
  Status Append(const std::string& data) {
    return Append(data.data(), data.size());
  }

  /// Pushes buffered bytes to the OS without publishing the artifact.
  Status Flush();

  /// Seals and publishes the artifact (sync, close, rename, dir-sync).
  /// Idempotent success; fails after a prior write failure.
  Status Commit();

  /// Closes and deletes the uncommitted tmp file, if any.
  void Discard();

  /// True until Commit() or Discard().
  bool open() const { return file_ != nullptr; }

  /// Bytes successfully appended so far (header and payload alike). Still
  /// readable after Commit()/Discard(), so writers can report artifact
  /// sizes without stat()-ing the published file.
  int64_t bytes_appended() const { return bytes_appended_; }

  /// The final artifact path.
  const std::string& path() const { return path_; }

 private:
  AtomicFile(Env* env, std::unique_ptr<WritableFile> file, std::string path,
             std::string write_path, bool direct)
      : env_(env),
        file_(std::move(file)),
        path_(std::move(path)),
        write_path_(std::move(write_path)),
        direct_(direct) {}

  Env* env_ = nullptr;
  std::unique_ptr<WritableFile> file_;
  std::string path_;
  std::string write_path_;
  bool direct_ = false;
  bool failed_ = false;
  int64_t bytes_appended_ = 0;
};

/// Deterministic fault schedule for a FaultInjectingEnv. Operation indices
/// count *mutating* operations — WritableFile::Append, WritableFile::Sync,
/// and Env::RenameFile — in the order the env observes them.
struct FaultPlan {
  /// Seeds the per-file short-write decisions (and nothing else), so equal
  /// seeds replay equal failure sequences.
  uint64_t seed = 1;

  /// Simulate a process crash at this mutating-op index (-1 = never): the
  /// op and every later env operation fail with an "injected crash" error,
  /// and unsynced bytes of every open file are discarded.
  int64_t crash_at_op = -1;

  /// Inject a single ENOSPC (kResourceExhausted) at this mutating-op index
  /// (-1 = never).
  int64_t enospc_at_op = -1;

  /// Per-Append probability of an injected short write, decided by a hash
  /// of (seed, file basename, per-file op index) — independent of global
  /// interleaving, so the failure sequence is identical at every --jobs.
  double short_write_prob = 0.0;

  /// On crash, truncate each open file to its last-synced byte (models a
  /// kernel that dropped the page cache). When false the crash only fails
  /// subsequent operations.
  bool lose_unsynced_on_crash = true;
};

/// An Env decorator that deterministically injects IO faults per a
/// FaultPlan. Thread-safe; decisions that must be jobs-invariant are keyed
/// per file rather than on the global op counter.
class FaultInjectingEnv : public Env {
 public:
  FaultInjectingEnv(Env* base, const FaultPlan& plan);

  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, int64_t size) override;
  Status SyncDirOf(const std::string& path) override;
  FileKind GetFileKind(const std::string& path) override;

  /// Mutating operations observed so far (a clean run's total bounds the
  /// crash-point sweep).
  int64_t ops() const;

  /// True once crash_at_op has fired.
  bool crashed() const;

  /// Injected short writes + ENOSPCs delivered so far.
  int64_t faults_injected() const;

 private:
  friend class FaultInjectingFile;

  enum class FaultAction { kProceed, kShortWrite, kEnospc, kCrash };
  struct FaultDecision {
    FaultAction action = FaultAction::kProceed;
    int64_t op = 0;
    size_t short_bytes = 0;
  };
  struct FileState {
    WritableFile* file = nullptr;  // Base file, owned by the wrapper.
    int64_t appended = 0;
    int64_t synced = 0;
    int64_t file_ops = 0;
  };

  FaultDecision DecideAppend(const std::string& path, size_t size);
  FaultDecision DecideSync(const std::string& path);
  FaultDecision DecideRename();
  Status CrashedError(const std::string& what) const;
  /// Must hold mu_. Fails every later op and drops unsynced bytes.
  void TriggerCrashLocked() KONDO_REQUIRES(mu_);
  void RecordAppended(const std::string& path, int64_t bytes);
  void RecordSynced(const std::string& path);
  void Unregister(const std::string& path);

  Env* const base_;
  const FaultPlan plan_;
  mutable Mutex mu_;
  int64_t ops_ KONDO_GUARDED_BY(mu_) = 0;
  bool crashed_ KONDO_GUARDED_BY(mu_) = false;
  bool enospc_fired_ KONDO_GUARDED_BY(mu_) = false;
  int64_t faults_ KONDO_GUARDED_BY(mu_) = 0;
  std::map<std::string, FileState> files_ KONDO_GUARDED_BY(mu_);
};

/// True when `status` carries an env-injected fault (crash, ENOSPC, or
/// short write) rather than a real IO failure.
bool IsInjectedFault(const Status& status);

/// Deterministic hash of (seed, a, b) to [0, 1) — SplitMix64-based. Used to
/// key injected per-candidate test failures on candidate identity so
/// retry/quarantine decisions are identical at every --jobs.
double FaultHash(uint64_t seed, int64_t a, int64_t b);

}  // namespace kondo

#endif  // KONDO_COMMON_ENV_H_
