#ifndef KONDO_COMMON_STATUSOR_H_
#define KONDO_COMMON_STATUSOR_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "common/status.h"

namespace kondo {

/// A value-or-error union, modelled after absl::StatusOr<T>.
///
/// A `StatusOr<T>` holds either a `T` (when `ok()`) or a non-OK `Status`.
/// Dereferencing a non-OK StatusOr aborts the process with a diagnostic:
/// this mirrors absl's CHECK semantics and keeps call sites honest in a
/// codebase without exceptions.
/// `[[nodiscard]]` for the same reason as Status: a discarded StatusOr is
/// either a swallowed error or a thrown-away result, and both are bugs.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from a non-OK status. Passing an OK status is a programming
  /// error and is converted to an internal error.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = InternalError("StatusOr constructed with OK status");
    }
  }

  /// Constructs from a value.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(OkStatus()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

  const T* operator->() const {
    CheckOk();
    return &*value_;
  }
  T* operator->() {
    CheckOk();
    return &*value_;
  }

 private:
  void CheckOk() const {
    if (!status_.ok()) {
      std::cerr << "Attempted to access value of non-OK StatusOr: "
                << status_ << std::endl;
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace kondo

/// Evaluates `rexpr` (a StatusOr expression); on error returns the status
/// from the enclosing function, otherwise assigns the value to `lhs`.
#define KONDO_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  KONDO_ASSIGN_OR_RETURN_IMPL_(                                  \
      KONDO_STATUS_MACRO_CONCAT_(kondo_statusor_, __LINE__), lhs, rexpr)

#define KONDO_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                 \
  if (!statusor.ok()) {                                    \
    return statusor.status();                              \
  }                                                        \
  lhs = std::move(statusor).value()

#define KONDO_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define KONDO_STATUS_MACRO_CONCAT_(x, y) KONDO_STATUS_MACRO_CONCAT_INNER_(x, y)

#endif  // KONDO_COMMON_STATUSOR_H_
