#ifndef KONDO_COMMON_FLAG_PARSE_H_
#define KONDO_COMMON_FLAG_PARSE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kondo {

/// Shared command-line flag parsing for the `tools/` binaries. Flags are
/// consumed destructively out of an argument vector so a command can demand
/// `args` be empty (or exactly its positionals) afterwards — unknown flags
/// then surface as usage errors instead of being silently ignored.

/// Pulls the value following `flag` out of `args` (erasing both); returns
/// empty when absent.
std::string TakeFlagValue(std::vector<std::string>* args,
                          const std::string& flag);

/// Removes a boolean flag from `args`; returns whether it was present.
bool TakeFlag(std::vector<std::string>* args, const std::string& flag);

/// `--seed N` with a default of 1 (campaign seeds are never zero).
uint64_t SeedFrom(std::vector<std::string>* args);

/// Outcome of pulling an integer-valued flag out of the argument list.
enum class FlagParse {
  kAbsent,  // Flag not present; caller keeps its default.
  kOk,      // Parsed a positive integer.
  kBad,     // Present but non-numeric or non-positive (error printed).
};

/// Strictly parses `--flag N` with N a positive integer. Garbage, zero,
/// and negatives are usage errors, not silently-clamped defaults.
FlagParse TakePositiveInt(std::vector<std::string>* args,
                          const std::string& flag, int64_t* value);

/// Parses "A:B" into a half-open byte range (requires A < B).
bool ParseRange(const std::string& text, int64_t* begin, int64_t* end);

}  // namespace kondo

#endif  // KONDO_COMMON_FLAG_PARSE_H_
