#ifndef KONDO_COMMON_SOCKET_H_
#define KONDO_COMMON_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/statusor.h"

namespace kondo {

/// Where a Kondo server listens / a client connects. Exactly one transport
/// is active: a non-empty `unix_path` selects a unix-domain stream socket,
/// otherwise `port` selects TCP on the loopback interface (0 = let the
/// kernel pick; the bound port is readable from the ListenSocket).
struct SocketAddress {
  std::string unix_path;
  int port = 0;

  bool is_unix() const { return !unix_path.empty(); }
  std::string ToString() const;
};

/// A connected byte stream. Reads and writes loop over partial transfers,
/// so a frame-level caller only ever sees all-or-error semantics.
///
/// Thread contract: one thread reads/writes; a *different* thread may call
/// ShutdownRead() to wake a blocked ReadFully (the server uses this to
/// drain sessions on shutdown). The descriptor itself is immutable after
/// construction and closed only by the destructor.
///
/// The IO methods are virtual so a fault-injecting NetEnv can decorate a
/// real connection with deterministic drops and short frames (see
/// common/net_fault.h); decorators construct through the protected default
/// constructor and own no descriptor of their own.
class Connection {
 public:
  explicit Connection(int fd) : fd_(fd) {}
  virtual ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Writes exactly `size` bytes (kDataLoss on a broken pipe).
  virtual Status WriteFully(const void* data, size_t size);
  Status WriteFully(const std::string& data) {
    return WriteFully(data.data(), data.size());
  }

  /// Reads exactly `size` bytes. A clean EOF before the first byte returns
  /// kOutOfRange ("connection closed") so frame loops can distinguish an
  /// orderly disconnect from a torn frame (kDataLoss). With a receive
  /// timeout armed, an idle wire returns kResourceExhausted ("socket read
  /// timed out") — the straggler signal fleet coordinators key on.
  virtual Status ReadFully(void* data, size_t size);

  /// Arms (micros > 0) or clears (micros == 0) a receive timeout on the
  /// socket. Timeouts surface from ReadFully as kResourceExhausted.
  virtual Status SetRecvTimeout(int64_t micros);

  /// Half-closes the read side, waking any blocked ReadFully with EOF.
  virtual void ShutdownRead();

  /// Half-closes the write side (the peer's reader sees EOF).
  virtual void ShutdownWrite();

  int fd() const { return fd_; }

 protected:
  /// For decorators that forward to a wrapped Connection (fd_ = -1; the
  /// destructor skips the close).
  Connection() = default;

 private:
  const int fd_ = -1;
};

/// A bound, listening socket accepting Connections. Accept/Shutdown are
/// virtual for the same decoration seam as Connection: a fault-injecting
/// listener wraps every accepted connection.
class ListenSocket {
 public:
  ListenSocket(int fd, SocketAddress address)
      : fd_(fd), address_(std::move(address)) {}
  virtual ~ListenSocket();

  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// Blocks for the next connection. After Shutdown() every pending and
  /// future Accept returns kFailedPrecondition ("listener closed").
  virtual StatusOr<std::unique_ptr<Connection>> Accept();

  /// Wakes blocked Accept calls; idempotent. (The accept loop calls this
  /// from the server's Stop thread.)
  virtual void Shutdown();

  /// The bound address; for TCP with port 0 this carries the kernel-chosen
  /// port.
  const SocketAddress& address() const { return address_; }

 protected:
  /// For decorators forwarding to a wrapped listener (fd_ = -1; the
  /// destructor skips the close and the socket-file removal).
  explicit ListenSocket(SocketAddress address)
      : address_(std::move(address)) {}

 private:
  const int fd_ = -1;
  SocketAddress address_;
};

/// Network access points, mirroring Env's role for the filesystem: servers
/// and clients reach sockets only through this seam, so a fault-injecting
/// NetEnv can later interpose torn frames and refused connections on the
/// wire exactly as FaultInjectingEnv does for artifact IO.
class NetEnv {
 public:
  virtual ~NetEnv() = default;

  /// Binds and listens on `address`. A unix-domain path is unlinked first
  /// (stale socket files from a crashed server must not block restart).
  virtual StatusOr<std::unique_ptr<ListenSocket>> Listen(
      const SocketAddress& address) = 0;

  /// Connects to a listening server.
  virtual StatusOr<std::unique_ptr<Connection>> Connect(
      const SocketAddress& address) = 0;

  /// The real-sockets environment (process-wide singleton).
  static NetEnv* Default();
};

}  // namespace kondo

#endif  // KONDO_COMMON_SOCKET_H_
