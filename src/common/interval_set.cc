#include "common/interval_set.h"

#include <sstream>

namespace kondo {

std::ostream& operator<<(std::ostream& os, const Interval& interval) {
  return os << "[" << interval.begin << "," << interval.end << ")";
}

void IntervalSet::Add(int64_t begin, int64_t end) {
  if (end <= begin) {
    return;
  }
  // Find the first interval whose begin is > `begin`, then step back to
  // check whether the predecessor absorbs or touches us.
  auto it = intervals_.upper_bound(begin);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) {
      // Predecessor overlaps or touches: extend it instead.
      begin = prev->first;
      end = std::max(end, prev->second);
      it = intervals_.erase(prev);
    }
  }
  // Absorb all successors that overlap or touch [begin, end).
  while (it != intervals_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = intervals_.erase(it);
  }
  intervals_.emplace(begin, end);
}

void IntervalSet::Union(const IntervalSet& other) {
  for (const auto& [begin, end] : other.intervals_) {
    Add(begin, end);
  }
}

bool IntervalSet::Contains(int64_t x) const {
  auto it = intervals_.upper_bound(x);
  if (it == intervals_.begin()) {
    return false;
  }
  --it;
  return x < it->second;
}

bool IntervalSet::ContainsRange(int64_t begin, int64_t end) const {
  if (end <= begin) {
    return true;
  }
  auto it = intervals_.upper_bound(begin);
  if (it == intervals_.begin()) {
    return false;
  }
  --it;
  return begin >= it->first && end <= it->second;
}

bool IntervalSet::Intersects(int64_t begin, int64_t end) const {
  if (end <= begin) {
    return false;
  }
  auto it = intervals_.lower_bound(begin);
  if (it != intervals_.end() && it->first < end) {
    return true;
  }
  if (it == intervals_.begin()) {
    return false;
  }
  --it;
  return it->second > begin;
}

int64_t IntervalSet::TotalLength() const {
  int64_t total = 0;
  for (const auto& [begin, end] : intervals_) {
    total += end - begin;
  }
  return total;
}

std::vector<Interval> IntervalSet::ToIntervals() const {
  std::vector<Interval> result;
  result.reserve(intervals_.size());
  for (const auto& [begin, end] : intervals_) {
    result.push_back(Interval{begin, end});
  }
  return result;
}

std::string IntervalSet::ToString() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [begin, end] : intervals_) {
    if (!first) {
      os << " ";
    }
    first = false;
    os << Interval{begin, end};
  }
  return os.str();
}

}  // namespace kondo
