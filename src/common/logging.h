#ifndef KONDO_COMMON_LOGGING_H_
#define KONDO_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace kondo {

/// Severity levels for the lightweight logging facility.
enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

/// Returns the process-wide minimum severity that is emitted; messages below
/// it are dropped. Defaults to kWarning so library users are not spammed.
LogSeverity MinLogSeverity();

/// Sets the minimum emitted severity (e.g. kInfo for verbose benches).
void SetMinLogSeverity(LogSeverity severity);

namespace internal {

/// Accumulates one log line and flushes it on destruction. kFatal aborts.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

/// Swallows a streamed expression; used for disabled log levels.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace kondo

#define KONDO_LOG(severity)                                                  \
  ::kondo::internal::LogMessage(::kondo::LogSeverity::k##severity, __FILE__, \
                                __LINE__)                                    \
      .stream()

/// Aborts with a message when `condition` is false. Used for invariants that
/// indicate programming errors (not user errors, which return Status).
#define KONDO_CHECK(condition)                                   \
  if (!(condition))                                              \
  KONDO_LOG(Fatal) << "Check failed: " #condition " "

#define KONDO_CHECK_EQ(a, b) KONDO_CHECK((a) == (b))
#define KONDO_CHECK_NE(a, b) KONDO_CHECK((a) != (b))
#define KONDO_CHECK_LT(a, b) KONDO_CHECK((a) < (b))
#define KONDO_CHECK_LE(a, b) KONDO_CHECK((a) <= (b))
#define KONDO_CHECK_GT(a, b) KONDO_CHECK((a) > (b))
#define KONDO_CHECK_GE(a, b) KONDO_CHECK((a) >= (b))

#endif  // KONDO_COMMON_LOGGING_H_
