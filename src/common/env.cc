#include "common/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "common/strings.h"

namespace kondo {
namespace {

std::string ErrnoMessage() { return std::strerror(errno); }

/// The parent directory of `path` ("." when the path has no slash).
std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

/// FNV-1a over the basename so fault decisions survive a change of
/// temporary directory (the directory differs between test runs; the
/// artifact names do not).
uint64_t BasenameHash(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const size_t begin = slash == std::string::npos ? 0 : slash + 1;
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = begin; i < path.size(); ++i) {
    h ^= static_cast<unsigned char>(path[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t SplitMix64Step(uint64_t* state) {
  *state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = *state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Buffered stdio-backed file; Sync() is fflush + fsync.
class RealWritableFile : public WritableFile {
 public:
  RealWritableFile(std::FILE* file, std::string path)
      : WritableFile(std::move(path)), file_(file) {}

  ~RealWritableFile() override {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }

  Status Append(const void* data, size_t size) override {
    if (file_ == nullptr) {
      return FailedPreconditionError("file already closed: " + path_);
    }
    const size_t n = std::fwrite(data, 1, size, file_);
    if (n != size) {
      return InternalError(StrCat("short write: ", path_, ": wrote ", n,
                                  " of ", size, " bytes"));
    }
    return OkStatus();
  }

  Status Flush() override {
    if (file_ == nullptr) {
      return FailedPreconditionError("file already closed: " + path_);
    }
    if (std::fflush(file_) != 0) {
      return InternalError(
          StrCat("flush failed: ", path_, ": ", ErrnoMessage()));
    }
    return OkStatus();
  }

  Status Sync() override {
    KONDO_RETURN_IF_ERROR(Flush());
    if (::fsync(::fileno(file_)) != 0) {
      // Devices and pipes may not support fsync; that is not a torn write.
      if (errno != EINVAL && errno != ENOTTY && errno != ENOTSUP &&
          errno != EROFS) {
        return InternalError(
            StrCat("fsync failed: ", path_, ": ", ErrnoMessage()));
      }
    }
    return OkStatus();
  }

  Status Close() override {
    if (file_ == nullptr) {
      return OkStatus();
    }
    const int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) {
      return InternalError(
          StrCat("close failed: ", path_, ": ", ErrnoMessage()));
    }
    return OkStatus();
  }

 private:
  std::FILE* file_ = nullptr;
};

class RealEnv : public Env {
 public:
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
      return InternalError(
          StrCat("cannot create file: ", path, ": ", ErrnoMessage()));
    }
    return std::unique_ptr<WritableFile>(
        std::make_unique<RealWritableFile>(file, path));
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return InternalError(StrCat("cannot rename ", from, " -> ", to, ": ",
                                  ErrnoMessage()));
    }
    return OkStatus();
  }

  Status RemoveFile(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) {
      return InternalError(
          StrCat("cannot remove ", path, ": ", ErrnoMessage()));
    }
    return OkStatus();
  }

  Status TruncateFile(const std::string& path, int64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return InternalError(StrCat("cannot truncate ", path, " to ", size,
                                  " bytes: ", ErrnoMessage()));
    }
    return OkStatus();
  }

  Status SyncDirOf(const std::string& path) override {
    // Best effort: some filesystems reject directory fsync; a rename that
    // reached the journal is already as durable as the platform allows.
    const int fd = ::open(DirOf(path).c_str(), O_RDONLY);
    if (fd < 0) {
      return OkStatus();
    }
    ::fsync(fd);
    ::close(fd);
    return OkStatus();
  }

  FileKind GetFileKind(const std::string& path) override {
    struct stat st = {};
    if (::stat(path.c_str(), &st) != 0) {
      return FileKind::kMissing;
    }
    return S_ISREG(st.st_mode) ? FileKind::kRegular : FileKind::kOther;
  }
};

}  // namespace

Env* Env::Default() {
  static RealEnv* real = new RealEnv;
  return real;
}

// ---------------------------------------------------------------------------
// AtomicFile

StatusOr<AtomicFile> AtomicFile::Create(const std::string& path, Env* env) {
  if (env == nullptr) {
    env = Env::Default();
  }
  const FileKind kind = env->GetFileKind(path);
  const bool direct = kind == FileKind::kOther;
  const std::string write_path = direct ? path : path + ".tmp";
  KONDO_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                         env->NewWritableFile(write_path));
  return AtomicFile(env, std::move(file), path, write_path, direct);
}

AtomicFile::AtomicFile(AtomicFile&& other) noexcept
    : env_(other.env_),
      file_(std::move(other.file_)),
      path_(std::move(other.path_)),
      write_path_(std::move(other.write_path_)),
      direct_(other.direct_),
      failed_(other.failed_),
      bytes_appended_(other.bytes_appended_) {
  other.file_ = nullptr;
}

AtomicFile& AtomicFile::operator=(AtomicFile&& other) noexcept {
  if (this != &other) {
    Discard();
    env_ = other.env_;
    file_ = std::move(other.file_);
    path_ = std::move(other.path_);
    write_path_ = std::move(other.write_path_);
    direct_ = other.direct_;
    failed_ = other.failed_;
    bytes_appended_ = other.bytes_appended_;
    other.file_ = nullptr;
  }
  return *this;
}

AtomicFile::~AtomicFile() { Discard(); }

Status AtomicFile::Append(const void* data, size_t size) {
  if (file_ == nullptr) {
    return FailedPreconditionError("atomic file already finished: " + path_);
  }
  if (failed_) {
    return FailedPreconditionError("atomic file had a prior write failure: " +
                                   path_);
  }
  const Status status = file_->Append(data, size);
  if (!status.ok()) {
    failed_ = true;
  } else {
    bytes_appended_ += static_cast<int64_t>(size);
  }
  return status;
}

Status AtomicFile::Flush() {
  if (file_ == nullptr) {
    return FailedPreconditionError("atomic file already finished: " + path_);
  }
  if (failed_) {
    return FailedPreconditionError("atomic file had a prior write failure: " +
                                   path_);
  }
  const Status status = file_->Flush();
  if (!status.ok()) {
    failed_ = true;
  }
  return status;
}

Status AtomicFile::Commit() {
  if (file_ == nullptr) {
    return FailedPreconditionError("atomic file already finished: " + path_);
  }
  if (failed_) {
    // Never publish a torn artifact. The tmp file is left behind; the next
    // Create for this path overwrites it.
    const Status closed = file_->Close();
    file_.reset();
    if (!closed.ok()) {
      KONDO_LOG(Info) << "atomic file close after write failure: " << closed;
    }
    return FailedPreconditionError(
        "cannot commit atomic file after write failure: " + path_);
  }
  Status status = file_->Sync();
  const Status closed = file_->Close();
  file_.reset();
  if (status.ok()) {
    status = closed;
  }
  if (!status.ok()) {
    return Status(status.code(), StrCat("atomic commit failed: ", path_, ": ",
                                        status.message()));
  }
  if (!direct_) {
    KONDO_RETURN_IF_ERROR(env_->RenameFile(write_path_, path_));
    KONDO_RETURN_IF_ERROR(env_->SyncDirOf(path_));
  }
  return OkStatus();
}

void AtomicFile::Discard() {
  if (file_ == nullptr) {
    return;
  }
  const Status closed = file_->Close();
  file_.reset();
  if (!closed.ok()) {
    KONDO_LOG(Info) << "atomic file discard close: " << closed;
  }
  if (!direct_) {
    const Status removed = env_->RemoveFile(write_path_);
    if (!removed.ok()) {
      KONDO_LOG(Info) << "atomic file discard remove: " << removed;
    }
  }
}

// ---------------------------------------------------------------------------
// FaultInjectingEnv

/// Wrapper that consults the env's fault plan before every operation and
/// reports byte progress back for crash truncation.
class FaultInjectingFile : public WritableFile {
 public:
  FaultInjectingFile(FaultInjectingEnv* env,
                     std::unique_ptr<WritableFile> base)
      : WritableFile(base->path()), env_(env), base_(std::move(base)) {}

  ~FaultInjectingFile() override {
    if (base_ != nullptr) {
      const Status closed = Close();
      if (!closed.ok()) {
        KONDO_LOG(Info) << "fault-injecting file close: " << closed;
      }
    }
  }

  WritableFile* base() const { return base_.get(); }

  Status Append(const void* data, size_t size) override {
    if (base_ == nullptr) {
      return FailedPreconditionError("file already closed: " + path_);
    }
    const FaultInjectingEnv::FaultDecision d =
        env_->DecideAppend(path_, size);
    switch (d.action) {
      case FaultInjectingEnv::FaultAction::kCrash:
        return env_->CrashedError(path_);
      case FaultInjectingEnv::FaultAction::kEnospc:
        return ResourceExhaustedError(
            StrCat("injected ENOSPC (op ", d.op, "): ", path_));
      case FaultInjectingEnv::FaultAction::kShortWrite: {
        const Status written = base_->Append(data, d.short_bytes);
        if (written.ok()) {
          env_->RecordAppended(path_, static_cast<int64_t>(d.short_bytes));
        }
        return InternalError(StrCat("injected short write (op ", d.op,
                                    "): ", path_, ": wrote ", d.short_bytes,
                                    " of ", size, " bytes"));
      }
      case FaultInjectingEnv::FaultAction::kProceed:
        break;
    }
    KONDO_RETURN_IF_ERROR(base_->Append(data, size));
    env_->RecordAppended(path_, static_cast<int64_t>(size));
    return OkStatus();
  }

  Status Flush() override {
    if (base_ == nullptr) {
      return FailedPreconditionError("file already closed: " + path_);
    }
    if (env_->crashed()) {
      return env_->CrashedError(path_);
    }
    return base_->Flush();
  }

  Status Sync() override {
    if (base_ == nullptr) {
      return FailedPreconditionError("file already closed: " + path_);
    }
    const FaultInjectingEnv::FaultDecision d = env_->DecideSync(path_);
    switch (d.action) {
      case FaultInjectingEnv::FaultAction::kCrash:
        return env_->CrashedError(path_);
      case FaultInjectingEnv::FaultAction::kEnospc:
        return ResourceExhaustedError(
            StrCat("injected ENOSPC (op ", d.op, "): ", path_));
      default:
        break;
    }
    KONDO_RETURN_IF_ERROR(base_->Sync());
    env_->RecordSynced(path_);
    return OkStatus();
  }

  Status Close() override {
    if (base_ == nullptr) {
      return OkStatus();
    }
    env_->Unregister(path_);
    const Status closed = base_->Close();
    base_.reset();
    return closed;
  }

 private:
  FaultInjectingEnv* const env_;
  std::unique_ptr<WritableFile> base_;
};

FaultInjectingEnv::FaultInjectingEnv(Env* base, const FaultPlan& plan)
    : base_(base == nullptr ? Env::Default() : base), plan_(plan) {}

StatusOr<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path) {
  {
    MutexLock lock(mu_);
    if (crashed_) {
      return CrashedError(path);
    }
  }
  KONDO_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                         base_->NewWritableFile(path));
  WritableFile* raw = base.get();
  auto file = std::make_unique<FaultInjectingFile>(this, std::move(base));
  MutexLock lock(mu_);
  if (crashed_) {
    return CrashedError(path);  // The wrapper's destructor closes the base.
  }
  FileState state;
  state.file = raw;
  files_[path] = state;
  return std::unique_ptr<WritableFile>(std::move(file));
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  const FaultDecision d = DecideRename();
  switch (d.action) {
    case FaultAction::kCrash:
      return CrashedError(StrCat(from, " -> ", to));
    case FaultAction::kEnospc:
      return ResourceExhaustedError(
          StrCat("injected ENOSPC (op ", d.op, "): ", from, " -> ", to));
    default:
      break;
  }
  return base_->RenameFile(from, to);
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  {
    MutexLock lock(mu_);
    if (crashed_) {
      return CrashedError(path);
    }
  }
  return base_->RemoveFile(path);
}

Status FaultInjectingEnv::TruncateFile(const std::string& path,
                                       int64_t size) {
  {
    MutexLock lock(mu_);
    if (crashed_) {
      return CrashedError(path);
    }
  }
  return base_->TruncateFile(path, size);
}

Status FaultInjectingEnv::SyncDirOf(const std::string& path) {
  {
    MutexLock lock(mu_);
    if (crashed_) {
      return CrashedError(path);
    }
  }
  return base_->SyncDirOf(path);
}

FileKind FaultInjectingEnv::GetFileKind(const std::string& path) {
  return base_->GetFileKind(path);
}

int64_t FaultInjectingEnv::ops() const {
  MutexLock lock(mu_);
  return ops_;
}

bool FaultInjectingEnv::crashed() const {
  MutexLock lock(mu_);
  return crashed_;
}

int64_t FaultInjectingEnv::faults_injected() const {
  MutexLock lock(mu_);
  return faults_;
}

FaultInjectingEnv::FaultDecision FaultInjectingEnv::DecideAppend(
    const std::string& path, size_t size) {
  MutexLock lock(mu_);
  FaultDecision d;
  if (crashed_) {
    d.action = FaultAction::kCrash;
    return d;
  }
  d.op = ops_++;
  const int64_t file_op = files_[path].file_ops++;
  if (plan_.crash_at_op >= 0 && d.op >= plan_.crash_at_op) {
    TriggerCrashLocked();
    d.action = FaultAction::kCrash;
    return d;
  }
  if (plan_.enospc_at_op >= 0 && !enospc_fired_ &&
      d.op >= plan_.enospc_at_op) {
    enospc_fired_ = true;
    ++faults_;
    d.action = FaultAction::kEnospc;
    return d;
  }
  if (plan_.short_write_prob > 0.0 && size > 0) {
    const uint64_t key = plan_.seed ^ BasenameHash(path);
    if (FaultHash(key, file_op, 0) < plan_.short_write_prob) {
      ++faults_;
      d.action = FaultAction::kShortWrite;
      d.short_bytes = static_cast<size_t>(
          FaultHash(key, file_op, 1) * static_cast<double>(size));
      if (d.short_bytes >= size) {
        d.short_bytes = size - 1;
      }
    }
  }
  return d;
}

FaultInjectingEnv::FaultDecision FaultInjectingEnv::DecideSync(
    const std::string& path) {
  (void)path;
  MutexLock lock(mu_);
  FaultDecision d;
  if (crashed_) {
    d.action = FaultAction::kCrash;
    return d;
  }
  d.op = ops_++;
  if (plan_.crash_at_op >= 0 && d.op >= plan_.crash_at_op) {
    TriggerCrashLocked();
    d.action = FaultAction::kCrash;
    return d;
  }
  if (plan_.enospc_at_op >= 0 && !enospc_fired_ &&
      d.op >= plan_.enospc_at_op) {
    enospc_fired_ = true;
    ++faults_;
    d.action = FaultAction::kEnospc;
  }
  return d;
}

FaultInjectingEnv::FaultDecision FaultInjectingEnv::DecideRename() {
  MutexLock lock(mu_);
  FaultDecision d;
  if (crashed_) {
    d.action = FaultAction::kCrash;
    return d;
  }
  d.op = ops_++;
  if (plan_.crash_at_op >= 0 && d.op >= plan_.crash_at_op) {
    TriggerCrashLocked();
    d.action = FaultAction::kCrash;
    return d;
  }
  if (plan_.enospc_at_op >= 0 && !enospc_fired_ &&
      d.op >= plan_.enospc_at_op) {
    enospc_fired_ = true;
    ++faults_;
    d.action = FaultAction::kEnospc;
  }
  return d;
}

Status FaultInjectingEnv::CrashedError(const std::string& what) const {
  return InternalError(
      StrCat("injected crash (op ", plan_.crash_at_op, "): ", what));
}

void FaultInjectingEnv::TriggerCrashLocked() {
  crashed_ = true;
  for (auto& entry : files_) {
    FileState& state = entry.second;
    if (state.file == nullptr) {
      continue;
    }
    // Close flushes stdio buffers to disk; truncating back to the synced
    // length then models the kernel dropping everything past the last
    // fsync.
    const Status closed = state.file->Close();
    if (!closed.ok()) {
      KONDO_LOG(Info) << "injected crash close: " << closed;
    }
    state.file = nullptr;
    if (plan_.lose_unsynced_on_crash) {
      const Status truncated = base_->TruncateFile(entry.first, state.synced);
      if (!truncated.ok()) {
        KONDO_LOG(Info) << "injected crash truncate: " << truncated;
      } else if (state.appended > state.synced) {
        KONDO_LOG(Info) << "injected crash dropped "
                        << (state.appended - state.synced)
                        << " unsynced bytes of " << entry.first;
      }
    }
  }
}

void FaultInjectingEnv::RecordAppended(const std::string& path,
                                       int64_t bytes) {
  MutexLock lock(mu_);
  files_[path].appended += bytes;
}

void FaultInjectingEnv::RecordSynced(const std::string& path) {
  MutexLock lock(mu_);
  FileState& state = files_[path];
  state.synced = state.appended;
}

void FaultInjectingEnv::Unregister(const std::string& path) {
  MutexLock lock(mu_);
  const auto it = files_.find(path);
  if (it != files_.end()) {
    it->second.file = nullptr;
  }
}

bool IsInjectedFault(const Status& status) {
  return !status.ok() &&
         status.message().find("injected") != std::string::npos;
}

double FaultHash(uint64_t seed, int64_t a, int64_t b) {
  uint64_t x = seed;
  uint64_t h = SplitMix64Step(&x);
  x = h ^ static_cast<uint64_t>(a);
  h = SplitMix64Step(&x);
  x = h ^ static_cast<uint64_t>(b);
  h = SplitMix64Step(&x);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace kondo
