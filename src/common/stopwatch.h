#ifndef KONDO_COMMON_STOPWATCH_H_
#define KONDO_COMMON_STOPWATCH_H_

#include <chrono>

namespace kondo {

/// Monotonic wall-clock stopwatch used for experiment time budgets
/// (Section V-C fixes a per-program budget shared by Kondo and baselines).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed microseconds since construction or the last Reset().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Busy-waits for `micros` microseconds. Used to model per-execution costs
/// the in-process harness does not naturally pay (process spawn,
/// fork-server and instrumentation overheads of the real tools); burning
/// CPU, rather than sleeping, matches how those costs behave under a
/// wall-clock budget.
inline void BusyWaitMicros(int64_t micros) {
  if (micros <= 0) {
    return;
  }
  Stopwatch stopwatch;
  while (stopwatch.ElapsedMicros() < micros) {
  }
}

}  // namespace kondo

#endif  // KONDO_COMMON_STOPWATCH_H_
