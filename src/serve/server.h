#ifndef KONDO_SERVE_SERVER_H_
#define KONDO_SERVE_SERVER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/kondo.h"
#include "exec/thread_pool.h"
#include "serve/artifact_pool.h"
#include "serve/kpc.h"
#include "workloads/program.h"

namespace kondo {

struct ServeOptions {
  /// Where to listen: a unix-domain socket path or a loopback TCP port
  /// (port 0 picks a free one; bound_address() reports it).
  SocketAddress address;

  /// Directory of served artifacts (`.kdd`, `.kel2`) and campaign output.
  std::string pool_root = ".";

  /// Campaign worker threads; 0 = hardware concurrency.
  int jobs = 0;

  /// Subset cache capacity in bytes.
  int64_t cache_bytes = int64_t{64} << 20;

  /// Admission control: per-connection cap on campaigns submitted but not
  /// yet finished, and global cap on campaigns accepted but not yet
  /// running. Breaching either rejects the submit (accepted = 0).
  int max_inflight = 4;
  int queue_capacity = 64;

  /// Events per kEventBatch frame of a streamed query result.
  int events_per_batch = 256;

  /// Deterministic extra busy-work per campaign job, for tests and
  /// bench_serve to model long campaigns without bigger workloads.
  int64_t job_spin_micros = 0;

  /// Deterministic per-fetch-subset sleep modelling a backing-store round
  /// trip. A *blocking* wait, not a busy one, for the same reason
  /// bench_shard sleeps: blocked sessions overlap even on one hardware
  /// thread, so bench_serve measures the server's session concurrency
  /// rather than the host's core count.
  int64_t fetch_sleep_micros = 0;
};

/// The kondo daemon: accepts KPC connections, serving fetch-subset from
/// the fingerprint-keyed subset cache, query-provenance from the open
/// KEL2 store pool, submit-campaign onto a shared ThreadPool behind
/// admission control, and stats.
///
/// Threading: one accept thread plus one thread per live session; campaign
/// jobs run on the shared worker pool. Stop() (idempotent, also run by the
/// destructor) shuts the listener, drains every session, and waits for
/// every accepted campaign job — no job outlives the server.
class KondoServer {
 public:
  explicit KondoServer(ServeOptions options);
  ~KondoServer();

  KondoServer(const KondoServer&) = delete;
  KondoServer& operator=(const KondoServer&) = delete;

  /// Binds, listens, and starts the accept loop.
  Status Start();

  /// Stops accepting, drains sessions and campaign jobs, joins all
  /// threads. Safe to call from a signal-notified main loop.
  void Stop();

  /// The listen address with any port-0 resolved. Valid after Start().
  const SocketAddress& bound_address() const { return bound_address_; }

  /// Point-in-time counters (the same snapshot the stats verb serves).
  ServeStatsSnapshot Stats() const KONDO_EXCLUDES(stats_mu_);

 private:
  struct Session {
    std::unique_ptr<Connection> conn;
    std::thread thread;
    /// Campaigns this session submitted that may still be outstanding.
    /// Only the session's own thread touches this (admission runs on it).
    std::vector<JobHandle> jobs;
  };

  void AcceptLoop();
  void SessionLoop(Session* session);

  /// Dispatches one request frame. A returned error means the connection
  /// is unusable (protocol violation or write failure) and must drop;
  /// application errors have already been written as kError frames.
  Status Dispatch(Session* session, const KpcFrame& frame);

  Status HandleFetchSubset(Connection& conn, const KpcFrame& frame);
  Status HandleQuery(Connection& conn, const KpcFrame& frame);
  Status HandleSubmit(Session* session, const KpcFrame& frame);
  Status HandleStats(Connection& conn);

  /// Writes `status` to the client as a kError frame; returns the write's
  /// status (the app error itself is not a session-fatal condition).
  Status WriteError(Connection& conn, const Status& status);

  void RecordLatency(int verb, int64_t micros) KONDO_EXCLUDES(stats_mu_);

  /// The body of one accepted campaign, run on a pool worker.
  void RunCampaignJob(std::shared_ptr<Program> program, int64_t job_id,
                      KondoConfig config);

  const ServeOptions options_;
  ArtifactPool artifacts_;
  std::unique_ptr<ThreadPool> workers_;
  std::unique_ptr<ListenSocket> listener_;
  SocketAddress bound_address_;
  std::thread accept_thread_;

  mutable Mutex state_mu_;
  bool started_ KONDO_GUARDED_BY(state_mu_) = false;
  bool stopping_ KONDO_GUARDED_BY(state_mu_) = false;

  mutable Mutex sessions_mu_;
  std::list<std::unique_ptr<Session>> sessions_ KONDO_GUARDED_BY(sessions_mu_);

  /// Every accepted campaign's handle, kept so Stop() can prove drain.
  mutable Mutex jobs_mu_;
  std::vector<JobHandle> all_jobs_ KONDO_GUARDED_BY(jobs_mu_);
  int64_t next_job_id_ KONDO_GUARDED_BY(jobs_mu_) = 1;

  mutable Mutex stats_mu_;
  ServeStatsSnapshot counters_ KONDO_GUARDED_BY(stats_mu_);
};

}  // namespace kondo

#endif  // KONDO_SERVE_SERVER_H_
