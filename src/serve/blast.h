#ifndef KONDO_SERVE_BLAST_H_
#define KONDO_SERVE_BLAST_H_

#include <cstdint>
#include <string>

#include "common/socket.h"
#include "common/statusor.h"

namespace kondo {

/// `kondo blast`: closed-loop fetch-subset load against a running daemon.
struct BlastOptions {
  SocketAddress address;
  std::string artifact = "main.kdd";
  int clients = 1;        // Concurrent connections, one thread each.
  int requests = 100;     // Requests per client.
  int64_t begin = 0;      // Element range fetched by every request.
  int64_t end = 64;
};

struct BlastReport {
  int64_t ok_requests = 0;
  int64_t failed_requests = 0;
  double elapsed_seconds = 0.0;
  double throughput_rps = 0.0;  // Aggregate ok requests / elapsed.
  int64_t bytes_received = 0;   // Wire bytes of successful responses.
  int64_t p50_micros = 0;
  int64_t p90_micros = 0;
  int64_t p99_micros = 0;
  int64_t max_micros = 0;

  /// True when every successful response carried bit-identical bytes —
  /// the cache hit/miss identity observed from outside.
  bool responses_identical = true;
};

/// Runs the load, aggregating across all client threads. Fails only on
/// setup errors (no connection at all); per-request failures are counted.
StatusOr<BlastReport> RunBlast(const BlastOptions& options);

}  // namespace kondo

#endif  // KONDO_SERVE_BLAST_H_
