#ifndef KONDO_SERVE_KPC_H_
#define KONDO_SERVE_KPC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "audit/event.h"
#include "common/socket.h"
#include "common/status.h"
#include "common/statusor.h"

namespace kondo {

/// KPC — Kondo Protocol, CRC-framed (docs/FORMATS.md). Every message on a
/// serve connection is one frame:
///
///   offset size
///   0      4    magic "KPC1"
///   4      1    u8 kind (KpcKind)
///   5      3    reserved (0)
///   8      4    u32 payload_bytes (LE)
///   12     n    payload
///   12+n   4    u32 crc32 (LE) over bytes [4, 12+n) — kind, reserved,
///               length, payload; the IEEE/zlib polynomial of
///               provenance/crc32.h
///
/// Integers in payloads are little-endian fixed width; strings are u32
/// length-prefixed bytes. Encoding is a pure function of the message, so
/// two responses carrying equal data are byte-identical on the wire — the
/// property the subset cache's hit/miss contract is tested against.
constexpr char kKpcMagic[4] = {'K', 'P', 'C', '1'};
constexpr size_t kKpcHeaderBytes = 12;
constexpr size_t kKpcTrailerBytes = 4;

/// Hard ceiling on a frame payload; a header declaring more is corruption
/// (kDataLoss), not an allocation request.
constexpr uint32_t kKpcMaxPayloadBytes = 1u << 26;

enum class KpcKind : uint8_t {
  kError = 0,
  kFetchSubsetRequest = 1,
  kFetchSubsetResponse = 2,
  kQueryRequest = 3,
  kEventBatch = 4,   // Streamed query results; zero or more per query.
  kQueryDone = 5,    // Terminates an event stream; carries totals.
  kSubmitRequest = 6,
  kSubmitResponse = 7,
  kStatsRequest = 8,
  kStatsResponse = 9,
  // Fleet worker verbs (payload structs in src/fleet/fleet_protocol.h; the
  // coordinator/worker lifecycle is documented in docs/ARCHITECTURE.md).
  kHello = 10,        // Coordinator -> worker: campaign spec; ack back.
  kRunShard = 11,     // Coordinator -> worker: one shard assignment.
  kShardResult = 12,  // Worker -> coordinator: sealed .kss + .kel2 bytes.
  kHeartbeat = 13,    // Worker -> coordinator: liveness while fuzzing.
};

struct KpcFrame {
  KpcKind kind = KpcKind::kError;
  std::string payload;
};

/// Appends the full frame (header, payload, CRC trailer) to `out`.
void AppendKpcFrame(KpcKind kind, std::string_view payload, std::string* out);

/// Encodes and writes one frame.
Status WriteKpcFrame(Connection& conn, KpcKind kind,
                     std::string_view payload);

/// Reads and verifies one frame. kOutOfRange on orderly EOF before a
/// frame; kDataLoss on bad magic, oversized length, truncation, or CRC
/// mismatch — after which the stream is unrecoverable and the connection
/// should be dropped.
StatusOr<KpcFrame> ReadKpcFrame(Connection& conn);

// ---------------------------------------------------------------------------
// Payload primitives.

void KpcAppendU8(uint8_t v, std::string* out);
void KpcAppendU32(uint32_t v, std::string* out);
void KpcAppendI64(int64_t v, std::string* out);
void KpcAppendF64(double v, std::string* out);
void KpcAppendString(std::string_view v, std::string* out);

/// Sequential decoder over a payload. Every Read fails with kDataLoss on
/// underrun; Done() verifies the payload was consumed exactly.
class KpcCursor {
 public:
  explicit KpcCursor(std::string_view data) : data_(data) {}

  Status ReadU8(uint8_t* v);
  Status ReadU32(uint32_t* v);
  Status ReadI64(int64_t* v);
  Status ReadF64(double* v);
  Status ReadString(std::string* v);

  /// kDataLoss unless the cursor consumed the whole payload.
  Status Done() const;

  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status Take(size_t n, const char** p);

  std::string_view data_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Verb payloads.

/// fetch-subset: a debloated runtime asks for the D_Θ slice covering
/// linear element ids [begin, end) of a pooled `.kdd` artifact.
struct FetchSubsetRequest {
  std::string artifact;  // Pool-relative name, e.g. "main.kdd".
  int64_t begin = 0;
  int64_t end = 0;

  std::string Encode() const;
  static StatusOr<FetchSubsetRequest> Decode(std::string_view payload);
};

/// The slice, stamped with the artifact fingerprint it was cut from (the
/// same whole-file byte-count + CRC32 the shard KSS `A` line records).
/// Null elements carry presence bit 0 and no value — the runtime maps them
/// back to kDataMissing.
struct FetchSubsetResponse {
  int64_t fingerprint_bytes = 0;
  uint32_t fingerprint_crc = 0;
  int64_t begin = 0;
  int64_t end = 0;
  std::vector<uint8_t> present;  // One per element of [begin, end).
  std::vector<double> values;    // One per present element, in order.

  std::string Encode() const;
  static StatusOr<FetchSubsetResponse> Decode(std::string_view payload);
};

/// query-provenance: which events / runs of a pooled KEL2 store touch byte
/// range [begin, end) of `file_id`. Executed server-side with in-situ
/// block skipping; events stream back in kEventBatch frames.
struct QueryRequest {
  std::string store;  // Pool-relative name, e.g. "merged.kel2".
  int64_t file_id = 1;
  int64_t begin = 0;
  int64_t end = 0;
  uint8_t runs_only = 0;  // 1 = suppress event batches, send only totals.

  std::string Encode() const;
  static StatusOr<QueryRequest> Decode(std::string_view payload);
};

/// One streamed batch of matching events, in store order.
struct EventBatch {
  std::vector<Event> events;

  std::string Encode() const;
  static StatusOr<EventBatch> Decode(std::string_view payload);
};

/// Terminates a query stream: totals plus the engine's in-situ counters
/// for this store (cumulative — the memo persists across requests).
struct QueryDone {
  int64_t events_total = 0;
  std::vector<int64_t> runs;  // Sorted, deduplicated pids.
  int64_t blocks_considered = 0;
  int64_t blocks_skipped = 0;
  int64_t blocks_decoded = 0;

  std::string Encode() const;
  static StatusOr<QueryDone> Decode(std::string_view payload);
};

/// submit-campaign: enqueue a fuzz/debloat campaign for a registered
/// single-file program on the server's shared ThreadPool.
struct SubmitRequest {
  std::string program;
  int64_t seed = 1;
  int64_t max_evals = 0;  // 0 = program default budget.
  int64_t max_iter = 0;   // 0 = config default.

  std::string Encode() const;
  static StatusOr<SubmitRequest> Decode(std::string_view payload);
};

/// Admission verdict. `accepted == 0` is backpressure: the global queue is
/// full or the client is at its in-flight cap; `message` says which.
struct SubmitResponse {
  uint8_t accepted = 0;
  int64_t job_id = -1;
  int64_t queue_depth = 0;  // Depth observed at admission time.
  std::string message;

  std::string Encode() const;
  static StatusOr<SubmitResponse> Decode(std::string_view payload);
};

/// Per-verb latency histogram: bucket i counts requests with latency in
/// [2^(i-1), 2^i) microseconds (bucket 0: < 1us); the last bucket absorbs
/// overflow.
constexpr int kKpcLatencyBuckets = 22;

struct VerbLatency {
  int64_t count = 0;
  int64_t total_micros = 0;
  int64_t max_micros = 0;
  int64_t buckets[kKpcLatencyBuckets] = {};
};

/// The verbs with latency accounting, indexing ServeStatsSnapshot::verbs.
enum KpcVerb : int {
  kVerbFetchSubset = 0,
  kVerbQuery = 1,
  kVerbSubmit = 2,
  kVerbStats = 3,
  kKpcVerbCount = 4,
};

/// Returns the display name of a verb index ("fetch-subset", ...).
const char* KpcVerbName(int verb);

/// stats: a point-in-time snapshot of the daemon's counters.
struct ServeStatsSnapshot {
  // Subset cache.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;        // Capacity (LRU) evictions.
  int64_t cache_stale_evictions = 0;  // Fingerprint-changed invalidations.
  int64_t cache_entries = 0;
  int64_t cache_bytes = 0;
  int64_t cache_capacity_bytes = 0;

  // Sessions.
  int64_t sessions_accepted = 0;
  int64_t sessions_active = 0;
  int64_t requests_total = 0;
  int64_t protocol_errors = 0;

  // Campaign admission + execution.
  int64_t campaigns_submitted = 0;
  int64_t campaigns_rejected = 0;
  int64_t campaigns_completed = 0;
  int64_t campaigns_failed = 0;
  int64_t campaign_queue_depth = 0;  // Accepted, not yet running.
  int64_t campaign_inflight = 0;     // Running right now.
  int64_t lineage_bytes_written = 0;  // Kel2Writer::bytes_written() totals.

  // Open-store pool.
  int64_t stores_open = 0;
  int64_t stores_reopened = 0;  // Stale fingerprint forced a reopen.

  VerbLatency verbs[kKpcVerbCount];

  std::string Encode() const;
  static StatusOr<ServeStatsSnapshot> Decode(std::string_view payload);
};

/// Error frame payload: a Status on the wire.
struct KpcError {
  uint32_t code = 0;  // StatusCode cast.
  std::string message;

  std::string Encode() const;
  static StatusOr<KpcError> Decode(std::string_view payload);

  static KpcError FromStatus(const Status& status);
  Status ToStatus() const;
};

}  // namespace kondo

#endif  // KONDO_SERVE_KPC_H_
