#include "serve/blast.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "serve/client.h"
#include "serve/kpc.h"

namespace kondo {
namespace {

struct ClientTally {
  int64_t ok = 0;
  int64_t failed = 0;
  int64_t bytes = 0;
  std::vector<int64_t> latencies_micros;
  std::string first_response;  // Raw frame of the first success.
  bool responses_identical = true;
};

void ClientLoop(const BlastOptions& options, ClientTally* tally) {
  StatusOr<std::unique_ptr<KpcClient>> client =
      KpcClient::Connect(options.address);
  if (!client.ok()) {
    tally->failed = options.requests;
    return;
  }
  FetchSubsetRequest request;
  request.artifact = options.artifact;
  request.begin = options.begin;
  request.end = options.end;
  tally->latencies_micros.reserve(static_cast<size_t>(options.requests));
  for (int i = 0; i < options.requests; ++i) {
    Stopwatch stopwatch;
    StatusOr<std::string> raw = (*client)->FetchSubsetRaw(request);
    if (!raw.ok()) {
      ++tally->failed;
      continue;
    }
    tally->latencies_micros.push_back(stopwatch.ElapsedMicros());
    ++tally->ok;
    tally->bytes += static_cast<int64_t>(raw->size());
    if (tally->first_response.empty()) {
      tally->first_response = std::move(*raw);
    } else if (*raw != tally->first_response) {
      tally->responses_identical = false;
    }
  }
}

int64_t Percentile(const std::vector<int64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

}  // namespace

StatusOr<BlastReport> RunBlast(const BlastOptions& options) {
  if (options.clients < 1 || options.requests < 1) {
    return InvalidArgumentError("blast needs clients >= 1 and requests >= 1");
  }
  std::vector<ClientTally> tallies(static_cast<size_t>(options.clients));
  std::vector<std::thread> threads;
  threads.reserve(tallies.size());
  Stopwatch stopwatch;
  for (ClientTally& tally : tallies) {
    threads.emplace_back(
        [&options, &tally] { ClientLoop(options, &tally); });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const double elapsed = stopwatch.ElapsedSeconds();

  BlastReport report;
  report.elapsed_seconds = elapsed;
  std::vector<int64_t> latencies;
  const std::string* reference = nullptr;
  for (const ClientTally& tally : tallies) {
    report.ok_requests += tally.ok;
    report.failed_requests += tally.failed;
    report.bytes_received += tally.bytes;
    report.responses_identical =
        report.responses_identical && tally.responses_identical;
    latencies.insert(latencies.end(), tally.latencies_micros.begin(),
                     tally.latencies_micros.end());
    if (tally.first_response.empty()) continue;
    if (reference == nullptr) {
      reference = &tally.first_response;
    } else if (tally.first_response != *reference) {
      // Cross-client mismatch: two clients saw different bytes for the
      // same slice.
      report.responses_identical = false;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  report.p50_micros = Percentile(latencies, 0.50);
  report.p90_micros = Percentile(latencies, 0.90);
  report.p99_micros = Percentile(latencies, 0.99);
  report.max_micros = latencies.empty() ? 0 : latencies.back();
  report.throughput_rps =
      elapsed > 0.0 ? static_cast<double>(report.ok_requests) / elapsed : 0.0;
  return report;
}

}  // namespace kondo
