#include "serve/subset_cache.h"

#include <utility>
#include <vector>

namespace kondo {

SubsetCache::SubsetCache(int64_t capacity_bytes)
    : capacity_(capacity_bytes > 0 ? capacity_bytes : 0) {}

std::shared_ptr<const std::string> SubsetCache::Get(const SubsetKey& key) {
  MutexLock lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  // Refresh recency: splice the entry to the front of the LRU list.
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->payload;
}

void SubsetCache::EvictForLocked(int64_t need) {
  while (stats_.bytes + need > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    stats_.bytes -= static_cast<int64_t>(victim.payload->size());
    --stats_.entries;
    ++stats_.evictions;
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

std::shared_ptr<const std::string> SubsetCache::Put(const SubsetKey& key,
                                                    std::string payload) {
  MutexLock lock(mu_);
  if (const auto it = index_.find(key); it != index_.end()) {
    // Raced with another session loading the same slice: keep the first
    // insertion (byte-identical by construction) and refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->payload;
  }
  auto value = std::make_shared<const std::string>(std::move(payload));
  const int64_t size = static_cast<int64_t>(value->size());
  if (size > capacity_) {
    // Larger than the whole cache: serve it, never cache it.
    return value;
  }
  EvictForLocked(size);
  lru_.push_front(Entry{key, value});
  index_[key] = lru_.begin();
  stats_.bytes += size;
  ++stats_.entries;
  ++stats_.insertions;
  return value;
}

int64_t SubsetCache::EvictStale(const std::string& artifact,
                                int64_t fingerprint_bytes,
                                uint32_t fingerprint_crc) {
  MutexLock lock(mu_);
  int64_t dropped = 0;
  // The index is ordered by artifact first, so the artifact's entries form
  // one contiguous key range.
  auto it = index_.lower_bound(SubsetKey{artifact, INT64_MIN, 0, INT64_MIN,
                                         INT64_MIN});
  while (it != index_.end() && it->first.artifact == artifact) {
    if (it->first.fingerprint_bytes == fingerprint_bytes &&
        it->first.fingerprint_crc == fingerprint_crc) {
      ++it;
      continue;
    }
    stats_.bytes -= static_cast<int64_t>(it->second->payload->size());
    --stats_.entries;
    ++stats_.stale_evictions;
    ++dropped;
    lru_.erase(it->second);
    it = index_.erase(it);
  }
  return dropped;
}

SubsetCacheStats SubsetCache::stats() const {
  MutexLock lock(mu_);
  SubsetCacheStats out = stats_;
  out.capacity_bytes = capacity_;
  return out;
}

}  // namespace kondo
