#ifndef KONDO_SERVE_SUBSET_CACHE_H_
#define KONDO_SERVE_SUBSET_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "common/thread_annotations.h"

namespace kondo {

/// Cache key for one served D_Θ slice: the artifact's pool name, its
/// whole-file fingerprint (byte count + CRC32 — exactly what the shard KSS
/// `A` line records for sealed lineage stores), the requested linear
/// element range, and — for `.kdp` packages — the pack fingerprint (the
/// KDP manifest CRC). Keying on the fingerprints makes coherence
/// structural: an artifact rewritten or repacked on disk hashes to a
/// different key, so stale bytes are unreachable rather than specially
/// invalidated.
struct SubsetKey {
  std::string artifact;
  int64_t fingerprint_bytes = 0;
  uint32_t fingerprint_crc = 0;
  int64_t begin = 0;
  int64_t end = 0;
  uint32_t pack_crc = 0;  // KDP manifest CRC; 0 for plain `.kdd` artifacts.

  friend bool operator<(const SubsetKey& a, const SubsetKey& b) {
    if (a.artifact != b.artifact) return a.artifact < b.artifact;
    if (a.fingerprint_bytes != b.fingerprint_bytes)
      return a.fingerprint_bytes < b.fingerprint_bytes;
    if (a.fingerprint_crc != b.fingerprint_crc)
      return a.fingerprint_crc < b.fingerprint_crc;
    if (a.begin != b.begin) return a.begin < b.begin;
    if (a.end != b.end) return a.end < b.end;
    return a.pack_crc < b.pack_crc;
  }
  friend bool operator==(const SubsetKey& a, const SubsetKey& b) {
    return a.artifact == b.artifact &&
           a.fingerprint_bytes == b.fingerprint_bytes &&
           a.fingerprint_crc == b.fingerprint_crc && a.begin == b.begin &&
           a.end == b.end && a.pack_crc == b.pack_crc;
  }
};

struct SubsetCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;        // Capacity (LRU) evictions.
  int64_t stale_evictions = 0;  // Dropped because the fingerprint changed.
  int64_t entries = 0;
  int64_t bytes = 0;
  int64_t capacity_bytes = 0;
};

/// Byte-capacity LRU cache of encoded FetchSubsetResponse payloads,
/// thread-safe. Values are shared immutable strings: a hit hands back the
/// exact bytes a miss inserted, which is what makes hit and miss responses
/// bit-identical on the wire.
///
/// Eviction is deterministic: strict least-recently-used order, evicting
/// until the new entry fits. An entry larger than the whole capacity is
/// served but never cached.
class SubsetCache {
 public:
  explicit SubsetCache(int64_t capacity_bytes);

  /// Returns the cached payload and refreshes recency, or nullptr (counts
  /// a miss).
  std::shared_ptr<const std::string> Get(const SubsetKey& key)
      KONDO_EXCLUDES(mu_);

  /// Inserts (or refreshes) the payload for `key`, evicting LRU entries as
  /// needed. Returns the (possibly pre-existing) cached value.
  std::shared_ptr<const std::string> Put(const SubsetKey& key,
                                         std::string payload)
      KONDO_EXCLUDES(mu_);

  /// Drops every entry of `artifact` whose fingerprint differs from the
  /// given one; returns the count. Called on each miss-load so entries of
  /// overwritten artifacts don't squat in the LRU until capacity pressure
  /// finds them.
  int64_t EvictStale(const std::string& artifact, int64_t fingerprint_bytes,
                     uint32_t fingerprint_crc) KONDO_EXCLUDES(mu_);

  SubsetCacheStats stats() const KONDO_EXCLUDES(mu_);

 private:
  struct Entry {
    SubsetKey key;
    std::shared_ptr<const std::string> payload;
  };
  using LruList = std::list<Entry>;

  /// Must hold mu_. Evicts from the LRU tail until `need` bytes fit.
  void EvictForLocked(int64_t need) KONDO_REQUIRES(mu_);

  const int64_t capacity_;
  mutable Mutex mu_;
  LruList lru_ KONDO_GUARDED_BY(mu_);  // Front = most recently used.
  std::map<SubsetKey, LruList::iterator> index_ KONDO_GUARDED_BY(mu_);
  SubsetCacheStats stats_ KONDO_GUARDED_BY(mu_);
};

}  // namespace kondo

#endif  // KONDO_SERVE_SUBSET_CACHE_H_
