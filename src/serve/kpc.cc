#include "serve/kpc.h"

#include <cstring>

#include "common/strings.h"
#include "provenance/crc32.h"

namespace kondo {

// ---------------------------------------------------------------------------
// Primitives.

void KpcAppendU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void KpcAppendU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void KpcAppendI64(int64_t v, std::string* out) {
  uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((u >> (8 * i)) & 0xff));
  }
}

void KpcAppendF64(double v, std::string* out) {
  uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((u >> (8 * i)) & 0xff));
  }
}

void KpcAppendString(std::string_view v, std::string* out) {
  KpcAppendU32(static_cast<uint32_t>(v.size()), out);
  out->append(v.data(), v.size());
}

Status KpcCursor::Take(size_t n, const char** p) {
  if (data_.size() - pos_ < n) {
    return DataLossError(StrCat("KPC payload underrun: need ", n,
                                " bytes, have ", data_.size() - pos_));
  }
  *p = data_.data() + pos_;
  pos_ += n;
  return OkStatus();
}

Status KpcCursor::ReadU8(uint8_t* v) {
  const char* p = nullptr;
  KONDO_RETURN_IF_ERROR(Take(1, &p));
  *v = static_cast<uint8_t>(*p);
  return OkStatus();
}

Status KpcCursor::ReadU32(uint32_t* v) {
  const char* p = nullptr;
  KONDO_RETURN_IF_ERROR(Take(4, &p));
  uint32_t u = 0;
  for (int i = 0; i < 4; ++i) {
    u |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = u;
  return OkStatus();
}

Status KpcCursor::ReadI64(int64_t* v) {
  const char* p = nullptr;
  KONDO_RETURN_IF_ERROR(Take(8, &p));
  uint64_t u = 0;
  for (int i = 0; i < 8; ++i) {
    u |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  std::memcpy(v, &u, sizeof(u));
  return OkStatus();
}

Status KpcCursor::ReadF64(double* v) {
  int64_t bits = 0;
  KONDO_RETURN_IF_ERROR(ReadI64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return OkStatus();
}

Status KpcCursor::ReadString(std::string* v) {
  uint32_t size = 0;
  KONDO_RETURN_IF_ERROR(ReadU32(&size));
  if (size > kKpcMaxPayloadBytes) {
    return DataLossError(StrCat("KPC string too large: ", size));
  }
  const char* p = nullptr;
  KONDO_RETURN_IF_ERROR(Take(size, &p));
  v->assign(p, size);
  return OkStatus();
}

Status KpcCursor::Done() const {
  if (pos_ != data_.size()) {
    return DataLossError(StrCat("KPC payload has ", data_.size() - pos_,
                                " trailing bytes"));
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Framing.

void AppendKpcFrame(KpcKind kind, std::string_view payload,
                    std::string* out) {
  const size_t header_start = out->size();
  out->append(kKpcMagic, sizeof(kKpcMagic));
  KpcAppendU8(static_cast<uint8_t>(kind), out);
  KpcAppendU8(0, out);
  KpcAppendU8(0, out);
  KpcAppendU8(0, out);
  KpcAppendU32(static_cast<uint32_t>(payload.size()), out);
  out->append(payload.data(), payload.size());
  // CRC over kind..payload — everything after the magic.
  const uint32_t crc =
      Crc32(out->data() + header_start + sizeof(kKpcMagic),
            out->size() - header_start - sizeof(kKpcMagic));
  KpcAppendU32(crc, out);
}

Status WriteKpcFrame(Connection& conn, KpcKind kind,
                     std::string_view payload) {
  std::string frame;
  frame.reserve(kKpcHeaderBytes + payload.size() + kKpcTrailerBytes);
  AppendKpcFrame(kind, payload, &frame);
  return conn.WriteFully(frame);
}

StatusOr<KpcFrame> ReadKpcFrame(Connection& conn) {
  char header[kKpcHeaderBytes];
  KONDO_RETURN_IF_ERROR(conn.ReadFully(header, sizeof(header)));
  if (std::memcmp(header, kKpcMagic, sizeof(kKpcMagic)) != 0) {
    return DataLossError("bad KPC frame magic");
  }
  uint32_t payload_bytes = 0;
  for (int i = 0; i < 4; ++i) {
    payload_bytes |=
        static_cast<uint32_t>(static_cast<uint8_t>(header[8 + i])) << (8 * i);
  }
  if (payload_bytes > kKpcMaxPayloadBytes) {
    return DataLossError(
        StrCat("KPC frame payload too large: ", payload_bytes));
  }
  KpcFrame frame;
  frame.kind = static_cast<KpcKind>(static_cast<uint8_t>(header[4]));
  frame.payload.resize(payload_bytes);
  if (payload_bytes > 0) {
    KONDO_RETURN_IF_ERROR(conn.ReadFully(frame.payload.data(),
                                         payload_bytes));
  }
  char trailer[kKpcTrailerBytes];
  KONDO_RETURN_IF_ERROR(conn.ReadFully(trailer, sizeof(trailer)));
  uint32_t wire_crc = 0;
  for (int i = 0; i < 4; ++i) {
    wire_crc |=
        static_cast<uint32_t>(static_cast<uint8_t>(trailer[i])) << (8 * i);
  }
  uint32_t crc = Crc32(header + sizeof(kKpcMagic),
                       sizeof(header) - sizeof(kKpcMagic));
  crc = Crc32Update(crc, frame.payload.data(), frame.payload.size());
  if (crc != wire_crc) {
    return DataLossError("KPC frame CRC mismatch");
  }
  return frame;
}

// ---------------------------------------------------------------------------
// Verb payloads.

std::string FetchSubsetRequest::Encode() const {
  std::string out;
  KpcAppendString(artifact, &out);
  KpcAppendI64(begin, &out);
  KpcAppendI64(end, &out);
  return out;
}

StatusOr<FetchSubsetRequest> FetchSubsetRequest::Decode(
    std::string_view payload) {
  FetchSubsetRequest req;
  KpcCursor cur(payload);
  KONDO_RETURN_IF_ERROR(cur.ReadString(&req.artifact));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&req.begin));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&req.end));
  KONDO_RETURN_IF_ERROR(cur.Done());
  return req;
}

std::string FetchSubsetResponse::Encode() const {
  std::string out;
  KpcAppendI64(fingerprint_bytes, &out);
  KpcAppendU32(fingerprint_crc, &out);
  KpcAppendI64(begin, &out);
  KpcAppendI64(end, &out);
  KpcAppendU32(static_cast<uint32_t>(present.size()), &out);
  for (uint8_t p : present) {
    KpcAppendU8(p, &out);
  }
  KpcAppendU32(static_cast<uint32_t>(values.size()), &out);
  for (double v : values) {
    KpcAppendF64(v, &out);
  }
  return out;
}

StatusOr<FetchSubsetResponse> FetchSubsetResponse::Decode(
    std::string_view payload) {
  FetchSubsetResponse resp;
  KpcCursor cur(payload);
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&resp.fingerprint_bytes));
  KONDO_RETURN_IF_ERROR(cur.ReadU32(&resp.fingerprint_crc));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&resp.begin));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&resp.end));
  // Each count is bounded by the bytes its elements must still consume
  // before any allocation happens: a hostile 32-bit count can never command
  // more memory than the (already frame-capped) payload that carried it.
  uint32_t count = 0;
  KONDO_RETURN_IF_ERROR(cur.ReadU32(&count));
  if (count > cur.remaining()) {
    return DataLossError(StrCat("KPC subset present count ", count,
                                " overruns the remaining ", cur.remaining(),
                                "-byte payload"));
  }
  resp.present.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    KONDO_RETURN_IF_ERROR(cur.ReadU8(&resp.present[i]));
  }
  KONDO_RETURN_IF_ERROR(cur.ReadU32(&count));
  if (count > cur.remaining() / 8) {  // 8 payload bytes per f64 value.
    return DataLossError(StrCat("KPC subset value count ", count,
                                " overruns the remaining ", cur.remaining(),
                                "-byte payload"));
  }
  resp.values.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    KONDO_RETURN_IF_ERROR(cur.ReadF64(&resp.values[i]));
  }
  KONDO_RETURN_IF_ERROR(cur.Done());
  return resp;
}

std::string QueryRequest::Encode() const {
  std::string out;
  KpcAppendString(store, &out);
  KpcAppendI64(file_id, &out);
  KpcAppendI64(begin, &out);
  KpcAppendI64(end, &out);
  KpcAppendU8(runs_only, &out);
  return out;
}

StatusOr<QueryRequest> QueryRequest::Decode(std::string_view payload) {
  QueryRequest req;
  KpcCursor cur(payload);
  KONDO_RETURN_IF_ERROR(cur.ReadString(&req.store));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&req.file_id));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&req.begin));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&req.end));
  KONDO_RETURN_IF_ERROR(cur.ReadU8(&req.runs_only));
  KONDO_RETURN_IF_ERROR(cur.Done());
  return req;
}

std::string EventBatch::Encode() const {
  std::string out;
  KpcAppendU32(static_cast<uint32_t>(events.size()), &out);
  for (const Event& event : events) {
    KpcAppendI64(event.id.pid, &out);
    KpcAppendI64(event.id.file_id, &out);
    KpcAppendU8(static_cast<uint8_t>(event.type), &out);
    KpcAppendI64(event.offset, &out);
    KpcAppendI64(event.size, &out);
  }
  return out;
}

StatusOr<EventBatch> EventBatch::Decode(std::string_view payload) {
  EventBatch batch;
  KpcCursor cur(payload);
  uint32_t count = 0;
  KONDO_RETURN_IF_ERROR(cur.ReadU32(&count));
  // Each event is 33 wire bytes (pid + file_id + type + offset + size), so
  // the count is provably short before the batch allocates anything.
  if (count > cur.remaining() / 33) {
    return DataLossError(StrCat("KPC event batch count ", count,
                                " overruns the remaining ", cur.remaining(),
                                "-byte payload"));
  }
  batch.events.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    Event& event = batch.events[i];
    uint8_t type = 0;
    KONDO_RETURN_IF_ERROR(cur.ReadI64(&event.id.pid));
    KONDO_RETURN_IF_ERROR(cur.ReadI64(&event.id.file_id));
    KONDO_RETURN_IF_ERROR(cur.ReadU8(&type));
    KONDO_RETURN_IF_ERROR(cur.ReadI64(&event.offset));
    KONDO_RETURN_IF_ERROR(cur.ReadI64(&event.size));
    event.type = static_cast<EventType>(type);
  }
  KONDO_RETURN_IF_ERROR(cur.Done());
  return batch;
}

std::string QueryDone::Encode() const {
  std::string out;
  KpcAppendI64(events_total, &out);
  KpcAppendU32(static_cast<uint32_t>(runs.size()), &out);
  for (int64_t pid : runs) {
    KpcAppendI64(pid, &out);
  }
  KpcAppendI64(blocks_considered, &out);
  KpcAppendI64(blocks_skipped, &out);
  KpcAppendI64(blocks_decoded, &out);
  return out;
}

StatusOr<QueryDone> QueryDone::Decode(std::string_view payload) {
  QueryDone done;
  KpcCursor cur(payload);
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&done.events_total));
  uint32_t count = 0;
  KONDO_RETURN_IF_ERROR(cur.ReadU32(&count));
  if (count > cur.remaining() / 8) {  // 8 payload bytes per run pid.
    return DataLossError(StrCat("KPC run count ", count,
                                " overruns the remaining ", cur.remaining(),
                                "-byte payload"));
  }
  done.runs.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    KONDO_RETURN_IF_ERROR(cur.ReadI64(&done.runs[i]));
  }
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&done.blocks_considered));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&done.blocks_skipped));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&done.blocks_decoded));
  KONDO_RETURN_IF_ERROR(cur.Done());
  return done;
}

std::string SubmitRequest::Encode() const {
  std::string out;
  KpcAppendString(program, &out);
  KpcAppendI64(seed, &out);
  KpcAppendI64(max_evals, &out);
  KpcAppendI64(max_iter, &out);
  return out;
}

StatusOr<SubmitRequest> SubmitRequest::Decode(std::string_view payload) {
  SubmitRequest req;
  KpcCursor cur(payload);
  KONDO_RETURN_IF_ERROR(cur.ReadString(&req.program));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&req.seed));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&req.max_evals));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&req.max_iter));
  KONDO_RETURN_IF_ERROR(cur.Done());
  return req;
}

std::string SubmitResponse::Encode() const {
  std::string out;
  KpcAppendU8(accepted, &out);
  KpcAppendI64(job_id, &out);
  KpcAppendI64(queue_depth, &out);
  KpcAppendString(message, &out);
  return out;
}

StatusOr<SubmitResponse> SubmitResponse::Decode(std::string_view payload) {
  SubmitResponse resp;
  KpcCursor cur(payload);
  KONDO_RETURN_IF_ERROR(cur.ReadU8(&resp.accepted));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&resp.job_id));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&resp.queue_depth));
  KONDO_RETURN_IF_ERROR(cur.ReadString(&resp.message));
  KONDO_RETURN_IF_ERROR(cur.Done());
  return resp;
}

const char* KpcVerbName(int verb) {
  switch (verb) {
    case kVerbFetchSubset:
      return "fetch-subset";
    case kVerbQuery:
      return "query-provenance";
    case kVerbSubmit:
      return "submit-campaign";
    case kVerbStats:
      return "stats";
    default:
      return "unknown";
  }
}

namespace {

void AppendVerbLatency(const VerbLatency& v, std::string* out) {
  KpcAppendI64(v.count, out);
  KpcAppendI64(v.total_micros, out);
  KpcAppendI64(v.max_micros, out);
  for (int i = 0; i < kKpcLatencyBuckets; ++i) {
    KpcAppendI64(v.buckets[i], out);
  }
}

Status ReadVerbLatency(KpcCursor* cur, VerbLatency* v) {
  KONDO_RETURN_IF_ERROR(cur->ReadI64(&v->count));
  KONDO_RETURN_IF_ERROR(cur->ReadI64(&v->total_micros));
  KONDO_RETURN_IF_ERROR(cur->ReadI64(&v->max_micros));
  for (int i = 0; i < kKpcLatencyBuckets; ++i) {
    KONDO_RETURN_IF_ERROR(cur->ReadI64(&v->buckets[i]));
  }
  return OkStatus();
}

}  // namespace

std::string ServeStatsSnapshot::Encode() const {
  std::string out;
  KpcAppendI64(cache_hits, &out);
  KpcAppendI64(cache_misses, &out);
  KpcAppendI64(cache_evictions, &out);
  KpcAppendI64(cache_stale_evictions, &out);
  KpcAppendI64(cache_entries, &out);
  KpcAppendI64(cache_bytes, &out);
  KpcAppendI64(cache_capacity_bytes, &out);
  KpcAppendI64(sessions_accepted, &out);
  KpcAppendI64(sessions_active, &out);
  KpcAppendI64(requests_total, &out);
  KpcAppendI64(protocol_errors, &out);
  KpcAppendI64(campaigns_submitted, &out);
  KpcAppendI64(campaigns_rejected, &out);
  KpcAppendI64(campaigns_completed, &out);
  KpcAppendI64(campaigns_failed, &out);
  KpcAppendI64(campaign_queue_depth, &out);
  KpcAppendI64(campaign_inflight, &out);
  KpcAppendI64(lineage_bytes_written, &out);
  KpcAppendI64(stores_open, &out);
  KpcAppendI64(stores_reopened, &out);
  for (int v = 0; v < kKpcVerbCount; ++v) {
    AppendVerbLatency(verbs[v], &out);
  }
  return out;
}

StatusOr<ServeStatsSnapshot> ServeStatsSnapshot::Decode(
    std::string_view payload) {
  ServeStatsSnapshot s;
  KpcCursor cur(payload);
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&s.cache_hits));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&s.cache_misses));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&s.cache_evictions));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&s.cache_stale_evictions));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&s.cache_entries));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&s.cache_bytes));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&s.cache_capacity_bytes));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&s.sessions_accepted));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&s.sessions_active));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&s.requests_total));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&s.protocol_errors));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&s.campaigns_submitted));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&s.campaigns_rejected));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&s.campaigns_completed));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&s.campaigns_failed));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&s.campaign_queue_depth));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&s.campaign_inflight));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&s.lineage_bytes_written));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&s.stores_open));
  KONDO_RETURN_IF_ERROR(cur.ReadI64(&s.stores_reopened));
  for (int v = 0; v < kKpcVerbCount; ++v) {
    KONDO_RETURN_IF_ERROR(ReadVerbLatency(&cur, &s.verbs[v]));
  }
  KONDO_RETURN_IF_ERROR(cur.Done());
  return s;
}

std::string KpcError::Encode() const {
  std::string out;
  KpcAppendU32(code, &out);
  KpcAppendString(message, &out);
  return out;
}

StatusOr<KpcError> KpcError::Decode(std::string_view payload) {
  KpcError err;
  KpcCursor cur(payload);
  KONDO_RETURN_IF_ERROR(cur.ReadU32(&err.code));
  KONDO_RETURN_IF_ERROR(cur.ReadString(&err.message));
  KONDO_RETURN_IF_ERROR(cur.Done());
  return err;
}

KpcError KpcError::FromStatus(const Status& status) {
  KpcError err;
  err.code = static_cast<uint32_t>(status.code());
  err.message = status.message();
  return err;
}

Status KpcError::ToStatus() const {
  return Status(static_cast<StatusCode>(code), message);
}

}  // namespace kondo
