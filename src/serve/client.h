#ifndef KONDO_SERVE_CLIENT_H_
#define KONDO_SERVE_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/socket.h"
#include "common/statusor.h"
#include "serve/kpc.h"

namespace kondo {

/// A query's full server response: the streamed events (empty when
/// runs_only was set) and the terminating totals frame.
struct QueryResult {
  std::vector<Event> events;
  QueryDone done;
};

/// One KPC connection to a kondo daemon. Not thread-safe — requests on a
/// connection are strictly serial (the protocol has no request ids);
/// concurrent load uses one client per thread, which is exactly what
/// `kondo blast` does.
class KpcClient {
 public:
  static StatusOr<std::unique_ptr<KpcClient>> Connect(
      const SocketAddress& address);

  StatusOr<FetchSubsetResponse> FetchSubset(const FetchSubsetRequest& request);

  /// Like FetchSubset but returns the response re-framed exactly as it
  /// crossed the wire (header, payload, CRC trailer) — the bytes the
  /// hit/miss identity contract is asserted on.
  StatusOr<std::string> FetchSubsetRaw(const FetchSubsetRequest& request);

  StatusOr<QueryResult> QueryProvenance(const QueryRequest& request);

  StatusOr<SubmitResponse> SubmitCampaign(const SubmitRequest& request);

  StatusOr<ServeStatsSnapshot> Stats();

 private:
  explicit KpcClient(std::unique_ptr<Connection> conn)
      : conn_(std::move(conn)) {}

  /// Writes the request and reads one frame, turning a kError response
  /// into its carried Status and any other kind than `want` into an error.
  StatusOr<KpcFrame> RoundTrip(KpcKind kind, std::string_view payload,
                               KpcKind want);

  std::unique_ptr<Connection> conn_;
};

}  // namespace kondo

#endif  // KONDO_SERVE_CLIENT_H_
