#include "serve/client.h"

#include <utility>

namespace kondo {

StatusOr<std::unique_ptr<KpcClient>> KpcClient::Connect(
    const SocketAddress& address) {
  KONDO_ASSIGN_OR_RETURN(std::unique_ptr<Connection> conn,
                         NetEnv::Default()->Connect(address));
  return std::unique_ptr<KpcClient>(new KpcClient(std::move(conn)));
}

StatusOr<KpcFrame> KpcClient::RoundTrip(KpcKind kind, std::string_view payload,
                                        KpcKind want) {
  KONDO_RETURN_IF_ERROR(WriteKpcFrame(*conn_, kind, payload));
  KONDO_ASSIGN_OR_RETURN(KpcFrame frame, ReadKpcFrame(*conn_));
  if (frame.kind == KpcKind::kError) {
    KONDO_ASSIGN_OR_RETURN(const KpcError error,
                           KpcError::Decode(frame.payload));
    return error.ToStatus();
  }
  if (frame.kind != want) {
    return DataLossError("unexpected response kind " +
                         std::to_string(static_cast<int>(frame.kind)));
  }
  return frame;
}

StatusOr<FetchSubsetResponse> KpcClient::FetchSubset(
    const FetchSubsetRequest& request) {
  KONDO_ASSIGN_OR_RETURN(
      const KpcFrame frame,
      RoundTrip(KpcKind::kFetchSubsetRequest, request.Encode(),
                KpcKind::kFetchSubsetResponse));
  return FetchSubsetResponse::Decode(frame.payload);
}

StatusOr<std::string> KpcClient::FetchSubsetRaw(
    const FetchSubsetRequest& request) {
  KONDO_ASSIGN_OR_RETURN(
      const KpcFrame frame,
      RoundTrip(KpcKind::kFetchSubsetRequest, request.Encode(),
                KpcKind::kFetchSubsetResponse));
  // Re-framing is byte-exact: the frame encoding is a pure function of
  // (kind, payload), so these are the bytes the server sent.
  std::string raw;
  AppendKpcFrame(frame.kind, frame.payload, &raw);
  return raw;
}

StatusOr<QueryResult> KpcClient::QueryProvenance(const QueryRequest& request) {
  KONDO_RETURN_IF_ERROR(
      WriteKpcFrame(*conn_, KpcKind::kQueryRequest, request.Encode()));
  QueryResult result;
  while (true) {
    KONDO_ASSIGN_OR_RETURN(const KpcFrame frame, ReadKpcFrame(*conn_));
    if (frame.kind == KpcKind::kError) {
      KONDO_ASSIGN_OR_RETURN(const KpcError error,
                             KpcError::Decode(frame.payload));
      return error.ToStatus();
    }
    if (frame.kind == KpcKind::kEventBatch) {
      KONDO_ASSIGN_OR_RETURN(EventBatch batch,
                             EventBatch::Decode(frame.payload));
      result.events.insert(result.events.end(), batch.events.begin(),
                           batch.events.end());
      continue;
    }
    if (frame.kind == KpcKind::kQueryDone) {
      KONDO_ASSIGN_OR_RETURN(result.done, QueryDone::Decode(frame.payload));
      return result;
    }
    return DataLossError("unexpected frame kind " +
                         std::to_string(static_cast<int>(frame.kind)) +
                         " in query stream");
  }
}

StatusOr<SubmitResponse> KpcClient::SubmitCampaign(
    const SubmitRequest& request) {
  KONDO_ASSIGN_OR_RETURN(const KpcFrame frame,
                         RoundTrip(KpcKind::kSubmitRequest, request.Encode(),
                                   KpcKind::kSubmitResponse));
  return SubmitResponse::Decode(frame.payload);
}

StatusOr<ServeStatsSnapshot> KpcClient::Stats() {
  KONDO_ASSIGN_OR_RETURN(const KpcFrame frame,
                         RoundTrip(KpcKind::kStatsRequest, std::string_view(),
                                   KpcKind::kStatsResponse));
  return ServeStatsSnapshot::Decode(frame.payload);
}

}  // namespace kondo
