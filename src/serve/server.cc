#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "common/stopwatch.h"
#include "provenance/kel2_writer.h"
#include "shard/shard_campaign.h"
#include "workloads/registry.h"

namespace kondo {
namespace {

/// Histogram bucket for a latency: bucket 0 is < 1us, bucket i covers
/// [2^(i-1), 2^i) us, the last bucket absorbs overflow.
int LatencyBucket(int64_t micros) {
  int bucket = 0;
  while (bucket < kKpcLatencyBuckets - 1 && micros >= (int64_t{1} << bucket)) {
    ++bucket;
  }
  return bucket;
}

int EffectiveJobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

KondoServer::KondoServer(ServeOptions options)
    : options_(std::move(options)),
      artifacts_(options_.pool_root, options_.cache_bytes) {}

KondoServer::~KondoServer() { Stop(); }

Status KondoServer::Start() {
  {
    MutexLock lock(state_mu_);
    if (started_) {
      return Status(StatusCode::kFailedPrecondition, "server already started");
    }
    started_ = true;
  }
  workers_ = std::make_unique<ThreadPool>(EffectiveJobs(options_.jobs));
  KONDO_ASSIGN_OR_RETURN(listener_,
                         NetEnv::Default()->Listen(options_.address));
  bound_address_ = listener_->address();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return OkStatus();
}

void KondoServer::Stop() {
  {
    MutexLock lock(state_mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
  }
  // Unblock the accept loop, then the session reads.
  listener_->Shutdown();
  accept_thread_.join();
  {
    MutexLock lock(sessions_mu_);
    for (const auto& session : sessions_) {
      session->conn->ShutdownRead();
    }
  }
  // The sessions list is stable now: only the (joined) accept thread added
  // to it, so joining outside the lock is safe — and necessary, since a
  // session's final bookkeeping takes sessions-adjacent mutexes.
  for (const auto& session : sessions_) {
    if (session->thread.joinable()) session->thread.join();
  }
  // Drain every accepted campaign: no job outlives the server.
  std::vector<JobHandle> jobs;
  {
    MutexLock lock(jobs_mu_);
    jobs = all_jobs_;
  }
  for (const JobHandle& job : jobs) {
    job.Wait();
  }
  workers_.reset();
  listener_.reset();
}

void KondoServer::AcceptLoop() {
  while (true) {
    StatusOr<std::unique_ptr<Connection>> conn = listener_->Accept();
    if (!conn.ok()) {
      // Listener shut down (orderly) or irrecoverably failed; either way
      // the accept loop is done.
      return;
    }
    auto session = std::make_unique<Session>();
    session->conn = std::move(*conn);
    Session* raw = session.get();
    {
      MutexLock lock(stats_mu_);
      ++counters_.sessions_accepted;
      ++counters_.sessions_active;
    }
    {
      MutexLock lock(sessions_mu_);
      sessions_.push_back(std::move(session));
    }
    raw->thread = std::thread([this, raw] { SessionLoop(raw); });
  }
}

void KondoServer::SessionLoop(Session* session) {
  while (true) {
    StatusOr<KpcFrame> frame = ReadKpcFrame(*session->conn);
    if (!frame.ok()) {
      // kOutOfRange is the client hanging up between requests; anything
      // else is a torn or corrupt stream.
      if (frame.status().code() != StatusCode::kOutOfRange) {
        MutexLock lock(stats_mu_);
        ++counters_.protocol_errors;
      }
      break;
    }
    {
      MutexLock lock(stats_mu_);
      ++counters_.requests_total;
    }
    if (!Dispatch(session, *frame).ok()) {
      MutexLock lock(stats_mu_);
      ++counters_.protocol_errors;
      break;
    }
  }
  session->conn->ShutdownWrite();
  MutexLock lock(stats_mu_);
  --counters_.sessions_active;
}

Status KondoServer::Dispatch(Session* session, const KpcFrame& frame) {
  Stopwatch stopwatch;
  int verb;
  Status status;
  switch (frame.kind) {
    case KpcKind::kFetchSubsetRequest:
      verb = kVerbFetchSubset;
      status = HandleFetchSubset(*session->conn, frame);
      break;
    case KpcKind::kQueryRequest:
      verb = kVerbQuery;
      status = HandleQuery(*session->conn, frame);
      break;
    case KpcKind::kSubmitRequest:
      verb = kVerbSubmit;
      status = HandleSubmit(session, frame);
      break;
    case KpcKind::kStatsRequest:
      verb = kVerbStats;
      status = HandleStats(*session->conn);
      break;
    default:
      return Status(StatusCode::kDataLoss,
                    "unexpected frame kind " +
                        std::to_string(static_cast<int>(frame.kind)));
  }
  RecordLatency(verb, stopwatch.ElapsedMicros());
  return status;
}

Status KondoServer::WriteError(Connection& conn, const Status& status) {
  return WriteKpcFrame(conn, KpcKind::kError,
                       KpcError::FromStatus(status).Encode());
}

Status KondoServer::HandleFetchSubset(Connection& conn,
                                      const KpcFrame& frame) {
  KONDO_ASSIGN_OR_RETURN(const FetchSubsetRequest request,
                         FetchSubsetRequest::Decode(frame.payload));
  if (options_.fetch_sleep_micros > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.fetch_sleep_micros));
  }
  StatusOr<std::shared_ptr<const std::string>> payload =
      artifacts_.FetchSubsetPayload(request);
  if (!payload.ok()) {
    return WriteError(conn, payload.status());
  }
  return WriteKpcFrame(conn, KpcKind::kFetchSubsetResponse, **payload);
}

Status KondoServer::HandleQuery(Connection& conn, const KpcFrame& frame) {
  KONDO_ASSIGN_OR_RETURN(const QueryRequest request,
                         QueryRequest::Decode(frame.payload));
  StatusOr<std::shared_ptr<ProvenanceStore>> store =
      artifacts_.OpenStore(request.store);
  if (!store.ok()) {
    return WriteError(conn, store.status());
  }
  ProvenanceQueryStats query_stats;
  StatusOr<std::vector<Event>> events = (*store)->EventsOverlapping(
      request.file_id, request.begin, request.end, &query_stats);
  if (!events.ok()) {
    return WriteError(conn, events.status());
  }
  const int batch_size = std::max(options_.events_per_batch, 1);
  if (request.runs_only == 0) {
    for (size_t start = 0; start < events->size();
         start += static_cast<size_t>(batch_size)) {
      EventBatch batch;
      const size_t stop =
          std::min(events->size(), start + static_cast<size_t>(batch_size));
      batch.events.assign(events->begin() + static_cast<int64_t>(start),
                          events->begin() + static_cast<int64_t>(stop));
      KONDO_RETURN_IF_ERROR(
          WriteKpcFrame(conn, KpcKind::kEventBatch, batch.Encode()));
    }
  }
  QueryDone done;
  done.events_total = static_cast<int64_t>(events->size());
  for (const Event& event : *events) {
    done.runs.push_back(event.id.pid);
  }
  std::sort(done.runs.begin(), done.runs.end());
  done.runs.erase(std::unique(done.runs.begin(), done.runs.end()),
                  done.runs.end());
  done.blocks_considered = query_stats.blocks_considered;
  done.blocks_skipped = query_stats.blocks_skipped;
  done.blocks_decoded = query_stats.blocks_decoded;
  return WriteKpcFrame(conn, KpcKind::kQueryDone, done.Encode());
}

Status KondoServer::HandleSubmit(Session* session, const KpcFrame& frame) {
  KONDO_ASSIGN_OR_RETURN(const SubmitRequest request,
                         SubmitRequest::Decode(frame.payload));
  std::shared_ptr<Program> program = CreateProgram(request.program);
  if (program == nullptr) {
    return WriteError(*session->conn,
                      Status(StatusCode::kNotFound,
                             "unknown program: " + request.program));
  }

  // Admission: prune finished handles, then check the per-session
  // in-flight cap and the global accepted-not-yet-running queue.
  session->jobs.erase(
      std::remove_if(session->jobs.begin(), session->jobs.end(),
                     [](const JobHandle& job) { return job.done(); }),
      session->jobs.end());
  SubmitResponse response;
  {
    MutexLock lock(stats_mu_);
    if (counters_.campaign_queue_depth >= options_.queue_capacity) {
      ++counters_.campaigns_rejected;
      response.accepted = 0;
      response.queue_depth = counters_.campaign_queue_depth;
      response.message = "queue full";
    } else if (static_cast<int>(session->jobs.size()) >=
               options_.max_inflight) {
      ++counters_.campaigns_rejected;
      response.accepted = 0;
      response.queue_depth = counters_.campaign_queue_depth;
      response.message = "session in-flight cap reached";
    } else {
      ++counters_.campaigns_submitted;
      ++counters_.campaign_queue_depth;
      response.accepted = 1;
      response.queue_depth = counters_.campaign_queue_depth;
      response.message = "accepted";
    }
  }
  if (response.accepted != 0) {
    KondoConfig config = ScaledKondoConfig(program->data_shape());
    config.rng_seed = static_cast<uint64_t>(request.seed);
    // Campaigns parallelise across submissions, not within one: a pool
    // task must never fan out onto the pool it runs on.
    config.jobs = 1;
    if (request.max_evals > 0) config.fuzz.max_evals = request.max_evals;
    if (request.max_iter > 0) {
      config.fuzz.max_iter = static_cast<int>(request.max_iter);
    }
    int64_t job_id;
    {
      MutexLock lock(jobs_mu_);
      job_id = next_job_id_++;
    }
    response.job_id = job_id;
    JobHandle job = workers_->SubmitJob(
        [this, program, job_id, config] {
          RunCampaignJob(program, job_id, config);
        });
    session->jobs.push_back(job);
    MutexLock lock(jobs_mu_);
    all_jobs_.push_back(std::move(job));
  }
  return WriteKpcFrame(*session->conn, KpcKind::kSubmitResponse,
                       response.Encode());
}

void KondoServer::RunCampaignJob(std::shared_ptr<Program> program,
                                 int64_t job_id, KondoConfig config) {
  {
    MutexLock lock(stats_mu_);
    --counters_.campaign_queue_depth;
    ++counters_.campaign_inflight;
  }
  BusyWaitMicros(options_.job_spin_micros);
  const KondoResult result = KondoPipeline(config).Run(*program);

  // Persist the campaign's discovered lineage: one positioned-read event
  // per retained element, the same byte geometry shard campaigns record.
  const std::string path =
      options_.pool_root + "/job-" + std::to_string(job_id) + ".kel2";
  Status status = OkStatus();
  int64_t bytes = 0;
  StatusOr<Kel2Writer> writer = Kel2Writer::Create(path);
  if (!writer.ok()) {
    status = writer.status();
  } else {
    for (int64_t linear : result.approx.ToSortedLinearIds()) {
      Event event;
      event.id.pid = job_id;
      event.id.file_id = 1;
      event.type = EventType::kPread;
      event.offset = linear * kLineageElemBytes;
      event.size = kLineageElemBytes;
      status = writer->Append(event);
      if (!status.ok()) break;
    }
    if (status.ok()) status = writer->Close();
    bytes = writer->bytes_written();
  }

  MutexLock lock(stats_mu_);
  --counters_.campaign_inflight;
  if (status.ok()) {
    ++counters_.campaigns_completed;
    counters_.lineage_bytes_written += bytes;
  } else {
    ++counters_.campaigns_failed;
  }
}

Status KondoServer::HandleStats(Connection& conn) {
  return WriteKpcFrame(conn, KpcKind::kStatsResponse, Stats().Encode());
}

ServeStatsSnapshot KondoServer::Stats() const {
  ServeStatsSnapshot snapshot;
  {
    MutexLock lock(stats_mu_);
    snapshot = counters_;
  }
  const SubsetCacheStats cache = artifacts_.cache_stats();
  snapshot.cache_hits = cache.hits;
  snapshot.cache_misses = cache.misses;
  snapshot.cache_evictions = cache.evictions;
  snapshot.cache_stale_evictions = cache.stale_evictions;
  snapshot.cache_entries = cache.entries;
  snapshot.cache_bytes = cache.bytes;
  snapshot.cache_capacity_bytes = cache.capacity_bytes;
  snapshot.stores_open = artifacts_.stores_open();
  snapshot.stores_reopened = artifacts_.stores_reopened();
  return snapshot;
}

void KondoServer::RecordLatency(int verb, int64_t micros) {
  MutexLock lock(stats_mu_);
  VerbLatency& latency = counters_.verbs[verb];
  ++latency.count;
  latency.total_micros += micros;
  latency.max_micros = std::max(latency.max_micros, micros);
  ++latency.buckets[LatencyBucket(micros)];
}

}  // namespace kondo
