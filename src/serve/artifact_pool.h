#ifndef KONDO_SERVE_ARTIFACT_POOL_H_
#define KONDO_SERVE_ARTIFACT_POOL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "pack/pack_reader.h"
#include "provenance/provenance_store.h"
#include "serve/kpc.h"
#include "serve/subset_cache.h"

namespace kondo {

/// The artefacts a kondo daemon serves from: a flat pool directory of
/// `.kdd` debloated arrays and `.kdp` packages (fetch-subset) and `.kel2`
/// lineage stores (query-provenance), fronted by the fingerprint-keyed
/// subset cache and pools of open ProvenanceStore / PackReader handles.
///
/// Every fetch re-fingerprints the artifact file (the same byte-count +
/// CRC32 a shard KSS `A` line records), so a pool file rewritten between
/// requests misses the cache naturally and its older entries are swept as
/// stale. The open-handle pools do the analogous check for KEL2 stores and
/// KDP packages, reopening a handle whose file changed underneath it — for
/// packages the subset-cache key additionally embeds the pack fingerprint
/// (manifest CRC), so a repack can never serve stale cached slices.
class ArtifactPool {
 public:
  ArtifactPool(std::string root, int64_t cache_bytes);

  /// Resolves a client-supplied pool-relative name. kInvalidArgument for
  /// empty names, absolute paths, or any ".." component — clients name
  /// pool members, they do not address the filesystem.
  StatusOr<std::string> ResolvePath(const std::string& name) const;

  /// Builds (or serves from cache) the encoded FetchSubsetResponse payload
  /// for the request. The returned bytes are shared with the cache: a hit
  /// returns the identical string a miss inserted.
  StatusOr<std::shared_ptr<const std::string>> FetchSubsetPayload(
      const FetchSubsetRequest& request) KONDO_EXCLUDES(stores_mu_);

  /// Returns the open ProvenanceStore for a pooled `.kel2` name, opening
  /// or (on fingerprint change) reopening it.
  StatusOr<std::shared_ptr<ProvenanceStore>> OpenStore(
      const std::string& name) KONDO_EXCLUDES(stores_mu_);

  /// Returns the open PackReader for a pooled `.kdp` name, opening or (on
  /// fingerprint change, e.g. after a repack) reopening it.
  StatusOr<std::shared_ptr<PackReader>> OpenPack(const std::string& name)
      KONDO_EXCLUDES(packs_mu_);

  SubsetCacheStats cache_stats() const { return cache_.stats(); }
  int64_t stores_open() const KONDO_EXCLUDES(stores_mu_);
  int64_t stores_reopened() const KONDO_EXCLUDES(stores_mu_);
  int64_t packs_open() const KONDO_EXCLUDES(packs_mu_);
  int64_t packs_reopened() const KONDO_EXCLUDES(packs_mu_);
  const std::string& root() const { return root_; }

 private:
  struct OpenStoreEntry {
    int64_t fingerprint_bytes = 0;
    uint32_t fingerprint_crc = 0;
    std::shared_ptr<ProvenanceStore> handle;
  };
  struct OpenPackEntry {
    int64_t fingerprint_bytes = 0;
    uint32_t fingerprint_crc = 0;
    std::shared_ptr<PackReader> handle;
  };

  const std::string root_;
  SubsetCache cache_;
  mutable Mutex stores_mu_;
  std::map<std::string, OpenStoreEntry> stores_ KONDO_GUARDED_BY(stores_mu_);
  int64_t stores_reopened_ KONDO_GUARDED_BY(stores_mu_) = 0;
  mutable Mutex packs_mu_;
  std::map<std::string, OpenPackEntry> packs_ KONDO_GUARDED_BY(packs_mu_);
  int64_t packs_reopened_ KONDO_GUARDED_BY(packs_mu_) = 0;
};

}  // namespace kondo

#endif  // KONDO_SERVE_ARTIFACT_POOL_H_
