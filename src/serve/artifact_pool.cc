#include "serve/artifact_pool.h"

#include <utility>
#include <vector>

#include "array/debloated_array.h"
#include "shard/shard_campaign.h"

namespace kondo {
namespace {

/// True if `name` contains a ".." path component.
bool HasDotDotComponent(const std::string& name) {
  size_t start = 0;
  while (start <= name.size()) {
    size_t slash = name.find('/', start);
    if (slash == std::string::npos) slash = name.size();
    if (slash - start == 2 && name[start] == '.' && name[start + 1] == '.') {
      return true;
    }
    start = slash + 1;
  }
  return false;
}

/// True when the pool name addresses a KDP package.
bool IsPackName(const std::string& name) {
  const std::string suffix = ".kdp";
  return name.size() > suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

}  // namespace

ArtifactPool::ArtifactPool(std::string root, int64_t cache_bytes)
    : root_(std::move(root)), cache_(cache_bytes) {}

StatusOr<std::string> ArtifactPool::ResolvePath(
    const std::string& name) const {
  if (name.empty()) {
    return Status(StatusCode::kInvalidArgument, "empty artifact name");
  }
  if (name.front() == '/') {
    return Status(StatusCode::kInvalidArgument,
                  "artifact name must be pool-relative: " + name);
  }
  if (HasDotDotComponent(name)) {
    return Status(StatusCode::kInvalidArgument,
                  "artifact name must not contain '..': " + name);
  }
  return root_ + "/" + name;
}

StatusOr<std::shared_ptr<const std::string>> ArtifactPool::FetchSubsetPayload(
    const FetchSubsetRequest& request) {
  if (request.begin < 0 || request.end < request.begin) {
    return Status(StatusCode::kInvalidArgument,
                  "bad element range: want 0 <= begin <= end");
  }
  KONDO_ASSIGN_OR_RETURN(const std::string path, ResolvePath(request.artifact));
  KONDO_ASSIGN_OR_RETURN(const ShardArtifactInfo info, HashFileArtifact(path));

  if (IsPackName(request.artifact)) {
    // Packed artifact: serve straight from the chunked package, decoding
    // only the chunks the range touches. The key carries the pack
    // fingerprint (manifest CRC) on top of the whole-file hash, so a
    // repacked package can never resolve to slices of its predecessor.
    KONDO_ASSIGN_OR_RETURN(std::shared_ptr<PackReader> reader,
                           OpenPack(request.artifact));
    const SubsetKey key{request.artifact,  info.lineage_bytes,
                        info.lineage_crc,  request.begin,
                        request.end,       reader->pack_fingerprint()};
    if (std::shared_ptr<const std::string> cached = cache_.Get(key)) {
      return cached;
    }
    cache_.EvictStale(request.artifact, info.lineage_bytes, info.lineage_crc);

    if (request.end > reader->shape().NumElements()) {
      return Status(StatusCode::kOutOfRange,
                    "range end " + std::to_string(request.end) +
                        " exceeds element count " +
                        std::to_string(reader->shape().NumElements()));
    }
    FetchSubsetResponse response;
    response.fingerprint_bytes = info.lineage_bytes;
    response.fingerprint_crc = info.lineage_crc;
    response.begin = request.begin;
    response.end = request.end;
    KONDO_RETURN_IF_ERROR(reader->ReadRange(request.begin, request.end,
                                            &response.present,
                                            &response.values));
    return cache_.Put(key, response.Encode());
  }

  const SubsetKey key{request.artifact, info.lineage_bytes, info.lineage_crc,
                      request.begin, request.end};
  if (std::shared_ptr<const std::string> cached = cache_.Get(key)) {
    return cached;
  }

  // Miss: anything cached under an older fingerprint of this artifact is
  // dead weight now — sweep it rather than waiting for LRU pressure.
  cache_.EvictStale(request.artifact, info.lineage_bytes, info.lineage_crc);

  KONDO_ASSIGN_OR_RETURN(const DebloatedArray array,
                         DebloatedArray::ReadFile(path));
  const int64_t total = array.shape().NumElements();
  if (request.end > total) {
    return Status(StatusCode::kOutOfRange,
                  "range end " + std::to_string(request.end) +
                      " exceeds element count " + std::to_string(total));
  }

  FetchSubsetResponse response;
  response.fingerprint_bytes = info.lineage_bytes;
  response.fingerprint_crc = info.lineage_crc;
  response.begin = request.begin;
  response.end = request.end;
  response.present.reserve(static_cast<size_t>(request.end - request.begin));
  for (int64_t linear = request.begin; linear < request.end; ++linear) {
    StatusOr<double> value = array.At(array.shape().Delinearize(linear));
    if (value.ok()) {
      response.present.push_back(1);
      response.values.push_back(*value);
    } else if (value.status().code() == StatusCode::kDataMissing) {
      response.present.push_back(0);
    } else {
      return value.status();
    }
  }
  return cache_.Put(key, response.Encode());
}

StatusOr<std::shared_ptr<ProvenanceStore>> ArtifactPool::OpenStore(
    const std::string& name) {
  KONDO_ASSIGN_OR_RETURN(const std::string path, ResolvePath(name));
  KONDO_ASSIGN_OR_RETURN(const ShardArtifactInfo info, HashFileArtifact(path));

  MutexLock lock(stores_mu_);
  auto it = stores_.find(name);
  if (it != stores_.end()) {
    if (it->second.fingerprint_bytes == info.lineage_bytes &&
        it->second.fingerprint_crc == info.lineage_crc) {
      return it->second.handle;
    }
    // The pool file changed underneath the open handle: its decode memo
    // and cached descriptors describe bytes that no longer exist.
    stores_.erase(it);
    ++stores_reopened_;
  }
  KONDO_ASSIGN_OR_RETURN(std::unique_ptr<ProvenanceStore> opened,
                         ProvenanceStore::Open(path));
  OpenStoreEntry entry;
  entry.fingerprint_bytes = info.lineage_bytes;
  entry.fingerprint_crc = info.lineage_crc;
  entry.handle = std::shared_ptr<ProvenanceStore>(std::move(opened));
  auto handle = entry.handle;
  stores_[name] = std::move(entry);
  return handle;
}

StatusOr<std::shared_ptr<PackReader>> ArtifactPool::OpenPack(
    const std::string& name) {
  KONDO_ASSIGN_OR_RETURN(const std::string path, ResolvePath(name));
  KONDO_ASSIGN_OR_RETURN(const ShardArtifactInfo info, HashFileArtifact(path));

  MutexLock lock(packs_mu_);
  auto it = packs_.find(name);
  if (it != packs_.end()) {
    if (it->second.fingerprint_bytes == info.lineage_bytes &&
        it->second.fingerprint_crc == info.lineage_crc) {
      return it->second.handle;
    }
    // Repacked (or rewritten) underneath the open handle: its manifest and
    // decoded-chunk cache describe bytes that no longer exist.
    packs_.erase(it);
    ++packs_reopened_;
  }
  KONDO_ASSIGN_OR_RETURN(std::unique_ptr<PackReader> opened,
                         PackReader::Open(path));
  OpenPackEntry entry;
  entry.fingerprint_bytes = info.lineage_bytes;
  entry.fingerprint_crc = info.lineage_crc;
  entry.handle = std::shared_ptr<PackReader>(std::move(opened));
  auto handle = entry.handle;
  packs_[name] = std::move(entry);
  return handle;
}

int64_t ArtifactPool::stores_open() const {
  MutexLock lock(stores_mu_);
  return static_cast<int64_t>(stores_.size());
}

int64_t ArtifactPool::stores_reopened() const {
  MutexLock lock(stores_mu_);
  return stores_reopened_;
}

int64_t ArtifactPool::packs_open() const {
  MutexLock lock(packs_mu_);
  return static_cast<int64_t>(packs_.size());
}

int64_t ArtifactPool::packs_reopened() const {
  MutexLock lock(packs_mu_);
  return packs_reopened_;
}

}  // namespace kondo
