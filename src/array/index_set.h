#ifndef KONDO_ARRAY_INDEX_SET_H_
#define KONDO_ARRAY_INDEX_SET_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "array/index.h"
#include "array/shape.h"

namespace kondo {

/// A set of array indices over a fixed shape — the `I_v` / `I_Θ` objects of
/// Section III. Stored as row-major linearised ids for compactness.
class IndexSet {
 public:
  IndexSet() = default;
  explicit IndexSet(Shape shape) : shape_(std::move(shape)) {}

  const Shape& shape() const { return shape_; }

  /// Inserts `index`; out-of-bounds indices are ignored (accesses outside
  /// the array are clipped, mirroring what an auditor would observe).
  void Insert(const Index& index);

  /// Inserts a linearised id. Requires 0 <= id < shape().NumElements().
  void InsertLinear(int64_t linear);

  bool Contains(const Index& index) const;
  bool ContainsLinear(int64_t linear) const { return ids_.count(linear) > 0; }

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  /// Adds all elements of `other` (shapes must match unless one is empty).
  void Union(const IndexSet& other);

  /// Number of elements present in both sets.
  int64_t IntersectionSize(const IndexSet& other) const;

  /// True when every element of this set is contained in `other`.
  bool IsSubsetOf(const IndexSet& other) const;

  /// Materialises the indices, in ascending linear-id order.
  std::vector<Index> ToIndices() const;

  /// Materialises the linear ids, sorted ascending.
  std::vector<int64_t> ToSortedLinearIds() const;

  /// Invokes `fn(index)` for each member, in ascending linear-id order.
  ///
  /// The deterministic order is load-bearing: ForEach feeds carve-cell
  /// construction, offset mapping, and report rendering — paths whose
  /// artefacts must be bit-identical under replay. The O(n log n) sort is
  /// noise next to the per-index work every caller does.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (int64_t id : ToSortedLinearIds()) {
      fn(shape_.Delinearize(id));
    }
  }

 private:
  Shape shape_;
  std::unordered_set<int64_t> ids_;
};

}  // namespace kondo

#endif  // KONDO_ARRAY_INDEX_SET_H_
