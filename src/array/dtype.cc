#include "array/dtype.h"

namespace kondo {

int64_t DTypeSize(DType dtype) {
  switch (dtype) {
    case DType::kInt32:
      return 4;
    case DType::kInt64:
      return 8;
    case DType::kFloat32:
      return 4;
    case DType::kFloat64:
      return 8;
    case DType::kFloat128:
      return 16;
  }
  return 0;
}

std::string_view DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kInt32:
      return "int32";
    case DType::kInt64:
      return "int64";
    case DType::kFloat32:
      return "float32";
    case DType::kFloat64:
      return "float64";
    case DType::kFloat128:
      return "float128";
  }
  return "unknown";
}

bool IsValidDType(uint8_t value) { return value <= 4; }

}  // namespace kondo
