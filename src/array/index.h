#ifndef KONDO_ARRAY_INDEX_H_
#define KONDO_ARRAY_INDEX_H_

#include <array>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <ostream>
#include <string>

#include "common/logging.h"

namespace kondo {

/// Maximum array rank supported by the library. The paper evaluates 2-D and
/// 3-D arrays; we allow one extra dimension for headroom.
inline constexpr int kMaxRank = 4;

/// A d-dimensional array index `i = (i_1, ..., i_d)` (Section III).
///
/// Fixed-capacity (no heap allocation) because index tuples are created in
/// the innermost loops of auditing and rasterisation.
class Index {
 public:
  Index() : rank_(0), coords_{} {}

  /// Constructs an index of `rank` zero coordinates.
  explicit Index(int rank) : rank_(rank), coords_{} {
    KONDO_CHECK(rank >= 0 && rank <= kMaxRank);
  }

  /// Constructs from an explicit coordinate list, e.g. Index({3, 4}).
  Index(std::initializer_list<int64_t> coords) : rank_(0), coords_{} {
    KONDO_CHECK_LE(coords.size(), static_cast<size_t>(kMaxRank));
    for (int64_t c : coords) {
      coords_[rank_++] = c;
    }
  }

  int rank() const { return rank_; }

  int64_t operator[](int dim) const { return coords_[dim]; }
  int64_t& operator[](int dim) { return coords_[dim]; }

  /// Renders e.g. "(3, 4)".
  std::string ToString() const;

  friend bool operator==(const Index& a, const Index& b) {
    if (a.rank_ != b.rank_) {
      return false;
    }
    for (int d = 0; d < a.rank_; ++d) {
      if (a.coords_[d] != b.coords_[d]) {
        return false;
      }
    }
    return true;
  }

  friend bool operator<(const Index& a, const Index& b) {
    if (a.rank_ != b.rank_) {
      return a.rank_ < b.rank_;
    }
    for (int d = 0; d < a.rank_; ++d) {
      if (a.coords_[d] != b.coords_[d]) {
        return a.coords_[d] < b.coords_[d];
      }
    }
    return false;
  }

 private:
  int rank_;
  std::array<int64_t, kMaxRank> coords_;
};

std::ostream& operator<<(std::ostream& os, const Index& index);

}  // namespace kondo

namespace std {
template <>
struct hash<kondo::Index> {
  size_t operator()(const kondo::Index& index) const {
    uint64_t h = 0x9E3779B97F4A7C15ULL ^ static_cast<uint64_t>(index.rank());
    for (int d = 0; d < index.rank(); ++d) {
      uint64_t x = static_cast<uint64_t>(index[d]);
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
      h ^= x + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<size_t>(h);
  }
};
}  // namespace std

#endif  // KONDO_ARRAY_INDEX_H_
