#include "array/index_set.h"

#include <algorithm>

#include "common/logging.h"

namespace kondo {

void IndexSet::Insert(const Index& index) {
  if (!shape_.Contains(index)) {
    return;
  }
  ids_.insert(shape_.Linearize(index));
}

void IndexSet::InsertLinear(int64_t linear) {
  KONDO_CHECK_GE(linear, 0);
  KONDO_CHECK_LT(linear, shape_.NumElements());
  ids_.insert(linear);
}

bool IndexSet::Contains(const Index& index) const {
  if (!shape_.Contains(index)) {
    return false;
  }
  return ids_.count(shape_.Linearize(index)) > 0;
}

void IndexSet::Union(const IndexSet& other) {
  if (other.empty()) {
    return;
  }
  if (ids_.empty() && shape_.rank() == 0) {
    shape_ = other.shape_;
  }
  KONDO_CHECK(shape_ == other.shape_);
  ids_.insert(other.ids_.begin(), other.ids_.end());
}

int64_t IndexSet::IntersectionSize(const IndexSet& other) const {
  const IndexSet* small = this;
  const IndexSet* large = &other;
  if (small->size() > large->size()) {
    std::swap(small, large);
  }
  int64_t count = 0;
  // kondo-lint: allow(R2) pure reduction — the count is order-insensitive.
  for (int64_t id : small->ids_) {
    if (large->ids_.count(id) > 0) {
      ++count;
    }
  }
  return count;
}

bool IndexSet::IsSubsetOf(const IndexSet& other) const {
  if (size() > other.size()) {
    return false;
  }
  // kondo-lint: allow(R2) pure reduction — the verdict is order-insensitive.
  for (int64_t id : ids_) {
    if (other.ids_.count(id) == 0) {
      return false;
    }
  }
  return true;
}

std::vector<Index> IndexSet::ToIndices() const {
  std::vector<Index> result;
  result.reserve(ids_.size());
  for (int64_t id : ToSortedLinearIds()) {
    result.push_back(shape_.Delinearize(id));
  }
  return result;
}

std::vector<int64_t> IndexSet::ToSortedLinearIds() const {
  std::vector<int64_t> result(ids_.begin(), ids_.end());
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace kondo
