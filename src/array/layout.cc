#include "array/layout.h"

#include <algorithm>

#include "common/logging.h"

namespace kondo {

void Layout::ElementsInByteRange(int64_t begin, int64_t end,
                                 std::vector<Index>* out) const {
  begin = std::max<int64_t>(begin, 0);
  end = std::min(end, PayloadBytes());
  if (begin >= end) {
    return;
  }
  const int64_t elem = element_size();
  // Align the cursor to the start of the element containing `begin`.
  int64_t cursor = (begin / elem) * elem;
  for (; cursor < end; cursor += elem) {
    StatusOr<Index> index = IndexOfByteOffset(cursor);
    if (index.ok()) {
      out->push_back(*std::move(index));
    }
  }
}

Interval Layout::ByteRangeOf(const Index& index) const {
  const int64_t begin = ByteOffsetOf(index);
  return Interval{begin, begin + element_size()};
}

int64_t RowMajorLayout::PayloadBytes() const {
  return shape().NumElements() * element_size();
}

int64_t RowMajorLayout::ByteOffsetOf(const Index& index) const {
  return shape().Linearize(index) * element_size();
}

StatusOr<Index> RowMajorLayout::IndexOfByteOffset(int64_t offset) const {
  if (offset < 0 || offset >= PayloadBytes()) {
    return OutOfRangeError("byte offset outside payload");
  }
  return shape().Delinearize(offset / element_size());
}

ChunkedLayout::ChunkedLayout(Shape shape, DType dtype,
                             std::vector<int64_t> chunk_dims)
    : Layout(std::move(shape), dtype), chunk_dims_(std::move(chunk_dims)) {
  KONDO_CHECK_EQ(static_cast<int>(chunk_dims_.size()),
                 this->shape().rank());
  grid_dims_.resize(chunk_dims_.size());
  for (int d = 0; d < this->shape().rank(); ++d) {
    KONDO_CHECK_GT(chunk_dims_[d], 0);
    grid_dims_[d] =
        (this->shape().dim(d) + chunk_dims_[d] - 1) / chunk_dims_[d];
    chunk_elements_ *= chunk_dims_[d];
    num_chunks_ *= grid_dims_[d];
  }
}

int64_t ChunkedLayout::PayloadBytes() const {
  return num_chunks_ * chunk_elements_ * element_size();
}

int64_t ChunkedLayout::ByteOffsetOf(const Index& index) const {
  KONDO_CHECK(shape().Contains(index));
  int64_t chunk_linear = 0;
  int64_t within_linear = 0;
  for (int d = 0; d < shape().rank(); ++d) {
    const int64_t chunk_coord = index[d] / chunk_dims_[d];
    const int64_t within_coord = index[d] % chunk_dims_[d];
    chunk_linear = chunk_linear * grid_dims_[d] + chunk_coord;
    within_linear = within_linear * chunk_dims_[d] + within_coord;
  }
  return (chunk_linear * chunk_elements_ + within_linear) * element_size();
}

StatusOr<Index> ChunkedLayout::IndexOfByteOffset(int64_t offset) const {
  if (offset < 0 || offset >= PayloadBytes()) {
    return OutOfRangeError("byte offset outside payload");
  }
  const int64_t element_linear = offset / element_size();
  int64_t chunk_linear = element_linear / chunk_elements_;
  int64_t within_linear = element_linear % chunk_elements_;
  Index index(shape().rank());
  // Decode chunk and within-chunk coordinates (row-major, innermost last).
  for (int d = shape().rank() - 1; d >= 0; --d) {
    const int64_t chunk_coord = chunk_linear % grid_dims_[d];
    const int64_t within_coord = within_linear % chunk_dims_[d];
    chunk_linear /= grid_dims_[d];
    within_linear /= chunk_dims_[d];
    index[d] = chunk_coord * chunk_dims_[d] + within_coord;
  }
  if (!shape().Contains(index)) {
    return NotFoundError("offset addresses edge-chunk padding");
  }
  return index;
}

std::unique_ptr<Layout> MakeLayout(LayoutKind kind, Shape shape, DType dtype,
                                   std::vector<int64_t> chunk_dims) {
  switch (kind) {
    case LayoutKind::kRowMajor:
      return std::make_unique<RowMajorLayout>(std::move(shape), dtype);
    case LayoutKind::kChunked:
      return std::make_unique<ChunkedLayout>(std::move(shape), dtype,
                                             std::move(chunk_dims));
  }
  return nullptr;
}

}  // namespace kondo
