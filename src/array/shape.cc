#include "array/shape.h"

#include <sstream>

#include "common/logging.h"

namespace kondo {

Shape::Shape(std::initializer_list<int64_t> dims) : dims_(dims) {
  KONDO_CHECK_LE(dims_.size(), static_cast<size_t>(kMaxRank));
  for (int64_t d : dims_) {
    KONDO_CHECK_GT(d, 0);
  }
}

Shape::Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {
  KONDO_CHECK_LE(dims_.size(), static_cast<size_t>(kMaxRank));
  for (int64_t d : dims_) {
    KONDO_CHECK_GT(d, 0);
  }
}

int64_t Shape::NumElements() const {
  int64_t n = 1;
  for (int64_t d : dims_) {
    n *= d;
  }
  return n;
}

bool Shape::Contains(const Index& index) const {
  if (index.rank() != rank()) {
    return false;
  }
  for (int d = 0; d < rank(); ++d) {
    if (index[d] < 0 || index[d] >= dims_[d]) {
      return false;
    }
  }
  return true;
}

int64_t Shape::Linearize(const Index& index) const {
  KONDO_CHECK(Contains(index));
  int64_t linear = 0;
  for (int d = 0; d < rank(); ++d) {
    linear = linear * dims_[d] + index[d];
  }
  return linear;
}

Index Shape::Delinearize(int64_t linear) const {
  KONDO_CHECK_GE(linear, 0);
  KONDO_CHECK_LT(linear, NumElements());
  Index index(rank());
  for (int d = rank() - 1; d >= 0; --d) {
    index[d] = linear % dims_[d];
    linear /= dims_[d];
  }
  return index;
}

std::string Shape::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Shape& shape) {
  for (int d = 0; d < shape.rank(); ++d) {
    if (d > 0) {
      os << "x";
    }
    os << shape.dim(d);
  }
  return os;
}

}  // namespace kondo
