#include "array/index.h"

#include <sstream>

namespace kondo {

std::string Index::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Index& index) {
  os << "(";
  for (int d = 0; d < index.rank(); ++d) {
    if (d > 0) {
      os << ", ";
    }
    os << index[d];
  }
  os << ")";
  return os;
}

}  // namespace kondo
