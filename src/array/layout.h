#ifndef KONDO_ARRAY_LAYOUT_H_
#define KONDO_ARRAY_LAYOUT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "array/dtype.h"
#include "array/index.h"
#include "array/shape.h"
#include "common/interval_set.h"
#include "common/statusor.h"

namespace kondo {

/// Maps between logical index tuples and physical byte offsets inside a data
/// file payload (Section IV-C: "Kondo must maintain a mapping between index
/// tuples and byte offsets"). Offsets are relative to the payload start;
/// the file header size is added by the file reader/writer.
class Layout {
 public:
  virtual ~Layout() = default;

  const Shape& shape() const { return shape_; }
  DType dtype() const { return dtype_; }
  int64_t element_size() const { return DTypeSize(dtype_); }

  /// Total payload size in bytes.
  virtual int64_t PayloadBytes() const = 0;

  /// Byte offset of the first byte of the element at `index`.
  /// Requires shape().Contains(index).
  virtual int64_t ByteOffsetOf(const Index& index) const = 0;

  /// Inverse mapping: the element whose storage covers byte `offset`.
  /// Fails with OutOfRange for offsets outside the payload, and with
  /// NotFound for padding bytes that belong to no element (chunked layouts
  /// pad edge chunks, as HDF5 does).
  virtual StatusOr<Index> IndexOfByteOffset(int64_t offset) const = 0;

  /// Appends to `out` every element whose storage overlaps the byte range
  /// [begin, end). Padding bytes are skipped.
  void ElementsInByteRange(int64_t begin, int64_t end,
                           std::vector<Index>* out) const;

  /// The byte range [first, last) occupied by the element at `index`.
  Interval ByteRangeOf(const Index& index) const;

 protected:
  Layout(Shape shape, DType dtype)
      : shape_(std::move(shape)), dtype_(dtype) {}

 private:
  Shape shape_;
  DType dtype_;
};

/// Dense row-major ("C order") layout: offset = linear(index) * elem_size.
class RowMajorLayout final : public Layout {
 public:
  RowMajorLayout(Shape shape, DType dtype)
      : Layout(std::move(shape), dtype) {}

  int64_t PayloadBytes() const override;
  int64_t ByteOffsetOf(const Index& index) const override;
  StatusOr<Index> IndexOfByteOffset(int64_t offset) const override;
};

/// Chunked layout (HDF5-style): the array is tiled by fixed-size chunks laid
/// out row-major by chunk coordinate; elements within a chunk are row-major.
/// Edge chunks are padded to the full chunk size, as HDF5 does.
class ChunkedLayout final : public Layout {
 public:
  /// `chunk_dims` must have the array's rank with positive extents.
  ChunkedLayout(Shape shape, DType dtype, std::vector<int64_t> chunk_dims);

  const std::vector<int64_t>& chunk_dims() const { return chunk_dims_; }

  /// Number of chunks along dimension `d`.
  int64_t ChunkGridDim(int d) const { return grid_dims_[d]; }

  int64_t PayloadBytes() const override;
  int64_t ByteOffsetOf(const Index& index) const override;
  StatusOr<Index> IndexOfByteOffset(int64_t offset) const override;

 private:
  std::vector<int64_t> chunk_dims_;
  std::vector<int64_t> grid_dims_;  // Chunks per dimension (ceil division).
  int64_t chunk_elements_ = 1;      // Elements per (padded) chunk.
  int64_t num_chunks_ = 1;
};

/// Layout kinds as stored in KDF headers.
enum class LayoutKind : uint8_t { kRowMajor = 0, kChunked = 1 };

/// Constructs a layout of the given kind. For kChunked, `chunk_dims` must be
/// non-empty; for kRowMajor it is ignored.
std::unique_ptr<Layout> MakeLayout(LayoutKind kind, Shape shape, DType dtype,
                                   std::vector<int64_t> chunk_dims = {});

}  // namespace kondo

#endif  // KONDO_ARRAY_LAYOUT_H_
