#ifndef KONDO_ARRAY_DTYPE_H_
#define KONDO_ARRAY_DTYPE_H_

#include <cstdint>
#include <string_view>

namespace kondo {

/// Element types supported by the KDF file format. The paper's experiments
/// assume a 16-byte "long double" element (Section V-B); `kFloat128` models
/// that width (stored as a float64 value padded to 16 bytes on disk, since
/// long double is non-portable).
enum class DType : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kFloat32 = 2,
  kFloat64 = 3,
  kFloat128 = 4,
};

/// On-disk size of one element in bytes.
int64_t DTypeSize(DType dtype);

/// Stable name, e.g. "float128".
std::string_view DTypeName(DType dtype);

/// True when `value` is a valid DType wire value.
bool IsValidDType(uint8_t value);

}  // namespace kondo

#endif  // KONDO_ARRAY_DTYPE_H_
