#include "array/debloated_array.h"

#include <bit>
#include <cstdio>
#include <cstring>

#include "array/kdf_file.h"
#include "common/logging.h"

namespace kondo {
namespace {

constexpr char kMagic[4] = {'K', 'D', 'D', '1'};

}  // namespace

DebloatedArray DebloatedArray::FromDataArray(const DataArray& array,
                                             const IndexSet& retained) {
  KONDO_CHECK(retained.empty() || retained.shape() == array.shape());
  DebloatedArray result;
  result.shape_ = array.shape();
  result.dtype_ = array.dtype();
  const int64_t n = result.shape_.NumElements();
  result.bitmap_.assign(static_cast<size_t>((n + 63) / 64), 0);
  for (int64_t id : retained.ToSortedLinearIds()) {
    result.bitmap_[static_cast<size_t>(id / 64)] |= uint64_t{1} << (id % 64);
    result.packed_values_.push_back(array.AtLinear(id));
  }
  result.retained_count_ = static_cast<int64_t>(result.packed_values_.size());
  result.RebuildRankDirectory();
  return result;
}

void DebloatedArray::RebuildRankDirectory() {
  block_ranks_.assign(bitmap_.size() + 1, 0);
  for (size_t w = 0; w < bitmap_.size(); ++w) {
    block_ranks_[w + 1] = block_ranks_[w] + std::popcount(bitmap_[w]);
  }
}

bool DebloatedArray::IsRetained(const Index& index) const {
  if (!shape_.Contains(index)) {
    return false;
  }
  const int64_t linear = shape_.Linearize(index);
  return (bitmap_[static_cast<size_t>(linear / 64)] >> (linear % 64)) & 1;
}

int64_t DebloatedArray::PackedPosition(int64_t linear) const {
  const size_t word = static_cast<size_t>(linear / 64);
  const uint64_t mask = (uint64_t{1} << (linear % 64)) - 1;
  return block_ranks_[word] + std::popcount(bitmap_[word] & mask);
}

StatusOr<double> DebloatedArray::At(const Index& index) const {
  if (!shape_.Contains(index)) {
    return OutOfRangeError("index out of bounds");
  }
  const int64_t linear = shape_.Linearize(index);
  if (((bitmap_[static_cast<size_t>(linear / 64)] >> (linear % 64)) & 1) ==
      0) {
    return DataMissingError("access to debloated (Null) index " +
                            index.ToString());
  }
  return packed_values_[static_cast<size_t>(PackedPosition(linear))];
}

int64_t DebloatedArray::OriginalPayloadBytes() const {
  return shape_.NumElements() * DTypeSize(dtype_);
}

int64_t DebloatedArray::DebloatedPayloadBytes() const {
  return static_cast<int64_t>(bitmap_.size()) * 8 +
         retained_count_ * DTypeSize(dtype_);
}

double DebloatedArray::SizeReductionFraction() const {
  const double original = static_cast<double>(OriginalPayloadBytes());
  if (original <= 0) {
    return 0.0;
  }
  return 1.0 - static_cast<double>(DebloatedPayloadBytes()) / original;
}

Status DebloatedArray::WriteFile(const std::string& path) const {
  std::string bytes;
  bytes.append(kMagic, 4);
  bytes.push_back(static_cast<char>(shape_.rank()));
  bytes.push_back(static_cast<char>(dtype_));
  bytes.push_back(0);
  bytes.push_back(0);
  for (int d = 0; d < shape_.rank(); ++d) {
    char buf[8];
    const int64_t dim = shape_.dim(d);
    std::memcpy(buf, &dim, 8);
    bytes.append(buf, 8);
  }
  for (uint64_t word : bitmap_) {
    char buf[8];
    std::memcpy(buf, &word, 8);
    bytes.append(buf, 8);
  }
  const int64_t elem = DTypeSize(dtype_);
  std::vector<char> ebuf(static_cast<size_t>(elem));
  for (double value : packed_values_) {
    EncodeElement(value, dtype_, ebuf.data());
    bytes.append(ebuf.data(), static_cast<size_t>(elem));
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return InternalError("cannot open for write: " + path);
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) {
    return InternalError("short write: " + path);
  }
  return OkStatus();
}

StatusOr<DebloatedArray> DebloatedArray::ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFoundError("cannot open " + path);
  }
  std::string bytes;
  char chunk[4096];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.append(chunk, n);
  }
  std::fclose(f);

  if (bytes.size() < 8 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return DataLossError("not a KDD file: " + path);
  }
  const int rank = static_cast<int>(bytes[4]);
  const uint8_t dtype_raw = static_cast<uint8_t>(bytes[5]);
  if (rank < 1 || rank > kMaxRank || !IsValidDType(dtype_raw)) {
    return DataLossError("corrupt KDD header: " + path);
  }
  size_t cursor = 8;
  if (bytes.size() < cursor + 8 * static_cast<size_t>(rank)) {
    return DataLossError("truncated KDD dims: " + path);
  }
  std::vector<int64_t> dims(rank);
  for (int d = 0; d < rank; ++d) {
    std::memcpy(&dims[d], bytes.data() + cursor, 8);
    cursor += 8;
    if (dims[d] <= 0) {
      return DataLossError("corrupt KDD dims: " + path);
    }
  }

  DebloatedArray result;
  result.shape_ = Shape(dims);
  result.dtype_ = static_cast<DType>(dtype_raw);
  const int64_t num_elements = result.shape_.NumElements();
  const size_t words = static_cast<size_t>((num_elements + 63) / 64);
  if (bytes.size() < cursor + words * 8) {
    return DataLossError("truncated KDD bitmap: " + path);
  }
  result.bitmap_.resize(words);
  for (size_t w = 0; w < words; ++w) {
    std::memcpy(&result.bitmap_[w], bytes.data() + cursor, 8);
    cursor += 8;
  }
  result.RebuildRankDirectory();
  result.retained_count_ = result.block_ranks_.back();

  const int64_t elem = DTypeSize(result.dtype_);
  const size_t payload =
      static_cast<size_t>(result.retained_count_ * elem);
  if (bytes.size() < cursor + payload) {
    return DataLossError("truncated KDD payload: " + path);
  }
  result.packed_values_.resize(static_cast<size_t>(result.retained_count_));
  for (int64_t i = 0; i < result.retained_count_; ++i) {
    result.packed_values_[static_cast<size_t>(i)] =
        DecodeElement(bytes.data() + cursor, result.dtype_);
    cursor += static_cast<size_t>(elem);
  }
  return result;
}

}  // namespace kondo
