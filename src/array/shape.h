#ifndef KONDO_ARRAY_SHAPE_H_
#define KONDO_ARRAY_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "array/index.h"

namespace kondo {

/// The logical coordinate space `I` of a data array: a rank and per-dimension
/// extents (Section III). Indices are valid when `0 <= i_d < dim(d)` for all
/// dimensions.
class Shape {
 public:
  Shape() = default;

  /// Constructs from explicit extents, e.g. Shape({128, 128}).
  Shape(std::initializer_list<int64_t> dims);
  explicit Shape(std::vector<int64_t> dims);

  int rank() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int d) const { return dims_[d]; }
  const std::vector<int64_t>& dims() const { return dims_; }

  /// Total number of elements |I|.
  int64_t NumElements() const;

  /// True when `index` has matching rank and is within bounds.
  bool Contains(const Index& index) const;

  /// Row-major linearisation of `index`. Requires Contains(index).
  int64_t Linearize(const Index& index) const;

  /// Inverse of Linearize. Requires 0 <= linear < NumElements().
  Index Delinearize(int64_t linear) const;

  /// Invokes `fn(index)` for every index in row-major order.
  template <typename Fn>
  void ForEachIndex(Fn&& fn) const {
    const int64_t n = NumElements();
    for (int64_t linear = 0; linear < n; ++linear) {
      fn(Delinearize(linear));
    }
  }

  /// Renders e.g. "128x128".
  std::string ToString() const;

  friend bool operator==(const Shape& a, const Shape& b) {
    return a.dims_ == b.dims_;
  }

 private:
  std::vector<int64_t> dims_;
};

std::ostream& operator<<(std::ostream& os, const Shape& shape);

}  // namespace kondo

#endif  // KONDO_ARRAY_SHAPE_H_
