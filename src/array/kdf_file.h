#ifndef KONDO_ARRAY_KDF_FILE_H_
#define KONDO_ARRAY_KDF_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "array/data_array.h"
#include "array/layout.h"
#include "common/status.h"
#include "common/statusor.h"

namespace kondo {

/// KDF — "Kondo Data Format" — is the repo's self-describing array file
/// format, standing in for HDF5/NetCDF (see DESIGN.md §2). A KDF file is:
///
///   magic "KDF1" | u8 rank | u8 dtype | u8 layout | u8 reserved
///   | i64 dims[rank] | i64 chunk_dims[rank] (chunked only) | payload
///
/// The header carries exactly the metadata Kondo's I/O audit needs to map
/// byte offsets to index tuples (Section IV-C): dimensions, layout, dtype.
struct KdfHeader {
  DType dtype = DType::kFloat128;
  LayoutKind layout_kind = LayoutKind::kRowMajor;
  Shape shape;
  std::vector<int64_t> chunk_dims;  // Empty for row-major.

  /// Header size in bytes for this configuration.
  int64_t HeaderBytes() const;

  /// Builds the layout described by this header.
  std::unique_ptr<Layout> MakeFileLayout() const;
};

/// Serialises one element value at `buf` (DTypeSize(dtype) bytes).
void EncodeElement(double value, DType dtype, char* buf);

/// Deserialises one element value from `buf`.
double DecodeElement(const char* buf, DType dtype);

/// Writes `array` to `path` with the given layout.
Status WriteKdfFile(const std::string& path, const DataArray& array,
                    LayoutKind layout_kind = LayoutKind::kRowMajor,
                    std::vector<int64_t> chunk_dims = {});

/// Random-access reader over a KDF file. All reads go through pread-style
/// positioned reads so they can be interposed by the audit layer.
class KdfReader {
 public:
  ~KdfReader();
  KdfReader(const KdfReader&) = delete;
  KdfReader& operator=(const KdfReader&) = delete;
  KdfReader(KdfReader&& other) noexcept;
  KdfReader& operator=(KdfReader&& other) noexcept;

  /// Opens `path` and parses the header.
  static StatusOr<KdfReader> Open(const std::string& path);

  const KdfHeader& header() const { return header_; }
  const Layout& layout() const { return *layout_; }
  const Shape& shape() const { return header_.shape; }

  /// File offset at which the payload begins.
  int64_t payload_offset() const { return header_.HeaderBytes(); }

  /// Total file size in bytes.
  int64_t FileBytes() const;

  /// Reads the element at `index`.
  StatusOr<double> ReadElement(const Index& index) const;

  /// Reads `size` raw bytes at absolute file offset `offset` into `buf`.
  /// Returns the number of bytes read (short reads at EOF are allowed).
  StatusOr<int64_t> ReadRaw(int64_t offset, int64_t size, char* buf) const;

  /// Reads the entire array into memory.
  StatusOr<DataArray> ReadAll() const;

  /// Underlying file descriptor (exposed for the audit layer's event ids).
  int fd() const { return fd_; }

 private:
  KdfReader(int fd, KdfHeader header);

  int fd_ = -1;
  KdfHeader header_;
  std::unique_ptr<Layout> layout_;
};

}  // namespace kondo

#endif  // KONDO_ARRAY_KDF_FILE_H_
