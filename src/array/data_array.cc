#include "array/data_array.h"

namespace kondo {

DataArray::DataArray(Shape shape, DType dtype)
    : shape_(std::move(shape)),
      dtype_(dtype),
      values_(static_cast<size_t>(shape_.NumElements()), 0.0) {}

void DataArray::FillWith(const std::function<double(const Index&)>& fn) {
  const int64_t n = shape_.NumElements();
  for (int64_t linear = 0; linear < n; ++linear) {
    values_[static_cast<size_t>(linear)] = fn(shape_.Delinearize(linear));
  }
}

void DataArray::FillPattern(uint64_t seed) {
  uint64_t state = seed ^ 0x9E3779B97F4A7C15ULL;
  for (double& value : values_) {
    state += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    value = static_cast<double>(z >> 11) * 0x1.0p-53;
  }
}

}  // namespace kondo
