#include "array/kdf_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "common/logging.h"

namespace kondo {
namespace {

constexpr char kMagic[4] = {'K', 'D', 'F', '1'};

void AppendI64(std::string* out, int64_t value) {
  char buf[8];
  std::memcpy(buf, &value, 8);
  out->append(buf, 8);
}

int64_t ReadI64(const char* buf) {
  int64_t value = 0;
  std::memcpy(&value, buf, 8);
  return value;
}

}  // namespace

int64_t KdfHeader::HeaderBytes() const {
  int64_t bytes = 8 + 8 * shape.rank();
  if (layout_kind == LayoutKind::kChunked) {
    bytes += 8 * shape.rank();
  }
  return bytes;
}

std::unique_ptr<Layout> KdfHeader::MakeFileLayout() const {
  return MakeLayout(layout_kind, shape, dtype, chunk_dims);
}

void EncodeElement(double value, DType dtype, char* buf) {
  switch (dtype) {
    case DType::kInt32: {
      int32_t v = static_cast<int32_t>(value);
      std::memcpy(buf, &v, 4);
      return;
    }
    case DType::kInt64: {
      int64_t v = static_cast<int64_t>(value);
      std::memcpy(buf, &v, 8);
      return;
    }
    case DType::kFloat32: {
      float v = static_cast<float>(value);
      std::memcpy(buf, &v, 4);
      return;
    }
    case DType::kFloat64: {
      std::memcpy(buf, &value, 8);
      return;
    }
    case DType::kFloat128: {
      // A float64 value padded to the paper's 16-byte element width.
      std::memcpy(buf, &value, 8);
      std::memset(buf + 8, 0, 8);
      return;
    }
  }
}

double DecodeElement(const char* buf, DType dtype) {
  switch (dtype) {
    case DType::kInt32: {
      int32_t v;
      std::memcpy(&v, buf, 4);
      return static_cast<double>(v);
    }
    case DType::kInt64: {
      int64_t v;
      std::memcpy(&v, buf, 8);
      return static_cast<double>(v);
    }
    case DType::kFloat32: {
      float v;
      std::memcpy(&v, buf, 4);
      return static_cast<double>(v);
    }
    case DType::kFloat64:
    case DType::kFloat128: {
      double v;
      std::memcpy(&v, buf, 8);
      return v;
    }
  }
  return 0.0;
}

Status WriteKdfFile(const std::string& path, const DataArray& array,
                    LayoutKind layout_kind, std::vector<int64_t> chunk_dims) {
  KdfHeader header;
  header.dtype = array.dtype();
  header.layout_kind = layout_kind;
  header.shape = array.shape();
  header.chunk_dims =
      layout_kind == LayoutKind::kChunked ? chunk_dims : std::vector<int64_t>{};
  if (layout_kind == LayoutKind::kChunked &&
      static_cast<int>(chunk_dims.size()) != array.shape().rank()) {
    return InvalidArgumentError("chunk_dims rank mismatch");
  }

  std::string bytes;
  bytes.append(kMagic, 4);
  bytes.push_back(static_cast<char>(array.shape().rank()));
  bytes.push_back(static_cast<char>(header.dtype));
  bytes.push_back(static_cast<char>(header.layout_kind));
  bytes.push_back(0);  // reserved
  for (int d = 0; d < array.shape().rank(); ++d) {
    AppendI64(&bytes, array.shape().dim(d));
  }
  if (layout_kind == LayoutKind::kChunked) {
    for (int64_t c : header.chunk_dims) {
      AppendI64(&bytes, c);
    }
  }

  std::unique_ptr<Layout> layout = header.MakeFileLayout();
  const int64_t payload_bytes = layout->PayloadBytes();
  std::string payload(static_cast<size_t>(payload_bytes), '\0');
  const int64_t elem = layout->element_size();
  array.shape().ForEachIndex([&](const Index& index) {
    const int64_t offset = layout->ByteOffsetOf(index);
    KONDO_CHECK_LE(offset + elem, payload_bytes);
    EncodeElement(array.At(index), header.dtype, payload.data() + offset);
  });
  bytes += payload;

  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return InternalError("open for write failed: " + path);
  }
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n <= 0) {
      ::close(fd);
      return InternalError("write failed: " + path);
    }
    written += static_cast<size_t>(n);
  }
  ::close(fd);
  return OkStatus();
}

KdfReader::KdfReader(int fd, KdfHeader header)
    : fd_(fd), header_(std::move(header)), layout_(header_.MakeFileLayout()) {}

KdfReader::~KdfReader() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

KdfReader::KdfReader(KdfReader&& other) noexcept
    : fd_(other.fd_),
      header_(std::move(other.header_)),
      layout_(std::move(other.layout_)) {
  other.fd_ = -1;
}

KdfReader& KdfReader::operator=(KdfReader&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = other.fd_;
    header_ = std::move(other.header_);
    layout_ = std::move(other.layout_);
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<KdfReader> KdfReader::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return NotFoundError("cannot open " + path);
  }
  char fixed[8];
  if (::pread(fd, fixed, 8, 0) != 8 || std::memcmp(fixed, kMagic, 4) != 0) {
    ::close(fd);
    return DataLossError("not a KDF file: " + path);
  }
  const int rank = static_cast<int>(fixed[4]);
  const uint8_t dtype_raw = static_cast<uint8_t>(fixed[5]);
  const uint8_t layout_raw = static_cast<uint8_t>(fixed[6]);
  if (rank < 1 || rank > kMaxRank || !IsValidDType(dtype_raw) ||
      layout_raw > 1) {
    ::close(fd);
    return DataLossError("corrupt KDF header: " + path);
  }
  KdfHeader header;
  header.dtype = static_cast<DType>(dtype_raw);
  header.layout_kind = static_cast<LayoutKind>(layout_raw);

  const int extra_vecs = header.layout_kind == LayoutKind::kChunked ? 2 : 1;
  std::vector<char> buf(static_cast<size_t>(8 * rank * extra_vecs));
  if (::pread(fd, buf.data(), buf.size(), 8) !=
      static_cast<ssize_t>(buf.size())) {
    ::close(fd);
    return DataLossError("truncated KDF header: " + path);
  }
  std::vector<int64_t> dims(rank);
  for (int d = 0; d < rank; ++d) {
    dims[d] = ReadI64(buf.data() + 8 * d);
    if (dims[d] <= 0) {
      ::close(fd);
      return DataLossError("corrupt KDF dims: " + path);
    }
  }
  header.shape = Shape(dims);
  if (header.layout_kind == LayoutKind::kChunked) {
    header.chunk_dims.resize(rank);
    for (int d = 0; d < rank; ++d) {
      header.chunk_dims[d] = ReadI64(buf.data() + 8 * (rank + d));
      if (header.chunk_dims[d] <= 0) {
        ::close(fd);
        return DataLossError("corrupt KDF chunk dims: " + path);
      }
    }
  }
  return KdfReader(fd, std::move(header));
}

int64_t KdfReader::FileBytes() const {
  return payload_offset() + layout_->PayloadBytes();
}

StatusOr<double> KdfReader::ReadElement(const Index& index) const {
  if (!shape().Contains(index)) {
    return OutOfRangeError("index out of bounds");
  }
  char buf[16];
  const int64_t elem = layout_->element_size();
  const int64_t offset = payload_offset() + layout_->ByteOffsetOf(index);
  KONDO_ASSIGN_OR_RETURN(int64_t n, ReadRaw(offset, elem, buf));
  if (n != elem) {
    return DataLossError("short read");
  }
  return DecodeElement(buf, header_.dtype);
}

StatusOr<int64_t> KdfReader::ReadRaw(int64_t offset, int64_t size,
                                     char* buf) const {
  if (offset < 0 || size < 0) {
    return InvalidArgumentError("negative offset or size");
  }
  int64_t total = 0;
  while (total < size) {
    const ssize_t n = ::pread(fd_, buf + total,
                              static_cast<size_t>(size - total),
                              offset + total);
    if (n < 0) {
      return InternalError("pread failed");
    }
    if (n == 0) {
      break;  // EOF
    }
    total += n;
  }
  return total;
}

StatusOr<DataArray> KdfReader::ReadAll() const {
  DataArray array(shape(), header_.dtype);
  char buf[16];
  const int64_t elem = layout_->element_size();
  const int64_t n = shape().NumElements();
  for (int64_t linear = 0; linear < n; ++linear) {
    const Index index = shape().Delinearize(linear);
    const int64_t offset = payload_offset() + layout_->ByteOffsetOf(index);
    KONDO_ASSIGN_OR_RETURN(int64_t got, ReadRaw(offset, elem, buf));
    if (got != elem) {
      return DataLossError("short read in ReadAll");
    }
    array.SetLinear(linear, DecodeElement(buf, header_.dtype));
  }
  return array;
}

}  // namespace kondo
