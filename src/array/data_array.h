#ifndef KONDO_ARRAY_DATA_ARRAY_H_
#define KONDO_ARRAY_DATA_ARRAY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "array/dtype.h"
#include "array/index.h"
#include "array/shape.h"

namespace kondo {

/// An in-memory d-dimensional data array `D : I -> V` (Section III,
/// Definition of the array data model). Values are held as float64
/// regardless of the on-disk DType; the DType controls serialisation width.
class DataArray {
 public:
  /// Creates a zero-filled array.
  explicit DataArray(Shape shape, DType dtype = DType::kFloat128);

  const Shape& shape() const { return shape_; }
  DType dtype() const { return dtype_; }

  double At(const Index& index) const {
    return values_[shape_.Linearize(index)];
  }
  void Set(const Index& index, double value) {
    values_[shape_.Linearize(index)] = value;
  }

  double AtLinear(int64_t linear) const { return values_[linear]; }
  void SetLinear(int64_t linear, double value) { values_[linear] = value; }

  const std::vector<double>& values() const { return values_; }

  /// Fills every element via `fn(index)`.
  void FillWith(const std::function<double(const Index&)>& fn);

  /// Fills with a deterministic pseudo-random pattern derived from `seed`
  /// (useful for round-trip tests without an Rng dependency).
  void FillPattern(uint64_t seed);

 private:
  Shape shape_;
  DType dtype_;
  std::vector<double> values_;
};

}  // namespace kondo

#endif  // KONDO_ARRAY_DATA_ARRAY_H_
