#ifndef KONDO_ARRAY_DEBLOATED_ARRAY_H_
#define KONDO_ARRAY_DEBLOATED_ARRAY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "array/data_array.h"
#include "array/index_set.h"
#include "common/status.h"
#include "common/statusor.h"

namespace kondo {

/// The debloated data array `D_Θ` of Definition 1: the same logical shape as
/// `D`, equal to `D` on a retained index subset and Null everywhere else.
///
/// Physical representation: a membership bitmap over the index space plus a
/// densely packed payload holding only retained values (with a per-block
/// popcount directory for O(1) rank lookups). Accessing a Null index yields
/// the paper's "data missing" exception as `StatusCode::kDataMissing`.
class DebloatedArray {
 public:
  /// Builds `D_Θ` from `array` by retaining exactly the indices in
  /// `retained` (out-of-shape members are impossible by IndexSet
  /// construction). `retained.shape()` must equal `array.shape()`.
  static DebloatedArray FromDataArray(const DataArray& array,
                                      const IndexSet& retained);

  const Shape& shape() const { return shape_; }
  DType dtype() const { return dtype_; }

  /// True when `index` carries data (is non-Null).
  bool IsRetained(const Index& index) const;

  /// Returns the value at `index`, or kDataMissing for Null entries and
  /// kOutOfRange for indices outside the shape.
  StatusOr<double> At(const Index& index) const;

  /// Number of retained (non-Null) elements.
  int64_t retained_count() const { return retained_count_; }

  /// Bytes of the original dense payload at this dtype.
  int64_t OriginalPayloadBytes() const;

  /// Bytes of the debloated representation (bitmap + packed payload).
  int64_t DebloatedPayloadBytes() const;

  /// Fraction of payload eliminated, `1 - debloated/original`.
  double SizeReductionFraction() const;

  /// Serialises to a ".kdd" debloated container payload file.
  Status WriteFile(const std::string& path) const;

  /// Parses a file written by WriteFile.
  static StatusOr<DebloatedArray> ReadFile(const std::string& path);

 private:
  DebloatedArray() = default;

  void RebuildRankDirectory();
  /// Packed payload position of `linear`, assuming the bit is set.
  int64_t PackedPosition(int64_t linear) const;

  Shape shape_;
  DType dtype_ = DType::kFloat128;
  std::vector<uint64_t> bitmap_;      // NumElements bits, little-endian words.
  std::vector<int64_t> block_ranks_;  // Popcount of all words before word i.
  std::vector<double> packed_values_;
  int64_t retained_count_ = 0;
};

}  // namespace kondo

#endif  // KONDO_ARRAY_DEBLOATED_ARRAY_H_
