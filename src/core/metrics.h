#ifndef KONDO_CORE_METRICS_H_
#define KONDO_CORE_METRICS_H_

#include <cstdint>

#include "array/index_set.h"
#include "common/rng.h"
#include "workloads/program.h"

namespace kondo {

/// Accuracy of an approximated index subset `I'_Θ` against the ground truth
/// `I_Θ` (Section V-C): precision = |I_Θ ∩ I'_Θ| / |I'_Θ| and recall =
/// |I_Θ ∩ I'_Θ| / |I_Θ|. A recall of 1 signifies soundness.
struct AccuracyMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  int64_t truth_size = 0;
  int64_t approx_size = 0;
  int64_t intersection = 0;
};

/// Computes precision/recall of `approx` against `truth`. Empty `approx`
/// has precision 1 by convention (nothing wasteful was included).
AccuracyMetrics ComputeAccuracy(const IndexSet& truth, const IndexSet& approx);

/// Fraction of the full index space `I` flagged as bloat by `subset`:
/// |I - subset| / |I| (Fig. 9's y-axis).
double BloatFraction(const Shape& shape, const IndexSet& subset);

/// How often a user is hurt by recall < 1 (Section V-D1): the fraction of
/// parameter valuations whose run would access at least one index missing
/// from `approx`.
struct MissedAccessStats {
  int64_t valuations_checked = 0;
  int64_t valuations_missed = 0;
  double missed_fraction = 0.0;
  bool exhaustive = false;  // All of Θ checked (vs. a uniform sample).
};

/// Checks every valuation when |Θ| <= `max_exhaustive`, otherwise checks
/// `sample_size` uniform samples.
MissedAccessStats ComputeMissedValuations(const Program& program,
                                          const IndexSet& approx,
                                          int64_t max_exhaustive = 100000,
                                          int64_t sample_size = 20000,
                                          uint64_t rng_seed = 7);

}  // namespace kondo

#endif  // KONDO_CORE_METRICS_H_
