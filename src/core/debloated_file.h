#ifndef KONDO_CORE_DEBLOATED_FILE_H_
#define KONDO_CORE_DEBLOATED_FILE_H_

#include <cstdint>
#include <memory>

#include "array/debloated_array.h"
#include "array/layout.h"
#include "common/statusor.h"
#include "workloads/program.h"

namespace kondo {

/// Statistics of byte-level debloated serving.
struct DebloatedFileStats {
  int64_t reads = 0;
  int64_t bytes_served = 0;
  int64_t missing_range_hits = 0;  // Reads touching a Null element.
};

/// A byte-addressable view of a debloated array that presents the
/// *original* file's offset space — the paper's re-execution mapping
/// ("During re-execution of the debloated container, Sciunit maps a system
/// call's arguments to the appropriate offset of the file", §V
/// Implementation). The application replays its original pread(offset,
/// size) calls unmodified; the view reconstructs the bytes from the packed
/// debloated payload using the file metadata, or raises data-missing when
/// a requested range touches a Null element.
///
/// Bytes inside the (virtual) header are served from the reconstructed
/// header; chunk-padding bytes read as zero.
class VirtualDebloatedFile {
 public:
  /// `array` is the debloated payload; `layout_kind`/`chunk_dims` describe
  /// the original file's physical layout (so original offsets resolve).
  static StatusOr<VirtualDebloatedFile> Create(
      DebloatedArray array, LayoutKind layout_kind = LayoutKind::kRowMajor,
      std::vector<int64_t> chunk_dims = {});

  /// Size of the virtual original file (header + full dense payload).
  int64_t FileBytes() const;

  /// Byte offset at which the payload starts (the KDF header size).
  int64_t payload_offset() const { return payload_offset_; }

  /// Serves `size` bytes at absolute `offset` of the original file into
  /// `buf`. Short reads at EOF are allowed (returns bytes served). Fails
  /// with kDataMissing when the range covers any Null element's bytes.
  StatusOr<int64_t> ReadRaw(int64_t offset, int64_t size, char* buf);

  const DebloatedFileStats& stats() const { return stats_; }
  const DebloatedArray& array() const { return array_; }

  /// Replays one program run against the virtual file: every element access
  /// becomes the same pread(offset, element_size) the original execution
  /// issued against the real file. Returns the first data-missing error
  /// (the run executes to completion).
  Status ReplayRun(const Program& program, const ParamValue& v);

 private:
  VirtualDebloatedFile(DebloatedArray array, std::unique_ptr<Layout> layout,
                       std::string header_bytes);

  DebloatedArray array_;
  std::unique_ptr<Layout> layout_;
  std::string header_bytes_;
  int64_t payload_offset_ = 0;
  DebloatedFileStats stats_;
};

}  // namespace kondo

#endif  // KONDO_CORE_DEBLOATED_FILE_H_
