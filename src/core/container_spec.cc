#include "core/container_spec.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/strings.h"

namespace kondo {
namespace {

/// Strips surrounding brackets and splits on commas:
/// `[a, b, c]` -> {"a", "b", "c"}.
StatusOr<std::vector<std::string>> ParseBracketList(std::string_view text) {
  text = StripWhitespace(text);
  if (text.size() < 2 || text.front() != '[' || text.back() != ']') {
    return InvalidArgumentError("expected a [...] list");
  }
  text = text.substr(1, text.size() - 2);
  std::vector<std::string> items;
  for (const std::string& piece : StrSplit(text, ',')) {
    const std::string_view stripped = StripWhitespace(piece);
    if (!stripped.empty()) {
      items.emplace_back(stripped);
    }
  }
  return items;
}

/// Parses one `lo-hi` range. Integer unless a decimal point appears.
StatusOr<ParamRange> ParseRange(std::string_view text) {
  const size_t dash = text.find('-', 1);  // Skip a (disallowed) leading '-'.
  if (dash == std::string_view::npos) {
    return InvalidArgumentError("PARAM range must be lo-hi: " +
                                std::string(text));
  }
  ParamRange range;
  range.integer = text.find('.') == std::string_view::npos;
  if (!ParseDouble(text.substr(0, dash), &range.lo) ||
      !ParseDouble(text.substr(dash + 1), &range.hi)) {
    return InvalidArgumentError("malformed PARAM range: " +
                                std::string(text));
  }
  if (range.lo > range.hi || range.lo < 0.0) {
    return InvalidArgumentError("PARAM range must be 0 <= lo <= hi: " +
                                std::string(text));
  }
  return range;
}

/// Strips optional quotes from an item.
std::string Unquote(std::string_view text) {
  text = StripWhitespace(text);
  if (text.size() >= 2 && text.front() == '"' && text.back() == '"') {
    text = text.substr(1, text.size() - 2);
  }
  return std::string(text);
}

}  // namespace

ParamSpace ContainerSpec::EffectiveParams() const {
  return HasExplicitParams() ? params : DefaultParamSpaceFromCmd(cmd_args);
}

ParamSpace DefaultParamSpaceFromCmd(
    const std::vector<std::string>& cmd_args) {
  std::vector<ParamRange> ranges;
  for (const std::string& arg : cmd_args) {
    double value = 0.0;
    if (!ParseDouble(arg, &value)) {
      continue;  // File paths and flags are not fuzzable parameters.
    }
    ParamRange range;
    range.integer = arg.find('.') == std::string::npos;
    range.lo = 0.0;
    range.hi = std::max(16.0, 4.0 * std::abs(value));
    if (range.integer) {
      range.hi = std::floor(range.hi);
    }
    ranges.push_back(range);
  }
  return ParamSpace(std::move(ranges));
}

std::vector<std::string> ContainerSpec::DataDependencies() const {
  std::vector<std::string> deps;
  for (const AddInstruction& add : adds) {
    // Heuristic matching the paper's example: sources that are not C/C++
    // program files are data dependencies.
    const bool is_code = add.source.ends_with(".c") ||
                         add.source.ends_with(".cc") ||
                         add.source.ends_with(".py");
    if (!is_code) {
      deps.push_back(add.destination);
    }
  }
  return deps;
}

StatusOr<ContainerSpec> ParseContainerSpec(std::string_view text) {
  ContainerSpec spec;
  bool saw_from = false;
  for (const std::string& raw_line : StrSplit(text, '\n')) {
    const std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line.front() == '#') {
      continue;
    }
    const size_t space_pos = line.find(' ');
    const std::string_view keyword =
        space_pos == std::string_view::npos ? line : line.substr(0, space_pos);
    const std::string_view rest =
        space_pos == std::string_view::npos
            ? std::string_view()
            : StripWhitespace(line.substr(space_pos + 1));

    if (keyword == "FROM") {
      spec.base_image = std::string(rest);
      saw_from = true;
    } else if (keyword == "RUN") {
      spec.run_steps.emplace_back(rest);
    } else if (keyword == "ADD") {
      const size_t sep = rest.find(' ');
      if (sep == std::string_view::npos) {
        return InvalidArgumentError("ADD needs source and destination: " +
                                    std::string(line));
      }
      spec.adds.push_back(
          AddInstruction{std::string(StripWhitespace(rest.substr(0, sep))),
                         std::string(StripWhitespace(rest.substr(sep + 1)))});
    } else if (keyword == "PARAM") {
      KONDO_ASSIGN_OR_RETURN(std::vector<std::string> items,
                             ParseBracketList(rest));
      std::vector<ParamRange> ranges;
      for (const std::string& item : items) {
        KONDO_ASSIGN_OR_RETURN(ParamRange range, ParseRange(item));
        ranges.push_back(range);
      }
      spec.params = ParamSpace(std::move(ranges));
    } else if (keyword == "ENTRYPOINT") {
      KONDO_ASSIGN_OR_RETURN(std::vector<std::string> items,
                             ParseBracketList(rest));
      if (items.size() != 1) {
        return InvalidArgumentError("ENTRYPOINT expects one element");
      }
      spec.entrypoint = Unquote(items[0]);
    } else if (keyword == "CMD") {
      KONDO_ASSIGN_OR_RETURN(std::vector<std::string> items,
                             ParseBracketList(rest));
      spec.cmd_args.clear();
      for (const std::string& item : items) {
        spec.cmd_args.push_back(Unquote(item));
      }
    } else {
      return InvalidArgumentError("unknown instruction: " +
                                  std::string(keyword));
    }
  }
  if (!saw_from) {
    return InvalidArgumentError("container spec requires a FROM line");
  }
  return spec;
}

}  // namespace kondo
