#ifndef KONDO_CORE_REMOTE_FETCH_H_
#define KONDO_CORE_REMOTE_FETCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "array/index.h"
#include "array/kdf_file.h"
#include "common/statusor.h"
#include "core/runtime.h"

namespace kondo {

/// A source the user-end runtime can pull missing elements from — the
/// Section VI extension: "a container runtime can use audited information
/// to pull missing data offsets from a remote server, when requested".
class RemoteSource {
 public:
  virtual ~RemoteSource() = default;

  /// Fetches the element at `index`. Implementations may fail (offline,
  /// element genuinely absent).
  virtual StatusOr<double> Fetch(const Index& index) = 0;

  /// Bytes transferred so far (for the size-accounting in reports).
  virtual int64_t bytes_fetched() const = 0;
};

/// A RemoteSource backed by the original (un-debloated) KDF file — the
/// registry copy the container was built from. Each fetch costs one
/// element-sized transfer plus a configurable simulated latency.
class KdfRemoteSource final : public RemoteSource {
 public:
  /// Opens the registry copy at `path`. `latency_micros` models the
  /// round-trip cost of one remote request (busy-waited).
  static StatusOr<std::unique_ptr<KdfRemoteSource>> Open(
      const std::string& path, int64_t latency_micros = 0);

  StatusOr<double> Fetch(const Index& index) override;
  int64_t bytes_fetched() const override { return bytes_fetched_; }

  /// Number of fetch round-trips issued.
  int64_t fetch_count() const { return fetch_count_; }

 private:
  KdfRemoteSource(KdfReader reader, int64_t latency_micros)
      : reader_(std::move(reader)), latency_micros_(latency_micros) {}

  KdfReader reader_;
  int64_t latency_micros_;
  int64_t bytes_fetched_ = 0;
  int64_t fetch_count_ = 0;
};

/// Statistics of a fetching runtime session.
struct FetchStats {
  int64_t local_hits = 0;     // Served from the debloated payload.
  int64_t remote_fetches = 0; // Pulled from the remote source.
  int64_t hard_misses = 0;    // Remote also failed: data-missing surfaced.
  int64_t bytes_fetched = 0;
  int64_t fetch_retries = 0;  // Re-issued requests after transient failures.
  int64_t fetch_failures = 0; // Elements whose fetch exhausted every attempt.
  bool degraded = false;      // Remote disabled after repeated failures.
};

/// Failure policy of a fetching runtime: how hard to try the remote source
/// before surfacing the paper's data-missing error, and when to stop
/// bothering the remote entirely.
struct FetchPolicy {
  /// Fetch attempts per missing element (>= 1). Attempt k > 1 busy-waits
  /// `backoff_micros << (k - 2)` first (exponential backoff).
  int max_attempts = 1;
  int64_t backoff_micros = 0;

  /// After this many *consecutive* elements exhaust every attempt, the
  /// runtime enters degraded mode: the remote is skipped and Null accesses
  /// surface data-missing immediately (no pointless round-trips against a
  /// dead server). 0 disables degradation. A successful fetch resets the
  /// consecutive count.
  int degrade_after = 0;
};

/// A user-end runtime that serves reads from the debloated payload and
/// falls back to a remote source for Null indices, caching fetched values
/// so each missing element is pulled at most once. With a remote source
/// attached, Kondo reaches effective recall 1 at the cost of a few
/// round-trips (the paper's proposed path to 100% recall, Section VI).
class FetchingRuntime {
 public:
  /// `remote` may be null: the runtime then degrades to plain debloated
  /// behaviour (data-missing on Null access).
  FetchingRuntime(DebloatedArray array, std::unique_ptr<RemoteSource> remote)
      : FetchingRuntime(std::move(array), std::move(remote), FetchPolicy{}) {}

  /// As above, with an explicit failure policy (retries, backoff, degraded
  /// mode) for flaky remotes.
  FetchingRuntime(DebloatedArray array, std::unique_ptr<RemoteSource> remote,
                  const FetchPolicy& policy)
      : local_(std::move(array)),
        remote_(std::move(remote)),
        policy_(policy) {}

  const FetchStats& stats() const { return stats_; }
  const DebloatedArray& local_array() const { return local_.array(); }

  /// Serves one element read: local payload first, then the remote source.
  StatusOr<double> Read(const Index& index);

  /// Replays a full program run. With a working remote source this always
  /// succeeds for in-shape accesses.
  Status ReplayRun(const Program& program, const ParamValue& v);

 private:
  DebloatRuntime local_;
  std::unique_ptr<RemoteSource> remote_;
  FetchPolicy policy_;
  int consecutive_failures_ = 0;
  std::unordered_map<int64_t, double> fetched_cache_;
  FetchStats stats_;
};

}  // namespace kondo

#endif  // KONDO_CORE_REMOTE_FETCH_H_
