#ifndef KONDO_CORE_MULTI_KONDO_H_
#define KONDO_CORE_MULTI_KONDO_H_

#include <vector>

#include "carve/carver.h"
#include "core/kondo.h"
#include "fuzz/fuzz_schedule.h"
#include "workloads/multi_file_program.h"

namespace kondo {

/// Result of a multi-file Kondo campaign: one fuzz campaign over Θ, one
/// carved subset per data file.
struct MultiKondoResult {
  FuzzStats fuzz_stats;
  /// Raw fuzz-discovered index subsets, one per file.
  MultiIndexSets per_file_discovered;
  /// Carved + rasterised approximations `I'_Θ`, one per file.
  MultiIndexSets per_file_approx;
  std::vector<CarveStats> per_file_carve_stats;
};

/// Runs Kondo on a multi-file application (footnote 1 / Section VI): the
/// fuzz schedule executes each seed once — a seed is *useful* when it
/// accesses any of the files, and progress tracking spans all files — and
/// the Carver then runs independently per file, since each self-describing
/// file is its own index space.
MultiKondoResult RunMultiFileKondo(const MultiFileProgram& program,
                                   const KondoConfig& config);

}  // namespace kondo

#endif  // KONDO_CORE_MULTI_KONDO_H_
