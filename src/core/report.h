#ifndef KONDO_CORE_REPORT_H_
#define KONDO_CORE_REPORT_H_

#include <string>

#include "array/index_set.h"
#include "core/kondo.h"
#include "core/metrics.h"

namespace kondo {

/// Renders a 2-D index set as an ASCII density map: the index space is
/// binned into a `width` x `height` character grid and each cell shows its
/// fill level (' ' empty, '.' sparse, ':' medium, '#' dense). 3-D sets are
/// rendered as the projection along the last axis. Handy for eyeballing
/// carved subsets in a terminal (cf. Fig. 1's shaded array).
std::string RenderIndexMap(const IndexSet& subset, int width = 64,
                           int height = 32);

/// Renders both the ground truth and the approximation side by side with a
/// difference map ('+' carved but not true, '-' true but missed).
std::string RenderComparison(const IndexSet& truth, const IndexSet& approx,
                             int width = 48, int height = 24);

/// One-paragraph human-readable campaign report: seed counts, hull counts,
/// accuracy, subset/bloat sizes.
std::string FormatCampaignReport(const KondoResult& result,
                                 const AccuracyMetrics& metrics);

}  // namespace kondo

#endif  // KONDO_CORE_REPORT_H_
