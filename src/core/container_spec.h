#ifndef KONDO_CORE_CONTAINER_SPEC_H_
#define KONDO_CORE_CONTAINER_SPEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "fuzz/param_space.h"

namespace kondo {

/// One ADD instruction: a host-side source copied to a container path.
struct AddInstruction {
  std::string source;
  std::string destination;
};

/// A parsed container specification (Fig. 2a): environment dependencies
/// (FROM/RUN), data dependencies (ADD), the advertised parameter space
/// (PARAM), and the entry executable with its default arguments
/// (ENTRYPOINT/CMD). The PARAM line is Kondo's extension to the Dockerfile
/// dialect: `PARAM [0-30, 300.00-1200.00, 0-50]` declares Θ.
struct ContainerSpec {
  std::string base_image;
  std::vector<std::string> run_steps;
  std::vector<AddInstruction> adds;
  ParamSpace params;
  std::string entrypoint;
  std::vector<std::string> cmd_args;

  /// Container paths of data dependencies (ADD destinations whose source
  /// looks like a data file, i.e. not program source code).
  std::vector<std::string> DataDependencies() const;

  /// True when a PARAM line declared Θ explicitly.
  bool HasExplicitParams() const { return params.num_params() > 0; }

  /// The parameter space Kondo fuzzes: the PARAM declaration when present,
  /// otherwise a default range inferred from the CMD arguments' data types
  /// (Section VI: "If the developer does not specify any parameter ranges,
  /// we take a default range over the parameters based on the data type").
  ParamSpace EffectiveParams() const;
};

/// Infers a default Θ from example argument values: each numeric CMD
/// argument becomes one parameter whose range is [0, 4 * |example|]
/// (minimum width 16), integer-valued unless the example has a decimal
/// point; non-numeric arguments (file paths) are skipped.
ParamSpace DefaultParamSpaceFromCmd(const std::vector<std::string>& cmd_args);

/// Parses the Kondofile dialect. Unknown instructions fail; blank lines and
/// `#` comments are ignored. Parameter ranges are non-negative numbers
/// `lo-hi`, integer-valued unless either bound contains a decimal point.
StatusOr<ContainerSpec> ParseContainerSpec(std::string_view text);

}  // namespace kondo

#endif  // KONDO_CORE_CONTAINER_SPEC_H_
