#include "core/debloated_file.h"

#include <algorithm>
#include <cstring>

#include "array/kdf_file.h"

namespace kondo {

StatusOr<VirtualDebloatedFile> VirtualDebloatedFile::Create(
    DebloatedArray array, LayoutKind layout_kind,
    std::vector<int64_t> chunk_dims) {
  KdfHeader header;
  header.dtype = array.dtype();
  header.layout_kind = layout_kind;
  header.shape = array.shape();
  if (layout_kind == LayoutKind::kChunked) {
    if (static_cast<int>(chunk_dims.size()) != array.shape().rank()) {
      return InvalidArgumentError("chunk_dims rank mismatch");
    }
    header.chunk_dims = chunk_dims;
  }
  std::unique_ptr<Layout> layout = header.MakeFileLayout();

  // Reconstruct the original KDF header bytes so header reads replay
  // exactly (re-execution re-parses the self-describing metadata).
  std::string header_bytes;
  header_bytes.append("KDF1", 4);
  header_bytes.push_back(static_cast<char>(array.shape().rank()));
  header_bytes.push_back(static_cast<char>(header.dtype));
  header_bytes.push_back(static_cast<char>(header.layout_kind));
  header_bytes.push_back(0);
  auto append_i64 = [&header_bytes](int64_t value) {
    char buf[8];
    std::memcpy(buf, &value, 8);
    header_bytes.append(buf, 8);
  };
  for (int d = 0; d < array.shape().rank(); ++d) {
    append_i64(array.shape().dim(d));
  }
  if (layout_kind == LayoutKind::kChunked) {
    for (int64_t c : header.chunk_dims) {
      append_i64(c);
    }
  }
  return VirtualDebloatedFile(std::move(array), std::move(layout),
                              std::move(header_bytes));
}

VirtualDebloatedFile::VirtualDebloatedFile(DebloatedArray array,
                                           std::unique_ptr<Layout> layout,
                                           std::string header_bytes)
    : array_(std::move(array)),
      layout_(std::move(layout)),
      header_bytes_(std::move(header_bytes)),
      payload_offset_(static_cast<int64_t>(header_bytes_.size())) {}

int64_t VirtualDebloatedFile::FileBytes() const {
  return payload_offset_ + layout_->PayloadBytes();
}

StatusOr<int64_t> VirtualDebloatedFile::ReadRaw(int64_t offset, int64_t size,
                                                char* buf) {
  if (offset < 0 || size < 0) {
    return InvalidArgumentError("negative offset or size");
  }
  ++stats_.reads;
  const int64_t end = std::min(offset + size, FileBytes());
  if (offset >= end) {
    return 0;
  }

  int64_t cursor = offset;
  // Header bytes.
  while (cursor < end && cursor < payload_offset_) {
    buf[cursor - offset] = header_bytes_[static_cast<size_t>(cursor)];
    ++cursor;
  }
  // Payload bytes, element by element.
  const int64_t elem = layout_->element_size();
  char element_buf[16];
  while (cursor < end) {
    const int64_t payload_pos = cursor - payload_offset_;
    const int64_t element_start = (payload_pos / elem) * elem;
    StatusOr<Index> index = layout_->IndexOfByteOffset(element_start);
    const int64_t chunk_end =
        std::min(end, payload_offset_ + element_start + elem);
    if (index.ok()) {
      StatusOr<double> value = array_.At(*index);
      if (!value.ok()) {
        ++stats_.missing_range_hits;
        return DataMissingError(
            "pread range touches debloated (Null) element " +
            index->ToString());
      }
      EncodeElement(*value, array_.dtype(), element_buf);
    } else {
      std::memset(element_buf, 0, sizeof(element_buf));  // Chunk padding.
    }
    for (; cursor < chunk_end; ++cursor) {
      buf[cursor - offset] =
          element_buf[cursor - payload_offset_ - element_start];
    }
  }
  stats_.bytes_served += end - offset;
  return end - offset;
}

Status VirtualDebloatedFile::ReplayRun(const Program& program,
                                       const ParamValue& v) {
  if (!(program.data_shape() == array_.shape())) {
    return InvalidArgumentError("program shape does not match payload");
  }
  Status first_error = OkStatus();
  char buf[16];
  program.Execute(v, [this, &first_error, &buf](const Index& index) {
    const int64_t offset =
        payload_offset_ + layout_->ByteOffsetOf(index);
    StatusOr<int64_t> n = ReadRaw(offset, layout_->element_size(), buf);
    if (!n.ok() && first_error.ok()) {
      first_error = n.status();
    }
  });
  return first_error;
}

}  // namespace kondo
