#include "core/debloat_test.h"

#include "audit/auditor.h"
#include "common/logging.h"

namespace kondo {

DebloatTestFn MakeDebloatTest(const Program& program) {
  return [&program](const ParamValue& v) { return program.AccessSet(v); };
}

DebloatTestFn MakeAuditedDebloatTest(const Program& program,
                                     const std::string& kdf_path) {
  return [&program, kdf_path](const ParamValue& v) {
    StatusOr<AuditReport> report = RunAudited(
        kdf_path, /*pid=*/1,
        [&program, &v](TracedFile& file) {
          return program.ExecuteOnFile(v, file);
        });
    KONDO_CHECK(report.ok()) << "audited debloat test failed: "
                             << report.status();
    return std::move(*report).accessed_indices;
  };
}

}  // namespace kondo
