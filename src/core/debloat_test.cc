#include "core/debloat_test.h"

#include <utility>

#include "audit/auditor.h"
#include "common/logging.h"

namespace kondo {

DebloatTestFn MakeDebloatTest(const Program& program) {
  return [&program](const ParamValue& v) { return program.AccessSet(v); };
}

CandidateTestFn MakeCandidateTest(const Program& program) {
  return [&program](const TestCandidate& candidate) {
    CandidateResult result;
    result.accessed = program.AccessSet(candidate.value);
    return result;
  };
}

DebloatTestFn MakeAuditedDebloatTest(const Program& program,
                                     const std::string& kdf_path) {
  return [&program, kdf_path](const ParamValue& v) {
    StatusOr<AuditReport> report = RunAudited(
        kdf_path, /*pid=*/1,
        [&program, &v](TracedFile& file) {
          return program.ExecuteOnFile(v, file);
        });
    KONDO_CHECK(report.ok()) << "audited debloat test failed: "
                             << report.status();
    return std::move(*report).accessed_indices;
  };
}

CandidateTestFn MakeAuditedCandidateTest(const Program& program,
                                         const std::string& kdf_path) {
  return [&program, kdf_path](const TestCandidate& candidate) {
    auto log = std::make_shared<EventLog>();
    StatusOr<AuditReport> report = RunAuditedCapture(
        kdf_path, /*pid=*/1 + candidate.seq,
        [&program, &candidate](TracedFile& file) {
          return program.ExecuteOnFile(candidate.value, file);
        },
        log.get());
    KONDO_CHECK(report.ok()) << "audited debloat test failed: "
                             << report.status();
    CandidateResult result;
    result.accessed = std::move(*report).accessed_indices;
    result.log = std::move(log);
    return result;
  };
}

}  // namespace kondo
