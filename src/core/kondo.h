#ifndef KONDO_CORE_KONDO_H_
#define KONDO_CORE_KONDO_H_

#include <cstdint>

#include "array/data_array.h"
#include "array/debloated_array.h"
#include "carve/carve_config.h"
#include "carve/carved_subset.h"
#include "carve/carver.h"
#include "core/debloat_test.h"
#include "fuzz/fuzz_config.h"
#include "fuzz/fuzz_schedule.h"
#include "workloads/program.h"

namespace kondo {

/// End-to-end pipeline configuration: the Fig. 5 fuzz + carve parameters
/// plus the RNG seed for the campaign.
struct KondoConfig {
  FuzzConfig fuzz;
  CarveConfig carve;
  uint64_t rng_seed = 1;

  /// Worker threads for debloat-test execution (src/exec/). Any value
  /// produces bit-identical campaign results (tested points, discovered
  /// offsets, carved hulls) to `jobs = 1`; only wall-clock time changes.
  int jobs = 1;

  /// Campaign shards for multi-file runs (src/shard/). `shards > 1` routes
  /// RunMultiFileKondo through the sharded scheduler; the merged result is
  /// bit-identical to `shards = 1` at every jobs setting.
  int shards = 1;
};

/// Output of one Kondo run: the fuzz campaign, the carved hulls, and the
/// rasterised approximation `I'_Θ`.
struct KondoResult {
  FuzzResult fuzz;
  CarveStats carve_stats;
  CarvedSubset carved;
  IndexSet approx;  // I'_Θ: integer points covered by the carved hulls.
  double fuzz_seconds = 0.0;
  double carve_seconds = 0.0;
  double rasterize_seconds = 0.0;
};

/// The Kondo system of Fig. 3: sample-and-fuzz the parameter space with
/// audited debloat tests, carve the discovered index points into convex
/// hulls, and rasterise the hulls into the approximated data subset.
class KondoPipeline {
 public:
  explicit KondoPipeline(KondoConfig config) : config_(config) {}

  const KondoConfig& config() const { return config_; }

  /// Runs the pipeline on `program` using the fast offset-printing debloat
  /// test.
  KondoResult Run(const Program& program) const;

  /// Runs the pipeline with an explicit debloat test over (`space`,
  /// `shape`) — e.g. a fully audited test from MakeAuditedDebloatTest.
  KondoResult RunWithTest(const DebloatTestFn& test, const ParamSpace& space,
                          const Shape& shape) const;

  /// Runs the pipeline with a candidate-aware test fanned out across
  /// `config().jobs` workers. When `collector` is non-null, consumed test
  /// outcomes (and their lineage logs) are funnelled through it in
  /// candidate order — the single-writer channel that keeps on-disk
  /// lineage identical to the serial path.
  KondoResult RunWithCandidateTest(const CandidateTestFn& test,
                                   const ParamSpace& space,
                                   const Shape& shape,
                                   ResultCollector* collector = nullptr) const;

 private:
  KondoConfig config_;
};

/// Packages the debloated data array `D_Θ` (Definition 1) from the original
/// array and an approximated index subset.
DebloatedArray PackageDebloated(const DataArray& array,
                                const IndexSet& approx);

/// The Fig. 5 default configuration with every length-valued knob (mutation
/// frames, cluster diameter, cell size, merge thresholds) scaled by
/// max_extent / 128. The paper's constants were tuned for its default
/// 128x128 file; on larger arrays the same campaign must mutate and merge
/// at proportionally larger scales (cf. §V-D4, where parameter ranges are
/// set to the dataset size).
KondoConfig ScaledKondoConfig(const Shape& shape);

}  // namespace kondo

#endif  // KONDO_CORE_KONDO_H_
