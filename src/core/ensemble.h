#ifndef KONDO_CORE_ENSEMBLE_H_
#define KONDO_CORE_ENSEMBLE_H_

#include <cstdint>
#include <vector>

#include "core/kondo.h"

namespace kondo {

/// Outcome of an ensemble of independent Kondo campaigns.
struct EnsembleResult {
  /// Union of the member campaigns' discovered offsets.
  IndexSet combined_discovered;
  /// Carved subset over the union.
  IndexSet combined_approx;
  /// Per-member approximation sizes (for diminishing-returns analysis).
  std::vector<int64_t> member_approx_sizes;
  int total_evaluations = 0;
};

/// Runs `num_members` independent campaigns with distinct RNG seeds and
/// carves the union of their discoveries. Random initial seeds are the
/// fuzzer's main variance source (Section V-C runs every experiment 10
/// times for this reason); an ensemble converts that variance into recall
/// at a linear cost in executions.
EnsembleResult RunEnsembleKondo(const Program& program,
                                const KondoConfig& base_config,
                                int num_members);

}  // namespace kondo

#endif  // KONDO_CORE_ENSEMBLE_H_
