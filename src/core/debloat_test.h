#ifndef KONDO_CORE_DEBLOAT_TEST_H_
#define KONDO_CORE_DEBLOAT_TEST_H_

#include <memory>
#include <string>

#include "exec/test_candidate.h"
#include "fuzz/fuzz_schedule.h"
#include "workloads/program.h"

namespace kondo {

/// Builds the debloat test of Definition 2 in "offset-printing" mode: the
/// program's reads are intercepted directly as index tuples without touching
/// a data file — the methodology of Section V-C used for all fuzzing/carving
/// experiments (it does not change the computed `I'_Θ`).
DebloatTestFn MakeDebloatTest(const Program& program);

/// Candidate-aware offset-printing test for the parallel executor. Safe to
/// run concurrently: programs are stateless over `Execute`, and the
/// candidate's identity-derived RNG stream covers any randomness a harness
/// layers on top.
CandidateTestFn MakeCandidateTest(const Program& program);

/// Builds a fully audited debloat test: each invocation opens `kdf_path`
/// through the interposition shim, executes the program's real positioned
/// reads, and recovers `I_v` from the recorded `<id, c, l, sz>` events via
/// the file's metadata. Slower; used by the audit-overhead experiment and
/// integration tests. The file's shape must match the program's.
DebloatTestFn MakeAuditedDebloatTest(const Program& program,
                                     const std::string& kdf_path);

/// Candidate-aware audited test for the parallel executor. Each run opens
/// its own shim over `kdf_path` (no shared mutable state), records lineage
/// under run id `1 + candidate.seq` — deterministic across `--jobs`
/// settings, unlike a worker-thread id — and returns the captured event log
/// in `CandidateResult::log` so the campaign's ResultCollector can persist
/// consumed runs in candidate order through the single-writer channel.
CandidateTestFn MakeAuditedCandidateTest(const Program& program,
                                         const std::string& kdf_path);

}  // namespace kondo

#endif  // KONDO_CORE_DEBLOAT_TEST_H_
