#ifndef KONDO_CORE_DEBLOAT_TEST_H_
#define KONDO_CORE_DEBLOAT_TEST_H_

#include <memory>
#include <string>

#include "fuzz/fuzz_schedule.h"
#include "workloads/program.h"

namespace kondo {

/// Builds the debloat test of Definition 2 in "offset-printing" mode: the
/// program's reads are intercepted directly as index tuples without touching
/// a data file — the methodology of Section V-C used for all fuzzing/carving
/// experiments (it does not change the computed `I'_Θ`).
DebloatTestFn MakeDebloatTest(const Program& program);

/// Builds a fully audited debloat test: each invocation opens `kdf_path`
/// through the interposition shim, executes the program's real positioned
/// reads, and recovers `I_v` from the recorded `<id, c, l, sz>` events via
/// the file's metadata. Slower; used by the audit-overhead experiment and
/// integration tests. The file's shape must match the program's.
DebloatTestFn MakeAuditedDebloatTest(const Program& program,
                                     const std::string& kdf_path);

}  // namespace kondo

#endif  // KONDO_CORE_DEBLOAT_TEST_H_
