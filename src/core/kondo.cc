#include "core/kondo.h"

#include <algorithm>
#include <utility>

#include "common/stopwatch.h"
#include "exec/thread_pool.h"

namespace kondo {

KondoResult KondoPipeline::Run(const Program& program) const {
  return RunWithCandidateTest(MakeCandidateTest(program),
                              program.param_space(), program.data_shape());
}

KondoResult KondoPipeline::RunWithTest(const DebloatTestFn& test,
                                       const ParamSpace& space,
                                       const Shape& shape) const {
  return RunWithCandidateTest(
      [&test](const TestCandidate& candidate) {
        CandidateResult result;
        result.accessed = test(candidate.value);
        return result;
      },
      space, shape);
}

KondoResult KondoPipeline::RunWithCandidateTest(
    const CandidateTestFn& test, const ParamSpace& space, const Shape& shape,
    ResultCollector* collector) const {
  Stopwatch stopwatch;
  CampaignExecutor executor(ClampJobs(config_.jobs));
  FuzzSchedule schedule(space, shape, config_.fuzz, config_.rng_seed);
  FuzzResult fuzz = schedule.Run(executor, test, collector);
  const double fuzz_seconds = stopwatch.ElapsedSeconds();

  stopwatch.Reset();
  Carver carver(config_.carve);
  CarveStats carve_stats;
  CarvedSubset carved = carver.Carve(fuzz.discovered, &carve_stats);
  const double carve_seconds = stopwatch.ElapsedSeconds();

  stopwatch.Reset();
  IndexSet approx = Carver::Rasterize(carved, executor);
  const double rasterize_seconds = stopwatch.ElapsedSeconds();

  return KondoResult{std::move(fuzz),    carve_stats,
                     std::move(carved),  std::move(approx),
                     fuzz_seconds,       carve_seconds,
                     rasterize_seconds};
}

DebloatedArray PackageDebloated(const DataArray& array,
                                const IndexSet& approx) {
  return DebloatedArray::FromDataArray(array, approx);
}

KondoConfig ScaledKondoConfig(const Shape& shape) {
  int64_t max_extent = 1;
  for (int d = 0; d < shape.rank(); ++d) {
    max_extent = std::max(max_extent, shape.dim(d));
  }
  const double scale = std::max(1.0, static_cast<double>(max_extent) / 128.0);
  KondoConfig config;
  config.fuzz.u_dist = {config.fuzz.u_dist.lo * scale,
                        config.fuzz.u_dist.hi * scale};
  config.fuzz.n_dist = {config.fuzz.n_dist.lo * scale,
                        config.fuzz.n_dist.hi * scale};
  config.fuzz.diameter *= scale;
  config.carve.cell_size =
      std::max<int64_t>(config.carve.cell_size,
                        static_cast<int64_t>(config.carve.cell_size * scale));
  config.carve.center_d_thresh *= scale;
  config.carve.boundary_d_thresh *= scale;
  return config;
}

}  // namespace kondo
