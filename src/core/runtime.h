#ifndef KONDO_CORE_RUNTIME_H_
#define KONDO_CORE_RUNTIME_H_

#include <cstdint>

#include "array/debloated_array.h"
#include "common/statusor.h"
#include "workloads/program.h"

namespace kondo {

/// Statistics of debloated replays.
struct RuntimeStats {
  int64_t reads = 0;
  int64_t hits = 0;
  int64_t misses = 0;  // Reads that raised the data-missing exception.
};

/// Kondo's user-end run-time system (Section III): recreates `D_Θ` from the
/// debloated container payload and serves the application's reads. An
/// access to a Null index raises the "data missing" exception
/// (StatusCode::kDataMissing); Section VI notes a container runtime could
/// instead pull the missing offsets from a remote server — `missing_log()`
/// records exactly the indices such a fetcher would request.
class DebloatRuntime {
 public:
  explicit DebloatRuntime(DebloatedArray array) : array_(std::move(array)) {}

  const DebloatedArray& array() const { return array_; }
  const RuntimeStats& stats() const { return stats_; }
  const std::vector<Index>& missing_log() const { return missing_log_; }

  /// Serves one element read.
  StatusOr<double> Read(const Index& index);

  /// Replays a full program run against the debloated data. Returns OK when
  /// every access hit retained data; otherwise the first data-missing error
  /// (the replay still executes to completion so `missing_log` is complete
  /// for the run).
  Status ReplayRun(const Program& program, const ParamValue& v);

  void ResetStats();

 private:
  DebloatedArray array_;
  RuntimeStats stats_;
  std::vector<Index> missing_log_;
};

}  // namespace kondo

#endif  // KONDO_CORE_RUNTIME_H_
