#include "core/metrics.h"

#include <cmath>
#include <vector>

#include "common/logging.h"

namespace kondo {

AccuracyMetrics ComputeAccuracy(const IndexSet& truth,
                                const IndexSet& approx) {
  AccuracyMetrics metrics;
  metrics.truth_size = static_cast<int64_t>(truth.size());
  metrics.approx_size = static_cast<int64_t>(approx.size());
  metrics.intersection = truth.IntersectionSize(approx);
  metrics.precision =
      metrics.approx_size == 0
          ? 1.0
          : static_cast<double>(metrics.intersection) /
                static_cast<double>(metrics.approx_size);
  metrics.recall = metrics.truth_size == 0
                       ? 1.0
                       : static_cast<double>(metrics.intersection) /
                             static_cast<double>(metrics.truth_size);
  metrics.f1 = (metrics.precision + metrics.recall) > 0.0
                   ? 2.0 * metrics.precision * metrics.recall /
                         (metrics.precision + metrics.recall)
                   : 0.0;
  return metrics;
}

double BloatFraction(const Shape& shape, const IndexSet& subset) {
  const double total = static_cast<double>(shape.NumElements());
  if (total <= 0.0) {
    return 0.0;
  }
  return 1.0 - static_cast<double>(subset.size()) / total;
}

MissedAccessStats ComputeMissedValuations(const Program& program,
                                          const IndexSet& approx,
                                          int64_t max_exhaustive,
                                          int64_t sample_size,
                                          uint64_t rng_seed) {
  const ParamSpace& space = program.param_space();
  MissedAccessStats stats;

  auto run_misses = [&program, &approx](const ParamValue& v) {
    bool missed = false;
    program.Execute(v, [&approx, &missed](const Index& index) {
      if (!missed && !approx.Contains(index)) {
        missed = true;
      }
    });
    return missed;
  };

  const double valuations = space.NumValuations();
  if (std::isfinite(valuations) &&
      valuations <= static_cast<double>(max_exhaustive)) {
    stats.exhaustive = true;
    const int m = space.num_params();
    std::vector<int64_t> lo(static_cast<size_t>(m)),
        hi(static_cast<size_t>(m)), cur(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) {
      lo[static_cast<size_t>(i)] =
          static_cast<int64_t>(std::ceil(space.range(i).lo));
      hi[static_cast<size_t>(i)] =
          static_cast<int64_t>(std::floor(space.range(i).hi));
      cur[static_cast<size_t>(i)] = lo[static_cast<size_t>(i)];
    }
    ParamValue v(static_cast<size_t>(m));
    while (true) {
      for (int i = 0; i < m; ++i) {
        v[static_cast<size_t>(i)] =
            static_cast<double>(cur[static_cast<size_t>(i)]);
      }
      ++stats.valuations_checked;
      if (run_misses(v)) {
        ++stats.valuations_missed;
      }
      int d = m - 1;
      while (d >= 0 && ++cur[static_cast<size_t>(d)] >
                           hi[static_cast<size_t>(d)]) {
        cur[static_cast<size_t>(d)] = lo[static_cast<size_t>(d)];
        --d;
      }
      if (d < 0) {
        break;
      }
    }
  } else {
    Rng rng(rng_seed);
    for (int64_t i = 0; i < sample_size; ++i) {
      ++stats.valuations_checked;
      if (run_misses(space.Sample(rng))) {
        ++stats.valuations_missed;
      }
    }
  }

  stats.missed_fraction =
      stats.valuations_checked == 0
          ? 0.0
          : static_cast<double>(stats.valuations_missed) /
                static_cast<double>(stats.valuations_checked);
  return stats;
}

}  // namespace kondo
