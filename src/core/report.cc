#include "core/report.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/logging.h"

namespace kondo {
namespace {

/// Bins `subset` into a width x height grid of counts (projecting away any
/// third dimension) and returns per-cell fill ratios in [0, 1].
std::vector<double> BinFillRatios(const IndexSet& subset, int width,
                                  int height) {
  const Shape& shape = subset.shape();
  KONDO_CHECK(shape.rank() >= 2);
  const int64_t dim_x = shape.dim(0);
  const int64_t dim_y = shape.dim(1);
  const int64_t depth = shape.rank() >= 3 ? shape.dim(2) : 1;

  std::vector<int64_t> counts(static_cast<size_t>(width * height), 0);
  subset.ForEach([&](const Index& index) {
    const int row = static_cast<int>(index[0] * height / dim_x);
    const int col = static_cast<int>(index[1] * width / dim_y);
    ++counts[static_cast<size_t>(row * width + col)];
  });

  // Capacity of one bin: ceil per axis times the projected depth.
  const double bin_capacity =
      (static_cast<double>(dim_x) / height) *
      (static_cast<double>(dim_y) / width) * static_cast<double>(depth);
  std::vector<double> ratios(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    ratios[i] = std::min(1.0, static_cast<double>(counts[i]) / bin_capacity);
  }
  return ratios;
}

char FillChar(double ratio) {
  if (ratio <= 0.0) return ' ';
  if (ratio < 0.15) return '.';
  if (ratio < 0.6) return ':';
  return '#';
}

}  // namespace

std::string RenderIndexMap(const IndexSet& subset, int width, int height) {
  const std::vector<double> ratios = BinFillRatios(subset, width, height);
  std::ostringstream os;
  os << "+" << std::string(static_cast<size_t>(width), '-') << "+\n";
  for (int row = 0; row < height; ++row) {
    os << "|";
    for (int col = 0; col < width; ++col) {
      os << FillChar(ratios[static_cast<size_t>(row * width + col)]);
    }
    os << "|\n";
  }
  os << "+" << std::string(static_cast<size_t>(width), '-') << "+\n";
  return os.str();
}

std::string RenderComparison(const IndexSet& truth, const IndexSet& approx,
                             int width, int height) {
  KONDO_CHECK(truth.shape() == approx.shape());
  const std::vector<double> truth_ratios =
      BinFillRatios(truth, width, height);
  const std::vector<double> approx_ratios =
      BinFillRatios(approx, width, height);
  std::ostringstream os;
  os << "legend: '#' both, '+' carved only (precision loss), "
        "'-' truth only (recall loss)\n";
  os << "+" << std::string(static_cast<size_t>(width), '-') << "+\n";
  for (int row = 0; row < height; ++row) {
    os << "|";
    for (int col = 0; col < width; ++col) {
      const size_t i = static_cast<size_t>(row * width + col);
      const bool in_truth = truth_ratios[i] > 0.0;
      const bool in_approx = approx_ratios[i] > 0.0;
      char c = ' ';
      if (in_truth && in_approx) {
        c = '#';
      } else if (in_approx) {
        c = '+';
      } else if (in_truth) {
        c = '-';
      }
      os << c;
    }
    os << "|\n";
  }
  os << "+" << std::string(static_cast<size_t>(width), '-') << "+\n";
  return os.str();
}

std::string FormatCampaignReport(const KondoResult& result,
                                 const AccuracyMetrics& metrics) {
  std::ostringstream os;
  os << "campaign: " << result.fuzz.stats.evaluations << " debloat tests ("
     << result.fuzz.stats.useful_evaluations << " useful, "
     << result.fuzz.stats.restarts << " restarts";
  if (result.fuzz.stats.stopped_by_stagnation) {
    os << ", stopped by stagnation";
  }
  os << ")\n";
  os << "carving:  " << result.carve_stats.initial_hulls << " cell hulls -> "
     << result.carve_stats.final_hulls << " hulls after "
     << result.carve_stats.merge_operations << " merges\n";
  os << "subset:   " << metrics.approx_size << " indices; ground truth "
     << metrics.truth_size << "\n";
  os << "quality:  precision " << metrics.precision << ", recall "
     << metrics.recall << "\n";
  return os.str();
}

}  // namespace kondo
