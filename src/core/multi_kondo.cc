#include "core/multi_kondo.h"

#include <utility>

#include "common/logging.h"
#include "exec/thread_pool.h"
#include "shard/shard_scheduler.h"

namespace kondo {

MultiKondoResult RunMultiFileKondo(const MultiFileProgram& program,
                                   const KondoConfig& config) {
  if (config.shards > 1) {
    // Sharded route: per-shard campaigns over a shared pool, folded by the
    // merge stage into the same result the unsharded body below computes
    // (bit-identical — tests/shard_test.cc pins this).
    ShardOptions options;
    options.shards = config.shards;
    StatusOr<ShardedRunResult> sharded =
        RunShardedCampaign(program, config, options);
    KONDO_CHECK(sharded.ok()) << "sharded campaign failed: "
                              << sharded.status();
    KONDO_CHECK(sharded->complete);
    MultiKondoResult result;
    result.fuzz_stats = sharded->merged.fuzz_stats;
    result.per_file_discovered = std::move(sharded->merged.per_file_discovered);
    result.per_file_approx = std::move(sharded->merged.per_file_approx);
    result.per_file_carve_stats =
        std::move(sharded->merged.per_file_carve_stats);
    return result;
  }

  const int files = program.num_files();

  // The schedule tracks discovery over a synthetic combined index space:
  // file f's element `linear` maps to global id (offset_f + linear). This
  // preserves the stopping criteria ("no new offset in any file") without
  // teaching the schedule about files.
  std::vector<int64_t> offsets(static_cast<size_t>(files) + 1, 0);
  std::vector<Shape> file_shapes;
  file_shapes.reserve(static_cast<size_t>(files));
  for (int f = 0; f < files; ++f) {
    offsets[static_cast<size_t>(f) + 1] =
        offsets[static_cast<size_t>(f)] +
        program.file_shape(f).NumElements();
    file_shapes.push_back(program.file_shape(f));
  }
  const Shape combined_shape({offsets.back()});

  // Each test returns its own per-file access sets (no shared side channel
  // — workers may run tests concurrently and speculatively); the
  // ResultCollector merges exactly the consumed tests, in candidate order,
  // so the per-file unions match the serial campaign bit-for-bit.
  const CandidateTestFn test = [&program, &offsets, &combined_shape,
                                &file_shapes](const TestCandidate& candidate) {
    CandidateResult result;
    result.accessed = IndexSet(combined_shape);
    result.per_file.reserve(file_shapes.size());
    for (const Shape& shape : file_shapes) {
      result.per_file.emplace_back(shape);
    }
    program.Execute(candidate.value, [&](int file, const Index& index) {
      const Shape& shape = file_shapes[static_cast<size_t>(file)];
      if (!shape.Contains(index)) {
        return;
      }
      result.per_file[static_cast<size_t>(file)].Insert(index);
      result.accessed.InsertLinear(offsets[static_cast<size_t>(file)] +
                                   shape.Linearize(index));
    });
    return result;
  };

  ResultCollector collector(combined_shape);
  collector.EnablePerFile(file_shapes);
  CampaignExecutor executor(ClampJobs(config.jobs));
  FuzzSchedule schedule(program.param_space(), combined_shape, config.fuzz,
                        config.rng_seed);
  const FuzzResult fuzz = schedule.Run(executor, test, &collector);

  MultiKondoResult result;
  result.fuzz_stats = fuzz.stats;
  result.per_file_discovered = collector.TakePerFile();
  Carver carver(config.carve);
  for (int f = 0; f < files; ++f) {
    CarveStats stats;
    const CarvedSubset carved =
        carver.Carve(result.per_file_discovered[static_cast<size_t>(f)],
                     &stats);
    result.per_file_approx.push_back(carved.Rasterize());
    result.per_file_carve_stats.push_back(stats);
  }
  return result;
}

}  // namespace kondo
