#include "core/multi_kondo.h"

#include <utility>

namespace kondo {

MultiKondoResult RunMultiFileKondo(const MultiFileProgram& program,
                                   const KondoConfig& config) {
  const int files = program.num_files();

  // The schedule tracks discovery over a synthetic combined index space:
  // file f's element `linear` maps to global id (offset_f + linear). This
  // preserves the stopping criteria ("no new offset in any file") without
  // teaching the schedule about files.
  std::vector<int64_t> offsets(static_cast<size_t>(files) + 1, 0);
  for (int f = 0; f < files; ++f) {
    offsets[static_cast<size_t>(f) + 1] =
        offsets[static_cast<size_t>(f)] +
        program.file_shape(f).NumElements();
  }
  const Shape combined_shape({offsets.back()});

  // Per-seed side channel: the wrapper records each file's accesses so the
  // campaign's per-file union can be reconstructed without re-executing.
  MultiIndexSets discovered;
  for (int f = 0; f < files; ++f) {
    discovered.emplace_back(program.file_shape(f));
  }

  const DebloatTestFn test = [&program, &discovered, &offsets,
                              &combined_shape](const ParamValue& v) {
    IndexSet combined(combined_shape);
    program.Execute(v, [&](int file, const Index& index) {
      const Shape& shape = program.file_shape(file);
      if (!shape.Contains(index)) {
        return;
      }
      discovered[static_cast<size_t>(file)].Insert(index);
      combined.InsertLinear(offsets[static_cast<size_t>(file)] +
                            shape.Linearize(index));
    });
    return combined;
  };

  FuzzSchedule schedule(program.param_space(), combined_shape, config.fuzz,
                        config.rng_seed);
  const FuzzResult fuzz = schedule.Run(test);

  MultiKondoResult result;
  result.fuzz_stats = fuzz.stats;
  result.per_file_discovered = std::move(discovered);
  Carver carver(config.carve);
  for (int f = 0; f < files; ++f) {
    CarveStats stats;
    const CarvedSubset carved =
        carver.Carve(result.per_file_discovered[static_cast<size_t>(f)],
                     &stats);
    result.per_file_approx.push_back(carved.Rasterize());
    result.per_file_carve_stats.push_back(stats);
  }
  return result;
}

}  // namespace kondo
