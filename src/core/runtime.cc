#include "core/runtime.h"

namespace kondo {

StatusOr<double> DebloatRuntime::Read(const Index& index) {
  ++stats_.reads;
  StatusOr<double> value = array_.At(index);
  if (value.ok()) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
    missing_log_.push_back(index);
  }
  return value;
}

Status DebloatRuntime::ReplayRun(const Program& program,
                                 const ParamValue& v) {
  Status first_error = OkStatus();
  program.Execute(v, [this, &first_error](const Index& index) {
    StatusOr<double> value = Read(index);
    if (!value.ok() && first_error.ok()) {
      first_error = value.status();
    }
  });
  return first_error;
}

void DebloatRuntime::ResetStats() {
  stats_ = RuntimeStats{};
  missing_log_.clear();
}

}  // namespace kondo
