#include "core/remote_fetch.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "common/strings.h"

namespace kondo {

StatusOr<std::unique_ptr<KdfRemoteSource>> KdfRemoteSource::Open(
    const std::string& path, int64_t latency_micros) {
  KONDO_ASSIGN_OR_RETURN(KdfReader reader, KdfReader::Open(path));
  return std::unique_ptr<KdfRemoteSource>(
      new KdfRemoteSource(std::move(reader), latency_micros));
}

StatusOr<double> KdfRemoteSource::Fetch(const Index& index) {
  BusyWaitMicros(latency_micros_);
  ++fetch_count_;
  KONDO_ASSIGN_OR_RETURN(double value, reader_.ReadElement(index));
  bytes_fetched_ += reader_.layout().element_size();
  return value;
}

StatusOr<double> FetchingRuntime::Read(const Index& index) {
  StatusOr<double> local = local_.Read(index);
  if (local.ok()) {
    ++stats_.local_hits;
    return local;
  }
  if (local.status().code() != StatusCode::kDataMissing ||
      remote_ == nullptr) {
    ++stats_.hard_misses;
    return local;
  }
  // Missing locally: consult the fetch cache, then the remote source.
  const int64_t linear = local_array().shape().Linearize(index);
  if (auto it = fetched_cache_.find(linear); it != fetched_cache_.end()) {
    ++stats_.local_hits;
    return it->second;
  }
  if (stats_.degraded) {
    ++stats_.hard_misses;
    return DataMissingError(
        StrCat("data missing (remote fetching degraded after ",
               consecutive_failures_, " consecutive fetch failures)"));
  }
  const int max_attempts = std::max(1, policy_.max_attempts);
  StatusOr<double> fetched = remote_->Fetch(index);
  int attempt = 1;
  while (!fetched.ok() && attempt < max_attempts) {
    if (policy_.backoff_micros > 0) {
      BusyWaitMicros(policy_.backoff_micros << (attempt - 1));
    }
    ++attempt;
    ++stats_.fetch_retries;
    fetched = remote_->Fetch(index);
  }
  if (!fetched.ok()) {
    ++stats_.hard_misses;
    ++stats_.fetch_failures;
    ++consecutive_failures_;
    if (policy_.degrade_after > 0 &&
        consecutive_failures_ >= policy_.degrade_after) {
      stats_.degraded = true;
    }
    // Surface the paper's data-missing error, not the transport error: to
    // the program, an unfetchable element is indistinguishable from a
    // debloated one.
    return DataMissingError(StrCat("data missing and remote fetch failed (",
                                   attempt, " attempts): ",
                                   fetched.status().message()));
  }
  consecutive_failures_ = 0;
  ++stats_.remote_fetches;
  stats_.bytes_fetched = remote_->bytes_fetched();
  fetched_cache_.emplace(linear, *fetched);
  return fetched;
}

Status FetchingRuntime::ReplayRun(const Program& program,
                                  const ParamValue& v) {
  Status first_error = OkStatus();
  program.Execute(v, [this, &first_error](const Index& index) {
    StatusOr<double> value = Read(index);
    if (!value.ok() && first_error.ok()) {
      first_error = value.status();
    }
  });
  return first_error;
}

}  // namespace kondo
