#include "core/remote_fetch.h"

#include "common/stopwatch.h"

namespace kondo {

StatusOr<std::unique_ptr<KdfRemoteSource>> KdfRemoteSource::Open(
    const std::string& path, int64_t latency_micros) {
  KONDO_ASSIGN_OR_RETURN(KdfReader reader, KdfReader::Open(path));
  return std::unique_ptr<KdfRemoteSource>(
      new KdfRemoteSource(std::move(reader), latency_micros));
}

StatusOr<double> KdfRemoteSource::Fetch(const Index& index) {
  BusyWaitMicros(latency_micros_);
  ++fetch_count_;
  KONDO_ASSIGN_OR_RETURN(double value, reader_.ReadElement(index));
  bytes_fetched_ += reader_.layout().element_size();
  return value;
}

StatusOr<double> FetchingRuntime::Read(const Index& index) {
  StatusOr<double> local = local_.Read(index);
  if (local.ok()) {
    ++stats_.local_hits;
    return local;
  }
  if (local.status().code() != StatusCode::kDataMissing ||
      remote_ == nullptr) {
    ++stats_.hard_misses;
    return local;
  }
  // Missing locally: consult the fetch cache, then the remote source.
  const int64_t linear = local_array().shape().Linearize(index);
  if (auto it = fetched_cache_.find(linear); it != fetched_cache_.end()) {
    ++stats_.local_hits;
    return it->second;
  }
  StatusOr<double> fetched = remote_->Fetch(index);
  if (!fetched.ok()) {
    ++stats_.hard_misses;
    return fetched;
  }
  ++stats_.remote_fetches;
  stats_.bytes_fetched = remote_->bytes_fetched();
  fetched_cache_.emplace(linear, *fetched);
  return fetched;
}

Status FetchingRuntime::ReplayRun(const Program& program,
                                  const ParamValue& v) {
  Status first_error = OkStatus();
  program.Execute(v, [this, &first_error](const Index& index) {
    StatusOr<double> value = Read(index);
    if (!value.ok() && first_error.ok()) {
      first_error = value.status();
    }
  });
  return first_error;
}

}  // namespace kondo
