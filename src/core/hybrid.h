#ifndef KONDO_CORE_HYBRID_H_
#define KONDO_CORE_HYBRID_H_

#include <cstdint>

#include "baselines/afl_fuzzer.h"
#include "core/kondo.h"

namespace kondo {

/// Outcome of a hybrid campaign (Section VI, future work): "let Kondo run
/// for some more time and in parallel consult other fuzzing schedules, such
/// as those available in AFL, to determine if any other missed offsets are
/// detected."
struct HybridOutcome {
  /// The plain Kondo result (fuzz + carve over Kondo's own discoveries).
  KondoResult kondo;
  /// AFL's raw campaign.
  AflResult afl;
  /// Offsets AFL covered that Kondo's fuzzer had not discovered.
  int64_t afl_new_offsets = 0;
  /// Of those, offsets that were *also* outside Kondo's carved hulls —
  /// i.e. genuine recall repairs (points the hulls missed).
  int64_t repaired_offsets = 0;
  /// Carved subset over the union of both discovery sets.
  IndexSet combined_approx;
};

/// Runs Kondo, then an AFL campaign on the same program, and re-carves the
/// union of the two discovery sets. The AFL stage's value is concentrated
/// where Kondo's recall is below 1; elsewhere it adds nothing.
HybridOutcome RunHybridKondoAfl(const Program& program,
                                const KondoConfig& kondo_config,
                                const AflConfig& afl_config);

}  // namespace kondo

#endif  // KONDO_CORE_HYBRID_H_
