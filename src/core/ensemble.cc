#include "core/ensemble.h"

#include "exec/campaign_executor.h"
#include "exec/thread_pool.h"

namespace kondo {

EnsembleResult RunEnsembleKondo(const Program& program,
                                const KondoConfig& base_config,
                                int num_members) {
  // Members are fully independent campaigns (distinct seeds), so they fan
  // out across the executor whole; each member runs its own schedule
  // serially. Merging in member order keeps the result identical to the
  // jobs=1 run.
  CampaignExecutor executor(
      ClampJobs(std::min(base_config.jobs, std::max(num_members, 1))));
  std::vector<KondoResult> member_results = executor.Map<KondoResult>(
      num_members, [&program, &base_config](int64_t member) {
        KondoConfig config = base_config;
        config.jobs = 1;
        config.rng_seed =
            base_config.rng_seed + static_cast<uint64_t>(member);
        return KondoPipeline(config).Run(program);
      });

  EnsembleResult result;
  result.combined_discovered = IndexSet(program.data_shape());
  for (const KondoResult& member_result : member_results) {
    result.combined_discovered.Union(member_result.fuzz.discovered);
    result.member_approx_sizes.push_back(
        static_cast<int64_t>(member_result.approx.size()));
    result.total_evaluations += member_result.fuzz.stats.evaluations;
  }
  Carver carver(base_config.carve);
  result.combined_approx =
      carver.Carve(result.combined_discovered).Rasterize();
  return result;
}

}  // namespace kondo
