#include "core/ensemble.h"

namespace kondo {

EnsembleResult RunEnsembleKondo(const Program& program,
                                const KondoConfig& base_config,
                                int num_members) {
  EnsembleResult result;
  result.combined_discovered = IndexSet(program.data_shape());
  for (int member = 0; member < num_members; ++member) {
    KondoConfig config = base_config;
    config.rng_seed = base_config.rng_seed + static_cast<uint64_t>(member);
    const KondoResult member_result = KondoPipeline(config).Run(program);
    result.combined_discovered.Union(member_result.fuzz.discovered);
    result.member_approx_sizes.push_back(
        static_cast<int64_t>(member_result.approx.size()));
    result.total_evaluations += member_result.fuzz.stats.evaluations;
  }
  Carver carver(base_config.carve);
  result.combined_approx =
      carver.Carve(result.combined_discovered).Rasterize();
  return result;
}

}  // namespace kondo
