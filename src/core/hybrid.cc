#include "core/hybrid.h"

namespace kondo {

HybridOutcome RunHybridKondoAfl(const Program& program,
                                const KondoConfig& kondo_config,
                                const AflConfig& afl_config) {
  HybridOutcome outcome;
  outcome.kondo = KondoPipeline(kondo_config).Run(program);

  AflFuzzer fuzzer(program, afl_config);
  outcome.afl = fuzzer.Run();

  IndexSet combined = outcome.kondo.fuzz.discovered;
  outcome.afl.coverage.ForEach(
      [&outcome, &combined](const Index& index) {
        if (!combined.Contains(index)) {
          ++outcome.afl_new_offsets;
          combined.Insert(index);
          if (!outcome.kondo.carved.Contains(index)) {
            ++outcome.repaired_offsets;
          }
        }
      });

  Carver carver(kondo_config.carve);
  outcome.combined_approx = carver.Carve(combined).Rasterize();
  return outcome;
}

}  // namespace kondo
