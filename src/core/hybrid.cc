#include "core/hybrid.h"

#include <utility>

#include "exec/campaign_executor.h"

namespace kondo {

HybridOutcome RunHybridKondoAfl(const Program& program,
                                const KondoConfig& kondo_config,
                                const AflConfig& afl_config) {
  HybridOutcome outcome;

  // The two discovery stages are independent until the merge, and the paper
  // frames the AFL consult as running "in parallel" with Kondo (§VI) — so
  // with jobs > 1 they run concurrently. Kondo keeps its own inner executor
  // for within-campaign parallelism; both programs only call the const,
  // stateless Execute path, so concurrent stages are safe.
  AflResult afl;
  CampaignExecutor executor(kondo_config.jobs > 1 ? 2 : 1);
  executor.ParallelFor(2, [&](int64_t stage) {
    if (stage == 0) {
      outcome.kondo = KondoPipeline(kondo_config).Run(program);
    } else {
      AflFuzzer fuzzer(program, afl_config);
      afl = fuzzer.Run();
    }
  });
  outcome.afl = std::move(afl);

  IndexSet combined = outcome.kondo.fuzz.discovered;
  outcome.afl.coverage.ForEach(
      [&outcome, &combined](const Index& index) {
        if (!combined.Contains(index)) {
          ++outcome.afl_new_offsets;
          combined.Insert(index);
          if (!outcome.kondo.carved.Contains(index)) {
            ++outcome.repaired_offsets;
          }
        }
      });

  Carver carver(kondo_config.carve);
  outcome.combined_approx = carver.Carve(combined).Rasterize();
  return outcome;
}

}  // namespace kondo
