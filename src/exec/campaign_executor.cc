#include "exec/campaign_executor.h"

#include <algorithm>
#include <atomic>

#include "common/stopwatch.h"
#include "common/thread_annotations.h"

namespace kondo {
namespace {

/// Shared completion state of one ParallelFor batch. The cursor is lock-free
/// (contended on every item); the latch and the first captured exception sit
/// behind an annotated mutex so `-Wthread-safety` proves every access.
struct BatchState {
  std::atomic<int64_t> cursor{0};
  Mutex mu;
  CondVar done;
  int pending KONDO_GUARDED_BY(mu) = 0;
  std::exception_ptr first_error KONDO_GUARDED_BY(mu);
};

}  // namespace

CampaignExecutor::CampaignExecutor(int jobs) : jobs_(std::max(1, jobs)) {
  if (jobs_ > 1) {
    owned_pool_ = std::make_unique<ThreadPool>(jobs_);
    pool_ = owned_pool_.get();
  }
}

CampaignExecutor::CampaignExecutor(ThreadPool* shared_pool, int jobs)
    : jobs_(shared_pool == nullptr
                ? 1
                : std::max(1, jobs > 0 ? jobs : shared_pool->num_threads())),
      pool_(shared_pool) {}

void CampaignExecutor::ParallelFor(int64_t n,
                                   const std::function<void(int64_t)>& fn) {
  if (n <= 0) {
    return;
  }
  if (pool_ == nullptr || n == 1) {
    for (int64_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  // One pool task per worker; each task pulls item indices from the shared
  // cursor until the batch is exhausted (cheap dynamic load balancing —
  // debloat tests have wildly varying access-set sizes).
  const int tasks = static_cast<int>(
      std::min<int64_t>(n, static_cast<int64_t>(jobs_)));
  BatchState state;
  {
    MutexLock lock(state.mu);
    state.pending = tasks;
  }

  for (int t = 0; t < tasks; ++t) {
    pool_->Submit([&state, &fn, n] {
      for (int64_t i = state.cursor.fetch_add(1); i < n;
           i = state.cursor.fetch_add(1)) {
        try {
          fn(i);
        } catch (...) {
          MutexLock lock(state.mu);
          if (state.first_error == nullptr) {
            state.first_error = std::current_exception();
          }
        }
      }
      MutexLock lock(state.mu);
      if (--state.pending == 0) {
        state.done.NotifyAll();
      }
    });
  }

  std::exception_ptr first_error;
  {
    MutexLock lock(state.mu);
    while (state.pending != 0) {
      state.done.Wait(state.mu);
    }
    first_error = state.first_error;
  }
  if (first_error != nullptr) {
    std::rethrow_exception(first_error);
  }
}

std::vector<CandidateResult> CampaignExecutor::RunBatch(
    const std::vector<TestCandidate>& batch, const CandidateTestFn& test) {
  return Map<CandidateResult>(
      static_cast<int64_t>(batch.size()),
      [&batch, &test](int64_t i) { return test(batch[static_cast<size_t>(i)]); });
}

std::vector<CandidateResult> CampaignExecutor::RunBatch(
    const std::vector<TestCandidate>& batch, const CandidateTestFn& test,
    const RetryPolicy& policy) {
  const int max_attempts = std::max(1, policy.max_attempts);
  if (max_attempts == 1) {
    return RunBatch(batch, test);
  }
  return Map<CandidateResult>(
      static_cast<int64_t>(batch.size()),
      [&batch, &test, &policy, max_attempts](int64_t i) {
        const TestCandidate& candidate = batch[static_cast<size_t>(i)];
        CandidateResult result;
        for (int attempt = 1; attempt <= max_attempts; ++attempt) {
          if (attempt > 1 && policy.backoff_micros > 0) {
            BusyWaitMicros(policy.backoff_micros << (attempt - 2));
          }
          result = test(candidate);
          result.attempts = attempt;
          if (result.status.ok()) {
            break;
          }
        }
        return result;
      });
}

}  // namespace kondo
