#include "exec/campaign_executor.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>

namespace kondo {

CampaignExecutor::CampaignExecutor(int jobs) : jobs_(std::max(1, jobs)) {
  if (jobs_ > 1) {
    owned_pool_ = std::make_unique<ThreadPool>(jobs_);
    pool_ = owned_pool_.get();
  }
}

CampaignExecutor::CampaignExecutor(ThreadPool* shared_pool, int jobs)
    : jobs_(shared_pool == nullptr
                ? 1
                : std::max(1, jobs > 0 ? jobs : shared_pool->num_threads())),
      pool_(shared_pool) {}

void CampaignExecutor::ParallelFor(int64_t n,
                                   const std::function<void(int64_t)>& fn) {
  if (n <= 0) {
    return;
  }
  if (pool_ == nullptr || n == 1) {
    for (int64_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  // One pool task per worker; each task pulls item indices from the shared
  // cursor until the batch is exhausted (cheap dynamic load balancing —
  // debloat tests have wildly varying access-set sizes).
  const int tasks = static_cast<int>(
      std::min<int64_t>(n, static_cast<int64_t>(jobs_)));
  std::atomic<int64_t> cursor{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  int pending = tasks;
  std::exception_ptr first_error;

  for (int t = 0; t < tasks; ++t) {
    pool_->Submit([&] {
      for (int64_t i = cursor.fetch_add(1); i < n; i = cursor.fetch_add(1)) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(done_mu);
          if (first_error == nullptr) {
            first_error = std::current_exception();
          }
        }
      }
      std::lock_guard<std::mutex> lock(done_mu);
      if (--pending == 0) {
        done_cv.notify_all();
      }
    });
  }

  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&pending] { return pending == 0; });
  if (first_error != nullptr) {
    std::rethrow_exception(first_error);
  }
}

std::vector<CandidateResult> CampaignExecutor::RunBatch(
    const std::vector<TestCandidate>& batch, const CandidateTestFn& test) {
  return Map<CandidateResult>(
      static_cast<int64_t>(batch.size()),
      [&batch, &test](int64_t i) { return test(batch[static_cast<size_t>(i)]); });
}

}  // namespace kondo
