#include "exec/test_candidate.h"

namespace kondo {
namespace {

/// SplitMix64 finaliser (the same mixer Rng uses for seeding).
uint64_t Mix64(uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t DeriveTestSeed(uint64_t campaign_seed, int round, int index) {
  uint64_t state = Mix64(campaign_seed);
  state = Mix64(state ^ static_cast<uint64_t>(round));
  state = Mix64(state ^ static_cast<uint64_t>(index));
  return state;
}

}  // namespace kondo
