#ifndef KONDO_EXEC_TEST_CANDIDATE_H_
#define KONDO_EXEC_TEST_CANDIDATE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "array/index_set.h"
#include "audit/event_log.h"
#include "common/status.h"

namespace kondo {

/// One debloat test scheduled by a fuzz campaign: the parameter value plus
/// the deterministic identity of the test within the campaign.
///
/// Identity is assigned serially at candidate-*generation* time — `round` is
/// the restart epoch of Algorithm 1 and `index` the candidate's enqueue
/// ordinal within that epoch — so it is a pure function of the campaign seed
/// and the schedule's decisions, never of which worker thread happens to run
/// the test or in what order batches drain. Everything a test may need to
/// randomise (simulated jitter, per-run audit ids) must derive from
/// `rng_seed` / `seq`; that is what makes `--jobs N` bit-identical to
/// `--jobs 1`.
struct TestCandidate {
  /// The parameter value v ∈ Θ (a ParamValue; spelled out to keep the exec
  /// layer below the fuzz layer).
  std::vector<double> value;

  /// Restart epoch that generated this candidate (1-based; bumped by every
  /// RANDOM_RESTART of Algorithm 1).
  int round = 0;

  /// Enqueue ordinal within `round`.
  int index = 0;

  /// Private RNG stream seed, DeriveTestSeed(campaign_seed, round, index).
  uint64_t rng_seed = 0;

  /// Campaign-global candidate counter (also scheduling-independent); used
  /// e.g. as the audited run id so on-disk lineage is jobs-invariant.
  int64_t seq = 0;
};

/// Outcome of one debloat test. `accessed` is the audited index subset
/// `I_v`; `log` (optional) carries the run's raw event log so lineage
/// persistence can be deferred to the single-writer ResultCollector channel
/// instead of racing on the store from worker threads; `per_file` (optional)
/// carries per-file index subsets for multi-file applications.
struct CandidateResult {
  IndexSet accessed;
  std::shared_ptr<EventLog> log;
  std::vector<IndexSet> per_file;

  /// Non-OK when the debloat test itself failed (e.g. the traced program
  /// crashed or timed out). The schedule retries per RetryPolicy and
  /// quarantines the parameter point once attempts are exhausted; a failed
  /// result contributes no lineage.
  Status status;

  /// Attempts consumed to produce this result (>= 1 once executed).
  int attempts = 1;
};

/// A debloat test over scheduled candidates. Must be safe to invoke
/// concurrently from multiple threads and must depend only on the candidate
/// (value + identity) — not on shared mutable campaign state.
using CandidateTestFn = std::function<CandidateResult(const TestCandidate&)>;

/// Derives the per-test RNG seed from the campaign seed and the candidate's
/// scheduling-independent identity (SplitMix64 chaining). Equal inputs give
/// equal streams on every platform and at every `--jobs` setting.
uint64_t DeriveTestSeed(uint64_t campaign_seed, int round, int index);

}  // namespace kondo

#endif  // KONDO_EXEC_TEST_CANDIDATE_H_
