#ifndef KONDO_EXEC_RESULT_COLLECTOR_H_
#define KONDO_EXEC_RESULT_COLLECTOR_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "array/index_set.h"
#include "array/shape.h"
#include "audit/auditor.h"
#include "common/status.h"
#include "exec/test_candidate.h"

namespace kondo {

/// The single-writer end of a parallel campaign: merges the audited
/// `IndexSet`s of consumed debloat tests and funnels their event logs into
/// the lineage store, in candidate order.
///
/// Worker threads never touch the collector. They evaluate candidates
/// (possibly speculatively — a batch may be cut short by a stopping
/// criterion) and return `CandidateResult`s; the campaign's serial
/// consumption loop calls `Collect` exactly for the candidates the serial
/// schedule would have executed, in the order it would have executed them.
/// Consequently the on-disk KEL1/KEL2 lineage is byte-identical to a
/// `jobs == 1` run: same runs, same order, nothing persisted for
/// speculative tests that the schedule never consumed.
///
/// Single-writer contract (see AuditPersistFn in src/audit/auditor.h):
/// `Collect` must not be invoked concurrently. The collector *enforces*
/// this — an overlapping call is rejected with kFailedPrecondition and the
/// store is left untouched — rather than silently interleaving blocks.
class ResultCollector {
 public:
  /// `shape` sizes the merged index set; `persist` (optional) receives each
  /// collected run's event log.
  explicit ResultCollector(Shape shape, AuditPersistFn persist = {});

  /// Declares the per-file shapes of a multi-file campaign; Collect then
  /// also merges `CandidateResult::per_file` entries elementwise.
  void EnablePerFile(const std::vector<Shape>& file_shapes);

  /// Consumes one test's outcome: merges `result.accessed` (and
  /// `result.per_file` when enabled), then persists `result.log` through
  /// the sink. Returns the sink's error, or kFailedPrecondition on a
  /// concurrent call.
  Status Collect(const CandidateResult& result);

  /// Union of every collected access set.
  const IndexSet& merged() const { return merged_; }

  /// Per-file unions (empty unless EnablePerFile was called).
  const std::vector<IndexSet>& per_file() const { return per_file_; }

  /// Moves the per-file unions out (collector is drained afterwards).
  std::vector<IndexSet> TakePerFile() { return std::move(per_file_); }

  /// Number of Collect calls that completed successfully.
  int64_t collected() const { return collected_; }

  /// Event logs persisted through the sink.
  int64_t persisted() const { return persisted_; }

 private:
  IndexSet merged_;
  std::vector<IndexSet> per_file_;
  AuditPersistFn persist_;
  int64_t collected_ = 0;
  int64_t persisted_ = 0;
  std::atomic<bool> writing_{false};  // Guards the single-writer contract.
};

}  // namespace kondo

#endif  // KONDO_EXEC_RESULT_COLLECTOR_H_
