#include "exec/thread_pool.h"

#include <algorithm>
#include <utility>

namespace kondo {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  task_ready_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    tasks_.push_back(std::move(task));
  }
  task_ready_.NotifyOne();
}

JobHandle ThreadPool::SubmitJob(std::function<void()> task) {
  auto state = std::make_shared<JobHandle::State>();
  Submit([state, task = std::move(task)] {
    task();
    {
      MutexLock lock(state->mu);
      state->done = true;
    }
    state->cv.NotifyAll();
  });
  return JobHandle(std::move(state));
}

int64_t ThreadPool::QueuedTasks() const {
  MutexLock lock(mu_);
  return static_cast<int64_t>(tasks_.size());
}

bool JobHandle::done() const {
  if (state_ == nullptr) {
    return true;
  }
  MutexLock lock(state_->mu);
  return state_->done;
}

void JobHandle::Wait() const {
  if (state_ == nullptr) {
    return;
  }
  MutexLock lock(state_->mu);
  while (!state_->done) {
    state_->cv.Wait(state_->mu);
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && tasks_.empty()) {
        task_ready_.Wait(mu_);
      }
      if (tasks_.empty()) {
        return;  // stopping_ and drained.
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int ClampJobs(int jobs, int limit) {
  if (limit <= 0) {
    // Debloat tests are frequently latency-bound (process spawn, file I/O),
    // so moderate oversubscription is useful even on small machines.
    limit = std::max(64, 8 * HardwareThreads());
  }
  return std::clamp(jobs, 1, limit);
}

}  // namespace kondo
