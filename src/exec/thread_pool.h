#ifndef KONDO_EXEC_THREAD_POOL_H_
#define KONDO_EXEC_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace kondo {

/// Completion handle for a task submitted with ThreadPool::SubmitJob. A
/// handle is a shared reference to the task's completion flag: copies
/// observe the same job, and the handle stays valid after the pool has run
/// (or is draining) the task. Used by the serve layer to track async
/// campaign submissions — admission control counts a client's outstanding
/// handles, and server shutdown Wait()s every handle so no job leaks past
/// Stop().
class JobHandle {
 public:
  JobHandle() = default;

  /// True once the task has finished running (or when the handle is empty).
  bool done() const;

  /// Blocks until the task has finished running.
  void Wait() const;

  /// False for a default-constructed handle.
  bool valid() const { return state_ != nullptr; }

 private:
  friend class ThreadPool;

  struct State {
    Mutex mu;
    CondVar cv;
    bool done KONDO_GUARDED_BY(mu) = false;
  };

  explicit JobHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// A fixed-size pool of worker threads draining a FIFO task queue. Workers
/// are spawned once at construction and joined at destruction; campaigns
/// therefore pay thread start-up once, not per batch.
///
/// The pool makes no ordering or fairness promise beyond FIFO dispatch —
/// determinism of campaign results is the CampaignExecutor's job (results
/// are written to per-task slots and merged in candidate order), never the
/// scheduler's.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then stops and joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task` for execution on some worker. Tasks must not throw
  /// across the pool boundary; wrap and capture exceptions on the caller's
  /// side (CampaignExecutor does).
  void Submit(std::function<void()> task) KONDO_EXCLUDES(mu_);

  /// Enqueues `task` and returns a handle that reports (and can wait for)
  /// its completion. The handle outlives the pool's interest in the task.
  JobHandle SubmitJob(std::function<void()> task) KONDO_EXCLUDES(mu_);

  /// Tasks enqueued but not yet picked up by a worker. A point-in-time
  /// reading for admission control and stats; it can be stale by the time
  /// the caller acts on it.
  int64_t QueuedTasks() const KONDO_EXCLUDES(mu_);

 private:
  void WorkerLoop() KONDO_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  mutable Mutex mu_;
  CondVar task_ready_;
  std::deque<std::function<void()>> tasks_ KONDO_GUARDED_BY(mu_);
  bool stopping_ KONDO_GUARDED_BY(mu_) = false;
};

/// `std::thread::hardware_concurrency()` with the zero-means-unknown case
/// mapped to 1.
int HardwareThreads();

/// Clamps a user-supplied jobs count into [1, limit]; `limit` defaults to a
/// generous multiple of the hardware so oversubscription for latency-bound
/// tests stays possible without letting a typo spawn thousands of threads.
int ClampJobs(int jobs, int limit = 0);

}  // namespace kondo

#endif  // KONDO_EXEC_THREAD_POOL_H_
