#ifndef KONDO_EXEC_THREAD_POOL_H_
#define KONDO_EXEC_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace kondo {

/// A fixed-size pool of worker threads draining a FIFO task queue. Workers
/// are spawned once at construction and joined at destruction; campaigns
/// therefore pay thread start-up once, not per batch.
///
/// The pool makes no ordering or fairness promise beyond FIFO dispatch —
/// determinism of campaign results is the CampaignExecutor's job (results
/// are written to per-task slots and merged in candidate order), never the
/// scheduler's.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then stops and joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task` for execution on some worker. Tasks must not throw
  /// across the pool boundary; wrap and capture exceptions on the caller's
  /// side (CampaignExecutor does).
  void Submit(std::function<void()> task) KONDO_EXCLUDES(mu_);

 private:
  void WorkerLoop() KONDO_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar task_ready_;
  std::deque<std::function<void()>> tasks_ KONDO_GUARDED_BY(mu_);
  bool stopping_ KONDO_GUARDED_BY(mu_) = false;
};

/// `std::thread::hardware_concurrency()` with the zero-means-unknown case
/// mapped to 1.
int HardwareThreads();

/// Clamps a user-supplied jobs count into [1, limit]; `limit` defaults to a
/// generous multiple of the hardware so oversubscription for latency-bound
/// tests stays possible without letting a typo spawn thousands of threads.
int ClampJobs(int jobs, int limit = 0);

}  // namespace kondo

#endif  // KONDO_EXEC_THREAD_POOL_H_
