#include "exec/result_collector.h"

#include <utility>

namespace kondo {

ResultCollector::ResultCollector(Shape shape, AuditPersistFn persist)
    : merged_(std::move(shape)), persist_(std::move(persist)) {}

void ResultCollector::EnablePerFile(const std::vector<Shape>& file_shapes) {
  per_file_.clear();
  per_file_.reserve(file_shapes.size());
  for (const Shape& shape : file_shapes) {
    per_file_.emplace_back(shape);
  }
}

Status ResultCollector::Collect(const CandidateResult& result) {
  if (writing_.exchange(true, std::memory_order_acquire)) {
    return FailedPreconditionError(
        "ResultCollector::Collect is single-writer: a concurrent Collect is "
        "in flight; funnel results through one consumption thread");
  }
  Status status = OkStatus();
  merged_.Union(result.accessed);
  if (!per_file_.empty() && !result.per_file.empty()) {
    const size_t files = std::min(per_file_.size(), result.per_file.size());
    for (size_t f = 0; f < files; ++f) {
      per_file_[f].Union(result.per_file[f]);
    }
  }
  if (persist_ && result.log != nullptr) {
    status = persist_(*result.log);
    if (status.ok()) {
      ++persisted_;
    }
  }
  if (status.ok()) {
    ++collected_;
  }
  writing_.store(false, std::memory_order_release);
  return status;
}

}  // namespace kondo
