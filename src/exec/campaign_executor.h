#ifndef KONDO_EXEC_CAMPAIGN_EXECUTOR_H_
#define KONDO_EXEC_CAMPAIGN_EXECUTOR_H_

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "exec/test_candidate.h"
#include "exec/thread_pool.h"

namespace kondo {

/// Fans independent work items out across a fixed-size thread pool and
/// hands the results back in *item order* — the execution engine behind
/// parallel debloat-test campaigns.
///
/// Within a fuzz round the exploit/explore candidates of Algorithm 1 are
/// independent debloat tests whose outputs are only merged afterwards (the
/// same structure AFL-style fuzzers exploit with parallel workers), so the
/// executor may run them in any order on any worker: results land in
/// per-item slots and the caller consumes them in candidate order, making
/// every campaign artefact identical to the `jobs == 1` run.
///
/// With `jobs == 1` no pool is created and work runs inline on the calling
/// thread — the serial path has zero thread or synchronisation overhead.
///
/// Several executors may share one ThreadPool (the sharded campaign
/// scheduler drives one campaign per shard over a single pool): each
/// ParallelFor call carries its own cursor and completion latch, so
/// concurrent batches from different executors interleave safely on the
/// workers. Never call ParallelFor from inside a pool task — a nested call
/// would block a worker waiting on tasks only the same pool can run.
class CampaignExecutor {
 public:
  /// `jobs` worker threads (clamped to at least 1), owned by this executor.
  explicit CampaignExecutor(int jobs = 1);

  /// Fans work out over `shared_pool` (not owned; may be used by other
  /// executors concurrently). `jobs` caps the tasks submitted per batch and
  /// defaults to the pool width; a null pool runs inline (serial).
  CampaignExecutor(ThreadPool* shared_pool, int jobs = 0);

  int jobs() const { return jobs_; }

  /// Invokes `fn(i)` for every i in [0, n), distributing items across the
  /// pool via an atomic work-stealing cursor. Blocks until all items are
  /// done. The first exception thrown by `fn` is captured and rethrown on
  /// the calling thread after the batch drains.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  /// Maps [0, n) through `fn`, returning results in index order. `T` must
  /// be default-constructible and movable.
  template <typename T, typename Fn>
  std::vector<T> Map(int64_t n, Fn&& fn) {
    std::vector<T> results(static_cast<size_t>(n));
    ParallelFor(n, [&results, &fn](int64_t i) {
      results[static_cast<size_t>(i)] = fn(i);
    });
    return results;
  }

  /// Evaluates one round's batch of debloat-test candidates, returning
  /// outcomes positionally aligned with `batch`.
  std::vector<CandidateResult> RunBatch(const std::vector<TestCandidate>& batch,
                                        const CandidateTestFn& test);

 private:
  int jobs_ = 1;
  std::unique_ptr<ThreadPool> owned_pool_;  // Null when jobs_ == 1 or shared.
  ThreadPool* pool_ = nullptr;              // Null when running inline.
};

}  // namespace kondo

#endif  // KONDO_EXEC_CAMPAIGN_EXECUTOR_H_
