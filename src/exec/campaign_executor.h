#ifndef KONDO_EXEC_CAMPAIGN_EXECUTOR_H_
#define KONDO_EXEC_CAMPAIGN_EXECUTOR_H_

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "exec/test_candidate.h"
#include "exec/thread_pool.h"

namespace kondo {

/// Bounded-retry policy for transient debloat-test failures. Retries run
/// in place on the worker that owns the candidate (never rescheduled), so
/// they cannot perturb batch order or candidate identity — the campaign
/// schedule stays bit-identical at every `--jobs`.
struct RetryPolicy {
  /// Total attempts per candidate (1 = no retries).
  int max_attempts = 1;

  /// Deterministic backoff before attempt k (1-based retry index): a busy
  /// wait of `backoff_micros << (k - 1)` microseconds. Busy-waiting keeps
  /// the delay off the clock APIs banned for determinism-critical code.
  int64_t backoff_micros = 0;
};

/// Fans independent work items out across a fixed-size thread pool and
/// hands the results back in *item order* — the execution engine behind
/// parallel debloat-test campaigns.
///
/// Within a fuzz round the exploit/explore candidates of Algorithm 1 are
/// independent debloat tests whose outputs are only merged afterwards (the
/// same structure AFL-style fuzzers exploit with parallel workers), so the
/// executor may run them in any order on any worker: results land in
/// per-item slots and the caller consumes them in candidate order, making
/// every campaign artefact identical to the `jobs == 1` run.
///
/// With `jobs == 1` no pool is created and work runs inline on the calling
/// thread — the serial path has zero thread or synchronisation overhead.
///
/// Several executors may share one ThreadPool (the sharded campaign
/// scheduler drives one campaign per shard over a single pool): each
/// ParallelFor call carries its own cursor and completion latch, so
/// concurrent batches from different executors interleave safely on the
/// workers. Never call ParallelFor from inside a pool task — a nested call
/// would block a worker waiting on tasks only the same pool can run.
class CampaignExecutor {
 public:
  /// `jobs` worker threads (clamped to at least 1), owned by this executor.
  explicit CampaignExecutor(int jobs = 1);

  /// Fans work out over `shared_pool` (not owned; may be used by other
  /// executors concurrently). `jobs` caps the tasks submitted per batch and
  /// defaults to the pool width; a null pool runs inline (serial).
  CampaignExecutor(ThreadPool* shared_pool, int jobs = 0);

  int jobs() const { return jobs_; }

  /// Invokes `fn(i)` for every i in [0, n), distributing items across the
  /// pool via an atomic work-stealing cursor. Blocks until all items are
  /// done. The first exception thrown by `fn` is captured and rethrown on
  /// the calling thread after the batch drains.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  /// Maps [0, n) through `fn`, returning results in index order. `T` must
  /// be default-constructible and movable.
  template <typename T, typename Fn>
  std::vector<T> Map(int64_t n, Fn&& fn) {
    std::vector<T> results(static_cast<size_t>(n));
    ParallelFor(n, [&results, &fn](int64_t i) {
      results[static_cast<size_t>(i)] = fn(i);
    });
    return results;
  }

  /// Evaluates one round's batch of debloat-test candidates, returning
  /// outcomes positionally aligned with `batch`.
  std::vector<CandidateResult> RunBatch(const std::vector<TestCandidate>& batch,
                                        const CandidateTestFn& test);

  /// As above, but retries each failed candidate in place per `policy`
  /// before reporting it failed. Retries happen on the worker that owns the
  /// item, so batch scheduling — and therefore every campaign artefact —
  /// stays bit-identical at every `jobs` value.
  std::vector<CandidateResult> RunBatch(const std::vector<TestCandidate>& batch,
                                        const CandidateTestFn& test,
                                        const RetryPolicy& policy);

 private:
  int jobs_ = 1;
  std::unique_ptr<ThreadPool> owned_pool_;  // Null when jobs_ == 1 or shared.
  ThreadPool* pool_ = nullptr;              // Null when running inline.
};

}  // namespace kondo

#endif  // KONDO_EXEC_CAMPAIGN_EXECUTOR_H_
