#include "audit/event.h"

#include <sstream>

namespace kondo {

std::string_view EventTypeName(EventType type) {
  switch (type) {
    case EventType::kOpen:
      return "open";
    case EventType::kRead:
      return "read";
    case EventType::kPread:
      return "pread";
    case EventType::kMmap:
      return "mmap";
    case EventType::kWrite:
      return "write";
    case EventType::kClose:
      return "close";
  }
  return "unknown";
}

std::string Event::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Event& event) {
  return os << "<pid=" << event.id.pid << ",file=" << event.id.file_id << ","
            << EventTypeName(event.type) << "," << event.offset << ","
            << event.size << ">";
}

}  // namespace kondo
