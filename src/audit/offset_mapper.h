#ifndef KONDO_AUDIT_OFFSET_MAPPER_H_
#define KONDO_AUDIT_OFFSET_MAPPER_H_

#include <cstdint>

#include "array/index_set.h"
#include "array/layout.h"
#include "common/interval_set.h"

namespace kondo {

/// Translates between the byte-offset space of audited events and the
/// d-dimensional index space the Fuzzer and Carver reason about
/// (Section IV-C: "Kondo must maintain a mapping between index tuples and
/// byte offsets ... using knowledge of metadata of the data file").
///
/// `payload_offset` is the file position of the first payload byte (the KDF
/// header size); event offsets are absolute file offsets.
class OffsetMapper {
 public:
  OffsetMapper(const Layout* layout, int64_t payload_offset)
      : layout_(layout), payload_offset_(payload_offset) {}

  /// Maps merged accessed byte ranges to the set of touched element indices.
  /// Bytes inside the header or chunk padding map to no element. Partially
  /// covered elements count as accessed.
  IndexSet IndicesForRanges(const IntervalSet& ranges) const;

  /// Inverse: the byte ranges occupied by the elements of `indices`
  /// (coalesced into maximal runs).
  IntervalSet RangesForIndices(const IndexSet& indices) const;

  /// Absolute byte range of one element.
  Interval RangeForIndex(const Index& index) const;

 private:
  const Layout* layout_;
  int64_t payload_offset_;
};

}  // namespace kondo

#endif  // KONDO_AUDIT_OFFSET_MAPPER_H_
