#ifndef KONDO_AUDIT_EVENT_H_
#define KONDO_AUDIT_EVENT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

namespace kondo {

/// System-call classes audited by the interposition layer.
enum class EventType : uint8_t {
  kOpen = 0,
  kRead = 1,   // Sequential read at the current cursor.
  kPread = 2,  // Positioned read.
  kMmap = 3,   // Memory-mapped access window.
  kWrite = 4,  // Recorded to verify the data file is read-only.
  kClose = 5,
};

std::string_view EventTypeName(EventType type);

/// Identifies the process and file an event belongs to ("id" in
/// Definition 4: "the process identifier that generated the system call and
/// the file it affects").
struct EventId {
  int64_t pid = 0;
  int64_t file_id = 0;

  friend bool operator==(const EventId& a, const EventId& b) {
    return a.pid == b.pid && a.file_id == b.file_id;
  }
  friend bool operator<(const EventId& a, const EventId& b) {
    if (a.pid != b.pid) return a.pid < b.pid;
    return a.file_id < b.file_id;
  }
};

/// An audited I/O event — the four-tuple `<id, c, l, sz>` of Definition 4:
/// identity, call type, start byte offset, and affected size.
struct Event {
  EventId id;
  EventType type = EventType::kRead;
  int64_t offset = 0;  // `l`: start byte offset in the file.
  int64_t size = 0;    // `sz`: affected bytes starting at `offset`.

  /// True for event types that read file content.
  bool IsDataAccess() const {
    return type == EventType::kRead || type == EventType::kPread ||
           type == EventType::kMmap;
  }

  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const Event& event);

}  // namespace kondo

#endif  // KONDO_AUDIT_EVENT_H_
