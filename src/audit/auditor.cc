#include "audit/auditor.h"

namespace kondo {

StatusOr<AuditReport> RunAudited(
    const std::string& path, int64_t pid,
    const std::function<Status(TracedFile&)>& body) {
  return RunAudited(path, pid, body, AuditPersistFn());
}

StatusOr<AuditReport> RunAudited(
    const std::string& path, int64_t pid,
    const std::function<Status(TracedFile&)>& body,
    const AuditPersistFn& persist) {
  EventLog log;
  constexpr int64_t kFileId = 1;
  KONDO_ASSIGN_OR_RETURN(TracedFile file,
                         TracedFile::Open(path, pid, kFileId, &log));
  KONDO_RETURN_IF_ERROR(body(file));
  file.Close();

  if (persist) {
    KONDO_RETURN_IF_ERROR(persist(log));
  }

  AuditReport report;
  report.accessed_ranges = log.AccessedRanges(kFileId);
  OffsetMapper mapper(&file.reader().layout(), file.reader().payload_offset());
  report.accessed_indices = mapper.IndicesForRanges(report.accessed_ranges);
  report.num_events = log.NumEvents();
  report.saw_writes = log.HasWrites(kFileId);
  return report;
}

}  // namespace kondo
