#include "audit/auditor.h"

#include <utility>

namespace kondo {
namespace {

constexpr int64_t kFileId = 1;

/// Distills the recorded events into the per-run report.
AuditReport DistillReport(const EventLog& log, const TracedFile& file) {
  AuditReport report;
  report.accessed_ranges = log.AccessedRanges(kFileId);
  OffsetMapper mapper(&file.reader().layout(), file.reader().payload_offset());
  report.accessed_indices = mapper.IndicesForRanges(report.accessed_ranges);
  report.num_events = log.NumEvents();
  report.saw_writes = log.HasWrites(kFileId);
  return report;
}

}  // namespace

StatusOr<AuditReport> RunAudited(
    const std::string& path, int64_t pid,
    const std::function<Status(TracedFile&)>& body) {
  return RunAudited(path, pid, body, AuditPersistFn());
}

StatusOr<AuditReport> RunAudited(
    const std::string& path, int64_t pid,
    const std::function<Status(TracedFile&)>& body,
    const AuditPersistFn& persist) {
  EventLog log;
  KONDO_ASSIGN_OR_RETURN(TracedFile file,
                         TracedFile::Open(path, pid, kFileId, &log));
  KONDO_RETURN_IF_ERROR(body(file));
  file.Close();

  if (persist) {
    KONDO_RETURN_IF_ERROR(persist(log));
  }

  return DistillReport(log, file);
}

StatusOr<AuditReport> RunAuditedCapture(
    const std::string& path, int64_t pid,
    const std::function<Status(TracedFile&)>& body, EventLog* log_out) {
  EventLog log;
  KONDO_ASSIGN_OR_RETURN(TracedFile file,
                         TracedFile::Open(path, pid, kFileId, &log));
  KONDO_RETURN_IF_ERROR(body(file));
  file.Close();

  AuditReport report = DistillReport(log, file);
  if (log_out != nullptr) {
    *log_out = std::move(log);
  }
  return report;
}

}  // namespace kondo
