#include "audit/event_log.h"

namespace kondo {

const IntervalSet EventLog::kEmptyRanges;

int64_t EventLog::Record(const Event& event) {
  const int64_t seq = static_cast<int64_t>(events_.size());
  events_.push_back(event);
  if (event.type == EventType::kWrite) {
    file_has_writes_[event.id.file_id] = true;
  }
  if (event.IsDataAccess() && event.size > 0) {
    if (!(event.id == cached_id_)) {
      cached_id_ = event.id;
      cached_ranges_ = &file_ranges_[event.id.file_id];
      cached_index_ = &process_indexes_.try_emplace(event.id).first->second;
    }
    const Interval range{event.offset, event.offset + event.size};
    cached_ranges_->Add(range);
    cached_index_->Insert(range, seq);
  }
  return seq;
}

const IntervalSet& EventLog::AccessedRanges(int64_t file_id) const {
  auto it = file_ranges_.find(file_id);
  return it == file_ranges_.end() ? kEmptyRanges : it->second;
}

IntervalSet EventLog::AccessedRangesForProcess(int64_t pid,
                                               int64_t file_id) const {
  IntervalSet ranges;
  const IntervalBTree* index = ProcessIndex(pid, file_id);
  if (index != nullptr) {
    index->VisitOverlaps(INT64_MIN / 2, INT64_MAX / 2,
                         [&ranges](const IntervalBTree::Entry& entry) {
                           ranges.Add(entry.interval);
                         });
  }
  return ranges;
}

const IntervalBTree* EventLog::ProcessIndex(int64_t pid,
                                            int64_t file_id) const {
  auto it = process_indexes_.find(EventId{pid, file_id});
  return it == process_indexes_.end() ? nullptr : &it->second;
}

bool EventLog::HasWrites(int64_t file_id) const {
  auto it = file_has_writes_.find(file_id);
  return it != file_has_writes_.end() && it->second;
}

std::vector<Event> EventLog::LookupProcessRange(int64_t pid, int64_t file_id,
                                                int64_t begin,
                                                int64_t end) const {
  std::vector<Event> result;
  const IntervalBTree* index = ProcessIndex(pid, file_id);
  if (index != nullptr) {
    index->VisitOverlaps(begin, end,
                         [this, &result](const IntervalBTree::Entry& entry) {
                           result.push_back(
                               events_[static_cast<size_t>(entry.payload)]);
                         });
  }
  return result;
}

void EventLog::Clear() {
  events_.clear();
  file_ranges_.clear();
  process_indexes_.clear();
  file_has_writes_.clear();
  cached_id_ = EventId{-1, -1};
  cached_ranges_ = nullptr;
  cached_index_ = nullptr;
}

}  // namespace kondo
