#include "audit/interval_btree.h"

#include <algorithm>

#include "common/logging.h"

namespace kondo {

IntervalBTree::IntervalBTree(int min_degree) : min_degree_(min_degree) {
  KONDO_CHECK_GE(min_degree_, 2);
}

void IntervalBTree::Insert(const Interval& interval, int64_t payload) {
  const Entry entry{interval, payload};
  if (root_ == nullptr) {
    root_ = std::make_unique<Node>();
    root_->entries.reserve(static_cast<size_t>(2 * min_degree_ - 1));
  }
  if (static_cast<int>(root_->entries.size()) == 2 * min_degree_ - 1) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    SplitChild(root_.get(), 0);
  }
  InsertNonFull(root_.get(), entry);
  ++size_;
}

void IntervalBTree::SplitChild(Node* parent, size_t child_index) {
  Node* child = parent->children[child_index].get();
  const int t = min_degree_;
  auto right = std::make_unique<Node>();
  right->leaf = child->leaf;
  right->entries.reserve(static_cast<size_t>(2 * t - 1));

  // Move the upper t-1 entries (and t children) to the new right node;
  // the median entry moves up into the parent.
  right->entries.assign(child->entries.begin() + t, child->entries.end());
  Entry median = child->entries[t - 1];
  child->entries.resize(t - 1);
  if (!child->leaf) {
    for (int i = t; i < 2 * t; ++i) {
      right->children.push_back(std::move(child->children[i]));
    }
    child->children.resize(t);
  }
  child->max_end = RecomputeMaxEnd(child);
  right->max_end = RecomputeMaxEnd(right.get());

  // A freshly created root starts with max_end = INT64_MIN, so fold in the
  // children's subtree maxima, not just the promoted median.
  const int64_t children_max = std::max(child->max_end, right->max_end);
  parent->entries.insert(parent->entries.begin() + child_index, median);
  parent->children.insert(parent->children.begin() + child_index + 1,
                          std::move(right));
  parent->max_end = std::max(
      {parent->max_end, median.interval.end, children_max});
}

void IntervalBTree::InsertNonFull(Node* node, const Entry& entry) {
  node->max_end = std::max(node->max_end, entry.interval.end);
  if (node->leaf) {
    auto pos = std::upper_bound(node->entries.begin(), node->entries.end(),
                                entry, EntryLess);
    node->entries.insert(pos, entry);
    return;
  }
  size_t i = static_cast<size_t>(
      std::upper_bound(node->entries.begin(), node->entries.end(), entry,
                       EntryLess) -
      node->entries.begin());
  if (static_cast<int>(node->children[i]->entries.size()) ==
      2 * min_degree_ - 1) {
    SplitChild(node, i);
    if (EntryLess(node->entries[i], entry)) {
      ++i;
    }
  }
  InsertNonFull(node->children[i].get(), entry);
}

int64_t IntervalBTree::RecomputeMaxEnd(const Node* node) {
  int64_t max_end = INT64_MIN;
  for (const Entry& entry : node->entries) {
    max_end = std::max(max_end, entry.interval.end);
  }
  for (const auto& child : node->children) {
    max_end = std::max(max_end, child->max_end);
  }
  return max_end;
}

void IntervalBTree::VisitOverlaps(
    int64_t begin, int64_t end,
    const std::function<void(const Entry&)>& visitor) const {
  if (root_ != nullptr && begin < end) {
    VisitNode(root_.get(), begin, end, visitor);
  }
}

void IntervalBTree::VisitNode(
    const Node* node, int64_t begin, int64_t end,
    const std::function<void(const Entry&)>& visitor) const {
  if (node->max_end <= begin) {
    return;  // No interval in this subtree reaches past `begin`.
  }
  const size_t n = node->entries.size();
  for (size_t i = 0; i <= n; ++i) {
    if (!node->leaf) {
      VisitNode(node->children[i].get(), begin, end, visitor);
    }
    if (i == n) {
      break;
    }
    const Interval& iv = node->entries[i].interval;
    if (iv.begin >= end) {
      // Entries (and subtrees) to the right all start at or after `end`.
      break;
    }
    if (iv.end > begin) {
      visitor(node->entries[i]);
    }
  }
}

std::vector<IntervalBTree::Entry> IntervalBTree::QueryOverlaps(
    int64_t begin, int64_t end) const {
  std::vector<Entry> result;
  VisitOverlaps(begin, end,
                [&result](const Entry& entry) { result.push_back(entry); });
  return result;
}

bool IntervalBTree::AnyOverlap(int64_t begin, int64_t end) const {
  bool found = false;
  VisitOverlaps(begin, end, [&found](const Entry&) { found = true; });
  return found;
}

int IntervalBTree::Height() const {
  int height = 0;
  const Node* node = root_.get();
  while (node != nullptr) {
    ++height;
    node = node->leaf ? nullptr : node->children[0].get();
  }
  return height;
}

int IntervalBTree::LeafDepth(const Node* node) const {
  int depth = 0;
  while (!node->leaf) {
    ++depth;
    node = node->children[0].get();
  }
  return depth;
}

void IntervalBTree::CheckInvariants() const {
  if (root_ == nullptr) {
    KONDO_CHECK_EQ(size_, 0);
    return;
  }
  CheckNode(root_.get(), /*is_root=*/true, 0, LeafDepth(root_.get()));
}

void IntervalBTree::CheckNode(const Node* node, bool is_root, int depth,
                              int leaf_depth) const {
  const int t = min_degree_;
  const int n = static_cast<int>(node->entries.size());
  KONDO_CHECK_LE(n, 2 * t - 1);
  if (!is_root) {
    KONDO_CHECK_GE(n, t - 1);
  }
  for (int i = 1; i < n; ++i) {
    KONDO_CHECK(!EntryLess(node->entries[i], node->entries[i - 1]));
  }
  KONDO_CHECK_EQ(node->max_end, RecomputeMaxEnd(node));
  if (node->leaf) {
    KONDO_CHECK_EQ(depth, leaf_depth);
    KONDO_CHECK(node->children.empty());
    return;
  }
  KONDO_CHECK_EQ(static_cast<int>(node->children.size()), n + 1);
  for (int i = 0; i <= n; ++i) {
    const Node* child = node->children[i].get();
    // All entries in child i are <= entry i and >= entry i-1.
    for (const Entry& e : child->entries) {
      if (i < n) {
        KONDO_CHECK(!EntryLess(node->entries[i], e));
      }
      if (i > 0) {
        KONDO_CHECK(!EntryLess(e, node->entries[i - 1]));
      }
    }
    CheckNode(child, /*is_root=*/false, depth + 1, leaf_depth);
  }
}

}  // namespace kondo
