#ifndef KONDO_AUDIT_AUDITOR_H_
#define KONDO_AUDIT_AUDITOR_H_

#include <cstdint>
#include <functional>
#include <string>

#include "array/index_set.h"
#include "audit/event_log.h"
#include "audit/offset_mapper.h"
#include "audit/traced_file.h"
#include "common/statusor.h"

namespace kondo {

/// Summary of one audited execution: the fine-grained lineage the paper's
/// auditing system `AS` produces for a single run.
struct AuditReport {
  /// Merged accessed byte ranges of the data file.
  IntervalSet accessed_ranges;
  /// The index subset `I_v` recovered from the byte ranges via the file's
  /// metadata (Definition 2's debloat-test output).
  IndexSet accessed_indices;
  /// Raw events recorded.
  int64_t num_events = 0;
  /// True when a write to the data file was observed (the data array is
  /// expected to be read-only; Section III).
  bool saw_writes = false;
};

/// Persists a finished run's event log to a durable store. The audit layer
/// is agnostic to the on-disk format; factories live in
/// src/provenance/persist.h (`MakeKel1Persister`, `MakeKel2Persister`).
///
/// Single-writer contract: persisters are stateful writers over one store
/// and are NOT safe to invoke concurrently — two interleaved calls can tear
/// blocks or drop runs. Callers running audited tests in parallel must
/// funnel persistence through one thread: the campaign executor does this
/// via `ResultCollector` (src/exec/result_collector.h), which persists
/// consumed runs in candidate order and rejects concurrent use with
/// kFailedPrecondition. For ad-hoc concurrent callers,
/// `MakeSerializedPersister` (src/provenance/persist.h) wraps any persister
/// with a mutex so racing RunAudited calls serialize instead of corrupting
/// the store.
using AuditPersistFn = std::function<Status(const EventLog&)>;

/// Runs one audited execution of an application body against a KDF data
/// file: opens the file through the interposition shim, hands the shim to
/// `body`, and distills the recorded events into an AuditReport.
///
/// `body` receives the traced file and performs whatever element reads the
/// application under test performs.
StatusOr<AuditReport> RunAudited(
    const std::string& path, int64_t pid,
    const std::function<Status(TracedFile&)>& body);

/// As above, but additionally hands the completed event log to `persist`
/// before distilling the report — the hook that makes KEL1/KEL2 stores
/// durable backends of the auditor. A persist failure fails the audit.
StatusOr<AuditReport> RunAudited(
    const std::string& path, int64_t pid,
    const std::function<Status(TracedFile&)>& body,
    const AuditPersistFn& persist);

/// As `RunAudited` without a persister, but additionally moves the run's
/// raw event log into `*log_out` (when non-null) so the caller can defer
/// persistence — e.g. the parallel campaign executor, whose single-writer
/// ResultCollector channel persists consumed runs in candidate order.
StatusOr<AuditReport> RunAuditedCapture(
    const std::string& path, int64_t pid,
    const std::function<Status(TracedFile&)>& body, EventLog* log_out);

}  // namespace kondo

#endif  // KONDO_AUDIT_AUDITOR_H_
