#ifndef KONDO_AUDIT_TRACED_FILE_H_
#define KONDO_AUDIT_TRACED_FILE_H_

#include <cstdint>
#include <string>

#include "array/kdf_file.h"
#include "audit/event_log.h"
#include "common/statusor.h"

namespace kondo {

/// Function-interposition shim over a KDF data file: every read issued
/// through a TracedFile is forwarded to the underlying file descriptor *and*
/// recorded as an `<id, c, l, sz>` event in the attached EventLog — the role
/// ptrace/Sciunit interposition plays in the paper's prototype.
///
/// Passing a null EventLog disables auditing entirely (the shim becomes a
/// thin pass-through), which is how the §V-D6 audit-overhead bench measures
/// raw execution time.
class TracedFile {
 public:
  /// Opens `path`, assigns it `file_id`, and records an open event for
  /// `pid`. `log` may be null for un-audited execution.
  static StatusOr<TracedFile> Open(const std::string& path, int64_t pid,
                                   int64_t file_id, EventLog* log);

  TracedFile(TracedFile&&) noexcept = default;
  TracedFile& operator=(TracedFile&&) noexcept = default;

  /// Records a close event. Idempotent; also invoked by the destructor.
  void Close();
  ~TracedFile();

  const KdfReader& reader() const { return reader_; }
  const Shape& shape() const { return reader_.shape(); }
  int64_t pid() const { return pid_; }
  int64_t file_id() const { return file_id_; }

  /// Reads the element at `index`, recording a pread event covering its
  /// byte range.
  StatusOr<double> ReadElement(const Index& index);

  /// Reads `size` raw bytes at absolute `offset`, recording a pread event.
  StatusOr<int64_t> ReadRaw(int64_t offset, int64_t size, char* buf);

  /// Records an mmap-style access of [offset, offset+size) without copying
  /// data (models applications that fault pages in via mappings).
  void TouchMmap(int64_t offset, int64_t size);

  /// Changes the process identity used for subsequent events (models a
  /// fork()ed child inheriting the descriptor).
  void SetPid(int64_t pid) { pid_ = pid; }

  /// Number of data-access calls issued through this shim.
  int64_t access_count() const { return access_count_; }

 private:
  TracedFile(KdfReader reader, int64_t pid, int64_t file_id, EventLog* log)
      : reader_(std::move(reader)), pid_(pid), file_id_(file_id), log_(log) {}

  void Log(EventType type, int64_t offset, int64_t size);

  KdfReader reader_;
  int64_t pid_;
  int64_t file_id_;
  EventLog* log_;  // Not owned; may be null (un-audited mode).
  bool closed_ = false;
  int64_t access_count_ = 0;
};

}  // namespace kondo

#endif  // KONDO_AUDIT_TRACED_FILE_H_
