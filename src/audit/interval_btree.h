#ifndef KONDO_AUDIT_INTERVAL_BTREE_H_
#define KONDO_AUDIT_INTERVAL_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/interval_set.h"

namespace kondo {

/// An interval B-tree: a disk-friendly ordered index over half-open byte
/// ranges with an interval-max augmentation for fast overlap queries.
///
/// The paper (Section IV-C): "Generally, events are large in number from a
/// data-intensive process. Kondo uses interval-based B-trees to index events
/// and performs per-process lookup." Entries are ordered by (begin, end);
/// every node carries the maximum `end` of its subtree so overlap queries
/// prune whole subtrees.
class IntervalBTree {
 public:
  /// An indexed entry: the interval plus an opaque payload (the event
  /// sequence number in the EventLog).
  struct Entry {
    Interval interval;
    int64_t payload = 0;
  };

  /// `min_degree` is the classic B-tree t parameter: nodes hold between
  /// t-1 and 2t-1 entries (root exempt from the lower bound).
  explicit IntervalBTree(int min_degree = 16);

  /// Inserts an entry. Duplicate intervals are allowed.
  void Insert(const Interval& interval, int64_t payload);

  /// Invokes `visitor` for every entry overlapping [begin, end). Order of
  /// visitation is ascending by (begin, end).
  void VisitOverlaps(int64_t begin, int64_t end,
                     const std::function<void(const Entry&)>& visitor) const;

  /// Collects the entries overlapping [begin, end).
  std::vector<Entry> QueryOverlaps(int64_t begin, int64_t end) const;

  /// True when some entry overlaps [begin, end).
  bool AnyOverlap(int64_t begin, int64_t end) const;

  /// Number of entries.
  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Tree height (0 for an empty tree; 1 for a root-only tree).
  int Height() const;

  /// Validates B-tree structural invariants (ordering, fill factors,
  /// max-end augmentation). Used by tests; aborts on violation.
  void CheckInvariants() const;

 private:
  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;
    std::vector<std::unique_ptr<Node>> children;
    int64_t max_end = INT64_MIN;
  };

  static bool EntryLess(const Entry& a, const Entry& b) {
    if (a.interval.begin != b.interval.begin) {
      return a.interval.begin < b.interval.begin;
    }
    return a.interval.end < b.interval.end;
  }

  void SplitChild(Node* parent, size_t child_index);
  void InsertNonFull(Node* node, const Entry& entry);
  static int64_t RecomputeMaxEnd(const Node* node);
  void VisitNode(const Node* node, int64_t begin, int64_t end,
                 const std::function<void(const Entry&)>& visitor) const;
  void CheckNode(const Node* node, bool is_root, int depth,
                 int leaf_depth) const;
  int LeafDepth(const Node* node) const;

  int min_degree_;
  std::unique_ptr<Node> root_;
  int64_t size_ = 0;
};

}  // namespace kondo

#endif  // KONDO_AUDIT_INTERVAL_BTREE_H_
