#include "audit/offset_mapper.h"

#include <vector>

namespace kondo {

IndexSet OffsetMapper::IndicesForRanges(const IntervalSet& ranges) const {
  IndexSet result(layout_->shape());
  std::vector<Index> scratch;
  for (const Interval& range : ranges.ToIntervals()) {
    scratch.clear();
    layout_->ElementsInByteRange(range.begin - payload_offset_,
                                 range.end - payload_offset_, &scratch);
    for (const Index& index : scratch) {
      result.Insert(index);
    }
  }
  return result;
}

IntervalSet OffsetMapper::RangesForIndices(const IndexSet& indices) const {
  IntervalSet ranges;
  indices.ForEach([this, &ranges](const Index& index) {
    ranges.Add(RangeForIndex(index));
  });
  return ranges;
}

Interval OffsetMapper::RangeForIndex(const Index& index) const {
  Interval range = layout_->ByteRangeOf(index);
  range.begin += payload_offset_;
  range.end += payload_offset_;
  return range;
}

}  // namespace kondo
