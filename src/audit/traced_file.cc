#include "audit/traced_file.h"

namespace kondo {

StatusOr<TracedFile> TracedFile::Open(const std::string& path, int64_t pid,
                                      int64_t file_id, EventLog* log) {
  KONDO_ASSIGN_OR_RETURN(KdfReader reader, KdfReader::Open(path));
  TracedFile file(std::move(reader), pid, file_id, log);
  file.Log(EventType::kOpen, 0, 0);
  return file;
}

TracedFile::~TracedFile() {
  // A moved-from TracedFile has a closed reader fd (-1); logging close for
  // it would be misleading, so guard on the flag only for live instances.
  if (!closed_ && reader_.fd() >= 0) {
    Close();
  }
}

void TracedFile::Close() {
  if (closed_) {
    return;
  }
  closed_ = true;
  Log(EventType::kClose, 0, 0);
}

StatusOr<double> TracedFile::ReadElement(const Index& index) {
  if (!shape().Contains(index)) {
    return OutOfRangeError("index out of bounds");
  }
  ++access_count_;
  const int64_t elem = reader_.layout().element_size();
  const int64_t offset =
      reader_.payload_offset() + reader_.layout().ByteOffsetOf(index);
  Log(EventType::kPread, offset, elem);
  return reader_.ReadElement(index);
}

StatusOr<int64_t> TracedFile::ReadRaw(int64_t offset, int64_t size,
                                      char* buf) {
  ++access_count_;
  Log(EventType::kPread, offset, size);
  return reader_.ReadRaw(offset, size, buf);
}

void TracedFile::TouchMmap(int64_t offset, int64_t size) {
  ++access_count_;
  Log(EventType::kMmap, offset, size);
}

void TracedFile::Log(EventType type, int64_t offset, int64_t size) {
  if (log_ == nullptr) {
    return;
  }
  Event event;
  event.id = EventId{pid_, file_id_};
  event.type = type;
  event.offset = offset;
  event.size = size;
  log_->Record(event);
}

}  // namespace kondo
