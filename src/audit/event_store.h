#ifndef KONDO_AUDIT_EVENT_STORE_H_
#define KONDO_AUDIT_EVENT_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "audit/event.h"
#include "audit/event_log.h"
#include "common/env.h"
#include "common/status.h"
#include "common/statusor.h"

namespace kondo {

/// Durable storage for audited events — the paper's interposition layer
/// "records system call arguments in a data store" so the re-execution side
/// can map accesses back to file offsets. The KEL ("Kondo Event Log")
/// format is an append-friendly stream:
///
///   magic "KEL1" | u32 reserved | record*
///   record: i64 pid | i64 file_id | u8 type | 7 pad bytes
///           | i64 offset | i64 size                        (40 bytes)
///
/// The record count is implied by the file length, so a crashed writer
/// loses at most one partial trailing record.
///
/// Durability: records accumulate in `path + ".tmp"`; Close() (also run by
/// the destructor) flushes, fsyncs, and renames the store into place, so a
/// reader observes either no store or a complete one (see
/// docs/ROBUSTNESS.md). Device paths such as /dev/full are written in
/// place.
class EventStoreWriter {
 public:
  /// Creates (truncates) `path` and writes the header. `env == nullptr`
  /// selects the real filesystem; tests inject a FaultInjectingEnv.
  static StatusOr<EventStoreWriter> Create(const std::string& path,
                                           Env* env = nullptr);

  EventStoreWriter(EventStoreWriter&& other) noexcept;
  EventStoreWriter& operator=(EventStoreWriter&& other) noexcept;
  ~EventStoreWriter();

  /// Appends one event record.
  Status Append(const Event& event);

  /// Appends every event of `log` in arrival order.
  Status AppendAll(const EventLog& log);

  /// Commits the store (fsync + atomic rename); further Appends fail.
  /// Idempotent.
  Status Close();

  int64_t events_written() const { return events_written_; }

  /// Bytes appended to the store so far (header included). Valid after
  /// Close() too, so callers can report artifact sizes without stat().
  int64_t bytes_written() const { return file_.bytes_appended(); }

 private:
  explicit EventStoreWriter(AtomicFile file) : file_(std::move(file)) {}

  AtomicFile file_;
  int64_t events_written_ = 0;
};

/// Reads a KEL file back. A trailing partial record (torn write) is
/// tolerated and dropped.
StatusOr<std::vector<Event>> ReadEventStore(const std::string& path);

/// Convenience: reads `path` and replays every event into `log`.
Status ReplayEventStore(const std::string& path, EventLog* log);

}  // namespace kondo

#endif  // KONDO_AUDIT_EVENT_STORE_H_
