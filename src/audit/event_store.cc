#include "audit/event_store.h"

#include <cstdio>
#include <cstring>

#include "common/strings.h"

namespace kondo {
namespace {

constexpr char kMagic[4] = {'K', 'E', 'L', '1'};
constexpr size_t kHeaderBytes = 8;
constexpr size_t kRecordBytes = 40;

void EncodeRecord(const Event& event, char* buf) {
  std::memcpy(buf, &event.id.pid, 8);
  std::memcpy(buf + 8, &event.id.file_id, 8);
  buf[16] = static_cast<char>(event.type);
  std::memset(buf + 17, 0, 7);
  std::memcpy(buf + 24, &event.offset, 8);
  std::memcpy(buf + 32, &event.size, 8);
}

Event DecodeRecord(const char* buf) {
  Event event;
  std::memcpy(&event.id.pid, buf, 8);
  std::memcpy(&event.id.file_id, buf + 8, 8);
  event.type = static_cast<EventType>(buf[16]);
  std::memcpy(&event.offset, buf + 24, 8);
  std::memcpy(&event.size, buf + 32, 8);
  return event;
}

}  // namespace

StatusOr<EventStoreWriter> EventStoreWriter::Create(const std::string& path,
                                                    Env* env) {
  StatusOr<AtomicFile> file = AtomicFile::Create(path, env);
  if (!file.ok()) {
    return Status(file.status().code(),
                  StrCat("cannot create event store: ", path, ": ",
                         file.status().message()));
  }
  char header[kHeaderBytes] = {};
  std::memcpy(header, kMagic, 4);
  const Status written = file->Append(header, kHeaderBytes);
  if (!written.ok()) {
    return Status(written.code(), StrCat("event store header write: ",
                                         written.message()));
  }
  return EventStoreWriter(*std::move(file));
}

EventStoreWriter::EventStoreWriter(EventStoreWriter&& other) noexcept =
    default;

EventStoreWriter& EventStoreWriter::operator=(
    EventStoreWriter&& other) noexcept {
  if (this != &other) {
    // noexcept move-assign cannot propagate the status; callers that need
    // the tail durable call Close() explicitly.
    // kondo-lint: allow(R3) move-assign swallows the stale writer's status
    (void)Close();
    file_ = std::move(other.file_);
    events_written_ = other.events_written_;
  }
  return *this;
}

EventStoreWriter::~EventStoreWriter() {
  // Destructors cannot propagate the status; the uncommitted tmp store is
  // discarded if the commit fails, so no torn artifact is published.
  // kondo-lint: allow(R3) destructor swallows the close status by design
  (void)Close();
}

Status EventStoreWriter::Append(const Event& event) {
  if (!file_.open()) {
    return FailedPreconditionError("event store already closed: " +
                                   file_.path());
  }
  char buf[kRecordBytes];
  EncodeRecord(event, buf);
  const Status written = file_.Append(buf, kRecordBytes);
  if (!written.ok()) {
    return Status(written.code(),
                  StrCat("event store append failed (record ",
                         events_written_, "): ", written.message()));
  }
  ++events_written_;
  return OkStatus();
}

Status EventStoreWriter::AppendAll(const EventLog& log) {
  for (const Event& event : log.events()) {
    KONDO_RETURN_IF_ERROR(Append(event));
  }
  return OkStatus();
}

Status EventStoreWriter::Close() {
  if (!file_.open()) {
    return OkStatus();
  }
  const Status committed = file_.Commit();
  if (!committed.ok()) {
    return Status(committed.code(), StrCat("event store close failed: ",
                                           file_.path(), ": ",
                                           committed.message()));
  }
  return OkStatus();
}

StatusOr<std::vector<Event>> ReadEventStore(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return NotFoundError("cannot open event store: " + path);
  }
  char header[kHeaderBytes];
  if (std::fread(header, 1, kHeaderBytes, file) != kHeaderBytes ||
      std::memcmp(header, kMagic, 4) != 0) {
    std::fclose(file);
    return DataLossError("not a KEL event store: " + path);
  }
  std::vector<Event> events;
  char buf[kRecordBytes];
  while (true) {
    const size_t n = std::fread(buf, 1, kRecordBytes, file);
    if (n < kRecordBytes) {
      break;  // EOF, possibly dropping a torn trailing record.
    }
    events.push_back(DecodeRecord(buf));
  }
  std::fclose(file);
  return events;
}

Status ReplayEventStore(const std::string& path, EventLog* log) {
  KONDO_ASSIGN_OR_RETURN(std::vector<Event> events, ReadEventStore(path));
  for (const Event& event : events) {
    log->Record(event);
  }
  return OkStatus();
}

}  // namespace kondo
