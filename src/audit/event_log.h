#ifndef KONDO_AUDIT_EVENT_LOG_H_
#define KONDO_AUDIT_EVENT_LOG_H_

#include <cstdint>
#include <map>
#include <vector>

#include "audit/event.h"
#include "audit/interval_btree.h"
#include "common/interval_set.h"

namespace kondo {

/// Accumulates audited I/O events and maintains the derived access state:
///
///  * per-(process, file) interval B-trees indexing every data-access event
///    (Section IV-C: "interval-based B-trees ... per-process lookup"), and
///  * per-file merged offset ranges across processes (overlapping events are
///    coalesced, reproducing the paper's worked example where
///    e1(P1,R,0,110), e2(P2,R,70,30), e3(P1,R,130,20), e4(P1,R,90,30)
///    yield accessed offsets (0,120) and (130,150)).
class EventLog {
 public:
  EventLog() = default;

  /// Appends an event; data accesses update the indexes. Returns the event's
  /// sequence number.
  int64_t Record(const Event& event);

  /// All events in arrival order.
  const std::vector<Event>& events() const { return events_; }
  int64_t NumEvents() const { return static_cast<int64_t>(events_.size()); }

  /// Merged accessed byte ranges of `file_id` across all processes.
  const IntervalSet& AccessedRanges(int64_t file_id) const;

  /// Merged accessed byte ranges of `file_id` by a single process.
  IntervalSet AccessedRangesForProcess(int64_t pid, int64_t file_id) const;

  /// The per-process interval index (nullptr when no accesses recorded).
  const IntervalBTree* ProcessIndex(int64_t pid, int64_t file_id) const;

  /// True when any write event touched `file_id` — the paper records the
  /// event type `c` "to ensure that no write event took place".
  bool HasWrites(int64_t file_id) const;

  /// Events whose ranges overlap [begin,end) on `file_id` for `pid`.
  std::vector<Event> LookupProcessRange(int64_t pid, int64_t file_id,
                                        int64_t begin, int64_t end) const;

  /// Drops all recorded state.
  void Clear();

 private:
  std::vector<Event> events_;
  std::map<int64_t, IntervalSet> file_ranges_;
  std::map<EventId, IntervalBTree> process_indexes_;
  std::map<int64_t, bool> file_has_writes_;

  // One-entry cache: consecutive events almost always share (pid, file),
  // so Record() can skip both map lookups on the hot path.
  EventId cached_id_{-1, -1};
  IntervalSet* cached_ranges_ = nullptr;
  IntervalBTree* cached_index_ = nullptr;

  static const IntervalSet kEmptyRanges;
};

}  // namespace kondo

#endif  // KONDO_AUDIT_EVENT_LOG_H_
