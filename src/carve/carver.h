#ifndef KONDO_CARVE_CARVER_H_
#define KONDO_CARVE_CARVER_H_

#include <map>
#include <vector>

#include "array/index_set.h"
#include "carve/carve_config.h"
#include "carve/carved_subset.h"
#include "exec/campaign_executor.h"
#include "geom/hull.h"

namespace kondo {

/// Per-stage statistics of one carving run (used by the Fig. 6 bench to show
/// the merge algorithm's progression against the single-hull baseline).
struct CarveStats {
  int num_cells = 0;         // Non-empty cells after SPLIT.
  int initial_hulls = 0;     // Hulls before merging (== num_cells).
  int merge_operations = 0;  // Number of pairwise merges performed.
  int final_hulls = 0;       // |H| at termination.
};

/// The bottom-up convex-hull carving algorithm (Algorithm 2):
///
///   1. SPLIT the offset space into fixed-size cells and drop empty ones,
///   2. compute a convex hull per cell,
///   3. repeatedly merge any two hulls that are CLOSE — centre distance or
///      boundary distance under the configured thresholds — by taking the
///      hull of the union of their vertices (equivalent to the hull of all
///      underlying points), until no pair is close.
///
/// The merge is order-free (any direction), which is what makes the
/// procedure output-sensitive compared to the classical divide-and-conquer
/// merge the paper cites.
class Carver {
 public:
  explicit Carver(CarveConfig config) : config_(config) {}

  const CarveConfig& config() const { return config_; }

  /// Carves `points` (the fuzz-discovered index subset) into hulls.
  /// `stats` (optional) receives per-stage counters.
  CarvedSubset Carve(const IndexSet& points, CarveStats* stats = nullptr) const;

  /// As above, with the CLOSE-pair scan of each merge round parallelised
  /// over `executor`'s workers: every row i searches its own j > i (taking
  /// the smallest), rows already beaten by a smaller matched row are
  /// pruned via an atomic bound, and the round merges the lexicographically
  /// smallest matched pair — exactly the pair the serial scan finds. The
  /// merge sequence, and therefore the carved output and stats, are
  /// bit-identical to the serial overload at every jobs setting. Must not
  /// be called from inside one of `executor`'s own pool tasks.
  CarvedSubset Carve(const IndexSet& points, CampaignExecutor& executor,
                     CarveStats* stats = nullptr) const;

  /// The CLOSE predicate of Algorithm 2.
  bool Close(const Hull& a, const Hull& b) const;

  /// Materialises `carved`'s index subset with hulls rasterised in parallel
  /// over `executor`'s workers. Hulls are independent (each scans only its
  /// own bounding box into a private IndexSet) and the per-hull sets are
  /// unioned in hull order on the calling thread, so the result is
  /// bit-identical to `carved.Rasterize()` at every jobs setting.
  static IndexSet Rasterize(const CarvedSubset& carved,
                            CampaignExecutor& executor);

 private:
  CarvedSubset CarveImpl(const IndexSet& points, CampaignExecutor* executor,
                         CarveStats* stats) const;

  CarveConfig config_;
};

/// The "Simple Convex" (SC) baseline of Section V-C: Kondo's fuzzer combined
/// with a single regular convex-hull computation — no cells, no merging.
CarvedSubset SimpleConvexCarve(const IndexSet& points);

}  // namespace kondo

#endif  // KONDO_CARVE_CARVER_H_
