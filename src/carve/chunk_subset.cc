#include "carve/chunk_subset.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace kondo {
namespace {

/// Linear chunk id of the chunk containing `index`.
int64_t ChunkIdOf(const Index& index, const ChunkedLayout& layout) {
  int64_t chunk_linear = 0;
  for (int d = 0; d < layout.shape().rank(); ++d) {
    chunk_linear = chunk_linear * layout.ChunkGridDim(d) +
                   index[d] / layout.chunk_dims()[d];
  }
  return chunk_linear;
}

}  // namespace

std::vector<int64_t> TouchedChunks(const IndexSet& subset,
                                   const ChunkedLayout& layout) {
  KONDO_CHECK(subset.shape() == layout.shape());
  std::set<int64_t> chunks;
  subset.ForEach([&chunks, &layout](const Index& index) {
    chunks.insert(ChunkIdOf(index, layout));
  });
  return std::vector<int64_t>(chunks.begin(), chunks.end());
}

IndexSet ChunkAlignedSubset(const IndexSet& subset,
                            const ChunkedLayout& layout,
                            ChunkSubsetStats* stats) {
  const Shape& shape = layout.shape();
  const int rank = shape.rank();
  const std::vector<int64_t> touched = TouchedChunks(subset, layout);

  IndexSet aligned(shape);
  for (int64_t chunk_linear : touched) {
    // Decode the chunk coordinate (row-major over the grid).
    Index chunk_coord(rank);
    int64_t rest = chunk_linear;
    for (int d = rank - 1; d >= 0; --d) {
      chunk_coord[d] = rest % layout.ChunkGridDim(d);
      rest /= layout.ChunkGridDim(d);
    }
    // Insert every in-bounds element of the chunk.
    std::vector<int64_t> lo(static_cast<size_t>(rank));
    std::vector<int64_t> hi(static_cast<size_t>(rank));
    for (int d = 0; d < rank; ++d) {
      lo[static_cast<size_t>(d)] = chunk_coord[d] * layout.chunk_dims()[d];
      hi[static_cast<size_t>(d)] =
          std::min(lo[static_cast<size_t>(d)] + layout.chunk_dims()[d],
                   shape.dim(d));
    }
    Index index(rank);
    std::vector<int64_t> cur = lo;
    while (true) {
      for (int d = 0; d < rank; ++d) {
        index[d] = cur[static_cast<size_t>(d)];
      }
      aligned.Insert(index);
      int d = rank - 1;
      while (d >= 0 &&
             ++cur[static_cast<size_t>(d)] >= hi[static_cast<size_t>(d)]) {
        cur[static_cast<size_t>(d)] = lo[static_cast<size_t>(d)];
        --d;
      }
      if (d < 0) {
        break;
      }
    }
  }

  if (stats != nullptr) {
    int64_t total_chunks = 1;
    for (int d = 0; d < rank; ++d) {
      total_chunks *= layout.ChunkGridDim(d);
    }
    stats->total_chunks = total_chunks;
    stats->retained_chunks = static_cast<int64_t>(touched.size());
    stats->subset_elements = static_cast<int64_t>(subset.size());
    stats->chunk_aligned_elements = static_cast<int64_t>(aligned.size());
  }
  return aligned;
}

int64_t ChunkSubsetPayloadBytes(int64_t retained_chunks,
                                const ChunkedLayout& layout) {
  int64_t chunk_elements = 1;
  for (int64_t c : layout.chunk_dims()) {
    chunk_elements *= c;
  }
  return retained_chunks * (chunk_elements * layout.element_size() + 8);
}

}  // namespace kondo
