#include "carve/carver.h"

#include <cstdint>

#include "common/logging.h"
#include "geom/vec.h"

namespace kondo {
namespace {

/// Cell coordinate of an index under SPLIT.
struct CellCoord {
  int64_t c[3] = {0, 0, 0};

  friend bool operator<(const CellCoord& a, const CellCoord& b) {
    for (int d = 0; d < 3; ++d) {
      if (a.c[d] != b.c[d]) {
        return a.c[d] < b.c[d];
      }
    }
    return false;
  }
};

}  // namespace

bool Carver::Close(const Hull& a, const Hull& b) const {
  const bool boundary_close =
      a.MinVertexDistance(b) <= config_.boundary_d_thresh;
  const bool center_close = a.CentroidDistance(b) <= config_.center_d_thresh;
  switch (config_.close_mode) {
    case CloseMode::kBoundaryOrCenter:
      return boundary_close || center_close;
    case CloseMode::kBoundaryAndCenter:
      return boundary_close && center_close;
  }
  return false;
}

CarvedSubset Carver::Carve(const IndexSet& points, CarveStats* stats) const {
  const Shape& shape = points.shape();
  const int rank = shape.rank();
  KONDO_CHECK(rank >= 1 && rank <= 3);

  // SPLIT: bucket points into fixed-size cells.
  std::map<CellCoord, std::vector<Vec3>> cells;
  points.ForEach([this, rank, &cells](const Index& index) {
    CellCoord coord;
    for (int d = 0; d < rank; ++d) {
      coord.c[d] = index[d] / config_.cell_size;
    }
    cells[coord].push_back(Vec3::FromIndex(index));
  });

  // One hull per non-empty cell.
  std::vector<Hull> hulls;
  hulls.reserve(cells.size());
  for (auto& [coord, cell_points] : cells) {
    hulls.push_back(Hull::Build(cell_points, rank));
  }

  if (stats != nullptr) {
    stats->num_cells = static_cast<int>(cells.size());
    stats->initial_hulls = static_cast<int>(hulls.size());
    stats->merge_operations = 0;
  }

  // Iterated pairwise merging until no two hulls are CLOSE. Each merge
  // strictly decreases the hull count, so at most initial_hulls - 1 merges
  // happen; the rounds bound is a config safety net.
  int rounds = 0;
  bool merged_any = true;
  while (merged_any && rounds++ < config_.max_merge_rounds) {
    merged_any = false;
    for (size_t i = 0; i < hulls.size() && !merged_any; ++i) {
      for (size_t j = i + 1; j < hulls.size() && !merged_any; ++j) {
        if (!Close(hulls[i], hulls[j])) {
          continue;
        }
        std::vector<Vec3> union_vertices = hulls[i].vertices();
        union_vertices.insert(union_vertices.end(),
                              hulls[j].vertices().begin(),
                              hulls[j].vertices().end());
        Hull merged = Hull::Build(union_vertices, rank);
        hulls.erase(hulls.begin() + static_cast<int64_t>(j));
        hulls[i] = std::move(merged);
        merged_any = true;
        if (stats != nullptr) {
          ++stats->merge_operations;
        }
      }
    }
  }

  if (stats != nullptr) {
    stats->final_hulls = static_cast<int>(hulls.size());
  }
  return CarvedSubset(shape, std::move(hulls));
}

IndexSet Carver::Rasterize(const CarvedSubset& carved,
                           CampaignExecutor& executor) {
  const std::vector<Hull>& hulls = carved.hulls();
  if (executor.jobs() <= 1 || hulls.size() <= 1) {
    return carved.Rasterize();
  }
  std::vector<IndexSet> per_hull = executor.Map<IndexSet>(
      static_cast<int64_t>(hulls.size()), [&carved, &hulls](int64_t i) {
        IndexSet points(carved.shape());
        hulls[static_cast<size_t>(i)].RasterizeInto(&points);
        return points;
      });
  IndexSet result(carved.shape());
  for (const IndexSet& points : per_hull) {
    result.Union(points);
  }
  return result;
}

CarvedSubset SimpleConvexCarve(const IndexSet& points) {
  const Shape& shape = points.shape();
  std::vector<Vec3> all_points;
  all_points.reserve(points.size());
  points.ForEach([&all_points](const Index& index) {
    all_points.push_back(Vec3::FromIndex(index));
  });
  std::vector<Hull> hulls;
  if (!all_points.empty()) {
    hulls.push_back(Hull::Build(all_points, shape.rank()));
  }
  return CarvedSubset(shape, std::move(hulls));
}

}  // namespace kondo
