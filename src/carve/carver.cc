#include "carve/carver.h"

#include <atomic>
#include <cstdint>
#include <utility>

#include "common/logging.h"
#include "geom/vec.h"

namespace kondo {
namespace {

/// Cell coordinate of an index under SPLIT.
struct CellCoord {
  int64_t c[3] = {0, 0, 0};

  friend bool operator<(const CellCoord& a, const CellCoord& b) {
    for (int d = 0; d < 3; ++d) {
      if (a.c[d] != b.c[d]) {
        return a.c[d] < b.c[d];
      }
    }
    return false;
  }
};

/// Below this many hulls a parallel scan's latch + atomic traffic costs
/// more than the O(n^2) CLOSE evaluations it spreads out.
constexpr int64_t kParallelScanMinHulls = 8;

struct ClosePair {
  int64_t i = -1;
  int64_t j = -1;
};

/// Lexicographically smallest CLOSE pair — smallest i, then smallest j —
/// or {-1, -1}. The parallel path gives each row i its own ascending scan
/// for the first matching j (rows are independent), prunes rows already
/// beaten by a smaller matched row through an atomic lower bound, and
/// reduces to the smallest matched row. The winning pair is a pure
/// function of the hulls, not of worker scheduling, so both paths return
/// the identical pair.
ClosePair FindFirstClosePair(const Carver& carver,
                             const std::vector<Hull>& hulls,
                             CampaignExecutor* executor) {
  const int64_t n = static_cast<int64_t>(hulls.size());
  if (executor == nullptr || executor->jobs() <= 1 ||
      n < kParallelScanMinHulls) {
    for (int64_t i = 0; i + 1 < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        if (carver.Close(hulls[static_cast<size_t>(i)],
                         hulls[static_cast<size_t>(j)])) {
          return {i, j};
        }
      }
    }
    return {};
  }

  std::atomic<int64_t> best{n};
  std::vector<int64_t> row_match(static_cast<size_t>(n), -1);
  executor->ParallelFor(n - 1, [&carver, &hulls, &best, &row_match,
                                n](int64_t i) {
    if (i >= best.load(std::memory_order_relaxed)) {
      return;  // A smaller row already matched; this row cannot win.
    }
    for (int64_t j = i + 1; j < n; ++j) {
      if (!carver.Close(hulls[static_cast<size_t>(i)],
                        hulls[static_cast<size_t>(j)])) {
        continue;
      }
      row_match[static_cast<size_t>(i)] = j;
      int64_t current = best.load(std::memory_order_relaxed);
      while (i < current &&
             !best.compare_exchange_weak(current, i,
                                         std::memory_order_relaxed)) {
      }
      break;
    }
  });
  const int64_t i = best.load(std::memory_order_relaxed);
  if (i >= n) {
    return {};
  }
  return {i, row_match[static_cast<size_t>(i)]};
}

}  // namespace

bool Carver::Close(const Hull& a, const Hull& b) const {
  const bool boundary_close =
      a.MinVertexDistance(b) <= config_.boundary_d_thresh;
  const bool center_close = a.CentroidDistance(b) <= config_.center_d_thresh;
  switch (config_.close_mode) {
    case CloseMode::kBoundaryOrCenter:
      return boundary_close || center_close;
    case CloseMode::kBoundaryAndCenter:
      return boundary_close && center_close;
  }
  return false;
}

CarvedSubset Carver::Carve(const IndexSet& points, CarveStats* stats) const {
  return CarveImpl(points, nullptr, stats);
}

CarvedSubset Carver::Carve(const IndexSet& points, CampaignExecutor& executor,
                           CarveStats* stats) const {
  return CarveImpl(points, &executor, stats);
}

CarvedSubset Carver::CarveImpl(const IndexSet& points,
                               CampaignExecutor* executor,
                               CarveStats* stats) const {
  const Shape& shape = points.shape();
  const int rank = shape.rank();
  KONDO_CHECK(rank >= 1 && rank <= 3);

  // SPLIT: bucket points into fixed-size cells.
  std::map<CellCoord, std::vector<Vec3>> cells;
  points.ForEach([this, rank, &cells](const Index& index) {
    CellCoord coord;
    for (int d = 0; d < rank; ++d) {
      coord.c[d] = index[d] / config_.cell_size;
    }
    cells[coord].push_back(Vec3::FromIndex(index));
  });

  // One hull per non-empty cell.
  std::vector<Hull> hulls;
  hulls.reserve(cells.size());
  for (auto& [coord, cell_points] : cells) {
    hulls.push_back(Hull::Build(cell_points, rank));
  }

  if (stats != nullptr) {
    stats->num_cells = static_cast<int>(cells.size());
    stats->initial_hulls = static_cast<int>(hulls.size());
    stats->merge_operations = 0;
  }

  // Iterated pairwise merging until no two hulls are CLOSE. Each merge
  // strictly decreases the hull count, so at most initial_hulls - 1 merges
  // happen; the rounds bound is a config safety net. Every round merges
  // the lexicographically smallest CLOSE pair, whichever scan found it.
  int rounds = 0;
  while (rounds++ < config_.max_merge_rounds) {
    const ClosePair pair = FindFirstClosePair(*this, hulls, executor);
    if (pair.i < 0) {
      break;
    }
    std::vector<Vec3> union_vertices =
        hulls[static_cast<size_t>(pair.i)].vertices();
    union_vertices.insert(
        union_vertices.end(),
        hulls[static_cast<size_t>(pair.j)].vertices().begin(),
        hulls[static_cast<size_t>(pair.j)].vertices().end());
    Hull merged = Hull::Build(union_vertices, rank);
    hulls.erase(hulls.begin() + pair.j);
    hulls[static_cast<size_t>(pair.i)] = std::move(merged);
    if (stats != nullptr) {
      ++stats->merge_operations;
    }
  }

  if (stats != nullptr) {
    stats->final_hulls = static_cast<int>(hulls.size());
  }
  return CarvedSubset(shape, std::move(hulls));
}

IndexSet Carver::Rasterize(const CarvedSubset& carved,
                           CampaignExecutor& executor) {
  const std::vector<Hull>& hulls = carved.hulls();
  if (executor.jobs() <= 1 || hulls.size() <= 1) {
    return carved.Rasterize();
  }
  std::vector<IndexSet> per_hull = executor.Map<IndexSet>(
      static_cast<int64_t>(hulls.size()), [&carved, &hulls](int64_t i) {
        IndexSet points(carved.shape());
        hulls[static_cast<size_t>(i)].RasterizeInto(&points);
        return points;
      });
  IndexSet result(carved.shape());
  for (const IndexSet& points : per_hull) {
    result.Union(points);
  }
  return result;
}

CarvedSubset SimpleConvexCarve(const IndexSet& points) {
  const Shape& shape = points.shape();
  std::vector<Vec3> all_points;
  all_points.reserve(points.size());
  points.ForEach([&all_points](const Index& index) {
    all_points.push_back(Vec3::FromIndex(index));
  });
  std::vector<Hull> hulls;
  if (!all_points.empty()) {
    hulls.push_back(Hull::Build(all_points, shape.rank()));
  }
  return CarvedSubset(shape, std::move(hulls));
}

}  // namespace kondo
