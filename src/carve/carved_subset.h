#ifndef KONDO_CARVE_CARVED_SUBSET_H_
#define KONDO_CARVE_CARVED_SUBSET_H_

#include <vector>

#include "array/index_set.h"
#include "array/shape.h"
#include "geom/hull.h"

namespace kondo {

/// The Carver's output `H`: a set of convex hulls whose union of interior
/// integer points is the approximated index subset `I'_Θ` (Algorithm 2).
class CarvedSubset {
 public:
  /// An empty subset over a rank-0 shape (useful as a default member).
  CarvedSubset() = default;

  CarvedSubset(Shape shape, std::vector<Hull> hulls)
      : shape_(std::move(shape)), hulls_(std::move(hulls)) {}

  const Shape& shape() const { return shape_; }
  const std::vector<Hull>& hulls() const { return hulls_; }
  int num_hulls() const { return static_cast<int>(hulls_.size()); }

  /// True when `index` falls inside any hull.
  bool Contains(const Index& index) const;

  /// Materialises `I'_Θ`: every integer index of the shape inside some hull.
  IndexSet Rasterize() const;

 private:
  Shape shape_;
  std::vector<Hull> hulls_;
};

}  // namespace kondo

#endif  // KONDO_CARVE_CARVED_SUBSET_H_
