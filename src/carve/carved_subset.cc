#include "carve/carved_subset.h"

namespace kondo {

bool CarvedSubset::Contains(const Index& index) const {
  for (const Hull& hull : hulls_) {
    if (hull.ContainsIndex(index)) {
      return true;
    }
  }
  return false;
}

IndexSet CarvedSubset::Rasterize() const {
  IndexSet result(shape_);
  for (const Hull& hull : hulls_) {
    hull.RasterizeInto(&result);
  }
  return result;
}

}  // namespace kondo
