#ifndef KONDO_CARVE_CHUNK_SUBSET_H_
#define KONDO_CARVE_CHUNK_SUBSET_H_

#include <cstdint>
#include <vector>

#include "array/index_set.h"
#include "array/layout.h"

namespace kondo {

/// Chunk-granularity statistics of a debloated subset.
struct ChunkSubsetStats {
  int64_t total_chunks = 0;
  int64_t retained_chunks = 0;
  int64_t subset_elements = 0;          // Input subset size.
  int64_t chunk_aligned_elements = 0;   // After expanding to whole chunks.

  /// Fraction of chunks eliminated.
  double ChunkBloatFraction() const {
    return total_chunks == 0
               ? 0.0
               : 1.0 - static_cast<double>(retained_chunks) /
                           static_cast<double>(total_chunks);
  }
};

/// Section VI: "In general, chunks form the unit of access in a data file
/// instead of single values... using the metadata, the byte offset of each
/// chunk can also be described in terms of the d-dimensions of the dataset
/// and array index." Chunk-granular debloating retains every chunk that
/// contains at least one subset element, trading some size reduction for a
/// payload the chunked reader can address without per-element masks.

/// Returns the linear chunk ids (row-major over the chunk grid) touched by
/// `subset`, sorted ascending.
std::vector<int64_t> TouchedChunks(const IndexSet& subset,
                                   const ChunkedLayout& layout);

/// Expands `subset` to whole chunks: every element of every touched chunk.
/// `stats` (optional) receives the granularity accounting.
IndexSet ChunkAlignedSubset(const IndexSet& subset,
                            const ChunkedLayout& layout,
                            ChunkSubsetStats* stats = nullptr);

/// Payload bytes of a chunk-granular debloated file: retained chunks at
/// full (padded) chunk size plus an 8-byte id per retained chunk.
int64_t ChunkSubsetPayloadBytes(int64_t retained_chunks,
                                const ChunkedLayout& layout);

}  // namespace kondo

#endif  // KONDO_CARVE_CHUNK_SUBSET_H_
