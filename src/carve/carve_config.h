#ifndef KONDO_CARVE_CARVE_CONFIG_H_
#define KONDO_CARVE_CARVE_CONFIG_H_

#include <cstdint>

namespace kondo {

/// How the CLOSE(h1, h2) predicate of Algorithm 2 combines its two distance
/// criteria. The paper's wording — "if center distance and boundary
/// distance is below a certain threshold, it merges" — is the conjunctive
/// form, and only that form reproduces the Fig. 11b/11c sensitivity (recall
/// rising and precision falling as center_d_thresh grows); the disjunctive
/// form is kept for the ablation bench.
enum class CloseMode {
  kBoundaryOrCenter = 0,
  kBoundaryAndCenter = 1,
};

/// Configuration of the convex-hull Carver (the carving entries of Fig. 5).
struct CarveConfig {
  /// Edge length of the fixed-size cells the offset space is split into
  /// (Algorithm 2's SPLIT).
  int64_t cell_size = 16;

  /// `center_d_thresh`: centre distance threshold to merge hulls.
  double center_d_thresh = 20.0;

  /// `bound_d_thresh`: boundary (min vertex) distance threshold to merge
  /// hulls.
  double boundary_d_thresh = 10.0;

  CloseMode close_mode = CloseMode::kBoundaryAndCenter;

  /// Safety bound on merge passes; Algorithm 2 always terminates (each merge
  /// reduces the hull count) but this guards pathological configs.
  int max_merge_rounds = 10000;
};

}  // namespace kondo

#endif  // KONDO_CARVE_CARVE_CONFIG_H_
