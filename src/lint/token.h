#ifndef KONDO_LINT_TOKEN_H_
#define KONDO_LINT_TOKEN_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace kondo {
namespace lint {

/// Lexical classes kondo-lint distinguishes. The rules only ever match on
/// identifiers and punctuation; strings, characters, and numbers exist as
/// classes so that banned names *inside literals* (error messages, the
/// linter's own rule tables) can never produce findings.
enum class TokenKind {
  kIdentifier,  // Identifiers and keywords, undifferentiated.
  kNumber,
  kString,  // Includes raw strings; text is the literal's contents.
  kChar,
  kPunct,  // Single characters, except the combined "::" and "->".
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;  // 1-based.
};

/// One lexed translation unit: the token stream (comments stripped) plus
/// the suppression directives the comments carried.
///
/// Suppression syntax (documented in docs/STATIC_ANALYSIS.md):
///
///   code();  // kondo-lint: allow(R2) reason for the exemption
///
/// applies to findings on the comment's own line; a directive on a line of
/// its own applies to the following line as well:
///
///   // kondo-lint: allow(R1,R4) reason
///   code_on_next_line();
struct LexedFile {
  std::vector<Token> tokens;
  /// line -> rule ids exempted on that line ("R1".."R4", or "*").
  std::map<int, std::set<std::string>> suppressions;
  /// Directive comments that failed to parse (e.g. "allow" with no rule
  /// list). Reported as lint errors so typos cannot silently disable rules.
  std::vector<std::pair<int, std::string>> malformed_directives;
};

}  // namespace lint
}  // namespace kondo

#endif  // KONDO_LINT_TOKEN_H_
