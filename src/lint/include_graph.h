#ifndef KONDO_LINT_INCLUDE_GRAPH_H_
#define KONDO_LINT_INCLUDE_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/token.h"

namespace kondo {
namespace lint {

/// Quoted-include edges between the files under lint, with includes
/// resolved against the repository layout (`#include "array/index.h"`
/// resolves relative to `src/`, the repo root, and the including file's
/// directory). Unresolvable includes — system headers — are dropped.
///
/// All containers are ordered: the linter's own output must be
/// deterministic, so the subsystem practices what rule R2 preaches.
class IncludeGraph {
 public:
  /// `files` maps repo-relative paths to their lexed form.
  static IncludeGraph Build(const std::map<std::string, LexedFile>& files);

  /// Files directly included by `path` (repo-relative, resolved).
  const std::vector<std::string>& DirectIncludes(
      const std::string& path) const;

  /// The determinism-critical closure: every file whose repo-relative path
  /// starts with one of `module_prefixes`, plus everything such files
  /// transitively include. A header outside src/fuzz that a fuzz module
  /// includes shapes fuzz results just as much as the module itself — this
  /// is how e.g. src/array/index_set.h becomes critical.
  std::set<std::string> CriticalClosure(
      const std::vector<std::string>& module_prefixes) const;

 private:
  std::map<std::string, std::vector<std::string>> edges_;
  std::vector<std::string> empty_;
};

/// Extracts the quoted and angle-bracket include targets from a token
/// stream (quoted first, in order; exposed for tests).
std::vector<std::string> ExtractIncludeTargets(const LexedFile& lexed);

}  // namespace lint
}  // namespace kondo

#endif  // KONDO_LINT_INCLUDE_GRAPH_H_
